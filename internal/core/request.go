package lci

import (
	"runtime"
	"sync/atomic"

	"lcigraph/internal/fabric"
)

// Status is a request's completion state.
type Status uint32

const (
	// Pending means the communication is still in progress.
	Pending Status = iota
	// DoneStatus means the communication finished; for receives, Data is
	// valid.
	DoneStatus
)

// Request records one ongoing communication (the paper's "request handle").
//
// Completion is observed by polling Done(): a single atomic load, set by the
// communication server. There is no completion function that polls the
// network — that asymmetry with MPI_Test is one of the paper's key points.
type Request struct {
	status atomic.Uint32

	// Filled for receives (by RecvDeq / the server):
	Data []byte // received payload; valid once Done() for receives
	Size int    // payload size in bytes
	Rank int    // peer rank
	Tag  uint32 // message tag (carried, never matched)

	// MsgID is the global tracing message id (tracing.MsgID); 0 when the
	// lifecycle tracer is off. The same id appears on the peer's request for
	// this message, which is how cross-rank timelines pair up.
	MsgID uint64

	// frame is the pooled fabric frame backing Data for eager receives; nil
	// for rendezvous receives (whose Data is an allocator buffer).
	frame *fabric.Frame
}

// Release recycles the pooled fabric frame backing an eager receive's Data.
// Call it once the payload has been consumed (copied out or fully
// processed); Data must not be read afterwards. It is idempotent and a
// no-op for rendezvous receives.
func (r *Request) Release() {
	if f := r.frame; f != nil {
		r.frame = nil
		r.Data = nil
		f.Release()
	}
}

// Done reports whether the communication has completed.
func (r *Request) Done() bool { return r.status.Load() == uint32(DoneStatus) }

// markDone is called by the server (or by SendEnq for eager sends).
func (r *Request) markDone() { r.status.Store(uint32(DoneStatus)) }

// Wait polls until the request completes, calling relax between polls
// (runtime.Gosched if relax is nil, so waiting never starves the server on
// few-core machines). It is a convenience for tests and examples; the
// runtimes poll request lists themselves, as the paper describes.
func (r *Request) Wait(relax func()) {
	if relax == nil {
		relax = runtime.Gosched
	}
	for !r.Done() {
		relax()
	}
}
