package lci

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lcigraph/internal/netfabric"
)

// udpPair builds two LCI endpoints over real loopback UDP sockets instead
// of the in-process fabric, so the rendezvous fragment path crosses the
// kernel — and, where granted, the GSO/GRO segmentation-offload tier.
func udpPair(t *testing.T, cfg netfabric.Config) (*Endpoint, *Endpoint, func()) {
	t.Helper()
	provs, err := netfabric.NewLoopbackGroup(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := NewEndpoint(provs[0], Options{})
	b := NewEndpoint(provs[1], Options{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, e := range []*Endpoint{a, b} {
		wg.Add(1)
		go func(e *Endpoint) {
			defer wg.Done()
			e.Serve(stop)
		}(e)
	}
	return a, b, func() {
		close(stop)
		wg.Wait()
		netfabric.CloseGroup(provs)
	}
}

// TestFragmentedRendezvousOverUDP: a multi-fragment rendezvous transfer over
// lossy loopback UDP must deliver exactly once with intact payloads — the
// same guarantee the in-process TestFragmentedRendezvous asserts, now with
// retransmission, fragment trains, and (when the kernel grants it) GSO/GRO
// underneath.
func TestFragmentedRendezvousOverUDP(t *testing.T) {
	a, b, shutdown := udpPair(t, netfabric.Config{
		RTO:   time.Millisecond,
		Fault: netfabric.Fault{Loss: 0.05, Dup: 0.02, Reorder: 0.02, Seed: 23},
	})
	defer shutdown()
	w := a.Pool().RegisterWorker()

	const n = 6
	rng := rand.New(rand.NewSource(9))
	msgs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = make([]byte, a.EagerLimit()*8+i*517) // 8+ FRG rounds each
		rng.Read(msgs[i])
	}
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			got := recvOne(b)
			if got.Tag != uint32(i) || got.Size != len(msgs[i]) {
				t.Errorf("msg %d: tag=%d size=%d want %d", i, got.Tag, got.Size, len(msgs[i]))
				return
			}
			if !bytes.Equal(got.Data, msgs[i]) {
				t.Errorf("msg %d: payload corrupted", i)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		sendRetry(a, w, 1, uint32(i), msgs[i]).Wait(nil)
	}
	<-done
}
