package lci

import (
	"fmt"
	"runtime"
	"time"

	"lcigraph/internal/fabric"
	"lcigraph/internal/tracing"
)

// idleBackoff yields for short idle streaks and parks briefly for long
// ones, so idle progress loops do not monopolize low-core schedulers. It
// returns the updated idle counter (0 when work was done).
func idleBackoff(idle int, worked bool) int {
	if worked {
		return 0
	}
	idle++
	if idle < 64 {
		runtime.Gosched()
	} else {
		time.Sleep(20 * time.Microsecond)
	}
	return idle
}

// progressBatch bounds the frames handled per Progress call so one call
// cannot monopolize the server when the ring is deep.
const progressBatch = 64

// Progress runs one communication-server step (Algorithm 3): flush deferred
// operations, then drain the network in one batched ring pass and dispatch
// per-packet-type callbacks. Control frames (RTR, FRG, put completions) are
// recycled to the fabric pool as soon as their handler returns; data frames
// (EGR, RTS) travel through Q and are recycled by their consumers. It
// returns true if any work was done. It must be called from a single
// goroutine (the dedicated communication server).
func (e *Endpoint) Progress() bool {
	e.ps.seq++
	if e.m.progressIter != nil && e.ps.seq&progressSampleMask == 0 {
		t0 := time.Now()
		worked := e.progressStep()
		e.m.progressIter.Observe(time.Since(t0).Nanoseconds())
		e.m.countPoll(worked)
		e.m.flushPolls()
		e.notePoll(worked)
		return worked
	}
	worked := e.progressStep()
	e.m.countPoll(worked)
	e.notePoll(worked)
	return worked
}

// emptyPollStallStreak is the consecutive-empty-poll count at which the
// progress server declares itself stalled — but only while work is parked
// (outbox items refused by the fabric, stashed frames the consumers never
// drain, fragment jobs that cannot advance). Idle polls past the backoff
// knee sleep 20µs each, so 1<<16 empty polls is on the order of a second of
// continuous starvation. stallPoll extends netfabric's stall kinds (1=ack,
// 2=credit) in the EvStallWarn arg.
const (
	emptyPollStallStreak = 1 << 16
	stallPoll            = 3
)

// notePoll records progress-server busy/idle *transitions* (not every poll:
// a spinning server polls millions of times a second, and the edges are what
// a timeline needs — the busy event's arg carries the length of the idle
// streak it ended). Server goroutine only.
func (e *Endpoint) notePoll(worked bool) {
	if e.tr == nil {
		return
	}
	if worked {
		if !e.ps.wasBusy {
			e.tr.RecordArg(tracing.EvProgressBusy, -1, tracing.ProtoNone, 0, e.ps.idleStreak, 0)
			e.ps.wasBusy = true
		}
		e.ps.idleStreak = 0
	} else {
		e.ps.idleStreak++
		if e.ps.wasBusy {
			e.tr.Record(tracing.EvProgressIdle, -1, tracing.ProtoNone, 0, 0)
			e.ps.wasBusy = false
		}
		// Empty-poll stall: the streak threshold fires exactly once per idle
		// episode (any productive poll resets the streak and re-arms it), and
		// only when there is parked work that polling should be moving —
		// ordinary quiescence between supersteps idles forever without this.
		// Each shard latches independently: the streak and the parked work it
		// inspects are both per-shard state.
		if e.ps.idleStreak == emptyPollStallStreak && e.hasParkedWork() {
			e.tr.RecordArg(tracing.EvStallWarn, -1, tracing.ProtoNone, 0, stallPoll, 0)
			e.tr.DumpNow(fmt.Sprintf("rank %d shard %d/%d progress: %d consecutive empty polls with parked work (outbox=%v stash=%d frags=%d)",
				e.rank, e.shardIdx, e.shardTotal, e.ps.idleStreak, e.outBlocked, len(e.stash), len(e.frags)))
		}
	}
}

// hasParkedWork reports whether the server is sitting on deferred work that
// an empty poll failed to advance. Server goroutine only.
func (e *Endpoint) hasParkedWork() bool {
	return e.outBlocked || len(e.stash) > 0 || len(e.frags) > 0
}

func (e *Endpoint) progressStep() bool {
	worked := e.flushOutbox()
	if e.pumpFragments() {
		worked = true
	}

	// Re-offer stashed frames first; if Q is still full, polling more would
	// only grow the stash, so stall (back-pressure propagates to senders
	// through the fabric ring).
	for len(e.stash) > 0 {
		if !e.q.Enqueue(e.stash[0]) {
			return worked
		}
		copy(e.stash, e.stash[1:])
		e.stash[len(e.stash)-1] = nil
		e.stash = e.stash[:len(e.stash)-1]
		worked = true
	}

	var batch [progressBatch]*fabric.Frame
	// Per-protocol RX tallies accumulate in locals and flush to the
	// registry once per batch, keeping the per-frame dispatch cost at a
	// register increment.
	var rxEgr, rxRts, rxRtr, rxFrg, rxPut int64
	n := e.fep.PollBatch(batch[:])
	for _, f := range batch[:n] {
		switch {
		case f.Kind == fabric.KindPutDone:
			rxPut++
			e.completePut(f)
			f.Release()
		default:
			switch headerType(f.Header) {
			case EGR, RTS:
				if headerType(f.Header) == EGR {
					rxEgr++
				} else {
					rxRts++
				}
				if !e.q.Enqueue(f) {
					e.stash = append(e.stash, f)
				}
			case RTR:
				rxRtr++
				e.handleRTR(f)
				f.Release()
			case FRG:
				rxFrg++
				e.handleFragment(f)
				f.Release()
			default:
				panic(fmt.Sprintf("lci: unknown packet type %d", headerType(f.Header)))
			}
		}
	}
	if rxEgr > 0 {
		e.m.rxEGR.Add(rxEgr)
	}
	if rxRts > 0 {
		e.m.rxRTS.Add(rxRts)
	}
	if rxRtr > 0 {
		e.m.rxRTR.Add(rxRtr)
	}
	if rxFrg > 0 {
		e.m.rxFRG.Add(rxFrg)
	}
	if rxPut > 0 {
		e.m.rxPutDone.Add(rxPut)
	}
	return worked || n > 0
}

// flushOutbox retries operations the fabric refused earlier. A destination
// that answers ErrResource is marked blocked for the rest of the round and
// its items re-parked, but flushing continues for other destinations — one
// congested peer must not starve deferred sends elsewhere. Per-destination
// FIFO order is preserved: once a destination blocks, its later items are
// re-parked unattempted.
func (e *Endpoint) flushOutbox() bool {
	worked := false
	blocked := e.outScratch[:0]
	if e.blockedDst == nil {
		e.blockedDst = make(map[int]bool)
	} else {
		clear(e.blockedDst)
	}
	// MPSC has no O(1) length; bound by a fixed number of pops so re-pushed
	// items do not spin. In practice the outbox is short.
	for tries := 0; tries < progressBatch; tries++ {
		it, ok := e.out.Pop()
		if !ok {
			break
		}
		dst := it.dst
		if it.kind == outPacket {
			dst = it.pkt.dst
		}
		if e.blockedDst[dst] {
			blocked = append(blocked, it)
			continue
		}
		var err error
		switch it.kind {
		case outPacket:
			err = e.fep.Send(it.pkt.dst, it.pkt.header, it.pkt.meta, it.pkt.payload())
			if err == nil {
				if e.tr != nil && it.pkt.mid != 0 {
					gid := tracing.MsgID(e.rank, it.pkt.mid)
					ev, proto := tracing.EvEagerTx, tracing.ProtoEGR
					if it.pkt.ptype == RTS {
						ev, proto = tracing.EvRTSTx, tracing.ProtoRTS
					}
					e.tr.Record(ev, it.pkt.dst, proto, it.pkt.n, gid)
				}
				if it.pkt.ptype == EGR {
					e.observeEagerLatency(it.pkt.t0)
					e.pool.Free(e.serverWorker, it.pkt)
				}
				// RTS packets stay allocated until the rendezvous completes.
				worked = true
				continue
			}
		case outCtrl:
			err = e.fep.Send(it.dst, it.header, it.meta, nil)
			if err == nil {
				// The only deferred control frame today is the RTR answer.
				if e.tr != nil {
					if mid := headerMID(it.header); mid != 0 {
						e.tr.Record(tracing.EvRTRTx, it.dst, tracing.ProtoRTR, 0, tracing.MsgID(it.dst, mid))
					}
				}
				worked = true
				continue
			}
		case outPut:
			err = e.fep.Put(it.dst, it.rkey, 0, it.src, it.imm)
			if err == nil {
				if e.tr != nil {
					e.tr.Record(tracing.EvPutTx, it.dst, tracing.ProtoRTR, len(it.src), e.sends.get(it.sendID).req.MsgID)
				}
				e.finishSend(it.sendID)
				worked = true
				continue
			}
		}
		if err != fabric.ErrResource {
			panic(fmt.Sprintf("lci: outbox flush: %v", err))
		}
		e.blockedDst[dst] = true
		blocked = append(blocked, it)
	}
	e.outBlocked = len(blocked) > 0
	for i, it := range blocked {
		e.out.Push(it)
		blocked[i] = outItem{}
	}
	e.outScratch = blocked[:0]
	return worked
}

// handleRTR is the RTR callback: the receiver is ready, so issue the RDMA
// put straight from the user's source buffer — or, on an RDMA-less
// transport, start streaming FRG fragments.
func (e *Endpoint) handleRTR(f *fabric.Frame) {
	// Meta hi is our own sid: strip the shard bits to index the slot table.
	// recvID is the receiver's encoded rid and is echoed back opaquely (in
	// the put immediate or on FRG headers) — its shard bits are what route
	// the completion to the right shard over there.
	sid, rkey := metaHi(f.Meta)&slotMask, metaLo(f.Meta)
	recvID := headerTag(f.Header)
	p := e.sends.get(sid)
	if p.req == nil {
		panic("lci: RTR for unknown send request")
	}
	if e.tr != nil {
		e.tr.Record(tracing.EvRTRRx, f.Src, tracing.ProtoRTR, len(p.src), p.req.MsgID)
	}
	if !e.fep.HasRDMA() {
		if e.tr != nil {
			e.tr.Record(tracing.EvFrgStart, f.Src, tracing.ProtoFRG, len(p.src), p.req.MsgID)
		}
		e.frags = append(e.frags, &fragJob{dst: f.Src, recvID: recvID, sendID: sid, src: p.src, mid: headerMID(f.Header)})
		return
	}
	if err := e.fep.Put(f.Src, rkey, 0, p.src, uint64(recvID)); err != nil {
		if err != fabric.ErrResource {
			panic(fmt.Sprintf("lci: put: %v", err))
		}
		e.out.Push(outItem{kind: outPut, dst: f.Src, rkey: rkey, src: p.src, imm: uint64(recvID), sendID: sid})
		return
	}
	if e.tr != nil {
		e.tr.Record(tracing.EvPutTx, f.Src, tracing.ProtoRTR, len(p.src), p.req.MsgID)
	}
	e.finishSend(sid)
}

// pumpFragments advances in-progress fragmented sends, respecting
// back-pressure. A job completes the sender request once its last chunk is
// accepted (the fabric copies payloads on injection).
func (e *Endpoint) pumpFragments() bool {
	if len(e.frags) == 0 {
		return false
	}
	worked := false
	keep := e.frags[:0]
	var sent int64
	for _, j := range e.frags {
		for j.off < len(j.src) {
			chunk := j.src[j.off:]
			if len(chunk) > e.eagerLimit {
				chunk = chunk[:e.eagerLimit]
			}
			err := e.fep.Send(j.dst, packHeader(FRG, j.recvID, j.mid), uint64(j.off), chunk)
			if err == fabric.ErrResource {
				break
			}
			if err != nil {
				panic(fmt.Sprintf("lci: fragment send: %v", err))
			}
			j.off += len(chunk)
			sent++
			worked = true
		}
		if j.off < len(j.src) {
			keep = append(keep, j)
		} else {
			e.finishSend(j.sendID)
		}
	}
	e.frags = keep
	if sent > 0 {
		e.m.txFRG.Add(sent)
	}
	return worked
}

// handleFragment is the FRG callback on the receive side: copy the chunk
// into the pending rendezvous buffer and complete on the last byte.
func (e *Endpoint) handleFragment(f *fabric.Frame) {
	rid := headerTag(f.Header) & slotMask
	p := e.recvs.get(rid)
	if p == nil || p.req == nil {
		panic("lci: fragment for unknown recv request")
	}
	off := int(f.Meta)
	copy(p.req.Data[off:], f.Data)
	p.got += len(f.Data)
	if e.tr != nil {
		e.tr.RecordArg(tracing.EvFrgRx, f.Src, tracing.ProtoFRG, len(f.Data), uint32(off), p.req.MsgID)
	}
	if p.got >= p.req.Size {
		if e.tr != nil {
			e.tr.RecordArg(tracing.EvComplete, f.Src, tracing.ProtoFRG, p.req.Size, 2, p.req.MsgID)
		}
		p.req.markDone()
		e.recvs.release(rid)
	}
}

// finishSend completes a rendezvous send after its put landed.
func (e *Endpoint) finishSend(sid uint32) {
	p := e.sends.get(sid)
	if e.tr != nil {
		e.tr.RecordArg(tracing.EvComplete, p.req.Rank, tracing.ProtoRTS, p.req.Size, 1, p.req.MsgID)
	}
	p.req.markDone()
	e.pool.Free(e.serverWorker, p.pkt)
	e.sends.release(sid)
}

// completePut is the RDMA-completion callback: the receiver's buffer is now
// filled; finish the receive request.
func (e *Endpoint) completePut(f *fabric.Frame) {
	rid := uint32(f.Header) & slotMask
	p := e.recvs.get(rid)
	if p == nil || p.req == nil {
		panic("lci: put completion for unknown recv request")
	}
	e.fep.DeregisterRegion(p.rkey)
	if e.tr != nil {
		e.tr.RecordArg(tracing.EvComplete, f.Src, tracing.ProtoRTS, p.req.Size, 2, p.req.MsgID)
	}
	p.req.markDone()
	e.recvs.release(rid)
}

// Serve drives Progress in a loop until stop is closed. It yields (and,
// after long idle streaks, briefly sleeps) so co-located hosts make
// progress; a real deployment pins the server thread and spins.
func (e *Endpoint) Serve(stop <-chan struct{}) {
	idle := 0
	start := time.Now()
	for {
		select {
		case <-stop:
			return
		default:
		}
		if e.injectStall != nil {
			e.maybeInjectStall(start, stop)
		}
		idle = idleBackoff(idle, e.Progress())
	}
}

// Drain progresses until the outbox is empty and no frames are pending, for
// orderly shutdown in tests.
func (e *Endpoint) Drain() {
	for e.Progress() {
	}
}
