package lci

import (
	"sync"
	"testing"

	"lcigraph/internal/fabric"
)

// pairOn is pair() over an arbitrary fabric profile, also returning the
// fabric so tests can check pooled-frame conservation.
func pairOn(t testing.TB, prof fabric.Profile, opt Options) (*fabric.Fabric, *Endpoint, *Endpoint, func()) {
	t.Helper()
	f := fabric.New(2, prof)
	a := NewEndpoint(f.Endpoint(0), opt)
	b := NewEndpoint(f.Endpoint(1), opt)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, e := range []*Endpoint{a, b} {
		wg.Add(1)
		go func(e *Endpoint) {
			defer wg.Done()
			e.Serve(stop)
		}(e)
	}
	return f, a, b, func() {
		close(stop)
		wg.Wait()
		a.Drain()
		b.Drain()
	}
}

// runConservation ships count messages of size bytes a→b, releases every
// delivered request, and asserts that every pooled wire frame returned to
// the fabric free-list — no leak, no double-free (a double Release panics).
func runConservation(t *testing.T, prof fabric.Profile, size, count int) {
	t.Helper()
	f, a, b, shutdown := pairOn(t, prof, Options{})
	w := a.Pool().RegisterWorker()
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(i)
	}
	var last *Request
	for i := 0; i < count; i++ {
		last = sendRetry(a, w, 1, uint32(i), buf)
		r := recvOne(b)
		if r.Size != size {
			t.Fatalf("message %d: size %d, want %d", i, r.Size, size)
		}
		r.Release()
	}
	last.Wait(nil)
	shutdown()
	if n := f.FramesOutstanding(); n != 0 {
		t.Fatalf("%d frames still outstanding after drain", n)
	}
}

func TestFrameConservationEager(t *testing.T) {
	runConservation(t, fabric.TestProfile(), 64, 200)
}

func TestFrameConservationRendezvous(t *testing.T) {
	// 4× the test profile's eager limit: RTS/RTR handshake + RDMA put.
	runConservation(t, fabric.TestProfile(), 4<<10, 50)
}

func TestFrameConservationFragmented(t *testing.T) {
	// The sockets profile has no RDMA: rendezvous payloads stream as FRG
	// fragments, each in its own pooled frame.
	runConservation(t, fabric.Sockets(), 64<<10, 4)
}

// TestRequestReleaseIdempotent: releasing a request twice must recycle its
// frame exactly once (the second call is a no-op, not a double-free).
func TestRequestReleaseIdempotent(t *testing.T) {
	f, a, b, shutdown := pairOn(t, fabric.TestProfile(), Options{})
	w := a.Pool().RegisterWorker()
	sendRetry(a, w, 1, 7, []byte("hi"))
	r := recvOne(b)
	r.Release()
	r.Release()
	shutdown()
	if n := f.FramesOutstanding(); n != 0 {
		t.Fatalf("%d frames still outstanding", n)
	}
}
