package lci

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"lcigraph/internal/fabric"
	"lcigraph/internal/tracing"
)

// Multi-threaded progress (DESIGN.md §15): a rank may run K progress shards,
// each a full *Endpoint — its own packet-pool partition, incoming queue,
// outstanding-send/recv tables and progress goroutine — over one shared
// fabric provider split into K delivery views (fabric.Sharder). Traffic is
// steered deterministically so every message's whole lifecycle (data,
// control frames, completions) stays on one shard:
//
//   - EGR and RTS frames route by peer (default) or by tag: both sides of
//     the hash are known to sender and receiver, so no coordination is
//     needed.
//   - Everything that carries a request id (RTR, FRG, put completions)
//     routes by the shard bits baked into the id itself — the shard that
//     allocated the request always gets its control traffic back,
//     regardless of the data-steering mode.
//
// At K=1 (the default) the id shard bits are zero, no views are created and
// the behavior is bit-identical to the single-endpoint runtime.

// Request ids (sid/rid) carry their owning shard in the top 8 bits; the low
// shardIDShift bits index the shard's slot table. At K=1 the shard field is
// zero, so encoded ids equal raw slot indices.
const (
	shardIDShift = 24
	slotMask     = 1<<shardIDShift - 1

	// MaxShards bounds the progress-shard count. The id layout allows 256;
	// 16 matches the netfabric reader-shard clamp, and more progress
	// goroutines than cores is never a win.
	MaxShards = 16
)

// encodeID stamps this endpoint's shard index into a slot-table id before
// it goes on the wire.
func (e *Endpoint) encodeID(slot uint32) uint32 {
	return e.idBits | slot
}

// ShardOfPeer is the peer→shard steering hash: plain modulo, which is a
// perfect split for the dense 0..size-1 rank space. Both directions of a
// pair use it — a send to dst posts on ShardOfPeer(dst), an arrival from
// src delivers to ShardOfPeer(src) — so shard i on every rank services
// exactly the peers congruent to i mod k.
func ShardOfPeer(peer, k int) int {
	if k <= 1 {
		return 0
	}
	return peer % k
}

// ShardOfTag is the tag→shard steering hash (Fibonacci multiplicative):
// adjacent tags scatter, so a framework's densely allocated field tags
// spread across shards instead of clumping.
func ShardOfTag(tag uint32, k int) int {
	if k <= 1 {
		return 0
	}
	x := uint64(tag) * 0x9e3779b97f4a7c15
	return int((x >> 33) % uint64(k))
}

// shardRoute builds the fabric-level frame route for K shards. Control
// frames follow the shard bits of the request id they carry; data frames
// (EGR/RTS) follow the steering mode. The modulo guards a corrupt or
// foreign shard field — misrouting such a frame to shard 0 beats indexing
// out of range.
func shardRoute(k int, byTag bool) func(*fabric.Frame) int {
	return func(f *fabric.Frame) int {
		if f.Kind == fabric.KindPutDone {
			return int(uint32(f.Header)>>shardIDShift) % k
		}
		switch headerType(f.Header) {
		case RTR: // meta hi = the sender-side sid this RTR answers
			return int(metaHi(f.Meta)>>shardIDShift) % k
		case FRG: // header tag = the receiver-side rid being filled
			return int(headerTag(f.Header)>>shardIDShift) % k
		}
		if byTag {
			return ShardOfTag(headerTag(f.Header), k)
		}
		return ShardOfPeer(f.Src, k)
	}
}

// Sharded is a rank's set of progress shards behind one API. With
// Options.Shards ≤ 1 it is a zero-overhead wrapper around a single
// Endpoint; above that it partitions the provider, the packet pool and the
// queues K ways and runs K progress goroutines under one Serve call.
//
// Concurrency contract: SendEnq is safe from any registered worker (it
// routes to the owning shard's own MPMC structures); RecvDeq is safe from
// any goroutine but, exactly like Endpoint.RecvDeq, delivery order is only
// meaningful with a single consumer. Serve must be called once.
type Sharded struct {
	eps   []*Endpoint
	k     int
	byTag bool
	rr    atomic.Uint32 // RecvDeq round-robin cursor
}

// EnvShards is the environment knob for the progress-shard count, read by
// ShardsFromEnv. It is the same variable internal/netfabric reads
// (EnvEndpointShards) to align its reuseport reader group.
const EnvShards = "LCI_ENDPOINT_SHARDS"

// ShardsFromEnv returns the shard count requested via LCI_ENDPOINT_SHARDS,
// clamped to [1, MaxShards]; 1 (today's single-server behavior) when unset
// or unparsable.
func ShardsFromEnv() int {
	s := os.Getenv(EnvShards)
	if s == "" {
		return 1
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	return n
}

// ceilDiv splits a rank-global budget across k shards without shrinking the
// total below the original.
func ceilDiv(n, k int) int { return (n + k - 1) / k }

// NewSharded builds a rank's progress shards over fep. Options carry the
// rank-global budgets (PoolPackets, QueueDepth, MaxOutstanding); each shard
// gets a ceil(1/K) partition with floors that keep a thin shard usable.
// Shards > 1 requires fep to implement fabric.Sharder; a provider that
// cannot shard falls back to K=1 rather than failing.
func NewSharded(fep fabric.Provider, opt Options) *Sharded {
	opt.fill()
	k := opt.Shards
	if k < 1 {
		k = 1
	}
	if k > MaxShards {
		k = MaxShards
	}
	sharder, ok := fep.(fabric.Sharder)
	if !ok {
		k = 1
	}
	if k == 1 {
		opt.shardIdx, opt.shardTotal = 0, 1
		return &Sharded{eps: []*Endpoint{NewEndpoint(fep, opt)}, k: 1}
	}

	route := fabric.ShardRoute{Frame: shardRoute(k, opt.ShardByTag)}
	if !opt.ShardByTag {
		// Peer steering lets the provider partition per-flow housekeeping
		// (each view flushes only the flows its shard owns).
		route.Peer = func(peer int) int { return ShardOfPeer(peer, k) }
	}
	views := sharder.ShardViews(k, route)

	per := opt
	per.PoolPackets = max(ceilDiv(opt.PoolPackets, k), 32)
	per.QueueDepth = max(ceilDiv(opt.QueueDepth, k), 64)
	per.MaxOutstanding = max(ceilDiv(opt.MaxOutstanding, k), 64)
	if per.MaxOutstanding > slotMask+1 {
		per.MaxOutstanding = slotMask + 1
	}

	s := &Sharded{eps: make([]*Endpoint, k), k: k, byTag: opt.ShardByTag}
	for i := range s.eps {
		pi := per
		pi.shardIdx, pi.shardTotal = i, k
		s.eps[i] = NewEndpoint(views[i], pi)
	}
	return s
}

// Shards returns the number of progress shards (≥ 1).
func (s *Sharded) Shards() int { return s.k }

// Shard returns shard i's endpoint (tests and diagnostics).
func (s *Sharded) Shard(i int) *Endpoint { return s.eps[i] }

// Rank returns the host rank.
func (s *Sharded) Rank() int { return s.eps[0].Rank() }

// EagerLimit returns the eager/rendezvous protocol threshold in bytes.
func (s *Sharded) EagerLimit() int { return s.eps[0].EagerLimit() }

// Tracer returns the lifecycle tracer (nil when tracing is off). All
// shards share one tracer: events interleave into a single per-rank ring.
func (s *Sharded) Tracer() *tracing.Tracer { return s.eps[0].Tracer() }

// ShardFor returns the shard that owns traffic to dst on tag — the shard
// whose pool and queues a send will use, and whose progress goroutine will
// see the reply.
func (s *Sharded) ShardFor(dst int, tag uint32) *Endpoint {
	if s.k == 1 {
		return s.eps[0]
	}
	if s.byTag {
		return s.eps[ShardOfTag(tag, s.k)]
	}
	return s.eps[ShardOfPeer(dst, s.k)]
}

// RegisterWorker registers one compute worker across every shard's pool in
// lockstep and returns the common worker id. All external registration must
// go through here (never a shard pool directly), so the id means the same
// locality slot on every shard.
func (s *Sharded) RegisterWorker() int {
	w := s.eps[0].Pool().RegisterWorker()
	for _, e := range s.eps[1:] {
		if got := e.Pool().RegisterWorker(); got != w {
			panic("lci: sharded pools registered out of lockstep (register workers only via Sharded.RegisterWorker)")
		}
	}
	return w
}

// SendEnq routes the send to the owning shard (see ShardFor) and enqueues
// it there; semantics are exactly Endpoint.SendEnq.
func (s *Sharded) SendEnq(worker, dst int, tag uint32, buf []byte) (*Request, bool) {
	return s.ShardFor(dst, tag).SendEnq(worker, dst, tag, buf)
}

// RecvDeq returns the next incoming message from any shard, round-robin so
// a busy shard cannot starve the others. Per-shard arrival order is
// preserved; cross-shard order is unspecified (it already was between
// peers).
func (s *Sharded) RecvDeq() (*Request, bool) {
	if s.k == 1 {
		return s.eps[0].RecvDeq()
	}
	start := s.rr.Add(1)
	for i := uint32(0); i < uint32(s.k); i++ {
		if r, ok := s.eps[(start+i)%uint32(s.k)].RecvDeq(); ok {
			return r, true
		}
	}
	return nil, false
}

// PendingIncoming sums the racy queue-depth estimate across shards.
func (s *Sharded) PendingIncoming() int {
	n := 0
	for _, e := range s.eps {
		n += e.PendingIncoming()
	}
	return n
}

// Stats sums the endpoint counters across shards.
func (s *Sharded) Stats() Stats {
	var out Stats
	for _, e := range s.eps {
		st := e.Stats()
		out.EagerSends += st.EagerSends
		out.RendezvousSends += st.RendezvousSends
		out.SendFailures += st.SendFailures
		out.Receives += st.Receives
	}
	return out
}

// Serve runs one progress goroutine per shard until stop closes. Shard 0
// runs on the calling goroutine (so `go s.Serve(stop)` costs K goroutines
// total, exactly like the unsharded layer at K=1).
func (s *Sharded) Serve(stop <-chan struct{}) {
	var wg sync.WaitGroup
	for _, e := range s.eps[1:] {
		wg.Add(1)
		go func(e *Endpoint) {
			defer wg.Done()
			e.Serve(stop)
		}(e)
	}
	s.eps[0].Serve(stop)
	wg.Wait()
}

// Drain progresses every shard until none reports work, for orderly
// shutdown after Serve has stopped. One quiet sweep is not proof — shard A
// may complete a send whose control frame then lands on shard B — but a
// full pass with no work on any shard is: nothing in flight can appear
// without some shard working first.
func (s *Sharded) Drain() {
	for {
		worked := false
		for _, e := range s.eps {
			if e.Progress() {
				worked = true
			}
		}
		if !worked {
			return
		}
	}
}
