package lci

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"lcigraph/internal/tracing"
)

// dumpBuf is a goroutine-safe dump sink (DumpNow may race with readers in
// other tests sharing the harness).
type dumpBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *dumpBuf) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *dumpBuf) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestEmptyPollStallDump drives notePoll through an empty-poll streak with
// work parked on the server and expects exactly one stall warning + flight
// dump per idle episode; the same streak with nothing parked (ordinary
// quiescence) must stay silent.
func TestEmptyPollStallDump(t *testing.T) {
	tr := tracing.New(2, 256)
	var dump dumpBuf
	tr.SetDumpWriter(&dump)
	e := &Endpoint{tr: tr, rank: 2}

	// Quiescent idle: no parked work, streak far past the threshold — the
	// detector must not fire on a server that simply has nothing to do.
	for i := 0; i < 2*emptyPollStallStreak; i++ {
		e.notePoll(false)
	}
	if out := dump.String(); out != "" {
		t.Fatalf("stall dump fired during ordinary quiescence:\n%s", out)
	}

	// A productive poll resets the streak; then the outbox jams (the fabric
	// kept answering ErrResource) and the streak climbs again.
	e.notePoll(true)
	e.outBlocked = true
	for i := 0; i < 2*emptyPollStallStreak; i++ {
		e.notePoll(false)
	}
	out := dump.String()
	for _, want := range []string{"stall-warn", "empty polls with parked work", "rank 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("stall dump missing %q:\n%s", want, out)
		}
	}
	// Exactly one warning for the whole episode: the threshold is an
	// equality check, so continued idling must not re-fire it.
	warns := 0
	for _, ev := range tr.Events() {
		if ev.Type == tracing.EvStallWarn {
			warns++
			if ev.Arg != 3 {
				t.Errorf("stall-warn arg = %d, want 3 (empty-poll kind)", ev.Arg)
			}
		}
	}
	if warns != 1 {
		t.Fatalf("recorded %d stall warnings, want exactly 1 per episode", warns)
	}
}
