package lci

import (
	"hash/crc32"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"lcigraph/internal/fabric"
)

// msgSig identifies a message's content independent of arrival order.
type msgSig struct {
	tag  uint32
	size int
	sum  uint32
}

// TestQuickDeliveryMultiset: for random message mixes (sizes straddling the
// eager limit, random tags), the receiver observes exactly the sent
// multiset, bit-for-bit.
func TestQuickDeliveryMultiset(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 1
		fab := fabric.New(2, fabric.TestProfile())
		a := NewEndpoint(fab.Endpoint(0), Options{})
		b := NewEndpoint(fab.Endpoint(1), Options{})
		stop := make(chan struct{})
		defer close(stop)
		go a.Serve(stop)
		go b.Serve(stop)
		w := a.Pool().RegisterWorker()

		rng := rand.New(rand.NewSource(seed))
		want := map[msgSig]int{}
		var reqs []*Request
		for i := 0; i < n; i++ {
			size := rng.Intn(3 * a.EagerLimit())
			buf := make([]byte, size)
			rng.Read(buf)
			tag := rng.Uint32()
			want[msgSig{tag, size, crc32.ChecksumIEEE(buf)}]++
			var r *Request
			for {
				var ok bool
				r, ok = a.SendEnq(w, 1, tag, buf)
				if ok {
					break
				}
				runtime.Gosched()
			}
			reqs = append(reqs, r)
		}

		got := map[msgSig]int{}
		var pending []*Request
		received := 0
		for received < n {
			if r, ok := b.RecvDeq(); ok {
				pending = append(pending, r)
			}
			keep := pending[:0]
			for _, r := range pending {
				if r.Done() {
					got[msgSig{r.Tag, r.Size, crc32.ChecksumIEEE(r.Data)}]++
					received++
				} else {
					keep = append(keep, r)
				}
			}
			pending = keep
			runtime.Gosched()
		}
		for _, r := range reqs {
			r.Wait(nil)
		}
		if len(got) != len(want) {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestBidirectionalStormTinyResources: both directions blast messages
// through a starved fabric (tiny rings) and a tiny packet pool. The
// retriable-failure design must neither deadlock nor lose anything.
func TestBidirectionalStormTinyResources(t *testing.T) {
	prof := fabric.TestProfile()
	prof.RingDepth = 4
	fab := fabric.New(2, prof)
	opt := Options{PoolPackets: 6, QueueDepth: 8, MaxOutstanding: 8, Workers: 2}
	eps := []*Endpoint{
		NewEndpoint(fab.Endpoint(0), opt),
		NewEndpoint(fab.Endpoint(1), opt),
	}
	stop := make(chan struct{})
	defer close(stop)
	for _, e := range eps {
		go e.Serve(stop)
	}

	const perSide = 400
	var wg sync.WaitGroup
	for side := 0; side < 2; side++ {
		wg.Add(1)
		go func(side int) {
			defer wg.Done()
			e := eps[side]
			w := e.Pool().RegisterWorker()
			sent, received := 0, 0
			var pending []*Request
			buf := make([]byte, 100)
			for sent < perSide || received < perSide {
				if sent < perSide {
					if _, ok := e.SendEnq(w, 1-side, uint32(side), buf); ok {
						sent++
					}
				}
				if r, ok := e.RecvDeq(); ok {
					pending = append(pending, r)
				}
				keep := pending[:0]
				for _, r := range pending {
					if r.Done() {
						received++
					} else {
						keep = append(keep, r)
					}
				}
				pending = keep
				runtime.Gosched()
			}
		}(side)
	}
	wg.Wait()
}

// TestRendezvousManyConcurrent: a batch of large messages all in flight at
// once exercises the outstanding tables and put completion paths.
func TestRendezvousManyConcurrent(t *testing.T) {
	fab := fabric.New(2, fabric.TestProfile())
	a := NewEndpoint(fab.Endpoint(0), Options{MaxOutstanding: 64})
	b := NewEndpoint(fab.Endpoint(1), Options{MaxOutstanding: 64})
	stop := make(chan struct{})
	defer close(stop)
	go a.Serve(stop)
	go b.Serve(stop)
	w := a.Pool().RegisterWorker()

	const n = 30
	size := a.EagerLimit() * 2
	bufs := make([][]byte, n)
	var reqs []*Request
	for i := 0; i < n; i++ {
		bufs[i] = make([]byte, size)
		for j := range bufs[i] {
			bufs[i][j] = byte(i)
		}
		for {
			r, ok := a.SendEnq(w, 1, uint32(i), bufs[i])
			if ok {
				reqs = append(reqs, r)
				break
			}
			runtime.Gosched()
		}
	}
	seen := make([]bool, n)
	var pending []*Request
	done := 0
	for done < n {
		if r, ok := b.RecvDeq(); ok {
			pending = append(pending, r)
		}
		keep := pending[:0]
		for _, r := range pending {
			if !r.Done() {
				keep = append(keep, r)
				continue
			}
			i := int(r.Tag)
			if seen[i] {
				t.Fatalf("message %d delivered twice", i)
			}
			seen[i] = true
			for _, by := range r.Data {
				if by != byte(i) {
					t.Fatalf("message %d corrupted", i)
				}
			}
			done++
		}
		pending = keep
		runtime.Gosched()
	}
	for _, r := range reqs {
		r.Wait(nil)
	}
}
