package lci

import (
	"testing"
	"time"

	"lcigraph/internal/fabric"
)

func TestParseInjectStall(t *testing.T) {
	shard, after, dur, err := ParseInjectStall("1:3s:10s")
	if err != nil || shard != 1 || after != 3*time.Second || dur != 10*time.Second {
		t.Fatalf("got shard=%d after=%v dur=%v err=%v", shard, after, dur, err)
	}
	for _, bad := range []string{"", "1:3s", "x:3s:10s", "-1:3s:10s", "1:nope:10s", "1:3s:0s", "1:3s:10s:extra"} {
		if _, _, _, err := ParseInjectStall(bad); err == nil {
			t.Errorf("ParseInjectStall(%q) accepted", bad)
		}
	}
}

// TestInjectStallWedgesServe: with the knob set for shard 0, Serve must go
// quiet for the configured window (the progress counter stops advancing),
// and stop must still win against a long wedge.
func TestInjectStallWedgesServe(t *testing.T) {
	t.Setenv(EnvInjectStall, "0:50ms:30s")
	f := fabric.New(1, fabric.TestProfile())
	e := NewEndpoint(f.Endpoint(0), Options{})
	if e.injectStall == nil {
		t.Fatal("injection not armed for shard 0")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		e.Serve(stop)
		close(done)
	}()
	// Wait past the arm delay so the wedge is in force, then ask Serve to
	// stop: it must return promptly despite the 30s stall window.
	time.Sleep(150 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not honor stop during an injected stall")
	}
}

// TestInjectStallShardMismatch: an injection naming another shard must not
// arm on shard 0.
func TestInjectStallShardMismatch(t *testing.T) {
	t.Setenv(EnvInjectStall, "3:1ms:1s")
	f := fabric.New(1, fabric.TestProfile())
	e := NewEndpoint(f.Endpoint(0), Options{})
	if e.injectStall != nil {
		t.Fatal("injection armed on the wrong shard")
	}
}
