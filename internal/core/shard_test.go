package lci

import (
	"bytes"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"lcigraph/internal/fabric"
	"lcigraph/internal/netfabric"
	"lcigraph/internal/tracing"
)

// TestShardOfPeerRemap pins the peer→shard hash: in range, deterministic,
// and — the case that matters when K does not divide the peer count — never
// more than one peer apart between the fullest and emptiest shard, so a
// 10-peer job on 4 shards splits 3/3/2/2 rather than clumping.
func TestShardOfPeerRemap(t *testing.T) {
	const peers = 10
	for _, k := range []int{1, 2, 3, 4, 5, 7, 16} {
		counts := make([]int, k)
		for p := 0; p < peers; p++ {
			s := ShardOfPeer(p, k)
			if s < 0 || s >= k {
				t.Fatalf("ShardOfPeer(%d,%d) = %d out of range", p, k, s)
			}
			if again := ShardOfPeer(p, k); again != s {
				t.Fatalf("ShardOfPeer(%d,%d) not deterministic: %d then %d", p, k, s, again)
			}
			counts[s]++
		}
		min, max := peers, 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Errorf("k=%d: shard loads %v spread by %d peers, want ≤ 1", k, counts, max-min)
		}
	}
	// Changing K remaps peers: the shard count is a run constant, never a
	// live knob. Document that 10 peers land differently on 3 vs 4 shards.
	remapped := false
	for p := 0; p < peers; p++ {
		if ShardOfPeer(p, 3) != ShardOfPeer(p, 4) {
			remapped = true
		}
	}
	if !remapped {
		t.Error("K=3 and K=4 produced identical assignments for 10 peers")
	}
}

// TestShardOfTagSpread: dense tag ranges (a framework numbering its fields
// 0,1,2,…) must scatter across shards — no empty shard, nothing holding more
// than half the tags — and out-of-range results are impossible.
func TestShardOfTagSpread(t *testing.T) {
	const tags = 64
	for _, k := range []int{1, 2, 4, 8} {
		counts := make([]int, k)
		for tag := uint32(0); tag < tags; tag++ {
			s := ShardOfTag(tag, k)
			if s < 0 || s >= k {
				t.Fatalf("ShardOfTag(%d,%d) = %d out of range", tag, k, s)
			}
			counts[s]++
		}
		for s, c := range counts {
			if c == 0 {
				t.Errorf("k=%d: shard %d got no tags from a dense range of %d", k, s, tags)
			}
			if k > 1 && c > tags*3/4 {
				t.Errorf("k=%d: shard %d clumped %d/%d tags", k, s, c, tags)
			}
		}
	}
}

// TestShardRouteControlAffinity pins the routing invariant the whole design
// rests on: frames that carry a request id (RTR, FRG, put completions) must
// land on the shard encoded in the id — not the shard the data steering
// would pick — while EGR/RTS follow the steering mode.
func TestShardRouteControlAffinity(t *testing.T) {
	const k = 4
	route := shardRoute(k, false)
	id := func(shard int) uint32 { return uint32(shard)<<shardIDShift | 17 }

	for shard := 0; shard < k; shard++ {
		// Put completion: Header is the raw immediate = encoded rid.
		pd := &fabric.Frame{Kind: fabric.KindPutDone, Src: 3, Header: uint64(id(shard))}
		if got := route(pd); got != shard {
			t.Errorf("put-done with rid shard %d routed to %d", shard, got)
		}
		// RTR: meta hi is the sender's encoded sid.
		rtr := &fabric.Frame{Src: 3, Header: packHeader(RTR, 9, 0), Meta: packMeta(id(shard), 0)}
		if got := route(rtr); got != shard {
			t.Errorf("RTR with sid shard %d routed to %d", shard, got)
		}
		// FRG: header tag is the receiver's encoded rid.
		frg := &fabric.Frame{Src: 3, Header: packHeader(FRG, id(shard), 0), Meta: 0}
		if got := route(frg); got != shard {
			t.Errorf("FRG with rid shard %d routed to %d", shard, got)
		}
	}
	// Data frames steer by peer in the default mode, whatever the tag says.
	for src := 0; src < 8; src++ {
		egr := &fabric.Frame{Src: src, Header: packHeader(EGR, 0xbeef, 0)}
		if got := route(egr); got != ShardOfPeer(src, k) {
			t.Errorf("EGR from %d routed to %d, want %d", src, got, ShardOfPeer(src, k))
		}
	}
	// Tag mode steers the same data frames by tag instead.
	tagRoute := shardRoute(k, true)
	rts := &fabric.Frame{Src: 1, Header: packHeader(RTS, 0xbeef, 0)}
	if got := tagRoute(rts); got != ShardOfTag(0xbeef, k) {
		t.Errorf("RTS tag-routed to %d, want %d", got, ShardOfTag(0xbeef, k))
	}
}

// shardedPairOn builds two K-sharded LCI endpoint sets over a sim fabric.
func shardedPairOn(t testing.TB, prof fabric.Profile, opt Options) (*fabric.Fabric, *Sharded, *Sharded, func()) {
	t.Helper()
	f := fabric.New(2, prof)
	a := NewSharded(f.Endpoint(0), opt)
	b := NewSharded(f.Endpoint(1), opt)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, s := range []*Sharded{a, b} {
		wg.Add(1)
		go func(s *Sharded) {
			defer wg.Done()
			s.Serve(stop)
		}(s)
	}
	return f, a, b, func() {
		close(stop)
		wg.Wait()
		a.Drain()
		b.Drain()
	}
}

func shardedRecvOne(s *Sharded) *Request {
	for {
		r, ok := s.RecvDeq()
		if !ok {
			runtime.Gosched()
			continue
		}
		r.Wait(nil)
		return r
	}
}

func shardedSendRetry(s *Sharded, w, dst int, tag uint32, buf []byte) *Request {
	for {
		if r, ok := s.SendEnq(w, dst, tag, buf); ok {
			return r
		}
		runtime.Gosched()
	}
}

// runShardedConservation is runConservation with K=4 progress shards and
// tag steering (so a 2-host pair still exercises every shard): count
// messages of size bytes a→b across 16 tags, every frame back on the
// fabric free-list afterwards.
func runShardedConservation(t *testing.T, prof fabric.Profile, size, count int) {
	t.Helper()
	f, a, b, shutdown := shardedPairOn(t, prof, Options{Shards: 4, ShardByTag: true})
	if a.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", a.Shards())
	}
	w := a.RegisterWorker()
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(i)
	}
	var reqs []*Request
	for i := 0; i < count; i++ {
		reqs = append(reqs, shardedSendRetry(a, w, 1, uint32(i%16), buf))
		r := shardedRecvOne(b)
		if r.Size != size {
			t.Fatalf("message %d: size %d, want %d", i, r.Size, size)
		}
		r.Release()
	}
	for _, r := range reqs {
		r.Wait(nil)
	}
	shutdown()
	if n := f.FramesOutstanding(); n != 0 {
		t.Fatalf("%d frames still outstanding after drain", n)
	}
	for _, s := range []*Sharded{a, b} {
		for i := 0; i < s.Shards(); i++ {
			p := s.Shard(i).Pool()
			if p.FreeCount() != p.Capacity() {
				t.Fatalf("shard %d pool: %d/%d free after drain", i, p.FreeCount(), p.Capacity())
			}
		}
	}
}

func TestShardedConservationEager(t *testing.T) {
	runShardedConservation(t, fabric.TestProfile(), 64, 200)
}

func TestShardedConservationRendezvous(t *testing.T) {
	runShardedConservation(t, fabric.TestProfile(), 4<<10, 50)
}

func TestShardedConservationFragmented(t *testing.T) {
	// Sockets has no RDMA: FRG fragments must follow their rid's shard.
	runShardedConservation(t, fabric.Sockets(), 64<<10, 4)
}

// TestShardedLossyUDPConservation is the ISSUE's headline satellite: shards=4
// over real loopback UDP with 5% loss plus duplication and reordering must
// deliver every message exactly once, uncorrupted, and leak no pool frames —
// under -race this also proves the shard partitioning keeps the K progress
// goroutines off each other's state.
func TestShardedLossyUDPConservation(t *testing.T) {
	provs, err := netfabric.NewLoopbackGroup(2, netfabric.Config{
		RTO:            time.Millisecond,
		EndpointShards: 4,
		Fault:          netfabric.Fault{Loss: 0.05, Dup: 0.02, Reorder: 0.02, Seed: 31},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Shards: 4, ShardByTag: true}
	a := NewSharded(provs[0], opt)
	b := NewSharded(provs[1], opt)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, s := range []*Sharded{a, b} {
		wg.Add(1)
		go func(s *Sharded) {
			defer wg.Done()
			s.Serve(stop)
		}(s)
	}
	w := a.RegisterWorker()

	// 16 tags spread over the 4 shards; even tags are eager, odd tags are
	// fragmented rendezvous (UDP has no RDMA), so both datapaths cross the
	// lossy wire on every shard.
	const perTag = 3
	const tags = 16
	rng := rand.New(rand.NewSource(5))
	payload := make(map[uint32][]byte, tags)
	for tag := uint32(0); tag < tags; tag++ {
		n := 64
		if tag%2 == 1 {
			n = a.EagerLimit()*4 + int(tag)*211
		}
		p := make([]byte, n)
		rng.Read(p)
		payload[tag] = p
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		got := make(map[uint32]int, tags)
		for i := 0; i < perTag*tags; i++ {
			r := shardedRecvOne(b)
			want := payload[r.Tag]
			if want == nil || r.Size != len(want) {
				t.Errorf("tag %d: size %d, want %d", r.Tag, r.Size, len(want))
				return
			}
			if !bytes.Equal(r.Data, want) {
				t.Errorf("tag %d: payload corrupted", r.Tag)
				return
			}
			got[r.Tag]++
			r.Release()
		}
		// Exactly once: every tag's count must match, and the loop above
		// consumed exactly perTag*tags messages — a duplicate delivery would
		// steal another tag's slot and show up here.
		for tag := uint32(0); tag < tags; tag++ {
			if got[tag] != perTag {
				t.Errorf("tag %d delivered %d times, want %d", tag, got[tag], perTag)
			}
		}
	}()

	var reqs []*Request
	for i := 0; i < perTag; i++ {
		for tag := uint32(0); tag < tags; tag++ {
			reqs = append(reqs, shardedSendRetry(a, w, 1, tag, payload[tag]))
		}
	}
	for _, r := range reqs {
		r.Wait(nil)
	}
	<-done

	close(stop)
	wg.Wait()
	a.Drain()
	b.Drain()
	netfabric.CloseGroup(provs)
	for _, s := range []*Sharded{a, b} {
		for i := 0; i < s.Shards(); i++ {
			p := s.Shard(i).Pool()
			if p.FreeCount() != p.Capacity() {
				t.Fatalf("rank %d shard %d pool: %d/%d free after drain — leaked frames",
					s.Rank(), i, p.FreeCount(), p.Capacity())
			}
		}
	}
}

// TestShardStallLatchIndependence drives two shards' stall detectors side by
// side: a stalled shard must fire its own warning without either silencing
// the other shard or tripping it spuriously — the latch (idleStreak, parked
// work) is per-shard state.
func TestShardStallLatchIndependence(t *testing.T) {
	tr := tracing.New(2, 256)
	var dump dumpBuf
	tr.SetDumpWriter(&dump)
	s0 := &Endpoint{tr: tr, rank: 2, shardIdx: 0, shardTotal: 2}
	s1 := &Endpoint{tr: tr, rank: 2, shardIdx: 1, shardTotal: 2}

	// Shard 0 jams (outbox refused by the fabric); shard 1 is merely quiet.
	// Interleave the polls the way two progress goroutines would.
	s0.notePoll(true)
	s0.outBlocked = true
	for i := 0; i < 2*emptyPollStallStreak; i++ {
		s0.notePoll(false)
		s1.notePoll(false)
	}
	out := dump.String()
	if !strings.Contains(out, "shard 0/2") {
		t.Errorf("stall dump does not name the stalled shard:\n%s", out)
	}
	if strings.Contains(out, "shard 1/2") {
		t.Errorf("idle shard 1 tripped spuriously:\n%s", out)
	}
	warns := 0
	for _, ev := range tr.Events() {
		if ev.Type == tracing.EvStallWarn {
			warns++
		}
	}
	if warns != 1 {
		t.Fatalf("recorded %d stall warnings, want exactly 1 (shard 0 only)", warns)
	}

	// Now shard 1 jams too: its latch must fire independently — shard 0's
	// earlier episode must not have consumed the only warning. (The flight
	// dump itself is rate-limited per rank by design, so only the trace
	// event — the latch — is asserted here.)
	s1.notePoll(true)
	s1.outBlocked = true
	for i := 0; i < 2*emptyPollStallStreak; i++ {
		s1.notePoll(false)
	}
	warns = 0
	for _, ev := range tr.Events() {
		if ev.Type == tracing.EvStallWarn {
			warns++
		}
	}
	if warns != 2 {
		t.Fatalf("recorded %d stall warnings, want 2 (one per stalled shard)", warns)
	}
}

// TestShardedPeerModeDefault: the default (peer) steering with K=1 must be
// the plain endpoint — no views, same object behavior — and with K>1 on a
// provider that cannot shard it must fall back to 1 rather than fail.
func TestShardedFallbacks(t *testing.T) {
	f := fabric.New(2, fabric.TestProfile())
	s := NewSharded(f.Endpoint(0), Options{})
	if s.Shards() != 1 {
		t.Fatalf("default Shards() = %d, want 1", s.Shards())
	}
	if got := s.ShardFor(1, 99); got != s.Shard(0) {
		t.Fatal("K=1 ShardFor must return the single endpoint")
	}
	// A provider that is not a fabric.Sharder clamps to 1.
	s2 := NewSharded(plainProvider{f.Endpoint(1)}, Options{Shards: 4})
	if s2.Shards() != 1 {
		t.Fatalf("non-Sharder provider: Shards() = %d, want 1", s2.Shards())
	}
}

// plainProvider hides the Sharder interface of the wrapped provider.
type plainProvider struct{ fabric.Provider }

// TestShardMetricLabel pins the label splicing: names with existing labels
// get shard appended inside the braces, bare names grow a label set, and —
// the bit-identical guarantee — single-shard endpoints keep the exact names
// the Metric* constants and CI scrape greps expect.
func TestShardMetricLabel(t *testing.T) {
	cases := []struct {
		in         string
		idx, total int
		want       string
	}{
		{MetricPollsBusy, 2, 4, `lci_core_progress_polls_total{state="busy",shard="2"}`},
		{MetricPoolFree, 1, 4, `lci_core_pool_free{shard="1"}`},
		{MetricPollsBusy, 0, 1, MetricPollsBusy},
		{MetricPoolFree, 0, 1, MetricPoolFree},
		{MetricPoolFree, 0, 0, MetricPoolFree},
	}
	for _, c := range cases {
		if got := shardMetric(c.in, c.idx, c.total); got != c.want {
			t.Errorf("shardMetric(%q,%d,%d) = %q, want %q", c.in, c.idx, c.total, got, c.want)
		}
	}
}
