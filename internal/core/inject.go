package lci

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Fault injection for the progress server itself: LCI_INJECT_STALL wedges
// one shard's progress goroutine for a window, simulating the failure the
// health monitor's stuck-rank detector exists to catch (a progress loop
// blocked in a syscall, livelocked, or descheduled for good). The launchers
// set the variable for a single target rank, so the hook only needs to
// match the shard.
//
// Format: "shard:after:dur" — shard index, delay from Serve start, and
// stall duration, e.g. "1:3s:10s" wedges shard 1 for 10s starting 3s in.
// The stall is one-shot and respects stop, so shutdown is never hostage to
// an injected wedge.

// EnvInjectStall is the environment knob, read once per process.
const EnvInjectStall = "LCI_INJECT_STALL"

// stallInjection is one shard's pending injected wedge (nil on every
// production endpoint: the Serve loop pays a single predictable branch).
type stallInjection struct {
	after time.Duration
	dur   time.Duration
	done  bool // one-shot latch, server goroutine only
}

// ParseInjectStall parses an LCI_INJECT_STALL value. Exported so the
// launchers can validate their -inject-stall flag with the same grammar.
func ParseInjectStall(s string) (shard int, after, dur time.Duration, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("want shard:after:dur, got %q", s)
	}
	shard, err = strconv.Atoi(parts[0])
	if err != nil || shard < 0 {
		return 0, 0, 0, fmt.Errorf("bad shard in %q", s)
	}
	after, err = time.ParseDuration(parts[1])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad after in %q: %v", s, err)
	}
	dur, err = time.ParseDuration(parts[2])
	if err != nil || dur <= 0 {
		return 0, 0, 0, fmt.Errorf("bad dur in %q", s)
	}
	return shard, after, dur, nil
}

// injectStallFor returns the injection this shard should arm, nil for all
// shards when the knob is unset or malformed.
func injectStallFor(shardIdx int) *stallInjection {
	v := os.Getenv(EnvInjectStall)
	if v == "" {
		return nil
	}
	shard, after, dur, err := ParseInjectStall(v)
	if err != nil || shard != shardIdx {
		return nil
	}
	return &stallInjection{after: after, dur: dur}
}

// maybeInjectStall wedges the calling (server) goroutine once the arm delay
// has elapsed. Called from Serve only when an injection is configured.
func (e *Endpoint) maybeInjectStall(start time.Time, stop <-chan struct{}) {
	inj := e.injectStall
	if inj.done || time.Since(start) < inj.after {
		return
	}
	inj.done = true
	fmt.Fprintf(os.Stderr, "lci: injected stall: rank %d shard %d/%d wedged for %v\n",
		e.rank, e.shardIdx, e.shardTotal, inj.dur)
	t := time.NewTimer(inj.dur)
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
	}
}
