package lci

import (
	"time"

	"lcigraph/internal/tracing"
)

// PacketType is the LCI wire packet discriminator (Algorithm 3's cases).
type PacketType uint8

const (
	// EGR is an eager data packet: the payload travels in the packet.
	EGR PacketType = iota + 1
	// RTS (ready-to-send) opens a rendezvous: it carries the message size
	// and the sender's request id.
	RTS
	// RTR (ready-to-recv) answers an RTS: it carries the receiver's
	// registered rkey and request id back to the sender.
	RTR
	// FRG is a rendezvous payload fragment, used instead of an RDMA put on
	// transports without remote-write support (fabric.ErrNoRDMA): header
	// tag = receiver request id, meta = byte offset, data = chunk.
	FRG
	// rdmaDone is not an on-wire packet type: RDMA completions arrive as
	// fabric.KindPutDone frames whose immediate word is the receiver's
	// request id.
)

// Wire header layout (fabric.Frame.Header):
//
//	bits 56..63  packet type
//	bits 24..55  tag (32 bits)
//	bits  0..23  message id (tracing; 0 when tracing is off — see DESIGN.md §12)
//
// The message id is the sender's 24-bit tracing sequence; combined with the
// frame's source rank it reconstructs the global tracing.MsgID, which is how
// the receive side's lifecycle events correlate with the sender's. Protocol
// logic never reads it.
//
// fabric.Frame.Meta per type:
//
//	EGR: unused
//	RTS: senderReqID(32) << 32 | size(32)
//	RTR: senderReqID(32) << 32 | rkey(32); header tag field = recvReqID
func packHeader(t PacketType, tag, mid uint32) uint64 {
	return uint64(t)<<56 | uint64(tag)<<24 | uint64(mid&tracing.MsgIDMask)
}

func headerType(h uint64) PacketType { return PacketType(h >> 56) }
func headerTag(h uint64) uint32      { return uint32(h >> 24) }
func headerMID(h uint64) uint32      { return uint32(h) & tracing.MsgIDMask }

func packMeta(hi, lo uint32) uint64 { return uint64(hi)<<32 | uint64(lo) }
func metaHi(m uint64) uint32        { return uint32(m >> 32) }
func metaLo(m uint64) uint32        { return uint32(m) }

// Packet is a fixed-size send buffer from the global pool. A packet in
// flight owns either an eager payload copy (EGR) or a reference to the
// caller's source buffer (RTS) until the rendezvous completes.
type Packet struct {
	buf  []byte // eager staging buffer, len == eager limit
	n    int    // used bytes of buf
	home int    // pool shard the packet prefers to return to (locality)

	// In-flight state, set by SendEnq and read by the server.
	ptype  PacketType
	dst    int
	header uint64
	meta   uint64
	mid    uint32    // wire message id (tracing; 0 when off)
	src    []byte    // rendezvous source buffer (RTS)
	req    *Request  // owning request (RTS)
	t0     time.Time // sampled eager-latency start (zero: not sampled)
}

// payload returns the bytes this packet would put on the wire.
func (p *Packet) payload() []byte {
	if p.ptype == EGR {
		return p.buf[:p.n]
	}
	return nil
}

// reset clears in-flight state before the packet returns to the pool.
func (p *Packet) reset() {
	p.n = 0
	p.ptype = 0
	p.dst = 0
	p.header = 0
	p.meta = 0
	p.mid = 0
	p.src = nil
	p.req = nil
	p.t0 = time.Time{}
}
