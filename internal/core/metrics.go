package lci

import (
	"strconv"
	"strings"
	"time"

	"lcigraph/internal/telemetry"
)

// Registry names for the endpoint's own metrics (DESIGN.md §11).
const (
	MetricTxEGR = `lci_core_tx_packets_total{proto="egr"}`
	MetricTxRTS = `lci_core_tx_packets_total{proto="rts"}`
	MetricTxRTR = `lci_core_tx_packets_total{proto="rtr"}`
	MetricTxFRG = `lci_core_tx_packets_total{proto="frg"}`

	MetricRxEGR     = `lci_core_rx_packets_total{proto="egr"}`
	MetricRxRTS     = `lci_core_rx_packets_total{proto="rts"}`
	MetricRxRTR     = `lci_core_rx_packets_total{proto="rtr"}`
	MetricRxFRG     = `lci_core_rx_packets_total{proto="frg"}`
	MetricRxPutDone = `lci_core_rx_packets_total{proto="put_done"}`

	MetricSendFailures = "lci_core_send_failures_total"
	MetricRecvDeq      = "lci_core_recv_deq_total"

	MetricPollsBusy = `lci_core_progress_polls_total{state="busy"}`
	MetricPollsIdle = `lci_core_progress_polls_total{state="idle"}`

	MetricPoolFree     = "lci_core_pool_free"
	MetricPoolCapacity = "lci_core_pool_capacity"
	MetricQueueDepth   = "lci_core_queue_depth"

	MetricProgressIterNS = "lci_core_progress_iter_ns"
	MetricEagerLatencyNS = "lci_core_eager_latency_ns"
)

// Sampling strides for the timed paths. Calling time.Now() per message (or
// per progress poll) would dwarf the 64-byte datapath itself, so latency
// histograms sample every Nth event; the untimed events still count through
// the cheap atomic counters.
const (
	eagerSampleMask    = 64 - 1  // time every 64th eager send
	progressSampleMask = 256 - 1 // time every 256th progress iteration
)

// coreMetrics holds the endpoint's live metric handles. The zero value (all
// nil) is fully operative as a no-op: telemetry.Counter and Histogram
// methods are nil-safe, so a disabled registry costs one predictable-branch
// nil check per site.
type coreMetrics struct {
	rxEGR, rxRTS, rxRTR, rxFRG, rxPutDone *telemetry.Counter
	txRTR, txFRG                          *telemetry.Counter
	busy, idle                            *telemetry.Counter
	progressIter                          *telemetry.Histogram
	eagerLat                              *telemetry.Histogram

	// Busy/idle poll tallies accumulate in plain fields — Progress runs on
	// one goroutine, and a spinning progress loop calls it millions of times
	// a second, so even an uncontended atomic per iteration is measurable on
	// the 64 B datapath. flushPolls folds them into the registry counters
	// once per sampling window (the counters lag by < progressSampleMask+1
	// polls, irrelevant against the idle spin rate).
	busyN, idleN int64
}

// countPoll classifies one Progress call as busy or idle; the ratio is the
// paper's progress-engine utilization signal.
func (m *coreMetrics) countPoll(worked bool) {
	if worked {
		m.busyN++
	} else {
		m.idleN++
	}
}

// flushPolls publishes the accumulated busy/idle tallies.
func (m *coreMetrics) flushPolls() {
	if m.busyN > 0 {
		m.busy.Add(m.busyN)
		m.busyN = 0
	}
	if m.idleN > 0 {
		m.idle.Add(m.idleN)
		m.idleN = 0
	}
}

// shardMetric splices a `shard="i"` label into a metric name. Single-shard
// endpoints (total ≤ 1, i.e. every pre-sharding caller) get the name back
// unchanged, so the exported Metric* constants, NetStatsFromSnapshot and the
// CI scrape greps keep matching byte-for-byte at the default configuration.
func shardMetric(name string, idx, total int) string {
	if total <= 1 {
		return name
	}
	lbl := `shard="` + strconv.Itoa(idx) + `"`
	if i := strings.LastIndexByte(name, '}'); i >= 0 {
		return name[:i] + "," + lbl + "}"
	}
	return name + "{" + lbl + "}"
}

// metricName resolves a base metric name for this endpoint, adding the
// shard label when the endpoint is one shard of several.
func (e *Endpoint) metricName(base string) string {
	return shardMetric(base, e.shardIdx, e.shardTotal)
}

// initMetrics wires the endpoint into reg. The existing stat atomics stay
// the source of truth for TX/EGR/RTS, failures, and receives — they are
// re-read at snapshot time via counter funcs; only packet types with no
// pre-existing counter (RTR, FRG, per-proto RX) get live registry counters.
// Under endpoint sharding every series carries this shard's label — each
// shard owns its pool, queue and progress loop, so per-shard is the natural
// grain; rank totals are a sum over the label.
func (e *Endpoint) initMetrics(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	n := e.metricName
	e.m = coreMetrics{
		rxEGR:        reg.Counter(n(MetricRxEGR)),
		rxRTS:        reg.Counter(n(MetricRxRTS)),
		rxRTR:        reg.Counter(n(MetricRxRTR)),
		rxFRG:        reg.Counter(n(MetricRxFRG)),
		rxPutDone:    reg.Counter(n(MetricRxPutDone)),
		txRTR:        reg.Counter(n(MetricTxRTR)),
		txFRG:        reg.Counter(n(MetricTxFRG)),
		busy:         reg.Counter(n(MetricPollsBusy)),
		idle:         reg.Counter(n(MetricPollsIdle)),
		progressIter: reg.Histogram(n(MetricProgressIterNS)),
		eagerLat:     reg.Histogram(n(MetricEagerLatencyNS)),
	}
	reg.CounterFunc(n(MetricTxEGR), e.statEager.Load)
	reg.CounterFunc(n(MetricTxRTS), e.statRendezvous.Load)
	reg.CounterFunc(n(MetricSendFailures), e.statSendFails.Load)
	reg.CounterFunc(n(MetricRecvDeq), e.statRecvs.Load)
	reg.GaugeFunc(n(MetricPoolFree), telemetry.AggSum, func() int64 { return int64(e.pool.FreeCount()) })
	reg.GaugeFunc(n(MetricPoolCapacity), telemetry.AggSum, func() int64 { return int64(e.pool.Capacity()) })
	reg.GaugeFunc(n(MetricQueueDepth), telemetry.AggSum, func() int64 { return int64(e.q.Len()) })
}

// observeEagerLatency finishes a sampled eager injection-latency
// measurement (t0 zero means the send was not sampled).
func (e *Endpoint) observeEagerLatency(t0 time.Time) {
	if !t0.IsZero() {
		e.m.eagerLat.Observe(time.Since(t0).Nanoseconds())
	}
}
