package lci_test

import (
	"fmt"
	"runtime"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
)

// Example demonstrates the Queue interface end to end: an eager send, a
// rendezvous send, first-packet receiving, and flag-polled completion.
func Example() {
	fab := fabric.New(2, fabric.TestProfile())
	sender := lci.NewEndpoint(fab.Endpoint(0), lci.Options{})
	receiver := lci.NewEndpoint(fab.Endpoint(1), lci.Options{})

	stop := make(chan struct{})
	defer close(stop)
	go sender.Serve(stop)   // communication server, Algorithm 3
	go receiver.Serve(stop) // one per host

	worker := sender.Pool().RegisterWorker()

	// SEND-ENQ may fail when the packet pool is exhausted; retry, never
	// crash (Algorithm 1).
	send := func(tag uint32, payload []byte) *lci.Request {
		for {
			if r, ok := sender.SendEnq(worker, 1, tag, payload); ok {
				return r
			}
			runtime.Gosched()
		}
	}
	small := send(1, []byte("eager"))
	large := send(2, make([]byte, 8<<10)) // above the eager limit → rendezvous

	// RECV-DEQ returns messages in first-packet order; completion is a
	// single flag check (Algorithm 2).
	for got := 0; got < 2; {
		r, ok := receiver.RecvDeq()
		if !ok {
			runtime.Gosched()
			continue
		}
		r.Wait(nil)
		fmt.Printf("received tag=%d size=%d\n", r.Tag, r.Size)
		got++
	}
	small.Wait(nil)
	large.Wait(nil)
	fmt.Println("all sends complete")
	// Output:
	// received tag=1 size=5
	// received tag=2 size=8192
	// all sends complete
}
