package lci

import (
	"fmt"
	"sync/atomic"
	"time"

	"lcigraph/internal/concurrent"
	"lcigraph/internal/fabric"
	"lcigraph/internal/telemetry"
	"lcigraph/internal/tracing"
)

// Allocator provides the receive-side buffers for rendezvous messages (the
// paper's "allocator can be any thread-safe memory manager; in our case it
// is Abelian's allocator"). Implementations must be safe for concurrent use.
type Allocator interface {
	Alloc(n int) []byte
	Free(b []byte)
}

// heapAllocator is the default allocator: plain Go allocations.
type heapAllocator struct{}

func (heapAllocator) Alloc(n int) []byte { return make([]byte, n) }
func (heapAllocator) Free([]byte)        {}

// DefaultAllocator returns the plain heap allocator.
func DefaultAllocator() Allocator { return heapAllocator{} }

// Options configures an Endpoint.
type Options struct {
	// PoolPackets is the packet-pool size; it caps the injection rate.
	PoolPackets int
	// QueueDepth bounds the incoming-packet queue Q.
	QueueDepth int
	// MaxOutstanding bounds concurrent rendezvous sends and receives each.
	MaxOutstanding int
	// Workers sizes the pool's locality shards.
	Workers int
	// Allocator provides rendezvous receive buffers.
	Allocator Allocator
	// Telemetry is the metrics registry the endpoint reports into. Nil
	// selects the process-wide default registry (which honours
	// LCI_NO_TELEMETRY); pass telemetry.NewDisabled to opt out explicitly.
	Telemetry *telemetry.Registry
	// Tracer is the message-lifecycle event ring. Nil selects the
	// process-wide default tracer, which is itself nil — the no-op dark
	// path — unless LCI_TRACE is set.
	Tracer *tracing.Tracer

	// Shards is the number of progress shards NewSharded builds (see
	// shard.go). ≤ 1 (the default) keeps today's single progress server.
	// NewEndpoint ignores it — a bare Endpoint is always one shard.
	Shards int
	// ShardByTag steers eager/RTS traffic by message tag instead of by
	// peer rank. Only meaningful with Shards > 1.
	ShardByTag bool

	// shardIdx/shardTotal are set by NewSharded on each per-shard copy of
	// the options: this endpoint's place in the shard group. They stay
	// zero-valued for plain NewEndpoint callers (shard 0 of 1).
	shardIdx   int
	shardTotal int
}

func (o *Options) fill() {
	if o.PoolPackets <= 0 {
		o.PoolPackets = 256
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.MaxOutstanding <= 0 {
		o.MaxOutstanding = 1024
	}
	if o.MaxOutstanding > slotMask+1 {
		// Request ids carry the shard index above bit shardIDShift, so a
		// slot table can never exceed the slot field.
		o.MaxOutstanding = slotMask + 1
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Allocator == nil {
		o.Allocator = heapAllocator{}
	}
}

// sendPending tracks an RTS that awaits its RTR.
type sendPending struct {
	req *Request
	src []byte
	pkt *Packet
}

// recvPending tracks a rendezvous receive that awaits its RDMA put (or,
// on RDMA-less transports, its stream of FRG fragments).
type recvPending struct {
	req  *Request
	rkey uint32
	got  int // fragment bytes received so far (fragmented mode)
}

// slotTable is a fixed-size id-indexed table with a concurrent freelist,
// used to ship request identities across the wire.
type slotTable[T any] struct {
	slots []T
	free  *concurrent.MPMC[uint32]
}

func newSlotTable[T any](n int) *slotTable[T] {
	t := &slotTable[T]{free: concurrent.NewMPMC[uint32](n)}
	t.slots = make([]T, t.free.Cap())
	for i := range t.slots {
		t.free.Enqueue(uint32(i))
	}
	return t
}

func (t *slotTable[T]) alloc(v T) (uint32, bool) {
	id, ok := t.free.Dequeue()
	if !ok {
		return 0, false
	}
	t.slots[id] = v
	return id, true
}

func (t *slotTable[T]) get(id uint32) T { return t.slots[id] }

func (t *slotTable[T]) release(id uint32) {
	var zero T
	t.slots[id] = zero
	t.free.Enqueue(id)
}

// outKind discriminates deferred network operations parked on the outbox.
type outKind uint8

const (
	outPacket outKind = iota + 1 // retry fabric.Send of a pool packet
	outCtrl                      // retry fabric.Send of a packet-less control frame
	outPut                       // retry fabric.Put of a rendezvous payload
)

type outItem struct {
	kind   outKind
	dst    int
	header uint64
	meta   uint64
	pkt    *Packet // outPacket
	// outPut:
	rkey   uint32
	src    []byte
	imm    uint64
	sendID uint32
}

// Endpoint is one host's LCI instance over a fabric endpoint.
//
// SendEnq and RecvDeq may be called from any compute thread. Progress (or
// Serve) must be driven by exactly one communication-server goroutine.
type Endpoint struct {
	fep   fabric.Provider
	pool  *Pool
	q     *concurrent.MPMC[*fabric.Frame] // Q: global concurrent incoming queue
	out   *concurrent.MPSC[outItem]       // deferred ops, flushed by the server
	sends *slotTable[sendPending]
	recvs *slotTable[*recvPending]
	alloc Allocator

	eagerLimit   int
	serverWorker int
	stash        []*fabric.Frame // polled frames awaiting space in Q
	outScratch   []outItem       // flushOutbox reuse: items blocked this round
	blockedDst   map[int]bool    // flushOutbox reuse: destinations that hit ErrResource
	outBlocked   bool            // last flushOutbox re-parked items (server goroutine only)

	// frags are in-progress fragmented rendezvous sends (RDMA-less
	// transports only), drained by the server.
	frags []*fragJob

	// injectStall is the armed LCI_INJECT_STALL fault (nil in production);
	// see inject.go.
	injectStall *stallInjection

	statEager      atomic.Int64
	statRendezvous atomic.Int64
	statSendFails  atomic.Int64
	statRecvs      atomic.Int64

	// m holds the telemetry handles (zero value when disabled: all methods
	// are nil-safe no-ops).
	m coreMetrics

	// ps is this endpoint's progress-loop state — see progressState for the
	// ownership rule. When the endpoint is one shard of a Sharded group,
	// each shard has its own ps; nothing in it is rank-global.
	ps progressState

	// shardIdx/shardTotal identify this endpoint inside a Sharded group
	// (0 of 1 for a plain endpoint); idBits is shardIdx pre-shifted for
	// stamping into request ids. All three are immutable after NewEndpoint.
	shardIdx   int
	shardTotal int
	idBits     uint32

	// tr is the lifecycle tracer (nil = dark path: every site pays one
	// predictable branch). rank is cached so event sites skip the provider
	// call; midSeq allocates wire message ids (24-bit, wrapping) and is only
	// touched when tr != nil.
	tr     *tracing.Tracer
	rank   int
	midSeq atomic.Uint32
}

// progressState is the mutable state of one progress loop: the sampling
// clock for timed iterations and the busy/idle edge detector behind the
// EvProgressBusy/EvProgressIdle transition events and the empty-poll stall
// latch.
//
// Ownership rule: every field in this struct is owned EXCLUSIVELY by the
// single goroutine driving this endpoint's Progress (the shard's
// communication server). The fields are deliberately plain — not atomic —
// because no other goroutine may read or write them; under endpoint
// sharding each shard embeds its own copy, so K progress goroutines never
// share an instance. Anything that other goroutines must observe (stat
// counters, pool occupancy) lives outside this struct as atomics.
type progressState struct {
	seq        uint64 // sampling clock for the timed progress iterations
	wasBusy    bool   // previous poll did work — busy/idle edge detection
	idleStreak uint32 // consecutive empty polls; arms the stall latch
}

// Stats are endpoint-level counters for observability and tests.
type Stats struct {
	EagerSends      int64 // SEND-ENQ accepted on the eager path
	RendezvousSends int64 // SEND-ENQ accepted on the rendezvous path
	SendFailures    int64 // retriable SEND-ENQ failures (pool/table full)
	Receives        int64 // messages handed out by RECV-DEQ
}

// Stats returns a snapshot of the endpoint's counters.
func (e *Endpoint) Stats() Stats {
	return Stats{
		EagerSends:      e.statEager.Load(),
		RendezvousSends: e.statRendezvous.Load(),
		SendFailures:    e.statSendFails.Load(),
		Receives:        e.statRecvs.Load(),
	}
}

// fragJob is one rendezvous payload being streamed as FRG fragments.
type fragJob struct {
	dst    int
	recvID uint32
	sendID uint32
	mid    uint32 // wire message id carried on each fragment (tracing)
	src    []byte
	off    int
}

// NewEndpoint builds an LCI endpoint over any fabric provider (the
// simulated fabric's *fabric.Endpoint or a netfabric UDP provider).
func NewEndpoint(fep fabric.Provider, opt Options) *Endpoint {
	opt.fill()
	eager := fep.EagerLimit()
	e := &Endpoint{
		fep:        fep,
		pool:       NewPool(opt.PoolPackets, eager, opt.Workers),
		q:          concurrent.NewMPMC[*fabric.Frame](opt.QueueDepth),
		out:        concurrent.NewMPSC[outItem](),
		sends:      newSlotTable[sendPending](opt.MaxOutstanding),
		recvs:      newSlotTable[*recvPending](opt.MaxOutstanding),
		alloc:      opt.Allocator,
		eagerLimit: eager,
	}
	e.shardIdx = opt.shardIdx
	e.shardTotal = opt.shardTotal
	if e.shardTotal < 1 {
		e.shardTotal = 1
	}
	e.idBits = uint32(e.shardIdx) << shardIDShift
	e.injectStall = injectStallFor(e.shardIdx)
	e.serverWorker = e.pool.RegisterWorker()
	reg := opt.Telemetry
	if reg == nil {
		reg = telemetry.Default()
	}
	e.initMetrics(reg)
	e.tr = opt.Tracer
	if e.tr == nil {
		e.tr = tracing.Default()
	}
	e.rank = fep.Rank()
	return e
}

// Tracer returns the endpoint's lifecycle tracer (nil when tracing is off).
func (e *Endpoint) Tracer() *tracing.Tracer { return e.tr }

// nextMsgID allocates the next 24-bit wire message id and its global
// tracing id. Called only when the tracer is live; id 0 is reserved for
// "untraced", so the sequence skips it on wrap.
func (e *Endpoint) nextMsgID() (mid uint32, gid uint64) {
	mid = e.midSeq.Add(1) & tracing.MsgIDMask
	if mid == 0 {
		mid = e.midSeq.Add(1) & tracing.MsgIDMask
	}
	return mid, tracing.MsgID(e.rank, mid)
}

// Rank returns the host rank.
func (e *Endpoint) Rank() int { return e.fep.Rank() }

// EagerLimit returns the eager/rendezvous protocol threshold in bytes.
func (e *Endpoint) EagerLimit() int { return e.eagerLimit }

// Pool exposes the packet pool (for worker registration and stats).
func (e *Endpoint) Pool() *Pool { return e.pool }

// SendEnq initiates a send of buf to dst with the given tag (Algorithm 1).
// worker is the caller's pool worker id from Pool().RegisterWorker().
//
// On success it returns a request whose Done() becomes true when buf may be
// reused (immediately for eager sends — the payload is staged into a pool
// packet — and after the RDMA put for rendezvous sends).
//
// It returns ok == false when the packet pool (or, for large messages, the
// outstanding-send table) is exhausted; the caller should progress its
// pending work and retry — the failure is never fatal.
func (e *Endpoint) SendEnq(worker, dst int, tag uint32, buf []byte) (*Request, bool) {
	pkt := e.pool.Alloc(worker)
	if pkt == nil {
		e.statSendFails.Add(1)
		return nil, false
	}
	r := &Request{Rank: dst, Tag: tag, Size: len(buf)}
	var mid uint32
	if e.tr != nil {
		mid, r.MsgID = e.nextMsgID()
	}
	if len(buf) <= e.eagerLimit {
		// Eager: stage into the packet; the request completes now because
		// the user's buffer is already copied out.
		pkt.n = copy(pkt.buf, buf)
		pkt.ptype = EGR
		pkt.dst = dst
		pkt.header = packHeader(EGR, tag, mid)
		pkt.meta = 0
		pkt.mid = mid
		r.markDone()
		if e.tr != nil {
			e.tr.Record(tracing.EvSendEnq, dst, tracing.ProtoEGR, len(buf), r.MsgID)
		}
		// Sample injection latency (SEND-ENQ to fabric accept, outbox
		// deferral included) every Nth eager send off the counter we
		// already pay for; unsampled sends skip the clock reads entirely.
		var t0 time.Time
		if n := e.statEager.Add(1); e.m.eagerLat != nil && n&eagerSampleMask == 0 {
			t0 = time.Now()
		}
		if err := e.fep.Send(dst, pkt.header, pkt.meta, pkt.payload()); err != nil {
			if err != fabric.ErrResource {
				panic(fmt.Sprintf("lci: eager send: %v", err))
			}
			pkt.t0 = t0
			e.out.Push(outItem{kind: outPacket, dst: dst, pkt: pkt})
			if e.tr != nil {
				e.tr.Record(tracing.EvRetry, dst, tracing.ProtoEGR, len(buf), r.MsgID)
			}
			return r, true
		}
		if e.tr != nil {
			e.tr.Record(tracing.EvEagerTx, dst, tracing.ProtoEGR, len(buf), r.MsgID)
		}
		e.observeEagerLatency(t0)
		e.pool.Free(worker, pkt)
		return r, true
	}

	// Rendezvous: ship an RTS carrying our request id and the size.
	sid, ok := e.sends.alloc(sendPending{req: r, src: buf, pkt: pkt})
	if !ok {
		e.pool.Free(worker, pkt)
		e.statSendFails.Add(1)
		return nil, false
	}
	e.statRendezvous.Add(1)
	pkt.ptype = RTS
	pkt.dst = dst
	pkt.header = packHeader(RTS, tag, mid)
	pkt.meta = packMeta(e.encodeID(sid), uint32(len(buf)))
	pkt.mid = mid
	pkt.src = buf
	pkt.req = r
	if e.tr != nil {
		e.tr.RecordArg(tracing.EvSendEnq, dst, tracing.ProtoRTS, len(buf), 1, r.MsgID)
	}
	if err := e.fep.Send(dst, pkt.header, pkt.meta, nil); err != nil {
		if err != fabric.ErrResource {
			e.sends.release(sid)
			e.pool.Free(worker, pkt)
			panic(fmt.Sprintf("lci: rts send: %v", err))
		}
		e.out.Push(outItem{kind: outPacket, dst: dst, pkt: pkt})
		if e.tr != nil {
			e.tr.Record(tracing.EvRetry, dst, tracing.ProtoRTS, len(buf), r.MsgID)
		}
		return r, true
	}
	if e.tr != nil {
		e.tr.Record(tracing.EvRTSTx, dst, tracing.ProtoRTS, len(buf), r.MsgID)
	}
	return r, true
}

// RecvDeq returns the next incoming message in first-packet order
// (Algorithm 2). There is no source or tag matching.
//
// For eager messages the returned request is already Done and Data holds the
// payload. For rendezvous messages RecvDeq allocates the target buffer,
// answers RTR, and returns a Pending request whose Data fills in place; the
// request completes when the RDMA put lands.
//
// ok == false means nothing is pending right now.
func (e *Endpoint) RecvDeq() (*Request, bool) {
	f, ok := e.q.Dequeue()
	if !ok {
		return nil, false
	}
	e.statRecvs.Add(1)
	tag := headerTag(f.Header)
	switch headerType(f.Header) {
	case EGR:
		// The request keeps the pooled frame: Data aliases its wire buffer.
		// The consumer recycles it with Request.Release once done.
		r := &Request{Data: f.Data, Size: len(f.Data), Rank: f.Src, Tag: tag, frame: f}
		if e.tr != nil {
			if mid := headerMID(f.Header); mid != 0 {
				r.MsgID = tracing.MsgID(f.Src, mid)
			}
			e.tr.Record(tracing.EvRecvDeq, f.Src, tracing.ProtoEGR, len(f.Data), r.MsgID)
		}
		r.markDone()
		return r, true
	case RTS:
		sid, size := metaHi(f.Meta), int(metaLo(f.Meta))
		buf := e.alloc.Alloc(size)
		r := &Request{Data: buf, Size: size, Rank: f.Src, Tag: tag}
		if e.tr != nil {
			if mid := headerMID(f.Header); mid != 0 {
				r.MsgID = tracing.MsgID(f.Src, mid)
			}
			e.tr.RecordArg(tracing.EvRecvDeq, f.Src, tracing.ProtoRTS, size, 1, r.MsgID)
		}
		pend := &recvPending{req: r}
		rid, ok := e.recvs.alloc(pend)
		if !ok {
			// Outstanding-receive table full: put the message back and let
			// the caller retry once completions drain.
			e.alloc.Free(buf)
			for !e.q.Enqueue(f) {
				// Q was full of newer messages; spin — the server cannot
				// refill Q faster than we drain it here.
			}
			return nil, false
		}
		var rkey uint32
		if e.fep.HasRDMA() {
			var err error
			rkey, err = e.fep.RegisterRegion(buf)
			if err != nil {
				e.recvs.release(rid)
				e.alloc.Free(buf)
				for !e.q.Enqueue(f) {
				}
				return nil, false
			}
			pend.rkey = rkey
		}
		header := packHeader(RTR, e.encodeID(rid), headerMID(f.Header))
		meta := packMeta(sid, rkey)
		e.m.txRTR.Add(1)
		if err := e.fep.Send(f.Src, header, meta, nil); err != nil {
			if err != fabric.ErrResource {
				panic(fmt.Sprintf("lci: rtr send: %v", err))
			}
			e.out.Push(outItem{kind: outCtrl, dst: f.Src, header: header, meta: meta})
			if e.tr != nil {
				e.tr.Record(tracing.EvRetry, f.Src, tracing.ProtoRTR, 0, r.MsgID)
			}
		} else if e.tr != nil {
			e.tr.Record(tracing.EvRTRTx, f.Src, tracing.ProtoRTR, size, r.MsgID)
		}
		f.Release() // RTS control frame fully consumed
		return r, true
	default:
		panic(fmt.Sprintf("lci: unexpected packet type %d in queue", headerType(f.Header)))
	}
}

// PendingIncoming returns a racy estimate of messages waiting in Q.
func (e *Endpoint) PendingIncoming() int { return e.q.Len() }
