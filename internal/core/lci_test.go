package lci

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"lcigraph/internal/fabric"
)

// pair builds two connected LCI endpoints over a test fabric.
func pair(t testing.TB, opt Options) (*Endpoint, *Endpoint, func()) {
	t.Helper()
	f := fabric.New(2, fabric.TestProfile())
	a := NewEndpoint(f.Endpoint(0), opt)
	b := NewEndpoint(f.Endpoint(1), opt)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, e := range []*Endpoint{a, b} {
		wg.Add(1)
		go func(e *Endpoint) {
			defer wg.Done()
			e.Serve(stop)
		}(e)
	}
	return a, b, func() {
		close(stop)
		wg.Wait()
	}
}

// recvOne polls RecvDeq until a message arrives and completes, yielding so
// the server goroutines run even on GOMAXPROCS=1.
func recvOne(e *Endpoint) *Request {
	for {
		r, ok := e.RecvDeq()
		if !ok {
			runtime.Gosched()
			continue
		}
		r.Wait(nil)
		return r
	}
}

// sendRetry retries SendEnq until it succeeds.
func sendRetry(e *Endpoint, w, dst int, tag uint32, buf []byte) *Request {
	for {
		if r, ok := e.SendEnq(w, dst, tag, buf); ok {
			return r
		}
		runtime.Gosched()
	}
}

func TestEagerRoundTrip(t *testing.T) {
	a, b, shutdown := pair(t, Options{})
	defer shutdown()
	w := a.Pool().RegisterWorker()

	msg := []byte("small message")
	r, ok := a.SendEnq(w, 1, 77, msg)
	if !ok {
		t.Fatal("SendEnq failed on idle endpoint")
	}
	if !r.Done() {
		t.Fatal("eager send not immediately reusable")
	}
	msg[0] = 'X' // must not corrupt in-flight copy

	got := recvOne(b)
	if got.Rank != 0 || got.Tag != 77 || got.Size != 13 {
		t.Fatalf("request = %+v", got)
	}
	if string(got.Data) != "small message" {
		t.Fatalf("payload = %q", got.Data)
	}
}

func TestRendezvousRoundTrip(t *testing.T) {
	a, b, shutdown := pair(t, Options{})
	defer shutdown()
	w := a.Pool().RegisterWorker()

	big := make([]byte, a.EagerLimit()*4+123)
	rng := rand.New(rand.NewSource(7))
	rng.Read(big)

	r, ok := a.SendEnq(w, 1, 5, big)
	if !ok {
		t.Fatal("SendEnq failed")
	}
	if r.Done() {
		t.Fatal("rendezvous send completed before RTR/put")
	}
	got := recvOne(b)
	if got.Size != len(big) || got.Rank != 0 || got.Tag != 5 {
		t.Fatalf("request = %+v (size=%d want %d)", got, got.Size, len(big))
	}
	if !bytes.Equal(got.Data, big) {
		t.Fatal("rendezvous payload corrupted")
	}
	r.Wait(nil)
}

func TestZeroLengthMessage(t *testing.T) {
	a, b, shutdown := pair(t, Options{})
	defer shutdown()
	w := a.Pool().RegisterWorker()
	if _, ok := a.SendEnq(w, 1, 9, nil); !ok {
		t.Fatal("zero-length SendEnq failed")
	}
	got := recvOne(b)
	if got.Size != 0 || got.Tag != 9 {
		t.Fatalf("request = %+v", got)
	}
}

func TestRecvDeqEmptyFails(t *testing.T) {
	_, b, shutdown := pair(t, Options{})
	defer shutdown()
	if _, ok := b.RecvDeq(); ok {
		t.Fatal("RecvDeq returned a message on idle endpoint")
	}
}

// TestSendEnqFailsWhenPoolExhausted: the pool bounds injection; SendEnq
// fails (retriably) rather than blocking or crashing.
func TestSendEnqFailsWhenPoolExhausted(t *testing.T) {
	// No server on the receiving side and a tiny ring, so packets pile up.
	f := fabric.New(2, func() fabric.Profile {
		p := fabric.TestProfile()
		p.RingDepth = 2
		return p
	}())
	a := NewEndpoint(f.Endpoint(0), Options{PoolPackets: 4, Workers: 1})
	w := a.Pool().RegisterWorker()

	okCount := 0
	for i := 0; i < 64; i++ {
		_, ok := a.SendEnq(w, 1, 0, []byte{1})
		if ok {
			okCount++
		} else {
			break
		}
	}
	// 2 land in the ring and are freed; subsequent ones park on the outbox
	// holding their packets until the pool (4) runs dry.
	if okCount >= 64 {
		t.Fatal("SendEnq never failed despite exhausted pool")
	}
	// Draining the peer frees resources and sends become possible again.
	b := NewEndpoint(f.Endpoint(1), Options{})
	for i := 0; i < 100; i++ {
		a.Progress()
		for {
			if _, ok := b.RecvDeq(); !ok {
				break
			}
		}
		b.Progress()
	}
	if _, ok := a.SendEnq(w, 1, 0, []byte{2}); !ok {
		t.Fatal("SendEnq still failing after drain")
	}
}

// TestFirstPacketPolicy: no matching — messages of different tags/sources
// are delivered in arrival order to whoever calls RecvDeq.
func TestFirstPacketPolicy(t *testing.T) {
	f := fabric.New(3, fabric.TestProfile())
	a := NewEndpoint(f.Endpoint(0), Options{})
	b := NewEndpoint(f.Endpoint(1), Options{})
	c := NewEndpoint(f.Endpoint(2), Options{})
	stop := make(chan struct{})
	defer close(stop)
	go c.Serve(stop)

	wa, wb := a.Pool().RegisterWorker(), b.Pool().RegisterWorker()
	a.SendEnq(wa, 2, 1, []byte("from-a"))
	a.Progress()
	b.SendEnq(wb, 2, 2, []byte("from-b"))
	b.Progress()

	got := map[string]bool{}
	for len(got) < 2 {
		r, ok := c.RecvDeq()
		if !ok {
			runtime.Gosched()
			continue
		}
		r.Wait(nil)
		got[string(r.Data)] = true
	}
	if !got["from-a"] || !got["from-b"] {
		t.Fatalf("got %v", got)
	}
}

// TestManyThreadsManyMessages hammers one receiver with eager + rendezvous
// traffic from several sender threads and checks exact delivery.
func TestManyThreadsManyMessages(t *testing.T) {
	a, b, shutdown := pair(t, Options{PoolPackets: 32, QueueDepth: 64, MaxOutstanding: 64})
	defer shutdown()

	const senders = 4
	const perSender = 100
	var totalBytes atomic.Int64

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			w := a.Pool().RegisterWorker()
			rng := rand.New(rand.NewSource(int64(s)))
			for i := 0; i < perSender; i++ {
				size := rng.Intn(3 * a.EagerLimit()) // mix eager and rendezvous
				buf := make([]byte, size)
				for j := range buf {
					buf[j] = byte(s)
				}
				r := sendRetry(a, w, 1, uint32(s), buf)
				r.Wait(nil) // rendezvous sends must finish before buf reuse
				totalBytes.Add(int64(size))
			}
		}(s)
	}

	var recvBytes int64
	var recvMsgs int
	done := make(chan struct{})
	go func() {
		defer close(done)
		var pending []*Request
		for recvMsgs < senders*perSender {
			if r, ok := b.RecvDeq(); ok {
				pending = append(pending, r)
			} else {
				runtime.Gosched()
			}
			keep := pending[:0]
			for _, r := range pending {
				if r.Done() {
					for _, by := range r.Data {
						if by != byte(r.Tag) {
							t.Errorf("corrupt byte from sender %d", r.Tag)
							return
						}
					}
					recvBytes += int64(r.Size)
					recvMsgs++
				} else {
					keep = append(keep, r)
				}
			}
			pending = keep
		}
	}()
	wg.Wait()
	<-done
	if recvBytes != totalBytes.Load() {
		t.Fatalf("received %d bytes, sent %d", recvBytes, totalBytes.Load())
	}
}

// TestPoolConservation: after quiescence every packet is back in the pool.
func TestPoolConservation(t *testing.T) {
	a, b, shutdown := pair(t, Options{PoolPackets: 16, Workers: 1})
	w := a.Pool().RegisterWorker()
	for i := 0; i < 100; i++ {
		r := sendRetry(a, w, 1, 0, make([]byte, (i%40)*100))
		got := recvOne(b)
		if got.Size != (i%40)*100 {
			t.Fatalf("msg %d: size %d", i, got.Size)
		}
		r.Wait(nil)
	}
	shutdown()
	a.Drain()
	if n := a.Pool().FreeCount(); n != 16 {
		t.Fatalf("pool holds %d packets after quiescence, want 16", n)
	}
}

func TestPoolLocality(t *testing.T) {
	p := NewPool(8, 64, 2)
	w0, w1 := p.RegisterWorker(), p.RegisterWorker()
	if w0 == w1 {
		t.Fatal("workers share a shard id")
	}
	pkt := p.Alloc(w0)
	if pkt == nil {
		t.Fatal("alloc failed")
	}
	p.Free(w0, pkt)
	again := p.Alloc(w0)
	if again != pkt {
		t.Error("freed packet not cached in worker shard")
	}
	p.Free(w0, again)
	if n := p.FreeCount(); n != 8 {
		t.Fatalf("FreeCount = %d, want 8", n)
	}
	// Exhaustion: drain everything via the shard that holds the cached
	// packet, then the next alloc fails.
	var all []*Packet
	for {
		q := p.Alloc(w0)
		if q == nil {
			break
		}
		all = append(all, q)
	}
	if len(all) != 8 {
		t.Fatalf("drained %d packets, want 8", len(all))
	}
	if p.Alloc(w1) != nil {
		t.Fatal("alloc succeeded on exhausted pool")
	}
	for _, q := range all {
		p.Free(w1, q)
	}
	if n := p.FreeCount(); n != 8 {
		t.Fatalf("FreeCount after refill = %d, want 8", n)
	}
}

// TestFragmentedRendezvous: on an RDMA-less profile, large messages travel
// as FRG streams and arrive intact.
func TestFragmentedRendezvous(t *testing.T) {
	f := fabric.New(2, fabric.Sockets())
	a := NewEndpoint(f.Endpoint(0), Options{})
	b := NewEndpoint(f.Endpoint(1), Options{})
	stop := make(chan struct{})
	defer close(stop)
	go a.Serve(stop)
	go b.Serve(stop)
	w := a.Pool().RegisterWorker()

	big := make([]byte, a.EagerLimit()*7+321)
	rng := rand.New(rand.NewSource(5))
	rng.Read(big)
	r := sendRetry(a, w, 1, 9, big)
	got := recvOne(b)
	if got.Size != len(big) || !bytes.Equal(got.Data, big) {
		t.Fatal("fragmented payload corrupted")
	}
	r.Wait(nil)

	// Several concurrent fragmented messages interleave safely.
	const n = 5
	var reqs []*Request
	for i := 0; i < n; i++ {
		buf := bytes.Repeat([]byte{byte(i + 1)}, a.EagerLimit()*2+i)
		reqs = append(reqs, sendRetry(a, w, 1, uint32(i), buf))
	}
	for i := 0; i < n; i++ {
		got := recvOne(b)
		for _, by := range got.Data {
			if by != byte(got.Tag+1) {
				t.Fatalf("interleaved fragment corruption on tag %d", got.Tag)
			}
		}
	}
	for _, r := range reqs {
		r.Wait(nil)
	}
}

func TestHeaderPacking(t *testing.T) {
	for _, typ := range []PacketType{EGR, RTS, RTR} {
		for _, tag := range []uint32{0, 1, 1 << 20, 0xffffffff} {
			for _, mid := range []uint32{0, 1, 0xffffff} {
				h := packHeader(typ, tag, mid)
				if headerType(h) != typ || headerTag(h) != tag || headerMID(h) != mid {
					t.Fatalf("pack/unpack mismatch: type %d tag %d mid %d", typ, tag, mid)
				}
			}
		}
	}
	m := packMeta(0xdeadbeef, 0x12345678)
	if metaHi(m) != 0xdeadbeef || metaLo(m) != 0x12345678 {
		t.Fatal("meta pack/unpack mismatch")
	}
}

// BenchmarkPingPongEager is the LCI "queue" data point of Fig. 1 in
// miniature: one-way small messages with a progress server per side.
func BenchmarkPingPongEager(b *testing.B) {
	a, e, shutdown := pair(b, Options{})
	defer shutdown()
	w := a.Pool().RegisterWorker()
	we := e.Pool().RegisterWorker()
	buf := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sendRetry(a, w, 1, 0, buf)
		r := recvOne(e)
		sendRetry(e, we, 0, 0, r.Data[:8])
		recvOne(a)
	}
}
