package lci

import (
	"sync"
	"sync/atomic"

	"lcigraph/internal/concurrent"
)

// Pool is the global concurrent packet pool of Algorithm 1 ("P").
//
// It is locality-aware in the style the paper cites: each worker thread
// (identified by a small integer it obtains from RegisterWorker) has a
// private shard it allocates from and frees to first, falling back to a
// shared fetch-and-add MPMC freelist. A packet remembers its home shard so
// packets tend to stay hot in the cache of the thread that uses them.
//
// The pool is bounded: Alloc fails when every packet is in flight, which is
// LCI's injection-rate cap and the source of SendEnq's retriable failure.
type Pool struct {
	shared    *concurrent.MPMC[*Packet]
	shards    []poolShard
	nextShard atomic.Int32
	capacity  int
	bufSize   int
}

const shardCache = 8 // max packets parked per worker shard

type poolShard struct {
	_     [64]byte
	mu    sync.Mutex
	local []*Packet
	_     [64]byte
}

// NewPool creates a pool of n packets whose staging buffers hold bufSize
// bytes each, with per-worker shards for up to workers threads.
func NewPool(n, bufSize, workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		shared:   concurrent.NewMPMC[*Packet](n),
		shards:   make([]poolShard, workers),
		capacity: n,
		bufSize:  bufSize,
	}
	for i := 0; i < n; i++ {
		pkt := &Packet{buf: make([]byte, bufSize), home: i % workers}
		p.shared.Enqueue(pkt)
	}
	return p
}

// Capacity returns the total number of packets.
func (p *Pool) Capacity() int { return p.capacity }

// BufSize returns the per-packet staging-buffer size (the eager limit).
func (p *Pool) BufSize() int { return p.bufSize }

// RegisterWorker hands out a worker id for locality-aware alloc/free. Ids
// wrap around when more workers register than shards exist.
func (p *Pool) RegisterWorker() int {
	return int(p.nextShard.Add(1)-1) % len(p.shards)
}

// Alloc takes a packet, preferring the worker's shard, then the shared
// list, then stealing from sibling shards — a small pool must never report
// exhaustion while packets sit idle in another worker's cache (that strands
// senders behind a server that freed everything into its own shard). It
// returns nil when every packet is genuinely in flight (the caller retries
// later — never fatal).
func (p *Pool) Alloc(worker int) *Packet {
	s := &p.shards[worker%len(p.shards)]
	s.mu.Lock()
	if n := len(s.local); n > 0 {
		pkt := s.local[n-1]
		s.local = s.local[:n-1]
		s.mu.Unlock()
		return pkt
	}
	s.mu.Unlock()
	if pkt, ok := p.shared.Dequeue(); ok {
		return pkt
	}
	for i := range p.shards {
		v := &p.shards[i]
		if v == s {
			continue
		}
		v.mu.Lock()
		if n := len(v.local); n > 0 {
			pkt := v.local[n-1]
			v.local = v.local[:n-1]
			v.mu.Unlock()
			return pkt
		}
		v.mu.Unlock()
	}
	return nil
}

// Free returns a packet. If the packet's home shard matches the worker's
// and has room, it is cached locally; otherwise it goes to the shared list.
func (p *Pool) Free(worker int, pkt *Packet) {
	pkt.reset()
	s := &p.shards[worker%len(p.shards)]
	s.mu.Lock()
	if len(s.local) < shardCache {
		s.local = append(s.local, pkt)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	if !p.shared.Enqueue(pkt) {
		// Cannot happen unless more packets are freed than allocated;
		// dropping would leak capacity, so panic loudly in development.
		panic("lci: packet pool overflow (double free?)")
	}
}

// Available returns a racy estimate of idle packets (shared list only).
func (p *Pool) Available() int { return p.shared.Len() }

// FreeCount returns the number of idle packets including those cached in
// worker shards. It is exact only when the pool is quiescent; use it for
// conservation checks in tests and shutdown assertions.
func (p *Pool) FreeCount() int {
	n := p.shared.Len()
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		n += len(s.local)
		s.mu.Unlock()
	}
	return n
}
