package lci

import (
	"runtime"
	"testing"

	"lcigraph/internal/fabric"
)

func TestEndpointStats(t *testing.T) {
	a, b, shutdown := pair(t, Options{PoolPackets: 2, Workers: 1})
	defer shutdown()
	w := a.Pool().RegisterWorker()

	sendRetry(a, w, 1, 0, make([]byte, 8))                     // eager
	r := sendRetry(a, w, 1, 0, make([]byte, 4*a.EagerLimit())) // rendezvous
	recvOne(b)
	recvOne(b)
	r.Wait(nil)

	st := a.Stats()
	if st.EagerSends != 1 || st.RendezvousSends != 1 {
		t.Fatalf("send stats = %+v", st)
	}
	if b.Stats().Receives != 2 {
		t.Fatalf("recv stats = %+v", b.Stats())
	}
	// Exhaust the tiny pool so a failure is recorded.
	var held []*Packet
	for {
		p := a.Pool().Alloc(w)
		if p == nil {
			break
		}
		held = append(held, p)
	}
	if _, ok := a.SendEnq(w, 1, 0, []byte{1}); ok {
		t.Fatal("send succeeded with empty pool")
	}
	if a.Stats().SendFailures == 0 {
		t.Fatal("pool-exhaustion failure not counted")
	}
	for _, p := range held {
		a.Pool().Free(w, p)
	}
}

// TestOutstandingRecvTableRecovers: more concurrent rendezvous receives
// than table slots; RecvDeq reports retriable failure and recovers once
// earlier transfers complete.
func TestOutstandingRecvTableRecovers(t *testing.T) {
	a, b, shutdown := pair(t, Options{MaxOutstanding: 2, PoolPackets: 16})
	defer shutdown()
	w := a.Pool().RegisterWorker()

	const n = 5
	reqs := make(chan *Request, n)
	go func() {
		// Send slots free only as the receiver answers, so sending must
		// overlap receiving (as the runtimes do).
		for i := 0; i < n; i++ {
			reqs <- sendRetry(a, w, 1, uint32(i), make([]byte, 2*a.EagerLimit()))
		}
		close(reqs)
	}()
	sawFailure := false
	done := 0
	var pending []*Request
	for done < n {
		r, ok := b.RecvDeq()
		if !ok {
			sawFailure = true // empty queue or full table — both retriable
			runtime.Gosched()
		} else {
			pending = append(pending, r)
		}
		keep := pending[:0]
		for _, r := range pending {
			if r.Done() {
				done++
			} else {
				keep = append(keep, r)
			}
		}
		pending = keep
	}
	if !sawFailure {
		t.Log("table never observed full (timing-dependent); deliveries still exact")
	}
	for r := range reqs {
		r.Wait(nil)
	}
}

// TestDrainQuiesces: after traffic, Drain leaves no pending work.
func TestDrainQuiesces(t *testing.T) {
	f := fabric.New(2, fabric.TestProfile())
	a := NewEndpoint(f.Endpoint(0), Options{Workers: 1})
	b := NewEndpoint(f.Endpoint(1), Options{Workers: 1})
	w := a.Pool().RegisterWorker()
	for i := 0; i < 10; i++ {
		if _, ok := a.SendEnq(w, 1, 0, []byte{byte(i)}); !ok {
			t.Fatal("send failed")
		}
		a.Progress()
	}
	a.Drain()
	got := 0
	for {
		b.Progress()
		if _, ok := b.RecvDeq(); ok {
			got++
			continue
		}
		if got == 10 {
			break
		}
	}
	b.Drain()
	if b.PendingIncoming() != 0 {
		t.Fatalf("pending incoming after drain: %d", b.PendingIncoming())
	}
}

func TestPoolAccessors(t *testing.T) {
	p := NewPool(8, 512, 2)
	if p.Capacity() != 8 || p.BufSize() != 512 {
		t.Fatalf("accessors: cap=%d buf=%d", p.Capacity(), p.BufSize())
	}
	if p.Available() == 0 {
		t.Fatal("fresh pool reports no availability")
	}
}
