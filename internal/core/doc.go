// Package lci implements the Lightweight Communication Interface, the
// paper's contribution: a thin communication runtime for irregular,
// many-threaded graph-analytics communication.
//
// # The Queue interface
//
// LCI exposes the paper's Queue interface:
//
//   - SendEnq (Algorithm 1) initiates a send. It may fail — returning ok ==
//     false — when the packet pool is exhausted; the failure is not fatal and
//     the caller simply retries later. This is the back-pressure mechanism
//     MPI lacks.
//   - RecvDeq (Algorithm 2) initiates a receive. It may fail when no message
//     is pending. There is no tag matching and no ordering enforcement: the
//     first packet to arrive is the first returned (the first-packet policy).
//   - Progress (Algorithm 3) is the communication server step: it polls the
//     network and runs the per-packet-type callback. A dedicated server
//     goroutine calls it in a loop (Serve).
//
// Completion is a single atomic flag on the Request: callers poll
// Request.Done(), which is one atomic load — not a function call that, like
// MPI_Test, performs a network poll.
//
// # Protocols
//
// Messages at or below the eager limit use the EGR protocol: the payload is
// copied into a pool packet and injected immediately; the send request
// completes as soon as the network accepts the packet. Larger messages use
// the rendezvous protocol: an RTS control packet carries the size and the
// sender's request id; the receiver, inside RecvDeq, allocates the target
// buffer, registers it with the NIC and answers with RTR; the server then
// issues the RDMA put (lc_put) straight from the user's source buffer, and
// the put-completion immediate word completes the receiver's request.
//
// # Flow control
//
// The global concurrent packet pool is bounded; its size caps the injection
// rate exactly as in the paper ("the size of the packet pool determines the
// maximum injection rate"). When the fabric itself refuses an operation
// (ring full), the packet is parked on an internal outbox that the server
// flushes — callers never observe a fatal resource error.
package lci
