package gemini

import (
	"sync/atomic"
	"testing"

	"lcigraph/internal/bitset"
	"lcigraph/internal/cluster"
	"lcigraph/internal/comm"
	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/graph"
	"lcigraph/internal/memtrack"
	"lcigraph/internal/partition"
)

func minU64(a, b uint64) uint64 {
	if b < a {
		return b
	}
	return a
}

type dummyLayer struct{}

func (dummyLayer) Name() string { return "dummy" }
func (dummyLayer) Exchange(uint32, [][]byte, []bool, []int, func(int, []byte)) {
	panic("unused in gemini tests")
}
func (dummyLayer) AllocBuf(n int) []byte      { return make([]byte, n) }
func (dummyLayer) Tracker() *memtrack.Tracker { return nil }
func (dummyLayer) Stop()                      {}

// runEngines builds a dst-owned edge-cut over g and runs body on each
// host's engine (LCI stream backend).
func runEngines(g *graph.Graph, p int, identity uint64,
	reduce func(a, b uint64) uint64, body func(e *Engine)) {

	pt := partition.Build(g, p, partition.EdgeCutByDst)
	fab := fabric.New(p, fabric.TestProfile())
	cluster.Run(p, 2, func(r int) comm.Layer { return dummyLayer{} },
		func(h *cluster.Host) {
			s := comm.NewLCIStream(fab.Endpoint(h.Rank), lci.Options{})
			e := New(h, pt.Hosts[h.Rank], s, identity, reduce)
			body(e)
			h.Barrier()
			s.Stop()
		})
}

func TestEngineApplySemantics(t *testing.T) {
	g := graph.Ring(8)
	runEngines(g, 2, ^uint64(0), minU64, func(e *Engine) {
		if e.Get(0) != ^uint64(0) {
			t.Errorf("identity missing")
		}
		if !e.Apply(0, 4) || e.Apply(0, 9) {
			t.Errorf("apply change detection broken")
		}
		e.Set(0, 2)
		if e.Get(0) != 2 {
			t.Errorf("set/get broken")
		}
	})
}

// TestStreamRoundDeliversSignals: every emitted signal reaches apply on the
// right host exactly once.
func TestStreamRoundDeliversSignals(t *testing.T) {
	g := graph.Complete(12)
	const p = 3
	var applied [p]atomic.Int64
	runEngines(g, p, 0, func(a, b uint64) uint64 { return a + b }, func(e *Engine) {
		const perThread = 50
		e.StreamRound(
			func(th int, emit func(peer int, gsrc uint32, val uint64)) {
				for i := 0; i < perThread; i++ {
					for peer := 0; peer < p; peer++ {
						if peer != e.H.Rank {
							// Use a master gid of the destination peer so
							// G2L resolves there; complete graph ⇒ every
							// vertex everywhere.
							emit(peer, uint32(0), 1)
						}
					}
				}
			},
			func(gsrc uint32, val uint64) {
				if val != 1 {
					t.Errorf("corrupt signal value %d", val)
				}
				applied[e.H.Rank].Add(1)
			})
	})
	for h := 0; h < p; h++ {
		want := int64((p - 1) * 2 * 50)
		if got := applied[h].Load(); got != want {
			t.Fatalf("host %d applied %d signals, want %d", h, got, want)
		}
	}
}

// TestStreamRoundEmptyProduce: rounds with no signals terminate.
func TestStreamRoundEmptyProduce(t *testing.T) {
	g := graph.Ring(6)
	runEngines(g, 3, 0, minU64, func(e *Engine) {
		for r := 0; r < 5; r++ {
			e.StreamRound(
				func(int, func(int, uint32, uint64)) {},
				func(uint32, uint64) { t.Error("unexpected signal") })
		}
		if e.Rounds != 5 {
			t.Errorf("rounds = %d", e.Rounds)
		}
	})
}

// TestSetReduceSwitchesOperator: degree pre-pass then float accumulation.
func TestSetReduceSwitchesOperator(t *testing.T) {
	g := graph.Ring(8)
	runEngines(g, 2, ^uint64(0), minU64, func(e *Engine) {
		e.SetReduce(0, func(a, b uint64) uint64 { return a + b })
		if e.Get(0) != 0 {
			t.Errorf("SetReduce did not reset values")
		}
		e.Apply(0, 3)
		e.Apply(0, 4)
		if e.Get(0) != 7 {
			t.Errorf("sum = %d", e.Get(0))
		}
	})
}

// TestDenseRoundEquivalence: a forced dense round relaxes exactly like a
// sparse round.
func TestDenseRoundEquivalence(t *testing.T) {
	const n = 32
	g := graph.Kron(5, 4, 3, 8) // 32 vertices, symmetric
	const p = 3
	dist := make([]uint64, n)
	runEngines(g, p, ^uint64(0), minU64, func(e *Engine) {
		cur := bitset.New(e.HG.NumLocal)
		next := bitset.New(e.HG.NumLocal)
		// Seed all masters with their gid (cc-style) and run dense rounds
		// until quiescence.
		for m := 0; m < e.HG.NumMasters; m++ {
			e.Set(uint32(m), uint64(e.HG.L2G[m]))
			cur.Set(m)
		}
		relax := func(v uint64, _ uint32) uint64 { return v }
		for {
			e.DenseRound(cur, next, relax)
			if e.H.AllreduceSum(int64(next.CountRange(0, e.HG.NumMasters))) == 0 {
				break
			}
			cur, next = next, cur
			next.Reset()
		}
		for m := 0; m < e.HG.NumMasters; m++ {
			dist[e.HG.L2G[m]] = e.Get(uint32(m))
		}
	})
	// Every vertex must hold its component's min id — compare to a simple
	// union-find on the same graph.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			a, b := find(v), find(int(u))
			if a < b {
				parent[b] = a
			} else if b < a {
				parent[a] = b
			}
		}
	}
	for v := 0; v < n; v++ {
		if dist[v] != uint64(find(v)) {
			t.Fatalf("vertex %d: dense cc = %d, want %d", v, dist[v], find(v))
		}
	}
}

// TestAdaptiveMatchesSparse: RunPushAdaptive must give identical distances
// to RunPush, using at least one dense round on a dense frontier.
func TestAdaptiveMatchesSparse(t *testing.T) {
	const n = 64
	g := graph.Kron(6, 6, 9, 4)
	const p = 2
	sparse := make([]uint64, n)
	adaptive := make([]uint64, n)
	var denseRounds int

	seedFn := func(e *Engine) func(func(lv uint32)) {
		return func(activate func(lv uint32)) {
			if lv, ok := e.HG.G2L(0); ok && e.HG.IsMaster(lv) {
				e.Set(lv, 0)
				activate(lv)
			}
		}
	}
	relax := func(v uint64, w uint32) uint64 {
		if v == ^uint64(0) {
			return v
		}
		return v + uint64(w)
	}
	runEngines(g, p, ^uint64(0), minU64, func(e *Engine) {
		e.RunPush(seedFn(e), relax)
		for m := 0; m < e.HG.NumMasters; m++ {
			sparse[e.HG.L2G[m]] = e.Get(uint32(m))
		}
	})
	runEngines(g, p, ^uint64(0), minU64, func(e *Engine) {
		_, d := e.RunPushAdaptive(seedFn(e), relax)
		if e.H.Rank == 0 {
			denseRounds = d
		}
		for m := 0; m < e.HG.NumMasters; m++ {
			adaptive[e.HG.L2G[m]] = e.Get(uint32(m))
		}
	})
	for v := 0; v < n; v++ {
		if sparse[v] != adaptive[v] {
			t.Fatalf("vertex %d: sparse %d vs adaptive %d", v, sparse[v], adaptive[v])
		}
	}
	if denseRounds == 0 {
		t.Error("adaptive run never went dense on a dense frontier")
	}
}

// TestRunPushRingBFS: distances on a directed ring from vertex 0.
func TestRunPushRingBFS(t *testing.T) {
	const n = 24
	g := graph.Ring(n)
	const p = 3
	dist := make([]uint64, n)
	runEngines(g, p, ^uint64(0), minU64, func(e *Engine) {
		e.RunPush(
			func(activate func(lv uint32)) {
				if lv, ok := e.HG.G2L(0); ok && e.HG.IsMaster(lv) {
					e.Set(lv, 0)
					activate(lv)
				}
			},
			func(v uint64, _ uint32) uint64 { return v + 1 })
		for m := 0; m < e.HG.NumMasters; m++ {
			dist[e.HG.L2G[m]] = e.Get(uint32(m))
		}
	})
	for v := 0; v < n; v++ {
		if dist[v] != uint64(v) {
			t.Fatalf("dist[%d] = %d", v, dist[v])
		}
	}
}
