// Package gemini implements an engine in the style of the Gemini system
// (§II, §IV-B1): blocked edge-cut partitioning, a signal/slot push model,
// and — crucially for the paper's comparison — per-thread streaming
// communication: every compute thread batches signals per destination host
// and sends them directly (MPI under THREAD_MULTIPLE, or the LCI Queue),
// while a receive loop applies incoming slots as messages arrive.
package gemini

import (
	"encoding/binary"
	"runtime"
	"sync/atomic"
	"time"

	"lcigraph/internal/bitset"
	"lcigraph/internal/cluster"
	"lcigraph/internal/comm"
	"lcigraph/internal/partition"
)

// signal record: global dst id (u32) | value (u64) = 12 bytes.
const recBytes = 12

// batchRecords is how many signals a thread accumulates per destination
// before shipping the batch (Gemini's per-thread send buffers).
const batchRecords = 256

// Tag layout: round(22 bits) << 2 | kind.
const (
	kindSig = 0
	kindFin = 1
)

func tagOf(round, kind int) uint32 { return uint32(round)<<2 | uint32(kind) }

// Engine is one host's Gemini engine instance.
type Engine struct {
	H  *cluster.Host
	HG *partition.HostGraph
	S  comm.Stream

	Vals   []atomic.Uint64 // per local proxy; canonical at masters
	reduce func(a, b uint64) uint64

	stash map[uint32][]comm.Message
	round int

	ComputeTime time.Duration
	CommTime    time.Duration
	Rounds      int
}

// New builds an engine over an edge-cut host partition and a stream.
func New(h *cluster.Host, hg *partition.HostGraph, s comm.Stream,
	identity uint64, reduce func(a, b uint64) uint64) *Engine {
	e := &Engine{
		H: h, HG: hg, S: s,
		Vals:   make([]atomic.Uint64, hg.NumLocal),
		reduce: reduce,
		stash:  map[uint32][]comm.Message{},
	}
	if identity != 0 {
		for i := range e.Vals {
			e.Vals[i].Store(identity)
		}
	}
	return e
}

// Get reads local proxy lv's value.
func (e *Engine) Get(lv uint32) uint64 { return e.Vals[lv].Load() }

// Set stores v into local proxy lv.
func (e *Engine) Set(lv uint32, v uint64) { e.Vals[lv].Store(v) }

// SetReduce swaps the reduction operator (e.g. integer-add for the degree
// pre-pass, float-add for pagerank accumulation). Only call between rounds.
func (e *Engine) SetReduce(identity uint64, reduce func(a, b uint64) uint64) {
	e.reduce = reduce
	for i := range e.Vals {
		e.Vals[i].Store(identity)
	}
}

// Apply combines v into lv with the engine's reduction; reports change.
func (e *Engine) Apply(lv uint32, v uint64) bool { return e.apply(lv, v) }

// apply combines v into lv; reports change.
func (e *Engine) apply(lv uint32, v uint64) bool {
	for {
		old := e.Vals[lv].Load()
		merged := e.reduce(old, v)
		if merged == old {
			return false
		}
		if e.Vals[lv].CompareAndSwap(old, merged) {
			return true
		}
	}
}

// threadBatches is one compute thread's per-destination signal buffers.
type threadBatches struct {
	e      *Engine
	thread int
	round  int
	bufs   [][]byte
	counts []int64 // signals batches sent per peer (this thread)
}

func (e *Engine) newBatches(thread int) *threadBatches {
	return &threadBatches{
		e: e, thread: thread, round: e.round,
		bufs:   make([][]byte, e.HG.P),
		counts: make([]int64, e.HG.P),
	}
}

// emit queues a (gdst, val) signal for peer, flushing full batches.
func (b *threadBatches) emit(peer int, gdst uint32, val uint64) {
	buf := b.bufs[peer]
	if buf == nil {
		buf = b.e.S.AllocBuf(batchRecords * recBytes)[:0]
	}
	off := len(buf)
	buf = buf[:off+recBytes]
	binary.LittleEndian.PutUint32(buf[off:], gdst)
	binary.LittleEndian.PutUint64(buf[off+4:], val)
	if len(buf) == batchRecords*recBytes {
		b.flush(peer, buf)
		b.bufs[peer] = nil
		return
	}
	b.bufs[peer] = buf
}

func (b *threadBatches) flush(peer int, buf []byte) {
	b.e.S.SendMsg(b.thread, peer, tagOf(b.round, kindSig), buf)
	b.counts[peer]++
}

// finish flushes partial batches and returns per-peer batch counts.
func (b *threadBatches) finish() []int64 {
	for p, buf := range b.bufs {
		if len(buf) > 0 {
			b.flush(p, buf)
			b.bufs[p] = nil
		}
	}
	return b.counts
}

// StreamRound runs one BSP round: produce runs on every compute thread
// (thread id passed in) emitting signals; apply consumes each incoming
// signal. The main goroutine overlaps receiving with production. The round
// completes when every peer's FIN (carrying its batch count) and all its
// batches have been applied.
func (e *Engine) StreamRound(
	produce func(thread int, emit func(peer int, gdst uint32, val uint64)),
	apply func(gdst uint32, val uint64)) {

	hg := e.HG
	P := hg.P
	threads := e.H.Pool.Workers()
	totals := make([]atomic.Int64, P)

	startCompute := time.Now()
	computeDone := make(chan struct{})
	go func() {
		defer close(computeDone)
		e.H.Pool.ForRange(threads, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				b := e.newBatches(t)
				produce(t, b.emit)
				for p, c := range b.finish() {
					totals[p].Add(c)
				}
			}
		})
	}()

	// Overlap: consume incoming signal batches while compute runs.
	sigTag := tagOf(e.round, kindSig)
	finTag := tagOf(e.round, kindFin)
	var got int64
	expectFin := 0
	for p := 0; p < P; p++ {
		if p != e.H.Rank {
			expectFin++
		}
	}
	finSeen := 0
	var expected int64
	computing := true

	handle := func(m comm.Message) {
		switch m.Tag {
		case sigTag:
			for off := 0; off+recBytes <= len(m.Data); off += recBytes {
				gdst := binary.LittleEndian.Uint32(m.Data[off:])
				val := binary.LittleEndian.Uint64(m.Data[off+4:])
				apply(gdst, val)
			}
			got++
			m.Release()
		case finTag:
			expected += int64(binary.LittleEndian.Uint64(m.Data))
			finSeen++
			m.Release()
		default:
			e.stash[m.Tag] = append(e.stash[m.Tag], m)
		}
	}

	// Consume stashed messages from earlier rounds first.
	for _, m := range e.stash[sigTag] {
		handle(m)
	}
	delete(e.stash, sigTag)
	for _, m := range e.stash[finTag] {
		handle(m)
	}
	delete(e.stash, finTag)

	var commStart time.Time
	for {
		if computing {
			select {
			case <-computeDone:
				computing = false
				e.ComputeTime += time.Since(startCompute)
				commStart = time.Now()
				// Send FINs with total batch counts per peer.
				for p := 0; p < P; p++ {
					if p == e.H.Rank {
						continue
					}
					buf := e.S.AllocBuf(8)
					binary.LittleEndian.PutUint64(buf, uint64(totals[p].Load()))
					e.S.SendMsg(0, p, finTag, buf)
				}
			default:
			}
		}
		if !computing && finSeen == expectFin && got == expected {
			break
		}
		if m, ok := e.S.RecvMsg(); ok {
			handle(m)
			continue
		}
		runtime.Gosched()
	}
	e.CommTime += time.Since(commStart)
	e.round++
	e.Rounds++
}

// relaxEdges runs the slot side of a signal: relax every local out-edge of
// src proxy lv using the signalled source value, activating changed masters.
func (e *Engine) relaxEdges(lv uint32, srcVal uint64,
	relax func(srcVal uint64, w uint32) uint64, next *bitset.Bitset) {
	hg := e.HG
	ws := hg.Local.NeighborWeights(int(lv))
	for i, v := range hg.Local.Neighbors(int(lv)) {
		var w uint32
		if ws != nil {
			w = ws[i]
		}
		if e.apply(v, relax(srcVal, w)) {
			next.Set(int(v))
		}
	}
}

// RunPush drives a data-driven push algorithm to global quiescence,
// returning the number of rounds.
//
// Gemini's sparse signal/slot model over destination-owned edges
// (partition.EdgeCutByDst): an active master u signals (u, value) once to
// every host holding out-edges of u (its mirror hosts); the slot on the
// receiving host relaxes u's local out-edges into local masters. Local
// out-edges of u are relaxed without communication.
func (e *Engine) RunPush(
	seed func(activate func(lv uint32)),
	relax func(srcVal uint64, w uint32) uint64) int {

	hg := e.HG
	cur := bitset.New(hg.NumLocal)
	next := bitset.New(hg.NumLocal)
	seed(func(lv uint32) { cur.Set(int(lv)) })

	threads := e.H.Pool.Workers()
	rounds := 0
	for {
		rounds++
		e.sparseRound(cur, next, relax, threads)

		t0 := time.Now()
		global := e.H.AllreduceSum(int64(next.CountRange(0, hg.NumMasters)))
		e.CommTime += time.Since(t0)
		if global == 0 {
			return rounds
		}
		cur, next = next, cur
		next.Reset()
	}
}
