package gemini

import (
	"encoding/binary"
	"runtime"
	"time"

	"lcigraph/internal/bitset"
	"lcigraph/internal/comm"
)

// Dense mode. Gemini adaptively switches between a sparse (push) round —
// per-active-vertex signals — and a dense round when the frontier is large:
// each host ships, once per peer, a bitmap of its active masters mirrored
// there plus their values, and the receiving slot relaxes every listed
// mirror's local out-edges. One bulk message per (host, peer) pair replaces
// per-vertex signalling, exactly the dense/sparse duality of Gemini's
// engine [7].

const kindBulk = 2

// denseThreshold switches to a dense round when active masters exceed this
// fraction (1/denseFrac) of all masters.
const denseFrac = 20

// DenseRound runs one dense round over frontier cur, relaxing into next.
func (e *Engine) DenseRound(cur, next *bitset.Bitset,
	relax func(srcVal uint64, w uint32) uint64) {

	hg := e.HG
	P := hg.P
	startCompute := time.Now()

	// Local slots for all active masters.
	e.H.Pool.ForRange(hg.NumMasters, func(lo, hi int) {
		cur.ForEachRange(lo, hi, func(u int) {
			e.relaxEdges(uint32(u), e.Get(uint32(u)), relax, next)
		})
	})

	// One bulk message per peer: bitmap over MastersFor[p] + values.
	e.H.Pool.For(P, func(p int) {
		list := hg.MastersFor[p]
		if len(list) == 0 {
			return
		}
		count := 0
		for _, lm := range list {
			if cur.Test(int(lm)) {
				count++
			}
		}
		bmLen := (len(list) + 7) / 8
		buf := e.S.AllocBuf(4 + bmLen + 8*count)
		binary.LittleEndian.PutUint32(buf, uint32(count))
		bm := buf[4 : 4+bmLen]
		for i := range bm {
			bm[i] = 0
		}
		vals := buf[4+bmLen:]
		vi := 0
		for i, lm := range list {
			if cur.Test(int(lm)) {
				bm[i/8] |= 1 << (i % 8)
				binary.LittleEndian.PutUint64(vals[vi*8:], e.Get(lm))
				vi++
			}
		}
		e.S.SendMsg(p, p, tagOf(e.round, kindBulk), buf)
	})
	e.ComputeTime += time.Since(startCompute)
	commStart := time.Now()

	// Expect exactly one bulk message from every peer whose masters have
	// mirrors here.
	want := 0
	for p := 0; p < P; p++ {
		if p != e.H.Rank && len(hg.MirrorsHere[p]) > 0 {
			want++
		}
	}
	tag := tagOf(e.round, kindBulk)
	for _, m := range e.stash[tag] {
		e.applyBulk(m, relax, next)
		want--
	}
	delete(e.stash, tag)
	for want > 0 {
		m, ok := e.S.RecvMsg()
		if !ok {
			runtime.Gosched()
			continue
		}
		if m.Tag != tag {
			e.stash[m.Tag] = append(e.stash[m.Tag], m)
			continue
		}
		e.applyBulk(m, relax, next)
		want--
	}
	e.CommTime += time.Since(commStart)
	e.round++
	e.Rounds++
}

// applyBulk runs the dense slot: relax the local out-edges of every mirror
// listed active in the bulk message.
func (e *Engine) applyBulk(m comm.Message, relax func(uint64, uint32) uint64, next *bitset.Bitset) {
	hg := e.HG
	list := hg.MirrorsHere[m.Peer]
	bmLen := (len(list) + 7) / 8
	if len(m.Data) < 4+bmLen {
		panic("gemini: short bulk message")
	}
	bm := m.Data[4 : 4+bmLen]
	vals := m.Data[4+bmLen:]
	vi := 0
	for i := 0; i < len(list); {
		if i%8 == 0 && bm[i/8] == 0 && i+8 <= len(list) {
			i += 8
			continue
		}
		if bm[i/8]&(1<<(i%8)) != 0 {
			val := binary.LittleEndian.Uint64(vals[vi*8:])
			vi++
			e.relaxEdges(list[i], val, relax, next)
		}
		i++
	}
	m.Release()
}

// RunPushAdaptive is RunPush with Gemini's sparse/dense mode selection: a
// round goes dense when the frontier exceeds 1/denseFrac of the masters.
// It returns rounds executed and how many were dense.
func (e *Engine) RunPushAdaptive(
	seed func(activate func(lv uint32)),
	relax func(srcVal uint64, w uint32) uint64) (rounds, dense int) {

	hg := e.HG
	cur := bitset.New(hg.NumLocal)
	next := bitset.New(hg.NumLocal)
	seed(func(lv uint32) { cur.Set(int(lv)) })

	threads := e.H.Pool.Workers()
	for {
		rounds++
		// Mode decision must agree globally: use the global frontier size.
		t0 := time.Now()
		frontier := e.H.AllreduceSum(int64(cur.CountRange(0, hg.NumMasters)))
		totalMasters := e.H.AllreduceSum(int64(hg.NumMasters))
		e.CommTime += time.Since(t0)

		if frontier*denseFrac >= totalMasters {
			dense++
			e.DenseRound(cur, next, relax)
		} else {
			e.sparseRound(cur, next, relax, threads)
		}

		t1 := time.Now()
		global := e.H.AllreduceSum(int64(next.CountRange(0, hg.NumMasters)))
		e.CommTime += time.Since(t1)
		if global == 0 {
			return rounds, dense
		}
		cur, next = next, cur
		next.Reset()
	}
}

// sparseRound is one signal/slot push round (the body of RunPush).
func (e *Engine) sparseRound(cur, next *bitset.Bitset,
	relax func(srcVal uint64, w uint32) uint64, threads int) {

	hg := e.HG
	chunk := (hg.NumMasters + threads - 1) / threads
	e.StreamRound(
		func(t int, emit func(peer int, gsrc uint32, val uint64)) {
			lo, hi := t*chunk, (t+1)*chunk
			if hi > hg.NumMasters {
				hi = hg.NumMasters
			}
			if lo < hi {
				cur.ForEachRange(lo, hi, func(u int) {
					e.relaxEdges(uint32(u), e.Get(uint32(u)), relax, next)
				})
			}
			for p := 0; p < hg.P; p++ {
				list := hg.MastersFor[p]
				if len(list) == 0 {
					continue
				}
				c := (len(list) + threads - 1) / threads
				llo, lhi := t*c, (t+1)*c
				if lhi > len(list) {
					lhi = len(list)
				}
				for i := llo; i < lhi; i++ {
					lm := list[i]
					if cur.Test(int(lm)) {
						emit(p, hg.L2G[lm], e.Get(lm))
					}
				}
			}
		},
		func(gsrc uint32, val uint64) {
			lv, ok := hg.G2L(gsrc)
			if !ok {
				panic("gemini: signal for vertex without proxy")
			}
			e.relaxEdges(lv, val, relax, next)
		})
}
