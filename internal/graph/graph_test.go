package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	g := FromEdges(4, []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 2, Dst: 3},
		{Src: 1, Dst: 1}, // self-loop dropped
		{Src: 3, Dst: 0},
	})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4 (self-loop dropped)", g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 0 || g.Degree(2) != 1 || g.Degree(3) != 1 {
		t.Fatalf("degrees = %d %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2), g.Degree(3))
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors(0) = %v (must be sorted)", nb)
	}
}

func TestWeightsPreserved(t *testing.T) {
	g := FromEdges(3, []Edge{
		{Src: 0, Dst: 2, W: 7}, {Src: 0, Dst: 1, W: 3},
	})
	nb, ws := g.Neighbors(0), g.NeighborWeights(0)
	if nb[0] != 1 || ws[0] != 3 || nb[1] != 2 || ws[1] != 7 {
		t.Fatalf("sorted adjacency lost weight pairing: %v %v", nb, ws)
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := RMAT(8, 8, 42, 16)
	tt := g.Transpose().Transpose()
	if tt.N != g.N || tt.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose changed size: %d/%d vs %d/%d", tt.N, tt.NumEdges(), g.N, g.NumEdges())
	}
	for v := 0; v < g.N; v++ {
		a, b := g.Neighbors(v), tt.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency changed", v)
			}
		}
	}
}

func TestTransposeDegreeSum(t *testing.T) {
	g := Web(8, 8, 1, 0)
	tr := g.Transpose()
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", tr.NumEdges(), g.NumEdges())
	}
	// In-degree of v in g == out-degree of v in transpose.
	din := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			din[u]++
		}
	}
	for v := 0; v < g.N; v++ {
		if tr.Degree(v) != din[v] {
			t.Fatalf("vertex %d: transpose degree %d, in-degree %d", v, tr.Degree(v), din[v])
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range Inputs() {
		a, b := Named(name, 8, 7), Named(name, 8, 7)
		if a.N != b.N || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: nondeterministic size", name)
		}
		for v := 0; v < a.N; v++ {
			na, nb := a.Neighbors(v), b.Neighbors(v)
			for i := range na {
				if na[i] != nb[i] {
					t.Fatalf("%s: nondeterministic adjacency at %d", name, v)
				}
			}
		}
		c := Named(name, 8, 8)
		if c.NumEdges() == a.NumEdges() {
			// Different seeds almost surely differ in at least edge count
			// for web; for rmat/kron counts match but edges differ.
			same := true
			for v := 0; v < a.N && same; v++ {
				na, nc := a.Neighbors(v), c.Neighbors(v)
				if len(na) != len(nc) {
					same = false
					break
				}
				for i := range na {
					if na[i] != nc[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Fatalf("%s: seed ignored", name)
			}
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	const scale = 10
	rmat := Analyze("rmat", Named("rmat", scale, 1))
	kron := Analyze("kron", Named("kron", scale, 1))
	web := Analyze("web", Named("web", scale, 1))

	if rmat.V != 1<<scale || kron.V != 1<<scale || web.V != 1<<scale {
		t.Fatal("wrong vertex counts")
	}
	// Table I shapes: web has E/V ≈ 43 and max in-degree a large fraction
	// of V; rmat is skewed with max out-degree >> average; kron is
	// symmetric-ish.
	if web.AvgDegree < 20 || web.AvgDegree > 80 {
		t.Errorf("web E/V = %.1f, want ≈43", web.AvgDegree)
	}
	if web.MaxDin < web.V/50 {
		t.Errorf("web max in-degree %d not hub-like (V=%d)", web.MaxDin, web.V)
	}
	if rmat.MaxDout < 8*int(rmat.AvgDegree) {
		t.Errorf("rmat max out-degree %d not skewed (avg %.1f)", rmat.MaxDout, rmat.AvgDegree)
	}
	ratio := float64(kron.MaxDout) / float64(kron.MaxDin)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("kron in/out max degrees should be similar (undirected): %d vs %d",
			kron.MaxDout, kron.MaxDin)
	}
}

func TestPathRingComplete(t *testing.T) {
	p := Path(5)
	if p.NumEdges() != 4 || p.Degree(4) != 0 {
		t.Fatalf("path: %d edges, deg(4)=%d", p.NumEdges(), p.Degree(4))
	}
	r := Ring(5)
	if r.NumEdges() != 5 || r.Neighbors(4)[0] != 0 {
		t.Fatal("ring wrong")
	}
	c := Complete(4)
	if c.NumEdges() != 12 {
		t.Fatalf("complete: %d edges", c.NumEdges())
	}
	for _, g := range []*Graph{p, r, c} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoundTripIO(t *testing.T) {
	for _, g := range []*Graph{
		RMAT(8, 8, 3, 16),
		Web(7, 10, 5, 0),
		Path(10),
		FromEdges(1, nil),
	} {
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != g.N || got.NumEdges() != g.NumEdges() {
			t.Fatalf("size mismatch after round trip")
		}
		for v := 0; v < g.N; v++ {
			a, b := g.Neighbors(v), got.Neighbors(v)
			for i := range a {
				if a[i] != b[i] {
					t.Fatal("adjacency mismatch after round trip")
				}
			}
			wa, wb := g.NeighborWeights(v), got.NeighborWeights(v)
			if (wa == nil) != (wb == nil) {
				t.Fatal("weights presence mismatch")
			}
			for i := range wa {
				if wa[i] != wb[i] {
					t.Fatal("weights mismatch after round trip")
				}
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestQuickFromEdgesInvariants: CSR structure is valid for arbitrary edge
// lists and the edge multiset (minus self-loops) is preserved.
func TestQuickFromEdgesInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 64
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Src: uint32(raw[i]) % n, Dst: uint32(raw[i+1]) % n})
		}
		g := FromEdges(n, edges)
		if g.Validate() != nil {
			return false
		}
		want := map[uint64]int{}
		kept := 0
		for _, e := range edges {
			if e.Src != e.Dst {
				want[uint64(e.Src)<<32|uint64(e.Dst)]++
				kept++
			}
		}
		if int(g.NumEdges()) != kept {
			return false
		}
		got := map[uint64]int{}
		for v := 0; v < n; v++ {
			for _, d := range g.Neighbors(v) {
				got[uint64(v)<<32|uint64(d)]++
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerateRMAT14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RMAT(14, 16, int64(i), 0)
	}
}
