package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary graph format: a small header followed by the CSR arrays, little
// endian. Used by cmd/graph-gen to persist inputs between runs.
//
//	magic "LCGR" | version u32 | n u64 | m u64 | weighted u32
//	offsets [n+1]u64 | edges [m]u32 | weights [m]u32 (if weighted)
const (
	magic   = "LCGR"
	version = 1
)

// Write serializes g to w.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	hdr := []uint64{version, uint64(g.N), uint64(len(g.Edges))}
	weighted := uint64(0)
	if g.Weights != nil {
		weighted = 1
	}
	hdr = append(hdr, weighted)
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, o := range g.Offsets {
		if err := binary.Write(bw, binary.LittleEndian, uint64(o)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Edges); err != nil {
		return err
	}
	if g.Weights != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a graph written by Write.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	m4 := make([]byte, 4)
	if _, err := io.ReadFull(br, m4); err != nil {
		return nil, err
	}
	if string(m4) != magic {
		return nil, fmt.Errorf("graph: bad magic %q", m4)
	}
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	if hdr[0] != version {
		return nil, fmt.Errorf("graph: unsupported version %d", hdr[0])
	}
	n, m, weighted := int(hdr[1]), int(hdr[2]), hdr[3] == 1
	g := &Graph{N: n, Offsets: make([]int64, n+1), Edges: make([]uint32, m)}
	for i := range g.Offsets {
		var o uint64
		if err := binary.Read(br, binary.LittleEndian, &o); err != nil {
			return nil, err
		}
		g.Offsets[i] = int64(o)
	}
	if err := binary.Read(br, binary.LittleEndian, g.Edges); err != nil {
		return nil, err
	}
	if weighted {
		g.Weights = make([]uint32, m)
		if err := binary.Read(br, binary.LittleEndian, g.Weights); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
