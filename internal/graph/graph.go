// Package graph provides the in-memory graph representation and the
// synthetic input generators standing in for the paper's datasets
// (clueweb12, kron30, rmat28 — Table I) at laptop scale.
//
// Graphs are stored in compressed sparse row (CSR) form with optional edge
// weights, the layout both Gemini and Abelian use per host partition.
package graph

import (
	"fmt"
	"sort"
)

// Edge is one directed, optionally weighted edge.
type Edge struct {
	Src, Dst uint32
	W        uint32
}

// Graph is a directed graph in CSR form. Weights is either nil or parallel
// to Edges.
type Graph struct {
	N       int
	Offsets []int64
	Edges   []uint32
	Weights []uint32
}

// FromEdges builds a CSR graph with n vertices from an edge list. Edges are
// sorted per source by destination for deterministic traversal. Self-loops
// are dropped; parallel edges are kept (as in the paper's RMAT inputs).
func FromEdges(n int, edges []Edge) *Graph {
	deg := make([]int64, n+1)
	kept := 0
	for i := range edges {
		e := &edges[i]
		if e.Src == e.Dst {
			continue
		}
		deg[e.Src+1]++
		kept++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	g := &Graph{N: n, Offsets: deg, Edges: make([]uint32, kept)}
	weighted := false
	for i := range edges {
		if edges[i].W != 0 {
			weighted = true
			break
		}
	}
	if weighted {
		g.Weights = make([]uint32, kept)
	}
	next := make([]int64, n)
	copy(next, deg[:n])
	for i := range edges {
		e := &edges[i]
		if e.Src == e.Dst {
			continue
		}
		p := next[e.Src]
		next[e.Src]++
		g.Edges[p] = e.Dst
		if weighted {
			g.Weights[p] = e.W
		}
	}
	for v := 0; v < n; v++ {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		if g.Weights == nil {
			s := g.Edges[lo:hi]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		} else {
			es, ws := g.Edges[lo:hi], g.Weights[lo:hi]
			idx := make([]int, len(es))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(i, j int) bool { return es[idx[i]] < es[idx[j]] })
			se := make([]uint32, len(es))
			sw := make([]uint32, len(ws))
			for i, k := range idx {
				se[i], sw[i] = es[k], ws[k]
			}
			copy(es, se)
			copy(ws, sw)
		}
	}
	return g
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int64 { return int64(len(g.Edges)) }

// Degree returns v's out-degree.
func (g *Graph) Degree(v int) int { return int(g.Offsets[v+1] - g.Offsets[v]) }

// Neighbors returns v's out-neighbor slice (do not modify).
func (g *Graph) Neighbors(v int) []uint32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// NeighborWeights returns the weights parallel to Neighbors(v); nil for
// unweighted graphs.
func (g *Graph) NeighborWeights(v int) []uint32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// Transpose returns the reverse graph (in-edges become out-edges),
// preserving weights.
func (g *Graph) Transpose() *Graph {
	edges := make([]Edge, 0, len(g.Edges))
	for v := 0; v < g.N; v++ {
		ws := g.NeighborWeights(v)
		for i, d := range g.Neighbors(v) {
			var w uint32
			if ws != nil {
				w = ws[i]
			}
			edges = append(edges, Edge{Src: d, Dst: uint32(v), W: w})
		}
	}
	return FromEdges(g.N, edges)
}

// Properties summarizes a graph for Table I.
type Properties struct {
	Name      string
	V         int
	E         int64
	AvgDegree float64
	MaxDout   int
	MaxDin    int
}

// Analyze computes the Table I properties of g.
func Analyze(name string, g *Graph) Properties {
	p := Properties{Name: name, V: g.N, E: g.NumEdges()}
	if g.N > 0 {
		p.AvgDegree = float64(p.E) / float64(g.N)
	}
	din := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > p.MaxDout {
			p.MaxDout = d
		}
		for _, u := range g.Neighbors(v) {
			din[u]++
		}
	}
	for _, d := range din {
		if d > p.MaxDin {
			p.MaxDin = d
		}
	}
	return p
}

// String formats the properties as a Table I row.
func (p Properties) String() string {
	return fmt.Sprintf("%-10s |V|=%-10d |E|=%-12d E/V=%-6.1f maxDout=%-8d maxDin=%d",
		p.Name, p.V, p.E, p.AvgDegree, p.MaxDout, p.MaxDin)
}

// Validate checks structural invariants; it returns an error describing the
// first violation found.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: offsets len %d, want %d", len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 || g.Offsets[g.N] != int64(len(g.Edges)) {
		return fmt.Errorf("graph: offset bounds [%d,%d] with %d edges",
			g.Offsets[0], g.Offsets[g.N], len(g.Edges))
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
	}
	for _, d := range g.Edges {
		if int(d) >= g.N {
			return fmt.Errorf("graph: edge target %d out of range", d)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Edges) {
		return fmt.Errorf("graph: weights len %d, edges %d", len(g.Weights), len(g.Edges))
	}
	return nil
}
