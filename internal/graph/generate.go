package graph

import (
	"math"
	"math/rand"
)

// Scale-free generators. Each stands in for one of the paper's inputs at a
// reduced scale (see DESIGN.md §2):
//
//	RMAT  → rmat28:  directed R-MAT, strongly skewed out-degree
//	Kron  → kron30:  Graph500-style Kronecker, symmetrized (undirected)
//	Web   → clueweb12: web-crawl-like, E/V≈43, extremely skewed in-degree
//
// All generators are deterministic in (scale, seed).

// RMATParams are the recursive quadrant probabilities.
type RMATParams struct{ A, B, C, D float64 }

// DefaultRMAT are the Graph500 Kronecker parameters (used for kron: the
// symmetric b = c makes in- and out-degree distributions match).
func DefaultRMAT() RMATParams { return RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05} }

// DirectedRMAT are asymmetric parameters (b ≫ c) for the rmat input: like
// the paper's rmat28, the maximum out-degree far exceeds the maximum
// in-degree.
func DirectedRMAT() RMATParams { return RMATParams{A: 0.55, B: 0.28, C: 0.07, D: 0.10} }

// rmatEdge samples one edge in a 2^scale × 2^scale adjacency matrix.
func rmatEdge(rng *rand.Rand, scale int, p RMATParams) (uint32, uint32) {
	var src, dst uint32
	for i := 0; i < scale; i++ {
		r := rng.Float64()
		// Add a little noise per level to avoid degenerate staircases.
		a := p.A + 0.05*(rng.Float64()-0.5)
		b := p.B
		c := p.C
		switch {
		case r < a:
			// top-left: nothing
		case r < a+b:
			dst |= 1 << i
		case r < a+b+c:
			src |= 1 << i
		default:
			src |= 1 << i
			dst |= 1 << i
		}
	}
	return src, dst
}

// RMAT generates a directed R-MAT graph with 2^scale vertices and
// edgeFactor·2^scale edges, weighted 1..maxW (0 ⇒ unweighted), using the
// asymmetric DirectedRMAT parameters.
func RMAT(scale, edgeFactor int, seed int64, maxW uint32) *Graph {
	n := 1 << scale
	m := n * edgeFactor
	rng := rand.New(rand.NewSource(seed))
	p := DirectedRMAT()
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		s, d := rmatEdge(rng, scale, p)
		e := Edge{Src: s, Dst: d}
		if maxW > 0 {
			e.W = 1 + uint32(rng.Intn(int(maxW)))
		}
		edges = append(edges, e)
	}
	return FromEdges(n, edges)
}

// Kron generates an undirected (symmetrized) Kronecker graph in the
// Graph500 style: 2^scale vertices, edgeFactor·2^scale undirected edges
// stored as both directions.
func Kron(scale, edgeFactor int, seed int64, maxW uint32) *Graph {
	n := 1 << scale
	m := n * edgeFactor
	rng := rand.New(rand.NewSource(seed))
	p := DefaultRMAT()
	edges := make([]Edge, 0, 2*m)
	for i := 0; i < m; i++ {
		s, d := rmatEdge(rng, scale, p)
		var w uint32
		if maxW > 0 {
			w = 1 + uint32(rng.Intn(int(maxW)))
		}
		edges = append(edges, Edge{Src: s, Dst: d, W: w}, Edge{Src: d, Dst: s, W: w})
	}
	return FromEdges(n, edges)
}

// zipf draws vertex ids with a power-law bias toward low ids.
type zipf struct {
	z *rand.Zipf
	n uint64
}

func newZipf(rng *rand.Rand, s float64, n int) *zipf {
	return &zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1)), n: uint64(n)}
}

func (z *zipf) draw() uint32 { return uint32(z.z.Uint64()) }

// Web generates a web-crawl-like directed graph: out-degrees are
// lognormal-ish and bounded, destinations are Zipf-distributed so a few
// "hub" pages collect an enormous in-degree (clueweb12's max in-degree is
// ~7.7% of |V|). Vertices: 2^scale; average degree ≈ edgeFactor.
func Web(scale, edgeFactor int, seed int64, maxW uint32) *Graph {
	n := 1 << scale
	rng := rand.New(rand.NewSource(seed))
	dsts := newZipf(rng, 1.35, n)
	edges := make([]Edge, 0, n*edgeFactor)
	for v := 0; v < n; v++ {
		// Lognormal out-degree with mean ≈ edgeFactor, capped.
		mu := math.Log(float64(edgeFactor)) - 0.5
		d := int(math.Exp(rng.NormFloat64()*1.0 + mu))
		if d > 16*edgeFactor {
			d = 16 * edgeFactor
		}
		for i := 0; i < d; i++ {
			// Mix Zipf hubs with local links, like real crawls.
			var dst uint32
			if rng.Float64() < 0.7 {
				dst = dsts.draw()
			} else {
				dst = uint32(rng.Intn(n))
			}
			e := Edge{Src: uint32(v), Dst: dst}
			if maxW > 0 {
				e.W = 1 + uint32(rng.Intn(int(maxW)))
			}
			edges = append(edges, e)
		}
	}
	return FromEdges(n, edges)
}

// Path returns a simple directed path 0→1→…→n-1 (tests).
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, Edge{Src: uint32(v), Dst: uint32(v + 1)})
	}
	return FromEdges(n, edges)
}

// Ring returns a directed cycle over n vertices (tests).
func Ring(n int) *Graph {
	edges := make([]Edge, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, Edge{Src: uint32(v), Dst: uint32((v + 1) % n)})
	}
	return FromEdges(n, edges)
}

// Complete returns the complete directed graph on n vertices (tests).
func Complete(n int) *Graph {
	var edges []Edge
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				edges = append(edges, Edge{Src: uint32(s), Dst: uint32(d)})
			}
		}
	}
	return FromEdges(n, edges)
}

// Named builds one of the paper-substitute inputs by name: "rmat", "kron"
// or "web", at the given scale.
func Named(name string, scale int, seed int64) *Graph {
	switch name {
	case "rmat":
		return RMAT(scale, 16, seed, 64)
	case "kron":
		return Kron(scale, 8, seed, 64)
	case "web":
		return Web(scale, 43, seed, 64)
	default:
		panic("graph: unknown input " + name)
	}
}

// Inputs lists the Table I input names in paper order.
func Inputs() []string { return []string{"web", "kron", "rmat"} }
