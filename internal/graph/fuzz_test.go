package graph

import (
	"bytes"
	"testing"
)

// FuzzRead: arbitrary byte streams must never panic the binary reader;
// valid round-trips must parse back identically.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := RMAT(5, 4, 1, 8).Write(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("LCGR"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Read returned invalid graph: %v", err)
		}
		var out bytes.Buffer
		if err := g.Write(&out); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		g2, err := Read(&out)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if g2.N != g.N || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round-trip changed the graph")
		}
	})
}

// FuzzFromEdges: arbitrary edge lists (coerced into range) always build a
// structurally valid CSR.
func FuzzFromEdges(f *testing.F) {
	f.Add(uint16(16), []byte{1, 2, 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, nRaw uint16, raw []byte) {
		n := int(nRaw)%256 + 1
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{
				Src: uint32(raw[i]) % uint32(n),
				Dst: uint32(raw[i+1]) % uint32(n),
			})
		}
		g := FromEdges(n, edges)
		if err := g.Validate(); err != nil {
			t.Fatalf("invalid CSR from fuzz edges: %v", err)
		}
		if err := g.Transpose().Validate(); err != nil {
			t.Fatalf("invalid transpose: %v", err)
		}
	})
}
