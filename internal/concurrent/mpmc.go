// Package concurrent provides the lock-free and low-lock queue primitives the
// LCI runtime is built on: a bounded fetch-and-add MPMC ring (used for the
// incoming-packet queue and the packet-pool freelist), a multi-producer
// single-consumer queue (used by the buffered MPI layer to funnel sends into
// the dedicated communication thread), and an unbounded SPSC queue.
//
// The MPMC ring follows the fetch-and-add design the paper cites for its
// incoming-packet queue: producers and consumers claim slots with atomic
// ticket counters and synchronize per-slot with sequence numbers, so the
// uncontended path is one fetch-add plus one CAS-free store.
package concurrent

import (
	"sync/atomic"
)

// cacheLine is the assumed cache-line size used for padding hot counters so
// producer and consumer tickets do not false-share.
const cacheLine = 64

type pad [cacheLine]byte

// slot is one cell of the MPMC ring. seq carries the slot's state:
//
//	seq == pos        → empty, writable by the producer holding ticket pos
//	seq == pos+1      → full, readable by the consumer holding ticket pos
//	anything else     → the ring wrapped; the contender must retry or fail
type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// MPMC is a bounded multi-producer multi-consumer FIFO ring queue.
// The zero value is not usable; construct with NewMPMC.
//
// Enqueue and Dequeue are non-blocking: they fail immediately when the queue
// is full or empty respectively, matching the retry-oriented style of the LCI
// interface (a failed SEND-ENQ simply means "try again later").
type MPMC[T any] struct {
	_       pad
	enqPos  atomic.Uint64
	_       pad
	deqPos  atomic.Uint64
	_       pad
	mask    uint64
	slots   []slot[T]
	nilElem T
}

// NewMPMC returns an MPMC queue with capacity rounded up to the next power of
// two (minimum 2).
func NewMPMC[T any](capacity int) *MPMC[T] {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	q := &MPMC[T]{mask: n - 1, slots: make([]slot[T], n)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// Cap returns the queue capacity.
func (q *MPMC[T]) Cap() int { return len(q.slots) }

// Enqueue attempts to append v. It returns false if the queue is full.
func (q *MPMC[T]) Enqueue(v T) bool {
	for {
		pos := q.enqPos.Load()
		s := &q.slots[pos&q.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if q.enqPos.CompareAndSwap(pos, pos+1) {
				s.val = v
				s.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			// The slot still holds an element from a lap ago: full.
			return false
		default:
			// Another producer advanced enqPos; retry with fresh ticket.
		}
	}
}

// Dequeue attempts to remove the oldest element. It returns the zero value
// and false if the queue is empty.
func (q *MPMC[T]) Dequeue() (T, bool) {
	for {
		pos := q.deqPos.Load()
		s := &q.slots[pos&q.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos+1:
			if q.deqPos.CompareAndSwap(pos, pos+1) {
				v := s.val
				s.val = q.nilElem
				s.seq.Store(pos + q.mask + 1)
				return v, true
			}
		case seq <= pos:
			// Slot not yet published: empty.
			return q.nilElem, false
		default:
			// Stale ticket; retry.
		}
	}
}

// DequeueBatch removes up to len(dst) elements in one pass, returning the
// number stored into dst. The span of ready slots is claimed with a single
// CAS on the consumer ticket, so draining a burst costs one atomic
// reservation instead of one per element.
//
// Safety: after the CAS moves deqPos from pos to pos+n, tickets
// pos..pos+n-1 belong exclusively to this caller (other consumers' CAS on
// pos fails), and every claimed slot was already published by its producer
// (seq == pos+i+1 was observed, and producers cannot touch a slot again
// until the consumer republishes it).
func (q *MPMC[T]) DequeueBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	for {
		pos := q.deqPos.Load()
		// Count consecutive published slots starting at pos.
		n := 0
		max := len(dst)
		if m := len(q.slots); max > m {
			max = m
		}
		for n < max {
			p := pos + uint64(n)
			if q.slots[p&q.mask].seq.Load() != p+1 {
				break
			}
			n++
		}
		if n == 0 {
			return 0
		}
		if !q.deqPos.CompareAndSwap(pos, pos+uint64(n)) {
			continue // another consumer raced us; retry with a fresh ticket
		}
		for i := 0; i < n; i++ {
			p := pos + uint64(i)
			s := &q.slots[p&q.mask]
			dst[i] = s.val
			s.val = q.nilElem
			s.seq.Store(p + q.mask + 1)
		}
		return n
	}
}

// Len returns an instantaneous (racy) estimate of the number of queued
// elements. It is intended for stats and tests, not for synchronization.
func (q *MPMC[T]) Len() int {
	e, d := q.enqPos.Load(), q.deqPos.Load()
	if e < d {
		return 0
	}
	n := e - d
	if n > uint64(len(q.slots)) {
		n = uint64(len(q.slots))
	}
	return int(n)
}
