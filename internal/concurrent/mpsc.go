package concurrent

import (
	"sync"
	"sync/atomic"
)

// MPSC is an unbounded multi-producer single-consumer FIFO queue, the shape
// the buffered MPI layer of the paper uses to funnel send requests from many
// compute threads into the one dedicated communication thread ("Enq"/"Deq"
// in Fig. 2 of the paper).
//
// It is an intrusive Vyukov-style linked queue: producers contend only on a
// single atomic swap of the tail pointer; the consumer walks the list without
// atomics on the hot path.
type MPSC[T any] struct {
	head atomic.Pointer[mpscNode[T]] // consumer side (stub node)
	tail atomic.Pointer[mpscNode[T]] // producer side
	pool sync.Pool
}

type mpscNode[T any] struct {
	next atomic.Pointer[mpscNode[T]]
	val  T
}

// NewMPSC returns an empty MPSC queue.
func NewMPSC[T any]() *MPSC[T] {
	q := &MPSC[T]{}
	stub := &mpscNode[T]{}
	q.head.Store(stub)
	q.tail.Store(stub)
	q.pool.New = func() any { return new(mpscNode[T]) }
	return q
}

// Push appends v. It may be called from any goroutine and never fails.
func (q *MPSC[T]) Push(v T) {
	n := q.pool.Get().(*mpscNode[T])
	n.val = v
	n.next.Store(nil)
	prev := q.tail.Swap(n)
	prev.next.Store(n)
}

// Pop removes the oldest element. It must only be called from the single
// consumer goroutine. It returns false when the queue is (momentarily) empty.
//
// Note the standard MPSC caveat: between a producer's tail swap and its next
// store, the element is invisible; Pop then reports empty even though a Push
// has begun. The consumer loop in the communication thread simply retries on
// its next iteration.
func (q *MPSC[T]) Pop() (T, bool) {
	var zero T
	head := q.head.Load()
	next := head.next.Load()
	if next == nil {
		return zero, false
	}
	q.head.Store(next)
	v := next.val
	next.val = zero // release references held by the (now stub) node
	head.next.Store(nil)
	q.pool.Put(head)
	return v, true
}

// Empty reports whether the queue appears empty to the consumer.
func (q *MPSC[T]) Empty() bool {
	return q.head.Load().next.Load() == nil
}
