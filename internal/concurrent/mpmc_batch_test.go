package concurrent

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDequeueBatchStress(t *testing.T) {
	q := NewMPMC[int](4)
	const perProducer = 200000
	const producers = 2
	var wg sync.WaitGroup
	var got atomic.Int64
	var sum atomic.Int64
	done := make(chan struct{})
	go func() { // single batch consumer
		buf := make([]int, 64)
		for got.Load() < perProducer*producers {
			n := q.DequeueBatch(buf)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			for _, v := range buf[:n] {
				sum.Add(int64(v))
			}
			got.Add(int64(n))
		}
		close(done)
	}()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= perProducer; i++ {
				for !q.Enqueue(i) {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	<-done
	want := int64(producers) * perProducer * (perProducer + 1) / 2
	if sum.Load() != want {
		t.Fatalf("sum mismatch: got %d want %d", sum.Load(), want)
	}
}

// Mixed single Dequeue and DequeueBatch consumers.
func TestDequeueBatchMixedStress(t *testing.T) {
	q := NewMPMC[int](8)
	const total = 300000
	var consumed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			buf := make([]int, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if c == 0 {
					if _, ok := q.Dequeue(); ok {
						consumed.Add(1)
					} else {
						runtime.Gosched()
					}
				} else {
					n := q.DequeueBatch(buf)
					if n > 0 {
						consumed.Add(int64(n))
					} else {
						runtime.Gosched()
					}
				}
			}
		}(c)
	}
	for i := 0; i < total; i++ {
		for !q.Enqueue(i) {
			runtime.Gosched()
		}
	}
	for consumed.Load() < total {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
}
