package concurrent

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestMPMCBasic(t *testing.T) {
	q := NewMPMC[int](4)
	if q.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", q.Cap())
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue on empty queue succeeded")
	}
	for i := 0; i < 4; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("enqueue %d failed on non-full queue", i)
		}
	}
	if q.Enqueue(99) {
		t.Fatal("enqueue succeeded on full queue")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue = %d,%v want %d,true", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue succeeded on drained queue")
	}
}

func TestMPMCCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {1000, 1024},
	} {
		if got := NewMPMC[int](tc.in).Cap(); got != tc.want {
			t.Errorf("NewMPMC(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestMPMCWrapAround(t *testing.T) {
	q := NewMPMC[int](2)
	for lap := 0; lap < 1000; lap++ {
		if !q.Enqueue(lap) {
			t.Fatalf("lap %d: enqueue failed", lap)
		}
		v, ok := q.Dequeue()
		if !ok || v != lap {
			t.Fatalf("lap %d: dequeue = %d,%v", lap, v, ok)
		}
	}
}

// TestMPMCNoLossNoDup hammers the queue with concurrent producers and
// consumers and checks every value is delivered exactly once.
func TestMPMCNoLossNoDup(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 5000
	)
	q := NewMPMC[int](64)
	var wg sync.WaitGroup
	results := make(chan int, producers*perProd)

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				if v < 0 {
					return
				}
				results <- v
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProd; i++ {
				v := p*perProd + i
				for !q.Enqueue(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	pwg.Wait()
	for c := 0; c < consumers; c++ {
		for !q.Enqueue(-1) {
			runtime.Gosched()
		}
	}
	wg.Wait()
	close(results)

	seen := make([]bool, producers*perProd)
	n := 0
	for v := range results {
		if seen[v] {
			t.Fatalf("value %d delivered twice", v)
		}
		seen[v] = true
		n++
	}
	if n != producers*perProd {
		t.Fatalf("delivered %d values, want %d", n, producers*perProd)
	}
}

// TestMPMCFIFOSingleThreaded checks FIFO order property for arbitrary
// operation sequences using testing/quick.
func TestMPMCFIFOSingleThreaded(t *testing.T) {
	f := func(ops []bool, vals []int) bool {
		q := NewMPMC[int](8)
		var model []int
		vi := 0
		for _, enq := range ops {
			if enq {
				v := 0
				if vi < len(vals) {
					v = vals[vi]
					vi++
				}
				ok := q.Enqueue(v)
				if ok != (len(model) < q.Cap()) {
					return false
				}
				if ok {
					model = append(model, v)
				}
			} else {
				v, ok := q.Dequeue()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMPSCBasic(t *testing.T) {
	q := NewMPSC[string]()
	if !q.Empty() {
		t.Fatal("new queue not empty")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
	q.Push("a")
	q.Push("b")
	if q.Empty() {
		t.Fatal("queue with elements reports empty")
	}
	if v, ok := q.Pop(); !ok || v != "a" {
		t.Fatalf("pop = %q,%v", v, ok)
	}
	if v, ok := q.Pop(); !ok || v != "b" {
		t.Fatalf("pop = %q,%v", v, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop succeeded on drained queue")
	}
}

// TestMPSCConcurrent checks no loss / no duplication with several producers
// and one consumer, and per-producer FIFO order.
func TestMPSCConcurrent(t *testing.T) {
	const (
		producers = 8
		perProd   = 4000
	)
	q := NewMPSC[[2]int]() // [producer, seq]
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProd; i++ {
				q.Push([2]int{p, i})
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		pwg.Wait()
		close(done)
	}()

	next := make([]int, producers)
	got := 0
	for got < producers*perProd {
		v, ok := q.Pop()
		if !ok {
			runtime.Gosched()
			select {
			case <-done:
				// Producers finished; drain whatever remains.
				if v, ok = q.Pop(); !ok {
					if got != producers*perProd {
						t.Fatalf("drained early: got %d", got)
					}
					break
				}
			default:
				continue
			}
		}
		p, seq := v[0], v[1]
		if seq != next[p] {
			t.Fatalf("producer %d out of order: got seq %d want %d", p, seq, next[p])
		}
		next[p]++
		got++
	}
}

func TestSPSCBasic(t *testing.T) {
	q := NewSPSC[int](3) // rounds to 4
	if q.Cap() != 4 {
		t.Fatalf("cap = %d", q.Cap())
	}
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(9) {
		t.Fatal("push succeeded on full queue")
	}
	if q.Len() != 4 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop succeeded on empty queue")
	}
}

func TestSPSCConcurrent(t *testing.T) {
	const n = 100000
	q := NewSPSC[int](16)
	go func() {
		for i := 0; i < n; i++ {
			for !q.Push(i) {
				runtime.Gosched()
			}
		}
	}()
	for i := 0; i < n; i++ {
		for {
			v, ok := q.Pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v != i {
				t.Errorf("pop = %d want %d", v, i)
				return
			}
			break
		}
	}
}

func BenchmarkMPMCEnqDeq(b *testing.B) {
	q := NewMPMC[int](1024)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for !q.Enqueue(1) {
				if _, ok := q.Dequeue(); !ok {
					break
				}
			}
			q.Dequeue()
		}
	})
}

func BenchmarkMPSCPushPop(b *testing.B) {
	q := NewMPSC[int]()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Push(1)
			q.Pop()
		}
	})
}
