package concurrent

import "sync/atomic"

// SPSC is a bounded single-producer single-consumer ring queue. It is the
// cheapest queue in the package (one atomic load + one atomic store per
// operation) and is used for per-peer reorder/ack channels inside the fabric
// where endpoints are single-threaded by construction.
type SPSC[T any] struct {
	_    pad
	head atomic.Uint64 // consumer position
	_    pad
	tail atomic.Uint64 // producer position
	_    pad
	mask uint64
	buf  []T
}

// NewSPSC returns an SPSC queue with capacity rounded up to a power of two.
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &SPSC[T]{mask: n - 1, buf: make([]T, n)}
}

// Cap returns the queue capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Push appends v; it returns false when full. Producer-side only.
func (q *SPSC[T]) Push(v T) bool {
	tail := q.tail.Load()
	if tail-q.head.Load() >= uint64(len(q.buf)) {
		return false
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// Pop removes the oldest element; it returns false when empty. Consumer-side
// only.
func (q *SPSC[T]) Pop() (T, bool) {
	var zero T
	head := q.head.Load()
	if head == q.tail.Load() {
		return zero, false
	}
	v := q.buf[head&q.mask]
	q.buf[head&q.mask] = zero
	q.head.Store(head + 1)
	return v, true
}

// Len returns the current number of elements (racy under concurrency, exact
// when quiescent).
func (q *SPSC[T]) Len() int {
	t, h := q.tail.Load(), q.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}
