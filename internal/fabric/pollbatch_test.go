package fabric

import (
	"runtime"
	"sync"
	"testing"
)

// TestPollBatchConcurrentSenders hammers one receive ring from several
// concurrent senders while a single consumer drains it with PollBatch,
// releasing every frame. Run with -race this doubles as the memory-safety
// proof for the batched dequeue + frame recycling fast path.
func TestPollBatchConcurrentSenders(t *testing.T) {
	f := New(2, TestProfile())
	src, dst := f.Endpoint(0), f.Endpoint(1)

	const senders = 4
	per := 300
	if testing.Short() {
		per = 100
	}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			payload := []byte{byte(s)}
			for i := 0; i < per; i++ {
				for {
					err := src.Send(1, uint64(s)<<32|uint64(i), 0, payload)
					if err == nil {
						break
					}
					if err != ErrResource {
						t.Error(err)
						return
					}
					runtime.Gosched()
				}
			}
		}(s)
	}

	got := 0
	var batch [16]*Frame
	for got < senders*per {
		n := dst.PollBatch(batch[:])
		if n == 0 {
			runtime.Gosched()
			continue
		}
		for _, fr := range batch[:n] {
			if len(fr.Data) != 1 || fr.Src != 0 {
				t.Fatalf("frame = src %d, %d bytes", fr.Src, len(fr.Data))
			}
			fr.Release()
			got++
		}
	}
	wg.Wait()

	if n := f.FramesOutstanding(); n != 0 {
		t.Fatalf("%d frames still outstanding", n)
	}
	st := dst.Stats()
	if st.BatchPolls == 0 {
		t.Fatal("no batched polls recorded")
	}
	if st.FramesRecycled != int64(senders*per) {
		t.Fatalf("FramesRecycled = %d, want %d", st.FramesRecycled, senders*per)
	}
}
