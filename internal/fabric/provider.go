package fabric

// Provider is the set of network verbs the communication runtimes are built
// on — the paper's claim that LCI "requires only a few primitive network
// operations" made concrete as an interface. The simulated fabric's
// *Endpoint implements it in-process; internal/netfabric implements it over
// real UDP sockets. internal/core, internal/comm and internal/mpi are
// written against this interface and run unmodified over either backend.
//
// Contract (shared by both backends):
//
//   - Send and Put may be called from any goroutine of the owning host;
//     Poll/PollBatch are normally driven by a single progress thread.
//   - Send/Put fail with ErrResource when the destination cannot accept the
//     operation right now (receive ring full / no advertised credit); the
//     operation had no effect and must be retried — never treated as fatal.
//   - Put fails with ErrNoRDMA on transports without remote-write support;
//     callers fall back to fragmented eager sends.
//   - Frames handed out by Poll/PollBatch are owned by the consumer until
//     Release, which recycles the frame to its provider's pool.
type Provider interface {
	// Rank returns this endpoint's host rank.
	Rank() int
	// Size returns the number of hosts on the transport.
	Size() int
	// EagerLimit returns the maximum payload of a single Send.
	EagerLimit() int
	// HasRDMA reports whether Put is supported.
	HasRDMA() bool

	// Send injects an eager message to dst; the payload is copied onto the
	// wire, so the caller's buffer is reusable on return.
	Send(dst int, header, meta uint64, data []byte) error
	// RegisterRegion registers buf for remote Put access.
	RegisterRegion(buf []byte) (uint32, error)
	// DeregisterRegion releases an rkey.
	DeregisterRegion(rkey uint32)
	// Put writes data into dst's registered region and delivers a
	// KindPutDone frame carrying imm.
	Put(dst int, rkey uint32, offset int, data []byte, imm uint64) error

	// Poll removes and returns one incoming frame, or nil.
	Poll() *Frame
	// PollBatch drains up to len(dst) incoming frames and returns the
	// number stored.
	PollBatch(dst []*Frame) int
	// Pending returns a racy estimate of queued incoming frames.
	Pending() int

	// Stats returns a snapshot of the endpoint's wire-level counters.
	Stats() Stats
}

var _ Provider = (*Endpoint)(nil)
