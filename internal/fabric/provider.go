package fabric

// Provider is the set of network verbs the communication runtimes are built
// on — the paper's claim that LCI "requires only a few primitive network
// operations" made concrete as an interface. The simulated fabric's
// *Endpoint implements it in-process; internal/netfabric implements it over
// real UDP sockets. internal/core, internal/comm and internal/mpi are
// written against this interface and run unmodified over either backend.
//
// Contract (shared by both backends):
//
//   - Send and Put may be called from any goroutine of the owning host;
//     Poll/PollBatch are normally driven by a single progress thread.
//   - Send/Put fail with ErrResource when the destination cannot accept the
//     operation right now (receive ring full / no advertised credit); the
//     operation had no effect and must be retried — never treated as fatal.
//   - Put fails with ErrNoRDMA on transports without remote-write support;
//     callers fall back to fragmented eager sends.
//   - Frames handed out by Poll/PollBatch are owned by the consumer until
//     Release, which recycles the frame to its provider's pool.
type Provider interface {
	// Rank returns this endpoint's host rank.
	Rank() int
	// Size returns the number of hosts on the transport.
	Size() int
	// EagerLimit returns the maximum payload of a single Send.
	EagerLimit() int
	// HasRDMA reports whether Put is supported.
	HasRDMA() bool

	// Send injects an eager message to dst; the payload is copied onto the
	// wire, so the caller's buffer is reusable on return.
	Send(dst int, header, meta uint64, data []byte) error
	// RegisterRegion registers buf for remote Put access.
	RegisterRegion(buf []byte) (uint32, error)
	// DeregisterRegion releases an rkey.
	DeregisterRegion(rkey uint32)
	// Put writes data into dst's registered region and delivers a
	// KindPutDone frame carrying imm.
	Put(dst int, rkey uint32, offset int, data []byte, imm uint64) error

	// Poll removes and returns one incoming frame, or nil.
	Poll() *Frame
	// PollBatch drains up to len(dst) incoming frames and returns the
	// number stored.
	PollBatch(dst []*Frame) int
	// Pending returns a racy estimate of queued incoming frames.
	Pending() int

	// Stats returns a snapshot of the endpoint's wire-level counters.
	Stats() Stats
}

var _ Provider = (*Endpoint)(nil)

// ShardRoute tells a sharded provider which progress shard owns what. A
// route must be pure and stable: the same frame (or peer) always maps to
// the same shard, on every rank, for the whole run.
type ShardRoute struct {
	// Frame returns the shard index in [0,K) that must consume f. It runs
	// on the provider's delivery path (reader goroutines), so it must be
	// cheap and must not retain f.
	Frame func(f *Frame) int
	// Peer, when non-nil, returns the shard that owns all traffic exchanged
	// with peer. Providers with per-peer state (flows, retransmit queues)
	// use it to partition housekeeping so each shard view only touches the
	// flows it owns. Nil means ownership is not peer-aligned (tag sharding)
	// and every view may service every peer.
	Peer func(peer int) int
}

// Sharder is implemented by providers that can split frame delivery across
// K progress shards. ShardViews partitions the provider's receive side into
// K rings selected by route and returns K Provider views: view i's
// Poll/PollBatch/Pending drain only shard i's ring, while Send/Put/regions
// and wire-level Stats remain rank-global (any view may send). ShardViews
// must be called at most once, before traffic, with k ≥ 1; frames already
// queued at the time of the call surface on view 0.
type Sharder interface {
	ShardViews(k int, route ShardRoute) []Provider
}
