package fabric

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestSendPoll(t *testing.T) {
	f := New(2, TestProfile())
	a, b := f.Endpoint(0), f.Endpoint(1)
	if a.Rank() != 0 || b.Rank() != 1 || f.Size() != 2 {
		t.Fatal("rank/size wrong")
	}
	if fr := b.Poll(); fr != nil {
		t.Fatal("poll on idle endpoint returned frame")
	}
	payload := []byte("hello fabric")
	if err := a.Send(1, 42, 7, payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X' // sender buffer reusable immediately; wire copy intact
	fr := b.Poll()
	if fr == nil {
		t.Fatal("no frame delivered")
	}
	if fr.Kind != KindSend || fr.Src != 0 || fr.Header != 42 || fr.Meta != 7 {
		t.Fatalf("frame = %+v", fr)
	}
	if string(fr.Data) != "hello fabric" {
		t.Fatalf("payload = %q (wire copy corrupted)", fr.Data)
	}
	st := a.Stats()
	if st.SendFrames != 1 || st.SendBytes != int64(len(payload)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSendValidation(t *testing.T) {
	f := New(2, TestProfile())
	a := f.Endpoint(0)
	big := make([]byte, f.Profile().EagerLimit+1)
	if err := a.Send(1, 0, 0, big); err == nil {
		t.Fatal("oversized send accepted")
	}
	if err := a.Send(5, 0, 0, nil); err == nil {
		t.Fatal("send to bad rank accepted")
	}
	if err := a.Send(-1, 0, 0, nil); err == nil {
		t.Fatal("send to negative rank accepted")
	}
}

func TestRingExhaustionBackpressure(t *testing.T) {
	p := TestProfile()
	p.RingDepth = 4
	f := New(2, p)
	a, b := f.Endpoint(0), f.Endpoint(1)
	sent := 0
	for {
		err := a.Send(1, 0, 0, []byte{1})
		if err == ErrResource {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sent++
		if sent > 100 {
			t.Fatal("ring never filled")
		}
	}
	if sent != 4 {
		t.Fatalf("ring accepted %d frames, want 4", sent)
	}
	if a.Stats().SendRetries != 1 {
		t.Fatalf("retries = %d", a.Stats().SendRetries)
	}
	// Draining one slot makes room for exactly one more.
	if fr := b.Poll(); fr == nil {
		t.Fatal("drain failed")
	}
	if err := a.Send(1, 0, 0, []byte{2}); err != nil {
		t.Fatalf("send after drain: %v", err)
	}
	if err := a.Send(1, 0, 0, []byte{3}); err != ErrResource {
		t.Fatalf("expected ErrResource, got %v", err)
	}
}

func TestPutIntoRegion(t *testing.T) {
	f := New(2, TestProfile())
	a, b := f.Endpoint(0), f.Endpoint(1)
	window := make([]byte, 64)
	rkey, err := b.RegisterRegion(window)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("rdma-payload")
	if err := a.Put(1, rkey, 8, data, 0xdead); err != nil {
		t.Fatal(err)
	}
	fr := b.Poll()
	if fr == nil || fr.Kind != KindPutDone || fr.Header != 0xdead || fr.Src != 0 {
		t.Fatalf("completion = %+v", fr)
	}
	if !bytes.Equal(window[8:8+len(data)], data) {
		t.Fatalf("region contents = %q", window[8:8+len(data)])
	}
	st := a.Stats()
	if st.Puts != 1 || st.PutBytes != int64(len(data)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutValidation(t *testing.T) {
	f := New(2, TestProfile())
	a, b := f.Endpoint(0), f.Endpoint(1)
	window := make([]byte, 16)
	rkey, _ := b.RegisterRegion(window)

	if err := a.Put(1, rkey+100, 0, []byte{1}, 0); err != ErrBadRKey {
		t.Fatalf("bad rkey: %v", err)
	}
	if err := a.Put(1, rkey, 15, []byte{1, 2}, 0); err != ErrBadRKey {
		t.Fatalf("out-of-bounds put: %v", err)
	}
	if err := a.Put(1, rkey, -1, []byte{1}, 0); err != ErrBadRKey {
		t.Fatalf("negative offset: %v", err)
	}
	if err := a.Put(9, rkey, 0, []byte{1}, 0); err == nil {
		t.Fatal("put to bad rank accepted")
	}
	b.DeregisterRegion(rkey)
	if err := a.Put(1, rkey, 0, []byte{1}, 0); err != ErrBadRKey {
		t.Fatalf("put to deregistered region: %v", err)
	}
}

func TestRegionReuse(t *testing.T) {
	p := TestProfile()
	f := New(1, p)
	e := f.Endpoint(0)
	k1, err := e.RegisterRegion(make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	e.DeregisterRegion(k1)
	k2, err := e.RegisterRegion(make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("rkey not recycled: %d then %d", k1, k2)
	}
	// Table capacity is enforced.
	var keys []uint32
	for {
		k, err := e.RegisterRegion(make([]byte, 1))
		if err != nil {
			break
		}
		keys = append(keys, k)
		if len(keys) > p.MaxRegions+1 {
			t.Fatal("region table never filled")
		}
	}
	if len(keys) != p.MaxRegions-1 { // k2 still registered
		t.Fatalf("registered %d regions before full, want %d", len(keys), p.MaxRegions-1)
	}
}

// TestManySendersOneReceiver checks no loss/dup with concurrent senders and a
// polling receiver under back-pressure.
func TestManySendersOneReceiver(t *testing.T) {
	p := TestProfile()
	p.RingDepth = 8
	const hosts, perHost = 4, 2000
	f := New(hosts+1, p)
	recv := f.Endpoint(hosts)

	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			ep := f.Endpoint(h)
			buf := make([]byte, 4)
			for i := 0; i < perHost; i++ {
				binary.LittleEndian.PutUint32(buf, uint32(i))
				for {
					err := ep.Send(hosts, uint64(h), 0, buf)
					if err == nil {
						break
					}
					if err != ErrResource {
						t.Errorf("send: %v", err)
						return
					}
					runtime.Gosched()
				}
			}
		}(h)
	}

	seen := make([][]bool, hosts)
	for h := range seen {
		seen[h] = make([]bool, perHost)
	}
	got := 0
	donech := make(chan struct{})
	go func() { wg.Wait(); close(donech) }()
	for got < hosts*perHost {
		fr := recv.Poll()
		if fr == nil {
			runtime.Gosched()
			continue
		}
		h := int(fr.Header)
		i := int(binary.LittleEndian.Uint32(fr.Data))
		if seen[h][i] {
			t.Fatalf("duplicate frame %d/%d", h, i)
		}
		seen[h][i] = true
		got++
	}
	<-donech
	if fr := recv.Poll(); fr != nil {
		t.Fatal("extra frame after all accounted for")
	}
}

// TestPerSenderFIFO: frames from a single sending goroutine arrive in order.
func TestPerSenderFIFO(t *testing.T) {
	f := New(2, TestProfile())
	a, b := f.Endpoint(0), f.Endpoint(1)
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			for a.Send(1, uint64(i), 0, nil) == ErrResource {
				runtime.Gosched() // retry while receiver drains
			}
		}
	}()
	for i := 0; i < n; i++ {
		var fr *Frame
		for fr == nil {
			runtime.Gosched()
			fr = b.Poll()
		}
		if fr.Header != uint64(i) {
			t.Fatalf("out of order: got %d want %d", fr.Header, i)
		}
	}
}

// TestQuickPutOffsets: puts at arbitrary valid offsets land exactly there.
func TestQuickPutOffsets(t *testing.T) {
	f := New(2, TestProfile())
	a, b := f.Endpoint(0), f.Endpoint(1)
	const wsize = 256
	window := make([]byte, wsize)
	rkey, _ := b.RegisterRegion(window)
	check := func(off uint8, val uint8, n uint8) bool {
		offset := int(off) % wsize
		size := int(n)%16 + 1
		if offset+size > wsize {
			offset = wsize - size
		}
		data := bytes.Repeat([]byte{val}, size)
		if err := a.Put(1, rkey, offset, data, 1); err != nil {
			return false
		}
		if b.Poll() == nil {
			return false
		}
		return bytes.Equal(window[offset:offset+size], data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{OmniPath(), InfiniBand(), TestProfile()} {
		if p.RingDepth <= 0 || p.EagerLimit <= 0 || p.MaxRegions <= 0 {
			t.Errorf("profile %s has non-positive limits: %+v", p.Name, p)
		}
	}
	if OmniPath().SendCost >= InfiniBand().SendCost {
		t.Error("omni-path should have lower per-message cost than FDR infiniband")
	}
}

func BenchmarkSendPoll8B(b *testing.B) {
	f := New(2, TestProfile())
	a, r := f.Endpoint(0), f.Endpoint(1)
	buf := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a.Send(1, 0, 0, buf) != nil {
			r.Poll()
		}
		for r.Poll() == nil {
		}
	}
}

func BenchmarkPut1K(b *testing.B) {
	f := New(2, TestProfile())
	a, r := f.Endpoint(0), f.Endpoint(1)
	window := make([]byte, 1<<10)
	rkey, _ := r.RegisterRegion(window)
	data := make([]byte, 1<<10)
	b.SetBytes(1 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a.Put(1, rkey, 0, data, 0) != nil {
			r.Poll()
		}
		for r.Poll() == nil {
		}
	}
}
