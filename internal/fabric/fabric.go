// Package fabric simulates the cluster interconnect the paper's runtimes sit
// on: one NIC endpoint per host, a reliable network between them, bounded
// hardware receive resources, an eager send verb, an RDMA put verb into
// registered memory regions, and a poll verb that drains the receive ring.
//
// It is the substitution for the Omni-Path (psm2) and InfiniBand (ibverbs)
// adapters of Stampede2/Stampede1: see DESIGN.md §2. Both the MPI baseline
// (internal/mpi) and LCI (internal/core) drive exactly these verbs, so
// performance differences between the stacks come from their software paths,
// not from the fabric.
//
// Back-pressure is modelled the way the paper needs it to be: when a
// destination's receive ring is full, Send and Put fail with ErrResource.
// LCI surfaces that to its caller as a retriable failure; a naive MPI layer
// turns it into buffer exhaustion (see internal/mpi).
package fabric

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lcigraph/internal/concurrent"
)

// ErrResource indicates the network could not accept the operation right now
// (destination ring full / injection limit). The operation had no effect and
// may be retried.
var ErrResource = errors.New("fabric: network resources exhausted (retry)")

// ErrBadRKey indicates an RDMA put referenced an unknown or out-of-bounds
// registered region.
var ErrBadRKey = errors.New("fabric: invalid rkey or out-of-bounds put")

// ErrNoRDMA indicates the fabric profile has no RDMA write capability
// (e.g. a sockets provider); upper layers must fall back to fragmented
// sends.
var ErrNoRDMA = errors.New("fabric: profile has no RDMA support")

// FrameKind discriminates what Poll returned.
type FrameKind uint8

const (
	// KindSend is an eager message frame carrying data.
	KindSend FrameKind = iota
	// KindPutDone is the completion notification of an RDMA put targeting
	// this endpoint's memory: the data is already in the registered region;
	// the frame carries only the immediate word.
	KindPutDone
)

// Frame is one unit of delivery from the network to an endpoint.
// Header and Meta are opaque 64-bit words for the upper layer (message type,
// tag, request ids...); the fabric never interprets them.
//
// Frames handed out by Poll/PollBatch are owned by the consumer until it
// calls Release, which returns the frame (and its pooled wire buffer) to the
// fabric free-list. Data aliases the pooled buffer, so it must not be read
// after Release.
type Frame struct {
	Kind   FrameKind
	Src    int
	Header uint64
	Meta   uint64
	Data   []byte // eager payload (KindSend); nil for KindPutDone

	buf     []byte       // pooled wire buffer backing Data (cap = EagerLimit)
	fab     *Fabric      // owning fabric; nil for unpooled frames
	rep     *Endpoint    // receiving endpoint (recycle attribution)
	recycle func(*Frame) // external-provider recycle hook (netfabric)
	inUse   atomic.Bool  // double-release guard
}

// Release returns a polled frame to its owner's free-list: the simulated
// fabric's pool, or — for frames minted by an external Provider — that
// provider's recycle hook. It is safe (and a no-op) on unpooled frames;
// releasing the same pooled frame twice panics. After Release the frame and
// its Data must not be touched.
func (f *Frame) Release() {
	if f == nil {
		return
	}
	if f.recycle != nil {
		if !f.inUse.CompareAndSwap(true, false) {
			panic("fabric: Frame released twice")
		}
		f.recycle(f)
		return
	}
	if f.fab == nil {
		return
	}
	if !f.inUse.CompareAndSwap(true, false) {
		panic("fabric: Frame released twice")
	}
	if f.rep != nil {
		f.rep.framesRecycled.Add(1)
		f.rep = nil
	}
	f.fab.putFrame(f)
}

// NewProviderFrame mints a frame owned by an external Provider. buf is the
// provider's reusable wire buffer (Data may alias it; retrieve it with
// Buffer); recycle is invoked by Release, after the double-release guard,
// instead of the simulator free-list. The frame starts idle — the provider
// must call Acquire before every delivery.
func NewProviderFrame(buf []byte, recycle func(*Frame)) *Frame {
	return &Frame{buf: buf, recycle: recycle}
}

// Buffer returns the frame's attached wire buffer (nil for frames without
// one). Providers slice Data out of it during reassembly.
func (f *Frame) Buffer() []byte { return f.buf }

// Acquire marks a provider frame as handed out to a consumer, arming the
// double-release guard. Acquiring a frame already in flight panics.
func (f *Frame) Acquire() {
	if !f.inUse.CompareAndSwap(false, true) {
		panic("fabric: provider frame acquired while in use")
	}
}

// Profile describes a NIC / interconnect model. The per-operation overheads
// are charged as busy-wait time on the calling thread, modelling the
// injection and delivery costs of a real adapter; they are deliberately small
// relative to the software-stack costs under study.
type Profile struct {
	Name       string
	RingDepth  int           // per-endpoint receive ring depth (HW resource)
	EagerLimit int           // maximum bytes carried by a single Send frame
	SendCost   time.Duration // per-Send injection overhead
	PutCost    time.Duration // per-Put injection overhead
	ByteCost   time.Duration // additional cost per 1KiB transferred
	MaxRegions int           // registered-region table size
	// DisableRDMA models transports without remote-write capability (the
	// libfabric sockets provider class): Put fails with ErrNoRDMA and the
	// communication runtimes fall back to fragmented eager sends.
	DisableRDMA bool
	// Jitter, when positive, adds a pseudo-random extra delay of up to
	// this duration to a fraction of operations — failure/variance
	// injection for robustness tests (congested or noisy networks).
	Jitter time.Duration
	// DisableFramePool reverts to per-message heap allocation of frames and
	// wire buffers (the pre-pool behaviour). Kept as a benchmark knob so the
	// allocation win is measurable in one binary.
	DisableFramePool bool
}

// OmniPath models the Stampede2 Intel Omni-Path fabric (psm2): deep rings,
// low per-message overhead (Table III row 1).
func OmniPath() Profile {
	return Profile{
		Name:       "omnipath",
		RingDepth:  1024,
		EagerLimit: 8 << 10,
		SendCost:   200 * time.Nanosecond,
		PutCost:    300 * time.Nanosecond,
		// The per-byte cost is scaled to the simulator's (goroutine-
		// scheduling) hop latency, not to real wall-clock bandwidth, so
		// that large transfers are bandwidth-dominated just as on the real
		// NIC; see DESIGN.md §2.
		ByteCost:   1200 * time.Nanosecond,
		MaxRegions: 4096,
	}
}

// InfiniBand models the Stampede1 Mellanox FDR InfiniBand fabric (ibverbs,
// RC): shallower rings, slightly higher per-message cost, lower bandwidth
// (Table III row 2).
func InfiniBand() Profile {
	return Profile{
		Name:       "infiniband",
		RingDepth:  512,
		EagerLimit: 4 << 10,
		SendCost:   350 * time.Nanosecond,
		PutCost:    450 * time.Nanosecond,
		ByteCost:   2100 * time.Nanosecond, // ~0.57× the Omni-Path rate
		MaxRegions: 4096,
	}
}

// Sockets models a commodity transport with no RDMA (the libfabric sockets
// provider / TCP class): the portability target of §VI — LCI "requires
// only a few primitive network operations", so it must run here too.
func Sockets() Profile {
	return Profile{
		Name:        "sockets",
		RingDepth:   256,
		EagerLimit:  4 << 10,
		SendCost:    900 * time.Nanosecond,
		PutCost:     0,
		ByteCost:    3500 * time.Nanosecond,
		MaxRegions:  128,
		DisableRDMA: true,
	}
}

// TestProfile is a fast zero-overhead profile for unit tests.
func TestProfile() Profile {
	return Profile{
		Name:       "test",
		RingDepth:  64,
		EagerLimit: 1 << 10,
		MaxRegions: 128,
	}
}

// Stats are per-endpoint operation counters.
type Stats struct {
	SendFrames     int64
	SendBytes      int64
	Puts           int64
	PutBytes       int64
	Polls          int64
	PollHits       int64
	SendRetries    int64 // ErrResource returns from Send
	PutRetries     int64 // ErrResource returns from Put
	FramesRecycled int64 // frames returned to the pool after delivery here
	BatchPolls     int64 // PollBatch calls that drained at least one frame

	// Real-transport counters, filled by providers with an actual wire
	// (internal/netfabric); always zero on the simulated fabric, whose
	// network is lossless and flow-controlled by the receive ring alone.
	Retransmits    int64 // data packets resent after an ack timeout
	PacketsDropped int64 // datagrams dropped: injected faults + stale/duplicate arrivals
	AcksSent       int64 // standalone ack/credit datagrams sent
	CreditStalls   int64 // sends refused because the peer advertised no credit
	SendBatches    int64 // vectored sendmmsg bursts carrying >1 datagram
	RecvBatches    int64 // vectored recvmmsg bursts carrying >1 datagram
	GSOSends       int64 // multi-segment UDP_SEGMENT trains handed to the kernel
	GROCoalesced   int64 // coalesced super-datagrams received and re-split
	SockDrops      int64 // kernel receive-queue drops reported via SO_RXQ_OVFL
	PiggybackAcks  int64 // acks carried for free on outgoing DATA packets
	DelayedAcks    int64 // standalone acks deferred to the delayed-ack tick
	SockErrors     int64 // transient socket errors absorbed by the reader
	RTTNanos       int64 // worst smoothed RTT estimate across peer flows
}

// Fabric is an in-process interconnect between n endpoints.
type Fabric struct {
	prof Profile
	eps  []*Endpoint

	// frames is the shared free-list of delivery frames with pooled wire
	// buffers. It is a cache, not an accounting structure: a miss allocates
	// a fresh frame, and a frame dropped on the floor (never Released) is
	// simply collected by the GC.
	frames      *concurrent.MPMC[*Frame]
	outstanding atomic.Int64 // pooled frames handed out and not yet released
}

// New creates a fabric with n endpoints using profile prof.
func New(n int, prof Profile) *Fabric {
	if prof.RingDepth <= 0 {
		prof.RingDepth = 64
	}
	if prof.EagerLimit <= 0 {
		prof.EagerLimit = 1 << 10
	}
	if prof.MaxRegions <= 0 {
		prof.MaxRegions = 128
	}
	f := &Fabric{prof: prof, eps: make([]*Endpoint, n)}
	if !prof.DisableFramePool {
		cap := prof.RingDepth * n
		if cap < 64 {
			cap = 64
		}
		f.frames = concurrent.NewMPMC[*Frame](cap)
	}
	for i := range f.eps {
		e := &Endpoint{fab: f, rank: i}
		e.rs.Store(&ringSet{rings: []*concurrent.MPMC[*Frame]{
			concurrent.NewMPMC[*Frame](prof.RingDepth),
		}})
		f.eps[i] = e
	}
	return f
}

// getFrame takes a frame from the free-list, allocating on a miss. The
// returned frame's buf has capacity ≥ EagerLimit.
func (f *Fabric) getFrame() *Frame {
	if f.frames == nil {
		return &Frame{} // pooling disabled: plain heap frame
	}
	fr, ok := f.frames.Dequeue()
	if !ok {
		fr = &Frame{fab: f, buf: make([]byte, f.prof.EagerLimit)}
	}
	if !fr.inUse.CompareAndSwap(false, true) {
		panic("fabric: pooled frame handed out while in use")
	}
	f.outstanding.Add(1)
	return fr
}

// putFrame returns a frame to the free-list (dropping it if the list is
// full — the GC reclaims it, keeping the pool a pure cache).
func (f *Fabric) putFrame(fr *Frame) {
	f.outstanding.Add(-1)
	fr.Data = nil
	fr.Header = 0
	fr.Meta = 0
	f.frames.Enqueue(fr)
}

// FramesOutstanding returns the number of pooled frames currently held by
// consumers (handed out by Send/Put and not yet Released). Conservation
// tests assert this returns to zero after a drain.
func (f *Fabric) FramesOutstanding() int64 { return f.outstanding.Load() }

// Size returns the number of endpoints.
func (f *Fabric) Size() int { return len(f.eps) }

// Profile returns the fabric's NIC profile.
func (f *Fabric) Profile() Profile { return f.prof }

// Endpoint returns the endpoint for host rank.
func (f *Fabric) Endpoint(rank int) *Endpoint { return f.eps[rank] }

// region is a registered memory window on an endpoint.
type region struct {
	buf   []byte
	valid bool
}

// ringSet is an endpoint's receive side: one ring per progress shard plus
// the route that picks the ring for an arriving frame. It is immutable —
// ShardViews installs a new set with a single atomic pointer swap, so
// delivery never observes a half-built slice. Before sharding (and always
// at K=1) there is exactly one ring and no route.
type ringSet struct {
	rings []*concurrent.MPMC[*Frame]
	route func(*Frame) int // nil: everything lands on rings[0]
}

// pick returns the ring an arriving frame belongs on, clamping a bad route
// result to shard 0 rather than dropping traffic.
func (rs *ringSet) pick(f *Frame) *concurrent.MPMC[*Frame] {
	if rs.route == nil || len(rs.rings) == 1 {
		return rs.rings[0]
	}
	i := rs.route(f)
	if i < 0 || i >= len(rs.rings) {
		i = 0
	}
	return rs.rings[i]
}

// Endpoint is one host's NIC. Send and Put may be called from any goroutine
// of the owning host; Poll is normally called by a single progress thread
// per shard view (it is nevertheless thread-safe).
type Endpoint struct {
	fab  *Fabric
	rank int
	rs   atomic.Pointer[ringSet]

	mu      sync.Mutex
	regions []region
	free    []uint32

	sendFrames     atomic.Int64
	sendBytes      atomic.Int64
	puts           atomic.Int64
	putBytes       atomic.Int64
	polls          atomic.Int64
	pollHits       atomic.Int64
	sendRetries    atomic.Int64
	putRetries     atomic.Int64
	framesRecycled atomic.Int64
	batchPolls     atomic.Int64
	jitterSeq      atomic.Uint64
}

// Rank returns the endpoint's host rank.
func (e *Endpoint) Rank() int { return e.rank }

// EagerLimit returns the maximum payload of a single Send.
func (e *Endpoint) EagerLimit() int { return e.fab.prof.EagerLimit }

// Size returns the number of hosts on the fabric.
func (e *Endpoint) Size() int { return e.fab.Size() }

// Fabric returns the fabric this endpoint belongs to.
func (e *Endpoint) Fabric() *Fabric { return e.fab }

// HasRDMA reports whether the fabric supports Put.
func (e *Endpoint) HasRDMA() bool { return !e.fab.prof.DisableRDMA }

// chargeSleepMin is the threshold above which charge sleeps instead of
// spinning: modelled costs of tens of microseconds and up would otherwise
// burn whole cores (and wall-clock minutes of test time on small machines).
const chargeSleepMin = 50 * time.Microsecond

// charge waits for the modelled cost of an operation moving n bytes, plus
// injected jitter when the profile asks for it. Short costs busy-wait (the
// charge is a CPU cost model); long ones sleep most of the duration and
// spin only the remainder so the wall-clock charge stays accurate without
// monopolising a core.
func (e *Endpoint) charge(base time.Duration, n int) {
	d := base + e.fab.prof.ByteCost*time.Duration(n)/1024
	if j := e.fab.prof.Jitter; j > 0 {
		// Cheap xorshift on a per-endpoint counter: ~1 in 8 operations is
		// delayed by up to j.
		x := uint64(e.jitterSeq.Add(0x9e3779b97f4a7c15))
		x ^= x >> 33
		if x&7 == 0 {
			d += time.Duration(x % uint64(j))
		}
	}
	if d <= 0 {
		return
	}
	start := time.Now()
	if d >= chargeSleepMin {
		// Sleep slightly short of the target; the spin below absorbs timer
		// overshoot either way (the charge is a minimum, not an exact).
		time.Sleep(d - chargeSleepMin/2)
	}
	for time.Since(start) < d {
	}
}

// Send injects an eager message to dst. The payload is copied onto the wire;
// the caller's buffer is reusable as soon as Send returns. Send fails with
// ErrResource when dst's receive ring is full — the caller must retry (or,
// in the naive MPI model, die).
func (e *Endpoint) Send(dst int, header, meta uint64, data []byte) error {
	if len(data) > e.fab.prof.EagerLimit {
		return fmt.Errorf("fabric: send of %d bytes exceeds eager limit %d", len(data), e.fab.prof.EagerLimit)
	}
	if dst < 0 || dst >= len(e.fab.eps) {
		return fmt.Errorf("fabric: bad destination rank %d", dst)
	}
	f := e.fab.getFrame()
	f.Kind = KindSend
	f.Src = e.rank
	f.Header = header
	f.Meta = meta
	if len(data) > 0 {
		if f.buf != nil {
			f.Data = f.buf[:len(data)]
		} else {
			f.Data = make([]byte, len(data))
		}
		copy(f.Data, data)
	} else {
		f.Data = nil
	}
	target := e.fab.eps[dst]
	f.rep = target
	e.charge(e.fab.prof.SendCost, len(data))
	if !target.deliver(f) {
		// Undelivered: return the frame to the pool without counting it as
		// a consumer recycle.
		f.rep = nil
		if f.fab != nil {
			f.inUse.Store(false)
			f.fab.putFrame(f)
		}
		e.sendRetries.Add(1)
		return ErrResource
	}
	e.sendFrames.Add(1)
	e.sendBytes.Add(int64(len(data)))
	return nil
}

// RegisterRegion registers buf for remote Put access and returns its rkey.
// The region remains valid until DeregisterRegion.
func (e *Endpoint) RegisterRegion(buf []byte) (uint32, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.free); n > 0 {
		k := e.free[n-1]
		e.free = e.free[:n-1]
		e.regions[k] = region{buf: buf, valid: true}
		return k, nil
	}
	if len(e.regions) >= e.fab.prof.MaxRegions {
		return 0, errors.New("fabric: region table full")
	}
	e.regions = append(e.regions, region{buf: buf, valid: true})
	return uint32(len(e.regions) - 1), nil
}

// DeregisterRegion releases an rkey.
func (e *Endpoint) DeregisterRegion(rkey uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if int(rkey) < len(e.regions) && e.regions[rkey].valid {
		e.regions[rkey] = region{}
		e.free = append(e.free, rkey)
	}
}

// lookupRegion returns the target slice for a put.
func (e *Endpoint) lookupRegion(rkey uint32, offset, n int) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if int(rkey) >= len(e.regions) || !e.regions[rkey].valid {
		return nil, ErrBadRKey
	}
	buf := e.regions[rkey].buf
	if offset < 0 || offset+n > len(buf) {
		return nil, ErrBadRKey
	}
	return buf[offset : offset+n], nil
}

// Put performs an RDMA write of data into dst's registered region rkey at
// offset, then delivers a KindPutDone frame carrying imm to dst. Like Send
// it fails with ErrResource when dst's ring cannot take the completion (the
// data is NOT written in that case, so retry is safe).
func (e *Endpoint) Put(dst int, rkey uint32, offset int, data []byte, imm uint64) error {
	if e.fab.prof.DisableRDMA {
		return ErrNoRDMA
	}
	if dst < 0 || dst >= len(e.fab.eps) {
		return fmt.Errorf("fabric: bad destination rank %d", dst)
	}
	target := e.fab.eps[dst]
	dstBuf, err := target.lookupRegion(rkey, offset, len(data))
	if err != nil {
		return err
	}
	// Reserve the completion slot first so a full ring never leaves a
	// half-visible write.
	f := e.fab.getFrame()
	f.Kind = KindPutDone
	f.Src = e.rank
	f.Header = imm
	f.Meta = uint64(rkey)
	f.Data = nil
	f.rep = target
	e.charge(e.fab.prof.PutCost, len(data))
	copy(dstBuf, data)
	if !target.deliver(f) {
		// Roll-back is impossible for real RDMA; but since the receiver only
		// reads the region after seeing the completion, re-copying on retry
		// is harmless. Report retriable failure.
		f.rep = nil
		if f.fab != nil {
			f.inUse.Store(false)
			f.fab.putFrame(f)
		}
		e.putRetries.Add(1)
		return ErrResource
	}
	e.puts.Add(1)
	e.putBytes.Add(int64(len(data)))
	return nil
}

// deliver routes an arriving frame onto the receive ring of the shard that
// owns it. False means the ring was full (back-pressure: the caller rolls
// the frame back and reports ErrResource).
func (e *Endpoint) deliver(f *Frame) bool {
	return e.rs.Load().pick(f).Enqueue(f)
}

// Poll removes and returns one incoming frame, or nil if none is pending.
// The caller owns the frame until it calls Release. On a sharded endpoint
// the base Poll drains shard 0's ring; the other shards poll their views.
func (e *Endpoint) Poll() *Frame {
	e.polls.Add(1)
	f, ok := e.rs.Load().rings[0].Dequeue()
	if !ok {
		return nil
	}
	e.pollHits.Add(1)
	return f
}

// PollBatch drains up to len(dst) incoming frames in one ring pass (a single
// atomic reservation on the receive ring) and returns the number stored.
// The caller owns every returned frame until it calls Release.
func (e *Endpoint) PollBatch(dst []*Frame) int {
	e.polls.Add(1)
	n := e.rs.Load().rings[0].DequeueBatch(dst)
	if n > 0 {
		e.pollHits.Add(int64(n))
		e.batchPolls.Add(1)
	}
	return n
}

// Pending returns a racy estimate of queued incoming frames, summed across
// every shard ring.
func (e *Endpoint) Pending() int {
	n := 0
	for _, r := range e.rs.Load().rings {
		n += r.Len()
	}
	return n
}

// ShardViews implements Sharder: it splits the endpoint's receive side into
// k rings selected by route.Frame and returns k Provider views, one per
// progress shard. View 0 keeps the original ring, so frames delivered
// before the split surface there. Send/Put, the region table, and the stat
// counters stay rank-global — any view may send on behalf of its shard.
func (e *Endpoint) ShardViews(k int, route ShardRoute) []Provider {
	if k < 1 {
		panic("fabric: ShardViews needs k >= 1")
	}
	old := e.rs.Load()
	rings := make([]*concurrent.MPMC[*Frame], k)
	rings[0] = old.rings[0]
	for i := 1; i < k; i++ {
		rings[i] = concurrent.NewMPMC[*Frame](e.fab.prof.RingDepth)
	}
	var route0 func(*Frame) int
	if k > 1 {
		route0 = route.Frame
	}
	e.rs.Store(&ringSet{rings: rings, route: route0})
	views := make([]Provider, k)
	for i := range views {
		views[i] = &shardView{Endpoint: e, ring: rings[i]}
	}
	return views
}

// shardView is one progress shard's window onto a sharded endpoint: it
// polls only its own ring and delegates everything else to the base
// endpoint.
type shardView struct {
	*Endpoint
	ring *concurrent.MPMC[*Frame]
}

func (v *shardView) Poll() *Frame {
	v.polls.Add(1)
	f, ok := v.ring.Dequeue()
	if !ok {
		return nil
	}
	v.pollHits.Add(1)
	return f
}

func (v *shardView) PollBatch(dst []*Frame) int {
	v.polls.Add(1)
	n := v.ring.DequeueBatch(dst)
	if n > 0 {
		v.pollHits.Add(int64(n))
		v.batchPolls.Add(1)
	}
	return n
}

func (v *shardView) Pending() int { return v.ring.Len() }

var _ Provider = (*shardView)(nil)
var _ Sharder = (*Endpoint)(nil)

// Stats returns a snapshot of the endpoint's counters.
func (e *Endpoint) Stats() Stats {
	return Stats{
		SendFrames:     e.sendFrames.Load(),
		SendBytes:      e.sendBytes.Load(),
		Puts:           e.puts.Load(),
		PutBytes:       e.putBytes.Load(),
		Polls:          e.polls.Load(),
		PollHits:       e.pollHits.Load(),
		SendRetries:    e.sendRetries.Load(),
		PutRetries:     e.putRetries.Load(),
		FramesRecycled: e.framesRecycled.Load(),
		BatchPolls:     e.batchPolls.Load(),
	}
}
