package fabric

import "lcigraph/internal/telemetry"

// Canonical registry names for the Stats fields. Every provider (the
// simulator here, internal/netfabric for UDP) re-expresses its counters
// under these names via RegisterStats, so harnesses merge and render one
// schema regardless of transport (DESIGN.md §11).
const (
	MetricSendFrames     = "lci_fabric_send_frames_total"
	MetricSendBytes      = "lci_fabric_send_bytes_total"
	MetricPuts           = "lci_fabric_puts_total"
	MetricPutBytes       = "lci_fabric_put_bytes_total"
	MetricPolls          = "lci_fabric_polls_total"
	MetricPollHits       = "lci_fabric_poll_hits_total"
	MetricSendRetries    = "lci_fabric_send_retries_total"
	MetricPutRetries     = "lci_fabric_put_retries_total"
	MetricFramesRecycled = "lci_fabric_frames_recycled_total"
	MetricBatchPolls     = "lci_fabric_batch_polls_total"

	MetricRetransmits    = "lci_net_retransmits_total"
	MetricPacketsDropped = "lci_net_packets_dropped_total"
	MetricAcksSent       = "lci_net_acks_sent_total"
	MetricCreditStalls   = "lci_net_credit_stalls_total"
	MetricSendBatches    = "lci_net_send_batches_total"
	MetricRecvBatches    = "lci_net_recv_batches_total"
	MetricGSOSends       = "lci_net_gso_sends_total"
	MetricGROCoalesced   = "lci_net_gro_coalesced_total"
	MetricSockDrops      = "lci_net_sock_drops_total"
	MetricPiggybackAcks  = "lci_net_piggyback_acks_total"
	MetricDelayedAcks    = "lci_net_delayed_acks_total"
	MetricSockErrors     = "lci_net_sock_errors_total"

	MetricRingPending       = "lci_fabric_ring_pending"
	MetricFramesOutstanding = "lci_fabric_frames_outstanding"
)

// RegisterStats maps a provider's Stats snapshot onto the registry as
// counter funcs under the canonical names: the provider's own atomics stay
// the single source of truth — no parallel counting on the hot path —
// and the registry reads them at snapshot time. Several providers in one
// process (an in-process job's endpoints) registering into one registry sum.
func RegisterStats(reg *telemetry.Registry, stats func() Stats) {
	if !reg.Enabled() || stats == nil {
		return
	}
	field := func(name string, get func(Stats) int64) {
		reg.CounterFunc(name, func() int64 { return get(stats()) })
	}
	field(MetricSendFrames, func(s Stats) int64 { return s.SendFrames })
	field(MetricSendBytes, func(s Stats) int64 { return s.SendBytes })
	field(MetricPuts, func(s Stats) int64 { return s.Puts })
	field(MetricPutBytes, func(s Stats) int64 { return s.PutBytes })
	field(MetricPolls, func(s Stats) int64 { return s.Polls })
	field(MetricPollHits, func(s Stats) int64 { return s.PollHits })
	field(MetricSendRetries, func(s Stats) int64 { return s.SendRetries })
	field(MetricPutRetries, func(s Stats) int64 { return s.PutRetries })
	field(MetricFramesRecycled, func(s Stats) int64 { return s.FramesRecycled })
	field(MetricBatchPolls, func(s Stats) int64 { return s.BatchPolls })
	field(MetricRetransmits, func(s Stats) int64 { return s.Retransmits })
	field(MetricPacketsDropped, func(s Stats) int64 { return s.PacketsDropped })
	field(MetricAcksSent, func(s Stats) int64 { return s.AcksSent })
	field(MetricCreditStalls, func(s Stats) int64 { return s.CreditStalls })
	field(MetricSendBatches, func(s Stats) int64 { return s.SendBatches })
	field(MetricRecvBatches, func(s Stats) int64 { return s.RecvBatches })
	field(MetricGSOSends, func(s Stats) int64 { return s.GSOSends })
	field(MetricGROCoalesced, func(s Stats) int64 { return s.GROCoalesced })
	field(MetricSockDrops, func(s Stats) int64 { return s.SockDrops })
	field(MetricPiggybackAcks, func(s Stats) int64 { return s.PiggybackAcks })
	field(MetricDelayedAcks, func(s Stats) int64 { return s.DelayedAcks })
	field(MetricSockErrors, func(s Stats) int64 { return s.SockErrors })
}

// MetricsRegistrar is implemented by providers that can expose their
// counters and gauges through a telemetry registry. Both in-repo providers
// (*Endpoint here, *netfabric.Provider) implement it; harnesses type-assert
// so the Provider interface itself stays a pure verb set.
type MetricsRegistrar interface {
	RegisterMetrics(reg *telemetry.Registry)
}

// RegisterMetrics re-expresses this endpoint's Stats as registry metrics and
// adds the simulator's instantaneous gauges: receive-ring depth and (once
// per fabric) the pooled frames currently held by consumers.
func (e *Endpoint) RegisterMetrics(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	RegisterStats(reg, e.Stats)
	reg.GaugeFunc(MetricRingPending, telemetry.AggSum, func() int64 { return int64(e.Pending()) })
	reg.GaugeFunc(MetricFramesOutstanding, telemetry.AggMax, e.fab.FramesOutstanding)
}

var _ MetricsRegistrar = (*Endpoint)(nil)
