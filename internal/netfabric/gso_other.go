//go:build !(linux && (amd64 || arm64))

package netfabric

import "net"

// offloadAvailable reports whether this build has the segmentation-offload
// tier at all. Off Linux the provider always runs the portable path; the
// stubs below keep the provider code identical across builds.
const offloadAvailable = false

func probeGSO(net.PacketConn) bool { return false }

func enableGRO(net.PacketConn) bool { return false }

func disableGRO(net.PacketConn) bool { return false }

func enableRxqOvfl(net.PacketConn) bool { return false }

// ListenReusePort binds a plain datagram socket: without SO_REUSEPORT a
// second bind to the same address fails, which is how reader-shard setup
// degrades to a single reader on these builds.
func ListenReusePort(network, addr string) (net.PacketConn, error) {
	return net.ListenPacket(network, addr)
}
