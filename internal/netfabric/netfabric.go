// Package netfabric is a real-network fabric provider: the same verbs the
// in-process simulator exposes (fabric.Provider), implemented over UDP
// sockets. It is the step from "simulation of the paper" to "distributed
// runtime": internal/core, internal/comm and internal/mpi run unmodified
// over it, and cmd/lci-launch spawns one OS process per rank over loopback.
//
// UDP gives none of what the simulator gave for free, so the provider
// supplies it in software (DESIGN.md §9):
//
//   - Reliability: a per-peer sliding window of sequence-numbered datagrams
//     with cumulative acks, retransmit timers and exponential backoff.
//   - Back-pressure: receiver-advertised message credits. A sender out of
//     credit (or out of window) gets fabric.ErrResource — the same
//     retriable failure LCI is built around, now produced by a real wire.
//   - Framing: messages larger than the UDP MTU are fragmented into
//     consecutive sequence numbers and reassembled into pooled frames
//     (the PR-1 zero-allocation receive path, via fabric.NewProviderFrame).
//   - No RDMA: Put fails with fabric.ErrNoRDMA, exercising the upper
//     layers' fragmented-send rendezvous fallback end-to-end.
//
// A Fault hook injects loss, duplication and reordering on outgoing
// datagrams for robustness tests.
package netfabric

import (
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lcigraph/internal/concurrent"
	"lcigraph/internal/fabric"
)

// Config describes one rank's endpoint. Window, Credits, EagerLimit and MTU
// must agree across all ranks of a job (the launcher and loopback group
// guarantee this).
type Config struct {
	Rank  int
	Addrs []string // UDP address of every rank, indexed by rank

	// Conn, when non-nil, is a pre-bound socket for this rank (the SPMD
	// launcher binds all sockets before spawning and passes them down, so
	// there is no startup race). When nil, New binds Addrs[Rank].
	Conn net.PacketConn

	EagerLimit int           // max payload of one Send (default 8 KiB)
	MTU        int           // max datagram size incl. wire header (default 1400)
	Window     int           // max unacked packets per peer flow (default 256)
	Credits    int           // max delivered-but-unreleased messages per peer (default 128)
	RTO        time.Duration // initial retransmit timeout (default 5ms)
	MaxRTO     time.Duration // retransmit backoff cap (default 50ms)
	// DrainTimeout bounds how long Close keeps the socket (and retransmit
	// timer) alive waiting for every in-flight packet to be acked, so a
	// lossy wire cannot swallow the job's final messages (default 1s).
	DrainTimeout time.Duration
	MaxRegions   int   // local region table size (default 128)
	Fault        Fault // outgoing-datagram fault injection
}

func (c *Config) fill() error {
	if c.EagerLimit <= 0 {
		c.EagerLimit = 8 << 10
	}
	if c.MTU <= 0 {
		c.MTU = 1400
	}
	if c.MTU <= dataHdrLen {
		return fmt.Errorf("netfabric: MTU %d leaves no payload room (header %d)", c.MTU, dataHdrLen)
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.Credits <= 0 {
		c.Credits = 128
	}
	if c.RTO <= 0 {
		// Loopback RTT is microseconds, but on an oversubscribed host the
		// real ack latency is OS scheduling, so a too-tight timer mostly
		// produces spurious retransmits.
		c.RTO = 5 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 50 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = time.Second
	}
	if c.MaxRegions <= 0 {
		c.MaxRegions = 128
	}
	if c.Rank < 0 || c.Rank >= len(c.Addrs) {
		return fmt.Errorf("netfabric: rank %d outside address list of %d", c.Rank, len(c.Addrs))
	}
	return nil
}

// Provider is one rank's UDP endpoint. It implements fabric.Provider.
type Provider struct {
	rank, size  int
	eagerLimit  int
	chunk       int // payload bytes per DATA datagram
	window      uint32
	credits     int
	rto, maxRTO time.Duration
	drainTO     time.Duration

	conn  net.PacketConn
	peers []net.Addr
	flows []*flow // indexed by peer rank; nil at self

	ring   *concurrent.MPMC[*fabric.Frame] // delivery ring drained by Poll
	frames *concurrent.MPMC[*fabric.Frame] // provider frame free-list
	txBufs sync.Pool                       // datagram encode buffers

	fault *faultInjector

	// Self-sends bypass the wire but respect the same credit quota so the
	// delivery ring can never overflow (its capacity is size × credits).
	selfDelivered atomic.Int64
	selfConsumed  atomic.Int64

	regMu   sync.Mutex
	regions []bool
	maxRegs int

	closed atomic.Bool
	wg     sync.WaitGroup

	sendFrames     atomic.Int64
	sendBytes      atomic.Int64
	polls          atomic.Int64
	pollHits       atomic.Int64
	batchPolls     atomic.Int64
	sendRetries    atomic.Int64
	framesRecycled atomic.Int64
	retransmits    atomic.Int64
	dropped        atomic.Int64
	acksSent       atomic.Int64
	creditStalls   atomic.Int64
}

var _ fabric.Provider = (*Provider)(nil)

// New builds a provider and starts its socket reader. The reader goroutine
// also runs the retransmit and credit-refresh timers, so the provider makes
// reliability progress even when the upper layer's progress thread stalls.
func New(cfg Config) (*Provider, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	p := &Provider{
		rank:       cfg.Rank,
		size:       len(cfg.Addrs),
		eagerLimit: cfg.EagerLimit,
		chunk:      cfg.MTU - dataHdrLen,
		window:     uint32(cfg.Window),
		credits:    cfg.Credits,
		rto:        cfg.RTO,
		maxRTO:     cfg.MaxRTO,
		drainTO:    cfg.DrainTimeout,
		conn:       cfg.Conn,
		maxRegs:    cfg.MaxRegions,
	}
	p.ring = concurrent.NewMPMC[*fabric.Frame](p.size * p.credits)
	p.frames = concurrent.NewMPMC[*fabric.Frame](p.size * p.credits)
	p.txBufs.New = func() any { return make([]byte, cfg.MTU) }
	if cfg.Fault.enabled() {
		p.fault = newFaultInjector(cfg.Fault)
	}
	if p.conn == nil {
		c, err := net.ListenPacket("udp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("netfabric: bind rank %d: %w", cfg.Rank, err)
		}
		p.conn = c
	}
	p.peers = make([]net.Addr, p.size)
	p.flows = make([]*flow, p.size)
	for r, a := range cfg.Addrs {
		if r == p.rank {
			continue
		}
		addr, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			p.conn.Close()
			return nil, fmt.Errorf("netfabric: rank %d address %q: %w", r, a, err)
		}
		p.peers[r] = addr
		p.flows[r] = newFlow(r, p.credits)
	}
	p.wg.Add(1)
	go p.reader()
	return p, nil
}

// Addr returns the provider's bound socket address.
func (p *Provider) Addr() net.Addr { return p.conn.LocalAddr() }

// Close drains in-flight packets, then stops the reader and closes the
// socket. The upper layers must be stopped first (a Send on a closed
// provider is a hard error).
//
// The drain is what makes teardown safe on a lossy wire: a rank that
// completes the job's final collective may reach Close within microseconds,
// long before the first RTO, so without it a dropped last datagram would
// never be retransmitted and the peer would block forever waiting for this
// rank's contribution. Close therefore keeps the socket and the reader's
// retransmit/ack machinery alive until every flow's unacked window is
// empty, bounded by DrainTimeout (a vanished peer must not wedge teardown).
func (p *Provider) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	p.drain()
	err := p.conn.Close()
	p.wg.Wait()
	return err
}

// drain blocks until no flow holds an unacked packet or the drain timeout
// expires. The reader goroutine is still running (the socket is open), so
// retransmit timers, incoming acks and outgoing ack/credit refreshes all
// keep making progress while we wait.
func (p *Provider) drain() {
	deadline := time.Now().Add(p.drainTO)
	for {
		pending := false
		for _, fl := range p.flows {
			if fl == nil {
				continue
			}
			fl.mu.Lock()
			n := len(fl.unacked)
			fl.mu.Unlock()
			if n > 0 {
				pending = true
				break
			}
		}
		if !pending || time.Now().After(deadline) {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// ---- fabric.Provider identity ----

// Rank returns this endpoint's rank.
func (p *Provider) Rank() int { return p.rank }

// Size returns the number of ranks.
func (p *Provider) Size() int { return p.size }

// EagerLimit returns the maximum payload of one Send.
func (p *Provider) EagerLimit() int { return p.eagerLimit }

// HasRDMA reports false: UDP has no remote-write verb, so upper layers take
// the fragmented-send rendezvous fallback.
func (p *Provider) HasRDMA() bool { return false }

// ---- frame pool ----

func (p *Provider) getFrame() *fabric.Frame {
	fr, ok := p.frames.Dequeue()
	if !ok {
		fr = fabric.NewProviderFrame(make([]byte, p.eagerLimit), p.recycleFrame)
	}
	fr.Acquire()
	return fr
}

// recycleFrame is the Release hook of every frame this provider mints: it
// returns the frame to the free-list and credits the consumed message back
// to its flow, scheduling a credit re-advertisement to un-stall the sender.
func (p *Provider) recycleFrame(f *fabric.Frame) {
	src := f.Src
	f.Data = nil
	f.Header = 0
	f.Meta = 0
	p.framesRecycled.Add(1)
	if src == p.rank {
		p.selfConsumed.Add(1)
	} else if src >= 0 && src < p.size && p.flows[src] != nil {
		fl := p.flows[src]
		fl.consumed.Add(1)
		fl.ackDue.Store(true)
	}
	p.frames.Enqueue(f) // full free-list drops to the GC, pool stays a cache
}

// ---- send path ----

// errClosed is returned for operations on a closed provider.
var errClosed = errors.New("netfabric: provider closed")

// Send injects an eager message to dst, fragmenting to the MTU. It fails
// with fabric.ErrResource when dst has advertised no remaining credit or
// the retransmit window is full — retriable back-pressure, exactly like the
// simulator's full receive ring.
func (p *Provider) Send(dst int, header, meta uint64, data []byte) error {
	if p.closed.Load() {
		return errClosed
	}
	if len(data) > p.eagerLimit {
		return fmt.Errorf("netfabric: send of %d bytes exceeds eager limit %d", len(data), p.eagerLimit)
	}
	if dst < 0 || dst >= p.size {
		return fmt.Errorf("netfabric: bad destination rank %d", dst)
	}
	if dst == p.rank {
		return p.sendSelf(header, meta, data)
	}
	fl := p.flows[dst]
	nfrags := 1
	if len(data) > p.chunk {
		nfrags = (len(data) + p.chunk - 1) / p.chunk
	}

	fl.mu.Lock()
	if fl.msgsSent >= fl.creditLimit {
		fl.mu.Unlock()
		p.creditStalls.Add(1)
		p.sendRetries.Add(1)
		return fabric.ErrResource
	}
	if fl.inFlight()+uint32(nfrags) > p.window {
		fl.mu.Unlock()
		p.sendRetries.Add(1)
		return fabric.ErrResource
	}
	now := time.Now()
	off := 0
	for i := 0; i < nfrags; i++ {
		end := off + p.chunk
		if end > len(data) {
			end = len(data)
		}
		buf := p.txBufs.Get().([]byte)
		n := encodeData(buf, p.rank, fl.nextSeq, uint32(off), uint32(len(data)), header, meta, data[off:end])
		tx := &txPacket{seq: fl.nextSeq, data: buf[:n], lastTx: now}
		fl.unacked[fl.nextSeq] = tx
		fl.nextSeq++
		p.xmit(dst, buf[:n])
		off = end
	}
	fl.msgsSent++
	fl.mu.Unlock()
	p.sendFrames.Add(1)
	p.sendBytes.Add(int64(len(data)))
	return nil
}

// sendSelf delivers a message to this rank's own ring without touching the
// wire, under the same credit quota as one remote peer.
func (p *Provider) sendSelf(header, meta uint64, data []byte) error {
	// Reserve before building so concurrent self-senders cannot overshoot
	// the quota the ring capacity was sized for.
	if p.selfDelivered.Add(1)-p.selfConsumed.Load() > int64(p.credits) {
		p.selfDelivered.Add(-1)
		p.sendRetries.Add(1)
		return fabric.ErrResource
	}
	fr := p.getFrame()
	fr.Kind = fabric.KindSend
	fr.Src = p.rank
	fr.Header = header
	fr.Meta = meta
	if len(data) > 0 {
		fr.Data = fr.Buffer()[:len(data)]
		copy(fr.Data, data)
	} else {
		fr.Data = nil
	}
	if !p.ring.Enqueue(fr) {
		// Capacity is sized for the worst case; reaching here is a bug.
		panic("netfabric: delivery ring overflow on self-send")
	}
	p.sendFrames.Add(1)
	p.sendBytes.Add(int64(len(data)))
	return nil
}

// xmit writes one datagram, applying fault injection. Callers may hold a
// flow lock; the injector takes no flow locks.
func (p *Provider) xmit(dst int, pkt []byte) {
	if p.fault == nil {
		p.conn.WriteTo(pkt, p.peers[dst])
		return
	}
	switch p.fault.decide() {
	case faultDrop:
		p.dropped.Add(1)
	case faultDup:
		p.conn.WriteTo(pkt, p.peers[dst])
		p.conn.WriteTo(pkt, p.peers[dst])
	case faultHold:
		if prev, prevDst := p.fault.hold(pkt, p.peers[dst]); prev != nil {
			p.conn.WriteTo(prev, prevDst)
		}
	default:
		p.conn.WriteTo(pkt, p.peers[dst])
		if held, heldDst := p.fault.take(); held != nil {
			p.conn.WriteTo(held, heldDst)
		}
	}
}

// ---- RDMA verbs (absent on UDP) ----

// RegisterRegion keeps a local region table for API parity; the transport
// cannot serve remote writes into it.
func (p *Provider) RegisterRegion(buf []byte) (uint32, error) {
	p.regMu.Lock()
	defer p.regMu.Unlock()
	for i, used := range p.regions {
		if !used {
			p.regions[i] = true
			return uint32(i), nil
		}
	}
	if len(p.regions) >= p.maxRegs {
		return 0, errors.New("netfabric: region table full")
	}
	p.regions = append(p.regions, true)
	return uint32(len(p.regions) - 1), nil
}

// DeregisterRegion releases an rkey.
func (p *Provider) DeregisterRegion(rkey uint32) {
	p.regMu.Lock()
	defer p.regMu.Unlock()
	if int(rkey) < len(p.regions) {
		p.regions[rkey] = false
	}
}

// Put fails with fabric.ErrNoRDMA: callers fall back to fragmented sends.
func (p *Provider) Put(int, uint32, int, []byte, uint64) error {
	return fabric.ErrNoRDMA
}

// ---- receive path ----

// Poll removes and returns one incoming frame, or nil.
func (p *Provider) Poll() *fabric.Frame {
	p.polls.Add(1)
	f, ok := p.ring.Dequeue()
	if !ok {
		return nil
	}
	p.pollHits.Add(1)
	return f
}

// PollBatch drains up to len(dst) incoming frames in one ring pass.
func (p *Provider) PollBatch(dst []*fabric.Frame) int {
	p.polls.Add(1)
	n := p.ring.DequeueBatch(dst)
	if n > 0 {
		p.pollHits.Add(int64(n))
		p.batchPolls.Add(1)
	}
	return n
}

// Pending returns a racy estimate of queued incoming frames.
func (p *Provider) Pending() int { return p.ring.Len() }

// reader is the provider's single background goroutine: it drains the
// socket, runs the reliability protocol, and — on its read-deadline tick —
// retransmits timed-out packets and re-advertises credits.
func (p *Provider) reader() {
	defer p.wg.Done()
	tick := p.rto / 2
	if tick < 500*time.Microsecond {
		tick = 500 * time.Microsecond
	}
	buf := make([]byte, 64<<10)
	lastKeep := time.Now()
	for {
		p.conn.SetReadDeadline(time.Now().Add(tick))
		n, _, err := p.conn.ReadFrom(buf)
		if err != nil {
			// Timeouts are the housekeeping tick and must keep firing while
			// Close drains unacked packets (closed is already set then), so
			// only a non-timeout error on a closed provider ends the loop.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				p.housekeep()
				lastKeep = time.Now()
				continue
			}
			if p.closed.Load() {
				return
			}
			// Transient socket error (e.g. ICMP bounce): keep serving,
			// but never spin on a persistently failing socket.
			time.Sleep(100 * time.Microsecond)
			continue
		}
		p.handleDatagram(buf[:n])
		if time.Since(lastKeep) >= tick {
			p.housekeep()
			lastKeep = time.Now()
		} else {
			p.flushAcks()
		}
	}
}

func (p *Provider) handleDatagram(b []byte) {
	if len(b) < 4 || b[0] != magicByte || b[1] != wireVersion {
		p.dropped.Add(1)
		return
	}
	switch b[2] {
	case pktData:
		d, ok := decodeData(b)
		if !ok || d.src < 0 || d.src >= p.size || d.src == p.rank ||
			int(d.msgLen) > p.eagerLimit {
			p.dropped.Add(1)
			return
		}
		p.onData(p.flows[d.src], &d)
	case pktAck:
		src, cum, credit, ok := decodeAck(b)
		if !ok || src < 0 || src >= p.size || src == p.rank {
			p.dropped.Add(1)
			return
		}
		p.onAck(p.flows[src], cum, credit)
	default:
		p.dropped.Add(1)
	}
}

// onData runs the receive side of the sliding window: in-order packets are
// applied immediately (with any unblocked early arrivals), early packets are
// buffered, stale ones dropped. Every data arrival schedules an ack.
func (p *Provider) onData(fl *flow, d *dataPkt) {
	defer fl.ackDue.Store(true)
	delta := d.seq - fl.nextRecv // serial arithmetic: wrap-safe
	switch {
	case int32(delta) < 0: // stale duplicate: re-ack so the sender advances
		p.dropped.Add(1)
		return
	case delta > 0: // early: buffer within the window
		if _, dup := fl.ooo[d.seq]; dup || delta > p.window {
			p.dropped.Add(1)
			return
		}
		fl.ooo[d.seq] = d.clone()
		return
	}
	p.apply(fl, d)
	fl.nextRecv++
	for {
		nd, ok := fl.ooo[fl.nextRecv]
		if !ok {
			return
		}
		delete(fl.ooo, fl.nextRecv)
		p.apply(fl, nd)
		fl.nextRecv++
	}
}

// apply reassembles one in-order fragment; a completed message becomes a
// pooled frame on the delivery ring. Ring capacity is guaranteed by the
// credit quota (delivered − consumed ≤ credits per flow).
func (p *Provider) apply(fl *flow, d *dataPkt) {
	if d.fragOff == 0 {
		fr := p.getFrame()
		fr.Kind = fabric.KindSend
		fr.Src = fl.peer
		fr.Header = d.header
		fr.Meta = d.meta
		if d.msgLen > 0 {
			fr.Data = fr.Buffer()[:d.msgLen]
		} else {
			fr.Data = nil
		}
		fl.asm = fr
		fl.asmLen = int(d.msgLen)
		fl.asmGot = 0
	}
	if fl.asm == nil {
		p.dropped.Add(1) // mid-message fragment with no head: protocol bug guard
		return
	}
	// decodeData only checked the packet against its *own* msgLen field; the
	// assembly buffer was sized by the head fragment's. A corrupted or
	// spoofed in-window datagram disagreeing with the head must be dropped,
	// not allowed to index past the buffer.
	if int(d.msgLen) != fl.asmLen || int(d.fragOff)+len(d.chunk) > len(fl.asm.Data) {
		p.dropped.Add(1)
		return
	}
	copy(fl.asm.Data[d.fragOff:], d.chunk)
	fl.asmGot += len(d.chunk)
	if fl.asmGot >= fl.asmLen {
		if !p.ring.Enqueue(fl.asm) {
			panic("netfabric: delivery ring overflow (credit accounting bug)")
		}
		fl.asm = nil
		fl.delivered++
	}
}

// onAck runs the send side: retire acked packets, slide the window, and
// raise the credit limit (monotonic, so reordered acks are harmless).
func (p *Provider) onAck(fl *flow, cum uint32, credit uint64) {
	fl.mu.Lock()
	// Unsigned delta rejects stale (cum behind base) and corrupt (beyond
	// the window) cumulative acks in one comparison.
	if delta := cum - fl.baseSeq; delta > 0 && delta <= p.window {
		for seq := fl.baseSeq; seq != cum; seq++ {
			if tx, ok := fl.unacked[seq]; ok {
				delete(fl.unacked, seq)
				p.txBufs.Put(tx.data[:cap(tx.data)])
			}
		}
		fl.baseSeq = cum
	}
	if credit > fl.creditLimit {
		fl.creditLimit = credit
	}
	fl.mu.Unlock()
}

// housekeep retransmits timed-out packets (bounded burst, exponential
// backoff) and flushes pending acks, including pure credit refreshes after
// consumers released frames.
func (p *Provider) housekeep() {
	now := time.Now()
	budget := 64
	for _, fl := range p.flows {
		if budget == 0 {
			break
		}
		if fl == nil {
			continue
		}
		fl.mu.Lock()
		for _, tx := range fl.unacked {
			timeout := p.rto << uint(tx.attempts)
			if timeout > p.maxRTO {
				timeout = p.maxRTO
			}
			if now.Sub(tx.lastTx) < timeout {
				continue
			}
			if tx.attempts < 16 {
				tx.attempts++
			}
			tx.lastTx = now
			p.retransmits.Add(1)
			p.xmit(fl.peer, tx.data)
			if budget--; budget == 0 {
				break
			}
		}
		fl.mu.Unlock()
	}
	// A reorder-held datagram must not outlive the hold window when traffic
	// goes quiet.
	if p.fault != nil {
		if held, dst := p.fault.take(); held != nil {
			p.conn.WriteTo(held, dst)
		}
	}
	p.flushAcks()
}

// flushAcks sends one ack/credit datagram to every peer flagged ackDue.
// Called only from the reader goroutine (nextRecv is reader-owned).
func (p *Provider) flushAcks() {
	var buf [ackPktLen]byte
	for _, fl := range p.flows {
		if fl == nil || !fl.ackDue.Swap(false) {
			continue
		}
		credit := fl.consumed.Load() + uint64(p.credits)
		n := encodeAck(buf[:], p.rank, fl.nextRecv, credit)
		p.xmit(fl.peer, buf[:n])
		p.acksSent.Add(1)
	}
}

// Stats returns a snapshot of the provider's counters in the fabric's
// schema, transport counters included.
func (p *Provider) Stats() fabric.Stats {
	return fabric.Stats{
		SendFrames:     p.sendFrames.Load(),
		SendBytes:      p.sendBytes.Load(),
		Polls:          p.polls.Load(),
		PollHits:       p.pollHits.Load(),
		SendRetries:    p.sendRetries.Load(),
		FramesRecycled: p.framesRecycled.Load(),
		BatchPolls:     p.batchPolls.Load(),
		Retransmits:    p.retransmits.Load(),
		PacketsDropped: p.dropped.Load(),
		AcksSent:       p.acksSent.Load(),
		CreditStalls:   p.creditStalls.Load(),
	}
}

// ---- environment wiring (SPMD launcher) ----

// Env variable names used between cmd/lci-launch and worker processes.
const (
	EnvRank  = "LCI_RANK"
	EnvSize  = "LCI_SIZE"
	EnvAddrs = "LCI_ADDRS"
	EnvFD    = "LCI_FD" // inherited pre-bound UDP socket file descriptor
	EnvLoss  = "LCI_LOSS"
	EnvDup   = "LCI_DUP"
	EnvReord = "LCI_REORDER"
	EnvSeed  = "LCI_FAULT_SEED"
)

// InEnv reports whether the process was spawned by the SPMD launcher.
func InEnv() bool { return os.Getenv(EnvRank) != "" }

// FromEnv builds the provider for a launcher-spawned worker process: rank,
// peer addresses, the inherited socket and fault-injection rates all come
// from the environment.
func FromEnv() (*Provider, error) {
	rank, err := strconv.Atoi(os.Getenv(EnvRank))
	if err != nil {
		return nil, fmt.Errorf("netfabric: bad %s: %w", EnvRank, err)
	}
	addrs := strings.Split(os.Getenv(EnvAddrs), ",")
	if sz := os.Getenv(EnvSize); sz != "" {
		n, err := strconv.Atoi(sz)
		if err != nil || n != len(addrs) {
			return nil, fmt.Errorf("netfabric: %s=%q disagrees with %d addresses", EnvSize, sz, len(addrs))
		}
	}
	cfg := Config{Rank: rank, Addrs: addrs}
	cfg.Fault.Loss = envFloat(EnvLoss)
	cfg.Fault.Dup = envFloat(EnvDup)
	cfg.Fault.Reorder = envFloat(EnvReord)
	if s := os.Getenv(EnvSeed); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("netfabric: bad %s: %w", EnvSeed, err)
		}
		cfg.Fault.Seed = seed
	}
	if fdStr := os.Getenv(EnvFD); fdStr != "" {
		fd, err := strconv.Atoi(fdStr)
		if err != nil {
			return nil, fmt.Errorf("netfabric: bad %s: %w", EnvFD, err)
		}
		f := os.NewFile(uintptr(fd), "lci-udp")
		pc, err := net.FilePacketConn(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("netfabric: inherited socket: %w", err)
		}
		cfg.Conn = pc
	}
	return New(cfg)
}

func envFloat(name string) float64 {
	s := os.Getenv(name)
	if s == "" {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}
