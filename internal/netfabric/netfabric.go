// Package netfabric is a real-network fabric provider: the same verbs the
// in-process simulator exposes (fabric.Provider), implemented over UDP
// sockets. It is the step from "simulation of the paper" to "distributed
// runtime": internal/core, internal/comm and internal/mpi run unmodified
// over it, and cmd/lci-launch spawns one OS process per rank over loopback.
//
// UDP gives none of what the simulator gave for free, so the provider
// supplies it in software (DESIGN.md §9):
//
//   - Reliability: a per-peer sliding window of sequence-numbered datagrams
//     with cumulative acks, retransmit timers and exponential backoff.
//   - Back-pressure: receiver-advertised message credits. A sender out of
//     credit (or out of window) gets fabric.ErrResource — the same
//     retriable failure LCI is built around, now produced by a real wire.
//   - Framing: messages larger than the UDP MTU are fragmented into
//     consecutive sequence numbers and reassembled into pooled frames
//     (the PR-1 zero-allocation receive path, via fabric.NewProviderFrame).
//   - No RDMA: Put fails with fabric.ErrNoRDMA, exercising the upper
//     layers' fragmented-send rendezvous fallback end-to-end.
//
// The hot path amortizes per-datagram costs three ways (DESIGN.md §10):
// outgoing packets queue per destination and flush as one vectored
// sendmmsg burst (the reader pulls bursts with recvmmsg), every data packet
// piggybacks the reverse direction's cumulative ack + credit so
// bidirectional traffic needs no standalone ack datagrams, and the
// retransmit timeout adapts per flow from measured ack round trips
// (RFC 6298 with Karn's rule) instead of a fixed guess.
//
// A Fault hook injects loss, duplication and reordering on outgoing
// datagrams for robustness tests.
package netfabric

import (
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lcigraph/internal/concurrent"
	"lcigraph/internal/fabric"
	"lcigraph/internal/tracing"
)

// Config describes one rank's endpoint. Window, Credits, EagerLimit and MTU
// must agree across all ranks of a job (the launcher and loopback group
// guarantee this).
type Config struct {
	Rank  int
	Addrs []string // UDP address of every rank, indexed by rank

	// Conn, when non-nil, is a pre-bound socket for this rank (the SPMD
	// launcher binds all sockets before spawning and passes them down, so
	// there is no startup race). When nil, New binds Addrs[Rank].
	Conn net.PacketConn

	EagerLimit int           // max payload of one Send (default 8 KiB)
	MTU        int           // max datagram size incl. wire header (default 1400)
	Window     int           // max unacked packets per peer flow (default 256)
	Credits    int           // max delivered-but-unreleased messages per peer (default 128)
	RTO        time.Duration // initial retransmit timeout, used until the first RTT sample (default 5ms)
	MinRTO     time.Duration // adaptive RTO floor (default min(2ms, RTO))
	MaxRTO     time.Duration // retransmit backoff cap (default 50ms)
	// DrainTimeout bounds how long Close keeps the socket (and retransmit
	// timer) alive waiting for every in-flight packet to be acked, so a
	// lossy wire cannot swallow the job's final messages (default 1s).
	DrainTimeout time.Duration
	MaxRegions   int   // local region table size (default 128)
	Fault        Fault // outgoing-datagram fault injection

	// TxBatch is the pending-transmit threshold at which a Send flushes its
	// flow inline; below it, packets wait for the next progress poll or
	// housekeeping tick and go out as one vectored burst (default 32).
	TxBatch int
	// AckEvery forces a standalone ack after this many received data
	// packets on a one-way flow, bounding sender window occupancy between
	// delayed-ack ticks (default max(8, Credits/4)).
	AckEvery int
	// SockBuf sizes the kernel socket buffers at New (default 1 MiB).
	SockBuf int
	// ReaderShards is the number of receive sockets sharing this endpoint's
	// address via SO_REUSEPORT, each drained by its own reader goroutine (the
	// kernel hashes peers across them). Default min(4, NumCPU), clamped to
	// [1,16]; silently degrades to a single reader when the platform or the
	// primary socket cannot join a reuseport group. Also settable via
	// LCI_READER_SHARDS for launcher-spawned workers.
	ReaderShards int
	// EndpointShards is the number of progress shards the upper layer will
	// run over this provider (fabric.Sharder views). It does not change the
	// provider's behavior by itself; it raises ReaderShards to match, so
	// kernel-side reuseport steering and upper-layer progress sharding have
	// the same parallelism, and it is reported by Capabilities. Default 1.
	// Also settable via LCI_ENDPOINT_SHARDS for launcher-spawned workers.
	EndpointShards int

	// Ablation knobs (also settable via LCI_NO_BATCH_IO, LCI_NO_PIGGYBACK,
	// LCI_FIXED_RTO, LCI_NO_GSO for launcher-spawned workers).
	DisableBatchIO   bool // one syscall per datagram, flush every Send (pre-batching path)
	DisablePiggyback bool // never stamp acks onto data packets
	FixedRTO         bool // keep RTO at the configured seed; no RTT adaptation
	DisableGSO       bool // no UDP_SEGMENT trains / UDP_GRO coalescing (plain batch I/O)

	// Tracer receives transport lifecycle events (retransmits, ack window
	// advances, credit stalls, stall warnings) and the flight-recorder dump
	// when the stall detector fires or Close's drain times out. Nil selects
	// the process-wide default tracer (enabled only under LCI_TRACE).
	Tracer *tracing.Tracer

	// StallRTOs is the stall detector's no-ack-progress threshold: a
	// structured warning fires once a flow's oldest unacked packet has been
	// retransmitted this many times without the cumulative ack moving —
	// i.e. the peer has been silent for the sum of that many backed-off
	// RTOs. One warning per stall episode (default 8).
	StallRTOs int
	// CreditStallTimeout is the zero-credit threshold: a warning fires when
	// a flow's sends have been refused for lack of receiver credit for this
	// long without the peer raising the limit (default 500ms).
	CreditStallTimeout time.Duration
}

func (c *Config) fill() error {
	if c.EagerLimit <= 0 {
		c.EagerLimit = 8 << 10
	}
	if c.MTU <= 0 {
		c.MTU = 1400
	}
	if c.MTU <= dataHdrLen {
		return fmt.Errorf("netfabric: MTU %d leaves no payload room (header %d)", c.MTU, dataHdrLen)
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.Credits <= 0 {
		c.Credits = 128
	}
	if c.RTO <= 0 {
		// The seed RTO holds until the first RTT sample. Loopback RTT is
		// microseconds, but on an oversubscribed host the real ack latency
		// is OS scheduling, so a too-tight seed mostly produces spurious
		// retransmits before the estimator has data.
		c.RTO = 5 * time.Millisecond
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 2 * time.Millisecond
		if c.RTO < c.MinRTO {
			// An explicitly aggressive seed is a statement of intent (tests
			// use 1ms for fast recovery); don't floor above it.
			c.MinRTO = c.RTO
		}
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 50 * time.Millisecond
	}
	if c.MaxRTO < c.RTO {
		c.MaxRTO = c.RTO
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = time.Second
	}
	if c.MaxRegions <= 0 {
		c.MaxRegions = 128
	}
	if c.TxBatch <= 0 {
		c.TxBatch = 32
	}
	if c.DisableBatchIO {
		c.TxBatch = 1 // flush every Send: the original per-packet path
	}
	if c.AckEvery <= 0 {
		c.AckEvery = c.Credits / 4
		if c.AckEvery < 8 {
			c.AckEvery = 8
		}
	}
	if c.SockBuf <= 0 {
		c.SockBuf = 1 << 20
	}
	if c.ReaderShards <= 0 {
		c.ReaderShards = min(4, runtime.NumCPU())
	}
	if c.EndpointShards <= 0 {
		c.EndpointShards = 1
	}
	if c.EndpointShards > 16 {
		c.EndpointShards = 16
	}
	// One receive socket per progress shard at minimum: the kernel spreads
	// peers across the reuseport group, the route spreads them across the
	// progress shards, and matching counts keep the two alignable.
	if c.ReaderShards < c.EndpointShards {
		c.ReaderShards = c.EndpointShards
	}
	if c.ReaderShards > 16 {
		c.ReaderShards = 16
	}
	if c.DisableBatchIO {
		c.DisableGSO = true // the offload tier rides the sendmmsg driver
	}
	if c.StallRTOs <= 0 {
		c.StallRTOs = 8
	}
	if c.CreditStallTimeout <= 0 {
		c.CreditStallTimeout = 500 * time.Millisecond
	}
	if c.Rank < 0 || c.Rank >= len(c.Addrs) {
		return fmt.Errorf("netfabric: rank %d outside address list of %d", c.Rank, len(c.Addrs))
	}
	return nil
}

// readBatchLen is the number of datagrams one recvmmsg may pull.
const readBatchLen = 16

// Provider is one rank's UDP endpoint. It implements fabric.Provider.
type Provider struct {
	rank, size  int
	eagerLimit  int
	chunk       int // payload bytes per DATA datagram
	window      uint32
	credits     int
	seedRTO     time.Duration
	minRTO      time.Duration
	maxRTO      time.Duration
	drainTO     time.Duration
	tick        time.Duration // housekeeping / delayed-ack cadence
	txBatch     int
	ackEvery    int
	readBufLen  int
	noPiggyback bool
	fixedRTO    bool

	conn  net.PacketConn
	peers []net.Addr
	flows []*flow // indexed by peer rank; nil at self

	// bio is the vectored-I/O driver; nil when unavailable (non-Linux,
	// non-UDP socket, DisableBatchIO) or after a kernel refusal downgraded
	// the provider to the one-syscall-per-datagram path at runtime.
	bio atomic.Pointer[mmsgIO]

	// Segmentation-offload tier (DESIGN.md §13). gsoOn flips off permanently
	// the first time the kernel rejects a UDP_SEGMENT train; gro and rxq
	// record what the receive sockets negotiated at New.
	gsoOn atomic.Bool
	gro   bool
	rxq   bool

	// shards are the receive sockets: shard 0 wraps the primary (transmit)
	// socket; extras joined the address via SO_REUSEPORT so the kernel
	// spreads incoming peers across their reader goroutines.
	shards []*readerShard

	// GSO planning scratch, guarded by xmitMu like the burst scratch below.
	trainScratch []gsoTrain

	// Dirty-flow counters: a receive or release only touches its own flow;
	// the housekeeping pass skips all-flow scans entirely while these are
	// zero.
	ackDueFlows atomic.Int64 // flows with ackDue set
	txPendFlows atomic.Int64 // flows with unflushed pending packets

	// xmitMu serializes wire bursts (the kernel serializes socket sends
	// anyway) and guards the shared burst scratch.
	xmitMu      sync.Mutex
	wireScratch [][]byte
	dstScratch  []int

	// rs is the delivery side: one ring per progress shard plus the route
	// that picks the ring for a completed message. Immutable and swapped
	// atomically by ShardViews; a single unrouted ring until then.
	rs       atomic.Pointer[ringSet]
	epShards int                             // configured progress-shard count (Capabilities)
	frames   *concurrent.MPMC[*fabric.Frame] // provider frame free-list
	txBufs   sync.Pool                       // datagram encode buffers

	fault *faultInjector

	// Self-sends bypass the wire but respect the same credit quota so the
	// delivery ring can never overflow (its capacity is size × credits).
	selfDelivered atomic.Int64
	selfConsumed  atomic.Int64

	regMu   sync.Mutex
	regions []bool
	maxRegs int

	closed atomic.Bool
	wg     sync.WaitGroup

	sendFrames     atomic.Int64
	sendBytes      atomic.Int64
	polls          atomic.Int64
	pollHits       atomic.Int64
	batchPolls     atomic.Int64
	sendRetries    atomic.Int64
	framesRecycled atomic.Int64
	retransmits    atomic.Int64
	dropped        atomic.Int64
	acksSent       atomic.Int64
	creditStalls   atomic.Int64
	sendBatches    atomic.Int64
	recvBatches    atomic.Int64
	gsoSends       atomic.Int64
	groCoalesced   atomic.Int64
	sockDrops      atomic.Int64
	piggyAcks      atomic.Int64
	delayedAcks    atomic.Int64
	sockErrors     atomic.Int64
	stallWarns     atomic.Int64

	// tr is the lifecycle tracer (nil = dark path); stallRTOs and
	// creditStallTO parameterize the stall detector, which runs on the
	// housekeeping tick regardless of tracing so the stalls_total counter
	// works with the tracer off.
	tr            *tracing.Tracer
	stallRTOs     int
	creditStallTO time.Duration
}

var _ fabric.Provider = (*Provider)(nil)
var _ fabric.Sharder = (*Provider)(nil)

// ringSet is the provider's delivery side: one ring per progress shard and
// the route that picks a completed message's ring. Immutable — ShardViews
// installs a replacement with one atomic pointer swap, so reader goroutines
// never observe a half-built slice. Every ring is sized size×credits, the
// same capacity the single ring had, so the credit-quota argument that the
// ring can never overflow holds per shard no matter how the route skews.
type ringSet struct {
	rings []*concurrent.MPMC[*fabric.Frame]
	route func(*fabric.Frame) int // nil: everything lands on rings[0]
}

// pick returns the ring an inbound frame belongs on, clamping a bad route
// result to shard 0 rather than dropping traffic.
func (rs *ringSet) pick(f *fabric.Frame) *concurrent.MPMC[*fabric.Frame] {
	if rs.route == nil || len(rs.rings) == 1 {
		return rs.rings[0]
	}
	i := rs.route(f)
	if i < 0 || i >= len(rs.rings) {
		i = 0
	}
	return rs.rings[i]
}

// deliver routes one completed message onto its owning shard's ring. False
// means that ring is full — with correct credit accounting this cannot
// happen, and both callers treat it as a protocol bug.
func (p *Provider) deliver(fr *fabric.Frame) bool {
	return p.rs.Load().pick(fr).Enqueue(fr)
}

// readerShard is one receive socket plus its vectored read driver. Shard 0
// wraps the provider's primary socket (which also transmits); extra shards
// are SO_REUSEPORT siblings. Only the shard's own reader goroutine touches
// ovfl; rx is read by telemetry.
type readerShard struct {
	idx  int
	conn net.PacketConn
	bio  atomic.Pointer[mmsgIO] // nil = portable ReadFrom path for this shard
	rx   atomic.Int64           // wire datagrams handled by this shard
	ovfl uint32                 // last seen SO_RXQ_OVFL cumulative drop count
}

// New builds a provider and starts its socket reader. The reader goroutine
// also runs the retransmit, delayed-ack and credit-refresh timers, so the
// provider makes reliability progress even when the upper layer's progress
// thread stalls.
func New(cfg Config) (*Provider, error) {
	explicitTxBatch := cfg.TxBatch > 0
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	p := &Provider{
		rank:          cfg.Rank,
		size:          len(cfg.Addrs),
		eagerLimit:    cfg.EagerLimit,
		chunk:         cfg.MTU - dataHdrLen,
		window:        uint32(cfg.Window),
		credits:       cfg.Credits,
		seedRTO:       cfg.RTO,
		minRTO:        cfg.MinRTO,
		maxRTO:        cfg.MaxRTO,
		drainTO:       cfg.DrainTimeout,
		txBatch:       cfg.TxBatch,
		ackEvery:      cfg.AckEvery,
		noPiggyback:   cfg.DisablePiggyback,
		fixedRTO:      cfg.FixedRTO,
		conn:          cfg.Conn,
		maxRegs:       cfg.MaxRegions,
		tr:            cfg.Tracer,
		stallRTOs:     cfg.StallRTOs,
		creditStallTO: cfg.CreditStallTimeout,
	}
	if p.tr == nil {
		p.tr = tracing.Default()
	}
	// The tick paces delayed acks and the retransmit scan. Half the RTO
	// floor keeps timer resolution ahead of the tightest timeout; the
	// clamp bounds idle wakeups.
	p.tick = cfg.MinRTO / 2
	if p.tick > 500*time.Microsecond {
		p.tick = 500 * time.Microsecond
	}
	if p.tick < 100*time.Microsecond {
		p.tick = 100 * time.Microsecond
	}
	p.readBufLen = cfg.MTU + 64
	if p.readBufLen < 2048 {
		p.readBufLen = 2048
	}
	p.epShards = cfg.EndpointShards
	p.rs.Store(&ringSet{rings: []*concurrent.MPMC[*fabric.Frame]{
		concurrent.NewMPMC[*fabric.Frame](p.size * p.credits),
	}})
	p.frames = concurrent.NewMPMC[*fabric.Frame](p.size * p.credits)
	p.txBufs.New = func() any { return make([]byte, cfg.MTU) }
	if cfg.Fault.enabled() {
		p.fault = newFaultInjector(cfg.Fault)
	}
	if p.conn == nil {
		// SO_REUSEPORT on the primary bind is what lets the reader shards
		// join the same address below; harmless when shards end up at 1.
		c, err := ListenReusePort("udp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("netfabric: bind rank %d: %w", cfg.Rank, err)
		}
		p.conn = c
	}
	// A deep socket buffer absorbs vectored bursts; errors are ignored
	// (the reliability layer tolerates a shallow buffer, just less well).
	if sb, ok := p.conn.(interface {
		SetReadBuffer(int) error
		SetWriteBuffer(int) error
	}); ok {
		sb.SetReadBuffer(cfg.SockBuf)
		sb.SetWriteBuffer(cfg.SockBuf)
	}
	p.peers = make([]net.Addr, p.size)
	p.flows = make([]*flow, p.size)
	for r, a := range cfg.Addrs {
		if r == p.rank {
			continue
		}
		addr, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			p.conn.Close()
			return nil, fmt.Errorf("netfabric: rank %d address %q: %w", r, a, err)
		}
		p.peers[r] = addr
		p.flows[r] = newFlow(r, p.credits, p.seedRTO)
	}
	if !cfg.DisableBatchIO {
		p.bio.Store(newBatchIO(p.conn, p.peers))
	}

	// ---- segmentation-offload tier + receive shards (DESIGN.md §13) ----
	// Every step degrades silently: an old kernel, an exotic socket or a
	// primary bound without SO_REUSEPORT leaves the provider on the plain
	// batch-I/O path with a single reader, behaviorally identical.
	offload := offloadAvailable && !cfg.DisableGSO && p.bio.Load() != nil
	if offload && probeGSO(p.conn) {
		p.gsoOn.Store(true)
		if !explicitTxBatch {
			// With segmentation offload, the inline-flush threshold rises to
			// one full train so a fragment run reaches the kernel as a single
			// entry instead of several partial trains. Latency is unaffected:
			// any live poller still flushes whatever is pending (see Poll).
			if t := maxGSOBytes / cfg.MTU; t > p.txBatch {
				p.txBatch = t
			}
		}
	}
	s0 := &readerShard{idx: 0, conn: p.conn}
	if m := p.bio.Load(); m != nil {
		s0.bio.Store(m)
	}
	p.shards = append(p.shards, s0)
	for len(p.shards) < cfg.ReaderShards {
		c, err := ListenReusePort("udp", p.conn.LocalAddr().String())
		if err != nil {
			break // reuseport group unavailable: stay with the shards we have
		}
		if sb, ok := c.(interface{ SetReadBuffer(int) error }); ok {
			sb.SetReadBuffer(cfg.SockBuf)
		}
		s := &readerShard{idx: len(p.shards), conn: c}
		if m := newReadIO(c); m != nil {
			s.bio.Store(m)
		}
		p.shards = append(p.shards, s)
	}
	if offload {
		// GRO super-datagrams are only splittable with the gso_size cmsg,
		// which the portable ReadFrom path cannot see — so coalescing is
		// all-or-nothing across shards with a working recvmmsg driver.
		p.gro = true
		for _, s := range p.shards {
			if s.bio.Load() == nil || !enableGRO(s.conn) {
				p.gro = false
				break
			}
		}
		if !p.gro {
			for _, s := range p.shards {
				disableGRO(s.conn)
			}
		}
	}
	for _, s := range p.shards {
		if enableRxqOvfl(s.conn) {
			p.rxq = true
		}
	}
	if p.gro && p.readBufLen < groBufLen {
		p.readBufLen = groBufLen // a coalesced read can be a full UDP payload
	}
	p.wg.Add(len(p.shards))
	for _, s := range p.shards {
		go p.reader(s)
	}
	return p, nil
}

// Addr returns the provider's bound socket address.
func (p *Provider) Addr() net.Addr { return p.conn.LocalAddr() }

// BatchIO reports whether the vectored sendmmsg/recvmmsg path is active.
func (p *Provider) BatchIO() bool { return p.bio.Load() != nil }

// GSO reports whether the UDP_SEGMENT send tier is currently active.
func (p *Provider) GSO() bool { return p.gsoOn.Load() }

// GRO reports whether the receive sockets negotiated UDP_GRO coalescing.
func (p *Provider) GRO() bool { return p.gro }

// ReaderShards returns the number of live receive shards (≥ 1).
func (p *Provider) ReaderShards() int { return len(p.shards) }

// ShardRx returns the wire datagrams handled by each receive shard.
func (p *Provider) ShardRx() []int64 {
	out := make([]int64, len(p.shards))
	for i, s := range p.shards {
		out[i] = s.rx.Load()
	}
	return out
}

// Capabilities summarizes the kernel fast-path tiers this endpoint
// negotiated, for launcher/CI logs.
func (p *Provider) Capabilities() string {
	return fmt.Sprintf("batchio=%v gso=%v gro=%v rxq_ovfl=%v shards=%d epshards=%d",
		p.BatchIO(), p.gsoOn.Load(), p.gro, p.rxq, len(p.shards), p.epShards)
}

// EndpointShards returns the configured progress-shard count (≥ 1).
func (p *Provider) EndpointShards() int { return p.epShards }

// Close drains in-flight packets, then stops the reader and closes the
// socket. The upper layers must be stopped first (a Send on a closed
// provider is a hard error).
//
// The drain is what makes teardown safe on a lossy wire: a rank that
// completes the job's final collective may reach Close within microseconds,
// long before the first RTO, so without it a dropped last datagram would
// never be retransmitted and the peer would block forever waiting for this
// rank's contribution. Close therefore keeps the socket and the reader's
// retransmit/ack machinery alive until every flow's unacked window is
// empty, bounded by DrainTimeout (a vanished peer must not wedge teardown).
func (p *Provider) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	if !p.drain() {
		// Unacked packets survived the drain window: a peer died or the
		// link is black-holing. Preserve the evidence before tearing down.
		p.tr.DumpNow(fmt.Sprintf("rank %d close: drain timed out with unacked packets", p.rank))
	}
	// Shard 0's conn is the primary socket; closing each conn unblocks its
	// reader, which exits on the resulting non-timeout error.
	var err error
	for _, s := range p.shards {
		if e := s.conn.Close(); e != nil && err == nil {
			err = e
		}
	}
	p.wg.Wait()
	return err
}

// drain blocks until no flow holds an unacked packet or the drain timeout
// expires, reporting whether every flow fully drained. Pending packets are
// pushed to the wire first; the reader goroutine is still running (the
// socket is open), so retransmit timers, incoming acks and outgoing
// ack/credit refreshes all keep making progress while we wait.
func (p *Provider) drain() bool {
	p.flushPending()
	deadline := time.Now().Add(p.drainTO)
	for {
		// Push any delayed acks out before (possibly) closing the socket: a
		// rank with nothing unacked itself would otherwise exit with the
		// peer's last packet unackable, forcing the peer to drain-timeout.
		p.flushAcks()
		pending := false
		for _, fl := range p.flows {
			if fl == nil {
				continue
			}
			fl.mu.Lock()
			n := fl.unacked.len()
			fl.mu.Unlock()
			if n > 0 {
				pending = true
				break
			}
		}
		if !pending {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// ---- fabric.Provider identity ----

// Rank returns this endpoint's rank.
func (p *Provider) Rank() int { return p.rank }

// Size returns the number of ranks.
func (p *Provider) Size() int { return p.size }

// EagerLimit returns the maximum payload of one Send.
func (p *Provider) EagerLimit() int { return p.eagerLimit }

// HasRDMA reports false: UDP has no remote-write verb, so upper layers take
// the fragmented-send rendezvous fallback.
func (p *Provider) HasRDMA() bool { return false }

// ---- frame pool ----

func (p *Provider) getFrame() *fabric.Frame {
	fr, ok := p.frames.Dequeue()
	if !ok {
		fr = fabric.NewProviderFrame(make([]byte, p.eagerLimit), p.recycleFrame)
	}
	fr.Acquire()
	return fr
}

// recycleFrame is the Release hook of every frame this provider mints: it
// returns the frame to the free-list and credits the consumed message back
// to its flow, scheduling a credit re-advertisement to un-stall the sender.
func (p *Provider) recycleFrame(f *fabric.Frame) {
	src := f.Src
	f.Data = nil
	f.Header = 0
	f.Meta = 0
	p.framesRecycled.Add(1)
	if src == p.rank {
		p.selfConsumed.Add(1)
	} else if src >= 0 && src < p.size && p.flows[src] != nil {
		fl := p.flows[src]
		fl.consumed.Add(1)
		p.markAckDue(fl)
	}
	p.frames.Enqueue(f) // full free-list drops to the GC, pool stays a cache
}

// markAckDue flags fl for an ack/credit update, maintaining the dirty-flow
// count so housekeeping skips clean flows entirely.
func (p *Provider) markAckDue(fl *flow) {
	if !fl.ackDue.Swap(true) {
		p.ackDueFlows.Add(1)
	}
}

// ---- send path ----

// errClosed is returned for operations on a closed provider.
var errClosed = errors.New("netfabric: provider closed")

// Send injects an eager message to dst, fragmenting to the MTU. It fails
// with fabric.ErrResource when dst has advertised no remaining credit or
// the retransmit window is full — retriable back-pressure, exactly like the
// simulator's full receive ring.
//
// Packets do not necessarily hit the wire before Send returns: they queue
// on the destination flow and flush as one vectored burst when the pending
// count reaches TxBatch, on the next Poll/PollBatch (the progress loop), or
// at the latest on the housekeeping tick.
func (p *Provider) Send(dst int, header, meta uint64, data []byte) error {
	if p.closed.Load() {
		return errClosed
	}
	if len(data) > p.eagerLimit {
		return fmt.Errorf("netfabric: send of %d bytes exceeds eager limit %d", len(data), p.eagerLimit)
	}
	if dst < 0 || dst >= p.size {
		return fmt.Errorf("netfabric: bad destination rank %d", dst)
	}
	if dst == p.rank {
		return p.sendSelf(header, meta, data)
	}
	fl := p.flows[dst]
	nfrags := 1
	if len(data) > p.chunk {
		nfrags = (len(data) + p.chunk - 1) / p.chunk
	}

	fl.mu.Lock()
	if fl.msgsSent >= fl.creditLimit {
		episodeStart := fl.creditStallSince.IsZero()
		if episodeStart {
			fl.creditStallSince = time.Now()
		}
		fl.mu.Unlock()
		p.creditStalls.Add(1)
		p.sendRetries.Add(1)
		if episodeStart {
			p.tr.Record(tracing.EvCreditStall, dst, tracing.ProtoNone, len(data), 0)
		}
		return fabric.ErrResource
	}
	if fl.inFlight()+uint32(nfrags) > p.window {
		fl.mu.Unlock()
		p.sendRetries.Add(1)
		return fabric.ErrResource
	}
	off := 0
	for i := 0; i < nfrags; i++ {
		end := off + p.chunk
		if end > len(data) {
			end = len(data)
		}
		buf := p.txBufs.Get().([]byte)
		n := encodeData(buf, p.rank, fl.nextSeq, uint32(off), uint32(len(data)), header, meta, data[off:end])
		fl.unacked.push(&txPacket{seq: fl.nextSeq, data: buf[:n]})
		fl.nextSeq++
		off = end
	}
	fl.msgsSent++
	fl.creditStallSince = time.Time{} // credit available again: episode over
	fl.creditStallWarned = false
	if fl.unsent == 0 {
		p.txPendFlows.Add(1)
	}
	fl.unsent += nfrags
	fl.pendTx.Store(int32(fl.unsent))
	if fl.unsent >= p.txBatch {
		p.flushFlowLocked(fl, time.Now())
	}
	fl.mu.Unlock()
	p.sendFrames.Add(1)
	p.sendBytes.Add(int64(len(data)))
	return nil
}

// sendSelf delivers a message to this rank's own ring without touching the
// wire, under the same credit quota as one remote peer.
func (p *Provider) sendSelf(header, meta uint64, data []byte) error {
	// Reserve before building so concurrent self-senders cannot overshoot
	// the quota the ring capacity was sized for.
	if p.selfDelivered.Add(1)-p.selfConsumed.Load() > int64(p.credits) {
		p.selfDelivered.Add(-1)
		p.sendRetries.Add(1)
		return fabric.ErrResource
	}
	fr := p.getFrame()
	fr.Kind = fabric.KindSend
	fr.Src = p.rank
	fr.Header = header
	fr.Meta = meta
	if len(data) > 0 {
		fr.Data = fr.Buffer()[:len(data)]
		copy(fr.Data, data)
	} else {
		fr.Data = nil
	}
	if !p.deliver(fr) {
		// Capacity is sized for the worst case; reaching here is a bug.
		panic("netfabric: delivery ring overflow on self-send")
	}
	p.sendFrames.Add(1)
	p.sendBytes.Add(int64(len(data)))
	return nil
}

// stampOutgoing refreshes a DATA packet's piggybacked ack/credit for fl's
// reverse direction immediately before it hits the wire (first transmission
// or retransmit), and retires any scheduled standalone ack for the flow —
// this packet carries the same information for free.
func (p *Provider) stampOutgoing(fl *flow, pkt []byte) {
	if p.noPiggyback {
		return
	}
	stampAck(pkt, fl.recvNext.Load(), fl.consumed.Load()+uint64(p.credits))
	fl.recvSinceAck.Store(0)
	if fl.ackDue.Swap(false) {
		p.ackDueFlows.Add(-1)
	}
	p.piggyAcks.Add(1)
}

// flushFlowLocked pushes fl's pending packets to the wire as one vectored
// burst, stamping each with the freshest piggybacked ack. fl.mu held.
func (p *Provider) flushFlowLocked(fl *flow, now time.Time) {
	if fl.unsent == 0 {
		return
	}
	burst := fl.scratch[:0]
	for i := fl.unacked.len() - fl.unsent; i < fl.unacked.len(); i++ {
		tx := fl.unacked.at(i)
		p.stampOutgoing(fl, tx.data)
		tx.lastTx = now
		burst = append(burst, tx.data)
	}
	fl.unsent = 0
	fl.pendTx.Store(0)
	p.txPendFlows.Add(-1)
	p.xmitBatch(fl.peer, burst)
	fl.scratch = burst[:0]
}

// flushPending flushes every flow holding pending packets. O(1) when no
// flow is dirty; called from the progress path (Poll/PollBatch), the
// housekeeping tick and Close.
func (p *Provider) flushPending() { p.flushFlows(p.flows) }

// flushFlows is flushPending over an arbitrary flow subset: shard views
// pass only the flows their shard owns, so K concurrent progress loops do
// not contend on each other's flow locks.
func (p *Provider) flushFlows(flows []*flow) {
	if p.txPendFlows.Load() == 0 {
		return
	}
	now := time.Now()
	for _, fl := range flows {
		if fl == nil || fl.pendTx.Load() == 0 {
			continue
		}
		fl.mu.Lock()
		p.flushFlowLocked(fl, now)
		fl.mu.Unlock()
	}
}

// xmitBatch writes a burst of datagrams to peer rank dst, applying fault
// injection per datagram. Callers may hold a flow lock; the burst lock is
// strictly inner.
func (p *Provider) xmitBatch(dst int, pkts [][]byte) {
	if len(pkts) == 0 {
		return
	}
	p.xmitMu.Lock()
	wire := p.wireScratch[:0]
	dsts := p.dstScratch[:0]
	if p.fault == nil {
		for _, pk := range pkts {
			wire = append(wire, pk)
			dsts = append(dsts, dst)
		}
	} else {
		for _, pk := range pkts {
			switch p.fault.decide() {
			case faultDrop:
				p.dropped.Add(1)
			case faultDup:
				wire = append(wire, pk, pk)
				dsts = append(dsts, dst, dst)
			case faultHold:
				if prev, prevDst := p.fault.hold(pk, dst); prev != nil {
					wire = append(wire, prev)
					dsts = append(dsts, prevDst)
				}
			default:
				wire = append(wire, pk)
				dsts = append(dsts, dst)
				if held, heldDst := p.fault.take(); held != nil {
					wire = append(wire, held)
					dsts = append(dsts, heldDst)
				}
			}
		}
	}
	p.writeWire(wire, dsts)
	p.wireScratch = wire[:0]
	p.dstScratch = dsts[:0]
	p.xmitMu.Unlock()
}

// writeWire moves datagrams to the kernel. With the GSO tier up, the burst
// is first collapsed into segment trains — one sendmmsg entry per run of
// same-destination datagrams, split back into wire datagrams by the kernel —
// then falls through tier by tier: plain sendmmsg when vectored I/O is up,
// one WriteTo each at the bottom. A failure other than back-pressure retires
// the failing tier permanently and re-sends the burst one tier down
// (duplicates are harmless; the window dedups).
func (p *Provider) writeWire(pkts [][]byte, dsts []int) {
	if len(pkts) == 0 {
		return
	}
	if m := p.bio.Load(); m != nil {
		if p.gsoOn.Load() && len(pkts) > 1 {
			trains := planTrains(p.trainScratch[:0], pkts, dsts)
			p.trainScratch = trains[:0] // keep grown capacity
			if len(trains) < len(pkts) { // at least one multi-segment train
				if err := m.writeTrains(trains); err == nil {
					p.sendBatches.Add(1)
					for _, tr := range trains {
						if tr.n > 1 {
							p.gsoSends.Add(1)
						}
					}
					return
				}
				p.gsoOn.Store(false) // kernel rejected a train: retire the tier
			}
		}
		if err := m.writeBatch(pkts, dsts); err == nil {
			if len(pkts) > 1 {
				p.sendBatches.Add(1)
			}
			return
		}
		p.bio.Store(nil)
	}
	for i, pk := range pkts {
		p.conn.WriteTo(pk, p.peers[dsts[i]])
	}
}

// ---- RDMA verbs (absent on UDP) ----

// RegisterRegion keeps a local region table for API parity; the transport
// cannot serve remote writes into it.
func (p *Provider) RegisterRegion(buf []byte) (uint32, error) {
	p.regMu.Lock()
	defer p.regMu.Unlock()
	for i, used := range p.regions {
		if !used {
			p.regions[i] = true
			return uint32(i), nil
		}
	}
	if len(p.regions) >= p.maxRegs {
		return 0, errors.New("netfabric: region table full")
	}
	p.regions = append(p.regions, true)
	return uint32(len(p.regions) - 1), nil
}

// DeregisterRegion releases an rkey.
func (p *Provider) DeregisterRegion(rkey uint32) {
	p.regMu.Lock()
	defer p.regMu.Unlock()
	if int(rkey) < len(p.regions) {
		p.regions[rkey] = false
	}
}

// Put fails with fabric.ErrNoRDMA: callers fall back to fragmented sends.
func (p *Provider) Put(int, uint32, int, []byte, uint64) error {
	return fabric.ErrNoRDMA
}

// ---- receive path ----

// Poll removes and returns one incoming frame, or nil. As the progress
// loop's heartbeat it also flushes any pending transmit bursts, so queued
// packets never wait for the housekeeping tick while a poller is live.
func (p *Provider) Poll() *fabric.Frame {
	p.flushPending()
	p.polls.Add(1)
	f, ok := p.rs.Load().rings[0].Dequeue()
	if !ok {
		return nil
	}
	p.pollHits.Add(1)
	return f
}

// PollBatch drains up to len(dst) incoming frames in one ring pass, flushing
// pending transmit bursts first (see Poll).
func (p *Provider) PollBatch(dst []*fabric.Frame) int {
	p.flushPending()
	p.polls.Add(1)
	n := p.rs.Load().rings[0].DequeueBatch(dst)
	if n > 0 {
		p.pollHits.Add(int64(n))
		p.batchPolls.Add(1)
	}
	return n
}

// Pending returns a racy estimate of queued incoming frames, summed across
// every shard ring.
func (p *Provider) Pending() int {
	n := 0
	for _, r := range p.rs.Load().rings {
		n += r.Len()
	}
	return n
}

// ShardViews implements fabric.Sharder: it splits the delivery side into k
// rings selected by route.Frame and returns k Provider views, one per
// progress shard. View 0 keeps the original ring (frames delivered before
// the split surface there); the wire, the flows, and the reliability
// machinery stay rank-global. When route.Peer is set, each view's poll-path
// transmit flush only touches the flows its shard owns, so concurrent
// progress loops never contend on a flow lock; without it (tag sharding)
// every view flushes every flow — the flow locks keep that correct, and
// the housekeeping tick backstops latency either way.
func (p *Provider) ShardViews(k int, route fabric.ShardRoute) []fabric.Provider {
	if k < 1 {
		panic("netfabric: ShardViews needs k >= 1")
	}
	old := p.rs.Load()
	rings := make([]*concurrent.MPMC[*fabric.Frame], k)
	rings[0] = old.rings[0]
	for i := 1; i < k; i++ {
		rings[i] = concurrent.NewMPMC[*fabric.Frame](p.size * p.credits)
	}
	var route0 func(*fabric.Frame) int
	if k > 1 {
		route0 = route.Frame
	}
	p.rs.Store(&ringSet{rings: rings, route: route0})
	views := make([]fabric.Provider, k)
	for i := range views {
		v := &shardView{Provider: p, ring: rings[i], flows: p.flows}
		if route.Peer != nil && k > 1 {
			owned := make([]*flow, 0, (p.size+k-1)/k)
			for r, fl := range p.flows {
				if fl != nil && route.Peer(r) == i {
					owned = append(owned, fl)
				}
			}
			v.flows = owned
		}
		views[i] = v
	}
	return views
}

// shardView is one progress shard's window onto the provider: it polls only
// its own delivery ring, flushes only its own flows' pending transmits, and
// delegates everything else (sends, regions, stats, teardown) to the base
// provider.
type shardView struct {
	*Provider
	ring  *concurrent.MPMC[*fabric.Frame]
	flows []*flow // flows whose poll-path flush this shard owns
}

func (v *shardView) Poll() *fabric.Frame {
	v.flushFlows(v.flows)
	v.polls.Add(1)
	f, ok := v.ring.Dequeue()
	if !ok {
		return nil
	}
	v.pollHits.Add(1)
	return f
}

func (v *shardView) PollBatch(dst []*fabric.Frame) int {
	v.flushFlows(v.flows)
	v.polls.Add(1)
	n := v.ring.DequeueBatch(dst)
	if n > 0 {
		v.pollHits.Add(int64(n))
		v.batchPolls.Add(1)
	}
	return n
}

func (v *shardView) Pending() int { return v.ring.Len() }

var _ fabric.Provider = (*shardView)(nil)

// reader drains one receive shard in vectored bursts and runs the
// reliability protocol on what arrives. Shard 0 (the primary socket) also
// owns the timers: on its read-deadline tick it flushes pending transmits,
// retransmits timed-out packets, sends delayed acks and re-advertises
// credits. Extra shards only read — their deadline is just a liveness bound.
func (p *Provider) reader(s *readerShard) {
	defer p.wg.Done()
	bufs := make([][]byte, readBatchLen)
	for i := range bufs {
		bufs[i] = make([]byte, p.readBufLen)
	}
	sizes := make([]int, readBatchLen)
	cms := make([]rxCmsg, readBatchLen)
	if m := s.bio.Load(); m != nil {
		m.bindRead(bufs)
	}
	housekeeper := s.idx == 0
	tick := p.tick
	if !housekeeper {
		tick = 50 * time.Millisecond
	}
	lastKeep := time.Now()
	for {
		s.conn.SetReadDeadline(time.Now().Add(tick))
		n, err := p.readShard(s, bufs, sizes, cms)
		if err != nil {
			// Timeouts are the housekeeping tick and must keep firing while
			// Close drains unacked packets (closed is already set then), so
			// only a non-timeout error on a closed provider ends the loop.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if housekeeper {
					p.housekeep()
					lastKeep = time.Now()
				}
				continue
			}
			if p.closed.Load() {
				return
			}
			// Transient socket error (e.g. ICMP bounce): keep serving, but
			// never spin on a persistently failing socket — and count it,
			// so a misbehaving wire is visible in NetStats instead of
			// silently eating reader throughput.
			p.sockErrors.Add(1)
			time.Sleep(100 * time.Microsecond)
			continue
		}
		for i := 0; i < n; i++ {
			b := bufs[i][:sizes[i]]
			if cms[i].hasOvfl {
				p.noteOvfl(s, cms[i].ovfl)
			}
			if seg := cms[i].seg; seg > 0 && seg < len(b) {
				// A GRO super-datagram: consecutive wire datagrams of seg
				// bytes each (last possibly shorter), re-split here.
				p.groCoalesced.Add(1)
				for off := 0; off < len(b); off += seg {
					end := min(off+seg, len(b))
					p.handleDatagram(b[off:end])
					s.rx.Add(1)
				}
			} else {
				p.handleDatagram(b)
				s.rx.Add(1)
			}
		}
		if housekeeper && time.Since(lastKeep) >= tick {
			p.housekeep()
			lastKeep = time.Now()
		}
	}
}

// readShard pulls a burst of datagrams off one shard socket (recvmmsg when
// available, one ReadFrom otherwise), honoring the read deadline either way.
// A kernel refusal downgrades only this shard — turning its GRO off first,
// since the portable read path cannot see the gso_size cmsg needed to
// re-split coalesced buffers.
func (p *Provider) readShard(s *readerShard, bufs [][]byte, sizes []int, cms []rxCmsg) (int, error) {
	if m := s.bio.Load(); m != nil {
		n, err := m.readBatch(sizes, cms)
		if err != errBatchUnsupported {
			if n > 1 {
				p.recvBatches.Add(1)
			}
			return n, err
		}
		disableGRO(s.conn)
		s.bio.Store(nil)
	}
	n, _, err := s.conn.ReadFrom(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	cms[0] = rxCmsg{}
	return 1, nil
}

// noteOvfl folds one SO_RXQ_OVFL cumulative drop count into sockDrops. The
// kernel counter is per-socket and monotonic mod 2^32; the unsigned delta
// handles wrap. Only s's reader goroutine touches s.ovfl.
func (p *Provider) noteOvfl(s *readerShard, cum uint32) {
	if d := cum - s.ovfl; d > 0 {
		s.ovfl = cum
		p.sockDrops.Add(int64(d))
	}
}

func (p *Provider) handleDatagram(b []byte) {
	if len(b) < 4 || b[0] != magicByte || b[1] != wireVersion {
		p.dropped.Add(1)
		return
	}
	switch b[2] {
	case pktData:
		d, ok := decodeData(b)
		if !ok || d.src < 0 || d.src >= p.size || d.src == p.rank ||
			int(d.msgLen) > p.eagerLimit {
			p.dropped.Add(1)
			return
		}
		fl := p.flows[d.src]
		// rmu serializes the flow's receive state (reassembly, reorder
		// buffer, piggyback dedup): the kernel pins a reuseport flow to one
		// shard, but a rebalance may hand it to another mid-stream.
		// Uncontended in steady state, so effectively free at shards=1.
		fl.rmu.Lock()
		// Piggybacked ack/credit for our reverse direction rides on every
		// data packet; skip the send-side lock when nothing changed.
		if d.hasAck && (d.pgAck != fl.lastPgAck || d.pgCredit != fl.lastPgCr) {
			fl.lastPgAck, fl.lastPgCr = d.pgAck, d.pgCredit
			p.onAck(fl, d.pgAck, d.pgCredit)
		}
		p.onData(fl, &d)
		fl.rmu.Unlock()
	case pktAck:
		src, cum, credit, ok := decodeAck(b)
		if !ok || src < 0 || src >= p.size || src == p.rank {
			p.dropped.Add(1)
			return
		}
		p.onAck(p.flows[src], cum, credit)
	default:
		p.dropped.Add(1)
	}
}

// onData runs the receive side of the sliding window: in-order packets are
// applied immediately (with any unblocked early arrivals), early packets
// are buffered, stale ones dropped. Every data arrival schedules an ack —
// piggybacked on reverse traffic when there is any, standalone immediately
// after ackEvery receives, or on the delayed-ack tick otherwise.
func (p *Provider) onData(fl *flow, d *dataPkt) {
	delta := d.seq - fl.recvNext.Load() // serial arithmetic: wrap-safe
	switch {
	case int32(delta) < 0: // stale duplicate: re-ack so the sender advances
		p.dropped.Add(1)
		p.markAckDue(fl)
		return
	case delta > 0: // early: buffer within the window
		if _, dup := fl.ooo[d.seq]; dup || delta > p.window {
			p.dropped.Add(1)
		} else {
			fl.ooo[d.seq] = d.clone()
		}
		p.markAckDue(fl)
		return
	}
	p.apply(fl, d)
	applied := int32(1)
	fl.recvNext.Add(1)
	for {
		nd, ok := fl.ooo[fl.recvNext.Load()]
		if !ok {
			break
		}
		delete(fl.ooo, fl.recvNext.Load())
		p.apply(fl, nd)
		applied++
		fl.recvNext.Add(1)
	}
	// One-way traffic cannot piggyback, so bound the sender's ack latency:
	// a standalone ack after every ackEvery packets, the delayed tick for
	// the tail. Flows with reverse data pending skip the standalone — the
	// next flush carries the ack for free.
	if n := fl.recvSinceAck.Add(applied); int(n) >= p.ackEvery && fl.pendTx.Load() == 0 {
		p.sendAckNow(fl, false)
	} else {
		p.markAckDue(fl)
	}
}

// apply reassembles one in-order fragment; a completed message becomes a
// pooled frame on the delivery ring. Ring capacity is guaranteed by the
// credit quota (delivered − consumed ≤ credits per flow).
func (p *Provider) apply(fl *flow, d *dataPkt) {
	if d.fragOff == 0 {
		fr := p.getFrame()
		fr.Kind = fabric.KindSend
		fr.Src = fl.peer
		fr.Header = d.header
		fr.Meta = d.meta
		if d.msgLen > 0 {
			fr.Data = fr.Buffer()[:d.msgLen]
		} else {
			fr.Data = nil
		}
		fl.asm = fr
		fl.asmLen = int(d.msgLen)
		fl.asmGot = 0
	}
	if fl.asm == nil {
		p.dropped.Add(1) // mid-message fragment with no head: protocol bug guard
		return
	}
	// decodeData only checked the packet against its *own* msgLen field; the
	// assembly buffer was sized by the head fragment's. A corrupted or
	// spoofed in-window datagram disagreeing with the head must be dropped,
	// not allowed to index past the buffer.
	if int(d.msgLen) != fl.asmLen || int(d.fragOff)+len(d.chunk) > len(fl.asm.Data) {
		p.dropped.Add(1)
		return
	}
	copy(fl.asm.Data[d.fragOff:], d.chunk)
	fl.asmGot += len(d.chunk)
	if fl.asmGot >= fl.asmLen {
		if !p.deliver(fl.asm) {
			panic("netfabric: delivery ring overflow (credit accounting bug)")
		}
		fl.asm = nil
		fl.delivered++
	}
}

// onAck runs the send side: retire acked packets in order from the ring
// head, slide the window, feed the RTT estimator (Karn's rule: only packets
// never retransmitted yield samples), and raise the credit limit
// (monotonic, so reordered acks are harmless).
func (p *Provider) onAck(fl *flow, cum uint32, credit uint64) {
	now := time.Now()
	fl.mu.Lock()
	// Unsigned delta rejects stale (cum behind base) and corrupt (beyond
	// what was actually sent) cumulative acks in one comparison. Pending
	// never-transmitted packets cannot have been acked.
	sent := uint32(fl.unacked.len() - fl.unsent)
	var retired uint32
	if delta := cum - fl.baseSeq; delta > 0 && delta <= sent {
		sample := time.Duration(-1)
		for i := uint32(0); i < delta; i++ {
			tx := fl.unacked.popFront()
			if tx.attempts == 0 {
				sample = now.Sub(tx.lastTx) // newest clean sample wins
			}
			p.txBufs.Put(tx.data[:cap(tx.data)])
			tx.data = nil
		}
		fl.baseSeq = cum
		retired = delta
		fl.ackStallWarned = false // the window moved: ack-stall episode over
		if sample >= 0 && !p.fixedRTO {
			fl.observeRTT(sample, p.minRTO, p.maxRTO)
		}
	}
	if credit > fl.creditLimit {
		fl.creditLimit = credit
		fl.creditStallSince = time.Time{} // peer granted credit: episode over
		fl.creditStallWarned = false
	}
	fl.mu.Unlock()
	if retired > 0 {
		p.tr.RecordArg(tracing.EvAckRx, fl.peer, tracing.ProtoNone, 0, retired, 0)
	}
}

// housekeep runs on the reader's tick (and between read bursts under load):
// flush pending transmits, retransmit timed-out packets (bounded burst,
// exponential backoff), release any reorder-held datagram, and send delayed
// acks. All-flow scans are skipped outright while the dirty counters say
// there is nothing to do.
func (p *Provider) housekeep() {
	p.flushPending()
	now := time.Now()
	budget := 64
	for _, fl := range p.flows {
		if budget == 0 {
			break
		}
		if fl == nil {
			continue
		}
		fl.mu.Lock()
		sent := fl.unacked.len() - fl.unsent
		burst := fl.scratch[:0]
		for i := 0; i < sent && budget > 0; i++ {
			tx := fl.unacked.at(i)
			// Seq order is transmission order for first sends, so the scan
			// stops at the first packet whose timer has not expired —
			// O(due packets), not O(window). A just-retransmitted head can
			// shadow a due successor for at most one backoff interval.
			if now.Sub(tx.lastTx) < fl.timeoutFor(tx, p.maxRTO) {
				break
			}
			if tx.attempts < 16 {
				tx.attempts++
			}
			tx.lastTx = now
			p.stampOutgoing(fl, tx.data)
			burst = append(burst, tx.data)
			p.retransmits.Add(1)
			p.tr.RecordArg(tracing.EvRetransmit, fl.peer, tracing.ProtoNone, len(tx.data), uint32(tx.attempts), 0)
			budget--
		}
		if len(burst) > 0 {
			p.xmitBatch(fl.peer, burst)
		}
		fl.scratch = burst[:0]

		// Stall detector. Ack stall: the oldest unacked packet has burned
		// stallRTOs retransmissions with no cumulative-ack movement (onAck
		// resets the latch when the window advances). Credit stall: sends
		// have sat at the credit wall past the timeout without the peer
		// raising its limit. Each warns once per episode. Suppressed once
		// Close begins: peers exit asynchronously, so the final ack of a
		// clean shutdown routinely goes unanswered — the drain-timeout dump
		// in Close covers the genuinely wedged case.
		closing := p.closed.Load()
		var ackStalled, creditStalled bool
		var attempts int
		if n := fl.unacked.len() - fl.unsent; n > 0 && !fl.ackStallWarned && !closing {
			if head := fl.unacked.at(0); head.attempts >= p.stallRTOs {
				fl.ackStallWarned = true
				ackStalled, attempts = true, head.attempts
			}
		}
		if !closing && !fl.creditStallWarned && !fl.creditStallSince.IsZero() &&
			fl.msgsSent >= fl.creditLimit && now.Sub(fl.creditStallSince) >= p.creditStallTO {
			fl.creditStallWarned = true
			creditStalled = true
		}
		fl.mu.Unlock()
		if ackStalled {
			p.warnStall(fl, stallAck, fmt.Sprintf("no ack progress after %d retransmits", attempts))
		}
		if creditStalled {
			p.warnStall(fl, stallCredit, fmt.Sprintf("zero send credit for %v", p.creditStallTO))
		}
	}
	// A reorder-held datagram must not outlive the hold window when traffic
	// goes quiet.
	if p.fault != nil {
		if held, dst := p.fault.take(); held != nil {
			p.xmitMu.Lock()
			p.writeWire([][]byte{held}, []int{dst})
			p.xmitMu.Unlock()
		}
	}
	p.flushAcks()
}

// sendAckNow emits one standalone ack/credit datagram for fl and clears its
// ack-due state. Safe from any goroutine (all inputs are atomics).
func (p *Provider) sendAckNow(fl *flow, delayed bool) {
	var buf [ackPktLen]byte
	n := encodeAck(buf[:], p.rank, fl.recvNext.Load(), fl.consumed.Load()+uint64(p.credits))
	fl.recvSinceAck.Store(0)
	if fl.ackDue.Swap(false) {
		p.ackDueFlows.Add(-1)
	}
	p.xmitBatch(fl.peer, [][]byte{buf[:n]})
	p.acksSent.Add(1)
	p.tr.Record(tracing.EvAckTx, fl.peer, tracing.ProtoNone, 0, 0)
	if delayed {
		p.delayedAcks.Add(1)
	}
}

// Stall kinds carried in EvStallWarn's arg field.
const (
	stallAck    = 1 // no ack progress for StallRTOs retransmissions
	stallCredit = 2 // zero send credit beyond CreditStallTimeout
)

// warnStall emits one structured stall warning for fl: it bumps the
// stalls_total counter unconditionally and, under tracing, records an
// EvStallWarn event and dumps the flight recorder so the events leading up
// to the stall are preserved.
func (p *Provider) warnStall(fl *flow, kind uint32, detail string) {
	p.stallWarns.Add(1)
	p.tr.RecordArg(tracing.EvStallWarn, fl.peer, tracing.ProtoNone, 0, kind, 0)
	p.tr.DumpNow(fmt.Sprintf("rank %d stall: %s (peer %d)", p.rank, detail, fl.peer))
}

// flushAcks sends one standalone ack/credit datagram to every peer still
// flagged ackDue — the delayed-ack path for one-way flows and pure credit
// refreshes. O(1) while no flow is dirty.
func (p *Provider) flushAcks() {
	if p.ackDueFlows.Load() == 0 {
		return
	}
	for _, fl := range p.flows {
		if fl == nil || !fl.ackDue.Load() {
			continue
		}
		p.sendAckNow(fl, true)
	}
}

// Stats returns a snapshot of the provider's counters in the fabric's
// schema, transport counters included.
func (p *Provider) Stats() fabric.Stats {
	var rtt time.Duration
	for _, fl := range p.flows {
		if fl == nil {
			continue
		}
		fl.mu.Lock()
		if fl.srtt > rtt {
			rtt = fl.srtt
		}
		fl.mu.Unlock()
	}
	return fabric.Stats{
		SendFrames:     p.sendFrames.Load(),
		SendBytes:      p.sendBytes.Load(),
		Polls:          p.polls.Load(),
		PollHits:       p.pollHits.Load(),
		SendRetries:    p.sendRetries.Load(),
		FramesRecycled: p.framesRecycled.Load(),
		BatchPolls:     p.batchPolls.Load(),
		Retransmits:    p.retransmits.Load(),
		PacketsDropped: p.dropped.Load(),
		AcksSent:       p.acksSent.Load(),
		CreditStalls:   p.creditStalls.Load(),
		SendBatches:    p.sendBatches.Load(),
		RecvBatches:    p.recvBatches.Load(),
		GSOSends:       p.gsoSends.Load(),
		GROCoalesced:   p.groCoalesced.Load(),
		SockDrops:      p.sockDrops.Load(),
		PiggybackAcks:  p.piggyAcks.Load(),
		DelayedAcks:    p.delayedAcks.Load(),
		SockErrors:     p.sockErrors.Load(),
		RTTNanos:       rtt.Nanoseconds(),
	}
}

// ---- environment wiring (SPMD launcher) ----

// Env variable names used between cmd/lci-launch and worker processes.
const (
	EnvRank  = "LCI_RANK"
	EnvSize  = "LCI_SIZE"
	EnvAddrs = "LCI_ADDRS"
	EnvFD    = "LCI_FD" // inherited pre-bound UDP socket file descriptor
	EnvLoss  = "LCI_LOSS"
	EnvDup   = "LCI_DUP"
	EnvReord = "LCI_REORDER"
	EnvSeed  = "LCI_FAULT_SEED"

	// Hot-path ablation knobs, read by FromEnv so the launcher's
	// environment reaches every worker (CI runs the smoke job both ways).
	EnvNoBatchIO    = "LCI_NO_BATCH_IO"
	EnvNoPiggyback  = "LCI_NO_PIGGYBACK"
	EnvFixedRTO     = "LCI_FIXED_RTO"
	EnvNoGSO        = "LCI_NO_GSO"
	EnvReaderShards = "LCI_READER_SHARDS"

	// EnvEndpointShards is the upper-layer progress-shard count (internal/
	// core reads the same variable to size its shard set); the provider uses
	// it to align the reuseport reader group and report it in Capabilities.
	EnvEndpointShards = "LCI_ENDPOINT_SHARDS"
)

// InEnv reports whether the process was spawned by the SPMD launcher.
func InEnv() bool { return os.Getenv(EnvRank) != "" }

// FromEnv builds the provider for a launcher-spawned worker process: rank,
// peer addresses, the inherited socket, fault-injection rates and ablation
// knobs all come from the environment.
func FromEnv() (*Provider, error) {
	rank, err := strconv.Atoi(os.Getenv(EnvRank))
	if err != nil {
		return nil, fmt.Errorf("netfabric: bad %s: %w", EnvRank, err)
	}
	addrs := strings.Split(os.Getenv(EnvAddrs), ",")
	if sz := os.Getenv(EnvSize); sz != "" {
		n, err := strconv.Atoi(sz)
		if err != nil || n != len(addrs) {
			return nil, fmt.Errorf("netfabric: %s=%q disagrees with %d addresses", EnvSize, sz, len(addrs))
		}
	}
	cfg := Config{Rank: rank, Addrs: addrs}
	cfg.Fault.Loss = envFloat(EnvLoss)
	cfg.Fault.Dup = envFloat(EnvDup)
	cfg.Fault.Reorder = envFloat(EnvReord)
	cfg.DisableBatchIO = envBool(EnvNoBatchIO)
	cfg.DisablePiggyback = envBool(EnvNoPiggyback)
	cfg.FixedRTO = envBool(EnvFixedRTO)
	cfg.DisableGSO = envBool(EnvNoGSO)
	if s := os.Getenv(EnvReaderShards); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			cfg.ReaderShards = n
		}
	}
	if s := os.Getenv(EnvEndpointShards); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			cfg.EndpointShards = n
		}
	}
	if s := os.Getenv(EnvSeed); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("netfabric: bad %s: %w", EnvSeed, err)
		}
		cfg.Fault.Seed = seed
	}
	if fdStr := os.Getenv(EnvFD); fdStr != "" {
		fd, err := strconv.Atoi(fdStr)
		if err != nil {
			return nil, fmt.Errorf("netfabric: bad %s: %w", EnvFD, err)
		}
		f := os.NewFile(uintptr(fd), "lci-udp")
		pc, err := net.FilePacketConn(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("netfabric: inherited socket: %w", err)
		}
		cfg.Conn = pc
	}
	return New(cfg)
}

func envFloat(name string) float64 {
	s := os.Getenv(name)
	if s == "" {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}

func envBool(name string) bool {
	switch strings.ToLower(os.Getenv(name)) {
	case "", "0", "false", "no", "off":
		return false
	}
	return true
}
