package netfabric

import (
	"sync"
	"sync/atomic"
	"time"

	"lcigraph/internal/fabric"
)

// txPacket is one DATA datagram held until acknowledged.
type txPacket struct {
	seq      uint32
	data     []byte    // encoded datagram (owned until acked)
	lastTx   time.Time // zero until the packet first reaches the wire
	attempts int       // retransmissions so far (drives exponential backoff)
}

// txRing is a FIFO of txPackets in sequence-number order. Packets enter at
// the tail when Send assigns their sequence number and leave from the head
// when a cumulative ack retires them, so the ring is always a contiguous
// run of sequence numbers [baseSeq, nextSeq). Keeping them ordered is what
// makes the retransmit scan O(due-packets) instead of O(window): entries at
// the head are the oldest transmissions, so the scan stops at the first
// entry whose timer has not expired.
type txRing struct {
	buf  []*txPacket
	head int
	n    int
}

func (r *txRing) len() int { return r.n }

func (r *txRing) push(tx *txPacket) {
	if r.n == len(r.buf) {
		grown := make([]*txPacket, max(2*len(r.buf), 16))
		for i := 0; i < r.n; i++ {
			grown[i] = r.at(i)
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = tx
	r.n++
}

// at returns the i-th oldest entry (0 ≤ i < len).
func (r *txRing) at(i int) *txPacket { return r.buf[(r.head+i)%len(r.buf)] }

func (r *txRing) popFront() *txPacket {
	tx := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return tx
}

// flow is the reliability state for one peer, both directions.
//
// Send side (guarded by mu, callable from any goroutine): a sliding window
// of unacked packets plus the peer-advertised message credit, and the
// RFC 6298-style RTT estimator that times the window's retransmit timer.
// The tail `unsent` entries of the unacked ring have been assigned sequence
// numbers but not yet flushed to the wire (they batch into one vectored
// write). Receive side (guarded by rmu, taken by whichever reader shard the
// kernel hashed the peer to): cumulative in-order delivery with out-of-order
// buffering, and fragment reassembly into pooled frames. Cross-thread
// receive-side state is atomic: recvNext and consumed feed piggybacked acks
// stamped by senders, ackDue/recvSinceAck schedule standalone acks.
type flow struct {
	peer int

	// ---- send side ----
	mu          sync.Mutex
	nextSeq     uint32   // next sequence number to assign
	baseSeq     uint32   // oldest unacked sequence number
	unacked     txRing   // in-flight + pending packets, seq order
	unsent      int      // tail entries of unacked not yet on the wire
	msgsSent    uint64   // messages injected into this flow
	creditLimit uint64   // absolute message budget advertised by the peer
	scratch     [][]byte // reusable burst slice for flush/retransmit (mu held)

	// RTT estimator (mu held). srtt == 0 means "no sample yet": rto stays
	// at its conservative configured seed so a quiet link never retransmits
	// before the first measurement.
	srtt   time.Duration
	rttvar time.Duration
	rto    time.Duration

	// Stall-detector episode state (mu held). ackStallWarned latches the
	// no-ack-progress warning until the cumulative ack moves again;
	// creditStallSince records when sends first hit the credit wall (zero
	// while credit is available) and creditStallWarned latches that
	// episode's warning until the peer raises the limit.
	ackStallWarned    bool
	creditStallSince  time.Time
	creditStallWarned bool

	// ---- receive side (rmu held) ----
	// rmu serializes datagram processing for this flow across reader shards:
	// the kernel's reuseport hash pins a flow to one shard socket, but a
	// rebalance (shard join/leave) can migrate it mid-stream. With a single
	// reader the lock is uncontended. Lock order: rmu → mu → xmitMu.
	rmu       sync.Mutex
	ooo       map[uint32]*dataPkt // early arrivals within the window
	asm       *fabric.Frame       // message being reassembled
	asmLen    int
	asmGot    int
	delivered uint64 // messages enqueued onto the delivery ring
	lastPgAck uint32 // last piggybacked ack processed (skip-if-unchanged)
	lastPgCr  uint64 // last piggybacked credit processed

	// ---- shared ----
	recvNext     atomic.Uint32 // next expected seq; written by reader, read by piggyback stamping
	consumed     atomic.Uint64 // messages released back by the consumer
	ackDue       atomic.Bool   // an ack/credit update should be sent
	recvSinceAck atomic.Int32  // data packets received since the last ack went out
	pendTx       atomic.Int32  // lock-free mirror of unsent
}

func newFlow(peer int, credits int, seedRTO time.Duration) *flow {
	return &flow{
		peer:        peer,
		ooo:         map[uint32]*dataPkt{},
		creditLimit: uint64(credits),
		rto:         seedRTO,
	}
}

// inFlight returns the number of unacked packets, sent or pending (mu held).
func (fl *flow) inFlight() uint32 { return fl.nextSeq - fl.baseSeq }

// rtoGranule is the clock-granularity floor added to the variance term:
// ack generation is quantized by the receiver's delayed-ack tick, so an RTO
// tighter than srtt + ~1ms would fire on ordinary ack batching rather than
// loss.
const rtoGranule = time.Millisecond

// observeRTT folds one round-trip sample into the estimator (RFC 6298) and
// rederives the flow's RTO, clamped to [minRTO, maxRTO]. mu held. Callers
// apply Karn's rule: never sample a packet that was retransmitted, since
// its ack cannot be matched to a specific transmission.
func (fl *flow) observeRTT(sample, minRTO, maxRTO time.Duration) {
	if sample <= 0 {
		sample = time.Microsecond
	}
	if fl.srtt == 0 {
		fl.srtt = sample
		fl.rttvar = sample / 2
	} else {
		d := fl.srtt - sample
		if d < 0 {
			d = -d
		}
		fl.rttvar = (3*fl.rttvar + d) / 4
		fl.srtt = (7*fl.srtt + sample) / 8
	}
	rto := fl.srtt + 4*fl.rttvar
	if floor := fl.srtt + rtoGranule; rto < floor {
		rto = floor
	}
	if rto < minRTO {
		rto = minRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	fl.rto = rto
}

// timeoutFor returns tx's current retransmit deadline distance: the flow RTO
// backed off exponentially per attempt, capped at maxRTO. mu held.
func (fl *flow) timeoutFor(tx *txPacket, maxRTO time.Duration) time.Duration {
	t := fl.rto << uint(tx.attempts)
	if t > maxRTO || t <= 0 {
		t = maxRTO
	}
	return t
}
