package netfabric

import (
	"sync"
	"sync/atomic"
	"time"

	"lcigraph/internal/fabric"
)

// txPacket is one unacknowledged DATA datagram held for retransmission.
type txPacket struct {
	seq      uint32
	data     []byte // encoded datagram (owned until acked)
	lastTx   time.Time
	attempts int // retransmissions so far (drives exponential backoff)
}

// flow is the reliability state for one peer, both directions.
//
// Send side (guarded by mu, callable from any goroutine): a sliding window
// of unacked packets plus the peer-advertised message credit. Receive side
// (reader goroutine only): cumulative in-order delivery with out-of-order
// buffering, and fragment reassembly into pooled frames. The only
// cross-thread receive-side state is consumed/ackDue, touched by consumers
// releasing frames.
type flow struct {
	peer int

	// ---- send side ----
	mu          sync.Mutex
	nextSeq     uint32               // next sequence number to assign
	baseSeq     uint32               // oldest unacked sequence number
	unacked     map[uint32]*txPacket // in-flight packets by seq
	msgsSent    uint64               // messages injected into this flow
	creditLimit uint64               // absolute message budget advertised by the peer

	// ---- receive side (reader goroutine) ----
	nextRecv  uint32              // next expected sequence number
	ooo       map[uint32]*dataPkt // early arrivals within the window
	asm       *fabric.Frame       // message being reassembled
	asmLen    int
	asmGot    int
	delivered uint64 // messages enqueued onto the delivery ring

	// ---- shared ----
	consumed atomic.Uint64 // messages released back by the consumer
	ackDue   atomic.Bool   // an ack/credit update should be sent
}

func newFlow(peer int, credits int) *flow {
	return &flow{
		peer:        peer,
		unacked:     map[uint32]*txPacket{},
		ooo:         map[uint32]*dataPkt{},
		creditLimit: uint64(credits),
	}
}

// inFlight returns the number of unacked packets (mu held).
func (fl *flow) inFlight() uint32 { return fl.nextSeq - fl.baseSeq }
