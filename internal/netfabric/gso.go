package netfabric

// Segmentation-offload planning shared by every build. Grouping consecutive
// wire datagrams into GSO trains is pure slice logic, so it lives here and
// is unit-tested portably; only handing a train to the kernel (a
// UDP_SEGMENT cmsg on the sendmmsg entry) and the capability probes are
// Linux-specific (gso_linux.go, batchio_linux.go).
//
// A train is what UDP_SEGMENT accepts: one contiguous buffer the kernel
// splits into datagrams of exactly gso_size bytes each, with only the last
// allowed to be shorter. Our fragment encoding already produces that shape
// for free — a large message becomes a run of MTU-sized DATA datagrams with
// a short tail — so a flush burst collapses into a handful of kernel
// entries instead of one skb per datagram (DESIGN.md §13).

// maxGSOBytes bounds one train's total length: the kernel materializes the
// train as a single UDP payload before segmenting, so it must stay under
// the 16-bit UDP length limit (65507 for IPv4) with margin for options.
const maxGSOBytes = 65000

// maxGSOSegs mirrors the kernel's UDP_MAX_SEGMENTS cap on datagrams per
// train.
const maxGSOSegs = 64

// groBufLen sizes reader buffers when UDP_GRO is active: a coalesced
// super-datagram can be up to the full 64 KiB UDP payload.
const groBufLen = 1 << 16

// gsoTrain is one kernel send entry: n consecutive wire datagrams to one
// destination, handed to sendmmsg as one iovec each (scatter-gather, no
// assembly copy). seg > 0 marks a segment train — every datagram is seg
// bytes except a possibly shorter last, and a UDP_SEGMENT cmsg tells the
// kernel to gather then re-split; seg == 0 is a single plain datagram.
type gsoTrain struct {
	pkts [][]byte
	dst  int
	seg  int // gso_size; 0 = plain datagram, no cmsg
	n    int // datagrams in the train (== len(pkts))
}

// rxCmsg is the per-datagram ancillary data parsed off a reader socket:
// the UDP_GRO segment size (0 = not coalesced) and the kernel's cumulative
// SO_RXQ_OVFL receive-queue drop count (valid when hasOvfl).
type rxCmsg struct {
	seg     int
	ovfl    uint32
	hasOvfl bool
}

// planTrains groups a flush burst into GSO trains, preserving wire order.
// A train extends while the next packet goes to the same destination, the
// segment count and total length stay under the kernel caps, and the packet
// is not larger than the train's segment size; a shorter packet joins as
// the train's final segment and closes it. Trains alias the original
// datagram buffers — the kernel gathers them through per-packet iovecs, so
// planning never copies payload.
func planTrains(trains []gsoTrain, pkts [][]byte, dsts []int) []gsoTrain {
	i := 0
	for i < len(pkts) {
		seg := len(pkts[i])
		dst := dsts[i]
		total := seg
		j := i + 1
		for j < len(pkts) && dsts[j] == dst && j-i < maxGSOSegs &&
			total+len(pkts[j]) <= maxGSOBytes && len(pkts[j]) <= seg {
			total += len(pkts[j])
			j++
			if len(pkts[j-1]) < seg {
				break // a shorter segment must be the train's last
			}
		}
		tr := gsoTrain{pkts: pkts[i:j:j], dst: dst, n: j - i}
		if tr.n > 1 {
			tr.seg = seg
		}
		trains = append(trains, tr)
		i = j
	}
	return trains
}
