package netfabric

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"lcigraph/internal/fabric"
)

// TestBatchIOFallback: with vectored I/O disabled the provider must run the
// portable one-syscall-per-datagram path — and deliver exactly the same
// traffic. This is also what every non-Linux build runs unconditionally.
func TestBatchIOFallback(t *testing.T) {
	a, b := pair(t, Config{DisableBatchIO: true})
	if a.BatchIO() || b.BatchIO() {
		t.Fatal("DisableBatchIO left the vectored path active")
	}
	const n = 200
	got := 0
	check := func(f *fabric.Frame) {
		if f.Header != uint64(got) || !bytes.Equal(f.Data, pattern(got, 300)) {
			t.Errorf("msg %d corrupted on fallback path (header %d)", got, f.Header)
		}
		f.Release()
		got++
	}
	for i := 0; i < n; i++ {
		sendRetry(t, a, b, 1, uint64(i), 0, pattern(i, 300), check)
	}
	for got < n {
		check(pollOne(t, b, 5*time.Second))
	}
	st := a.Stats()
	if st.SendBatches != 0 || st.RecvBatches != 0 {
		t.Fatalf("fallback path recorded vectored bursts: send=%d recv=%d",
			st.SendBatches, st.RecvBatches)
	}
}

// TestPiggybackBidirectionalLossy: concurrent two-way traffic over a faulty
// wire, the configuration where piggybacked acks carry the whole ack load.
// Run under -race in CI: the piggyback stamp (sender goroutines) and the
// receive-state atomics (reader goroutine) cross threads on every packet.
func TestPiggybackBidirectionalLossy(t *testing.T) {
	a, b := pair(t, Config{
		RTO:   time.Millisecond,
		Fault: Fault{Loss: 0.05, Dup: 0.02, Reorder: 0.02, Seed: 11},
	})
	const n = 300
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	run := func(src, dst *Provider, to int) {
		defer wg.Done()
		got := 0
		for i := 0; i < n || got < n; {
			if i < n {
				err := src.Send(to, uint64(i), 0, pattern(i, 64))
				if err == nil {
					i++
					continue
				} else if err != fabric.ErrResource {
					errs <- err
					return
				}
			}
			if f := src.Poll(); f != nil {
				if f.Header != uint64(got) {
					t.Errorf("rank %d: frame %d has header %d", src.Rank(), got, f.Header)
				}
				f.Release()
				got++
			}
		}
	}
	wg.Add(2)
	go run(a, b, 1)
	go run(b, a, 0)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if pg := a.Stats().PiggybackAcks + b.Stats().PiggybackAcks; pg == 0 {
		t.Fatal("bidirectional traffic produced no piggybacked acks")
	}
}

// TestDelayedAcks: a one-way flow shorter than the ack-every threshold has
// nothing to piggyback on, so its acks must come from the delayed-ack tick —
// and the sender's window must still fully drain.
func TestDelayedAcks(t *testing.T) {
	a, b := pair(t, Config{AckEvery: 64})
	const n = 5 // below AckEvery: only the tick can ack these
	for i := 0; i < n; i++ {
		if err := a.Send(1, uint64(i), 0, pattern(i, 64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		pollOne(t, b, 5*time.Second).Release()
	}
	deadline := time.Now().Add(5 * time.Second)
	fl := a.flows[1]
	for {
		fl.mu.Lock()
		left := fl.unacked.len()
		fl.mu.Unlock()
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("one-way flow never drained: %d unacked", left)
		}
		time.Sleep(time.Millisecond)
	}
	if st := b.Stats(); st.DelayedAcks == 0 {
		t.Fatalf("acks did not come from the delayed-ack tick (standalone=%d delayed=%d)",
			st.AcksSent, st.DelayedAcks)
	}
}

// TestWireVersionMismatchDropped: a datagram from an older (or newer) wire
// version must be refused outright — v1 peers did not carry piggyback
// fields, so interpreting their packets would corrupt flow state.
func TestWireVersionMismatchDropped(t *testing.T) {
	a, _ := pair(t, Config{})
	buf := make([]byte, 1400)
	n := encodeData(buf, 1, 0, 0, 4, 9, 9, []byte("abcd"))
	buf[1] = wireVersion - 1
	before := a.dropped.Load()
	a.handleDatagram(buf[:n])
	if a.dropped.Load() != before+1 {
		t.Fatal("mismatched wire version was not dropped")
	}
	if f := a.Poll(); f != nil {
		t.Fatal("mismatched wire version delivered a frame")
	}
}

// TestAckEveryStandalone: a long one-way burst must trigger immediate
// standalone acks every AckEvery packets, bounding the sender's window
// occupancy between delayed-ack ticks.
func TestAckEveryStandalone(t *testing.T) {
	a, b := pair(t, Config{AckEvery: 8})
	const n = 100
	for i := 0; i < n; i++ {
		sendRetry(t, a, b, 1, uint64(i), 0, pattern(i, 64), func(f *fabric.Frame) { f.Release() })
	}
	for i := 0; i < n; i++ {
		pollOne(t, b, 5*time.Second).Release()
	}
	// One-way traffic means nothing can piggyback: the sender's window can
	// only drain through standalone acks.
	fl := a.flows[1]
	deadline := time.Now().Add(5 * time.Second)
	for {
		fl.mu.Lock()
		left := fl.unacked.len()
		fl.mu.Unlock()
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("one-way burst never drained: %d unacked", left)
		}
		time.Sleep(time.Millisecond)
	}
	if acks := b.Stats().AcksSent; acks == 0 {
		t.Fatal("one-way burst produced no standalone acks")
	}
}
