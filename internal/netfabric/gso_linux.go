//go:build linux && (amd64 || arm64)

// Kernel glue for the segmentation-offload tier: capability probes for
// UDP_SEGMENT/UDP_GRO, SO_REUSEPORT binding for the sharded readers,
// SO_RXQ_OVFL drop tracking, and the raw cmsg encode/decode the vectored
// I/O driver (batchio_linux.go) attaches to sendmmsg/recvmmsg entries.
package netfabric

import (
	"context"
	"encoding/binary"
	"net"
	"syscall"
)

// Linux socket-option numbers absent from the frozen syscall package.
const (
	solUDP      = 17
	udpSegment  = 103 // UDP_SEGMENT: kernel splits one send into gso_size datagrams
	udpGRO      = 104 // UDP_GRO: kernel coalesces datagram runs on receive
	soReusePort = 15  // SO_REUSEPORT: hash incoming flows across N sockets
	soRxqOvfl   = 40  // SO_RXQ_OVFL: cmsg carrying the cumulative kernel drop count
)

// offloadAvailable reports whether this build has the segmentation-offload
// tier at all (it rides the same raw-syscall machinery as batch I/O).
const offloadAvailable = true

// setSockoptInt applies one socket option through conn's raw descriptor,
// reporting success. Failure is how capability probing works: an old kernel
// answers ENOPROTOOPT and the provider keeps the previous tier.
func setSockoptInt(conn net.PacketConn, level, opt, val int) bool {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return false
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	applied := false
	rc.Control(func(fd uintptr) {
		applied = syscall.SetsockoptInt(int(fd), level, opt, val) == nil
	})
	return applied
}

// probeGSO reports whether the kernel accepts UDP_SEGMENT on conn. Setting
// the socket-wide value to 0 is a no-op (the provider segments per train
// via cmsg) but fails on pre-4.18 kernels, which is exactly the probe.
func probeGSO(conn net.PacketConn) bool { return setSockoptInt(conn, solUDP, udpSegment, 0) }

// enableGRO asks the kernel to coalesce runs of same-flow datagrams into
// super-datagrams delivered with a UDP_GRO gso_size cmsg (kernels ≥ 5.0).
func enableGRO(conn net.PacketConn) bool { return setSockoptInt(conn, solUDP, udpGRO, 1) }

// disableGRO turns coalescing back off — required before a shard falls back
// to the portable read path, which cannot see the gso_size cmsg.
func disableGRO(conn net.PacketConn) bool { return setSockoptInt(conn, solUDP, udpGRO, 0) }

// enableRxqOvfl turns on the SO_RXQ_OVFL cmsg: every received datagram then
// carries the socket's cumulative receive-queue drop count, making
// kernel-side drops visible instead of silent.
func enableRxqOvfl(conn net.PacketConn) bool {
	return setSockoptInt(conn, syscall.SOL_SOCKET, soRxqOvfl, 1)
}

// ListenReusePort binds a datagram socket with SO_REUSEPORT set before
// bind, so additional sockets (the provider's reader shards, or a future
// co-process) can join the same address and have the kernel hash incoming
// flows across them.
func ListenReusePort(network, addr string) (net.PacketConn, error) {
	lc := net.ListenConfig{Control: func(_, _ string, c syscall.RawConn) error {
		var serr error
		if err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	return lc.ListenPacket(context.Background(), network, addr)
}

// sizeofCmsghdr is struct cmsghdr on linux/{amd64,arm64}: u64 len, s32
// level, s32 type.
const sizeofCmsghdr = 16

// putGSOSegment encodes a UDP_SEGMENT cmsg carrying the train's segment
// size into b (cap ≥ cmsgSpaceGSO) and returns the control length.
func putGSOSegment(b []byte, seg uint16) int {
	binary.LittleEndian.PutUint64(b[0:], uint64(syscall.CmsgLen(2)))
	binary.LittleEndian.PutUint32(b[8:], solUDP)
	binary.LittleEndian.PutUint32(b[12:], udpSegment)
	binary.LittleEndian.PutUint16(b[16:], seg)
	return syscall.CmsgSpace(2)
}

// cmsgSpaceGSO is the control-buffer room one UDP_SEGMENT cmsg needs.
var cmsgSpaceGSO = syscall.CmsgSpace(2)

// rxCtrlLen sizes the per-datagram receive control buffer: room for the
// UDP_GRO segment size and the SO_RXQ_OVFL drop count with headroom.
const rxCtrlLen = 64

// parseRxCmsg walks a received control buffer for the two ancillary records
// the reader sockets enable: the UDP_GRO segment size (an int) and the
// SO_RXQ_OVFL cumulative drop count (a u32). Unknown records are skipped.
func parseRxCmsg(b []byte) (c rxCmsg) {
	for len(b) >= sizeofCmsghdr {
		l := int(binary.LittleEndian.Uint64(b[0:]))
		if l < sizeofCmsghdr || l > len(b) {
			return
		}
		level := binary.LittleEndian.Uint32(b[8:])
		typ := binary.LittleEndian.Uint32(b[12:])
		data := b[sizeofCmsghdr:l]
		switch {
		case level == solUDP && typ == udpGRO && len(data) >= 4:
			c.seg = int(int32(binary.LittleEndian.Uint32(data)))
		case level == syscall.SOL_SOCKET && typ == soRxqOvfl && len(data) >= 4:
			c.ovfl = binary.LittleEndian.Uint32(data)
			c.hasOvfl = true
		}
		adv := (l + 7) &^ 7 // cmsg entries are 8-byte aligned
		if adv <= 0 || adv > len(b) {
			return
		}
		b = b[adv:]
	}
	return
}
