package netfabric

import (
	"math/rand"
	"sync"
)

// Fault configures deterministic fault injection on the provider's outgoing
// datagrams — the loss, duplication and reordering a real lossy network
// exhibits and the reliability layer must absorb. Rates are per-datagram
// probabilities in [0, 1). The zero value injects nothing.
type Fault struct {
	Loss    float64 // drop the datagram
	Dup     float64 // send it twice
	Reorder float64 // hold it and send after the next datagram
	Seed    int64   // PRNG seed (0 ⇒ a fixed default, still deterministic)
}

func (f Fault) enabled() bool { return f.Loss > 0 || f.Dup > 0 || f.Reorder > 0 }

// faultAction is the injector's verdict for one datagram.
type faultAction uint8

const (
	faultPass faultAction = iota
	faultDrop
	faultDup
	faultHold
)

// faultInjector applies Fault decisions with a mutex-guarded PRNG so
// injection stays deterministic under concurrent senders (the decision
// sequence is deterministic; its assignment to datagrams depends on send
// interleaving, which is all the tests need).
type faultInjector struct {
	mu   sync.Mutex
	rng  *rand.Rand
	cfg  Fault
	held []byte
	dst  int // destination rank of the held datagram
}

func newFaultInjector(cfg Fault) *faultInjector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x1c1f4b
	}
	return &faultInjector{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

func (fi *faultInjector) decide() faultAction {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	x := fi.rng.Float64()
	switch {
	case x < fi.cfg.Loss:
		return faultDrop
	case x < fi.cfg.Loss+fi.cfg.Dup:
		return faultDup
	case x < fi.cfg.Loss+fi.cfg.Dup+fi.cfg.Reorder:
		return faultHold
	default:
		return faultPass
	}
}

// hold parks a copy of pkt for later release, returning any previously held
// datagram and its destination rank (at most one is ever parked). The copy
// matters: the caller's buffer is recycled once the packet is acked.
func (fi *faultInjector) hold(pkt []byte, dst int) (prev []byte, prevDst int) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	prev, prevDst = fi.held, fi.dst
	fi.held = append([]byte(nil), pkt...)
	fi.dst = dst
	return prev, prevDst
}

// take removes and returns the held datagram, if any.
func (fi *faultInjector) take() (pkt []byte, dst int) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	pkt, dst = fi.held, fi.dst
	fi.held, fi.dst = nil, 0
	return pkt, dst
}
