package netfabric

import (
	"testing"
	"time"
)

const (
	testMinRTO = 2 * time.Millisecond
	testMaxRTO = 50 * time.Millisecond
)

// TestRTTConvergence: a steady stream of identical samples must converge the
// smoothed estimate onto the sample and derive an RTO of srtt plus the
// clock-granularity floor (the variance term decays toward zero).
func TestRTTConvergence(t *testing.T) {
	fl := newFlow(1, 128, 5*time.Millisecond)
	sample := 4 * time.Millisecond
	for i := 0; i < 200; i++ {
		fl.observeRTT(sample, testMinRTO, testMaxRTO)
	}
	if d := fl.srtt - sample; d < -sample/10 || d > sample/10 {
		t.Fatalf("srtt = %v after steady %v samples", fl.srtt, sample)
	}
	want := fl.srtt + rtoGranule
	if fl.rto < want || fl.rto > want+sample/2 {
		t.Fatalf("rto = %v, want ≈ srtt+granule = %v (rttvar %v)", fl.rto, want, fl.rttvar)
	}
}

// TestRTTFirstSample: the estimator must leave the conservative seed in
// place until the first sample, then adopt RFC 6298's initialisation
// (srtt = R, rttvar = R/2).
func TestRTTFirstSample(t *testing.T) {
	seed := 5 * time.Millisecond
	fl := newFlow(1, 128, seed)
	if fl.srtt != 0 || fl.rto != seed {
		t.Fatalf("fresh flow: srtt=%v rto=%v, want 0 and seed %v", fl.srtt, fl.rto, seed)
	}
	fl.observeRTT(8*time.Millisecond, testMinRTO, testMaxRTO)
	if fl.srtt != 8*time.Millisecond || fl.rttvar != 4*time.Millisecond {
		t.Fatalf("first sample: srtt=%v rttvar=%v", fl.srtt, fl.rttvar)
	}
}

// TestRTTClamp: the derived RTO must respect both configured bounds no
// matter how extreme the samples are.
func TestRTTClamp(t *testing.T) {
	fl := newFlow(1, 128, 5*time.Millisecond)
	for i := 0; i < 50; i++ {
		fl.observeRTT(10*time.Microsecond, testMinRTO, testMaxRTO)
	}
	if fl.rto < testMinRTO {
		t.Fatalf("rto = %v under the %v floor", fl.rto, testMinRTO)
	}
	for i := 0; i < 50; i++ {
		fl.observeRTT(10*time.Second, testMinRTO, testMaxRTO)
	}
	if fl.rto > testMaxRTO {
		t.Fatalf("rto = %v over the %v cap", fl.rto, testMaxRTO)
	}
	// Degenerate samples must not poison the estimator.
	fl2 := newFlow(1, 128, 5*time.Millisecond)
	fl2.observeRTT(-time.Second, testMinRTO, testMaxRTO)
	if fl2.rto < testMinRTO || fl2.rto > testMaxRTO {
		t.Fatalf("negative sample produced rto %v", fl2.rto)
	}
}

// TestRTTBackoff: per-packet retransmit timeouts must double with each
// attempt and saturate at MaxRTO, including far past the shift-overflow
// point.
func TestRTTBackoff(t *testing.T) {
	fl := newFlow(1, 128, 5*time.Millisecond)
	fl.rto = 4 * time.Millisecond
	prev := time.Duration(0)
	for attempts := 0; attempts <= 16; attempts++ {
		tx := &txPacket{attempts: attempts}
		d := fl.timeoutFor(tx, testMaxRTO)
		if d < prev {
			t.Fatalf("attempt %d: timeout %v shrank from %v", attempts, d, prev)
		}
		if d > testMaxRTO {
			t.Fatalf("attempt %d: timeout %v exceeds cap %v", attempts, d, testMaxRTO)
		}
		if attempts >= 4 && d != testMaxRTO {
			t.Fatalf("attempt %d: timeout %v, want saturated %v", attempts, d, testMaxRTO)
		}
		prev = d
	}
}

// TestRTTKarn: an ack covering a retransmitted packet must not feed the
// estimator — the ack cannot be matched to a specific transmission, and a
// bogus sample would wreck the timeout (Karn's rule).
func TestRTTKarn(t *testing.T) {
	a, _ := pair(t, Config{})
	fl := newFlow(1, 128, 5*time.Millisecond)
	fl.unacked.push(&txPacket{seq: 0, data: make([]byte, 8), lastTx: time.Now().Add(-time.Hour), attempts: 1})
	fl.nextSeq = 1
	a.onAck(fl, 1, 200)
	if fl.srtt != 0 {
		t.Fatalf("retransmitted packet fed the estimator: srtt = %v", fl.srtt)
	}
	if fl.unacked.len() != 0 || fl.baseSeq != 1 {
		t.Fatalf("ack not applied: len=%d base=%d", fl.unacked.len(), fl.baseSeq)
	}
	// A clean (never-retransmitted) packet must feed it.
	fl.unacked.push(&txPacket{seq: 1, data: make([]byte, 8), lastTx: time.Now().Add(-3 * time.Millisecond)})
	fl.nextSeq = 2
	a.onAck(fl, 2, 200)
	if fl.srtt == 0 {
		t.Fatal("clean packet did not feed the estimator")
	}
}

// TestRTTFixedAblation: with FixedRTO set the provider must never adapt —
// the flow RTO stays at the configured seed through live traffic.
func TestRTTFixedAblation(t *testing.T) {
	a, b := pair(t, Config{RTO: 30 * time.Millisecond, FixedRTO: true})
	for i := 0; i < 50; i++ {
		if err := a.Send(1, uint64(i), 0, pattern(i, 64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		pollOne(t, b, 5*time.Second).Release()
	}
	time.Sleep(5 * time.Millisecond) // let the final acks land
	fl := a.flows[1]
	fl.mu.Lock()
	srtt, rto := fl.srtt, fl.rto
	fl.mu.Unlock()
	if srtt != 0 || rto != 30*time.Millisecond {
		t.Fatalf("FixedRTO flow adapted: srtt=%v rto=%v", srtt, rto)
	}
}
