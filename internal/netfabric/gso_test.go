package netfabric

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"lcigraph/internal/fabric"
)

// trainSizes summarizes a plan as (datagrams, seg) pairs for comparison.
func trainSizes(trains []gsoTrain) [][2]int {
	out := make([][2]int, len(trains))
	for i, tr := range trains {
		out[i] = [2]int{tr.n, tr.seg}
	}
	return out
}

func mkPkts(sizes ...int) [][]byte {
	pkts := make([][]byte, len(sizes))
	for i, n := range sizes {
		pkts[i] = make([]byte, n)
	}
	return pkts
}

func TestPlanTrains(t *testing.T) {
	sameDst := func(n int) []int { return make([]int, n) }
	cases := []struct {
		name string
		pkts [][]byte
		dsts []int
		want [][2]int // (n, seg) per train
	}{
		{"empty", nil, nil, [][2]int{}},
		{"single packet is plain", mkPkts(1400), sameDst(1), [][2]int{{1, 0}}},
		{"uniform run coalesces", mkPkts(1400, 1400, 1400), sameDst(3), [][2]int{{3, 1400}}},
		{"shorter tail joins and closes", mkPkts(1400, 1400, 100), sameDst(3), [][2]int{{3, 1400}}},
		{"packet after short tail starts new train",
			mkPkts(1400, 100, 1400, 1400), sameDst(4), [][2]int{{2, 1400}, {2, 1400}}},
		{"larger packet breaks the train",
			mkPkts(100, 1400), sameDst(2), [][2]int{{1, 0}, {1, 0}}},
		{"destination change splits",
			mkPkts(1400, 1400, 1400), []int{1, 1, 2}, [][2]int{{2, 1400}, {1, 0}}},
		{"interleaved destinations never merge",
			mkPkts(1400, 1400, 1400, 1400), []int{1, 2, 1, 2},
			[][2]int{{1, 0}, {1, 0}, {1, 0}, {1, 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := trainSizes(planTrains(nil, tc.pkts, tc.dsts))
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("train %d: got %v, want %v", i, got, tc.want)
				}
			}
		})
	}
}

// TestPlanTrainsCaps: the kernel caps a train at maxGSOSegs datagrams and
// maxGSOBytes total; plans must split exactly there and never copy payload
// (every train packet aliases the input slice).
func TestPlanTrainsCaps(t *testing.T) {
	uniform := func(n, size int) [][]byte {
		pkts := make([][]byte, n)
		for i := range pkts {
			pkts[i] = make([]byte, size)
		}
		return pkts
	}

	pkts := uniform(maxGSOSegs+10, 100)
	trains := planTrains(nil, pkts, make([]int, len(pkts)))
	if len(trains) != 2 || trains[0].n != maxGSOSegs || trains[1].n != 10 {
		t.Fatalf("segment cap: got %v", trainSizes(trains))
	}
	if &trains[0].pkts[0][0] != &pkts[0][0] {
		t.Fatal("train does not alias input packets")
	}

	// One more MTU-sized datagram than fits in maxGSOBytes must split.
	n := maxGSOBytes/1400 + 1
	trains = planTrains(nil, uniform(n, 1400), make([]int, n))
	if len(trains) != 2 || trains[0].n != maxGSOBytes/1400 {
		t.Fatalf("byte cap: got %v", trainSizes(trains))
	}
}

// exchangeLossy drives n messages of mixed sizes across a lossy pair and
// checks exactly-once in-order delivery — the acceptance gate every offload
// tier and every fallback must clear identically.
func exchangeLossy(t *testing.T, cfg Config, n int) (*Provider, *Provider) {
	t.Helper()
	cfg.RTO = time.Millisecond
	cfg.Fault = Fault{Loss: 0.05, Dup: 0.02, Reorder: 0.02, Seed: 11}
	a, b := pair(t, cfg)
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			size := (i * 977) % 5000 // single-fragment and multi-fragment mix
			f := pollOne(t, b, 30*time.Second)
			if f.Header != uint64(i) {
				t.Errorf("msg %d: out-of-order header %d", i, f.Header)
				f.Release()
				return
			}
			if !bytes.Equal(f.Data, pattern(i, size)) {
				t.Errorf("msg %d: payload mismatch (%d bytes)", i, len(f.Data))
				f.Release()
				return
			}
			f.Release()
		}
	}()
	for i := 0; i < n; i++ {
		size := (i * 977) % 5000
		data := pattern(i, size)
		deadline := time.Now().Add(30 * time.Second)
		for {
			err := a.Send(1, uint64(i), 0, data)
			if err == nil {
				break
			}
			if err != fabric.ErrResource {
				t.Fatalf("send: %v", err)
			}
			if time.Now().After(deadline) {
				t.Fatal("send stalled beyond deadline")
			}
			runtime.Gosched() // the receiver goroutine is the only consumer
		}
	}
	<-done
	return a, b
}

// TestGSOFallbackLossy: with segmentation offload disabled (the LCI_NO_GSO
// path, and the shape of a kernel that rejects UDP_SEGMENT) the provider
// must fall back to plain batch I/O with identical exactly-once delivery
// under loss.
func TestGSOFallbackLossy(t *testing.T) {
	a, _ := exchangeLossy(t, Config{DisableGSO: true}, 400)
	if a.GSO() {
		t.Fatal("DisableGSO left the GSO tier on")
	}
	if st := a.Stats(); st.GSOSends != 0 {
		t.Fatalf("GSO disabled but gso_sends=%d", st.GSOSends)
	}
}

// TestGSORuntimeDowngrade: a kernel refusing UDP_SEGMENT at send time (the
// probe passed but sendmmsg errors) downgrades mid-stream; messages sent
// before and after must all arrive.
func TestGSORuntimeDowngrade(t *testing.T) {
	a, b := pair(t, Config{})
	got := make([]*fabric.Frame, 0, 40)
	keep := func(f *fabric.Frame) { got = append(got, f) }
	for i := 0; i < 20; i++ {
		sendRetry(t, a, b, 1, uint64(i), 0, pattern(i, 3000), keep)
	}
	a.gsoOn.Store(false) // what the send path does on errBatchUnsupported
	for i := 20; i < 40; i++ {
		sendRetry(t, a, b, 1, uint64(i), 0, pattern(i, 3000), keep)
	}
	for len(got) < 40 {
		keep(pollOne(t, b, 10*time.Second))
	}
	for i, f := range got {
		if f.Header != uint64(i) || !bytes.Equal(f.Data, pattern(i, 3000)) {
			t.Fatalf("msg %d: header=%d len=%d", i, f.Header, len(f.Data))
		}
		f.Release()
	}
}

// TestReaderShardsLossy: multiple SO_REUSEPORT reader shards must preserve
// exactly-once in-order delivery even though the kernel may migrate a flow
// between shards, and every configured shard must actually exist.
func TestReaderShardsLossy(t *testing.T) {
	a, _ := exchangeLossy(t, Config{ReaderShards: 4}, 400)
	if offloadAvailable {
		if got := a.ReaderShards(); got != 4 {
			t.Fatalf("ReaderShards() = %d, want 4", got)
		}
	}
	rx := a.ShardRx()
	var total int64
	for _, n := range rx {
		total += n
	}
	if total == 0 {
		t.Fatalf("no shard counted any datagrams: %v", rx)
	}
}

// TestGSOLargeMessages exercises the tier the offload exists for: large
// fragment trains. When the kernel granted GSO/GRO the counters must move.
func TestGSOLargeMessages(t *testing.T) {
	a, b := pair(t, Config{EagerLimit: 64 << 10})
	const n, size = 8, 60000
	got := make([]*fabric.Frame, 0, n)
	keep := func(f *fabric.Frame) { got = append(got, f) }
	for i := 0; i < n; i++ {
		sendRetry(t, a, b, 1, uint64(i), 0, pattern(i, size), keep)
	}
	for len(got) < n {
		keep(pollOne(t, b, 10*time.Second))
	}
	for i, f := range got {
		if f.Header != uint64(i) || !bytes.Equal(f.Data, pattern(i, size)) {
			t.Fatalf("msg %d: header=%d len=%d", i, f.Header, len(f.Data))
		}
		f.Release()
	}
	if a.GSO() {
		if st := a.Stats(); st.GSOSends == 0 {
			t.Fatal("GSO active but no trains counted")
		}
	}
	if b.GRO() {
		if st := b.Stats(); st.GROCoalesced == 0 {
			t.Skip("GRO active but kernel delivered no coalesced buffers (timing-dependent)")
		}
	}
	t.Logf("a: %s stats=%+v", a.Capabilities(), a.Stats())
}

// TestEnvKnobs: the ablation environment variables must reach the config.
func TestEnvKnobs(t *testing.T) {
	t.Setenv(EnvRank, "0")
	t.Setenv(EnvAddrs, "127.0.0.1:0")
	t.Setenv(EnvNoGSO, "1")
	t.Setenv(EnvReaderShards, "1")
	p, err := FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.GSO() {
		t.Fatal("LCI_NO_GSO=1 left GSO on")
	}
	if got := p.ReaderShards(); got != 1 {
		t.Fatalf("LCI_READER_SHARDS=1 but %d shards", got)
	}
}
