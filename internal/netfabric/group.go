package netfabric

import (
	"fmt"
	"net"
)

// NewLoopbackGroup builds p connected providers over real loopback UDP
// sockets inside one process: the in-process demo/test shape of the
// multi-process launcher. All sockets are bound before any provider starts,
// so there is no startup race. cfg supplies shared tunables (Rank, Addrs
// and Conn are overwritten per provider).
func NewLoopbackGroup(p int, cfg Config) ([]*Provider, error) {
	conns := make([]net.PacketConn, p)
	addrs := make([]string, p)
	for i := range conns {
		// SO_REUSEPORT on the primary bind lets each provider's extra reader
		// shards join its address; a no-op where unsupported.
		c, err := ListenReusePort("udp", "127.0.0.1:0")
		if err != nil {
			for _, pc := range conns[:i] {
				pc.Close()
			}
			return nil, fmt.Errorf("netfabric: bind loopback rank %d: %w", i, err)
		}
		conns[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	provs := make([]*Provider, p)
	for i := range provs {
		c := cfg
		c.Rank = i
		c.Addrs = addrs
		c.Conn = conns[i]
		prov, err := New(c)
		if err != nil {
			for _, pr := range provs[:i] {
				pr.Close()
			}
			for _, pc := range conns[i:] {
				pc.Close()
			}
			return nil, err
		}
		provs[i] = prov
	}
	return provs, nil
}

// CloseGroup closes every provider of a loopback group.
func CloseGroup(provs []*Provider) {
	for _, p := range provs {
		if p != nil {
			p.Close()
		}
	}
}
