//go:build linux

package netfabric

// linux/arm64 syscall numbers for vectored datagram I/O (generic unistd).
const (
	sysRecvmmsg uintptr = 243
	sysSendmmsg uintptr = 269
)
