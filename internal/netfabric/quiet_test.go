package netfabric

import (
	"testing"
	"time"

	"lcigraph/internal/fabric"
)

// TestQuietLinkNoRetransmit: with a prompt consumer and no injected faults,
// the retransmit timer must stay silent — spurious retransmits on a clean
// link would mean the ack path or the timer arithmetic is broken. The RTO
// seed is raised well above the default 5ms and MinRTO pins the adaptive
// estimator's floor there too: under -race on a loaded machine the peer's
// reader can easily stall past the loopback-derived RTO, and a single late
// ack fires a full 64-packet housekeep burst that has nothing to do with
// broken timers.
func TestQuietLinkNoRetransmit(t *testing.T) {
	a, b := pair(t, Config{RTO: 50 * time.Millisecond, MinRTO: 50 * time.Millisecond})
	for i := 0; i < 500; i++ {
		sendRetry(t, a, b, 1, uint64(i), 0, pattern(i, 200), func(f *fabric.Frame) { f.Release() })
		if f := b.Poll(); f != nil {
			f.Release()
		}
	}
	// Drain the tail and give the final acks a few RTOs to land.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		if f := b.Poll(); f != nil {
			f.Release()
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	if r := a.Stats().Retransmits; r > 10 {
		t.Fatalf("quiet link produced %d retransmits", r)
	}
}
