//go:build linux && (amd64 || arm64)

package netfabric

import (
	"encoding/binary"
	"net"
	"syscall"
	"testing"
)

// cmsg appends one control record (8-byte aligned, linux/{amd64,arm64}
// layout) to b — the mirror of what parseRxCmsg decodes.
func cmsg(b []byte, level, typ uint32, data []byte) []byte {
	var hdr [sizeofCmsghdr]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(syscall.CmsgLen(len(data))))
	binary.LittleEndian.PutUint32(hdr[8:], level)
	binary.LittleEndian.PutUint32(hdr[12:], typ)
	b = append(b, hdr[:]...)
	b = append(b, data...)
	for len(b)%8 != 0 {
		b = append(b, 0)
	}
	return b
}

func u32(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

func TestParseRxCmsg(t *testing.T) {
	if c := parseRxCmsg(nil); c.seg != 0 || c.hasOvfl {
		t.Fatalf("empty control parsed as %+v", c)
	}

	// A GRO record alone.
	b := cmsg(nil, solUDP, udpGRO, u32(1400))
	if c := parseRxCmsg(b); c.seg != 1400 || c.hasOvfl {
		t.Fatalf("gro-only: %+v", c)
	}

	// An overflow record alone.
	b = cmsg(nil, syscall.SOL_SOCKET, soRxqOvfl, u32(7))
	if c := parseRxCmsg(b); c.seg != 0 || !c.hasOvfl || c.ovfl != 7 {
		t.Fatalf("ovfl-only: %+v", c)
	}

	// Both, with an unknown record between them that must be skipped.
	b = cmsg(nil, solUDP, udpGRO, u32(1352))
	b = cmsg(b, syscall.SOL_IP, 8 /* IP_PKTINFO */, make([]byte, 12))
	b = cmsg(b, syscall.SOL_SOCKET, soRxqOvfl, u32(42))
	if c := parseRxCmsg(b); c.seg != 1352 || !c.hasOvfl || c.ovfl != 42 {
		t.Fatalf("mixed: %+v", c)
	}

	// A truncated header must not panic or loop.
	if c := parseRxCmsg(b[:10]); c.seg != 0 || c.hasOvfl {
		t.Fatalf("truncated: %+v", c)
	}
	// A record claiming more length than the buffer holds is rejected.
	bad := cmsg(nil, solUDP, udpGRO, u32(1400))
	binary.LittleEndian.PutUint64(bad[0:], 1<<20)
	if c := parseRxCmsg(bad); c.seg != 0 {
		t.Fatalf("overlong header: %+v", c)
	}
}

// TestPutGSOSegmentRoundTrip: the send-side encoder and a cmsg walk agree.
func TestPutGSOSegmentRoundTrip(t *testing.T) {
	b := make([]byte, cmsgSpaceGSO)
	n := putGSOSegment(b, 1400)
	if n != cmsgSpaceGSO {
		t.Fatalf("control length %d, want %d", n, cmsgSpaceGSO)
	}
	if l := binary.LittleEndian.Uint64(b[0:]); l != uint64(syscall.CmsgLen(2)) {
		t.Fatalf("cmsg_len %d, want %d", l, syscall.CmsgLen(2))
	}
	if lv := binary.LittleEndian.Uint32(b[8:]); lv != solUDP {
		t.Fatalf("cmsg_level %d", lv)
	}
	if ty := binary.LittleEndian.Uint32(b[12:]); ty != udpSegment {
		t.Fatalf("cmsg_type %d", ty)
	}
	if seg := binary.LittleEndian.Uint16(b[16:]); seg != 1400 {
		t.Fatalf("gso_size %d", seg)
	}
}

// TestListenReusePort: two sockets must be able to share one address, which
// is what lets the reader shards (and the launcher's pre-bind) coexist.
func TestListenReusePort(t *testing.T) {
	a, err := ListenReusePort("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenReusePort("udp", a.LocalAddr().String())
	if err != nil {
		t.Fatalf("second bind to %v: %v", a.LocalAddr(), err)
	}
	b.Close()
	// A plain socket must NOT be able to join (reuseport requires both).
	if c, err := net.ListenPacket("udp", a.LocalAddr().String()); err == nil {
		c.Close()
		t.Fatal("plain bind joined a reuseport group")
	}
}
