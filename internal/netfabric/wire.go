package netfabric

import "encoding/binary"

// Datagram layout (little-endian). Every packet starts with a 4-byte common
// header:
//
//	byte 0  magic (0xA7)
//	byte 1  wire version
//	byte 2  packet type (pktData | pktAck)
//	byte 3  flags (flagAck: the piggyback fields are valid)
//
// DATA packets carry one MTU-sized fragment of one logical message. Each
// fragment is self-describing (it repeats the message's header/meta words
// and total length) so reassembly needs no per-message handshake: fragments
// of a message occupy consecutive sequence numbers of the flow and are
// applied in order by the sliding-window receiver.
//
// Since wire version 2 every DATA packet also reserves room for the reverse
// direction's cumulative ack and credit advertisement ("piggybacking"): on
// bidirectional traffic the ack path costs no extra datagrams at all, and
// standalone ACK packets are only needed for one-way flows (sent on the
// delayed-ack timer or after ackEvery receives). The fields are stamped at
// flush time — not at Send time — so a packet always carries the freshest
// receive state, including on retransmission. flagAck distinguishes a
// stamped packet from one whose sender has piggybacking ablated.
//
//	src u32 | seq u32 | fragOff u32 | msgLen u32 | header u64 | meta u64 | ack u32 | credit u64 | chunk
//
// ACK packets carry the flow's cumulative ack (next expected sequence
// number) and the receiver-advertised credit: the absolute count of
// messages the peer may have sent, i.e. consumed + credit window. Credits
// are what replaces the simulator's bounded receive ring — a sender out of
// credit gets fabric.ErrResource, the same retriable back-pressure.
//
//	src u32 | cumAck u32 | credit u64
const (
	magicByte   = 0xA7
	wireVersion = 2 // v2: DATA packets carry piggybacked ack + credit

	pktData = 1
	pktAck  = 2

	flagAck = 1 << 0 // DATA: piggybacked ack/credit fields are valid

	dataAckOff    = 36 // offset of the piggybacked ack field
	dataCreditOff = 40 // offset of the piggybacked credit field

	dataHdrLen = 4 + 4 + 4 + 4 + 4 + 8 + 8 + 4 + 8
	ackPktLen  = 4 + 4 + 4 + 8
)

// dataPkt is one decoded DATA datagram.
type dataPkt struct {
	src     int
	seq     uint32
	fragOff uint32
	msgLen  uint32
	header  uint64
	meta    uint64
	chunk   []byte // aliases the read buffer; clone before retaining

	// Piggybacked reverse-direction ack/credit (valid when hasAck).
	hasAck   bool
	pgAck    uint32
	pgCredit uint64
}

// clone deep-copies a packet so it can outlive the read buffer (out-of-order
// buffering).
func (d *dataPkt) clone() *dataPkt {
	c := *d
	c.chunk = append([]byte(nil), d.chunk...)
	return &c
}

func putCommon(b []byte, typ byte) {
	b[0] = magicByte
	b[1] = wireVersion
	b[2] = typ
	b[3] = 0
}

// encodeData writes a DATA packet into b and returns its length. The
// piggyback ack/credit fields are left zero with flagAck clear; stampAck
// fills them at flush time.
func encodeData(b []byte, src int, seq, fragOff, msgLen uint32, header, meta uint64, chunk []byte) int {
	putCommon(b, pktData)
	binary.LittleEndian.PutUint32(b[4:], uint32(src))
	binary.LittleEndian.PutUint32(b[8:], seq)
	binary.LittleEndian.PutUint32(b[12:], fragOff)
	binary.LittleEndian.PutUint32(b[16:], msgLen)
	binary.LittleEndian.PutUint64(b[20:], header)
	binary.LittleEndian.PutUint64(b[28:], meta)
	binary.LittleEndian.PutUint32(b[dataAckOff:], 0)
	binary.LittleEndian.PutUint64(b[dataCreditOff:], 0)
	copy(b[dataHdrLen:], chunk)
	return dataHdrLen + len(chunk)
}

// stampAck overwrites an encoded DATA packet's piggyback fields with the
// current cumulative ack and credit for the reverse direction and marks them
// valid. Called immediately before every (re)transmission of the packet.
func stampAck(b []byte, ack uint32, credit uint64) {
	b[3] |= flagAck
	binary.LittleEndian.PutUint32(b[dataAckOff:], ack)
	binary.LittleEndian.PutUint64(b[dataCreditOff:], credit)
}

// encodeAck writes a standalone ACK packet into b and returns its length.
func encodeAck(b []byte, src int, cumAck uint32, credit uint64) int {
	putCommon(b, pktAck)
	binary.LittleEndian.PutUint32(b[4:], uint32(src))
	binary.LittleEndian.PutUint32(b[8:], cumAck)
	binary.LittleEndian.PutUint64(b[12:], credit)
	return ackPktLen
}

// decodeData parses a DATA packet (after common-header validation).
func decodeData(b []byte) (dataPkt, bool) {
	if len(b) < dataHdrLen {
		return dataPkt{}, false
	}
	d := dataPkt{
		src:     int(binary.LittleEndian.Uint32(b[4:])),
		seq:     binary.LittleEndian.Uint32(b[8:]),
		fragOff: binary.LittleEndian.Uint32(b[12:]),
		msgLen:  binary.LittleEndian.Uint32(b[16:]),
		header:  binary.LittleEndian.Uint64(b[20:]),
		meta:    binary.LittleEndian.Uint64(b[28:]),
		chunk:   b[dataHdrLen:],
	}
	if b[3]&flagAck != 0 {
		d.hasAck = true
		d.pgAck = binary.LittleEndian.Uint32(b[dataAckOff:])
		d.pgCredit = binary.LittleEndian.Uint64(b[dataCreditOff:])
	}
	if int(d.fragOff)+len(d.chunk) > int(d.msgLen) {
		return dataPkt{}, false
	}
	return d, true
}

// decodeAck parses a standalone ACK packet.
func decodeAck(b []byte) (src int, cumAck uint32, credit uint64, ok bool) {
	if len(b) < ackPktLen {
		return 0, 0, 0, false
	}
	return int(binary.LittleEndian.Uint32(b[4:])),
		binary.LittleEndian.Uint32(b[8:]),
		binary.LittleEndian.Uint64(b[12:]),
		true
}
