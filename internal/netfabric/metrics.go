package netfabric

import (
	"fmt"

	"lcigraph/internal/fabric"
	"lcigraph/internal/telemetry"
)

// Per-flow gauge names. SRTT/RTO are published per peer (label `peer`) so a
// live scrape shows which link is slow, and cross-rank merges take the max —
// the cluster-wide worst link is what bounds rendezvous completion time.
const (
	MetricSRTT = "lci_net_srtt_ns"
	MetricRTO  = "lci_net_rto_ns"
)

// MetricStalls counts stall-detector firings: flows with no ack progress
// for StallRTOs retransmissions or starved of credit beyond
// CreditStallTimeout (one per episode).
const MetricStalls = "lci_net_stalls_total"

// MetricReaderShardRx counts wire datagrams handled per receive shard
// (label `shard`): a skewed distribution means the kernel's reuseport hash
// concentrated the peer set on few sockets.
const MetricReaderShardRx = "lci_net_reader_shard_rx_total"

// RegisterMetrics re-expresses the provider's counters under the canonical
// fabric/net names and adds per-flow SRTT and RTO gauges. The gauges read
// the live estimator under the flow lock only at snapshot time; nothing is
// added to the datagram hot path.
func (p *Provider) RegisterMetrics(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	fabric.RegisterStats(reg, p.Stats)
	reg.GaugeFunc(fabric.MetricRingPending, telemetry.AggSum, func() int64 { return int64(p.Pending()) })
	reg.CounterFunc(MetricStalls, p.stallWarns.Load)
	for _, s := range p.shards {
		s := s
		reg.CounterFunc(fmt.Sprintf(`%s{shard="%d"}`, MetricReaderShardRx, s.idx), s.rx.Load)
	}
	for _, fl := range p.flows {
		if fl == nil {
			continue
		}
		fl := fl
		label := fmt.Sprintf(`{peer="%d"}`, fl.peer)
		reg.GaugeFunc(MetricSRTT+label, telemetry.AggMax, func() int64 {
			fl.mu.Lock()
			defer fl.mu.Unlock()
			return fl.srtt.Nanoseconds()
		})
		reg.GaugeFunc(MetricRTO+label, telemetry.AggMax, func() int64 {
			fl.mu.Lock()
			defer fl.mu.Unlock()
			return fl.rto.Nanoseconds()
		})
	}
}

var _ fabric.MetricsRegistrar = (*Provider)(nil)
