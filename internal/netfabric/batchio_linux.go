//go:build linux && (amd64 || arm64)

// Vectored datagram I/O: sendmmsg/recvmmsg move a burst of datagrams per
// syscall instead of one, which is where most of the UDP provider's
// per-message cost over the simulated fabric went (DESIGN.md §10). The
// provider falls back to the portable one-datagram-per-syscall path when the
// socket cannot expose a raw descriptor or the kernel rejects the calls.
package netfabric

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"syscall"
	"unsafe"
)

// batchIOAvailable reports whether this build has a vectored I/O path at all.
const batchIOAvailable = true

// maxWireBatch bounds the datagrams passed to one sendmmsg call.
const maxWireBatch = 32

// mmsghdr mirrors struct mmsghdr on linux/{amd64,arm64}: a msghdr plus the
// kernel-filled datagram length, padded to 8 bytes.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// errBatchUnsupported marks a kernel/socket that cannot do vectored I/O;
// the provider downgrades to the single-syscall path permanently.
var errBatchUnsupported = errors.New("netfabric: vectored socket I/O unsupported")

// mmsgIO drives sendmmsg/recvmmsg over the provider's socket via its raw
// descriptor. Reads are reader-goroutine-only; writes are serialized by wmu
// (concurrent senders batch under the provider's transmit lock anyway).
type mmsgIO struct {
	rc   syscall.RawConn
	rsas [][]byte // encoded sockaddr per peer rank; nil at self

	rbufs  [][]byte // read buffers the rhdrs are bound to
	riovs  []syscall.Iovec
	rhdrs  []mmsghdr
	rctrls [][]byte // per-datagram ancillary buffers (UDP_GRO, SO_RXQ_OVFL)

	wmu    sync.Mutex
	wiovs  []syscall.Iovec
	whdrs  []mmsghdr
	wctrls [][]byte        // per-entry UDP_SEGMENT cmsg buffers for GSO trains
	tiovs  []syscall.Iovec // scatter-gather iovecs for writeTrains, grown on demand
}

// newBatchIO builds the vectored I/O driver, or returns nil when conn or the
// peer addresses cannot support it (non-UDP conn, exotic address family).
func newBatchIO(conn net.PacketConn, peers []net.Addr) *mmsgIO {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return nil
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return nil
	}
	m := &mmsgIO{rc: rc, rsas: make([][]byte, len(peers))}
	for r, a := range peers {
		if a == nil {
			continue
		}
		ua, ok := a.(*net.UDPAddr)
		if !ok {
			return nil
		}
		rsa := sockaddrBytes(ua)
		if rsa == nil {
			return nil
		}
		m.rsas[r] = rsa
	}
	m.wiovs = make([]syscall.Iovec, maxWireBatch)
	m.whdrs = make([]mmsghdr, maxWireBatch)
	m.wctrls = make([][]byte, maxWireBatch)
	for i := range m.wctrls {
		m.wctrls[i] = make([]byte, cmsgSpaceGSO)
	}
	return m
}

// newReadIO builds a read-only vectored driver for one reader-shard socket
// (no peer sockaddr table; writes always go through the primary driver).
func newReadIO(conn net.PacketConn) *mmsgIO {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return nil
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return nil
	}
	return &mmsgIO{rc: rc}
}

// sockaddrBytes encodes a UDP address as a raw kernel sockaddr.
func sockaddrBytes(a *net.UDPAddr) []byte {
	if ip4 := a.IP.To4(); ip4 != nil {
		var rsa syscall.RawSockaddrInet4
		rsa.Family = syscall.AF_INET
		rsa.Port = uint16(a.Port>>8) | uint16(a.Port&0xff)<<8 // network byte order
		copy(rsa.Addr[:], ip4)
		b := make([]byte, syscall.SizeofSockaddrInet4)
		copy(b, (*[syscall.SizeofSockaddrInet4]byte)(unsafe.Pointer(&rsa))[:])
		return b
	}
	if ip6 := a.IP.To16(); ip6 != nil {
		var rsa syscall.RawSockaddrInet6
		rsa.Family = syscall.AF_INET6
		rsa.Port = uint16(a.Port>>8) | uint16(a.Port&0xff)<<8
		copy(rsa.Addr[:], ip6)
		b := make([]byte, syscall.SizeofSockaddrInet6)
		copy(b, (*[syscall.SizeofSockaddrInet6]byte)(unsafe.Pointer(&rsa))[:])
		return b
	}
	return nil
}

// bindRead points the receive headers at the reader's buffer set once; the
// buffers are reused across readBatch calls.
func (m *mmsgIO) bindRead(bufs [][]byte) {
	m.rbufs = bufs
	m.riovs = make([]syscall.Iovec, len(bufs))
	m.rhdrs = make([]mmsghdr, len(bufs))
	m.rctrls = make([][]byte, len(bufs))
	for i, b := range bufs {
		m.riovs[i].Base = &b[0]
		m.riovs[i].SetLen(len(b))
		m.rhdrs[i].hdr.Iov = &m.riovs[i]
		m.rhdrs[i].hdr.Iovlen = 1
		m.rctrls[i] = make([]byte, rxCtrlLen)
		m.rhdrs[i].hdr.Control = &m.rctrls[i][0]
	}
}

// readBatch pulls up to len(m.rbufs) datagrams in one recvmmsg, blocking
// until at least one arrives or the conn's read deadline expires (the error
// then satisfies net.Error.Timeout, like ReadFrom). sizes[i] receives the
// i-th datagram's length and cms[i] its parsed ancillary data (GRO segment
// size, kernel drop count). Returns errBatchUnsupported when the kernel
// refuses the syscall so the caller can downgrade.
func (m *mmsgIO) readBatch(sizes []int, cms []rxCmsg) (int, error) {
	// The kernel overwrites msg_controllen per message; re-arm every entry.
	for i := range m.rhdrs {
		m.rhdrs[i].hdr.SetControllen(rxCtrlLen)
	}
	n := 0
	var operr error
	err := m.rc.Read(func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&m.rhdrs[0])), uintptr(len(m.rhdrs)),
			syscall.MSG_DONTWAIT, 0, 0)
		switch e {
		case 0:
			n = int(r)
		case syscall.EAGAIN:
			return false // wait for readability (respects the read deadline)
		case syscall.EINTR:
			return false
		case syscall.ENOSYS, syscall.EOPNOTSUPP:
			operr = errBatchUnsupported
		default:
			operr = e
		}
		return true
	})
	runtime.KeepAlive(m.rbufs)
	runtime.KeepAlive(m.rctrls)
	if err != nil {
		return 0, err // deadline exceeded or socket closed
	}
	if operr != nil {
		return 0, operr
	}
	for i := 0; i < n; i++ {
		sizes[i] = int(m.rhdrs[i].len)
		if cl := m.rhdrs[i].hdr.Controllen; cl > 0 {
			cms[i] = parseRxCmsg(m.rctrls[i][:cl])
		} else {
			cms[i] = rxCmsg{}
		}
	}
	return n, nil
}

// writeBatch sends pkts[i] to peer rank dsts[i], batching up to maxWireBatch
// datagrams per sendmmsg. A full socket buffer waits for writability; any
// other kernel refusal is returned so the caller can fall back to WriteTo
// (re-sending a prefix twice is harmless — the reliability layer dedups).
func (m *mmsgIO) writeBatch(pkts [][]byte, dsts []int) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	for off := 0; off < len(pkts); {
		batch := len(pkts) - off
		if batch > maxWireBatch {
			batch = maxWireBatch
		}
		for i := 0; i < batch; i++ {
			pk := pkts[off+i]
			rsa := m.rsas[dsts[off+i]]
			m.wiovs[i].Base = &pk[0]
			m.wiovs[i].SetLen(len(pk))
			h := &m.whdrs[i].hdr
			h.Name = &rsa[0]
			h.Namelen = uint32(len(rsa))
			h.Iov = &m.wiovs[i]
			h.Iovlen = 1
			h.Control = nil // headers are shared with writeTrains
			h.SetControllen(0)
			m.whdrs[i].len = 0
		}
		sent := 0
		var operr error
		err := m.rc.Write(func(fd uintptr) bool {
			r, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&m.whdrs[0])), uintptr(batch),
				syscall.MSG_DONTWAIT, 0, 0)
			switch e {
			case 0:
				sent = int(r)
			case syscall.EAGAIN, syscall.EINTR:
				return false // wait for writability
			case syscall.ENOSYS, syscall.EOPNOTSUPP:
				operr = errBatchUnsupported
			default:
				operr = e
			}
			return true
		})
		runtime.KeepAlive(pkts)
		if err != nil {
			return err
		}
		if operr != nil {
			return operr
		}
		if sent <= 0 {
			return errBatchUnsupported // zero progress: do not spin here
		}
		off += sent
	}
	return nil
}

// writeTrains sends a burst of GSO trains, batching up to maxWireBatch
// kernel entries per sendmmsg. Each train's datagrams are passed as one
// iovec per packet — the kernel gathers them, so no user-space assembly
// copy — and multi-segment trains carry a UDP_SEGMENT cmsg telling it to
// re-split the gathered payload into wire datagrams of seg bytes. Any
// refusal other than back-pressure is returned so the caller can downgrade
// to plain vectored I/O and re-send (a duplicated prefix is harmless — the
// window dedups).
func (m *mmsgIO) writeTrains(trains []gsoTrain) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	for off := 0; off < len(trains); {
		batch := len(trains) - off
		if batch > maxWireBatch {
			batch = maxWireBatch
		}
		// Size the iovec block first: header Iov pointers must stay stable,
		// so the slice cannot grow while being filled.
		need := 0
		for i := 0; i < batch; i++ {
			need += len(trains[off+i].pkts)
		}
		if cap(m.tiovs) < need {
			m.tiovs = make([]syscall.Iovec, need)
		}
		m.tiovs = m.tiovs[:need]
		base := 0
		for i := 0; i < batch; i++ {
			tr := trains[off+i]
			rsa := m.rsas[tr.dst]
			for k, pk := range tr.pkts {
				m.tiovs[base+k].Base = &pk[0]
				m.tiovs[base+k].SetLen(len(pk))
			}
			h := &m.whdrs[i].hdr
			h.Name = &rsa[0]
			h.Namelen = uint32(len(rsa))
			h.Iov = &m.tiovs[base]
			h.Iovlen = uint64(len(tr.pkts))
			if tr.n > 1 {
				ctrl := m.wctrls[i]
				h.Control = &ctrl[0]
				h.SetControllen(putGSOSegment(ctrl, uint16(tr.seg)))
			} else {
				h.Control = nil
				h.SetControllen(0)
			}
			m.whdrs[i].len = 0
			base += len(tr.pkts)
		}
		sent := 0
		var operr error
		err := m.rc.Write(func(fd uintptr) bool {
			r, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&m.whdrs[0])), uintptr(batch),
				syscall.MSG_DONTWAIT, 0, 0)
			switch e {
			case 0:
				sent = int(r)
			case syscall.EAGAIN, syscall.EINTR:
				return false // wait for writability
			default:
				// EINVAL/EIO etc.: the kernel rejected a segment train —
				// report it so the provider retires the GSO tier.
				operr = errBatchUnsupported
			}
			return true
		})
		runtime.KeepAlive(trains)
		runtime.KeepAlive(m.wctrls)
		if err != nil {
			return err
		}
		if operr != nil {
			return operr
		}
		if sent <= 0 {
			return errBatchUnsupported
		}
		off += sent
	}
	return nil
}
