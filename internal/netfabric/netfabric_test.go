package netfabric

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"lcigraph/internal/fabric"
)

// pair builds a 2-provider loopback group and registers cleanup.
func pair(t *testing.T, cfg Config) (*Provider, *Provider) {
	t.Helper()
	provs, err := NewLoopbackGroup(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { CloseGroup(provs) })
	return provs[0], provs[1]
}

// pollOne polls until a frame arrives or the deadline passes.
func pollOne(t *testing.T, p *Provider, d time.Duration) *fabric.Frame {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if f := p.Poll(); f != nil {
			return f
		}
		runtime.Gosched()
	}
	t.Fatalf("rank %d: no frame within %v", p.Rank(), d)
	return nil
}

// sendRetry retries ErrResource (the contract every upper layer follows),
// draining dst so credits replenish.
func sendRetry(t *testing.T, src, dst *Provider, to int, header, meta uint64, data []byte, sink func(*fabric.Frame)) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := src.Send(to, header, meta, data)
		if err == nil {
			return
		}
		if err != fabric.ErrResource {
			t.Fatalf("send: %v", err)
		}
		if f := dst.Poll(); f != nil {
			sink(f)
		}
		if time.Now().After(deadline) {
			t.Fatal("send stalled beyond deadline")
		}
		runtime.Gosched()
	}
}

// pattern fills a deterministic payload for message i of size n.
func pattern(i, n int) []byte {
	b := make([]byte, n)
	for j := range b {
		b[j] = byte(i*31 + j)
	}
	return b
}

func TestSendRecvSizes(t *testing.T) {
	a, b := pair(t, Config{})
	sizes := []int{0, 1, 7, 100, 1363, 1364, 1365, 4000, 8192} // around the 1400-36 chunk boundary
	for i, n := range sizes {
		if err := a.Send(1, uint64(1000+i), uint64(2000+i), pattern(i, n)); err != nil {
			t.Fatalf("send %d bytes: %v", n, err)
		}
	}
	for i, n := range sizes {
		f := pollOne(t, b, 5*time.Second)
		if f.Src != 0 || f.Header != uint64(1000+i) || f.Meta != uint64(2000+i) {
			t.Fatalf("msg %d: src=%d header=%d meta=%d", i, f.Src, f.Header, f.Meta)
		}
		if len(f.Data) != n || !bytes.Equal(f.Data, pattern(i, n)) {
			t.Fatalf("msg %d: payload mismatch (%d bytes, want %d)", i, len(f.Data), n)
		}
		f.Release()
	}
	if st := a.Stats(); st.SendFrames != int64(len(sizes)) {
		t.Fatalf("sender frames = %d, want %d", st.SendFrames, len(sizes))
	}
}

func TestSelfSend(t *testing.T) {
	a, _ := pair(t, Config{})
	want := pattern(3, 500)
	if err := a.Send(0, 7, 8, want); err != nil {
		t.Fatal(err)
	}
	f := pollOne(t, a, time.Second)
	if f.Src != 0 || !bytes.Equal(f.Data, want) {
		t.Fatalf("self frame src=%d len=%d", f.Src, len(f.Data))
	}
	f.Release()
}

func TestNoRDMA(t *testing.T) {
	a, _ := pair(t, Config{})
	if a.HasRDMA() {
		t.Fatal("UDP provider claims RDMA")
	}
	if err := a.Put(1, 0, 0, []byte("x"), 0); err != fabric.ErrNoRDMA {
		t.Fatalf("Put = %v, want ErrNoRDMA", err)
	}
}

func TestCreditBackpressure(t *testing.T) {
	a, b := pair(t, Config{Credits: 8, Window: 64})
	// Fill the peer's credit quota without the consumer releasing anything.
	sent := 0
	deadline := time.Now().Add(5 * time.Second)
	var err error
	for time.Now().Before(deadline) {
		err = a.Send(1, uint64(sent), 0, []byte("m"))
		if err == fabric.ErrResource {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sent++
		if sent > 1000 {
			t.Fatal("never hit back-pressure with Credits=8")
		}
	}
	if err != fabric.ErrResource {
		t.Fatalf("expected ErrResource, got %v after %d sends", err, sent)
	}
	if sent < 8 {
		t.Fatalf("stalled after only %d sends (credit window is 8)", sent)
	}
	if st := a.Stats(); st.CreditStalls == 0 && st.SendRetries == 0 {
		t.Fatal("no stall counted")
	}
	// Consume everything; the credit refresh must un-stall the sender.
	for got := 0; got < sent; {
		f := pollOne(t, b, 5*time.Second)
		f.Release()
		got++
	}
	var ok bool
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := a.Send(1, 99, 0, []byte("again")); err == nil {
			ok = true
			break
		} else if err != fabric.ErrResource {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if !ok {
		t.Fatal("sender never un-stalled after credits were released")
	}
	pollOne(t, b, 5*time.Second).Release()
}

func TestLossDupReorderRecovery(t *testing.T) {
	const n = 1500
	a, b := pair(t, Config{
		RTO:   time.Millisecond,
		Fault: Fault{Loss: 0.08, Dup: 0.04, Reorder: 0.04, Seed: 42},
	})
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			size := (i * 131) % 3000 // exercises single- and multi-fragment paths
			want := pattern(i, size)
			deadline := time.Now().Add(30 * time.Second)
			for {
				f := b.Poll()
				if f == nil {
					if time.Now().After(deadline) {
						done <- fmt.Errorf("receiver timed out at message %d", i)
						return
					}
					runtime.Gosched()
					continue
				}
				if f.Header != uint64(i) {
					done <- fmt.Errorf("msg %d: out-of-order header %d", i, f.Header)
					return
				}
				if !bytes.Equal(f.Data, want) {
					done <- fmt.Errorf("msg %d: payload mismatch", i)
					return
				}
				f.Release()
				break
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		size := (i * 131) % 3000
		data := pattern(i, size)
		for {
			err := a.Send(1, uint64(i), 0, data)
			if err == nil {
				break
			}
			if err != fabric.ErrResource {
				t.Fatal(err)
			}
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Retransmits == 0 {
		t.Fatal("8% loss produced zero retransmits")
	}
	if st.PacketsDropped == 0 {
		t.Fatal("fault injection counted zero drops")
	}
	t.Logf("retransmits=%d dropped=%d acksSent=%d creditStalls=%d",
		st.Retransmits, st.PacketsDropped, st.AcksSent, st.CreditStalls)
}

// TestCloseDrainsUnacked: a sender that closes immediately after its last
// sends (the shape of a rank finishing the job's final collective) must not
// strand dropped datagrams — Close keeps the retransmit machinery alive
// until every packet is acked, so the receiver still gets everything.
func TestCloseDrainsUnacked(t *testing.T) {
	a, b := pair(t, Config{
		RTO:   time.Millisecond,
		Fault: Fault{Loss: 0.3, Seed: 7},
	})
	const n = 50
	for i := 0; i < n; i++ {
		sendRetry(t, a, b, 1, uint64(i), 0, pattern(i, 64), func(f *fabric.Frame) { f.Release() })
	}
	a.Close() // must block until the window is empty, not race the wire
	for _, fl := range a.flows {
		if fl == nil {
			continue
		}
		fl.mu.Lock()
		left := fl.unacked.len()
		fl.mu.Unlock()
		if left > 0 {
			t.Errorf("peer %d: Close returned with %d unacked packets", fl.peer, left)
		}
	}
	// Everything the closed sender injected must be deliverable with no
	// further help from it.
	for i := 0; i < n; i++ {
		f := pollOne(t, b, 5*time.Second)
		if f.Header != uint64(i) {
			t.Fatalf("msg %d: header %d", i, f.Header)
		}
		f.Release()
	}
}

// TestCorruptFragmentDropped: a spoofed in-window datagram whose fragOff
// disagrees with the head fragment that sized the assembly buffer must be
// counted as dropped, not crash the reader with a slice panic.
func TestCorruptFragmentDropped(t *testing.T) {
	_, b := pair(t, Config{})
	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	buf := make([]byte, 2048)
	// Head fragment of a 2000-byte message claiming to come from rank 0.
	n := encodeData(buf, 0, 0, 0, 2000, 1, 2, make([]byte, 1364))
	if _, err := raw.WriteTo(buf[:n], b.Addr()); err != nil {
		t.Fatal(err)
	}
	// Second fragment is self-consistent (passes decodeData) but indexes
	// far past the head's 2000-byte assembly buffer.
	n = encodeData(buf, 0, 1, 5000, 8192, 1, 2, make([]byte, 100))
	if _, err := raw.WriteTo(buf[:n], b.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().PacketsDropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("corrupt fragment never counted as dropped")
		}
		runtime.Gosched()
	}
	if f := b.Poll(); f != nil {
		t.Fatalf("corrupt message was delivered: header=%d len=%d", f.Header, len(f.Data))
	}
}

func TestFrameConservation(t *testing.T) {
	a, b := pair(t, Config{})
	for i := 0; i < 200; i++ {
		sendRetry(t, a, b, 1, uint64(i), 0, pattern(i, 64), func(f *fabric.Frame) { f.Release() })
	}
	st := a.Stats()
	recv := b.Stats()
	for got := recv.FramesRecycled; got < st.SendFrames; got = b.Stats().FramesRecycled {
		f := pollOne(t, b, 5*time.Second)
		f.Release()
	}
	if got := b.Stats().FramesRecycled; got != st.SendFrames {
		t.Fatalf("recycled %d frames, sent %d", got, st.SendFrames)
	}
}
