package netfabric

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"lcigraph/internal/fabric"
	"lcigraph/internal/tracing"
)

// tsBuf is a goroutine-safe dump sink: housekeep dumps from the reader
// goroutine while the test polls the contents.
type tsBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *tsBuf) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *tsBuf) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// waitStall polls until p's stall counter reaches n or the deadline passes.
func waitStall(t *testing.T, p *Provider, n int64, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if p.stallWarns.Load() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("stall detector did not fire within %v (stalls=%d)", d, p.stallWarns.Load())
}

// TestCreditStallWarning starves a flow of receiver credit (the peer never
// releases its frames) and expects exactly one structured warning per
// episode: the stalls counter bumps, and the flight-recorder dump carries
// the credit-stall event trail.
func TestCreditStallWarning(t *testing.T) {
	tr := tracing.New(0, 512)
	var dump tsBuf
	tr.SetDumpWriter(&dump)
	a, _ := pair(t, Config{
		Credits:            4,
		Window:             64,
		CreditStallTimeout: 20 * time.Millisecond,
		Tracer:             tr,
	})

	// Exhaust the peer's advertised credit; b never polls, so nothing is
	// ever consumed and no credit refresh can arrive.
	for i := 0; ; i++ {
		if err := a.Send(1, uint64(i), 0, []byte("m")); err == fabric.ErrResource {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if i > 64 {
			t.Fatal("credit quota never exhausted")
		}
	}

	waitStall(t, a, 1, 5*time.Second)
	out := dump.String()
	for _, want := range []string{"credit-stall", "stall-warn", "zero send credit"} {
		if !strings.Contains(out, want) {
			t.Errorf("flight dump missing %q:\n%s", want, out)
		}
	}

	// One warning per episode: the latch must hold while the starvation
	// persists.
	time.Sleep(60 * time.Millisecond)
	if n := a.stallWarns.Load(); n != 1 {
		t.Fatalf("stalls = %d after continued starvation, want 1 (episode latch broken)", n)
	}
}

// TestAckStallWarning kills the peer's socket so retransmissions burn
// through StallRTOs attempts with no ack progress, and expects the no-ack
// warning plus retransmit events in the ring.
func TestAckStallWarning(t *testing.T) {
	tr := tracing.New(0, 512)
	var dump tsBuf
	tr.SetDumpWriter(&dump)
	a, b := pair(t, Config{
		RTO:       5 * time.Millisecond,
		MinRTO:    5 * time.Millisecond,
		MaxRTO:    20 * time.Millisecond,
		FixedRTO:  true,
		StallRTOs: 4,
		Tracer:    tr,
	})

	// Tear down b's socket outright: a's packets now land nowhere and no
	// ack can ever come back.
	b.conn.Close()
	if err := a.Send(1, 42, 0, []byte("into the void")); err != nil {
		t.Fatal(err)
	}

	waitStall(t, a, 1, 5*time.Second)
	out := dump.String()
	for _, want := range []string{"stall-warn", "retransmit", "no ack progress"} {
		if !strings.Contains(out, want) {
			t.Errorf("flight dump missing %q:\n%s", want, out)
		}
	}
	if a.retransmits.Load() < int64(4) {
		t.Fatalf("retransmits = %d, want >= StallRTOs", a.retransmits.Load())
	}

	// onAck clearing the latch is what re-arms the detector; with the peer
	// gone the latch must hold and the counter stay at one for this flow.
	time.Sleep(100 * time.Millisecond)
	if n := a.stallWarns.Load(); n != 1 {
		t.Fatalf("stalls = %d with peer still dead, want 1", n)
	}
}

// TestStallCounterWithoutTracer: the detector is wired to telemetry, not
// tracing — with a nil tracer the stalls counter must still move.
func TestStallCounterWithoutTracer(t *testing.T) {
	a, b := pair(t, Config{
		RTO:       5 * time.Millisecond,
		MinRTO:    5 * time.Millisecond,
		MaxRTO:    20 * time.Millisecond,
		FixedRTO:  true,
		StallRTOs: 3,
	})
	if a.tr != nil {
		t.Skip("LCI_TRACE set in the environment; dark-path test not meaningful")
	}
	b.conn.Close()
	if err := a.Send(1, 1, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitStall(t, a, 1, 5*time.Second)
}

// TestDrainFlushesFinalAck: a clean shutdown where one side has nothing
// unacked must still deliver the other side's final ack — the peer's Close
// should drain fully rather than time out.
func TestDrainFlushesFinalAck(t *testing.T) {
	a, b := pair(t, Config{DrainTimeout: 2 * time.Second})
	if err := a.Send(1, 5, 0, []byte("last message")); err != nil {
		t.Fatal(err)
	}
	f := pollOne(t, b, 5*time.Second)
	f.Release()
	// b consumed the frame but its delayed ack may still be parked; its
	// drain must flush it so a's drain sees the window empty.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if !a.drain() {
		t.Fatal("a's drain timed out; final ack was never flushed")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("drain took %v, should complete promptly once the ack lands", d)
	}
}
