//go:build linux

package netfabric

// The stdlib syscall table for linux/amd64 was frozen before sendmmsg
// (kernel 3.0) was assigned, so the numbers are spelled out here.
const (
	sysRecvmmsg uintptr = 299
	sysSendmmsg uintptr = 307
)
