//go:build !(linux && (amd64 || arm64))

package netfabric

import (
	"errors"
	"net"
)

// batchIOAvailable reports whether this build has a vectored I/O path at all.
const batchIOAvailable = false

// maxWireBatch bounds the datagrams passed to one flush (parity with the
// Linux build; the portable path still issues one syscall per datagram).
const maxWireBatch = 32

var errBatchUnsupported = errors.New("netfabric: vectored socket I/O unsupported")

// mmsgIO is unavailable off Linux: the provider always uses the portable
// one-datagram-per-syscall path. The type exists so provider code compiles
// identically; newBatchIO/newReadIO never hand out an instance.
type mmsgIO struct{}

func newBatchIO(net.PacketConn, []net.Addr) *mmsgIO { return nil }

func newReadIO(net.PacketConn) *mmsgIO { return nil }

func (m *mmsgIO) bindRead([][]byte) {}

func (m *mmsgIO) readBatch([]int, []rxCmsg) (int, error) { return 0, errBatchUnsupported }

func (m *mmsgIO) writeBatch([][]byte, []int) error { return errBatchUnsupported }

func (m *mmsgIO) writeTrains([]gsoTrain) error { return errBatchUnsupported }
