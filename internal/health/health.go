// Package health is the cluster health monitor (DESIGN.md §16): the layer
// that turns the raw observability signals — the telemetry registry (PR 4)
// and the lifecycle tracer (PR 5) — into judgments an operator can act on.
//
// Each rank runs a Monitor that samples its registry on a ticker into
// bounded ring-buffer time series (rates from counters, windowed p50/p99
// from histograms, levels from gauges) and runs detectors over them:
// per-shard progress-stall scoring, transport stall trends, and serving SLO
// burn (p99 latency, shed fraction) with hysteresis so an alert latches
// once per episode. Non-zero ranks additionally post compact heartbeat
// digests to rank 0 over the communication layer itself on a reserved tag
// (cluster.HealthTag), so rank 0 holds a cluster-wide view — per-rank
// status, superstep straggler/skew scores, missed-heartbeat detection —
// even when a peer's HTTP endpoint is unreachable.
//
// The judgments surface four ways: /healthz (machine-readable
// OK/DEGRADED/UNHEALTHY, HTTP 200/503), /debug/health.json (full
// time-series + the cluster view cmd/lci-top renders live), a structured
// JSONL ops-event log (alert fired/cleared, status transitions), and a
// one-screen summary appended to every flight-recorder dump.
//
// Threading model: the sampling ticker runs on the Monitor's own goroutine
// and never touches the comm layer. All layer traffic happens in Pump,
// which the layer-owning goroutine calls from its loop (abelian's EndRound,
// serve's coordinator/worker loops) per the AsyncLayer single-driver
// contract; Pump rate-limits itself, so calling it every iteration is free.
package health

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lcigraph/internal/telemetry"
	"lcigraph/internal/tracing"
)

// Status is a rank's (or, on rank 0, the cluster's) health judgment.
type Status int

const (
	StatusOK        Status = iota // no active alerts
	StatusDegraded                // at least one warn-severity alert active
	StatusUnhealthy               // at least one critical-severity alert active
)

func (s Status) String() string {
	switch s {
	case StatusDegraded:
		return "DEGRADED"
	case StatusUnhealthy:
		return "UNHEALTHY"
	default:
		return "OK"
	}
}

// MarshalJSON renders the status as its string form.
func (s Status) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON accepts the string form (digest decoding).
func (s *Status) UnmarshalJSON(b []byte) error {
	switch strings.Trim(string(b), `"`) {
	case "DEGRADED":
		*s = StatusDegraded
	case "UNHEALTHY":
		*s = StatusUnhealthy
	default:
		*s = StatusOK
	}
	return nil
}

// Alert severities.
const (
	SevWarn     = "warn"     // → DEGRADED
	SevCritical = "critical" // → UNHEALTHY
)

// Alert is one active (or digest-carried) health judgment.
type Alert struct {
	Name     string  `json:"name"`     // detector, e.g. "progress_stall"
	Rank     int     `json:"rank"`     // rank the alert is about
	Shard    int     `json:"shard"`    // progress shard, -1 when not shard-scoped
	Severity string  `json:"severity"` // SevWarn | SevCritical
	Detail   string  `json:"detail"`   // human-readable, names rank and shard
	Value    float64 `json:"value"`    // the measurement that tripped it
	SinceNs  int64   `json:"since_ns"` // UnixNano of the episode start
}

// key identifies an alert episode for hysteresis latching.
func (a Alert) key() string {
	return fmt.Sprintf("%s/r%d/s%d", a.Name, a.Rank, a.Shard)
}

// SLO tunes the detectors. Zero values select defaults chosen so a healthy
// lossy-UDP soak (the CI configuration: 4 ranks, 5% loss) stays at zero
// latched alerts, while a wedged progress shard or a genuinely burning
// serving budget trips within a few ticks.
type SLO struct {
	// ServeP99 is the serving latency budget evaluated over each window's
	// delta histogram (default 2s — far above a lossy tail, squarely below
	// a hung query).
	ServeP99 time.Duration
	// ShedFraction alerts when shed/(ok+shed+error) over a window exceeds
	// it (default 0.5: most admission decisions bouncing).
	ShedFraction float64
	// MinSamples gates both serving detectors: windows with fewer admitted
	// queries are skipped (default 50).
	MinSamples int64
	// SkewFactor alerts when the worst rank's barrier-wait share of a
	// window exceeds SkewFraction AND is SkewFactor× the rank mean
	// (default 3).
	SkewFactor float64
	// SkewFraction is the absolute significance floor for the skew
	// detector: the worst rank must spend at least this fraction of the
	// window waiting at barriers (default 0.5).
	SkewFraction float64
	// EnterTicks consecutive bad evaluations latch an alert (default 2);
	// ClearTicks consecutive good ones clear it (default 5).
	EnterTicks, ClearTicks int
	// MissedBeats heartbeat intervals without a digest from a peer flip it
	// to rank_stuck (default 3). Only evaluated while rank 0's own Pump is
	// live, so idle phases (no loop driving the layer) never false-alarm.
	MissedBeats int
}

func (s *SLO) fill() {
	if s.ServeP99 <= 0 {
		s.ServeP99 = 2 * time.Second
	}
	if s.ShedFraction <= 0 {
		s.ShedFraction = 0.5
	}
	if s.MinSamples <= 0 {
		s.MinSamples = 50
	}
	if s.SkewFactor <= 0 {
		s.SkewFactor = 3
	}
	if s.SkewFraction <= 0 {
		s.SkewFraction = 0.5
	}
	if s.EnterTicks <= 0 {
		s.EnterTicks = 2
	}
	if s.ClearTicks <= 0 {
		s.ClearTicks = 5
	}
	if s.MissedBeats <= 0 {
		s.MissedBeats = 3
	}
}

// Options configures a Monitor.
type Options struct {
	Rank, Ranks int
	// Interval is the sampling tick (default 1s). Heartbeats ride the same
	// period.
	Interval time.Duration
	// Window is the ring capacity per series in points (default 120 — two
	// minutes of history at the default tick).
	Window int
	// MaxSeries bounds distinct series; beyond it new signals are counted
	// as dropped, not stored (default 256).
	MaxSeries int
	// Reg is the registry to sample. A nil or disabled registry yields a
	// monitor that only tracks NoteRound/heartbeat state.
	Reg *telemetry.Registry
	// Tracer, when set, gets the one-screen Summary appended to its flight
	// dumps (SetDumpExtra).
	Tracer *tracing.Tracer
	// OpsLogPath, when non-empty, appends structured JSONL ops events
	// (rank 0 is the natural place: it sees cluster-wide transitions).
	OpsLogPath string
	SLO        SLO
}

func (o *Options) fill() {
	if o.Ranks <= 0 {
		o.Ranks = 1
	}
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Window <= 0 {
		o.Window = 120
	}
	if o.MaxSeries <= 0 {
		o.MaxSeries = 256
	}
	o.SLO.fill()
}

// Monitor is one rank's health monitor. All exported methods are safe on a
// nil receiver (no-ops / zero values), so wiring can be unconditional.
type Monitor struct {
	opt  Options
	stop chan struct{}
	done chan struct{}

	started   atomic.Bool
	closeOnce sync.Once

	// BSP round signal fed by abelian.Runtime.EndRound via NoteRound.
	rounds    atomic.Int64
	barrierNs atomic.Int64

	// lastPumpNs gates the cluster detectors: missed-heartbeat judgments
	// are only valid while something is driving the layer.
	lastPumpNs atomic.Int64

	mu            sync.Mutex
	series        map[string]*Series
	seriesDropped int64
	prev          *telemetry.Snapshot
	prevAt        time.Time
	tick          int64
	alerts        map[string]*alertState
	firedTotal    int64
	status        Status
	det           detectState
	peers         map[int]*peerState // rank 0: latest digest per peer rank
	seenRemote    map[string]Alert   // rank 0: remote alert episodes observed

	// Heartbeat state owned by the layer goroutine (Pump); never touched
	// by the ticker.
	hb pumpState

	// alertHook (func(Alert)) and pumpHook (func()) let the incident
	// recorder observe alert latches and ride the existing Pump call sites
	// in abelian/serve without new wiring there. Hooks fire outside mu.
	alertHook atomic.Value
	pumpHook  atomic.Value

	// pendingFired collects alerts latched under mu this tick; sample()
	// fires them to the alert hook after unlock so the hook may call back
	// into the monitor.
	pendingFired []Alert

	ops *OpsLog
}

// SetAlertHook registers fn to be called (outside the monitor's lock) each
// time an alert episode latches — locally or, on rank 0, via a peer digest.
// One hook; nil clears it. The incident recorder uses this as its trigger.
func (m *Monitor) SetAlertHook(fn func(Alert)) {
	if m == nil {
		return
	}
	m.alertHook.Store(fn)
}

// SetPumpHook registers fn to be called at the top of every Pump, on the
// layer-owning goroutine. One hook; nil clears it. The incident recorder
// rides this to drive its own reserved-tag traffic through the call sites
// that already pump the monitor.
func (m *Monitor) SetPumpHook(fn func()) {
	if m == nil {
		return
	}
	m.pumpHook.Store(fn)
}

func (m *Monitor) fireAlertHook(alerts []Alert) {
	if len(alerts) == 0 {
		return
	}
	hook, _ := m.alertHook.Load().(func(Alert))
	if hook == nil {
		return
	}
	for _, a := range alerts {
		hook(a)
	}
}

// OpsEvent appends one structured event to the monitor's ops log (nil-safe,
// no-op without a configured log). The incident recorder announces bundle
// writes through it so captures land in the same durable JSONL stream as
// the alerts that triggered them.
func (m *Monitor) OpsEvent(kind string, fields map[string]any) {
	if m == nil {
		return
	}
	m.ops.Event(kind, fields)
}

// New builds a monitor. Call Start to begin sampling and Close to stop.
func New(opt Options) *Monitor {
	opt.fill()
	m := &Monitor{
		opt:        opt,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		series:     map[string]*Series{},
		alerts:     map[string]*alertState{},
		peers:      map[int]*peerState{},
		seenRemote: map[string]Alert{},
	}
	if opt.OpsLogPath != "" {
		ops, err := OpenOpsLog(opt.OpsLogPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "health: ops log: %v\n", err)
		} else {
			m.ops = ops
		}
	}
	return m
}

// Start begins the sampling ticker and registers the flight-dump summary.
// Second and later calls are no-ops.
func (m *Monitor) Start() {
	if m == nil || !m.started.CompareAndSwap(false, true) {
		return
	}
	if m.opt.Tracer != nil {
		m.opt.Tracer.SetDumpExtra(m.Summary)
	}
	m.ops.Event("monitor_start", map[string]any{
		"rank": m.opt.Rank, "ranks": m.opt.Ranks,
		"interval_ms": m.opt.Interval.Milliseconds(),
	})
	go m.run()
}

// Close stops the ticker, flushes the ops log, and detaches from the
// tracer. Call it before tearing down the comm layer — a stopped progress
// loop is indistinguishable from a wedged one.
func (m *Monitor) Close() {
	if m == nil {
		return
	}
	m.closeOnce.Do(func() {
		close(m.stop)
		if m.started.Load() {
			<-m.done
		}
		if m.opt.Tracer != nil {
			m.opt.Tracer.SetDumpExtra(nil)
		}
		m.mu.Lock()
		st, fired := m.status, m.firedTotal
		m.mu.Unlock()
		m.ops.Event("monitor_stop", map[string]any{
			"rank": m.opt.Rank, "status": st.String(), "fired_total": fired,
		})
		m.ops.Close()
	})
}

// NoteRound accounts one completed BSP round and its barrier wait — the
// superstep straggler signal. Safe from the round-driving goroutine.
func (m *Monitor) NoteRound(barrier time.Duration) {
	if m == nil {
		return
	}
	m.rounds.Add(1)
	m.barrierNs.Add(barrier.Nanoseconds())
}

// Status returns the current judgment: on rank 0 the cluster-wide one,
// elsewhere the local one.
func (m *Monitor) Status() Status {
	if m == nil {
		return StatusOK
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.statusLocked(time.Now())
}

// FiredTotal returns how many alert episodes have latched since start
// (local ones, plus — on rank 0 — remote episodes observed via digests).
func (m *Monitor) FiredTotal() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.firedTotal
}

// ActiveAlerts returns the currently active alerts: local ones plus, on
// rank 0, the active alerts carried by the latest peer digests.
func (m *Monitor) ActiveAlerts() []Alert {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.activeAlertsLocked()
}

func (m *Monitor) activeAlertsLocked() []Alert {
	var out []Alert
	for _, st := range m.alerts {
		if st.active {
			out = append(out, st.alert)
		}
	}
	for _, p := range m.peers {
		out = append(out, p.d.Alerts...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// statusLocked computes the judgment from active alerts (and, on rank 0,
// peer digest statuses).
func (m *Monitor) statusLocked(now time.Time) Status {
	st := StatusOK
	worse := func(s Status) {
		if s > st {
			st = s
		}
	}
	for _, a := range m.alerts {
		if !a.active {
			continue
		}
		if a.alert.Severity == SevCritical {
			worse(StatusUnhealthy)
		} else {
			worse(StatusDegraded)
		}
	}
	for _, p := range m.peers {
		// A stale digest's status still stands until rank_stuck replaces it.
		worse(p.d.Status)
	}
	return st
}

// run is the sampling loop.
func (m *Monitor) run() {
	defer close(m.done)
	t := time.NewTicker(m.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			m.sample(now)
		}
	}
}

// sample takes one tick: snapshot the registry, derive series, run the
// detectors, update status, emit ops events on transitions.
func (m *Monitor) sample(now time.Time) {
	var snap *telemetry.Snapshot
	if m.opt.Reg.Enabled() {
		snap = m.opt.Reg.Snapshot()
	}
	m.mu.Lock()
	m.tick++
	prevStatus := m.statusLocked(now)
	dt := now.Sub(m.prevAt).Seconds()
	if m.prev != nil && snap != nil && dt > 0 {
		m.deriveSeries(now, snap, dt)
		m.detectLocal(now, snap, dt)
	}
	// BSP signal series (rates even when the registry is dark).
	m.recordSeries(now, "health:rounds_total", float64(m.rounds.Load()))
	if m.opt.Rank == 0 {
		m.detectCluster(now)
	}
	m.prev, m.prevAt = snap, now
	newStatus := m.statusLocked(now)
	fired := m.pendingFired
	m.pendingFired = nil
	m.mu.Unlock()
	if newStatus != prevStatus {
		m.ops.Event("status_changed", map[string]any{
			"rank": m.opt.Rank, "from": prevStatus.String(), "to": newStatus.String(),
		})
	}
	m.fireAlertHook(fired)
}

// deriveSeries folds one snapshot delta into the ring-buffer series:
// counters become rates, gauges levels, and latency histograms windowed
// p50/p99 trajectories plus an observation rate.
func (m *Monitor) deriveSeries(now time.Time, snap *telemetry.Snapshot, dt float64) {
	t := now.UnixNano()
	for name, v := range snap.Counters {
		d := v - m.prev.Counters[name]
		if d < 0 {
			d = 0 // a restarted component; clamp rather than plot negative
		}
		m.recordSeries(t, name+":rate", float64(d)/dt)
	}
	for name, g := range snap.Gauges {
		m.recordSeries(t, name, float64(g.Value))
	}
	for name, h := range snap.Hists {
		w := deltaHist(h, m.prev.Hists[name])
		m.recordSeries(t, name+":rate", float64(w.Count)/dt)
		if w.Count > 0 {
			m.recordSeries(t, name+":p50", float64(w.Quantile(0.50)))
			m.recordSeries(t, name+":p99", float64(w.Quantile(0.99)))
		}
	}
}

// recordSeries appends one point, creating the series if the cap allows.
// Accepts either a UnixNano int64 or a time.Time via the caller.
func (m *Monitor) recordSeries(t any, name string, v float64) {
	var ts int64
	switch x := t.(type) {
	case int64:
		ts = x
	case time.Time:
		ts = x.UnixNano()
	}
	s, ok := m.series[name]
	if !ok {
		if len(m.series) >= m.opt.MaxSeries {
			m.seriesDropped++
			return
		}
		s = newSeries(m.opt.Window)
		m.series[name] = s
	}
	s.add(ts, v)
}

// deltaHist subtracts prev from cur per bucket (clamped at zero), yielding
// the window's own distribution.
func deltaHist(cur, prev telemetry.HistSnap) telemetry.HistSnap {
	out := telemetry.HistSnap{Buckets: make([]int64, len(cur.Buckets))}
	for i, n := range cur.Buckets {
		d := n
		if i < len(prev.Buckets) {
			d -= prev.Buckets[i]
		}
		if d > 0 {
			out.Buckets[i] = d
			out.Count += d
		}
	}
	out.Sum = cur.Sum - prev.Sum
	return out
}

// Summary writes the one-screen health summary the flight recorder appends
// to every dump: status, active alerts, worst-rank skew, top rates.
func (m *Monitor) Summary(w io.Writer) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	st := m.statusLocked(now)
	alerts := m.activeAlertsLocked()
	fmt.Fprintf(w, "=== health: rank %d status=%s active_alerts=%d fired_total=%d rounds=%d ===\n",
		m.opt.Rank, st, len(alerts), m.firedTotal, m.rounds.Load())
	for _, a := range alerts {
		fmt.Fprintf(w, "  ALERT [%s] %s rank=%d shard=%d value=%.3g: %s\n",
			a.Severity, a.Name, a.Rank, a.Shard, a.Value, a.Detail)
	}
	if worst, skew := m.worstSkewLocked(); worst >= 0 {
		fmt.Fprintf(w, "  worst superstep skew: rank %d at %.2fx the mean barrier wait\n", worst, skew)
	}
	for _, r := range m.topRatesLocked(5) {
		fmt.Fprintf(w, "  %-60s %12.1f/s\n", r.Name, r.PerSec)
	}
}

// Rate is one name → events/s entry for the view's top-rates table.
type Rate struct {
	Name   string  `json:"name"`
	PerSec float64 `json:"per_sec"`
}

// topRatesLocked returns the n fastest counter-rate series by their latest
// sample.
func (m *Monitor) topRatesLocked(n int) []Rate {
	var out []Rate
	for name, s := range m.series {
		if !strings.HasSuffix(name, ":rate") {
			continue
		}
		if p, ok := s.Last(); ok && p.V > 0 {
			out = append(out, Rate{Name: strings.TrimSuffix(name, ":rate"), PerSec: p.V})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PerSec != out[j].PerSec {
			return out[i].PerSec > out[j].PerSec
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
