package health

import (
	"fmt"
	"strings"
	"time"

	"lcigraph/internal/telemetry"
)

// Detector names (Alert.Name values).
const (
	AlertProgressStall  = "progress_stall"  // a progress shard stopped polling
	AlertTransportStall = "transport_stall" // sends stuck in flow-control for consecutive ticks
	AlertSLOLatency     = "slo_latency"     // serving windowed p99 over budget
	AlertSLOShed        = "slo_shed"        // admission shedding most queries
	AlertRankStuck      = "rank_stuck"      // peer missed MissedBeats heartbeats
	AlertSuperstepSkew  = "superstep_skew"  // one rank waits SkewFactor× the mean at barriers
)

// detectState is the detectors' cross-tick memory (guarded by Monitor.mu).
type detectState struct {
	pollPrev   map[int]int64   // per-shard cumulative polls at the last tick
	pollRate   map[int]float64 // per-shard polls/s over the last window
	stallTicks int             // consecutive ticks with transport stalls

	// Rank 0 skew tracking: last cumulative (rounds, barrierNs) per rank and
	// when it was read, so each cluster tick scores the freshest window.
	skewPrev map[int]rankSample
	skewAt   time.Time
	skewRank int     // worst rank last tick (-1 when no judgment)
	skewVal  float64 // its barrier wait as a multiple of the rank mean
}

type rankSample struct {
	rounds    int64
	barrierNs int64
}

// alertState is one alert episode's hysteresis latch: EnterTicks consecutive
// bad evaluations activate it (counted once in firedTotal), ClearTicks
// consecutive good ones deactivate it. Flapping inside those bands neither
// re-fires nor clears — "latched once per episode".
type alertState struct {
	alert  Alert
	active bool
	enter  int
	clear  int
}

// judgeLocked advances one alert's hysteresis with this tick's evaluation.
func (m *Monitor) judgeLocked(now time.Time, a Alert, bad bool) {
	key := a.key()
	st, ok := m.alerts[key]
	if !ok {
		if !bad {
			return
		}
		st = &alertState{}
		m.alerts[key] = st
	}
	if bad {
		st.clear = 0
		if st.active {
			// Keep the measurement fresh while the episode runs.
			st.alert.Detail, st.alert.Value = a.Detail, a.Value
			return
		}
		st.enter++
		if st.enter >= m.opt.SLO.EnterTicks {
			a.SinceNs = now.UnixNano()
			st.alert = a
			st.active = true
			st.enter = 0
			m.firedTotal++
			m.pendingFired = append(m.pendingFired, a)
			m.ops.Event("alert_fired", opsAlertFields(a))
		}
		return
	}
	st.enter = 0
	if !st.active {
		delete(m.alerts, key)
		return
	}
	st.clear++
	if st.clear >= m.opt.SLO.ClearTicks {
		st.active = false
		st.clear = 0
		m.ops.Event("alert_cleared", opsAlertFields(st.alert))
		delete(m.alerts, key)
	}
}

func opsAlertFields(a Alert) map[string]any {
	return map[string]any{
		"name": a.Name, "alert_rank": a.Rank, "shard": a.Shard,
		"severity": a.Severity, "detail": a.Detail, "value": a.Value,
	}
}

// detectLocal runs the single-rank detectors over one snapshot delta.
// Caller holds m.mu; dt is the window in seconds.
func (m *Monitor) detectLocal(now time.Time, snap *telemetry.Snapshot, dt float64) {
	if m.det.pollPrev == nil {
		m.det.pollPrev = map[int]int64{}
		m.det.pollRate = map[int]float64{}
		m.det.skewRank = -1
	}
	m.detectProgress(now, snap, dt)
	m.detectTransport(now, snap)
	m.detectServeSLO(now, snap)
}

// detectProgress scores each progress shard: a shard that has polled before
// and advances by zero across a whole tick is wedged — the Serve loop polls
// unconditionally even when idle, so zero delta can only mean the goroutine
// is stuck (precisely what LCI_INJECT_STALL fabricates for CI).
func (m *Monitor) detectProgress(now time.Time, snap *telemetry.Snapshot, dt float64) {
	cur := map[int]int64{}
	for name, v := range snap.Counters {
		base, labels := splitMetric(name)
		if base != "lci_core_progress_polls_total" {
			continue
		}
		cur[labelShard(labels)] += v
	}
	for shard, polls := range cur {
		prev, seen := m.det.pollPrev[shard]
		m.det.pollPrev[shard] = polls
		d := polls - prev
		if d < 0 {
			d = 0
		}
		m.det.pollRate[shard] = float64(d) / dt
		// Judge only shards that have ever polled: a shard that never ran
		// (e.g. telemetry registered before Serve starts) is not stuck yet.
		if !seen || prev == 0 {
			continue
		}
		m.judgeLocked(now, Alert{
			Name: AlertProgressStall, Rank: m.opt.Rank, Shard: shard,
			Severity: SevWarn, Value: float64(d),
			Detail: fmt.Sprintf("rank %d progress shard %d polled 0 times in %.1fs — progress goroutine wedged",
				m.opt.Rank, shard, dt),
		}, d == 0)
	}
}

// detectTransport watches lci_net_stalls_total: stall events on isolated
// ticks are normal back-pressure, but stalls on every tick of a window mean
// sends are pinned behind flow control.
func (m *Monitor) detectTransport(now time.Time, snap *telemetry.Snapshot) {
	d := snap.Counter("lci_net_stalls_total") - m.prev.Counter("lci_net_stalls_total")
	if d > 0 {
		m.det.stallTicks++
	} else {
		m.det.stallTicks = 0
	}
	bad := m.det.stallTicks >= 3
	m.judgeLocked(now, Alert{
		Name: AlertTransportStall, Rank: m.opt.Rank, Shard: -1,
		Severity: SevWarn, Value: float64(d),
		Detail: fmt.Sprintf("rank %d transport stalled %d consecutive ticks (%d stall events last tick)",
			m.opt.Rank, m.det.stallTicks, d),
	}, bad)
}

// detectServeSLO evaluates the serving budget over the window's own traffic:
// the delta histogram's p99 against SLO.ServeP99, and the shed fraction of
// admission decisions. Both gate on MinSamples so idle windows never judge.
func (m *Monitor) detectServeSLO(now time.Time, snap *telemetry.Snapshot) {
	// Windowed p99 across all ops.
	win := telemetry.HistSnap{Buckets: make([]int64, telemetry.NumBuckets)}
	for name, h := range snap.Hists {
		if base, _ := splitMetric(name); base != "lci_serve_latency_ns" {
			continue
		}
		d := deltaHist(h, m.prev.Hists[name])
		for i, n := range d.Buckets {
			win.Buckets[i] += n
		}
		win.Count += d.Count
		win.Sum += d.Sum
	}
	p99 := time.Duration(win.Quantile(0.99))
	m.judgeLocked(now, Alert{
		Name: AlertSLOLatency, Rank: m.opt.Rank, Shard: -1,
		Severity: SevWarn, Value: float64(p99.Nanoseconds()),
		Detail: fmt.Sprintf("rank %d serving p99 %.0fms over %d queries exceeds the %.0fms budget",
			m.opt.Rank, float64(p99)/1e6, win.Count, float64(m.opt.SLO.ServeP99)/1e6),
	}, win.Count >= m.opt.SLO.MinSamples && p99 > m.opt.SLO.ServeP99)

	// Shed fraction of all admission decisions this window.
	var shed, total int64
	for name, v := range snap.Counters {
		base, labels := splitMetric(name)
		if base != "lci_serve_queries_total" {
			continue
		}
		d := v - m.prev.Counters[name]
		if d < 0 {
			continue
		}
		total += d
		if labels["status"] == "shed" {
			shed += d
		}
	}
	frac := 0.0
	if total > 0 {
		frac = float64(shed) / float64(total)
	}
	m.judgeLocked(now, Alert{
		Name: AlertSLOShed, Rank: m.opt.Rank, Shard: -1,
		Severity: SevWarn, Value: frac,
		Detail: fmt.Sprintf("rank %d shed %.0f%% of %d queries this window (budget %.0f%%)",
			m.opt.Rank, frac*100, total, m.opt.SLO.ShedFraction*100),
	}, total >= m.opt.SLO.MinSamples && frac > m.opt.SLO.ShedFraction)
}

// detectCluster runs rank 0's cluster-wide detectors over the peer digests:
// missed heartbeats and superstep skew. Judgments gate on rank 0's own Pump
// being live — when nothing drives the comm layer (between phases, during
// teardown) silence is expected, not an outage.
func (m *Monitor) detectCluster(now time.Time) {
	if m.det.skewPrev == nil {
		m.det.skewPrev = map[int]rankSample{}
		m.det.skewRank = -1
	}
	beat := m.opt.Interval
	lastPump := m.lastPumpNs.Load()
	pumpLive := lastPump != 0 && now.UnixNano()-lastPump < 2*beat.Nanoseconds()
	firstPump := m.hb.firstPumpNs.Load()

	// Missed heartbeats → rank_stuck (critical).
	for r := 1; r < m.opt.Ranks; r++ {
		p := m.peers[r]
		var age time.Duration
		switch {
		case p != nil:
			age = now.Sub(p.recvAt)
		case firstPump != 0:
			// Never heard from r: age against the start of pumping, with one
			// extra beat of slack for the peer's own first-send delay.
			age = time.Duration(now.UnixNano()-firstPump) - beat
		default:
			continue // pumping never started; nothing to judge
		}
		bad := pumpLive && age > time.Duration(m.opt.SLO.MissedBeats)*beat
		m.judgeLocked(now, Alert{
			Name: AlertRankStuck, Rank: r, Shard: -1,
			Severity: SevCritical, Value: age.Seconds(),
			Detail: fmt.Sprintf("rank %d missed %d heartbeats (last digest %.1fs ago)",
				r, m.opt.SLO.MissedBeats, age.Seconds()),
		}, bad)
	}

	// Superstep skew: per-rank barrier-wait deltas over the freshest window.
	window := now.Sub(m.det.skewAt)
	m.det.skewAt = now
	cur := map[int]rankSample{0: {m.rounds.Load(), m.barrierNs.Load()}}
	for r, p := range m.peers {
		if now.Sub(p.recvAt) < 2*beat {
			cur[r] = rankSample{p.d.Rounds, p.d.BarrierNs}
		}
	}
	m.det.skewRank, m.det.skewVal = -1, 0
	if len(cur) == m.opt.Ranks && m.opt.Ranks >= 2 && window > 0 {
		var sum, worst, roundsAdv int64
		worstRank := -1
		complete := true
		for r := 0; r < m.opt.Ranks; r++ {
			c, ok := cur[r]
			prev, okPrev := m.det.skewPrev[r]
			if !ok || !okPrev {
				complete = false
				break
			}
			d := c.barrierNs - prev.barrierNs
			if d < 0 {
				d = 0
			}
			sum += d
			roundsAdv += c.rounds - prev.rounds
			if d > worst {
				worst, worstRank = d, r
			}
		}
		if complete && roundsAdv > 0 && sum > 0 {
			mean := float64(sum) / float64(m.opt.Ranks)
			skew := float64(worst) / mean
			m.det.skewRank, m.det.skewVal = worstRank, skew
			bad := skew > m.opt.SLO.SkewFactor &&
				float64(worst) > m.opt.SLO.SkewFraction*float64(window.Nanoseconds())
			m.judgeLocked(now, Alert{
				Name: AlertSuperstepSkew, Rank: worstRank, Shard: -1,
				Severity: SevWarn, Value: skew,
				Detail: fmt.Sprintf("rank %d waited %.2fx the mean barrier time (%.0fms of a %.1fs window) — straggler",
					worstRank, skew, float64(worst)/1e6, window.Seconds()),
			}, bad)
		}
	}
	for r, c := range cur {
		m.det.skewPrev[r] = c
	}
}

// worstSkewLocked reports the last skew judgment for the flight-dump
// summary (-1 when none).
func (m *Monitor) worstSkewLocked() (rank int, skew float64) {
	if m.det.skewRank < 0 || m.det.skewVal <= 1 {
		return -1, 0
	}
	return m.det.skewRank, m.det.skewVal
}

// splitMetric splits a Prometheus-style name `base{k="v",...}` into base and
// labels. Names without labels return a nil map.
func splitMetric(name string) (string, map[string]string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	labels := map[string]string{}
	for _, pair := range strings.Split(name[i+1:len(name)-1], ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		labels[strings.TrimSpace(k)] = strings.Trim(strings.TrimSpace(v), `"`)
	}
	return name[:i], labels
}

// labelShard extracts the shard label (0 when unlabeled — single-shard
// endpoints omit it so the default configuration's names stay stable).
func labelShard(labels map[string]string) int {
	s, ok := labels["shard"]
	if !ok {
		return 0
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}
