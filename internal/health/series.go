package health

import (
	"encoding/json"
)

// Point is one time-series sample: UnixNano timestamp and value.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Series is a fixed-capacity ring buffer of points — one derived signal
// (a counter's rate, a histogram's windowed p99, a gauge level) sampled on
// the monitor ticker. Memory is bounded at construction: a full ring
// overwrites its oldest point. Not safe for concurrent use; the Monitor's
// mutex guards every series.
type Series struct {
	buf  []Point
	head int // next write position
	n    int // points held (≤ len(buf))
}

func newSeries(capacity int) *Series {
	if capacity < 2 {
		capacity = 2
	}
	return &Series{buf: make([]Point, capacity)}
}

// add appends a point, evicting the oldest when full.
func (s *Series) add(t int64, v float64) {
	s.buf[s.head] = Point{T: t, V: v}
	s.head = (s.head + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
}

// Len returns the number of points held.
func (s *Series) Len() int { return s.n }

// Last returns the most recent point.
func (s *Series) Last() (Point, bool) {
	if s.n == 0 {
		return Point{}, false
	}
	return s.buf[(s.head-1+len(s.buf))%len(s.buf)], true
}

// Points returns the held points oldest-first (a fresh slice).
func (s *Series) Points() []Point {
	out := make([]Point, 0, s.n)
	start := (s.head - s.n + len(s.buf)) % len(s.buf)
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}

// MarshalJSON renders the series as its points, oldest first.
func (s *Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Points())
}
