package health

import (
	"encoding/json"
	"os"
	"sync"
	"time"
)

// EnvOpsLog names the ops-event log path environment variable; the
// launchers set it on rank 0 when -ops-log is given, and the child wires it
// into Options.OpsLogPath.
const EnvOpsLog = "LCI_OPS_LOG"

// OpsLog is an append-only JSONL event log — the durable record of health
// transitions (monitor start/stop, alert fired/cleared, status changes)
// that survives the process and uploads as a CI artifact. One JSON object
// per line:
//
//	{"ts":"2026-08-08T12:00:01.5Z","event":"alert_fired","rank":1,...}
//
// All methods are nil-safe, so an unconfigured monitor logs nowhere at zero
// cost.
type OpsLog struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

// OpenOpsLog opens (appending) or creates the log at path.
func OpenOpsLog(path string) (*OpsLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &OpsLog{f: f, enc: json.NewEncoder(f)}, nil
}

// Event appends one event line. fields merge into the envelope (keys "ts"
// and "event" are reserved).
func (l *OpsLog) Event(kind string, fields map[string]any) {
	if l == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	rec["event"] = kind
	l.mu.Lock()
	l.enc.Encode(rec)
	l.mu.Unlock()
}

// Close syncs and closes the log.
func (l *OpsLog) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.f.Sync()
	l.f.Close()
}
