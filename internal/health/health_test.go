package health

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lcigraph/internal/comm"
	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/telemetry"
)

func TestSeriesRing(t *testing.T) {
	s := newSeries(4)
	if _, ok := s.Last(); ok {
		t.Fatal("empty series has a last point")
	}
	for i := 1; i <= 6; i++ {
		s.add(int64(i), float64(i*10))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	pts := s.Points()
	for i, want := range []int64{3, 4, 5, 6} {
		if pts[i].T != want {
			t.Fatalf("Points[%d].T = %d, want %d (oldest-first after wrap)", i, pts[i].T, want)
		}
	}
	if last, _ := s.Last(); last.V != 60 {
		t.Fatalf("Last = %v, want V=60", last)
	}
}

func TestSplitMetric(t *testing.T) {
	base, labels := splitMetric(`lci_core_progress_polls_total{state="busy",shard="3"}`)
	if base != "lci_core_progress_polls_total" || labels["state"] != "busy" || labels["shard"] != "3" {
		t.Fatalf("got base=%q labels=%v", base, labels)
	}
	if labelShard(labels) != 3 {
		t.Fatalf("labelShard = %d, want 3", labelShard(labels))
	}
	base, labels = splitMetric("lci_net_stalls_total")
	if base != "lci_net_stalls_total" || labels != nil {
		t.Fatalf("unlabeled name mishandled: base=%q labels=%v", base, labels)
	}
	if labelShard(labels) != 0 {
		t.Fatal("missing shard label must default to shard 0")
	}
}

// tickAt drives one manual sample at a controlled time (the ticker is not
// started in unit tests, so windows are exact).
func tickAt(m *Monitor, at time.Time) { m.sample(at) }

// TestProgressStallLatchesOncePerEpisode: a frozen poll counter must fire
// progress_stall after EnterTicks, hold FiredTotal at one while the stall
// persists, and clear after ClearTicks good ticks.
func TestProgressStallLatchesOncePerEpisode(t *testing.T) {
	reg := telemetry.NewEnabled(0)
	busy := reg.Counter(`lci_core_progress_polls_total{state="busy"}`)
	m := New(Options{Rank: 0, Ranks: 1, Reg: reg})
	defer m.Close()

	now := time.Unix(1000, 0)
	step := func(advance int64) {
		busy.Add(advance)
		now = now.Add(time.Second)
		tickAt(m, now)
	}
	step(1000) // baseline snapshot
	step(1000) // healthy delta
	if m.Status() != StatusOK {
		t.Fatalf("healthy status = %v", m.Status())
	}
	step(0) // enter 1
	if m.FiredTotal() != 0 {
		t.Fatal("alert fired before EnterTicks")
	}
	step(0) // enter 2 → latch
	if m.Status() != StatusDegraded || m.FiredTotal() != 1 {
		t.Fatalf("after stall: status=%v fired=%d, want DEGRADED/1", m.Status(), m.FiredTotal())
	}
	alerts := m.ActiveAlerts()
	if len(alerts) != 1 || alerts[0].Name != AlertProgressStall || alerts[0].Shard != 0 {
		t.Fatalf("alerts = %+v", alerts)
	}
	if !strings.Contains(alerts[0].Detail, "rank 0") || !strings.Contains(alerts[0].Detail, "shard 0") {
		t.Fatalf("detail must name rank and shard: %q", alerts[0].Detail)
	}
	for i := 0; i < 5; i++ {
		step(0) // ongoing episode must not re-fire
	}
	if m.FiredTotal() != 1 {
		t.Fatalf("episode re-fired: FiredTotal = %d", m.FiredTotal())
	}
	for i := 0; i < m.opt.SLO.ClearTicks; i++ {
		step(1000)
	}
	if m.Status() != StatusOK || len(m.ActiveAlerts()) != 0 {
		t.Fatalf("after recovery: status=%v alerts=%v", m.Status(), m.ActiveAlerts())
	}
	if m.FiredTotal() != 1 {
		t.Fatalf("FiredTotal changed on clear: %d", m.FiredTotal())
	}
}

// TestProgressStallNamesTheStuckShard: with sharded counters, only the
// frozen shard alerts, and the alert carries its index.
func TestProgressStallNamesTheStuckShard(t *testing.T) {
	reg := telemetry.NewEnabled(0)
	s0 := reg.Counter(`lci_core_progress_polls_total{state="idle",shard="0"}`)
	s1 := reg.Counter(`lci_core_progress_polls_total{state="idle",shard="1"}`)
	m := New(Options{Rank: 2, Ranks: 4, Reg: reg})
	defer m.Close()

	now := time.Unix(1000, 0)
	step := func(d0, d1 int64) {
		s0.Add(d0)
		s1.Add(d1)
		now = now.Add(time.Second)
		tickAt(m, now)
	}
	step(500, 500)
	step(500, 500)
	step(500, 0)
	step(500, 0)
	alerts := m.ActiveAlerts()
	if len(alerts) != 1 || alerts[0].Shard != 1 || alerts[0].Rank != 2 {
		t.Fatalf("alerts = %+v, want one progress_stall for rank 2 shard 1", alerts)
	}
	if !strings.Contains(alerts[0].Detail, "shard 1") {
		t.Fatalf("detail must name the shard: %q", alerts[0].Detail)
	}
}

// TestServeSLODetectors: a window shedding most queries fires slo_shed; a
// window of multi-second latencies fires slo_latency; idle windows (below
// MinSamples) never judge.
func TestServeSLODetectors(t *testing.T) {
	reg := telemetry.NewEnabled(0)
	ok := reg.Counter(`lci_serve_queries_total{op="khop",status="ok"}`)
	shed := reg.Counter(`lci_serve_queries_total{op="khop",status="shed"}`)
	lat := reg.Histogram(`lci_serve_latency_ns{op="khop"}`)
	m := New(Options{Rank: 0, Ranks: 1, Reg: reg})
	defer m.Close()

	now := time.Unix(1000, 0)
	step := func() {
		now = now.Add(time.Second)
		tickAt(m, now)
	}
	step()
	// Below MinSamples: 10 queries all shed, all slow — must not judge.
	for i := 0; i < 10; i++ {
		shed.Inc()
		lat.Observe(int64(5 * time.Second))
	}
	step()
	step()
	step()
	if len(m.ActiveAlerts()) != 0 {
		t.Fatalf("idle-window judgment: %+v", m.ActiveAlerts())
	}
	// A real burn: 80 shed vs 20 ok, latencies ~4s.
	for i := 0; i < 2; i++ {
		for j := 0; j < 80; j++ {
			shed.Inc()
			lat.Observe(int64(4 * time.Second))
		}
		for j := 0; j < 20; j++ {
			ok.Inc()
			lat.Observe(int64(time.Millisecond))
		}
		step()
	}
	names := map[string]bool{}
	for _, a := range m.ActiveAlerts() {
		names[a.Name] = true
	}
	if !names[AlertSLOShed] || !names[AlertSLOLatency] {
		t.Fatalf("want slo_shed and slo_latency, got %+v", m.ActiveAlerts())
	}
}

// TestHealthzAndViewJSON: /healthz flips 200→503 with status, and
// /debug/health.json round-trips the view.
func TestHealthzAndViewJSON(t *testing.T) {
	reg := telemetry.NewEnabled(0)
	busy := reg.Counter(`lci_core_progress_polls_total{state="busy"}`)
	m := New(Options{Rank: 0, Ranks: 1, Reg: reg})
	defer m.Close()

	rec := httptest.NewRecorder()
	m.ServeHealthz(rec, nil)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"status":"OK"`) {
		t.Fatalf("healthy /healthz: code=%d body=%s", rec.Code, rec.Body.String())
	}

	now := time.Unix(1000, 0)
	step := func(d int64) {
		busy.Add(d)
		now = now.Add(time.Second)
		tickAt(m, now)
	}
	step(100)
	step(100)
	step(0)
	step(0) // latched

	rec = httptest.NewRecorder()
	m.ServeHealthz(rec, nil)
	if rec.Code != 503 {
		t.Fatalf("degraded /healthz code = %d, want 503", rec.Code)
	}

	rec = httptest.NewRecorder()
	m.ServeJSON(rec, nil)
	var payload struct {
		View   View               `json:"view"`
		Series map[string][]Point `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("health.json decode: %v", err)
	}
	if payload.View.Status != StatusDegraded || len(payload.View.Alerts) != 1 {
		t.Fatalf("view = %+v", payload.View)
	}
	if len(payload.Series) == 0 {
		t.Fatal("no series in health.json")
	}
	if len(payload.View.RanksView) != 1 || payload.View.RanksView[0].Status != StatusDegraded {
		t.Fatalf("ranks_view = %+v", payload.View.RanksView)
	}
}

// TestSeriesCapAndWindow: distinct series are bounded by MaxSeries (extras
// counted as dropped) and each ring by Window.
func TestSeriesCapAndWindow(t *testing.T) {
	reg := telemetry.NewEnabled(0)
	for i := 0; i < 40; i++ {
		reg.Counter(strings.Repeat("x", 1) + "_" + string(rune('a'+i%26)) + "_" + string(rune('a'+i/26))).Inc()
	}
	m := New(Options{Rank: 0, Ranks: 1, Reg: reg, MaxSeries: 10, Window: 3})
	defer m.Close()
	now := time.Unix(1000, 0)
	for i := 0; i < 6; i++ {
		now = now.Add(time.Second)
		tickAt(m, now)
	}
	m.mu.Lock()
	nSeries, dropped := len(m.series), m.seriesDropped
	var maxLen int
	for _, s := range m.series {
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	m.mu.Unlock()
	if nSeries > 10 {
		t.Fatalf("series cap breached: %d > 10", nSeries)
	}
	if dropped == 0 {
		t.Fatal("overflow series not counted as dropped")
	}
	if maxLen > 3 {
		t.Fatalf("ring grew past Window: %d", maxLen)
	}
}

// TestHeartbeatRankStuck: two live monitors over real layers — rank 0's
// view gains the peer row from digests; when the peer stops pumping, rank 0
// flips UNHEALTHY with a rank_stuck alert naming it, within seconds.
func TestHeartbeatRankStuck(t *testing.T) {
	const p = 2
	fab := fabric.New(p, fabric.TestProfile())
	var layers [p]*comm.LCILayer
	var mons [p]*Monitor
	for r := 0; r < p; r++ {
		layers[r] = comm.NewLCILayer(fab.Endpoint(r), lci.Options{})
		mons[r] = New(Options{
			Rank: r, Ranks: p, Interval: 50 * time.Millisecond,
			Reg: telemetry.NewEnabled(r),
		})
		mons[r].Bind(layers[r])
		mons[r].Start()
	}
	stopPump := make([]chan struct{}, p)
	pumpDone := make([]chan struct{}, p)
	for r := 0; r < p; r++ {
		stopPump[r] = make(chan struct{})
		pumpDone[r] = make(chan struct{})
		go func(r int) {
			defer close(pumpDone[r])
			tk := time.NewTicker(5 * time.Millisecond)
			defer tk.Stop()
			for {
				select {
				case <-stopPump[r]:
					return
				case <-tk.C:
					mons[r].Pump()
				}
			}
		}(r)
	}

	// Phase 1: digests flow; rank 0's view shows both ranks, status OK.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v := mons[0].View()
		if len(v.RanksView) == p {
			if v.Status != StatusOK {
				t.Fatalf("clean cluster status = %v (%+v)", v.Status, v.Alerts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer digest never arrived: %+v", v)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: silence rank 1 → rank_stuck within MissedBeats + hysteresis.
	close(stopPump[1])
	<-pumpDone[1]
	deadline = time.Now().Add(5 * time.Second)
	for {
		if mons[0].Status() == StatusUnhealthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank_stuck never fired: %+v", mons[0].View())
		}
		time.Sleep(10 * time.Millisecond)
	}
	var stuck *Alert
	for _, a := range mons[0].ActiveAlerts() {
		if a.Name == AlertRankStuck {
			stuck = &a
			break
		}
	}
	if stuck == nil || stuck.Rank != 1 || stuck.Severity != SevCritical {
		t.Fatalf("rank_stuck alert = %+v", stuck)
	}
	if !strings.Contains(stuck.Detail, "rank 1") {
		t.Fatalf("detail must name the rank: %q", stuck.Detail)
	}

	close(stopPump[0])
	<-pumpDone[0]
	for r := 0; r < p; r++ {
		mons[r].Close()
	}
	layers[0].Stop()
	layers[1].Stop()
}

// TestNilMonitorSafe: every entry point must no-op on nil.
func TestNilMonitorSafe(t *testing.T) {
	var m *Monitor
	m.Start()
	m.Bind(nil)
	m.Pump()
	m.NoteRound(time.Second)
	if m.Status() != StatusOK || m.FiredTotal() != 0 || m.ActiveAlerts() != nil {
		t.Fatal("nil monitor not inert")
	}
	m.Summary(&strings.Builder{})
	rec := httptest.NewRecorder()
	m.ServeHealthz(rec, nil)
	if rec.Code != 200 {
		t.Fatalf("nil /healthz code = %d", rec.Code)
	}
	m.ServeJSON(httptest.NewRecorder(), nil)
	m.Close()
}
