package health

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// RankHealth is one row of the cluster view: rank 0's own state plus one
// row per peer digest. lci-top renders these directly.
type RankHealth struct {
	Rank      int       `json:"rank"`
	Status    Status    `json:"status"`
	AgeMs     int64     `json:"age_ms"` // digest age (0 for the local rank)
	Rounds    int64     `json:"rounds"`
	BarrierMs int64     `json:"barrier_ms"` // cumulative barrier wait
	Skew      float64   `json:"skew"`       // barrier wait vs rank mean (rank 0's judgment)
	PollRate  []float64 `json:"poll_rate"`  // polls/s per progress shard
	Alerts    []Alert   `json:"alerts,omitempty"`
}

// View is the judgment payload of /debug/health.json: everything except the
// raw series.
type View struct {
	Rank          int          `json:"rank"`
	Ranks         int          `json:"ranks"`
	Status        Status       `json:"status"`
	Tick          int64        `json:"tick"`
	NowNs         int64        `json:"now_ns"`
	IntervalMs    int64        `json:"interval_ms"`
	FiredTotal    int64        `json:"fired_total"`
	Alerts        []Alert      `json:"alerts"`
	RanksView     []RankHealth `json:"ranks_view"`
	TopRates      []Rate       `json:"top_rates"`
	SeriesDropped int64        `json:"series_dropped"`
}

// View assembles the current judgment payload.
func (m *Monitor) View() View {
	if m == nil {
		return View{Status: StatusOK}
	}
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	v := View{
		Rank:          m.opt.Rank,
		Ranks:         m.opt.Ranks,
		Status:        m.statusLocked(now),
		Tick:          m.tick,
		NowNs:         now.UnixNano(),
		IntervalMs:    m.opt.Interval.Milliseconds(),
		FiredTotal:    m.firedTotal,
		Alerts:        m.activeAlertsLocked(),
		TopRates:      m.topRatesLocked(8),
		SeriesDropped: m.seriesDropped,
	}
	if v.Alerts == nil {
		v.Alerts = []Alert{}
	}

	// Local row.
	self := RankHealth{
		Rank:      m.opt.Rank,
		Rounds:    m.rounds.Load(),
		BarrierMs: m.barrierNs.Load() / 1e6,
	}
	for _, st := range m.alerts {
		if st.active {
			self.Alerts = append(self.Alerts, st.alert)
		}
	}
	self.Status = StatusOK
	for _, a := range self.Alerts {
		if a.Severity == SevCritical {
			self.Status = StatusUnhealthy
		} else if self.Status == StatusOK {
			self.Status = StatusDegraded
		}
	}
	if n := len(m.det.pollRate); n > 0 {
		max := 0
		for shard := range m.det.pollRate {
			if shard > max {
				max = shard
			}
		}
		self.PollRate = make([]float64, max+1)
		for shard, r := range m.det.pollRate {
			self.PollRate[shard] = r
		}
	}
	if m.det.skewRank == m.opt.Rank {
		self.Skew = m.det.skewVal
	}
	v.RanksView = append(v.RanksView, self)

	// Peer rows (rank 0 only — peers hold no digests).
	for r, p := range m.peers {
		row := RankHealth{
			Rank:      r,
			Status:    p.d.Status,
			AgeMs:     now.Sub(p.recvAt).Milliseconds(),
			Rounds:    p.d.Rounds,
			BarrierMs: p.d.BarrierNs / 1e6,
			Alerts:    p.d.Alerts,
		}
		// Poll rates from the digest-to-digest deltas.
		if dt := p.recvAt.Sub(p.prevRecvAt).Seconds(); dt > 0 && len(p.prev.PollTotal) > 0 {
			row.PollRate = make([]float64, len(p.d.PollTotal))
			for i, cur := range p.d.PollTotal {
				if i < len(p.prev.PollTotal) && cur >= p.prev.PollTotal[i] {
					row.PollRate[i] = float64(cur-p.prev.PollTotal[i]) / dt
				}
			}
		}
		if m.det.skewRank == r {
			row.Skew = m.det.skewVal
		}
		// rank_stuck is rank 0's judgment about the peer; surface it on the
		// peer's row too.
		for _, st := range m.alerts {
			if st.active && st.alert.Name == AlertRankStuck && st.alert.Rank == r {
				row.Status = StatusUnhealthy
				row.Alerts = append(row.Alerts, st.alert)
			}
		}
		v.RanksView = append(v.RanksView, row)
	}
	sort.Slice(v.RanksView, func(i, j int) bool { return v.RanksView[i].Rank < v.RanksView[j].Rank })
	return v
}

// healthzPayload is the machine-readable /healthz body.
type healthzPayload struct {
	Status     string  `json:"status"`
	Rank       int     `json:"rank"`
	Alerts     []Alert `json:"alerts"`
	FiredTotal int64   `json:"fired_total"`
}

// ServeHealthz is the /healthz handler: HTTP 200 while the judgment is OK,
// 503 for DEGRADED or UNHEALTHY, with a small JSON body either way — load
// balancers read the code, operators read the body.
func (m *Monitor) ServeHealthz(w http.ResponseWriter, _ *http.Request) {
	st := m.Status()
	alerts := m.ActiveAlerts()
	if alerts == nil {
		alerts = []Alert{}
	}
	w.Header().Set("Content-Type", "application/json")
	if st != StatusOK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(healthzPayload{
		Status: st.String(), Rank: m.rank(), Alerts: alerts, FiredTotal: m.FiredTotal(),
	})
}

func (m *Monitor) rank() int {
	if m == nil {
		return 0
	}
	return m.opt.Rank
}

// DebugPayload is the full /debug/health.json body: the judgment view,
// every ring-buffer time series, and links to the sibling debug endpoints
// an operator reaches next. The incident recorder embeds the identical
// payload in every evidence set, so a bundle's health.json and the live
// endpoint read the same.
type DebugPayload struct {
	View   View               `json:"view"`
	Series map[string][]Point `json:"series"`
	Links  map[string]string  `json:"links,omitempty"`
}

// DebugJSON assembles the payload ServeJSON writes.
func (m *Monitor) DebugJSON() DebugPayload {
	p := DebugPayload{
		View:   m.View(),
		Series: map[string][]Point{},
		Links: map[string]string{
			"stacks":           "/debug/stacks",
			"incident_capture": "/debug/incident/capture",
			"pprof":            "/debug/pprof/",
		},
	}
	if m != nil {
		m.mu.Lock()
		for name, s := range m.series {
			p.Series[name] = s.Points()
		}
		m.mu.Unlock()
	}
	return p
}

// ServeJSON is the /debug/health.json handler: the full view plus every
// time series, the payload lci-top polls.
func (m *Monitor) ServeJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(m.DebugJSON())
}
