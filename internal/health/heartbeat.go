package health

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"lcigraph/internal/cluster"
	"lcigraph/internal/comm"
)

// Digest is the compact per-rank heartbeat posted to rank 0 on
// cluster.HealthTag: enough for the cluster view (status, superstep
// progress, barrier-wait totals, per-shard poll totals, active alerts)
// without shipping whole snapshots. It rides the communication layer
// itself, so rank 0 keeps its view even when a peer's HTTP endpoint is
// unreachable — and a silent peer is itself the strongest signal
// (rank_stuck).
type Digest struct {
	Rank      int     `json:"rank"`
	Seq       int64   `json:"seq"`
	SentAtNs  int64   `json:"sent_at_ns"`
	Status    Status  `json:"status"`
	Rounds    int64   `json:"rounds"`
	BarrierNs int64   `json:"barrier_ns"`           // cumulative barrier wait
	PollTotal []int64 `json:"poll_total,omitempty"` // cumulative polls per progress shard
	Alerts    []Alert `json:"alerts,omitempty"`     // locally active alerts
}

// peerState is rank 0's record of one peer (guarded by Monitor.mu).
type peerState struct {
	d          Digest
	prev       Digest
	recvAt     time.Time
	prevRecvAt time.Time
}

// pumpState is the heartbeat machinery owned by the layer-driving goroutine
// (the only one allowed to touch an AsyncLayer). The ticker goroutine reads
// none of it.
type pumpState struct {
	layer       comm.AsyncLayer
	lastSend    time.Time
	lastDrain   time.Time
	seq         int64
	firstPumpNs atomic.Int64
}

// Bind attaches the comm layer heartbeats travel over. Layers without
// reserved-tag messaging (or single-rank jobs) leave the monitor local-only;
// everything else still works.
func (m *Monitor) Bind(layer comm.Layer) {
	if m == nil || layer == nil {
		return
	}
	if al, ok := layer.(comm.AsyncLayer); ok {
		m.hb.layer = al
	}
}

// Pump advances the heartbeat protocol and must be called from the goroutine
// that owns the comm layer (abelian's round loop, serve's coordinator/worker
// loops). It rate-limits itself — one digest per Interval outbound, one
// drain per Interval/4 on rank 0 — so calling it every loop iteration is
// effectively free. It also stamps the pump-liveness clock that gates the
// cluster detectors: no Pump, no missed-heartbeat judgments.
func (m *Monitor) Pump() {
	if m == nil {
		return
	}
	if hook, _ := m.pumpHook.Load().(func()); hook != nil {
		hook()
	}
	now := time.Now()
	m.lastPumpNs.Store(now.UnixNano())
	m.hb.firstPumpNs.CompareAndSwap(0, now.UnixNano())
	if m.hb.layer == nil || m.opt.Ranks <= 1 {
		return
	}
	if m.opt.Rank == 0 {
		if now.Sub(m.hb.lastDrain) >= m.opt.Interval/4 {
			m.hb.lastDrain = now
			m.drainDigests(now)
		}
		return
	}
	if now.Sub(m.hb.lastSend) >= m.opt.Interval {
		m.hb.lastSend = now
		m.sendDigest(now)
	}
}

// sendDigest posts this rank's digest to rank 0.
func (m *Monitor) sendDigest(now time.Time) {
	m.hb.seq++
	d := Digest{Rank: m.opt.Rank, Seq: m.hb.seq, SentAtNs: now.UnixNano()}
	m.mu.Lock()
	d.Status = m.statusLocked(now)
	d.Rounds = m.rounds.Load()
	d.BarrierNs = m.barrierNs.Load()
	if n := len(m.det.pollPrev); n > 0 {
		max := 0
		for shard := range m.det.pollPrev {
			if shard > max {
				max = shard
			}
		}
		d.PollTotal = make([]int64, max+1)
		for shard, v := range m.det.pollPrev {
			d.PollTotal[shard] = v
		}
	}
	for _, st := range m.alerts {
		if st.active {
			d.Alerts = append(d.Alerts, st.alert)
		}
	}
	m.mu.Unlock()

	b, err := json.Marshal(d)
	if err != nil {
		fmt.Fprintf(os.Stderr, "health: digest marshal: %v\n", err)
		return
	}
	buf := m.hb.layer.AllocBuf(len(b))
	copy(buf, b)
	m.hb.layer.PostTag(0, cluster.HealthTag, buf)
}

// drainDigests pulls every pending digest off the health tag and folds it
// into rank 0's cluster view. Remote alert episodes count into firedTotal
// once (keyed by name/rank/shard) and land in the ops log; an episode that
// clears at its origin drops out of subsequent digests, which unlatches the
// key so a recurrence counts again.
func (m *Monitor) drainDigests(now time.Time) {
	for {
		msg, ok := m.hb.layer.RecvTag(cluster.HealthTag)
		if !ok {
			return
		}
		var d Digest
		err := json.Unmarshal(msg.Data, &d)
		msg.Release()
		if err != nil || d.Rank <= 0 || d.Rank >= m.opt.Ranks {
			continue
		}
		var fired []Alert
		m.mu.Lock()
		p := m.peers[d.Rank]
		if p == nil {
			p = &peerState{}
			m.peers[d.Rank] = p
		}
		if d.Seq <= p.d.Seq { // stale or duplicate delivery
			m.mu.Unlock()
			continue
		}
		p.prev, p.prevRecvAt = p.d, p.recvAt
		p.d, p.recvAt = d, now
		active := map[string]bool{}
		for _, a := range d.Alerts {
			active[a.key()] = true
			if _, seen := m.seenRemote[a.key()]; !seen {
				m.seenRemote[a.key()] = a
				m.firedTotal++
				fired = append(fired, a)
			}
		}
		for key, a := range m.seenRemote {
			if a.Rank == d.Rank && !active[key] {
				delete(m.seenRemote, key)
			}
		}
		m.mu.Unlock()
		for _, a := range fired {
			m.ops.Event("alert_fired", opsAlertFields(a))
		}
		m.fireAlertHook(fired)
	}
}
