package incident

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"lcigraph/internal/tracing"
)

// Evidence file names inside a rank's directory of the bundle.
const (
	FileMeta      = "meta.json"
	FileCPU       = "cpu.pprof"
	FileHeap      = "heap.pprof"
	FileGoroutine = "goroutine.pprof"
	FileMutex     = "mutex.pprof"
	FileTrace     = "trace.json"
	FileMetrics   = "metrics.json"
	FileHealth    = "health.json"
	ContinuousDir = "continuous"
)

// Meta is a rank's meta.json: capture-time clocks (wall for cross-rank
// alignment, monotonic-since-start for skew correction) and runtime vitals.
type Meta struct {
	Rank         int    `json:"rank"`
	WallNs       int64  `json:"wall_ns"`
	MonoNs       int64  `json:"mono_ns"`
	Trigger      Trigger `json:"trigger"`
	GoVersion    string `json:"go_version"`
	NumGoroutine int    `json:"num_goroutine"`
	NumCPU       int    `json:"num_cpu"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	CPUProfileMs int64  `json:"cpu_profile_ms"` // live CPU window actually used (0 = skipped)
	Errors       []string `json:"errors,omitempty"`
}

// continuousIndexEntry describes one archived continuous profile in
// continuous/index.json.
type continuousIndexEntry struct {
	File   string `json:"file"`
	Kind   string `json:"kind"`
	WallNs int64  `json:"wall_ns"`
	MonoNs int64  `json:"mono_ns"`
}

// captureLocal snapshots this rank's full evidence set and returns it as a
// gzipped tar whose entry names are relative (no rank prefix; rank 0 adds
// it when assembling the bundle). withCPU selects the live ~2s CPU profile;
// the SIGQUIT emergency path skips it — the process is about to die and the
// continuous ring already holds recent CPU evidence.
func (r *Recorder) captureLocal(trig Trigger, withCPU bool) []byte {
	now := time.Now()
	meta := Meta{
		Rank:         r.opt.Rank,
		WallNs:       now.UnixNano(),
		MonoNs:       monoNs(),
		Trigger:      trig,
		GoVersion:    runtime.Version(),
		NumGoroutine: runtime.NumGoroutine(),
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
	}

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	tw := tar.NewWriter(zw)
	addFile := func(name string, data []byte) {
		if len(data) == 0 {
			return
		}
		hdr := &tar.Header{Name: name, Mode: 0o644, Size: int64(len(data)), ModTime: now}
		if err := tw.WriteHeader(hdr); err != nil {
			meta.Errors = append(meta.Errors, fmt.Sprintf("%s: %v", name, err))
			return
		}
		if _, err := tw.Write(data); err != nil {
			meta.Errors = append(meta.Errors, fmt.Sprintf("%s: %v", name, err))
		}
	}

	// Goroutine dump first: when a rank is wedged, the stacks are the prize,
	// and everything below could in principle fail.
	addFile(FileGoroutine, lookupProfile("goroutine"))
	addFile(FileHeap, lookupProfile("heap"))
	addFile(FileMutex, lookupProfile("mutex"))

	if withCPU && r.opt.CPUProfile > 0 {
		cpu, err := captureCPU(r.opt.CPUProfile, r.stop)
		if err != nil {
			meta.Errors = append(meta.Errors, fmt.Sprintf("cpu profile: %v", err))
		} else {
			addFile(FileCPU, cpu)
			meta.CPUProfileMs = r.opt.CPUProfile.Milliseconds()
		}
	}

	if tr := r.opt.Tracer; tr.Enabled() {
		addFile(FileTrace, tracing.ChromeTrace(tr.Events(), tr.Rank()))
	}
	if r.opt.Reg.Enabled() {
		if b, err := json.Marshal(r.opt.Reg.Snapshot()); err == nil {
			addFile(FileMetrics, b)
		}
	}
	if r.opt.Monitor != nil {
		if b, err := json.Marshal(r.opt.Monitor.DebugJSON()); err == nil {
			addFile(FileHealth, b)
		}
	}

	// Continuous-profiling ring: the pre-incident baseline.
	if entries := r.prof.entries(); len(entries) > 0 {
		var index []continuousIndexEntry
		counts := map[string]int{}
		for _, e := range entries {
			name := fmt.Sprintf("%s/%s-%d.pprof", ContinuousDir, e.Kind, counts[e.Kind])
			counts[e.Kind]++
			addFile(name, e.Data)
			index = append(index, continuousIndexEntry{
				File: name, Kind: e.Kind, WallNs: e.WallNs, MonoNs: e.MonoNs,
			})
		}
		if b, err := json.Marshal(index); err == nil {
			addFile(ContinuousDir+"/index.json", b)
		}
	}

	// Meta last so it can carry the capture errors.
	if b, err := json.MarshalIndent(meta, "", "  "); err == nil {
		addFile(FileMeta, b)
	}
	tw.Close()
	zw.Close()
	return buf.Bytes()
}

// unpackEvidence expands one rank's gzipped evidence tar into name→bytes.
func unpackEvidence(blob []byte) (map[string][]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	out := map[string][]byte{}
	tr := tar.NewReader(zr)
	for {
		hdr, err := tr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return out, err
		}
		var b bytes.Buffer
		if _, err := b.ReadFrom(tr); err != nil {
			return out, err
		}
		out[hdr.Name] = b.Bytes()
	}
	return out, nil
}
