// Package incident is the postmortem capture layer (DESIGN.md §17): when a
// health detector latches — or an operator asks, via /debug/incident/capture
// or SIGUSR1 — every rank snapshots a correlated evidence set (CPU / heap /
// goroutine / mutex profiles, the tracing ring as a Chrome blob, the
// telemetry snapshot, the health time-series window, the active alert set)
// and rank 0 gathers all of it over the communication layer itself into one
// tar.gz bundle with a JSON manifest. A continuous-profiling mode keeps a
// bounded ring of recent CPU/goroutine profiles per rank so every bundle
// carries a *pre*-incident baseline to diff against.
//
// Threading model (mirrors internal/health): triggers may arrive from any
// goroutine (alert hook, HTTP handler, signal handler) and land in a
// 1-deep channel — a full channel IS the coalescing. All comm-layer
// traffic happens in Pump, which the layer-owning goroutine drives (wired
// through health.Monitor.SetPumpHook so the existing abelian/serve call
// sites need no change). The multi-second capture work itself runs on a
// dedicated goroutine under a single-flight guard shared with the SIGQUIT
// emergency path. Without a bound layer (single-rank jobs, in-process
// tests) a fallback watcher turns triggers into local-only bundles.
package incident

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"lcigraph/internal/cluster"
	"lcigraph/internal/comm"
	"lcigraph/internal/health"
	"lcigraph/internal/telemetry"
	"lcigraph/internal/tracing"
)

// EnvIncidentDir propagates -incident-dir from the launcher to children.
const EnvIncidentDir = "LCI_INCIDENT_DIR"

// EnvProfilePeriod optionally overrides the continuous-profiling period
// (Go duration syntax; "0" disables continuous profiling).
const EnvProfilePeriod = "LCI_PROFILE_PERIOD"

// Trigger records why a capture ran.
type Trigger struct {
	Kind   string        `json:"kind"` // "alert" | "manual" | "signal" | "sigquit"
	Detail string        `json:"detail,omitempty"`
	Alert  *health.Alert `json:"alert,omitempty"`
	Rank   int           `json:"rank"` // origin rank
	AtNs   int64         `json:"at_ns"`
}

// Options configures a Recorder.
type Options struct {
	Rank, Ranks int
	// Dir receives bundles (rank 0 writes gathered ones; any rank may write
	// a local-only emergency bundle). Required.
	Dir     string
	Reg     *telemetry.Registry
	Tracer  *tracing.Tracer
	Monitor *health.Monitor
	// CPUProfile is the live capture's CPU window (default 2s; <0 disables
	// the live CPU profile).
	CPUProfile time.Duration
	// ProfilePeriod is the continuous-profiling cadence (default 60s;
	// <0 disables). Each cycle archives one ProfileDuration CPU window and
	// one goroutine snapshot into a ring of ProfileKeep entries per kind.
	ProfilePeriod   time.Duration
	ProfileDuration time.Duration // default 2s
	ProfileKeep     int           // default 4
	// GatherTimeout bounds rank 0's wait for peer evidence (default 10s).
	GatherTimeout time.Duration
	// Cooldown spaces captures (default 30s): a flapping detector coalesces
	// into at most one bundle per window.
	Cooldown time.Duration
}

func (o *Options) fill() {
	if o.Ranks <= 0 {
		o.Ranks = 1
	}
	if o.CPUProfile == 0 {
		o.CPUProfile = 2 * time.Second
	}
	if o.ProfilePeriod == 0 {
		o.ProfilePeriod = 60 * time.Second
	}
	if o.ProfileDuration <= 0 {
		o.ProfileDuration = 2 * time.Second
	}
	if o.ProfileKeep <= 0 {
		o.ProfileKeep = 4
	}
	if o.GatherTimeout <= 0 {
		o.GatherTimeout = 10 * time.Second
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 30 * time.Second
	}
}

// captured is a finished local capture headed for the pump.
type captured struct {
	id   string
	blob []byte
}

// gather is rank 0's in-flight incident (pump-owned).
type gather struct {
	id       string
	trig     Trigger
	deadline time.Time
	parts    map[int][][]byte // rank → chunks (nil until first)
	got      map[int]int      // rank → chunks received
	blobs    map[int][]byte   // rank → assembled evidence
}

// pumpSide is all state owned by the layer-driving goroutine.
type pumpSide struct {
	layer         comm.AsyncLayer
	lastDrain     time.Time
	cur           *gather   // rank 0 only
	cooldownUntil time.Time // rank 0 only
}

// Recorder is one rank's incident recorder. All exported methods are safe
// on a nil receiver, so wiring can be unconditional.
type Recorder struct {
	opt  Options
	prof *profiler
	g    guard

	trigCh chan Trigger  // capacity 1: a full channel coalesces
	evidCh chan captured // capture goroutine → pump

	hasLayer atomic.Bool
	pp       pumpSide

	stop      chan struct{}
	done      chan struct{}
	started   atomic.Bool
	closed    atomic.Bool
	bundles   atomic.Int64
	trigDrops atomic.Int64
	lastPath  atomic.Value // string
}

// New builds a recorder. A zero Dir disables incident capture entirely and
// returns nil — every method on a nil Recorder is a no-op.
func New(opt Options) *Recorder {
	if opt.Dir == "" {
		return nil
	}
	opt.fill()
	r := &Recorder{
		opt:    opt,
		trigCh: make(chan Trigger, 1),
		evidCh: make(chan captured, 2),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if opt.ProfilePeriod > 0 {
		r.prof = newProfiler(opt.ProfilePeriod, opt.ProfileDuration, opt.ProfileKeep)
	}
	return r
}

// FromEnv builds a recorder from the launcher-provided environment:
// EnvIncidentDir selects the bundle directory (unset → nil recorder,
// incident capture disabled) and EnvProfilePeriod optionally overrides the
// continuous-profiling cadence ("0" disables it). The caller supplies the
// rank wiring; hook the result up with Monitor.SetAlertHook(rec.OnAlert)
// and Monitor.SetPumpHook(rec.Pump).
func FromEnv(rank, ranks int, reg *telemetry.Registry, tr *tracing.Tracer, mon *health.Monitor) *Recorder {
	opt := Options{
		Rank: rank, Ranks: ranks, Dir: os.Getenv(EnvIncidentDir),
		Reg: reg, Tracer: tr, Monitor: mon,
	}
	if s := os.Getenv(EnvProfilePeriod); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			if d <= 0 {
				opt.ProfilePeriod = -1
			} else {
				opt.ProfilePeriod = d
			}
		} else {
			fmt.Fprintf(os.Stderr, "incident: %s=%q: %v (using default)\n", EnvProfilePeriod, s, err)
		}
	}
	return New(opt)
}

// Start launches the continuous profiler and the local-mode fallback
// watcher. Second and later calls are no-ops.
func (r *Recorder) Start() {
	if r == nil || !r.started.CompareAndSwap(false, true) {
		return
	}
	if r.prof != nil {
		r.prof.start()
	}
	go r.watch()
}

// Close stops the profiler and watcher. In-flight captures are cancelled
// (their CPU window cuts short); an unfinished gather is abandoned.
func (r *Recorder) Close() {
	if r == nil || !r.closed.CompareAndSwap(false, true) {
		return
	}
	close(r.stop)
	if r.started.Load() {
		<-r.done
	}
	if r.prof != nil {
		r.prof.close()
	}
}

// Bind attaches the comm layer evidence travels over. Layers without
// reserved-tag messaging (or single-rank jobs) leave the recorder in
// local-only mode; everything else still works.
func (r *Recorder) Bind(layer comm.Layer) {
	if r == nil || layer == nil || r.opt.Ranks <= 1 {
		return
	}
	if al, ok := layer.(comm.AsyncLayer); ok {
		r.pp.layer = al
		r.hasLayer.Store(true)
	}
}

// OnAlert is the health monitor's alert hook: every latched episode
// requests a capture. Wire it with Monitor.SetAlertHook(rec.OnAlert).
func (r *Recorder) OnAlert(a health.Alert) {
	if r == nil {
		return
	}
	al := a
	r.enqueue(Trigger{
		Kind: "alert", Detail: a.Detail, Alert: &al,
		Rank: r.opt.Rank, AtNs: time.Now().UnixNano(),
	})
}

// TriggerCapture requests an on-demand capture (HTTP endpoint, SIGUSR1,
// tests). Returns false when the request coalesced into a pending one.
func (r *Recorder) TriggerCapture(kind, detail string) bool {
	if r == nil {
		return false
	}
	return r.enqueue(Trigger{
		Kind: kind, Detail: detail, Rank: r.opt.Rank, AtNs: time.Now().UnixNano(),
	})
}

func (r *Recorder) enqueue(t Trigger) bool {
	select {
	case r.trigCh <- t:
		return true
	default:
		r.trigDrops.Add(1)
		return false
	}
}

// Stats reports (captures started, attempts coalesced, bundles written).
func (r *Recorder) Stats() (captures, coalesced, bundles int64) {
	if r == nil {
		return 0, 0, 0
	}
	c, co := r.g.stats()
	return c, co + r.trigDrops.Load(), r.bundles.Load()
}

// LastBundle returns the most recent bundle path this rank wrote ("" when
// none).
func (r *Recorder) LastBundle() string {
	if r == nil {
		return ""
	}
	if s, ok := r.lastPath.Load().(string); ok {
		return s
	}
	return ""
}

// ProfileEntries exposes the continuous-profiling ring (for the HTTP status
// payload and tests).
func (r *Recorder) ProfileEntries() []ProfileEntry {
	if r == nil {
		return nil
	}
	return r.prof.entries()
}

// ---- wire protocol on cluster.IncidentTag ----

// wireMsg is the JSON header of every incident frame. Evidence payload
// bytes follow the header; everything else is header-only.
type wireMsg struct {
	Kind    string  `json:"kind"` // "req" | "go" | "evid"
	ID      string  `json:"id"`
	Trigger Trigger `json:"trigger,omitempty"`
	Rank    int     `json:"rank"`  // evid: sending rank
	Seq     int     `json:"seq"`   // evid: chunk index
	Total   int     `json:"total"` // evid: chunk count
}

// chunkPayload bounds one evidence frame's payload. Evidence blobs are
// gzipped tars of a few hundred KiB; chunking keeps any single message
// within the transport's comfort zone regardless of layer.
const chunkPayload = 128 << 10

func (r *Recorder) post(peer int, h wireMsg, payload []byte) {
	hb, err := json.Marshal(h)
	if err != nil {
		return
	}
	buf := r.pp.layer.AllocBuf(4 + len(hb) + len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(hb)))
	copy(buf[4:], hb)
	copy(buf[4+len(hb):], payload)
	r.pp.layer.PostTag(peer, cluster.IncidentTag, buf)
}

func decodeWire(data []byte) (wireMsg, []byte, bool) {
	var h wireMsg
	if len(data) < 4 {
		return h, nil, false
	}
	n := binary.LittleEndian.Uint32(data)
	if uint32(len(data)-4) < n {
		return h, nil, false
	}
	if json.Unmarshal(data[4:4+n], &h) != nil {
		return h, nil, false
	}
	return h, data[4+n:], true
}

// pumpInterval rate-limits the idle drain; pending local work bypasses it.
const pumpInterval = 100 * time.Millisecond

// Pump advances the incident protocol and must be called from the goroutine
// that owns the comm layer (ride health.Monitor.SetPumpHook). It
// rate-limits itself, so calling it every loop iteration is effectively
// free.
func (r *Recorder) Pump() {
	if r == nil || r.pp.layer == nil {
		return
	}
	now := time.Now()
	if now.Sub(r.pp.lastDrain) < pumpInterval &&
		len(r.trigCh) == 0 && len(r.evidCh) == 0 {
		return
	}
	r.pp.lastDrain = now

	// Local triggers.
drainTrig:
	for {
		select {
		case t := <-r.trigCh:
			if r.opt.Rank == 0 {
				r.maybeStart(t, now)
			} else {
				r.post(0, wireMsg{Kind: "req", Trigger: t, Rank: r.opt.Rank}, nil)
			}
		default:
			break drainTrig
		}
	}

	// Wire traffic.
	for {
		msg, ok := r.pp.layer.RecvTag(cluster.IncidentTag)
		if !ok {
			break
		}
		h, payload, ok := decodeWire(msg.Data)
		if ok {
			r.handleWire(h, payload, now)
		}
		msg.Release()
	}

	// Finished local captures.
drainEvid:
	for {
		select {
		case ev := <-r.evidCh:
			if r.opt.Rank == 0 {
				if r.pp.cur != nil && r.pp.cur.id == ev.id {
					r.pp.cur.blobs[0] = ev.blob
				}
			} else {
				r.postEvidence(ev)
			}
		default:
			break drainEvid
		}
	}

	if r.opt.Rank == 0 && r.pp.cur != nil {
		g := r.pp.cur
		if len(g.blobs) == r.opt.Ranks || now.After(g.deadline) {
			r.pp.cur = nil
			r.pp.cooldownUntil = now.Add(r.opt.Cooldown)
			go r.finishBundle(g)
		}
	}
}

// maybeStart opens a new incident on rank 0 (from a local trigger or a
// peer's req). A running gather or the cooldown coalesces the request.
func (r *Recorder) maybeStart(t Trigger, now time.Time) {
	if r.pp.cur != nil || now.Before(r.pp.cooldownUntil) {
		r.trigDrops.Add(1)
		return
	}
	id := fmt.Sprintf("incident-%d-r%d", now.UnixNano(), t.Rank)
	r.pp.cur = &gather{
		id:       id,
		trig:     t,
		deadline: now.Add(r.opt.GatherTimeout),
		parts:    map[int][][]byte{},
		got:      map[int]int{},
		blobs:    map[int][]byte{},
	}
	for p := 1; p < r.opt.Ranks; p++ {
		r.post(p, wireMsg{Kind: "go", ID: id, Trigger: t}, nil)
	}
	r.beginCapture(t, id, true)
}

func (r *Recorder) handleWire(h wireMsg, payload []byte, now time.Time) {
	switch h.Kind {
	case "req":
		if r.opt.Rank == 0 {
			r.maybeStart(h.Trigger, now)
		}
	case "go":
		if r.opt.Rank != 0 {
			r.beginCapture(h.Trigger, h.ID, true)
		}
	case "evid":
		g := r.pp.cur
		if r.opt.Rank != 0 || g == nil || g.id != h.ID ||
			h.Rank <= 0 || h.Rank >= r.opt.Ranks ||
			h.Total <= 0 || h.Seq < 0 || h.Seq >= h.Total {
			return
		}
		if g.parts[h.Rank] == nil {
			g.parts[h.Rank] = make([][]byte, h.Total)
		}
		parts := g.parts[h.Rank]
		if h.Total != len(parts) || parts[h.Seq] != nil {
			return
		}
		parts[h.Seq] = append([]byte(nil), payload...)
		g.got[h.Rank]++
		if g.got[h.Rank] == h.Total {
			var blob []byte
			for _, p := range parts {
				blob = append(blob, p...)
			}
			g.blobs[h.Rank] = blob
			delete(g.parts, h.Rank)
		}
	}
}

// postEvidence ships a finished capture to rank 0 in bounded chunks.
func (r *Recorder) postEvidence(ev captured) {
	total := (len(ev.blob) + chunkPayload - 1) / chunkPayload
	if total == 0 {
		total = 1
	}
	for seq := 0; seq < total; seq++ {
		lo := seq * chunkPayload
		hi := lo + chunkPayload
		if hi > len(ev.blob) {
			hi = len(ev.blob)
		}
		r.post(0, wireMsg{
			Kind: "evid", ID: ev.id, Rank: r.opt.Rank, Seq: seq, Total: total,
		}, ev.blob[lo:hi])
	}
}

// beginCapture starts the guarded local capture goroutine. force skips the
// cooldown (used for rank-0-ordered captures, which are already paced).
func (r *Recorder) beginCapture(t Trigger, id string, force bool) {
	now := time.Now()
	if !r.g.begin(now, r.opt.Cooldown, force) {
		return
	}
	go func() {
		blob := r.captureLocal(t, true)
		r.g.end(time.Now())
		if r.hasLayer.Load() && id != "" {
			select {
			case r.evidCh <- captured{id: id, blob: blob}:
			default:
			}
			return
		}
		r.writeLocal(t, blob)
	}()
}

// writeLocal writes a bundle holding only this rank's evidence — the
// single-rank / no-layer path, and the SIGQUIT emergency path.
func (r *Recorder) writeLocal(t Trigger, blob []byte) {
	id := fmt.Sprintf("incident-%d-r%d", time.Now().UnixNano(), r.opt.Rank)
	path, err := writeBundle(r.opt.Dir, id, t, r.opt.Ranks, map[int][]byte{r.opt.Rank: blob})
	if err != nil {
		fmt.Fprintf(os.Stderr, "incident: rank %d: bundle write failed: %v\n", r.opt.Rank, err)
		return
	}
	r.noteBundle(path, t, 1)
}

// finishBundle assembles and writes rank 0's gathered bundle (runs on its
// own goroutine — tar+gzip of several ranks' evidence is not pump work).
func (r *Recorder) finishBundle(g *gather) {
	path, err := writeBundle(r.opt.Dir, g.id, g.trig, r.opt.Ranks, g.blobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "incident: bundle write failed: %v\n", err)
		return
	}
	r.noteBundle(path, g.trig, len(g.blobs))
}

func (r *Recorder) noteBundle(path string, t Trigger, gotRanks int) {
	r.bundles.Add(1)
	r.lastPath.Store(path)
	fmt.Fprintf(os.Stderr, "incident: rank %d wrote bundle %s (trigger=%s, %d/%d ranks)\n",
		r.opt.Rank, path, t.Kind, gotRanks, r.opt.Ranks)
	r.opt.Monitor.OpsEvent("incident_bundle", map[string]any{
		"rank": r.opt.Rank, "path": path, "trigger": t.Kind,
		"detail": t.Detail, "got_ranks": gotRanks, "ranks": r.opt.Ranks,
	})
}

// watch is the local-mode fallback: with no layer bound, triggers become
// local-only bundles. With a layer bound it does nothing — Pump owns the
// protocol.
func (r *Recorder) watch() {
	defer close(r.done)
	t := time.NewTicker(200 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			if r.hasLayer.Load() {
				continue
			}
			select {
			case trig := <-r.trigCh:
				r.beginCapture(trig, "", false)
			default:
			}
		}
	}
}

// CaptureSync runs a full local capture synchronously and writes a
// local-only bundle, bypassing channels and the pump — the SIGQUIT
// emergency path (withCPU=false: the process is about to die) and tests.
// Returns the bundle path ("" when coalesced or failed).
func (r *Recorder) CaptureSync(t Trigger, withCPU bool) string {
	if r == nil {
		return ""
	}
	now := time.Now()
	if !r.g.begin(now, r.opt.Cooldown, false) {
		return ""
	}
	blob := r.captureLocal(t, withCPU)
	r.g.end(time.Now())
	id := fmt.Sprintf("incident-%d-r%d", now.UnixNano(), r.opt.Rank)
	path, err := writeBundle(r.opt.Dir, id, t, r.opt.Ranks, map[int][]byte{r.opt.Rank: blob})
	if err != nil {
		fmt.Fprintf(os.Stderr, "incident: rank %d: bundle write failed: %v\n", r.opt.Rank, err)
		return ""
	}
	r.noteBundle(path, t, 1)
	return path
}
