package incident

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lcigraph/internal/comm"
	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/health"
	"lcigraph/internal/telemetry"
)

// fastOptions is a recorder configuration tests can run in milliseconds:
// a short live CPU window and no continuous profiler.
func fastOptions(t *testing.T, rank, ranks int) Options {
	t.Helper()
	return Options{
		Rank: rank, Ranks: ranks, Dir: t.TempDir(),
		Reg:           telemetry.NewEnabled(rank),
		CPUProfile:    50 * time.Millisecond,
		ProfilePeriod: -1,
	}
}

func TestGuardSingleFlightAndCooldown(t *testing.T) {
	var g guard
	t0 := time.Unix(100, 0)
	cd := 10 * time.Second
	if !g.begin(t0, cd, false) {
		t.Fatal("first begin refused")
	}
	if g.begin(t0, cd, false) {
		t.Fatal("second begin admitted while busy")
	}
	if g.begin(t0, cd, true) {
		t.Fatal("force begin admitted while busy — force skips cooldown, never busy")
	}
	g.end(t0.Add(time.Second))
	if g.begin(t0.Add(2*time.Second), cd, false) {
		t.Fatal("begin admitted inside the cooldown window")
	}
	if !g.begin(t0.Add(2*time.Second), cd, true) {
		t.Fatal("force begin refused by cooldown")
	}
	g.end(t0.Add(3 * time.Second))
	if !g.begin(t0.Add(14*time.Second), cd, false) {
		t.Fatal("begin refused after the cooldown expired")
	}
	g.end(t0.Add(15 * time.Second))
	caps, co := g.stats()
	if caps != 3 || co != 3 {
		t.Fatalf("stats = %d captures / %d coalesced, want 3/3", caps, co)
	}
}

// TestSingleFlightConcurrentTriggers is the satellite's -race test: the
// three capture entry points — an alert latching (OnAlert), an operator
// request (TriggerCapture), and the SIGQUIT emergency path (CaptureSync) —
// fire concurrently and exactly one capture runs; the rest coalesce into
// it or into its cooldown window.
func TestSingleFlightConcurrentTriggers(t *testing.T) {
	opt := fastOptions(t, 0, 1)
	opt.CPUProfile = -1 // capture in microseconds so the race window is tight
	opt.Cooldown = time.Hour
	r := New(opt)
	if r == nil {
		t.Fatal("New returned nil for a configured recorder")
	}
	r.Start()
	defer r.Close()

	var wg sync.WaitGroup
	start := make(chan struct{})
	wg.Add(3)
	go func() {
		defer wg.Done()
		<-start
		r.OnAlert(health.Alert{Name: "progress_stall", Rank: 0, Shard: 1, Detail: "test"})
	}()
	go func() {
		defer wg.Done()
		<-start
		r.TriggerCapture("manual", "concurrent test")
	}()
	go func() {
		defer wg.Done()
		<-start
		r.CaptureSync(Trigger{Kind: "sigquit", Rank: 0, AtNs: time.Now().UnixNano()}, false)
	}()
	close(start)
	wg.Wait()

	// The queued trigger (whichever of alert/manual won the 1-deep channel)
	// drains through the fallback watcher within ~200ms; give it time to
	// run into the guard's cooldown, then check the counts settled.
	deadline := time.Now().Add(3 * time.Second)
	for {
		captures, coalesced, _ := r.Stats()
		if captures+coalesced >= 3 {
			if captures != 1 {
				t.Fatalf("captures = %d, want exactly 1 (coalesced %d)", captures, coalesced)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("triggers never settled: captures=%d coalesced=%d", captures, coalesced)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCaptureSyncBundleRoundTrip: a synchronous local capture produces a
// verifiable bundle whose evidence set holds the runtime profiles,
// the metrics snapshot, and a meta record with sane clocks.
func TestCaptureSyncBundleRoundTrip(t *testing.T) {
	opt := fastOptions(t, 0, 1)
	opt.Reg.Counter("lci_test_events_total").Add(42)
	r := New(opt)
	r.Start()
	defer r.Close()

	before := time.Now().UnixNano()
	path := r.CaptureSync(Trigger{Kind: "manual", Detail: "round trip", Rank: 0, AtNs: before}, true)
	if path == "" {
		t.Fatal("CaptureSync returned no bundle path")
	}
	if !strings.HasSuffix(path, ".tar.gz") {
		t.Fatalf("bundle path %q lacks .tar.gz suffix", path)
	}
	b, err := ReadBundle(path)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if probs := b.Verify(); len(probs) != 0 {
		t.Fatalf("Verify problems: %v", probs)
	}
	if b.Manifest.Schema != SchemaVersion || b.Manifest.Trigger.Kind != "manual" {
		t.Fatalf("manifest = %+v", b.Manifest)
	}
	for _, name := range []string{FileMeta, FileGoroutine, FileHeap, FileMutex, FileCPU, FileMetrics} {
		if b.RankFile(0, name) == nil {
			t.Fatalf("bundle missing rank 0 %s (files: %v)", name, b.Manifest.Entries)
		}
	}
	meta, ok := b.RankMeta(0)
	if !ok {
		t.Fatal("RankMeta failed")
	}
	if meta.Rank != 0 || meta.WallNs < before || meta.CPUProfileMs <= 0 {
		t.Fatalf("meta = %+v", meta)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(b.RankFile(0, FileMetrics), &snap); err != nil {
		t.Fatalf("decode metrics.json: %v", err)
	}
	if snap.Counter("lci_test_events_total") != 42 {
		t.Fatalf("metrics evidence lost the counter: %d", snap.Counter("lci_test_events_total"))
	}
}

// TestGatherTwoRanks drives the full cross-rank protocol over the
// in-process fabric: a trigger on rank 1 travels to rank 0 (REQ), rank 0
// broadcasts GO, both ranks capture, rank 1's evidence streams back in
// chunks, and rank 0 writes one bundle holding both ranks.
func TestGatherTwoRanks(t *testing.T) {
	const p = 2
	dir := t.TempDir()
	fab := fabric.New(p, fabric.TestProfile())
	var layers [p]*comm.LCILayer
	var recs [p]*Recorder
	for r := 0; r < p; r++ {
		layers[r] = comm.NewLCILayer(fab.Endpoint(r), lci.Options{})
		recs[r] = New(Options{
			Rank: r, Ranks: p, Dir: dir,
			Reg:           telemetry.NewEnabled(r),
			CPUProfile:    50 * time.Millisecond,
			ProfilePeriod: -1,
			GatherTimeout: 5 * time.Second,
		})
		recs[r].Bind(layers[r])
		recs[r].Start()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tk := time.NewTicker(2 * time.Millisecond)
			defer tk.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tk.C:
					recs[r].Pump()
				}
			}
		}(r)
	}

	if !recs[1].TriggerCapture("manual", "gather test") {
		t.Fatal("trigger coalesced on an idle recorder")
	}
	var path string
	deadline := time.Now().Add(10 * time.Second)
	for path == "" {
		path = recs[0].LastBundle()
		if time.Now().After(deadline) {
			t.Fatal("rank 0 never wrote the gathered bundle")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for r := 0; r < p; r++ {
		recs[r].Close()
		layers[r].Stop()
	}

	b, err := ReadBundle(path)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if probs := b.Verify(); len(probs) != 0 {
		t.Fatalf("Verify problems: %v", probs)
	}
	if b.Manifest.Ranks != p || len(b.Manifest.GotRanks) != p || len(b.Manifest.Missing) != 0 {
		t.Fatalf("manifest coverage = %+v", b.Manifest)
	}
	if b.Manifest.Trigger.Kind != "manual" || b.Manifest.Trigger.Rank != 1 {
		t.Fatalf("manifest trigger = %+v, want manual from rank 1", b.Manifest.Trigger)
	}
	for r := 0; r < p; r++ {
		for _, name := range []string{FileMeta, FileGoroutine, FileCPU, FileMetrics} {
			if b.RankFile(r, name) == nil {
				t.Fatalf("bundle missing rank %d %s", r, name)
			}
		}
		meta, ok := b.RankMeta(r)
		if !ok || meta.Rank != r {
			t.Fatalf("rank %d meta = %+v (ok=%v)", r, meta, ok)
		}
	}
	if len(b.Manifest.Clocks) != p {
		t.Fatalf("manifest clocks = %+v, want one per rank", b.Manifest.Clocks)
	}
}

// TestTriggerCoalesce: the 1-deep trigger channel IS the coalescing — the
// second enqueue before anything drains reports false.
func TestTriggerCoalesce(t *testing.T) {
	r := New(fastOptions(t, 0, 1)) // not Started: nothing drains the channel
	defer r.Close()
	if !r.TriggerCapture("manual", "first") {
		t.Fatal("first trigger refused")
	}
	if r.TriggerCapture("manual", "second") {
		t.Fatal("second trigger admitted with one already queued")
	}
	_, coalesced, _ := r.Stats()
	if coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", coalesced)
	}
}

// TestNilRecorderIsInert: a zero Dir disables capture and every method on
// the resulting nil recorder must no-op (the launchers wire unconditionally).
func TestNilRecorderIsInert(t *testing.T) {
	r := New(Options{Rank: 0, Ranks: 4})
	if r != nil {
		t.Fatal("New without Dir should return nil")
	}
	r.Start()
	r.Bind(nil)
	r.Pump()
	r.OnAlert(health.Alert{Name: "x"})
	if r.TriggerCapture("manual", "") {
		t.Fatal("nil recorder accepted a trigger")
	}
	if got := r.CaptureSync(Trigger{Kind: "manual"}, false); got != "" {
		t.Fatalf("nil CaptureSync = %q", got)
	}
	if c, co, b := r.Stats(); c+co+b != 0 {
		t.Fatalf("nil Stats = %d/%d/%d", c, co, b)
	}
	r.NotifySignals()
	r.Close()
}

// TestParseProfileRealGoroutineDump: the hand-rolled pprof walker must
// parse a real profile from this process and surface plausible symbols.
func TestParseProfileRealGoroutineDump(t *testing.T) {
	data := lookupProfile("goroutine")
	if data == nil {
		t.Fatal("lookupProfile returned nothing")
	}
	p, err := ParseProfile(data)
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if len(p.Samples) == 0 || len(p.SampleTypes) == 0 {
		t.Fatalf("parsed profile is empty: %d samples, types %v", len(p.Samples), p.SampleTypes)
	}
	if total := p.Total("goroutine"); total <= 0 {
		t.Fatalf("Total = %d, want > 0", total)
	}
	syms := p.FlatSymbols("goroutine")
	if len(syms) == 0 {
		t.Fatal("no symbols resolved")
	}
	// This very test function is a live goroutine; the runtime or testing
	// package must appear among the leaf symbols.
	found := false
	for _, s := range syms {
		if strings.Contains(s.Symbol, "testing.") || strings.Contains(s.Symbol, "runtime.") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no runtime/testing symbol among %d leaves (first: %+v)", len(syms), syms[0])
	}
}

// TestContinuousProfilerRing: the profiler takes an immediate first sample
// (the pre-incident guarantee) and bounds the ring per kind.
func TestContinuousProfilerRing(t *testing.T) {
	pr := newProfiler(20*time.Millisecond, 5*time.Millisecond, 2)
	pr.start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		es := pr.entries()
		byKind := map[string]int{}
		for _, e := range es {
			byKind[e.Kind]++
			if len(e.Data) == 0 {
				t.Fatalf("empty %s entry in ring", e.Kind)
			}
			if byKind[e.Kind] > 2 {
				t.Fatalf("ring kept %d %s entries, cap is 2", byKind[e.Kind], e.Kind)
			}
		}
		// Wait until eviction provably ran: 3+ cycles with a keep of 2.
		if byKind["goroutine"] == 2 && byKind["cpu"] == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never filled: %v", byKind)
		}
		time.Sleep(5 * time.Millisecond)
	}
	pr.close()
}

// TestWriteLocalFilesAtomically: bundles land via tmp+rename, so a reader
// listing the directory never sees a partial archive.
func TestBundleDirHasNoTempLeftovers(t *testing.T) {
	opt := fastOptions(t, 0, 1)
	opt.CPUProfile = -1
	r := New(opt)
	r.Start()
	defer r.Close()
	if p := r.CaptureSync(Trigger{Kind: "manual", Rank: 0}, true); p == "" {
		t.Fatal("capture failed")
	}
	ents, err := os.ReadDir(opt.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".tar.gz") {
			t.Fatalf("leftover non-bundle file %s in %s", e.Name(), opt.Dir)
		}
		if filepath.Ext(strings.TrimSuffix(e.Name(), ".tar.gz")) == ".tmp" {
			t.Fatalf("temp file leaked: %s", e.Name())
		}
	}
}
