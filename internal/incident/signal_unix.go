//go:build unix

package incident

import (
	"os"
	"os/signal"
	"syscall"
	"time"
)

// NotifySignals installs the recorder's signal handlers:
//
//   - SIGUSR1 requests an on-demand capture — the normal path through the
//     trigger queue and, in multi-rank jobs, rank 0's gather.
//   - SIGQUIT dumps the flight record (as tracing.NotifySIGQUIT would),
//     then writes a local-only emergency bundle — without the live CPU
//     profile, because the process is about to die; the continuous ring
//     already holds recent CPU evidence — and re-raises, so the Go
//     runtime's own goroutine dump and the process exit still happen.
//     The bundle write shares the single-flight guard with alert and
//     on-demand captures: if one is already running, SIGQUIT only dumps
//     and re-raises.
//
// Call at most once per process, instead of (not in addition to)
// tracing.NotifySIGQUIT. No-op on a nil recorder.
func (r *Recorder) NotifySignals() {
	if r == nil {
		return
	}
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	go func() {
		for {
			select {
			case <-r.stop:
				signal.Stop(usr1)
				return
			case <-usr1:
				r.TriggerCapture("signal", "SIGUSR1")
			}
		}
	}()

	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		<-quit
		r.opt.Tracer.Dump(os.Stderr, "SIGQUIT")
		r.CaptureSync(Trigger{
			Kind: "sigquit", Detail: "SIGQUIT emergency capture",
			Rank: r.opt.Rank, AtNs: time.Now().UnixNano(),
		}, false)
		signal.Reset(syscall.SIGQUIT)
		_ = syscall.Kill(os.Getpid(), syscall.SIGQUIT)
	}()
}
