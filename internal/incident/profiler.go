package incident

import (
	"bytes"
	"runtime/pprof"
	"sync"
	"time"
)

// procStart anchors the monotonic clock shipped in evidence metadata: every
// rank reports wall time plus nanoseconds since its own process start, so
// the analyzer can correct cross-rank wall-clock skew when aligning
// timelines.
var procStart = time.Now()

func monoNs() int64 { return time.Since(procStart).Nanoseconds() }

// cpuMu serializes CPU profiling process-wide: the Go runtime supports one
// CPU profile at a time, and both the continuous profiler and a live
// incident capture (plus, potentially, an operator hitting
// /debug/pprof/profile) want it.
var cpuMu sync.Mutex

// captureCPU records a CPU profile of roughly d, honoring an optional early
// cancel. A busy profiler (endpoint scrape in flight) returns the runtime's
// error rather than blocking the incident.
func captureCPU(d time.Duration, cancel <-chan struct{}) ([]byte, error) {
	cpuMu.Lock()
	defer cpuMu.Unlock()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return nil, err
	}
	t := time.NewTimer(d)
	select {
	case <-t.C:
	case <-cancel:
		t.Stop()
	}
	pprof.StopCPUProfile()
	return buf.Bytes(), nil
}

// lookupProfile renders a named runtime profile (heap, goroutine, mutex) in
// gzip+protobuf form.
func lookupProfile(name string) []byte {
	p := pprof.Lookup(name)
	if p == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		return nil
	}
	return buf.Bytes()
}

// ProfileEntry is one archived continuous-profiling sample.
type ProfileEntry struct {
	Kind   string `json:"kind"` // "cpu" | "goroutine"
	WallNs int64  `json:"wall_ns"`
	MonoNs int64  `json:"mono_ns"`
	Data   []byte `json:"-"`
}

// profiler is the continuous-profiling loop: a short CPU profile plus a
// goroutine snapshot every period, kept in a bounded ring. Its entire point
// is the *pre*-incident baseline — when an alert latches, the bundle
// already holds a profile from before things went wrong to diff the live
// capture against, and a rank too wedged to run a live profile still
// contributes its most recent archived one.
type profiler struct {
	period   time.Duration
	duration time.Duration
	keep     int

	mu   sync.Mutex
	ring []ProfileEntry // oldest first; bounded at keep entries per kind

	stop chan struct{}
	done chan struct{}
}

func newProfiler(period, duration time.Duration, keep int) *profiler {
	return &profiler{
		period:   period,
		duration: duration,
		keep:     keep,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (p *profiler) start() { go p.run() }

func (p *profiler) close() {
	close(p.stop)
	<-p.done
}

func (p *profiler) run() {
	defer close(p.done)
	// First sample immediately: the pre-incident guarantee must hold from
	// process start, not one period in.
	p.sampleOnce()
	t := time.NewTicker(p.period)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.sampleOnce()
		}
	}
}

// sampleOnce archives one goroutine snapshot and one CPU window.
func (p *profiler) sampleOnce() {
	now := time.Now()
	if g := lookupProfile("goroutine"); g != nil {
		p.add(ProfileEntry{Kind: "goroutine", WallNs: now.UnixNano(), MonoNs: monoNs(), Data: g})
	}
	cpu, err := captureCPU(p.duration, p.stop)
	if err == nil && len(cpu) > 0 {
		p.add(ProfileEntry{Kind: "cpu", WallNs: now.UnixNano(), MonoNs: monoNs(), Data: cpu})
	}
}

func (p *profiler) add(e ProfileEntry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ring = append(p.ring, e)
	// Evict the oldest entry of e.Kind beyond the per-kind budget.
	n := 0
	for _, x := range p.ring {
		if x.Kind == e.Kind {
			n++
		}
	}
	if n > p.keep {
		for i, x := range p.ring {
			if x.Kind == e.Kind {
				p.ring = append(p.ring[:i], p.ring[i+1:]...)
				break
			}
		}
	}
}

// entries returns the archived samples, oldest first.
func (p *profiler) entries() []ProfileEntry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ProfileEntry, len(p.ring))
	copy(out, p.ring)
	return out
}
