package incident

import (
	"sync"
	"time"
)

// guard is the single-flight capture latch. Three independent paths want to
// capture evidence — the SIGQUIT emergency dump, alert-triggered captures,
// and on-demand captures (HTTP / SIGUSR1) — and an incident tends to fire
// all of them within the same second. Exactly one capture may run at a
// time; late arrivals coalesce into the running one instead of stacking 2s
// CPU profiles, and a cooldown keeps a flapping detector from turning the
// recorder into a profile treadmill.
type guard struct {
	mu        sync.Mutex
	busy      bool
	lastEndNs int64

	captures  int64 // captures actually started
	coalesced int64 // attempts absorbed by a running capture or the cooldown
}

// begin claims the capture slot. force skips the cooldown (rank 0 already
// applied cluster-wide pacing before broadcasting a capture order) but never
// a running capture. ok=false means the attempt coalesced.
func (g *guard) begin(now time.Time, cooldown time.Duration, force bool) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.busy {
		g.coalesced++
		return false
	}
	if !force && g.lastEndNs != 0 && now.UnixNano()-g.lastEndNs < cooldown.Nanoseconds() {
		g.coalesced++
		return false
	}
	g.busy = true
	g.captures++
	return true
}

// end releases the slot and starts the cooldown window.
func (g *guard) end(now time.Time) {
	g.mu.Lock()
	g.busy = false
	g.lastEndNs = now.UnixNano()
	g.mu.Unlock()
}

// stats returns (captures started, attempts coalesced).
func (g *guard) stats() (int64, int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.captures, g.coalesced
}
