//go:build !unix

package incident

// NotifySignals is a no-op on platforms without SIGUSR1/SIGQUIT.
func (r *Recorder) NotifySignals() {}
