package incident

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// Minimal decoder for the pprof profile.proto format (gzip + protobuf).
// The repo carries no dependencies, so the few fields the analyzer needs —
// sample types, sample values with their location chains, and the
// location→line→function→name resolution for symbol attribution — are
// decoded by hand. Unknown fields are skipped per protobuf wire rules, so
// profiles from any Go runtime version parse.

// Profile is the decoded subset of a pprof profile.
type Profile struct {
	SampleTypes []string // e.g. ["samples", "cpu"] — type names only
	TimeNs      int64
	DurationNs  int64
	Samples     []ProfSample
	locLines    map[uint64][]uint64 // location id → function ids, leaf line first
	funcNames   map[uint64]string   // function id → name
}

// ProfSample is one sample: its location chain (leaf first) and one value
// per sample type.
type ProfSample struct {
	LocIDs []uint64
	Values []int64
}

// protobuf wire types.
const (
	wireVarint = 0
	wire64     = 1
	wireBytes  = 2
	wire32     = 5
)

func readVarint(b []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("truncated varint")
}

// walkFields iterates a protobuf message's fields, calling fn with each
// field number and its payload (varint value, or byte slice for
// length-delimited fields).
func walkFields(b []byte, fn func(field int, wire int, v uint64, raw []byte) error) error {
	for len(b) > 0 {
		key, n, err := readVarint(b)
		if err != nil {
			return err
		}
		b = b[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case wireVarint:
			v, n, err := readVarint(b)
			if err != nil {
				return err
			}
			b = b[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case wire64:
			if len(b) < 8 {
				return fmt.Errorf("truncated fixed64")
			}
			b = b[8:]
		case wireBytes:
			ln, n, err := readVarint(b)
			if err != nil {
				return err
			}
			b = b[n:]
			if uint64(len(b)) < ln {
				return fmt.Errorf("truncated bytes field")
			}
			if err := fn(field, wire, 0, b[:ln]); err != nil {
				return err
			}
			b = b[ln:]
		case wire32:
			if len(b) < 4 {
				return fmt.Errorf("truncated fixed32")
			}
			b = b[4:]
		default:
			return fmt.Errorf("unsupported wire type %d", wire)
		}
	}
	return nil
}

// packedVarints decodes a repeated-varint field that may arrive packed
// (length-delimited) or as a single unpacked value.
func packedVarints(wire int, v uint64, raw []byte, out []uint64) ([]uint64, error) {
	if wire == wireVarint {
		return append(out, v), nil
	}
	for len(raw) > 0 {
		x, n, err := readVarint(raw)
		if err != nil {
			return out, err
		}
		raw = raw[n:]
		out = append(out, x)
	}
	return out, nil
}

// ParseProfile decodes a (possibly gzipped) pprof profile.
func ParseProfile(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, err
		}
		data = raw
	}
	p := &Profile{
		locLines:  map[uint64][]uint64{},
		funcNames: map[uint64]string{},
	}
	var strtab []string
	var sampleTypeIdx []uint64
	funcNameIdx := map[uint64]uint64{}
	err := walkFields(data, func(field, wire int, v uint64, raw []byte) error {
		switch field {
		case 1: // ValueType sample_type
			return walkFields(raw, func(f, w int, vv uint64, _ []byte) error {
				if f == 1 && w == wireVarint {
					sampleTypeIdx = append(sampleTypeIdx, vv)
				}
				return nil
			})
		case 2: // Sample
			var s ProfSample
			err := walkFields(raw, func(f, w int, vv uint64, rr []byte) error {
				var err error
				switch f {
				case 1: // location_id
					s.LocIDs, err = packedVarints(w, vv, rr, s.LocIDs)
				case 2: // value
					var vals []uint64
					vals, err = packedVarints(w, vv, rr, nil)
					for _, x := range vals {
						s.Values = append(s.Values, int64(x))
					}
				}
				return err
			})
			if err != nil {
				return err
			}
			p.Samples = append(p.Samples, s)
		case 4: // Location
			var id uint64
			var fns []uint64
			err := walkFields(raw, func(f, w int, vv uint64, rr []byte) error {
				switch f {
				case 1:
					id = vv
				case 4: // Line
					return walkFields(rr, func(lf, lw int, lv uint64, _ []byte) error {
						if lf == 1 && lw == wireVarint {
							fns = append(fns, lv)
						}
						return nil
					})
				}
				return nil
			})
			if err != nil {
				return err
			}
			p.locLines[id] = fns
		case 5: // Function
			var id, nameIdx uint64
			err := walkFields(raw, func(f, w int, vv uint64, _ []byte) error {
				switch f {
				case 1:
					id = vv
				case 2:
					nameIdx = vv
				}
				return nil
			})
			if err != nil {
				return err
			}
			// Resolved after the walk: proto offers no field-order guarantee,
			// so the string table may follow the functions.
			funcNameIdx[id] = nameIdx
		case 6: // string_table
			strtab = append(strtab, string(raw))
		case 9:
			p.TimeNs = int64(v)
		case 10:
			p.DurationNs = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Second pass: resolve stashed string-table indices.
	resolve := func(idx uint64) string {
		if idx < uint64(len(strtab)) {
			return strtab[idx]
		}
		return fmt.Sprintf("?str%d", idx)
	}
	for _, idx := range sampleTypeIdx {
		p.SampleTypes = append(p.SampleTypes, resolve(idx))
	}
	for id, nameIdx := range funcNameIdx {
		p.funcNames[id] = resolve(nameIdx)
	}
	return p, nil
}

// leafSymbol names a sample's leaf frame: the first location's first line's
// function (pprof stores stacks leaf-first).
func (p *Profile) leafSymbol(s ProfSample) string {
	for _, loc := range s.LocIDs {
		fns := p.locLines[loc]
		if len(fns) == 0 {
			continue
		}
		if name, ok := p.funcNames[fns[0]]; ok && name != "" {
			return name
		}
	}
	return "(unknown)"
}

// valueIndex picks which sample value to aggregate: the one whose type name
// matches want, else the last (pprof convention: the default measurement).
func (p *Profile) valueIndex(want string) int {
	for i, t := range p.SampleTypes {
		if t == want {
			return i
		}
	}
	return len(p.SampleTypes) - 1
}

// SymbolValue is one row of a flat-symbol aggregation.
type SymbolValue struct {
	Symbol string
	Value  int64
}

// FlatSymbols aggregates the named sample value by leaf symbol, descending.
// For CPU profiles want is "cpu" (nanoseconds); for goroutine profiles the
// count is the only value.
func (p *Profile) FlatSymbols(want string) []SymbolValue {
	idx := p.valueIndex(want)
	if idx < 0 {
		return nil
	}
	agg := map[string]int64{}
	for _, s := range p.Samples {
		if idx >= len(s.Values) {
			continue
		}
		agg[p.leafSymbol(s)] += s.Values[idx]
	}
	out := make([]SymbolValue, 0, len(agg))
	for sym, v := range agg {
		out = append(out, SymbolValue{sym, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Symbol < out[j].Symbol
	})
	return out
}

// Total sums the named sample value across all samples.
func (p *Profile) Total(want string) int64 {
	idx := p.valueIndex(want)
	if idx < 0 {
		return 0
	}
	var t int64
	for _, s := range p.Samples {
		if idx < len(s.Values) {
			t += s.Values[idx]
		}
	}
	return t
}
