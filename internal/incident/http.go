package incident

import (
	"encoding/json"
	"net/http"
	"time"
)

// statusPayload is the /debug/incident body.
type statusPayload struct {
	Enabled    bool   `json:"enabled"`
	Rank       int    `json:"rank"`
	Ranks      int    `json:"ranks"`
	Dir        string `json:"dir,omitempty"`
	Captures   int64  `json:"captures"`
	Coalesced  int64  `json:"coalesced"`
	Bundles    int64  `json:"bundles"`
	LastBundle string `json:"last_bundle,omitempty"`
	Continuous []struct {
		Kind   string `json:"kind"`
		WallNs int64  `json:"wall_ns"`
		Bytes  int    `json:"bytes"`
	} `json:"continuous_profiles"`
}

// ServeStatus is the /debug/incident handler: capture counters, the last
// bundle path, and the continuous-profiling ring's inventory.
func (r *Recorder) ServeStatus(w http.ResponseWriter, _ *http.Request) {
	p := statusPayload{}
	if r != nil {
		p.Enabled = true
		p.Rank, p.Ranks, p.Dir = r.opt.Rank, r.opt.Ranks, r.opt.Dir
		p.Captures, p.Coalesced, p.Bundles = r.Stats()
		p.LastBundle = r.LastBundle()
		for _, e := range r.ProfileEntries() {
			p.Continuous = append(p.Continuous, struct {
				Kind   string `json:"kind"`
				WallNs int64  `json:"wall_ns"`
				Bytes  int    `json:"bytes"`
			}{e.Kind, e.WallNs, len(e.Data)})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(p)
}

// ServeCapture is the /debug/incident/capture handler: requests an
// on-demand capture and reports whether it was accepted or coalesced. The
// capture itself runs asynchronously; poll /debug/incident for the bundle
// path.
func (r *Recorder) ServeCapture(w http.ResponseWriter, req *http.Request) {
	accepted := r.TriggerCapture("manual", "via /debug/incident/capture from "+req.RemoteAddr)
	w.Header().Set("Content-Type", "application/json")
	if r == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{
			"accepted": false, "error": "incident capture disabled (no -incident-dir)",
		})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{
		"accepted":      accepted,
		"coalesced":     !accepted,
		"requested_at":  time.Now().UnixNano(),
		"last_bundle":   r.LastBundle(),
		"gather_budget": r.opt.GatherTimeout.String(),
	})
}
