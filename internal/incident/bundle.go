package incident

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// SchemaVersion is the manifest schema this code writes; verify rejects
// bundles from a newer schema instead of misreading them.
const SchemaVersion = 1

// ManifestName is the manifest's entry name inside a bundle.
const ManifestName = "manifest.json"

// Clock is one rank's capture-time clock pair. Wall clocks across hosts
// drift; mono is nanoseconds since that rank's process start, so two ranks'
// timelines align by (wall - wall0) with mono as the per-rank sanity check.
type Clock struct {
	Rank   int   `json:"rank"`
	WallNs int64 `json:"wall_ns"`
	MonoNs int64 `json:"mono_ns"`
}

// Manifest is the bundle's manifest.json.
type Manifest struct {
	Schema    int                 `json:"schema"`
	ID        string              `json:"id"`
	CreatedNs int64               `json:"created_ns"`
	Ranks     int                 `json:"ranks"`          // job size
	GotRanks  []int               `json:"got_ranks"`      // ranks whose evidence arrived
	Missing   []int               `json:"missing_ranks"`  // ranks that timed out
	Trigger   Trigger             `json:"trigger"`
	Clocks    []Clock             `json:"clocks"`
	Entries   map[string][]string `json:"entries"` // "rank-N" → sorted file list
	GoVersion string              `json:"go_version"`
}

// rankDir names rank r's directory inside the bundle.
func rankDir(r int) string { return fmt.Sprintf("rank-%d", r) }

// writeBundle assembles the outer tar.gz from per-rank evidence blobs
// (gzipped inner tars keyed by rank) and writes it atomically under dir.
// Returns the bundle path.
func writeBundle(dir, id string, trig Trigger, ranks int, blobs map[int][]byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	man := Manifest{
		Schema:    SchemaVersion,
		ID:        id,
		CreatedNs: time.Now().UnixNano(),
		Ranks:     ranks,
		Trigger:   trig,
		Entries:   map[string][]string{},
		GoVersion: runtime.Version(),
	}

	type rankFiles struct {
		rank  int
		files map[string][]byte
	}
	var unpacked []rankFiles
	for r := 0; r < ranks; r++ {
		blob, ok := blobs[r]
		if !ok || len(blob) == 0 {
			man.Missing = append(man.Missing, r)
			continue
		}
		files, err := unpackEvidence(blob)
		if err != nil || len(files) == 0 {
			man.Missing = append(man.Missing, r)
			continue
		}
		man.GotRanks = append(man.GotRanks, r)
		unpacked = append(unpacked, rankFiles{r, files})
		names := make([]string, 0, len(files))
		for name := range files {
			names = append(names, name)
		}
		sort.Strings(names)
		man.Entries[rankDir(r)] = names
		if mb, ok := files[FileMeta]; ok {
			var meta Meta
			if json.Unmarshal(mb, &meta) == nil {
				man.Clocks = append(man.Clocks, Clock{Rank: r, WallNs: meta.WallNs, MonoNs: meta.MonoNs})
			}
		}
	}
	if man.GotRanks == nil {
		man.GotRanks = []int{}
	}
	if man.Missing == nil {
		man.Missing = []int{}
	}

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	tw := tar.NewWriter(zw)
	now := time.Now()
	add := func(name string, data []byte) error {
		hdr := &tar.Header{Name: name, Mode: 0o644, Size: int64(len(data)), ModTime: now}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return "", err
	}
	if err := add(ManifestName, mb); err != nil {
		return "", err
	}
	for _, rf := range unpacked {
		names := man.Entries[rankDir(rf.rank)]
		for _, name := range names {
			if err := add(rankDir(rf.rank)+"/"+name, rf.files[name]); err != nil {
				return "", err
			}
		}
	}
	if err := tw.Close(); err != nil {
		return "", err
	}
	if err := zw.Close(); err != nil {
		return "", err
	}

	path := filepath.Join(dir, id+".tar.gz")
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return "", err
	}
	return path, nil
}

// writeFileAtomic writes via a temp file + rename so a reader (CI, an
// operator's shell glob) never sees a torn bundle.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Bundle is a read-back incident bundle.
type Bundle struct {
	Path     string
	Manifest Manifest
	Files    map[string][]byte // "rank-0/cpu.pprof" → bytes
}

// ReadBundle opens and fully decodes a bundle file.
func ReadBundle(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("%s: not a gzip stream: %w", path, err)
	}
	defer zr.Close()
	b := &Bundle{Path: path, Files: map[string][]byte{}}
	tr := tar.NewReader(zr)
	for {
		hdr, err := tr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("%s: tar: %w", path, err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(tr); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", path, hdr.Name, err)
		}
		b.Files[hdr.Name] = buf.Bytes()
	}
	mb, ok := b.Files[ManifestName]
	if !ok {
		return nil, fmt.Errorf("%s: no %s entry", path, ManifestName)
	}
	if err := json.Unmarshal(mb, &b.Manifest); err != nil {
		return nil, fmt.Errorf("%s: manifest: %w", path, err)
	}
	return b, nil
}

// Verify checks the bundle's internal consistency: schema, manifest↔entry
// agreement, per-rank meta presence, and that every .pprof and .json entry
// actually parses. Returns every problem found.
func (b *Bundle) Verify() []string {
	var probs []string
	bad := func(format string, args ...any) { probs = append(probs, fmt.Sprintf(format, args...)) }
	m := b.Manifest
	if m.Schema <= 0 || m.Schema > SchemaVersion {
		bad("unsupported schema %d (this tool reads ≤ %d)", m.Schema, SchemaVersion)
	}
	if m.ID == "" {
		bad("empty manifest id")
	}
	if m.Ranks <= 0 {
		bad("manifest ranks = %d", m.Ranks)
	}
	if len(m.GotRanks)+len(m.Missing) != m.Ranks {
		bad("got_ranks (%d) + missing_ranks (%d) != ranks (%d)",
			len(m.GotRanks), len(m.Missing), m.Ranks)
	}
	if m.Trigger.Kind == "" {
		bad("manifest trigger has no kind")
	}
	for _, r := range m.GotRanks {
		dir := rankDir(r)
		names, ok := m.Entries[dir]
		if !ok {
			bad("rank %d in got_ranks but has no entries", r)
			continue
		}
		hasMeta := false
		for _, name := range names {
			full := dir + "/" + name
			data, ok := b.Files[full]
			if !ok {
				bad("%s listed in manifest but absent from archive", full)
				continue
			}
			switch {
			case strings.HasSuffix(name, ".pprof"):
				if _, err := ParseProfile(data); err != nil {
					bad("%s: unparseable profile: %v", full, err)
				}
			case strings.HasSuffix(name, ".json"):
				var v any
				if err := json.Unmarshal(data, &v); err != nil {
					bad("%s: invalid JSON: %v", full, err)
				}
			}
			if name == FileMeta {
				hasMeta = true
			}
		}
		if !hasMeta {
			bad("rank %d evidence has no %s", r, FileMeta)
		}
	}
	// Archive entries not accounted for by the manifest.
	for full := range b.Files {
		if full == ManifestName {
			continue
		}
		dir, name, ok := strings.Cut(full, "/")
		if !ok {
			bad("unexpected top-level entry %q", full)
			continue
		}
		found := false
		for _, n := range b.Manifest.Entries[dir] {
			if n == name {
				found = true
				break
			}
		}
		if !found {
			bad("archive entry %q not listed in manifest", full)
		}
	}
	sort.Strings(probs)
	return probs
}

// RankFile returns one rank's evidence file (nil when absent).
func (b *Bundle) RankFile(rank int, name string) []byte {
	return b.Files[rankDir(rank)+"/"+name]
}

// RankMeta decodes one rank's meta.json.
func (b *Bundle) RankMeta(rank int) (Meta, bool) {
	var m Meta
	data := b.RankFile(rank, FileMeta)
	if data == nil {
		return m, false
	}
	return m, json.Unmarshal(data, &m) == nil
}
