// Package bitset provides a fixed-size concurrent bitset.
//
// The graph runtimes use bitsets to track which proxies were updated in a
// round: compute threads set bits concurrently during the operator phase, and
// the gather phase reads them to serialize only updated labels (the paper's
// "synchronizing only the updated labels" optimization in Abelian).
package bitset

import (
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Bitset is a fixed-capacity set of bit indices [0, Len).
//
// Set, Clear and Test are safe for concurrent use. Bulk operations (Reset,
// Count, ForEach, Words) are safe to run concurrently with setters but see
// a racy snapshot; callers in the BSP runtimes sequence them with phase
// barriers.
type Bitset struct {
	n     int
	words []atomic.Uint64
}

// New returns a bitset able to hold n bits, all clear.
func New(n int) *Bitset {
	return &Bitset{n: n, words: make([]atomic.Uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i. It reports whether the bit was previously clear (i.e. this
// call changed it), which lets callers maintain "newly activated" counts.
func (b *Bitset) Set(i int) bool {
	w, m := i/wordBits, uint64(1)<<(i%wordBits)
	for {
		old := b.words[w].Load()
		if old&m != 0 {
			return false
		}
		if b.words[w].CompareAndSwap(old, old|m) {
			return true
		}
	}
}

// Clear clears bit i.
func (b *Bitset) Clear(i int) {
	w, m := i/wordBits, uint64(1)<<(i%wordBits)
	for {
		old := b.words[w].Load()
		if old&m == 0 {
			return
		}
		if b.words[w].CompareAndSwap(old, old&^m) {
			return
		}
	}
}

// Test reports whether bit i is set.
func (b *Bitset) Test(i int) bool {
	return b.words[i/wordBits].Load()&(uint64(1)<<(i%wordBits)) != 0
}

// Reset clears all bits.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i].Store(0)
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for i := range b.words {
		n += bits.OnesCount64(b.words[i].Load())
	}
	return n
}

// Any reports whether any bit is set.
func (b *Bitset) Any() bool {
	for i := range b.words {
		if b.words[i].Load() != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for w := range b.words {
		word := b.words[w].Load()
		base := w * wordBits
		for word != 0 {
			t := bits.TrailingZeros64(word)
			fn(base + t)
			word &^= 1 << t
		}
	}
}

// CountRange returns the number of set bits in [lo, hi).
func (b *Bitset) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	n := 0
	for i := lo; i < hi; {
		w := i / wordBits
		word := b.words[w].Load()
		// Mask off bits below i and at/above hi within this word.
		word &= ^uint64(0) << (i % wordBits)
		end := (w + 1) * wordBits
		if end > hi {
			word &= (uint64(1) << (hi % wordBits)) - 1
		}
		n += bits.OnesCount64(word)
		i = end
	}
	return n
}

// ForEachRange calls fn for every set bit i with lo <= i < hi, ascending.
func (b *Bitset) ForEachRange(lo, hi int, fn func(i int)) {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	for i := lo; i < hi; {
		w := i / wordBits
		word := b.words[w].Load()
		word &= ^uint64(0) << (i % wordBits)
		end := (w + 1) * wordBits
		if end > hi {
			word &= (uint64(1) << (hi % wordBits)) - 1
		}
		base := w * wordBits
		for word != 0 {
			t := bits.TrailingZeros64(word)
			fn(base + t)
			word &^= 1 << t
		}
		i = end
	}
}
