package bitset

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		if !b.Set(i) {
			t.Fatalf("Set(%d) reported already-set", i)
		}
		if b.Set(i) {
			t.Fatalf("second Set(%d) reported newly-set", i)
		}
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	b.Clear(64) // idempotent
	if b.Count() != 7 {
		t.Fatalf("Count = %d, want 7", b.Count())
	}
	b.Reset()
	if b.Any() || b.Count() != 0 {
		t.Fatal("bits remain after Reset")
	}
}

func TestForEachOrder(t *testing.T) {
	b := New(200)
	want := []int{3, 64, 65, 100, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

// TestQuickAgainstMap cross-checks the bitset against a map model over random
// operation sequences.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 300
		b := New(n)
		model := map[int]bool{}
		for _, op := range ops {
			i := int(op) % n
			switch op % 3 {
			case 0:
				b.Set(i)
				model[i] = true
			case 1:
				b.Clear(i)
				delete(model, i)
			case 2:
				if b.Test(i) != model[i] {
					return false
				}
			}
		}
		if b.Count() != len(model) {
			return false
		}
		ok := true
		b.ForEach(func(i int) {
			if !model[i] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeOps(t *testing.T) {
	b := New(256)
	set := []int{0, 5, 63, 64, 70, 127, 128, 200, 255}
	for _, i := range set {
		b.Set(i)
	}
	for _, tc := range []struct{ lo, hi, want int }{
		{0, 256, 9}, {0, 0, 0}, {0, 1, 1}, {1, 5, 0}, {5, 6, 1},
		{64, 128, 3}, {63, 65, 2}, {128, 256, 3}, {201, 255, 0},
		{-5, 1000, 9},
	} {
		if got := b.CountRange(tc.lo, tc.hi); got != tc.want {
			t.Errorf("CountRange(%d,%d) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
		n := 0
		b.ForEachRange(tc.lo, tc.hi, func(i int) {
			if i < tc.lo || i >= tc.hi || !b.Test(i) {
				t.Errorf("ForEachRange(%d,%d) visited bad index %d", tc.lo, tc.hi, i)
			}
			n++
		})
		if n != tc.want {
			t.Errorf("ForEachRange(%d,%d) visited %d, want %d", tc.lo, tc.hi, n, tc.want)
		}
	}
}

// TestConcurrentSet checks that N goroutines setting disjoint random bits
// lose nothing, and that exactly one Set per bit reports "newly set".
func TestConcurrentSet(t *testing.T) {
	const n = 1 << 14
	b := New(n)
	idx := rand.New(rand.NewSource(1)).Perm(n)
	var newly sync.Map
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Goroutines overlap on every index: each bit is attempted 8×.
			for _, i := range idx {
				if b.Set(i) {
					if _, dup := newly.LoadOrStore(i, g); dup {
						t.Errorf("bit %d newly-set twice", i)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if b.Count() != n {
		t.Fatalf("Count = %d, want %d", b.Count(), n)
	}
}

func BenchmarkSet(b *testing.B) {
	bs := New(1 << 20)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			bs.Set(i & (1<<20 - 1))
			i += 997
		}
	})
}
