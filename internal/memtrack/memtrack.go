// Package memtrack instruments communication-buffer allocations.
//
// The paper's Fig. 5 reports, per host, the maximum size of the working set
// of communication buffers (allocations minus frees, tracked over the run,
// excluding MPI-internal memory). Each simulated host owns a Tracker; the
// communication layers report every buffer they allocate and release, so the
// experiment harness can read back max/min footprints across hosts.
package memtrack

import "sync/atomic"

// Tracker counts live communication-buffer bytes on one host.
// The zero value is ready to use. All methods are safe for concurrent use.
type Tracker struct {
	cur    atomic.Int64
	max    atomic.Int64
	allocs atomic.Int64
	frees  atomic.Int64
}

// Alloc records an allocation of n bytes.
func (t *Tracker) Alloc(n int) {
	if t == nil || n == 0 {
		return
	}
	t.allocs.Add(1)
	cur := t.cur.Add(int64(n))
	for {
		max := t.max.Load()
		if cur <= max || t.max.CompareAndSwap(max, cur) {
			return
		}
	}
}

// Free records the release of n bytes previously reported via Alloc.
func (t *Tracker) Free(n int) {
	if t == nil || n == 0 {
		return
	}
	t.frees.Add(1)
	t.cur.Add(int64(-n))
}

// Current returns the live byte count.
func (t *Tracker) Current() int64 {
	if t == nil {
		return 0
	}
	return t.cur.Load()
}

// Max returns the maximum live byte count observed (the working-set
// footprint Fig. 5 reports).
func (t *Tracker) Max() int64 {
	if t == nil {
		return 0
	}
	return t.max.Load()
}

// Counts returns total numbers of Alloc and Free calls.
func (t *Tracker) Counts() (allocs, frees int64) {
	if t == nil {
		return 0, 0
	}
	return t.allocs.Load(), t.frees.Load()
}

// Reset zeroes all counters.
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	t.cur.Store(0)
	t.max.Store(0)
	t.allocs.Store(0)
	t.frees.Store(0)
}
