package memtrack

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	var tr Tracker
	tr.Alloc(100)
	tr.Alloc(50)
	if tr.Current() != 150 || tr.Max() != 150 {
		t.Fatalf("cur=%d max=%d", tr.Current(), tr.Max())
	}
	tr.Free(100)
	if tr.Current() != 50 || tr.Max() != 150 {
		t.Fatalf("cur=%d max=%d after free", tr.Current(), tr.Max())
	}
	tr.Alloc(60)
	if tr.Max() != 150 {
		t.Fatalf("max moved to %d without new high-water", tr.Max())
	}
	tr.Alloc(1000)
	if tr.Max() != 1110 {
		t.Fatalf("max=%d want 1110", tr.Max())
	}
	a, f := tr.Counts()
	if a != 4 || f != 1 {
		t.Fatalf("counts = %d,%d", a, f)
	}
	tr.Reset()
	if tr.Current() != 0 || tr.Max() != 0 {
		t.Fatal("reset did not zero")
	}
}

func TestNilAndZeroSafe(t *testing.T) {
	var nilTr *Tracker
	nilTr.Alloc(10) // must not panic
	nilTr.Free(10)
	if nilTr.Current() != 0 || nilTr.Max() != 0 {
		t.Fatal("nil tracker returned nonzero")
	}
	var tr Tracker
	tr.Alloc(0)
	tr.Free(0)
	if a, f := tr.Counts(); a != 0 || f != 0 {
		t.Fatal("zero-size ops were counted")
	}
}

// TestQuickMaxInvariant: max is the running maximum of the prefix sums.
func TestQuickMaxInvariant(t *testing.T) {
	f := func(deltas []int16) bool {
		var tr Tracker
		var cur, max int64
		for _, d := range deltas {
			n := int(d)
			if n >= 0 {
				tr.Alloc(n)
				cur += int64(n)
			} else {
				tr.Free(-n)
				cur -= int64(-n)
			}
			if cur > max {
				max = cur
			}
		}
		return tr.Current() == cur && tr.Max() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMax: with concurrent alloc/free pairs the final current is 0
// and max is at least the largest single allocation and at most the sum.
func TestConcurrentMax(t *testing.T) {
	var tr Tracker
	const g, per, size = 8, 1000, 64
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				tr.Alloc(size)
				tr.Free(size)
			}
		}()
	}
	wg.Wait()
	if tr.Current() != 0 {
		t.Fatalf("current = %d, want 0", tr.Current())
	}
	if tr.Max() < size || tr.Max() > g*size {
		t.Fatalf("max = %d, want in [%d,%d]", tr.Max(), size, g*size)
	}
}
