// Package abelian implements a distributed vertex-program runtime in the
// style of the paper's Abelian system (§II, §III-A): general vertex-cut
// partitioning with master/mirror proxies, BSP rounds of compute followed
// by field synchronization, partition-aware selection of reduce/broadcast,
// updated-only value shipping with bitmap metadata, and parallel
// gather/scatter on the compute threads.
//
// Applications (internal/apps) are written directly against Runtime and
// Field, the way Abelian programs use its sync structures.
package abelian

import (
	"time"

	"lcigraph/internal/cluster"
	"lcigraph/internal/comm"
	"lcigraph/internal/partition"
	"lcigraph/internal/telemetry"
	"lcigraph/internal/trace"
)

// HealthSink receives the runtime's per-round health signals. NoteRound
// accounts one finished round and the time this rank spent in end-of-round
// communication (field sync + allreduce), which is dominated by waiting for
// stragglers — the superstep skew signal (a rank that finishes early waits
// long; the straggler waits least). Pump gives the sink a turn on the
// comm-layer-owning goroutine for its own reserved-tag traffic (heartbeat
// digests). health.Monitor implements it.
type HealthSink interface {
	NoteRound(barrier time.Duration)
	Pump()
}

// Runtime is one host's Abelian runtime instance.
type Runtime struct {
	Host *cluster.Host
	HG   *partition.HostGraph
	Pol  partition.Policy

	// Health, if set, receives NoteRound/Pump once per BSP round — from
	// RecordRound (the path every app takes) or EndRound.
	Health HealthSink

	// Fused enables the tighter LCI integration of §VI (future work):
	// gather buffers are injected from the compute threads as they
	// complete. Ignored for layers without thread-direct sends.
	Fused bool

	nextTag uint32
	fields  []*Field

	// Per-round instrumentation (Fig. 6): wall time in compute vs
	// non-overlapped communication.
	ComputeTime time.Duration
	CommTime    time.Duration
	Rounds      int

	// Trace, if set, receives one record per round (RecordRound).
	Trace       *trace.Trace
	lastCompute time.Duration
	lastComm    time.Duration
	healthComm  time.Duration // CommTime at the last health note

	// Per-round traffic comes from the layer's message-size histogram
	// (count = messages, sum = payload bytes), differenced between
	// RecordRound calls. Resolved lazily from the layer's telemetry.
	msgBytes  *telemetry.Histogram
	metOnce   bool
	lastMsgs  int64
	lastBytes int64
}

// New builds a runtime for host h over its partition.
func New(h *cluster.Host, hg *partition.HostGraph, pol partition.Policy) *Runtime {
	return &Runtime{Host: h, HG: hg, Pol: pol}
}

// timeCompute runs fn and accounts its wall time as computation.
func (rt *Runtime) timeCompute(fn func()) {
	start := time.Now()
	fn()
	rt.ComputeTime += time.Since(start)
}

// timeComm runs fn and accounts its wall time as (non-overlapped)
// communication.
func (rt *Runtime) timeComm(fn func()) {
	start := time.Now()
	fn()
	rt.CommTime += time.Since(start)
}

// Compute runs fn on the host's compute threads, timed as computation.
// fn receives the worker pool for parallel loops.
func (rt *Runtime) Compute(fn func()) { rt.timeCompute(fn) }

// noteHealthRound feeds the health sink one finished round and the comm
// time accumulated since the last note. It runs on the goroutine that owns
// the comm layer (rounds are driven from the host main goroutine), which is
// what makes the Pump call safe under the AsyncLayer contract.
func (rt *Runtime) noteHealthRound() {
	if rt.Health == nil {
		return
	}
	rt.Health.NoteRound(rt.CommTime - rt.healthComm)
	rt.healthComm = rt.CommTime
	rt.Health.Pump()
}

// RecordRound emits one trace record covering the compute and comm time
// accumulated since the previous record, and gives the health sink its
// per-round turn. The trace part is a no-op without a Trace.
func (rt *Runtime) RecordRound() {
	rt.noteHealthRound()
	if rt.Trace == nil {
		return
	}
	if !rt.metOnce {
		rt.metOnce = true
		if tp, ok := rt.Host.Layer.(comm.TelemetryProvider); ok {
			if reg := tp.Telemetry(); reg.Enabled() {
				rt.msgBytes = reg.Histogram(comm.MsgBytesMetric(rt.Host.Layer.Name()))
			}
		}
	}
	msgs, bytes := rt.msgBytes.Count(), rt.msgBytes.Sum() // nil-safe: 0 when dark
	rt.Trace.Append(trace.Round{
		Host:    rt.Host.Rank,
		Round:   rt.Rounds,
		Compute: rt.ComputeTime - rt.lastCompute,
		Comm:    rt.CommTime - rt.lastComm,
		Bytes:   bytes - rt.lastBytes,
		Msgs:    msgs - rt.lastMsgs,
	})
	rt.lastCompute = rt.ComputeTime
	rt.lastComm = rt.CommTime
	rt.lastMsgs, rt.lastBytes = msgs, bytes
}

// EndRound closes a BSP round: it synchronizes the given fields (reduce,
// then broadcast where the policy requires it), counts the round, and
// returns the global number of activations for quiescence detection.
func (rt *Runtime) EndRound(localActivations int64, fields ...*Field) int64 {
	for _, f := range fields {
		f.Sync()
	}
	rt.Rounds++
	start := time.Now()
	total := rt.Host.AllreduceSum(localActivations)
	rt.CommTime += time.Since(start)
	rt.noteHealthRound()
	return total
}
