package abelian

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"lcigraph/internal/bitset"
	"lcigraph/internal/cluster"
)

// Field is one distributed vertex label: a uint64 slot per local proxy
// (applications pack their value type — distance, component id, float bits —
// into the word), an updated-bitset, a reduction operator, and the
// synchronization machinery of §III-A.
//
// Writes go through Apply (a CAS loop with the reduction operator) from any
// compute thread; Sync ships only updated entries, using a bitmap over the
// statically-known per-peer sync lists so no per-element indices travel.
type Field struct {
	rt       *Runtime
	Vals     []atomic.Uint64
	updated  *bitset.Bitset
	identity uint64
	reduce   func(a, b uint64) uint64

	tagReduce uint32
	tagBcast  uint32

	// OnChange, if set, is called for every proxy whose value changed due
	// to synchronization (activation hook). It may be called concurrently
	// from scatter workers.
	OnChange func(lv uint32)

	reduceRecvMax []int
	bcastRecvMax  []int
	reduceExpect  []bool
	bcastExpect   []bool
}

// NewField creates a field initialized to identity everywhere.
func (rt *Runtime) NewField(identity uint64, reduce func(a, b uint64) uint64) *Field {
	hg := rt.HG
	f := &Field{
		rt:        rt,
		Vals:      make([]atomic.Uint64, hg.NumLocal),
		updated:   bitset.New(hg.NumLocal),
		identity:  identity,
		reduce:    reduce,
		tagReduce: rt.nextTag,
		tagBcast:  rt.nextTag + 1,
	}
	// [cluster.IncidentTag, cluster.CollectiveTag] is reserved: collectives
	// ride CollectiveTag, the serving layer's query/reply/control traffic
	// rides the tags below it, health heartbeats ride HealthTag, and
	// incident-capture evidence rides IncidentTag at the bottom. A field tag
	// reaching the range would silently corrupt any of them.
	if f.tagBcast >= cluster.IncidentTag {
		panic(fmt.Sprintf("abelian: field tags %d/%d reach the reserved range [%d,%d] (too many fields on one runtime)",
			f.tagReduce, f.tagBcast, cluster.IncidentTag, cluster.CollectiveTag))
	}
	rt.nextTag += 2
	if identity != 0 {
		for i := range f.Vals {
			f.Vals[i].Store(identity)
		}
	}
	P := hg.P
	f.reduceRecvMax = make([]int, P)
	f.bcastRecvMax = make([]int, P)
	f.reduceExpect = make([]bool, P)
	f.bcastExpect = make([]bool, P)
	for p := 0; p < P; p++ {
		// Reduce: we receive from hosts holding mirrors of our masters.
		f.reduceRecvMax[p] = msgSize(len(hg.MastersFor[p]), len(hg.MastersFor[p]))
		f.reduceExpect[p] = len(hg.MastersFor[p]) > 0
		// Broadcast: we receive from master hosts of our mirrors.
		f.bcastRecvMax[p] = msgSize(len(hg.MirrorsHere[p]), len(hg.MirrorsHere[p]))
		f.bcastExpect[p] = len(hg.MirrorsHere[p]) > 0
	}
	rt.fields = append(rt.fields, f)
	return f
}

// Wire format of a sync message over a list of length L carrying C updated
// values: a u32 header whose high bit selects the encoding —
//
//	bitmap (bit clear): header | ⌈L/8⌉ bitmap bytes | C × u64 values
//	pairs  (bit set):   header | C × (u32 list index, u64 value)
//
// The gather picks whichever is smaller (pairs win when C < L/32), the
// density-adaptive metadata minimization Abelian's runtime performs.
const pairFormat = uint32(1) << 31

// msgSize returns the worst-case wire size of a sync message carrying
// `count` updated values out of a list of length `list` (the bitmap format;
// the pairs format is only chosen when it is smaller).
func msgSize(list, count int) int {
	if list == 0 {
		return 0
	}
	return 4 + (list+7)/8 + 8*count
}

// fusedLayer is the optional tighter LCI integration (§VI future work):
// per-peer gather buffers enter the network from the compute threads as
// they complete instead of waiting for the full gather phase.
type fusedLayer interface {
	BeginFused(tag uint32) uint32
	SendFused(thread, peer int, eff uint32, data []byte)
	FinishFused(eff uint32, expect []bool, onRecv func(peer int, data []byte))
}

// Get reads the current value of local proxy lv.
func (f *Field) Get(lv uint32) uint64 { return f.Vals[lv].Load() }

// Set stores v unconditionally and marks lv updated.
func (f *Field) Set(lv uint32, v uint64) {
	f.Vals[lv].Store(v)
	f.updated.Set(int(lv))
}

// SetLocal stores v without marking updated (initialization).
func (f *Field) SetLocal(lv uint32, v uint64) { f.Vals[lv].Store(v) }

// Apply combines v into proxy lv with the field's reduction operator,
// atomically. It returns true — and marks the proxy updated — when the
// stored value changed.
func (f *Field) Apply(lv uint32, v uint64) bool {
	for {
		old := f.Vals[lv].Load()
		merged := f.reduce(old, v)
		if merged == old {
			return false
		}
		if f.Vals[lv].CompareAndSwap(old, merged) {
			f.updated.Set(int(lv))
			return true
		}
	}
}

// Sync performs the policy-appropriate synchronization: reduce
// (mirrors→masters) always, broadcast (masters→mirrors) when the
// partitioning policy replicates read vertices (§II's partition-aware
// choice).
func (f *Field) Sync() {
	f.SyncReduce()
	if f.rt.Pol.NeedsBroadcast() {
		f.SyncBroadcast()
	}
}

// SyncReduce ships updated mirror values to their masters and combines them
// with the reduction operator. Shipped mirrors are reset to the identity so
// a value reduces into its master exactly once.
//
// When the runtime's Fused mode is on and the layer supports thread-direct
// sends (LCI), each peer's buffer is injected by the gathering compute
// thread the moment it completes, overlapping gather with injection.
func (f *Field) SyncReduce() {
	rt := f.rt
	hg := rt.HG
	start := time.Now()

	if fl, ok := rt.Host.Layer.(fusedLayer); ok && rt.Fused {
		eff := fl.BeginFused(f.tagReduce)
		rt.Host.Pool.For(hg.P, func(p int) {
			if buf := f.gather(hg.MirrorsHere[p], true); buf != nil && p != hg.Host {
				fl.SendFused(p, p, eff, buf)
			}
		})
		fl.FinishFused(eff, f.reduceExpect, func(peer int, data []byte) {
			f.scatter(hg.MastersFor[peer], data, true)
		})
		rt.CommTime += time.Since(start)
		return
	}

	out := make([][]byte, hg.P)
	rt.Host.Pool.For(hg.P, func(p int) {
		out[p] = f.gather(hg.MirrorsHere[p], true)
	})
	rt.Host.Layer.Exchange(f.tagReduce, out, f.reduceExpect, f.reduceRecvMax,
		func(peer int, data []byte) {
			f.scatter(hg.MastersFor[peer], data, true)
		})
	rt.CommTime += time.Since(start)
}

// SyncBroadcast ships updated master values to all their mirrors
// (overwrite). Master updated-bits are cleared afterwards.
func (f *Field) SyncBroadcast() {
	rt := f.rt
	hg := rt.HG
	start := time.Now()

	out := make([][]byte, hg.P)
	rt.Host.Pool.For(hg.P, func(p int) {
		out[p] = f.gatherNoReset(hg.MastersFor[p])
	})

	rt.Host.Layer.Exchange(f.tagBcast, out, f.bcastExpect, f.bcastRecvMax,
		func(peer int, data []byte) {
			f.scatter(hg.MirrorsHere[peer], data, false)
		})

	// A master may appear in many peers' lists; only clear after all
	// gathers are done.
	f.updated.ForEachRange(0, hg.NumMasters, func(i int) { f.updated.Clear(i) })
	rt.CommTime += time.Since(start)
}

// gather serializes the updated entries of list, choosing the smaller of
// the bitmap and index-value-pair encodings. When reset is true (reduce),
// shipped mirrors are reset to identity and their updated bits cleared (a
// mirror has exactly one master host, so this is race-free across the
// per-peer parallel gathers).
func (f *Field) gather(list []uint32, reset bool) []byte {
	if len(list) == 0 {
		return nil
	}
	count := 0
	for _, lv := range list {
		if f.updated.Test(int(lv)) {
			count++
		}
	}
	take := func(lv uint32) uint64 {
		if reset {
			f.updated.Clear(int(lv))
			return f.Vals[lv].Swap(f.identity)
		}
		return f.Vals[lv].Load()
	}

	bmLen := (len(list) + 7) / 8
	if 12*count < bmLen+8*count {
		// Sparse: index-value pairs.
		buf := f.rt.Host.Layer.AllocBuf(4 + 12*count)
		binary.LittleEndian.PutUint32(buf, uint32(count)|pairFormat)
		off := 4
		for i, lv := range list {
			if !f.updated.Test(int(lv)) {
				continue
			}
			binary.LittleEndian.PutUint32(buf[off:], uint32(i))
			binary.LittleEndian.PutUint64(buf[off+4:], take(lv))
			off += 12
		}
		return buf
	}

	buf := f.rt.Host.Layer.AllocBuf(msgSize(len(list), count))
	binary.LittleEndian.PutUint32(buf, uint32(count))
	bm := buf[4 : 4+bmLen]
	vals := buf[4+bmLen:]
	vi := 0
	for i, lv := range list {
		if !f.updated.Test(int(lv)) {
			continue
		}
		bm[i/8] |= 1 << (i % 8)
		binary.LittleEndian.PutUint64(vals[vi*8:], take(lv))
		vi++
	}
	return buf
}

// gatherNoReset is gather(list, false) — used by broadcast, which must not
// clear bits until every peer's gather ran.
func (f *Field) gatherNoReset(list []uint32) []byte { return f.gather(list, false) }

// scatter applies one incoming sync message over list. When combine is true
// (reduce) values merge through the reduction operator and mark masters
// updated; otherwise (broadcast) values overwrite mirrors. OnChange fires
// for every changed proxy. Scatter parallelizes across the compute threads
// using bitmap popcount prefix offsets.
func (f *Field) scatter(list []uint32, data []byte, combine bool) {
	if len(list) == 0 || len(data) < 4 {
		return
	}
	header := binary.LittleEndian.Uint32(data)
	if header&pairFormat != 0 {
		f.scatterPairs(list, data[4:], int(header&^pairFormat), combine)
		return
	}
	bmLen := (len(list) + 7) / 8
	bm := data[4 : 4+bmLen]
	vals := data[4+bmLen:]

	// Word-chunk prefix offsets so workers know where their values start.
	pool := f.rt.Host.Pool
	workers := pool.Workers()
	chunk := (len(list) + workers - 1) / workers
	if chunk < 64 {
		chunk = 64
	}
	nChunks := (len(list) + chunk - 1) / chunk
	offsets := make([]int, nChunks+1)
	for c := 0; c < nChunks; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > len(list) {
			hi = len(list)
		}
		offsets[c+1] = offsets[c] + popcountRange(bm, lo, hi)
	}

	pool.For(nChunks, func(c int) {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > len(list) {
			hi = len(list)
		}
		vi := offsets[c]
		for i := lo; i < hi; i++ {
			if bm[i/8]&(1<<(i%8)) == 0 {
				continue
			}
			v := binary.LittleEndian.Uint64(vals[vi*8:])
			vi++
			lv := list[i]
			if combine {
				if f.Apply(lv, v) && f.OnChange != nil {
					f.OnChange(lv)
				}
			} else {
				old := f.Vals[lv].Swap(v)
				if old != v && f.OnChange != nil {
					f.OnChange(lv)
				}
			}
		}
	})
}

// scatterPairs applies a pairs-format message: count (u32 index, u64 value)
// records, parallelized across the compute threads.
func (f *Field) scatterPairs(list []uint32, body []byte, count int, combine bool) {
	f.rt.Host.Pool.ForRange(count, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			i := int(binary.LittleEndian.Uint32(body[k*12:]))
			v := binary.LittleEndian.Uint64(body[k*12+4:])
			lv := list[i]
			if combine {
				if f.Apply(lv, v) && f.OnChange != nil {
					f.OnChange(lv)
				}
			} else {
				old := f.Vals[lv].Swap(v)
				if old != v && f.OnChange != nil {
					f.OnChange(lv)
				}
			}
		}
	})
}

// popcountRange counts set bits of bm in bit positions [lo, hi).
func popcountRange(bm []byte, lo, hi int) int {
	n := 0
	for i := lo; i < hi; {
		if i%8 == 0 && i+8 <= hi {
			n += bits.OnesCount8(bm[i/8])
			i += 8
			continue
		}
		if bm[i/8]&(1<<(i%8)) != 0 {
			n++
		}
		i++
	}
	return n
}

// ResetUpdated clears all updated marks (between algorithm phases).
func (f *Field) ResetUpdated() { f.updated.Reset() }

// UpdatedCount reports how many proxies are currently marked updated.
func (f *Field) UpdatedCount() int { return f.updated.Count() }
