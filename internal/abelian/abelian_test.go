package abelian

import (
	"sync"
	"testing"

	"lcigraph/internal/cluster"
	"lcigraph/internal/comm"
	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/graph"
	"lcigraph/internal/partition"
)

func minU64(a, b uint64) uint64 {
	if b < a {
		return b
	}
	return a
}

// runCluster builds a vertex-cut partition of g over p hosts with LCI
// layers and runs body per host.
func runCluster(g *graph.Graph, p int, body func(rt *Runtime)) {
	pt := partition.Build(g, p, partition.VertexCut)
	fab := fabric.New(p, fabric.TestProfile())
	cluster.Run(p, 2, func(r int) comm.Layer {
		return comm.NewLCILayer(fab.Endpoint(r), lci.Options{})
	}, func(h *cluster.Host) {
		body(New(h, pt.Hosts[h.Rank], partition.VertexCut))
	})
}

func TestFieldApplySemantics(t *testing.T) {
	g := graph.Ring(8)
	runCluster(g, 2, func(rt *Runtime) {
		f := rt.NewField(100, minU64)
		if f.Get(0) != 100 {
			t.Errorf("identity not stored")
		}
		if !f.Apply(0, 5) {
			t.Errorf("apply smaller value reported unchanged")
		}
		if f.Apply(0, 7) {
			t.Errorf("apply larger value reported change")
		}
		if f.Get(0) != 5 {
			t.Errorf("value = %d", f.Get(0))
		}
		if f.UpdatedCount() == 0 {
			t.Errorf("apply did not mark updated")
		}
		f.ResetUpdated()
		if f.UpdatedCount() != 0 {
			t.Errorf("reset left updated bits")
		}
	})
}

// TestSyncReducePropagatesMinToMaster: mirrors write, reduce carries the
// min to the master, and the mirror resets to identity.
func TestSyncReducePropagatesMinToMaster(t *testing.T) {
	g := graph.Complete(12) // every host sees every vertex
	const p = 3
	var mu sync.Mutex
	finalAtMaster := map[uint32]uint64{}

	runCluster(g, p, func(rt *Runtime) {
		f := rt.NewField(^uint64(0), minU64)
		// Every host writes rank+10 into its proxy of global vertex 0.
		if lv, ok := rt.HG.G2L(0); ok {
			f.Apply(lv, uint64(rt.Host.Rank)+10)
		}
		rt.Host.Barrier()
		f.SyncReduce()
		if lv, ok := rt.HG.G2L(0); ok && rt.HG.IsMaster(lv) {
			mu.Lock()
			finalAtMaster[0] = f.Get(lv)
			mu.Unlock()
		}
		// Mirrors that shipped their value must be reset to identity.
		if lv, ok := rt.HG.G2L(0); ok && !rt.HG.IsMaster(lv) {
			if f.Get(lv) != ^uint64(0) {
				t.Errorf("host %d: mirror not reset (%d)", rt.Host.Rank, f.Get(lv))
			}
		}
	})
	if finalAtMaster[0] != 10 {
		t.Fatalf("master value = %d, want 10 (min over hosts)", finalAtMaster[0])
	}
}

// TestSyncBroadcastOverwritesMirrors: master updates flow to all mirrors.
func TestSyncBroadcastOverwritesMirrors(t *testing.T) {
	g := graph.Complete(12)
	const p = 3
	runCluster(g, p, func(rt *Runtime) {
		f := rt.NewField(0, minU64)
		// Masters stamp their global id + 1000.
		for lv := 0; lv < rt.HG.NumMasters; lv++ {
			f.Set(uint32(lv), uint64(rt.HG.L2G[lv])+1000)
		}
		rt.Host.Barrier()
		f.SyncBroadcast()
		for lv := 0; lv < rt.HG.NumLocal; lv++ {
			want := uint64(rt.HG.L2G[lv]) + 1000
			if f.Get(uint32(lv)) != want {
				t.Errorf("host %d proxy of %d = %d, want %d",
					rt.Host.Rank, rt.HG.L2G[lv], f.Get(uint32(lv)), want)
			}
		}
		// Broadcast must clear master updated-bits.
		if n := f.UpdatedCount(); n != 0 {
			t.Errorf("updated bits remain after broadcast: %d", n)
		}
	})
}

// TestOnChangeActivation: sync-induced changes trigger the activation hook
// exactly for changed proxies.
func TestOnChangeActivation(t *testing.T) {
	g := graph.Complete(9)
	const p = 3
	runCluster(g, p, func(rt *Runtime) {
		f := rt.NewField(^uint64(0), minU64)
		var mu sync.Mutex
		changed := map[uint32]bool{}
		f.OnChange = func(lv uint32) {
			mu.Lock()
			changed[rt.HG.L2G[lv]] = true
			mu.Unlock()
		}
		// Only host 0 writes vertex 1's proxy.
		if rt.Host.Rank == 0 {
			if lv, ok := rt.HG.G2L(1); ok {
				f.Apply(lv, 7)
			}
		}
		rt.Host.Barrier()
		f.SyncReduce()
		f.SyncBroadcast()
		rt.Host.Barrier()
		mu.Lock()
		defer mu.Unlock()
		if lv, ok := rt.HG.G2L(1); ok {
			isWriter := rt.Host.Rank == 0
			isMaster := rt.HG.IsMaster(lv)
			// The writing host changed it locally (no OnChange for local
			// Apply by the app itself); remote proxies must have fired.
			if !isWriter && !changed[1] {
				t.Errorf("host %d (master=%v): OnChange missed vertex 1", rt.Host.Rank, isMaster)
			}
		}
		for gid := range changed {
			if gid != 1 {
				t.Errorf("host %d: spurious OnChange for %d", rt.Host.Rank, gid)
			}
		}
	})
}

// TestSparsePairFormat: with very few updates out of a large sync list the
// gather must pick the index-value-pair encoding and the scatter must
// decode it correctly.
func TestSparsePairFormat(t *testing.T) {
	g := graph.Complete(200) // large lists: every vertex mirrored everywhere
	const p = 2
	runCluster(g, p, func(rt *Runtime) {
		f := rt.NewField(^uint64(0), minU64)
		// Exactly one update per host, to a vertex owned by the peer.
		target := uint32(0)
		if lv, ok := rt.HG.G2L(target); ok && rt.HG.IsMaster(lv) {
			target = uint32(g.N - 1)
		}
		if lv, ok := rt.HG.G2L(target); ok && !rt.HG.IsMaster(lv) {
			f.Apply(lv, uint64(42+rt.Host.Rank))
		}
		rt.Host.Barrier()
		f.SyncReduce()
		rt.Host.Barrier()
		if lv, ok := rt.HG.G2L(target); ok && rt.HG.IsMaster(lv) {
			got := f.Get(lv)
			if got == ^uint64(0) {
				t.Errorf("host %d: sparse update for %d never arrived", rt.Host.Rank, target)
			}
		}
	})
}

// TestFusedSyncMatchesExchange: the fused reduce path produces the same
// master values as the standard path.
func TestFusedSyncMatchesExchange(t *testing.T) {
	g := graph.Kron(6, 4, 5, 8)
	const p = 3
	results := [2][]uint64{}
	for mode := 0; mode < 2; mode++ {
		vals := make([]uint64, g.N)
		runCluster(g, p, func(rt *Runtime) {
			rt.Fused = mode == 1
			f := rt.NewField(^uint64(0), minU64)
			for lv := 0; lv < rt.HG.NumLocal; lv++ {
				f.Apply(uint32(lv), uint64(rt.HG.L2G[lv])+uint64(rt.Host.Rank)*3)
			}
			rt.Host.Barrier()
			f.SyncReduce()
			rt.Host.Barrier()
			for lv := 0; lv < rt.HG.NumMasters; lv++ {
				vals[rt.HG.L2G[lv]] = f.Get(uint32(lv))
			}
		})
		results[mode] = vals
	}
	for v := range results[0] {
		if results[0][v] != results[1][v] {
			t.Fatalf("vertex %d: exchange %d vs fused %d", v, results[0][v], results[1][v])
		}
	}
}

// TestFieldTagAllocatorReserved: allocating fields past the reserved
// cluster.CollectiveTag must panic instead of silently colliding with the
// out-of-process collective traffic.
func TestFieldTagAllocatorReserved(t *testing.T) {
	g := graph.Ring(8)
	runCluster(g, 1, func(rt *Runtime) {
		defer func() {
			if recover() == nil {
				t.Errorf("allocating field tags past CollectiveTag did not panic")
			}
		}()
		for i := 0; i <= int(cluster.CollectiveTag); i++ {
			rt.NewField(0, minU64)
		}
		t.Errorf("no panic after %d fields", int(cluster.CollectiveTag)+1)
	})
}

// TestFieldTagAllocatorServeReserved: the reserved control-tag range
// [cluster.IncidentTag, cluster.CollectiveTag) — incident evidence, health
// heartbeats, plus the serving control tags — is guarded exactly like the
// collective tag: the allocator must hand out every tag below IncidentTag
// and panic on the first field that would touch the range.
func TestFieldTagAllocatorServeReserved(t *testing.T) {
	g := graph.Ring(8)
	runCluster(g, 1, func(rt *Runtime) {
		// Fields consume tag pairs (2k, 2k+1); every pair strictly below
		// IncidentTag must allocate without panicking.
		okFields := int(cluster.IncidentTag) / 2
		for i := 0; i < okFields; i++ {
			rt.NewField(0, minU64)
		}
		defer func() {
			if recover() == nil {
				t.Errorf("allocating a field tag inside [IncidentTag, CollectiveTag] did not panic")
			}
		}()
		rt.NewField(0, minU64)
		t.Errorf("no panic at the IncidentTag boundary (field %d)", okFields)
	})
}

// TestReservedTagOrdering pins the layout of the reserved tag range: the
// incident tag must sit strictly below every other reserved tag so the
// allocator guard (which checks only the bottom of the range) covers all of
// them, and the range must stay contiguous.
func TestReservedTagOrdering(t *testing.T) {
	if !(cluster.IncidentTag < cluster.HealthTag &&
		cluster.HealthTag < cluster.ServeTagLo &&
		cluster.ServeTagLo < cluster.CollectiveTag) {
		t.Fatalf("reserved tag ordering violated: incident=%d health=%d serveLo=%d collective=%d",
			cluster.IncidentTag, cluster.HealthTag, cluster.ServeTagLo, cluster.CollectiveTag)
	}
	if cluster.IncidentTag+1 != cluster.HealthTag {
		t.Fatalf("gap between IncidentTag (%d) and HealthTag (%d): the reserved range must be contiguous",
			cluster.IncidentTag, cluster.HealthTag)
	}
}

// TestUpdatedOnlyTraffic: an idle round ships (nearly) nothing.
func TestUpdatedOnlyTraffic(t *testing.T) {
	g := graph.Complete(16)
	const p = 4
	runCluster(g, p, func(rt *Runtime) {
		f := rt.NewField(^uint64(0), minU64)
		// Round 1: everything updated.
		for lv := 0; lv < rt.HG.NumLocal; lv++ {
			f.Apply(uint32(lv), uint64(lv))
		}
		rt.Host.Barrier()
		f.Sync()
		sent1 := rt.Host.Layer.Tracker().Max()
		// Round 2: nothing updated (mirrors were reset, masters cleared).
		f.ResetUpdated()
		rt.Host.Barrier()
		before := rt.Host.Layer.Tracker().Max()
		f.Sync()
		after := rt.Host.Layer.Tracker().Max()
		if after > before && after-before > sent1/2 {
			t.Errorf("idle sync shipped heavy traffic: %d -> %d", before, after)
		}
	})
}
