package serve

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Client protocol: length-prefixed frames over TCP, all integers
// little-endian. A request is
//
//	u32 frameLen | u32 reqid | u8 op | u32 a | u32 b
//
// where reqid is a client-chosen correlation id (echoed verbatim, so one
// connection can pipeline many concurrent requests) and (op, a, b) is the
// query: KHop(src=a, k=b), Dist(src=a, dst=b), PPR(src=a, topN=b).
// A response is
//
//	u32 frameLen | u32 reqid | u8 status | payload
//
// with status OK (op-specific payload), Shed (u32 retry-after in
// milliseconds — the client-visible face of the admission-control credit
// machinery, the serving analogue of the transport's retriable
// ErrResource), or Error (UTF-8 message).

// Query operations.
const (
	OpKHop uint8 = 1 // a = source vertex, b = hop count; result u32 count
	OpDist uint8 = 2 // a = source, b = destination; result u32 hops (^0 = unreachable)
	OpPPR  uint8 = 3 // a = source, b = topN; result u32 n | n x (u32 vertex, u64 scoreBits)
)

// Response status codes.
const (
	StatusOK    uint8 = 0
	StatusShed  uint8 = 1 // overloaded: retry after the indicated delay
	StatusError uint8 = 2
)

// Unreachable is the Dist result for a destination the source cannot reach.
const Unreachable = ^uint32(0)

// maxFrame bounds a client frame; anything larger is a protocol error.
const maxFrame = 1 << 20

// Query is one client request's operation triple.
type Query struct {
	Op   uint8
	A, B uint32
}

// OpName returns the metric/report label for an operation.
func OpName(op uint8) string {
	switch op {
	case OpKHop:
		return "khop"
	case OpDist:
		return "dist"
	case OpPPR:
		return "ppr"
	}
	return fmt.Sprintf("op%d", op)
}

// WriteRequest frames one request onto w.
func WriteRequest(w io.Writer, reqid uint32, q Query) error {
	var b [4 + 13]byte
	binary.LittleEndian.PutUint32(b[0:], 13)
	binary.LittleEndian.PutUint32(b[4:], reqid)
	b[8] = q.Op
	binary.LittleEndian.PutUint32(b[9:], q.A)
	binary.LittleEndian.PutUint32(b[13:], q.B)
	_, err := w.Write(b[:])
	return err
}

// ReadRequest parses the next request frame from r.
func ReadRequest(r io.Reader) (reqid uint32, q Query, err error) {
	body, err := readFrame(r)
	if err != nil {
		return 0, Query{}, err
	}
	if len(body) != 13 {
		return 0, Query{}, fmt.Errorf("serve: request frame is %d bytes, want 13", len(body))
	}
	reqid = binary.LittleEndian.Uint32(body)
	q.Op = body[4]
	q.A = binary.LittleEndian.Uint32(body[5:])
	q.B = binary.LittleEndian.Uint32(body[9:])
	return reqid, q, nil
}

// EncodeResponse frames one response (ready for a single Write).
func EncodeResponse(reqid uint32, status uint8, payload []byte) []byte {
	b := make([]byte, 4+5+len(payload))
	binary.LittleEndian.PutUint32(b[0:], uint32(5+len(payload)))
	binary.LittleEndian.PutUint32(b[4:], reqid)
	b[8] = status
	copy(b[9:], payload)
	return b
}

// ReadResponse parses the next response frame from r.
func ReadResponse(r io.Reader) (reqid uint32, status uint8, payload []byte, err error) {
	body, err := readFrame(r)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(body) < 5 {
		return 0, 0, nil, fmt.Errorf("serve: response frame is %d bytes, want >= 5", len(body))
	}
	return binary.LittleEndian.Uint32(body), body[4], body[5:], nil
}

// readFrame reads one length-prefixed frame body.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("serve: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// ShedPayload encodes/decodes the Shed status payload.
func ShedPayload(retryAfterMs uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], retryAfterMs)
	return b[:]
}

// RetryAfterMs extracts the retry hint from a Shed payload (0 if absent).
func RetryAfterMs(payload []byte) uint32 {
	if len(payload) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(payload)
}

// Inter-rank sub-query wire format, carried on the reserved serve tags
// (cluster.ServeTagLo..): an adjacency request names the global vertices
// whose out-edges the owning rank must return; the reply mirrors the
// request order as a degree array plus a flat neighbor array (a one-round
// CSR). Both carry the 24-bit query id that multiplexes concurrent
// in-flight queries, mirroring the tracing msgid encoding.

// encodeAdjReq builds an adjacency request payload in a layer buffer
// returned by alloc.
func encodeAdjReq(alloc func(int) []byte, qid uint32, verts []uint32) []byte {
	b := alloc(8 + 4*len(verts))
	binary.LittleEndian.PutUint32(b[0:], qid)
	binary.LittleEndian.PutUint32(b[4:], uint32(len(verts)))
	for i, v := range verts {
		binary.LittleEndian.PutUint32(b[8+4*i:], v)
	}
	return b
}

// decodeAdjReq parses an adjacency request (copying out of the transient
// message buffer).
func decodeAdjReq(data []byte) (qid uint32, verts []uint32, err error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("serve: adj request %d bytes", len(data))
	}
	qid = binary.LittleEndian.Uint32(data)
	n := int(binary.LittleEndian.Uint32(data[4:]))
	if len(data) != 8+4*n {
		return 0, nil, fmt.Errorf("serve: adj request %d bytes for %d vertices", len(data), n)
	}
	verts = make([]uint32, n)
	for i := range verts {
		verts[i] = binary.LittleEndian.Uint32(data[8+4*i:])
	}
	return qid, verts, nil
}

// encodeAdjRep builds an adjacency reply payload: qid, vertex count, the
// per-vertex degrees, then the flat neighbor array.
func encodeAdjRep(alloc func(int) []byte, qid uint32, adj [][]uint32) []byte {
	total := 0
	for _, l := range adj {
		total += len(l)
	}
	b := alloc(8 + 4*len(adj) + 4*total)
	binary.LittleEndian.PutUint32(b[0:], qid)
	binary.LittleEndian.PutUint32(b[4:], uint32(len(adj)))
	off := 8
	for _, l := range adj {
		binary.LittleEndian.PutUint32(b[off:], uint32(len(l)))
		off += 4
	}
	for _, l := range adj {
		for _, u := range l {
			binary.LittleEndian.PutUint32(b[off:], u)
			off += 4
		}
	}
	return b
}

// decodeAdjRep parses an adjacency reply (copying out of the transient
// message buffer).
func decodeAdjRep(data []byte) (qid uint32, adj [][]uint32, err error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("serve: adj reply %d bytes", len(data))
	}
	qid = binary.LittleEndian.Uint32(data)
	n := int(binary.LittleEndian.Uint32(data[4:]))
	if len(data) < 8+4*n {
		return 0, nil, fmt.Errorf("serve: adj reply %d bytes for %d vertices", len(data), n)
	}
	degs := make([]int, n)
	total := 0
	for i := range degs {
		degs[i] = int(binary.LittleEndian.Uint32(data[8+4*i:]))
		total += degs[i]
	}
	if len(data) != 8+4*n+4*total {
		return 0, nil, fmt.Errorf("serve: adj reply %d bytes, want %d", len(data), 8+4*n+4*total)
	}
	adj = make([][]uint32, n)
	off := 8 + 4*n
	flat := make([]uint32, total)
	for i := range flat {
		flat[i] = binary.LittleEndian.Uint32(data[off+4*i:])
	}
	pos := 0
	for i, d := range degs {
		adj[i] = flat[pos : pos+d : pos+d]
		pos += d
	}
	return qid, adj, nil
}

// Control messages on the drain tag.
const ctrlStop uint8 = 1

// encodeCtrl builds a one-byte control payload.
func encodeCtrl(alloc func(int) []byte, kind uint8) []byte {
	b := alloc(1)
	b[0] = kind
	return b
}
