package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"lcigraph/internal/bench"
	"lcigraph/internal/cluster"
	"lcigraph/internal/comm"
	"lcigraph/internal/fabric"
	"lcigraph/internal/graph"
	"lcigraph/internal/netfabric"
	"lcigraph/internal/partition"
	"lcigraph/internal/telemetry"
)

// --- wire ---

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	q := Query{Op: OpPPR, A: 1234, B: 8}
	if err := WriteRequest(&buf, 77, q); err != nil {
		t.Fatal(err)
	}
	reqid, got, err := ReadRequest(&buf)
	if err != nil || reqid != 77 || got != q {
		t.Fatalf("request round trip: %d %+v %v", reqid, got, err)
	}

	resp := EncodeResponse(99, StatusShed, ShedPayload(250))
	rid, status, payload, err := ReadResponse(bytes.NewReader(resp))
	if err != nil || rid != 99 || status != StatusShed || RetryAfterMs(payload) != 250 {
		t.Fatalf("response round trip: %d %d %v %v", rid, status, payload, err)
	}

	alloc := func(n int) []byte { return make([]byte, n) }
	verts := []uint32{3, 9, 200}
	req := encodeAdjReq(alloc, 0xbeef, verts)
	qid, gv, err := decodeAdjReq(req)
	if err != nil || qid != 0xbeef || fmt.Sprint(gv) != fmt.Sprint(verts) {
		t.Fatalf("adj request round trip: %x %v %v", qid, gv, err)
	}
	adj := [][]uint32{{1, 2}, nil, {5}}
	rep := encodeAdjRep(alloc, 0xbeef, adj)
	qid, ga, err := decodeAdjRep(rep)
	if err != nil || qid != 0xbeef || len(ga) != 3 ||
		fmt.Sprint(ga[0]) != fmt.Sprint(adj[0]) || len(ga[1]) != 0 ||
		fmt.Sprint(ga[2]) != fmt.Sprint(adj[2]) {
		t.Fatalf("adj reply round trip: %x %v %v", qid, ga, err)
	}
}

// --- cache ---

func TestCacheLRU(t *testing.T) {
	c := newLRU(2)
	k1 := cacheKey{OpKHop, 1, 1}
	k2 := cacheKey{OpKHop, 2, 1}
	k3 := cacheKey{OpKHop, 3, 1}
	c.put(k1, []byte{1})
	c.put(k2, []byte{2})
	if _, ok := c.get(k1); !ok { // refresh k1: k2 is now LRU
		t.Fatal("k1 missing")
	}
	c.put(k3, []byte{3})
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 should have been evicted")
	}
	if v, ok := c.get(k1); !ok || v[0] != 1 {
		t.Fatal("k1 lost")
	}
	if v, ok := c.get(k3); !ok || v[0] != 3 {
		t.Fatal("k3 lost")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}

	off := newLRU(0)
	off.put(k1, []byte{1})
	if _, ok := off.get(k1); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

// --- machines against hand-computed answers ---

// chainGraph is 0→1→2→3→4 plus 0→2.
func chainGraph() *graph.Graph {
	return graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
		{Src: 3, Dst: 4}, {Src: 0, Dst: 2},
	})
}

func TestOracleAnswers(t *testing.T) {
	o := NewOracle(chainGraph(), Config{})
	u32 := func(q Query) uint32 {
		t.Helper()
		payload, err := o.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		v, err := DecodeU32(payload)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// 1-hop from 0 reaches {0,1,2}; 2-hop adds 3; 0-hop is just the source.
	if got := u32(Query{Op: OpKHop, A: 0, B: 1}); got != 3 {
		t.Fatalf("khop(0,1) = %d, want 3", got)
	}
	if got := u32(Query{Op: OpKHop, A: 0, B: 2}); got != 4 {
		t.Fatalf("khop(0,2) = %d, want 4", got)
	}
	if got := u32(Query{Op: OpKHop, A: 0, B: 0}); got != 1 {
		t.Fatalf("khop(0,0) = %d, want 1", got)
	}
	// dist(0,4): 0→2→3→4.
	if got := u32(Query{Op: OpDist, A: 0, B: 4}); got != 3 {
		t.Fatalf("dist(0,4) = %d, want 3", got)
	}
	if got := u32(Query{Op: OpDist, A: 0, B: 0}); got != 0 {
		t.Fatalf("dist(0,0) = %d, want 0", got)
	}
	// 4 has no out-edges, so nothing is reachable from it.
	if got := u32(Query{Op: OpDist, A: 4, B: 0}); got != Unreachable {
		t.Fatalf("dist(4,0) = %d, want unreachable", got)
	}
	// PPR from 0: the source must dominate its own ranking.
	payload, err := o.Answer(Query{Op: OpPPR, A: 0, B: 3})
	if err != nil {
		t.Fatal(err)
	}
	vs, ss, err := DecodePPR(payload)
	if err != nil || len(vs) != 3 {
		t.Fatalf("ppr decode: %v %v %v", vs, ss, err)
	}
	if vs[0] != 0 || ss[0] <= ss[1] {
		t.Fatalf("ppr top = v%d %v, want source first", vs[0], ss)
	}
	// Validation errors.
	if _, err := o.Answer(Query{Op: OpKHop, A: 99, B: 1}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := o.Answer(Query{Op: 9, A: 0, B: 1}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// --- distributed jobs ---

// serveJob runs a P-rank serving job over the given providers and invokes
// client with rank 0's listen address and server (for InitiateDrain). It
// returns only when every rank has drained and exited cleanly — so every
// test through it is also a graceful-drain test.
func serveJob(t *testing.T, provs []fabric.Provider, pt *partition.Partitioned,
	cfg Config, client func(addr string, s0 *Server)) {
	t.Helper()
	p := len(provs)
	ready := make(chan string)
	var s0 *Server
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			layer := comm.NewLCILayer(provs[r], bench.LCIOptions(p, 2))
			cluster.RunRank(r, p, 1, layer, func(h *cluster.Host) {
				s := New(h, pt, cfg)
				if r == 0 {
					ln, err := net.Listen("tcp", "127.0.0.1:0")
					if err != nil {
						t.Error(err)
						return
					}
					fe := ServeClients(ln, s)
					s0 = s
					ready <- ln.Addr().String()
					s.Run()
					fe.Close()
				} else {
					s.Run()
				}
			})
		}(r)
	}
	addr := <-ready
	client(addr, s0)
	wg.Wait()
}

// response is one classified client response.
type response struct {
	status  uint8
	payload []byte
}

// readAll collects responses until the connection closes, failing on any
// duplicate reqid — the client-visible face of exactly-once execution.
func readAll(t *testing.T, conn net.Conn, got map[uint32]response) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(2 * time.Minute))
	br := bufio.NewReader(conn)
	for {
		reqid, status, payload, err := ReadResponse(br)
		if err == io.EOF {
			return
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatalf("timed out with %d responses", len(got))
			}
			return // connection severed by drain
		}
		if _, dup := got[reqid]; dup {
			t.Fatalf("duplicate response for reqid %d", reqid)
		}
		got[reqid] = response{status, append([]byte(nil), payload...)}
	}
}

// TestServeLossyUDPExactlyOnce is the acceptance test: a 4-rank serving job
// over real loopback UDP with 5% datagram loss (plus duplication and
// reordering), a pipelined client, and a drain under load. Every request
// gets at most one response; every OK result is bit-identical to the
// single-host oracle; the job shuts down cleanly.
func TestServeLossyUDPExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy UDP soak")
	}
	const p = 4
	provs, err := netfabric.NewLoopbackGroup(p, netfabric.Config{
		Fault: netfabric.Fault{Loss: 0.05, Dup: 0.02, Reorder: 0.02, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer netfabric.CloseGroup(provs)

	g := graph.Named("web", 8, 42)
	pt := partition.Build(g, p, partition.EdgeCut)
	cfg := Config{MaxInFlight: 128, MaxPerClient: 128}
	oracle := NewOracle(g, cfg)

	feps := make([]fabric.Provider, p)
	for r := range feps {
		feps[r] = provs[r]
	}
	serveJob(t, feps, pt, cfg, func(addr string, s0 *Server) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Error(err)
			s0.InitiateDrain()
			return
		}
		defer conn.Close()

		// Phase 1: pipeline a mixed batch; with the generous admission
		// limits nothing may be shed, so every answer must match the oracle.
		rng := rand.New(rand.NewSource(3))
		queries := map[uint32]Query{}
		reqid := uint32(1)
		for i := 0; i < 40; i++ {
			q := randomQuery(rng, uint32(g.N))
			queries[reqid] = q
			if err := WriteRequest(conn, reqid, q); err != nil {
				t.Error(err)
				s0.InitiateDrain()
				return
			}
			reqid++
		}
		got := map[uint32]response{}
		br := bufio.NewReader(conn)
		conn.SetReadDeadline(time.Now().Add(2 * time.Minute))
		for len(got) < len(queries) {
			rid, status, payload, err := ReadResponse(br)
			if err != nil {
				t.Errorf("phase 1 read after %d responses: %v", len(got), err)
				s0.InitiateDrain()
				return
			}
			if _, dup := got[rid]; dup {
				t.Fatalf("duplicate response for reqid %d", rid)
			}
			got[rid] = response{status, append([]byte(nil), payload...)}
		}
		for rid, q := range queries {
			r := got[rid]
			if r.status != StatusOK {
				t.Fatalf("reqid %d (%s %d %d): status %d", rid, OpName(q.Op), q.A, q.B, r.status)
			}
			want, err := oracle.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(r.payload, want) {
				t.Fatalf("reqid %d (%s %d %d): distributed result differs from oracle",
					rid, OpName(q.Op), q.A, q.B)
			}
		}

		// Phase 2: drain under load. Fire a burst, initiate drain mid-burst;
		// each request gets at most one response — OK answers still match
		// the oracle, the rest are shed or see the connection close.
		burst := map[uint32]Query{}
		for i := 0; i < 20; i++ {
			q := randomQuery(rng, uint32(g.N))
			burst[reqid] = q
			if err := WriteRequest(conn, reqid, q); err != nil {
				break
			}
			reqid++
			if i == 5 {
				s0.InitiateDrain()
			}
		}
		s0.InitiateDrain()
		late := map[uint32]response{}
		readAll(t, conn, late)
		okN, shedN := 0, 0
		for rid, r := range late {
			q, mine := burst[rid]
			if !mine {
				t.Fatalf("unsolicited response for reqid %d", rid)
			}
			switch r.status {
			case StatusOK:
				okN++
				want, _ := oracle.Answer(q)
				if !bytes.Equal(r.payload, want) {
					t.Fatalf("drain-phase reqid %d: result differs from oracle", rid)
				}
			case StatusShed:
				shedN++
				if RetryAfterMs(r.payload) == 0 {
					t.Fatalf("shed response without a retry-after hint")
				}
			default:
				t.Fatalf("drain-phase reqid %d: unexpected status %d", rid, r.status)
			}
		}
		t.Logf("drain under load: %d ok, %d shed, %d unanswered (connection closed)",
			okN, shedN, len(burst)-len(late))
	})
}

// TestServeSimCacheAndDrainShed drives a tiny in-process job and checks the
// LRU result cache (repeat query served from cache, hit counters move) and
// the drain-time admission behavior (new queries shed with a retry hint).
func TestServeSimCacheAndDrainShed(t *testing.T) {
	const p = 2
	fab := fabric.New(p, fabric.TestProfile())
	feps := make([]fabric.Provider, p)
	for r := range feps {
		feps[r] = fab.Endpoint(r)
	}
	g := chainGraph()
	pt := partition.Build(g, p, partition.EdgeCut)
	reg := telemetry.NewEnabled(0)
	cfg := Config{Reg: reg}
	oracle := NewOracle(g, cfg)

	serveJob(t, feps, pt, cfg, func(addr string, s0 *Server) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Error(err)
			s0.InitiateDrain()
			return
		}
		defer conn.Close()
		ask := func(reqid uint32, q Query) (response, error) {
			t.Helper()
			if err := WriteRequest(conn, reqid, q); err != nil {
				return response{}, err
			}
			conn.SetReadDeadline(time.Now().Add(time.Minute))
			rid, status, payload, err := ReadResponse(conn)
			if err != nil {
				return response{}, err
			}
			if rid != reqid {
				t.Fatalf("response for %d answered %d", reqid, rid)
			}
			return response{status, append([]byte(nil), payload...)}, nil
		}
		mustAsk := func(reqid uint32, q Query) response {
			t.Helper()
			r, err := ask(reqid, q)
			if err != nil {
				t.Fatalf("ask %d: %v", reqid, err)
			}
			return r
		}

		q := Query{Op: OpKHop, A: 0, B: 2}
		want, _ := oracle.Answer(q)
		for i := uint32(0); i < 3; i++ {
			r := mustAsk(1+i, q)
			if r.status != StatusOK || !bytes.Equal(r.payload, want) {
				t.Fatalf("ask %d: status %d", i, r.status)
			}
		}
		if hits := reg.Counter("lci_serve_cache_hits_total").Value(); hits != 2 {
			t.Errorf("cache hits = %d, want 2", hits)
		}
		if misses := reg.Counter("lci_serve_cache_misses_total").Value(); misses != 1 {
			t.Errorf("cache misses = %d, want 1", misses)
		}
		// A malformed query errors without disturbing the job.
		if r := mustAsk(50, Query{Op: OpDist, A: 0, B: 5000}); r.status != StatusError {
			t.Fatalf("out-of-range dist: status %d", r.status)
		}
		// After drain initiation an admission either sheds (the loop saw the
		// request before exiting) or the connection closes (it exited first);
		// both are the client's retry signal, and nothing may be answered OK.
		s0.InitiateDrain()
		r, err := ask(60, q)
		switch {
		case err != nil:
			t.Logf("post-drain query: connection closed (%v)", err)
		case r.status == StatusShed:
			if RetryAfterMs(r.payload) == 0 {
				t.Fatal("shed response without a retry-after hint")
			}
		default:
			t.Fatalf("post-drain query answered with status %d", r.status)
		}
	})
}

// TestSoakHarness points the open-loop load generator at a small sim job:
// the report must account for every request and the latency check must
// honor the single-CPU guard.
func TestSoakHarness(t *testing.T) {
	const p = 2
	fab := fabric.New(p, fabric.TestProfile())
	feps := make([]fabric.Provider, p)
	for r := range feps {
		feps[r] = fab.Endpoint(r)
	}
	g := graph.Named("web", 7, 42)
	pt := partition.Build(g, p, partition.EdgeCut)
	serveJob(t, feps, pt, Config{}, func(addr string, s0 *Server) {
		rep, err := RunSoak(SoakOptions{
			Addr: addr, Conns: 2, QPS: 100, Duration: 300 * time.Millisecond,
			MaxVertex: uint32(g.N), Seed: 9,
		})
		s0.InitiateDrain()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sent == 0 || rep.OK == 0 {
			t.Fatalf("no load delivered: %+v", rep)
		}
		if rep.OK+rep.Shed+rep.Errors+rep.Lost != rep.Sent {
			t.Fatalf("request accounting: ok %d + shed %d + errors %d + lost %d != sent %d",
				rep.OK, rep.Shed, rep.Errors, rep.Lost, rep.Sent)
		}
		if rep.Errors != 0 {
			t.Fatalf("%d error responses", rep.Errors)
		}
		if err := rep.CheckLatency(time.Millisecond); err != nil {
			// Plausible on a multi-core box only if serving is pathologically
			// slow; the single-CPU guard must have skipped it here.
			t.Logf("latency check: %v", err)
		}
		if rep.GOMAXPROCS == 1 && rep.ThresholdsChecked {
			t.Fatal("thresholds must not be enforced at GOMAXPROCS=1")
		}
		t.Log(rep.Table())
	})
}
