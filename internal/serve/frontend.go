package serve

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// request is one unit handed from a connection reader to the serving loop:
// a client query, or a disconnect note (bye) so the loop can retire the
// connection's admission state.
type request struct {
	c     *clientConn
	reqid uint32
	q     Query
	start time.Time
	bye   bool
}

// clientConn is one client connection. The reader and writer goroutines own
// conn and out; dead and resident are serving-loop state (touched only from
// the loop), which is what lets the loop drop responses to a severed client
// without locks.
type clientConn struct {
	conn net.Conn
	out  chan []byte

	dead     bool // loop-only: no further sends
	resident int  // loop-only: this client's admitted in-flight queries
}

// send hands an encoded response to the connection's writer. Called only
// from the serving loop. A full buffer means the client has stopped reading
// faster than we answer — rather than stall the loop (and every other
// client) we sever the connection and drop its traffic.
func (c *clientConn) send(b []byte) {
	if c.dead {
		return
	}
	select {
	case c.out <- b:
	default:
		c.markDead()
	}
}

// markDead severs the connection: no further sends, the writer drains and
// exits (out is closed), the reader errors out of its blocking read. Loop
// goroutine only.
func (c *clientConn) markDead() {
	if c.dead {
		return
	}
	c.dead = true
	c.conn.Close()
	close(c.out)
}

// Frontend accepts client connections on a listener and bridges them to the
// coordinator's serving loop. Run it on rank 0 only.
type Frontend struct {
	ln net.Listener
	s  *Server

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// ServeClients starts accepting clients for s on ln. Close tears it down.
func ServeClients(ln net.Listener, s *Server) *Frontend {
	f := &Frontend{ln: ln, s: s, conns: map[net.Conn]struct{}{}}
	f.wg.Add(1)
	go f.accept()
	return f
}

// Close stops accepting, severs every live connection, and waits for the
// per-connection goroutines to exit.
func (f *Frontend) Close() {
	f.ln.Close()
	f.mu.Lock()
	for c := range f.conns {
		c.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
}

func (f *Frontend) accept() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.mu.Lock()
		f.conns[conn] = struct{}{}
		f.mu.Unlock()
		c := &clientConn{conn: conn, out: make(chan []byte, 256)}
		f.wg.Add(2)
		go f.read(c)
		go f.write(c)
	}
}

// read parses requests and feeds the serving loop; the blocking channel
// send is the natural TCP back-pressure for clients that outrun admission.
func (f *Frontend) read(c *clientConn) {
	defer f.wg.Done()
	defer func() {
		f.mu.Lock()
		delete(f.conns, c.conn)
		f.mu.Unlock()
	}()
	br := bufio.NewReader(c.conn)
	for {
		reqid, q, err := ReadRequest(br)
		if err != nil {
			break
		}
		select {
		case f.s.incoming <- request{c: c, reqid: reqid, q: q, start: time.Now()}:
		case <-f.s.done:
			c.conn.Close()
			return
		}
	}
	// Tell the loop the client is gone so it stops writing to us; if the
	// loop already exited nobody will write again anyway.
	select {
	case f.s.incoming <- request{c: c, bye: true}:
	case <-f.s.done:
		c.conn.Close()
	}
}

// write streams encoded responses out, flushing whenever the buffer runs
// dry. It exits when the loop severs the connection (out closed) or when
// the server has drained (no further sends can come).
func (f *Frontend) write(c *clientConn) {
	defer f.wg.Done()
	bw := bufio.NewWriter(c.conn)
	flushClose := func() {
		bw.Flush()
		c.conn.Close()
	}
	for {
		select {
		case b, ok := <-c.out:
			if !ok {
				flushClose()
				return
			}
			bw.Write(b)
			if len(c.out) == 0 {
				bw.Flush()
			}
		case <-f.s.done:
			// The loop is gone: drain what it already queued, then hang up.
			for {
				select {
				case b, ok := <-c.out:
					if !ok {
						flushClose()
						return
					}
					bw.Write(b)
				default:
					flushClose()
					return
				}
			}
		}
	}
}
