// Package serve keeps a partitioned graph resident across the ranks of an
// SPMD job and answers a continuous stream of client queries over the
// communication runtime (DESIGN.md §14) — the serving-shaped counterpart to
// the batch analytics frameworks.
//
// Topology: rank 0 is the coordinator. It admits client queries (k-hop
// neighborhood size, point-to-point BFS distance, personalized PageRank
// push), runs each as a round-structured state machine, and fetches the
// adjacency each round needs from the owning ranks as batched sub-queries
// on the reserved control tags [cluster.ServeTagLo, cluster.CollectiveTag).
// The partition policy must be EdgeCut: the owner of a vertex holds all of
// its out-edges, so one sub-query to one rank answers a vertex completely.
//
// Admission control is the serving-side face of the transport's credit
// machinery: a bounded number of queries may be resident (globally and per
// client), and anything beyond that is shed immediately with a retry-after
// hint rather than queued — the same shed-don't-buffer stance the layers
// take with ErrResource. Results are cached in an LRU keyed by the query
// triple, with hit/miss telemetry.
//
// Shutdown is a graceful drain: InitiateDrain sheds new admissions, lets
// resident queries complete, then broadcasts a stop control to the worker
// ranks, so every admitted query is answered exactly once even when the
// transport underneath is dropping and reordering datagrams.
package serve

import (
	"runtime"
	"sync/atomic"
	"time"

	"lcigraph/internal/cluster"
	"lcigraph/internal/comm"
	"lcigraph/internal/partition"
	"lcigraph/internal/telemetry"
	"lcigraph/internal/tracing"
)

// Reserved base tags (all within [cluster.ServeTagLo, cluster.CollectiveTag)).
const (
	tagQuery = cluster.ServeTagLo     // coordinator → owner: adjacency request
	tagReply = cluster.ServeTagLo + 1 // owner → coordinator: adjacency reply
	tagCtrl  = cluster.ServeTagLo + 2 // coordinator → owner: drain control
)

// Config tunes one serving job. The zero value selects the defaults; every
// rank must use the same query-semantics fields (MaxHops, MaxRounds,
// PPRAlpha, PPREps), and an Oracle checked against the job must too.
type Config struct {
	MaxInFlight  int    // resident-query bound at the coordinator (default 64)
	MaxPerClient int    // resident-query bound per client connection (default 8)
	CacheSize    int    // LRU result-cache entries (default 1024; <0 disables)
	RetryAfterMs uint32 // shed responses carry this retry hint (default 50)

	MaxHops   int     // k-hop radius bound (default 8)
	MaxRounds int     // BFS/PPR round bound (default 64)
	PPRAlpha  float64 // PPR teleport probability (default 0.15)
	PPREps    float64 // PPR residual push threshold (default 1e-4)

	Reg    *telemetry.Registry // nil: telemetry off
	Tracer *tracing.Tracer     // nil: tracing off

	// Health, if set, gets a turn on the layer-owning goroutine every loop
	// iteration for its reserved-tag heartbeat traffic (health.Monitor's
	// Pump; it rate-limits itself, so the per-iteration cost is a clock
	// read).
	Health HealthPump
}

// HealthPump is the serving loop's hook into the health monitor.
type HealthPump interface{ Pump() }

func (c *Config) fill() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxPerClient <= 0 {
		c.MaxPerClient = 8
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.RetryAfterMs == 0 {
		c.RetryAfterMs = 50
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 8
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 64
	}
	if c.PPRAlpha <= 0 {
		c.PPRAlpha = 0.15
	}
	if c.PPREps <= 0 {
		c.PPREps = 1e-4
	}
}

// pending is one resident query at the coordinator.
type pending struct {
	c     *clientConn
	reqid uint32
	q     Query
	m     machine
	start time.Time
	qid   uint32 // 24-bit coordinator sequence
	tid   uint64 // tracing id: MsgID(coordinator rank, qid)
	round int

	verts     []uint32      // this round's need, ascending
	adj       [][]uint32    // aligned to verts
	slots     map[int][]int // peer rank → indices into verts still owed
	remaining int           // outstanding peer replies this round
}

// Server is one rank's half of a serving job: the coordinator loop on rank
// 0, the adjacency-owner loop everywhere else. All layer traffic stays on
// the goroutine that calls Run, per the layer's single-driver contract.
type Server struct {
	h   *cluster.Host
	pt  *partition.Partitioned
	hg  *partition.HostGraph
	cfg Config

	layer comm.AsyncLayer
	met   *metrics

	incoming chan request
	done     chan struct{} // closed when the loop exits

	draining atomic.Bool
	inflight atomic.Int64

	// Coordinator-loop state (touched only from Run's goroutine).
	seq     uint32
	queries map[uint32]*pending
	cache   *lru
}

// New builds this rank's server. The partition must have been built with
// partition.EdgeCut (owners hold all out-edges of their vertices); every
// rank passes the same deterministic Partitioned.
func New(h *cluster.Host, pt *partition.Partitioned, cfg Config) *Server {
	if pt.Policy != partition.EdgeCut {
		panic("serve: partition policy must be EdgeCut (owner holds all out-edges)")
	}
	al, ok := h.Layer.(comm.AsyncLayer)
	if !ok {
		panic("serve: communication layer does not support async tags (need LCILayer)")
	}
	cfg.fill()
	s := &Server{
		h:        h,
		pt:       pt,
		hg:       pt.Hosts[h.Rank],
		cfg:      cfg,
		layer:    al,
		incoming: make(chan request, 256),
		done:     make(chan struct{}),
		queries:  map[uint32]*pending{},
		cache:    newLRU(cfg.CacheSize),
	}
	s.met = newMetrics(cfg.Reg, s.inflight.Load)
	return s
}

// InitiateDrain begins a graceful shutdown: new queries are shed, resident
// ones run to completion, then the coordinator stops the worker ranks. Safe
// from any goroutine (signal handlers, tests). On worker ranks it is a
// no-op — the stop control arrives from the coordinator.
func (s *Server) InitiateDrain() { s.draining.Store(true) }

// Done is closed when this rank's serving loop has exited.
func (s *Server) Done() <-chan struct{} { return s.done }

// Run drives this rank's serving loop until drain completes. It must be
// called from the goroutine that owns the layer (the cluster.RunRank body).
func (s *Server) Run() {
	defer close(s.done)
	if s.h.Rank == 0 {
		s.runCoordinator()
	} else {
		s.runWorker()
	}
}

// backoff mirrors the comm layers' idle strategy: yield on short idle
// streaks, park briefly on long ones.
func backoff(idle int, worked bool) int {
	if worked {
		return 0
	}
	idle++
	if idle < 64 {
		runtime.Gosched()
	} else {
		time.Sleep(20 * time.Microsecond)
	}
	return idle
}

// runCoordinator is rank 0's loop: admit client queries, scatter adjacency
// sub-queries, absorb replies, advance machines, respond.
func (s *Server) runCoordinator() {
	idle := 0
	for {
		if s.cfg.Health != nil {
			s.cfg.Health.Pump()
		}
		worked := false
		// Absorb a bounded batch of client requests so reply polling never
		// starves under open-loop load.
	admit:
		for i := 0; i < 64; i++ {
			select {
			case r := <-s.incoming:
				s.handle(r)
				worked = true
			default:
				break admit
			}
		}
		for {
			m, ok := s.layer.RecvTag(tagReply)
			if !ok {
				break
			}
			s.onReply(m)
			worked = true
		}
		if s.draining.Load() && len(s.queries) == 0 {
			// Shed whatever is still queued so every request the loop ever
			// received gets its one response (readers that race the loop's
			// exit see the connection close instead — the client's retry
			// signal, same as a shed).
			for {
				select {
				case r := <-s.incoming:
					s.handle(r)
				default:
					goto stopped
				}
			}
		stopped:
			// Every resident query has answered; nothing can owe us a reply,
			// so the workers' request streams are quiescent and a stop cannot
			// overtake unserved work.
			for p := 0; p < s.h.P; p++ {
				if p != s.h.Rank {
					s.layer.PostTag(p, tagCtrl, encodeCtrl(s.layer.AllocBuf, ctrlStop))
				}
			}
			return
		}
		idle = backoff(idle, worked)
	}
}

// runWorker is a non-coordinator rank's loop: answer adjacency sub-queries
// until the coordinator says stop.
func (s *Server) runWorker() {
	idle := 0
	for {
		if s.cfg.Health != nil {
			s.cfg.Health.Pump()
		}
		worked := false
		for {
			m, ok := s.layer.RecvTag(tagQuery)
			if !ok {
				break
			}
			s.serveAdj(m)
			worked = true
		}
		if m, ok := s.layer.RecvTag(tagCtrl); ok {
			m.Release()
			return
		}
		idle = backoff(idle, worked)
	}
}

// handle admits (or sheds) one client request.
func (s *Server) handle(r request) {
	if r.bye {
		// Client disconnected: stop writing to it. Its resident queries
		// still run to completion (their results land in the cache); the
		// responses are dropped at the dead-connection check.
		r.c.markDead()
		return
	}
	if r.c.dead {
		return
	}
	qid := s.seq & tracing.MsgIDMask
	s.seq++
	tid := tracing.MsgID(s.h.Rank, qid)
	s.cfg.Tracer.RecordArg(tracing.EvQueryRecv, -1, 0, 0, uint32(r.q.Op), tid)

	if s.draining.Load() || len(s.queries) >= s.cfg.MaxInFlight ||
		r.c.resident >= s.cfg.MaxPerClient {
		s.met.shed[r.q.Op].Inc()
		s.cfg.Tracer.RecordArg(tracing.EvQueryDone, -1, 0, 0, 2, tid)
		r.c.send(EncodeResponse(r.reqid, StatusShed, ShedPayload(s.cfg.RetryAfterMs)))
		return
	}
	if v, ok := s.cache.get(cacheKey{r.q.Op, r.q.A, r.q.B}); ok {
		s.met.cacheHits.Inc()
		s.met.ok[r.q.Op].Inc()
		s.met.latency[r.q.Op].Observe(int64(time.Since(r.start)))
		s.cfg.Tracer.RecordArg(tracing.EvQueryDone, -1, 0, len(v), 1, tid)
		r.c.send(EncodeResponse(r.reqid, StatusOK, v))
		return
	}
	s.met.cacheMisses.Inc()
	m, err := newMachine(r.q, s.pt.GlobalN, &s.cfg)
	if err != nil {
		s.met.errs[r.q.Op].Inc()
		s.cfg.Tracer.RecordArg(tracing.EvQueryDone, -1, 0, 0, 3, tid)
		r.c.send(EncodeResponse(r.reqid, StatusError, []byte(err.Error())))
		return
	}
	p := &pending{c: r.c, reqid: r.reqid, q: r.q, m: m, start: r.start, qid: qid, tid: tid}
	s.queries[qid] = p
	s.inflight.Store(int64(len(s.queries)))
	r.c.resident++
	s.step(p)
}

// step runs p forward: scatter the next round's sub-queries, serving
// self-owned vertices inline, and keep advancing while no remote reply is
// outstanding.
func (s *Server) step(p *pending) {
	for {
		verts := p.m.need()
		if len(verts) == 0 {
			s.finish(p)
			return
		}
		p.verts = verts
		p.adj = make([][]uint32, len(verts))
		p.slots = map[int][]int{}
		for i, v := range verts {
			owner := s.pt.Owner(v)
			p.slots[owner] = append(p.slots[owner], i)
		}
		p.remaining = 0
		for owner, idxs := range p.slots {
			if owner == s.h.Rank {
				for _, i := range idxs {
					p.adj[i] = s.localAdj(verts[i])
				}
				continue
			}
			sub := make([]uint32, len(idxs))
			for j, i := range idxs {
				sub[j] = verts[i]
			}
			s.layer.PostTag(owner, tagQuery, encodeAdjReq(s.layer.AllocBuf, p.qid, sub))
			s.met.subqueries.Inc()
			p.remaining++
		}
		delete(p.slots, s.h.Rank)
		s.cfg.Tracer.RecordArg(tracing.EvQueryScatter, -1, 0, len(verts), uint32(p.round), p.tid)
		if p.remaining > 0 {
			return
		}
		p.m.advance(p.adj)
		p.round++
	}
}

// onReply absorbs one adjacency reply into its query's current round.
func (s *Server) onReply(m comm.Message) {
	qid, adj, err := decodeAdjRep(m.Data)
	peer := m.Peer
	m.Release()
	if err != nil {
		return
	}
	p, ok := s.queries[qid]
	if !ok {
		return
	}
	idxs, ok := p.slots[peer]
	if !ok || len(idxs) != len(adj) {
		return // stale or malformed; the reliable transport makes this unreachable
	}
	for j, l := range adj {
		p.adj[idxs[j]] = l
	}
	delete(p.slots, peer)
	p.remaining--
	s.cfg.Tracer.RecordArg(tracing.EvQueryGather, peer, 0, len(adj), uint32(p.round), p.tid)
	if p.remaining == 0 {
		p.m.advance(p.adj)
		p.round++
		s.step(p)
	}
}

// finish completes a resident query: cache, respond, account.
func (s *Server) finish(p *pending) {
	res := p.m.result()
	s.cache.put(cacheKey{p.q.Op, p.q.A, p.q.B}, res)
	delete(s.queries, p.qid)
	s.inflight.Store(int64(len(s.queries)))
	p.c.resident--
	s.met.ok[p.q.Op].Inc()
	s.met.latency[p.q.Op].Observe(int64(time.Since(p.start)))
	s.cfg.Tracer.RecordArg(tracing.EvQueryDone, -1, 0, len(res), 1, p.tid)
	p.c.send(EncodeResponse(p.reqid, StatusOK, res))
}

// serveAdj answers one adjacency sub-query from the resident partition.
func (s *Server) serveAdj(m comm.Message) {
	qid, verts, err := decodeAdjReq(m.Data)
	peer := m.Peer
	m.Release()
	if err != nil {
		return
	}
	adj := make([][]uint32, len(verts))
	for i, v := range verts {
		adj[i] = s.localAdj(v)
	}
	s.met.served.Inc()
	s.cfg.Tracer.RecordArg(tracing.EvQueryServe, peer, 0, len(verts), 0,
		tracing.MsgID(peer, qid))
	s.layer.PostTag(peer, tagReply, encodeAdjRep(s.layer.AllocBuf, qid, adj))
}

// localAdj returns the global-id out-neighbors of global vertex v from this
// rank's partition. Under EdgeCut every out-edge of an owned vertex is
// local, so the list is complete.
func (s *Server) localAdj(v uint32) []uint32 {
	l, ok := s.hg.G2L(v)
	if !ok {
		return nil
	}
	nb := s.hg.Local.Neighbors(int(l))
	out := make([]uint32, len(nb))
	for i, u := range nb {
		out[i] = s.hg.L2G[u]
	}
	return out
}
