package serve

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"lcigraph/internal/graph"
)

// A machine is one query's round-structured state: need() names the global
// vertices whose out-adjacency the next round requires (empty means the
// query is finished), advance() consumes that adjacency — adj[i] is the
// out-neighbor list of need()[i], in any order — and result() encodes the
// answer once finished.
//
// Machines are deterministic: need() returns vertices in ascending order,
// and any order-sensitive arithmetic (the PPR float accumulation) sorts its
// inputs first. The distributed coordinator and the single-host Oracle
// therefore produce bit-identical results from the same graph, which is
// what the exactly-once serving tests assert.
type machine interface {
	need() []uint32
	advance(adj [][]uint32)
	result() []byte
}

// newMachine validates a query against the graph size and builds its state
// machine.
func newMachine(q Query, globalN int, cfg *Config) (machine, error) {
	if int(q.A) >= globalN {
		return nil, fmt.Errorf("vertex %d out of range (graph has %d)", q.A, globalN)
	}
	switch q.Op {
	case OpKHop:
		if int(q.B) > cfg.MaxHops {
			return nil, fmt.Errorf("k=%d exceeds the %d-hop limit", q.B, cfg.MaxHops)
		}
		return newBFSMachine(q.A, int(q.B), Unreachable, false), nil
	case OpDist:
		if int(q.B) >= globalN {
			return nil, fmt.Errorf("vertex %d out of range (graph has %d)", q.B, globalN)
		}
		return newBFSMachine(q.A, cfg.MaxRounds, q.B, true), nil
	case OpPPR:
		if q.B == 0 {
			return nil, fmt.Errorf("ppr topN must be positive")
		}
		return &pprMachine{
			res:       map[uint32]float64{q.A: 1},
			score:     map[uint32]float64{},
			topN:      int(q.B),
			maxRounds: cfg.MaxRounds,
			alpha:     cfg.PPRAlpha,
			eps:       cfg.PPREps,
		}, nil
	default:
		return nil, fmt.Errorf("unknown op %d", q.Op)
	}
}

// bfsMachine runs breadth-first frontier expansion: the k-hop neighborhood
// count (hasTarget false) and the point-to-point hop distance (hasTarget
// true, stops early when target joins the frontier).
type bfsMachine struct {
	visited   map[uint32]struct{}
	frontier  []uint32 // sorted; the vertices need() exposes
	depth     int
	maxDepth  int
	target    uint32
	hasTarget bool
	foundAt   int // depth at which target was reached; -1 while unseen
}

func newBFSMachine(src uint32, maxDepth int, target uint32, hasTarget bool) *bfsMachine {
	m := &bfsMachine{
		visited:   map[uint32]struct{}{src: {}},
		frontier:  []uint32{src},
		maxDepth:  maxDepth,
		target:    target,
		hasTarget: hasTarget,
		foundAt:   -1,
	}
	if hasTarget && src == target {
		m.foundAt = 0
		m.frontier = nil
	}
	return m
}

func (m *bfsMachine) need() []uint32 {
	if m.depth >= m.maxDepth || (m.hasTarget && m.foundAt >= 0) {
		return nil
	}
	return m.frontier
}

func (m *bfsMachine) advance(adj [][]uint32) {
	next := make([]uint32, 0, len(adj))
	for _, l := range adj {
		for _, u := range l {
			if _, seen := m.visited[u]; seen {
				continue
			}
			m.visited[u] = struct{}{}
			next = append(next, u)
		}
	}
	m.depth++
	sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
	m.frontier = next
	if m.hasTarget && m.foundAt < 0 {
		if _, seen := m.visited[m.target]; seen {
			m.foundAt = m.depth
		}
	}
}

func (m *bfsMachine) result() []byte {
	var b [4]byte
	if m.hasTarget {
		d := Unreachable
		if m.foundAt >= 0 {
			d = uint32(m.foundAt)
		}
		binary.LittleEndian.PutUint32(b[:], d)
	} else {
		binary.LittleEndian.PutUint32(b[:], uint32(len(m.visited)))
	}
	return b[:]
}

// pprMachine is single-source personalized PageRank by batched residual
// push: each round pushes every vertex whose residual has reached eps,
// moving alpha of it into the score and spreading the rest over the
// out-neighbors. Rounds are Jacobi-style (all pushes of a round read the
// residuals chosen at its start), so the result is independent of how the
// adjacency was fetched; processing active vertices in ascending order with
// sorted neighbor lists makes the float arithmetic deterministic too.
type pprMachine struct {
	res       map[uint32]float64
	score     map[uint32]float64
	batch     []uint32
	topN      int
	round     int
	maxRounds int
	alpha     float64
	eps       float64
}

func (m *pprMachine) need() []uint32 {
	if m.round >= m.maxRounds {
		return nil
	}
	m.batch = m.batch[:0]
	for v, r := range m.res {
		if r >= m.eps {
			m.batch = append(m.batch, v)
		}
	}
	sort.Slice(m.batch, func(i, j int) bool { return m.batch[i] < m.batch[j] })
	return m.batch
}

func (m *pprMachine) advance(adj [][]uint32) {
	for i, v := range m.batch {
		rv := m.res[v]
		delete(m.res, v)
		m.score[v] += m.alpha * rv
		l := adj[i]
		if len(l) == 0 {
			continue // dangling vertex: its residual mass retires
		}
		sorted := append([]uint32(nil), l...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		share := (1 - m.alpha) * rv / float64(len(sorted))
		for _, u := range sorted {
			m.res[u] += share
		}
	}
	m.round++
}

func (m *pprMachine) result() []byte {
	type vs struct {
		v uint32
		s float64
	}
	all := make([]vs, 0, len(m.score))
	for v, s := range m.score {
		all = append(all, vs{v, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].v < all[j].v
	})
	if len(all) > m.topN {
		all = all[:m.topN]
	}
	b := make([]byte, 4+12*len(all))
	binary.LittleEndian.PutUint32(b, uint32(len(all)))
	for i, e := range all {
		binary.LittleEndian.PutUint32(b[4+12*i:], e.v)
		binary.LittleEndian.PutUint64(b[8+12*i:], math.Float64bits(e.s))
	}
	return b
}

// DecodePPR unpacks a PPR result payload into (vertex, score) pairs.
func DecodePPR(payload []byte) ([]uint32, []float64, error) {
	if len(payload) < 4 {
		return nil, nil, fmt.Errorf("serve: ppr payload %d bytes", len(payload))
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+12*n {
		return nil, nil, fmt.Errorf("serve: ppr payload %d bytes for %d entries", len(payload), n)
	}
	vs := make([]uint32, n)
	ss := make([]float64, n)
	for i := 0; i < n; i++ {
		vs[i] = binary.LittleEndian.Uint32(payload[4+12*i:])
		ss[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8+12*i:]))
	}
	return vs, ss, nil
}

// DecodeU32 unpacks a KHop/Dist result payload.
func DecodeU32(payload []byte) (uint32, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("serve: u32 payload %d bytes", len(payload))
	}
	return binary.LittleEndian.Uint32(payload), nil
}

// Oracle answers queries against the whole graph in one process — the
// single-host reference the distributed serving path must match exactly
// (same machines, adjacency read straight from the CSR).
type Oracle struct {
	G   *graph.Graph
	Cfg Config
}

// NewOracle builds an oracle with defaulted config (the config must match
// the server's for PPR results to agree).
func NewOracle(g *graph.Graph, cfg Config) *Oracle {
	cfg.fill()
	return &Oracle{G: g, Cfg: cfg}
}

// Answer runs one query to completion locally and returns the result
// payload (the same bytes a StatusOK response would carry).
func (o *Oracle) Answer(q Query) ([]byte, error) {
	m, err := newMachine(q, o.G.N, &o.Cfg)
	if err != nil {
		return nil, err
	}
	for verts := m.need(); len(verts) > 0; verts = m.need() {
		adj := make([][]uint32, len(verts))
		for i, v := range verts {
			adj[i] = o.G.Neighbors(int(v))
		}
		m.advance(adj)
	}
	return m.result(), nil
}
