package serve

import (
	"fmt"

	"lcigraph/internal/telemetry"
)

// metrics is the serving layer's telemetry surface (scraped live through
// the /metrics endpoint alongside the transport counters):
//
//	lci_serve_queries_total{op=,status=}  admitted-query outcomes
//	lci_serve_latency_ns{op=}             end-to-end latency distributions
//	lci_serve_cache_{hits,misses}_total   result-cache effectiveness
//	lci_serve_subqueries_total            adjacency batches scattered
//	lci_serve_served_total                adjacency batches answered here
//	lci_serve_inflight                    queries currently resident (gauge)
type metrics struct {
	ok      map[uint8]*telemetry.Counter
	shed    map[uint8]*telemetry.Counter
	errs    map[uint8]*telemetry.Counter
	latency map[uint8]*telemetry.Histogram

	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	subqueries  *telemetry.Counter
	served      *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry, inflight func() int64) *metrics {
	m := &metrics{
		ok:      map[uint8]*telemetry.Counter{},
		shed:    map[uint8]*telemetry.Counter{},
		errs:    map[uint8]*telemetry.Counter{},
		latency: map[uint8]*telemetry.Histogram{},
	}
	for _, op := range []uint8{OpKHop, OpDist, OpPPR} {
		name := OpName(op)
		m.ok[op] = reg.Counter(fmt.Sprintf(`lci_serve_queries_total{op=%q,status="ok"}`, name))
		m.shed[op] = reg.Counter(fmt.Sprintf(`lci_serve_queries_total{op=%q,status="shed"}`, name))
		m.errs[op] = reg.Counter(fmt.Sprintf(`lci_serve_queries_total{op=%q,status="error"}`, name))
		m.latency[op] = reg.Histogram(fmt.Sprintf(`lci_serve_latency_ns{op=%q}`, name))
	}
	m.cacheHits = reg.Counter("lci_serve_cache_hits_total")
	m.cacheMisses = reg.Counter("lci_serve_cache_misses_total")
	m.subqueries = reg.Counter("lci_serve_subqueries_total")
	m.served = reg.Counter("lci_serve_served_total")
	reg.GaugeFunc("lci_serve_inflight", telemetry.AggSum, inflight)
	return m
}
