package serve

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Open-loop load generator and soak harness: clients issue queries at a
// target aggregate rate on a fixed schedule, regardless of how fast
// responses come back (open-loop, so server slowdowns surface as latency
// rather than silently throttling the offered load), and the harness
// reports the latency distribution, achieved throughput, and shed rate —
// the numbers committed as BENCH_serving.json.

// SoakOptions configures one load-generation run.
type SoakOptions struct {
	Addr      string        // rank 0's client endpoint
	Conns     int           // client connections (default 4)
	QPS       float64       // target aggregate query rate (default 200)
	Duration  time.Duration // measured window (default 5s)
	Grace     time.Duration // post-window wait for stragglers (default 5s)
	Seed      int64         // query-mix PRNG seed (default 1)
	MaxVertex uint32        // query vertices drawn from [0, MaxVertex)
}

func (o *SoakOptions) fill() error {
	if o.Addr == "" {
		return fmt.Errorf("serve: soak needs an address")
	}
	if o.MaxVertex == 0 {
		return fmt.Errorf("serve: soak needs the graph's vertex count")
	}
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.QPS <= 0 {
		o.QPS = 200
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Grace <= 0 {
		o.Grace = 5 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// SoakReport is the soak harness's result document (BENCH_serving.json).
type SoakReport struct {
	Conns       int     `json:"conns"`
	TargetQPS   float64 `json:"target_qps"`
	DurationSec float64 `json:"duration_sec"`

	Sent   int64 `json:"sent"`
	OK     int64 `json:"ok"`
	Shed   int64 `json:"shed"`
	Errors int64 `json:"errors"`
	Lost   int64 `json:"lost"` // unanswered within the grace window

	QPS      float64 `json:"qps"`       // achieved answered-query rate
	ShedRate float64 `json:"shed_rate"` // shed / sent

	P50us  float64 `json:"p50_us"` // OK-response latency percentiles
	P90us  float64 `json:"p90_us"`
	P99us  float64 `json:"p99_us"`
	P999us float64 `json:"p999_us"`

	// CacheHitRatio is filled by the caller from the server's telemetry
	// (hits / lookups); -1 when no scrape was available.
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	// GOMAXPROCS records the box the numbers came from; ThresholdsChecked
	// says whether CheckLatency enforced its ceiling (false on single-CPU
	// runs, where tail latency measures the scheduler, not the runtime).
	GOMAXPROCS        int  `json:"gomaxprocs"`
	ThresholdsChecked bool `json:"thresholds_checked"`
}

// CheckLatency enforces a p99 ceiling on the report. On a single-CPU run
// (GOMAXPROCS == 1) the client, the coordinator, and every worker rank
// time-share one core, so tail percentiles flake on scheduler noise; the
// check is skipped and ThresholdsChecked records that.
func (r *SoakReport) CheckLatency(maxP99 time.Duration) error {
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if r.GOMAXPROCS == 1 {
		r.ThresholdsChecked = false
		return nil
	}
	r.ThresholdsChecked = true
	if lim := float64(maxP99.Nanoseconds()) / 1e3; r.P99us > lim {
		return fmt.Errorf("serve: p99 %.0fµs exceeds the %.0fµs ceiling", r.P99us, lim)
	}
	return nil
}

// soakConn is one load-generating connection's state.
type soakConn struct {
	conn net.Conn

	mu      sync.Mutex
	sentAt  map[uint32]time.Time
	ok      []time.Duration
	shed    int64
	errs    int64
	answers int64
}

// randomQuery draws from a fixed mix: mostly cheap neighborhood queries
// with enough repetition (small vertex range bias) to exercise the cache,
// plus distance and PPR traffic.
func randomQuery(rng *rand.Rand, maxVertex uint32) Query {
	// Bias a third of the draws into a small hot set so the result cache
	// sees repeats, like a production query log would.
	v := func() uint32 {
		if rng.Intn(3) == 0 {
			return uint32(rng.Intn(16)) % maxVertex
		}
		return uint32(rng.Int63n(int64(maxVertex)))
	}
	switch r := rng.Intn(10); {
	case r < 6:
		return Query{Op: OpKHop, A: v(), B: uint32(1 + rng.Intn(3))}
	case r < 9:
		return Query{Op: OpDist, A: v(), B: v()}
	default:
		return Query{Op: OpPPR, A: v(), B: 8}
	}
}

// RunSoak drives open-loop load at the target QPS against a serving job and
// returns the measured report. It waits for the server to answer a warm-up
// query before the clock starts, so rank startup does not pollute the
// window.
func RunSoak(o SoakOptions) (SoakReport, error) {
	if err := o.fill(); err != nil {
		return SoakReport{}, err
	}
	conns := make([]*soakConn, o.Conns)
	for i := range conns {
		c, err := net.DialTimeout("tcp", o.Addr, 10*time.Second)
		if err != nil {
			return SoakReport{}, fmt.Errorf("serve: dial %s: %w", o.Addr, err)
		}
		conns[i] = &soakConn{conn: c, sentAt: map[uint32]time.Time{}}
	}
	defer func() {
		for _, c := range conns {
			c.conn.Close()
		}
	}()

	// Warm-up: one answered query proves every rank is resident.
	if err := WriteRequest(conns[0].conn, 0, Query{Op: OpKHop, A: 0, B: 1}); err != nil {
		return SoakReport{}, fmt.Errorf("serve: warm-up send: %w", err)
	}
	conns[0].conn.SetReadDeadline(time.Now().Add(60 * time.Second))
	if _, _, _, err := ReadResponse(conns[0].conn); err != nil {
		return SoakReport{}, fmt.Errorf("serve: warm-up response: %w", err)
	}
	conns[0].conn.SetReadDeadline(time.Time{})

	// Readers: match responses to send times, classify, record.
	var readers sync.WaitGroup
	for _, c := range conns {
		readers.Add(1)
		go func(c *soakConn) {
			defer readers.Done()
			for {
				reqid, status, _, err := ReadResponse(c.conn)
				if err != nil {
					return
				}
				now := time.Now()
				c.mu.Lock()
				start, ok := c.sentAt[reqid]
				delete(c.sentAt, reqid)
				if ok {
					c.answers++
					switch status {
					case StatusOK:
						c.ok = append(c.ok, now.Sub(start))
					case StatusShed:
						c.shed++
					default:
						c.errs++
					}
				}
				c.mu.Unlock()
			}
		}(c)
	}

	// Senders: each connection carries its slice of the aggregate rate on a
	// fixed schedule (absolute next-send times, so a slow write shifts the
	// whole schedule visibly instead of being absorbed silently).
	interval := time.Duration(float64(o.Conns) / o.QPS * float64(time.Second))
	var senders sync.WaitGroup
	var sent int64
	var sentMu sync.Mutex
	begin := time.Now()
	end := begin.Add(o.Duration)
	for ci, c := range conns {
		senders.Add(1)
		go func(ci int, c *soakConn) {
			defer senders.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(ci)))
			reqid := uint32(1)
			next := time.Now()
			n := int64(0)
			for time.Now().Before(end) {
				q := randomQuery(rng, o.MaxVertex)
				c.mu.Lock()
				c.sentAt[reqid] = time.Now()
				c.mu.Unlock()
				if err := WriteRequest(c.conn, reqid, q); err != nil {
					c.mu.Lock()
					delete(c.sentAt, reqid)
					c.mu.Unlock()
					break
				}
				n++
				reqid++
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
			sentMu.Lock()
			sent += n
			sentMu.Unlock()
		}(ci, c)
	}
	senders.Wait()
	elapsed := time.Since(begin)

	// Grace: let stragglers answer, then hang up (which stops the readers).
	deadline := time.Now().Add(o.Grace)
	for time.Now().Before(deadline) {
		outstanding := 0
		for _, c := range conns {
			c.mu.Lock()
			outstanding += len(c.sentAt)
			c.mu.Unlock()
		}
		if outstanding == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, c := range conns {
		c.conn.Close()
	}
	readers.Wait()

	// Aggregate.
	r := SoakReport{
		Conns:         o.Conns,
		TargetQPS:     o.QPS,
		DurationSec:   elapsed.Seconds(),
		Sent:          sent,
		CacheHitRatio: -1,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}
	var lats []time.Duration
	for _, c := range conns {
		c.mu.Lock()
		r.Shed += c.shed
		r.Errors += c.errs
		r.Lost += int64(len(c.sentAt))
		lats = append(lats, c.ok...)
		c.mu.Unlock()
	}
	r.OK = int64(len(lats))
	if elapsed > 0 {
		r.QPS = float64(r.OK+r.Shed+r.Errors) / elapsed.Seconds()
	}
	if r.Sent > 0 {
		r.ShedRate = float64(r.Shed) / float64(r.Sent)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return float64(lats[i].Nanoseconds()) / 1e3
	}
	r.P50us, r.P90us, r.P99us, r.P999us = pct(0.50), pct(0.90), pct(0.99), pct(0.999)
	return r, nil
}

// Table renders the report for the console.
func (r SoakReport) Table() string {
	checked := "skipped (GOMAXPROCS=1)"
	if r.ThresholdsChecked {
		checked = "enforced"
	}
	return fmt.Sprintf(
		"serving soak: %d conns, target %.0f qps, %.1fs window\n"+
			"  sent %d  ok %d  shed %d (%.1f%%)  errors %d  lost %d  achieved %.0f qps\n"+
			"  latency p50 %.0fµs  p90 %.0fµs  p99 %.0fµs  p99.9 %.0fµs\n"+
			"  cache hit ratio %.2f  thresholds %s\n",
		r.Conns, r.TargetQPS, r.DurationSec,
		r.Sent, r.OK, r.Shed, 100*r.ShedRate, r.Errors, r.Lost, r.QPS,
		r.P50us, r.P90us, r.P99us, r.P999us,
		r.CacheHitRatio, checked)
}
