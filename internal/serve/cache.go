package serve

import "container/list"

// cacheKey identifies one query's result: ops are pure functions of the
// resident graph, so (op, a, b) fully determines the answer.
type cacheKey struct {
	op   uint8
	a, b uint32
}

// lru is a plain LRU result cache. It is owned by the serving loop (one
// goroutine), so it needs no locking. A zero-capacity cache stores nothing.
type lru struct {
	cap int
	ll  *list.List // front = most recent
	m   map[cacheKey]*list.Element
}

type lruEntry struct {
	k cacheKey
	v []byte
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), m: make(map[cacheKey]*list.Element)}
}

// get returns the cached result and refreshes its recency.
func (c *lru) get(k cacheKey) ([]byte, bool) {
	e, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).v, true
}

// put inserts (or refreshes) a result, evicting the least recently used
// entry when over capacity.
func (c *lru) put(k cacheKey, v []byte) {
	if c.cap <= 0 {
		return
	}
	if e, ok := c.m[k]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*lruEntry).v = v
		return
	}
	c.m[k] = c.ll.PushFront(&lruEntry{k: k, v: v})
	if c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.m, old.Value.(*lruEntry).k)
	}
}

// len returns the resident entry count.
func (c *lru) len() int { return c.ll.Len() }
