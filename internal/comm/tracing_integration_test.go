package comm

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	lci "lcigraph/internal/core"
	"lcigraph/internal/netfabric"
	"lcigraph/internal/tracing"
)

// TestTracingLossyUDPPairsMsgIDs runs a 2-rank exchange over real loopback
// UDP with injected loss and checks the cross-rank correlation contract:
// every message a rank received carries a msgid that the peer's SEND-ENQ
// recorded, exactly once — retransmissions and duplicated datagrams must
// never mint a second RECV-DEQ event. The per-rank rings then merge into
// one Chrome trace that must decode cleanly with monotone per-lane
// timestamps and at least one send→recv flow-arrow pair.
func TestTracingLossyUDPPairsMsgIDs(t *testing.T) {
	const p = 2
	const msgs = 40
	provs, err := netfabric.NewLoopbackGroup(p, netfabric.Config{
		Fault: netfabric.Fault{Loss: 0.05, Dup: 0.02, Reorder: 0.02, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]*tracing.Tracer, p)
	layers := make([]*LCILayer, p)
	for r := 0; r < p; r++ {
		trs[r] = tracing.New(r, 4096)
		layers[r] = NewLCILayer(provs[r], lci.Options{Tracer: trs[r]})
		layers[r].SetCoalescing(false) // one SEND-ENQ (and msgid) per message
	}

	payload := func(r, i int) []byte {
		b := make([]byte, 48)
		for j := range b {
			b[j] = byte(r*131 + i*7 + j)
		}
		return b
	}

	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			l := layers[r]
			peer := 1 - r
			eff := l.BeginFused(77)
			for i := 0; i < msgs; i++ {
				buf := l.AllocBuf(48)
				copy(buf, payload(r, i))
				l.SendFused(0, peer, eff, buf)
			}
			got := 0
			l.FinishFusedCount(eff, msgs, func(pr int, data []byte) {
				if pr != peer || !bytes.Equal(data, payload(peer, got)) {
					t.Errorf("rank %d: message %d corrupt or misordered from %d", r, got, pr)
				}
				got++
			})
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		layers[r].Stop()
	}
	for r := 0; r < p; r++ {
		provs[r].Close()
	}

	// Pair SEND-ENQ ↔ RECV-DEQ by global msgid across the two rings.
	for r := 0; r < p; r++ {
		peer := 1 - r
		sent := map[uint64]int{}
		for _, ev := range trs[r].Events() {
			if ev.Type == tracing.EvSendEnq && ev.MsgID != 0 {
				sent[ev.MsgID]++
			}
		}
		recvd := map[uint64]int{}
		for _, ev := range trs[peer].Events() {
			if ev.Type == tracing.EvRecvDeq && tracing.MsgIDRank(ev.MsgID) == r {
				recvd[ev.MsgID]++
			}
		}
		if len(sent) != msgs {
			t.Fatalf("rank %d recorded %d send-enq msgids, want %d", r, len(sent), msgs)
		}
		for id, n := range sent {
			if n != 1 {
				t.Errorf("rank %d: msgid %#x enqueued %d times", r, id, n)
			}
			if recvd[id] != 1 {
				t.Errorf("msgid %#x from rank %d dequeued %d times on rank %d, want exactly once",
					id, r, recvd[id], peer)
			}
		}
		for id := range recvd {
			if sent[id] == 0 {
				t.Errorf("rank %d dequeued msgid %#x that rank %d never enqueued", peer, id, r)
			}
		}
	}

	// The merged Chrome document must survive a decode round-trip with
	// per-rank lanes, monotone timestamps, and matched flow arrows.
	merged, err := tracing.MergeChrome([][]byte{
		tracing.ChromeTrace(trs[0].Events(), 0),
		tracing.ChromeTrace(trs[1].Events(), 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			PID int     `json:"pid"`
			TID int     `json:"tid"`
			TS  float64 `json:"ts"`
			ID  string  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	lanes := map[[2]int]float64{}
	flowS := map[string]bool{}
	pairs := 0
	for _, e := range doc.TraceEvents {
		pids[e.PID] = true
		switch e.Ph {
		case "X":
			key := [2]int{e.PID, e.TID}
			if e.TS < lanes[key] {
				t.Fatalf("lane %v timestamps not monotone", key)
			}
			lanes[key] = e.TS
		case "s":
			flowS[e.ID] = true
		case "f":
			if flowS[e.ID] {
				pairs++
			}
		}
	}
	if !pids[0] || !pids[1] {
		t.Fatalf("merged trace missing a rank lane: %v", pids)
	}
	if pairs == 0 {
		t.Fatal("no send→recv flow-arrow pair in the merged trace")
	}
}
