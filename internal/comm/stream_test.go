package comm

import (
	"runtime"
	"sync"
	"testing"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/mpi"
)

func makeStreams(t testing.TB, kind string, p int) ([]Stream, func()) {
	t.Helper()
	fab := fabric.New(p, fabric.TestProfile())
	streams := make([]Stream, p)
	switch kind {
	case "lci":
		for r := 0; r < p; r++ {
			streams[r] = NewLCIStream(fab.Endpoint(r), lci.Options{})
		}
	case "mpi-probe":
		w := mpi.NewWorldOn(fab, mpi.TestImpl(), mpi.ThreadMultiple)
		for r := 0; r < p; r++ {
			streams[r] = NewMPIStream(w.Comm(r))
		}
	default:
		t.Fatalf("unknown stream kind %q", kind)
	}
	return streams, func() {
		var wg sync.WaitGroup
		for _, s := range streams {
			wg.Add(1)
			go func(s Stream) { defer wg.Done(); s.Stop() }(s)
		}
		wg.Wait()
	}
}

func streamKindsTest() []string { return []string{"lci", "mpi-probe"} }

func TestStreamBasicSendRecv(t *testing.T) {
	for _, kind := range streamKindsTest() {
		t.Run(kind, func(t *testing.T) {
			streams, stop := makeStreams(t, kind, 2)
			defer stop()
			buf := streams[0].AllocBuf(5)
			copy(buf, "hello")
			streams[0].SendMsg(0, 1, 42, buf)
			for {
				m, ok := streams[1].RecvMsg()
				if !ok {
					runtime.Gosched()
					continue
				}
				if m.Peer != 0 || m.Tag != 42 || string(m.Data) != "hello" {
					t.Fatalf("message = %+v", m)
				}
				m.Release()
				break
			}
		})
	}
}

// TestStreamManyThreadsManySizes: concurrent sender threads, mixed
// eager/rendezvous sizes, exact delivery.
func TestStreamManyThreadsManySizes(t *testing.T) {
	for _, kind := range streamKindsTest() {
		t.Run(kind, func(t *testing.T) {
			streams, stop := makeStreams(t, kind, 2)
			defer stop()
			const threads, per = 4, 60
			var wg sync.WaitGroup
			var sentBytes [threads]int
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						size := (th*per+i)%2000 + 1 // spans the eager limit
						buf := streams[0].AllocBuf(size)
						for j := range buf {
							buf[j] = byte(th)
						}
						streams[0].SendMsg(th, 1, uint32(th), buf)
						sentBytes[th] += size
					}
				}(th)
			}
			gotBytes := make([]int, threads)
			for n := 0; n < threads*per; {
				// Pump the sender side too: in Gemini every host's receive
				// loop drives progress; a sender that stops calling into
				// the library would strand its rendezvous handshakes.
				streams[0].RecvMsg()
				m, ok := streams[1].RecvMsg()
				if !ok {
					runtime.Gosched()
					continue
				}
				th := int(m.Tag)
				for _, by := range m.Data {
					if by != byte(th) {
						t.Fatalf("corrupt payload from thread %d", th)
					}
				}
				gotBytes[th] += len(m.Data)
				m.Release()
				n++
			}
			wg.Wait()
			for th := 0; th < threads; th++ {
				if gotBytes[th] != sentBytes[th] {
					t.Fatalf("thread %d: got %d bytes, sent %d", th, gotBytes[th], sentBytes[th])
				}
			}
		})
	}
}

// TestStreamStopDrains: Stop returns only after in-flight sends are
// reusable, and delivered data stays intact.
func TestStreamStopDrains(t *testing.T) {
	for _, kind := range streamKindsTest() {
		t.Run(kind, func(t *testing.T) {
			streams, stopAll := makeStreams(t, kind, 2)
			big := streams[0].AllocBuf(5000) // rendezvous-size
			for i := range big {
				big[i] = 7
			}
			streams[0].SendMsg(0, 1, 1, big)
			done := make(chan struct{})
			go func() {
				for {
					streams[0].RecvMsg() // sender-side progress pump
					if m, ok := streams[1].RecvMsg(); ok {
						if len(m.Data) != 5000 {
							t.Errorf("size %d", len(m.Data))
						}
						m.Release()
						close(done)
						return
					}
					runtime.Gosched()
				}
			}()
			<-done
			stopAll()
		})
	}
}

func TestStreamTrackerAccounting(t *testing.T) {
	streams, stop := makeStreams(t, "lci", 2)
	defer stop()
	buf := streams[0].AllocBuf(100)
	if streams[0].Tracker().Current() < 100 {
		t.Fatal("alloc not tracked")
	}
	streams[0].SendMsg(0, 1, 0, buf)
	// After delivery + release, sender current returns to ~0.
	for {
		if m, ok := streams[1].RecvMsg(); ok {
			m.Release()
			break
		}
		runtime.Gosched()
	}
	for streams[0].Tracker().Current() != 0 {
		if _, ok := streams[0].RecvMsg(); !ok { // reaps pending sends
			runtime.Gosched()
		}
	}
}
