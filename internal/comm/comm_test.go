package comm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/mpi"
)

// makeLayers builds one layer of the named kind per host over a shared
// fabric. The returned stop function shuts everything down.
func makeLayers(t testing.TB, kind string, p int) ([]Layer, func()) {
	t.Helper()
	fab := fabric.New(p, fabric.TestProfile())
	layers := make([]Layer, p)
	switch kind {
	case "lci":
		for r := 0; r < p; r++ {
			layers[r] = NewLCILayer(fab.Endpoint(r), lci.Options{})
		}
	case "mpi-probe":
		w := mpi.NewWorldOn(fab, mpi.TestImpl(), mpi.ThreadFunneled)
		for r := 0; r < p; r++ {
			layers[r] = NewProbeLayer(w.Comm(r))
		}
	case "mpi-rma":
		w := mpi.NewWorldOn(fab, mpi.TestImpl(), mpi.ThreadMultiple)
		for r := 0; r < p; r++ {
			layers[r] = NewRMALayer(w.Comm(r))
		}
	default:
		t.Fatalf("unknown layer kind %q", kind)
	}
	return layers, func() {
		var wg sync.WaitGroup
		for _, l := range layers {
			wg.Add(1)
			go func(l Layer) { defer wg.Done(); l.Stop() }(l)
		}
		wg.Wait()
	}
}

func kinds() []string { return []string{"lci", "mpi-probe", "mpi-rma"} }

// runExchange performs one collective Exchange round on every layer
// concurrently and returns what each host received: got[h][peer] = payload.
func runExchange(t *testing.T, layers []Layer, tag uint32,
	outs [][][]byte, expect [][]bool, recvMax []int) [][][]byte {
	t.Helper()
	p := len(layers)
	got := make([][][]byte, p)
	var wg sync.WaitGroup
	for h := 0; h < p; h++ {
		got[h] = make([][]byte, p)
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			layers[h].Exchange(tag, outs[h], expect[h], recvMax,
				func(peer int, data []byte) {
					got[h][peer] = append([]byte(nil), data...)
				})
		}(h)
	}
	wg.Wait()
	return got
}

func TestExchangeAllToAll(t *testing.T) {
	const P = 4
	for _, kind := range kinds() {
		t.Run(kind, func(t *testing.T) {
			layers, stop := makeLayers(t, kind, P)
			defer stop()

			outs := make([][][]byte, P)
			expect := make([][]bool, P)
			recvMax := make([]int, P)
			for h := 0; h < P; h++ {
				outs[h] = make([][]byte, P)
				expect[h] = make([]bool, P)
				for p := 0; p < P; p++ {
					if p == h {
						continue
					}
					msg := []byte(fmt.Sprintf("h%d->p%d", h, p))
					buf := layers[h].AllocBuf(len(msg))
					copy(buf, msg)
					outs[h][p] = buf
					expect[h][p] = true
					recvMax[p] = 64
				}
			}
			got := runExchange(t, layers, 2, outs, expect, recvMax)
			for h := 0; h < P; h++ {
				for p := 0; p < P; p++ {
					if p == h {
						continue
					}
					want := fmt.Sprintf("h%d->p%d", p, h)
					if string(got[h][p]) != want {
						t.Fatalf("host %d from %d: %q want %q", h, p, got[h][p], want)
					}
				}
			}
		})
	}
}

func TestExchangeLargeMessages(t *testing.T) {
	const P = 2
	const size = 20000 // beyond every eager limit → rendezvous / big put
	for _, kind := range kinds() {
		t.Run(kind, func(t *testing.T) {
			layers, stop := makeLayers(t, kind, P)
			defer stop()
			rng := rand.New(rand.NewSource(3))
			payload := make([]byte, size)
			rng.Read(payload)

			outs := [][][]byte{make([][]byte, P), make([][]byte, P)}
			buf := layers[0].AllocBuf(size)
			copy(buf, payload)
			outs[0][1] = buf
			expect := [][]bool{{false, false}, {true, false}}
			recvMax := []int{size, size}

			got := runExchange(t, layers, 3, outs, expect, recvMax)
			if !bytes.Equal(got[1][0], payload) {
				t.Fatal("large payload corrupted")
			}
		})
	}
}

// TestExchangeManyRounds checks epoch separation: fast hosts must not leak
// round r+1 messages into a slow host's round r.
func TestExchangeManyRounds(t *testing.T) {
	const P = 3
	const rounds = 20
	for _, kind := range kinds() {
		t.Run(kind, func(t *testing.T) {
			layers, stop := makeLayers(t, kind, P)
			defer stop()
			recvMax := []int{16, 16, 16}

			var wg sync.WaitGroup
			for h := 0; h < P; h++ {
				wg.Add(1)
				go func(h int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						out := make([][]byte, P)
						expect := make([]bool, P)
						for p := 0; p < P; p++ {
							if p == h {
								continue
							}
							buf := layers[h].AllocBuf(2)
							buf[0], buf[1] = byte(h), byte(r)
							out[p] = buf
							expect[p] = true
						}
						layers[h].Exchange(7, out, expect, recvMax,
							func(peer int, data []byte) {
								if data[0] != byte(peer) || data[1] != byte(r) {
									t.Errorf("host %d round %d: got sender %d round %d",
										h, r, data[0], data[1])
								}
							})
					}
				}(h)
			}
			wg.Wait()
		})
	}
}

// TestExchangeInterleavedTags runs two phases per round (reduce-like and
// broadcast-like) without barriers between them.
func TestExchangeInterleavedTags(t *testing.T) {
	const P = 2
	const rounds = 10
	for _, kind := range kinds() {
		t.Run(kind, func(t *testing.T) {
			layers, stop := makeLayers(t, kind, P)
			defer stop()
			recvMax := []int{8, 8}

			var wg sync.WaitGroup
			for h := 0; h < P; h++ {
				wg.Add(1)
				go func(h int) {
					defer wg.Done()
					peer := 1 - h
					for r := 0; r < rounds; r++ {
						for _, tag := range []uint32{10, 11} {
							out := make([][]byte, P)
							buf := layers[h].AllocBuf(3)
							buf[0], buf[1], buf[2] = byte(tag), byte(r), byte(h)
							out[peer] = buf
							expect := make([]bool, P)
							expect[peer] = true
							layers[h].Exchange(tag, out, expect, recvMax,
								func(p int, data []byte) {
									if data[0] != byte(tag) || data[1] != byte(r) || data[2] != byte(peer) {
										t.Errorf("host %d tag %d round %d: got %v", h, tag, r, data)
									}
								})
						}
					}
				}(h)
			}
			wg.Wait()
		})
	}
}

// TestExchangeSparsePattern: only some pairs talk; expectations respected.
func TestExchangeSparsePattern(t *testing.T) {
	const P = 4
	for _, kind := range kinds() {
		t.Run(kind, func(t *testing.T) {
			layers, stop := makeLayers(t, kind, P)
			defer stop()
			recvMax := []int{8, 8, 8, 8}

			// Ring: h sends to (h+1)%P only.
			outs := make([][][]byte, P)
			expect := make([][]bool, P)
			for h := 0; h < P; h++ {
				outs[h] = make([][]byte, P)
				expect[h] = make([]bool, P)
				buf := layers[h].AllocBuf(1)
				buf[0] = byte(h)
				outs[h][(h+1)%P] = buf
				expect[h][(h+P-1)%P] = true
			}
			got := runExchange(t, layers, 5, outs, expect, recvMax)
			for h := 0; h < P; h++ {
				prev := (h + P - 1) % P
				if len(got[h][prev]) != 1 || got[h][prev][0] != byte(prev) {
					t.Fatalf("host %d: got %v from %d", h, got[h][prev], prev)
				}
				for p := 0; p < P; p++ {
					if p != prev && got[h][p] != nil {
						t.Fatalf("host %d: unexpected message from %d", h, p)
					}
				}
			}
		})
	}
}

// TestMemoryFootprintShape reproduces Fig. 5's qualitative claim on a tiny
// workload: the RMA layer's footprint (upper-bound windows) must exceed the
// LCI layer's (recycled buffers) for the same traffic.
func TestMemoryFootprintShape(t *testing.T) {
	const P = 4
	const rounds = 10
	maxTracked := map[string]int64{}
	for _, kind := range kinds() {
		layers, stop := makeLayers(t, kind, P)
		recvMax := make([]int, P)
		for i := range recvMax {
			recvMax[i] = 4096 // upper bound ≫ actual traffic
		}
		var wg sync.WaitGroup
		for h := 0; h < P; h++ {
			wg.Add(1)
			go func(h int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					out := make([][]byte, P)
					expect := make([]bool, P)
					for p := 0; p < P; p++ {
						if p == h {
							continue
						}
						buf := layers[h].AllocBuf(64) // actual ≪ upper bound
						out[p] = buf
						expect[p] = true
					}
					layers[h].Exchange(9, out, expect, recvMax, func(int, []byte) {})
				}
			}(h)
		}
		wg.Wait()
		var maxm int64
		for _, l := range layers {
			if m := l.Tracker().Max(); m > maxm {
				maxm = m
			}
		}
		maxTracked[kind] = maxm
		stop()
	}
	if maxTracked["mpi-rma"] <= maxTracked["lci"] {
		t.Errorf("RMA footprint (%d) should exceed LCI footprint (%d)",
			maxTracked["mpi-rma"], maxTracked["lci"])
	}
	t.Logf("footprints: %v", maxTracked)
}

func TestEffTagPacking(t *testing.T) {
	e := epochs{}
	a0 := e.next(5)
	a1 := e.next(5)
	b0 := e.next(6)
	if a0 == a1 || a0 == b0 {
		t.Fatal("effective tags collide")
	}
	if effTag(5, 0) != a0 {
		t.Fatal("epoch counter broken")
	}
}

func TestStash(t *testing.T) {
	s := stash{}
	if _, ok := s.take(1); ok {
		t.Fatal("take from empty stash")
	}
	s.put(Message{Tag: 1, Peer: 10})
	s.put(Message{Tag: 1, Peer: 11})
	s.put(Message{Tag: 2, Peer: 12})
	m, ok := s.take(1)
	if !ok || m.Peer != 10 {
		t.Fatalf("take = %+v", m)
	}
	m, _ = s.take(1)
	if m.Peer != 11 {
		t.Fatal("stash not FIFO")
	}
	if _, ok := s.take(1); ok {
		t.Fatal("stash leaked")
	}
	if m, _ := s.take(2); m.Peer != 12 {
		t.Fatal("tag-2 message lost")
	}
}
