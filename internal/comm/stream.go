package comm

import (
	"runtime"
	"sync"
	"time"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/memtrack"
	"lcigraph/internal/mpi"
	"lcigraph/internal/telemetry"
	"lcigraph/internal/tracing"
)

// Stream is the communication shape Gemini uses (§IV-B1): many compute
// threads concurrently send variable-size batches to arbitrary peers, and a
// receiving loop takes messages as they arrive. With MPI this forces
// MPI_THREAD_MULTIPLE plus frequent MPI_Iprobe; with LCI each thread calls
// SEND-ENQ directly and the receive loop uses RECV-DEQ.
type Stream interface {
	Name() string
	// SendMsg sends data to peer with tag; safe from any compute thread.
	// The stream owns data (allocated with AllocBuf) afterwards.
	SendMsg(thread, peer int, tag uint32, data []byte)
	// RecvMsg returns one incoming message, if any. Single consumer.
	RecvMsg() (Message, bool)
	// AllocBuf returns a tracked buffer.
	AllocBuf(n int) []byte
	Tracker() *memtrack.Tracker
	Stop()
}

// ---- LCI stream ----

// LCIStream sends straight from compute threads through the LCI Queue
// interface — the paper's "simple modifications to the Gemini runtime such
// that each sending/receiving thread uses LCI Queue instead of MPI".
const maxStreamThreads = 64

// coalFlushInterval caps how long a coalesced stream message may stay
// parked when neither a companion message nor an idle RecvMsg flushes it
// (mirrors the probe layer's aggregation timeout).
const coalFlushInterval = 50 * time.Microsecond

type LCIStream struct {
	// ep is the rank's progress-shard set (see LCILayer.ep).
	ep      *lci.Sharded
	tracker memtrack.Tracker

	workers [maxStreamThreads]int // thread id → pool worker id (lock-free)

	// coal packs small per-peer messages into bundles; flushed when idle
	// (RecvMsg with nothing ready) and by the background ticker.
	coal *coalescer

	mu          sync.Mutex
	pendSend    []sendInFlight
	pendingRecv []*lci.Request

	// ready holds unpacked bundle records awaiting delivery (single
	// consumer, like RecvMsg itself).
	ready     []Message
	readyHead int

	met layerMetrics

	stop      chan struct{}
	flushDone chan struct{}
}

// NewLCIStream builds an LCI stream over a fabric provider and starts its
// communication server.
func NewLCIStream(fep fabric.Provider, opt lci.Options) *LCIStream {
	s := &LCIStream{stop: make(chan struct{}), flushDone: make(chan struct{})}
	opt.Allocator = trackedAlloc{&s.tracker}
	s.ep = lci.NewSharded(fep, opt)
	for i := range s.workers {
		s.workers[i] = s.ep.RegisterWorker()
	}
	s.coal = newCoalescer(fep.Size(), s.ep.EagerLimit(), s.emit,
		s.tracker.Free,
		func(n int) []byte { return make([]byte, n) }, func([]byte) {})
	s.met = newLayerMetrics(opt.Telemetry, s.Name())
	s.met.tr = s.ep.Tracer() // endpoint already resolved opt.Tracer / default
	s.coal.initTelemetry(s.met.reg)
	go s.ep.Serve(s.stop)
	go s.flushLoop()
	return s
}

// Telemetry returns the stream's metrics registry.
func (s *LCIStream) Telemetry() *telemetry.Registry { return s.met.reg }

// SetCoalescing toggles send coalescing (ablation knob). Call before any
// traffic.
func (s *LCIStream) SetCoalescing(on bool) { s.coal.setEnabled(on) }

// CoalesceStats returns the coalescer counters.
func (s *LCIStream) CoalesceStats() CoalesceStats { return s.coal.stats() }

// flushLoop bounds the latency of parked coalesced messages: a sender whose
// receive loop went quiet still ships within coalFlushInterval.
func (s *LCIStream) flushLoop() {
	defer close(s.flushDone)
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		time.Sleep(coalFlushInterval)
		s.coal.flushAll(s.workers[0], false, false)
	}
}

// Name implements Stream.
func (s *LCIStream) Name() string { return "lci" }

// Tracker implements Stream.
func (s *LCIStream) Tracker() *memtrack.Tracker { return &s.tracker }

// AllocBuf implements Stream.
func (s *LCIStream) AllocBuf(n int) []byte {
	s.tracker.Alloc(n)
	return make([]byte, n)
}

// Stop implements Stream.
func (s *LCIStream) Stop() {
	s.coal.flushAll(s.workers[0], true, false)
	for {
		s.mu.Lock()
		drained := len(s.pendSend) == 0
		s.mu.Unlock()
		if drained {
			break
		}
		s.reapSends()
		runtime.Gosched()
	}
	close(s.stop)
	<-s.flushDone
}

// SendMsg implements Stream.
func (s *LCIStream) SendMsg(thread, peer int, tag uint32, data []byte) {
	s.met.msgBytes.Observe(int64(len(data)))
	s.coal.add(s.workers[thread%maxStreamThreads], peer, tag, data, nil)
}

// emit is the coalescer's send hook: one SEND-ENQ with the stream's retry
// and in-flight bookkeeping. done runs once data is reusable.
func (s *LCIStream) emit(worker, dst int, tag uint32, data []byte, done func(), block, _ bool) bool {
	var spins int64
	for {
		r, ok := s.ep.SendEnq(worker, dst, tag, data)
		if ok {
			s.met.observeSpins(spins)
			s.met.recordSend(dst, len(data), r.MsgID, spins)
			if r.Done() {
				sendInFlight{buf: data, done: done}.finish(&s.tracker)
			} else {
				s.mu.Lock()
				s.pendSend = append(s.pendSend, sendInFlight{req: r, buf: data, done: done})
				s.mu.Unlock()
			}
			return true
		}
		if !block {
			return false
		}
		spins++
		s.reapSends()
		runtime.Gosched()
	}
}

func (s *LCIStream) reapSends() {
	s.mu.Lock()
	keep := s.pendSend[:0]
	for _, p := range s.pendSend {
		if p.req.Done() {
			p.finish(&s.tracker)
		} else {
			keep = append(keep, p)
		}
	}
	s.pendSend = keep
	s.mu.Unlock()
}

// RecvMsg implements Stream.
func (s *LCIStream) RecvMsg() (Message, bool) {
	if s.readyHead < len(s.ready) {
		return s.popReady()
	}
	s.reapSends()
	if r, ok := s.ep.RecvDeq(); ok {
		if r.Done() {
			return s.deliver(s.toMessage(r, false))
		}
		s.pendingRecv = append(s.pendingRecv, r)
	}
	for i, r := range s.pendingRecv {
		if r.Done() {
			s.pendingRecv = append(s.pendingRecv[:i], s.pendingRecv[i+1:]...)
			return s.deliver(s.toMessage(r, true))
		}
	}
	// Nothing ready: flush our own parked coalesced messages so two idle
	// peers cannot wait on each other's parked bundles.
	s.coal.flushAll(s.workers[0], false, false)
	return Message{}, false
}

// deliver unpacks coalesced bundles into the ready queue; plain messages
// pass through.
func (s *LCIStream) deliver(m Message) (Message, bool) {
	if m.Tag&coalFlag == 0 {
		return m, true
	}
	unpackBundle(m, func(rec Message) { s.ready = append(s.ready, rec) })
	return s.popReady()
}

func (s *LCIStream) popReady() (Message, bool) {
	m := s.ready[s.readyHead]
	s.ready[s.readyHead] = Message{}
	s.readyHead++
	if s.readyHead == len(s.ready) {
		s.ready = s.ready[:0]
		s.readyHead = 0
	}
	return m, true
}

func (s *LCIStream) toMessage(r *lci.Request, rendezvous bool) Message {
	if !rendezvous {
		s.tracker.Alloc(len(r.Data))
	}
	n := len(r.Data)
	s.met.recordRecv(r.Rank, n, r.MsgID)
	return Message{
		Peer:    r.Rank,
		Tag:     r.Tag,
		Data:    r.Data,
		release: func() { s.tracker.Free(n); r.Release() },
	}
}

// ---- MPI stream ----

// MPIStream is Gemini's baseline shape: every compute thread calls MPI_Isend
// directly under MPI_THREAD_MULTIPLE (serialized by the library's global
// lock), and the receive loop discovers messages with MPI_Iprobe +
// MPI_Irecv, retiring them with MPI_Test.
type MPIStream struct {
	c       *mpi.Comm
	tracker memtrack.Tracker

	mu       sync.Mutex
	pendSend []pendingMPISend

	pendRecv []pendingRecv

	met layerMetrics
}

type pendingMPISend struct {
	req *mpi.Request
	buf []byte
}

// NewMPIStream builds the MPI stream over comm c (ThreadMultiple mode).
func NewMPIStream(c *mpi.Comm) *MPIStream {
	s := &MPIStream{c: c}
	s.met = newLayerMetrics(nil, s.Name())
	return s
}

// Telemetry returns the stream's metrics registry.
func (s *MPIStream) Telemetry() *telemetry.Registry { return s.met.reg }

// SetTelemetry rewires the stream onto reg (harnesses running several
// in-process ranks give each its own registry). Call before any traffic.
func (s *MPIStream) SetTelemetry(reg *telemetry.Registry) {
	tr := s.met.tr
	s.met = newLayerMetrics(reg, s.Name())
	if tr != nil {
		s.met.tr = tr // keep an explicitly wired tracer across registry swaps
	}
}

// SetTracer rewires the stream's lifecycle tracer (nil disables). Call
// before any traffic.
func (s *MPIStream) SetTracer(tr *tracing.Tracer) { s.met.tr = tr }

// Name implements Stream.
func (s *MPIStream) Name() string { return "mpi-probe" }

// Tracker implements Stream.
func (s *MPIStream) Tracker() *memtrack.Tracker { return &s.tracker }

// AllocBuf implements Stream.
func (s *MPIStream) AllocBuf(n int) []byte {
	s.tracker.Alloc(n)
	return make([]byte, n)
}

// Stop implements Stream.
func (s *MPIStream) Stop() {
	for {
		s.mu.Lock()
		drained := len(s.pendSend) == 0
		s.mu.Unlock()
		if drained {
			return
		}
		s.reapSends()
		runtime.Gosched()
	}
}

// SendMsg implements Stream.
func (s *MPIStream) SendMsg(thread, peer int, tag uint32, data []byte) {
	s.met.msgBytes.Observe(int64(len(data)))
	s.met.recordSend(peer, len(data), 0, 0)
	req, err := s.c.Isend(data, peer, int(tag))
	if err != nil {
		panic("mpi stream: " + err.Error())
	}
	done, err := s.c.Test(req)
	if err != nil {
		panic("mpi stream: " + err.Error())
	}
	if done {
		s.tracker.Free(len(data))
		return
	}
	s.mu.Lock()
	s.pendSend = append(s.pendSend, pendingMPISend{req: req, buf: data})
	s.mu.Unlock()
}

func (s *MPIStream) reapSends() {
	s.mu.Lock()
	keep := s.pendSend[:0]
	for _, p := range s.pendSend {
		done, err := s.c.Test(p.req)
		if err != nil {
			s.mu.Unlock()
			panic("mpi stream: " + err.Error())
		}
		if done {
			s.tracker.Free(len(p.buf))
		} else {
			keep = append(keep, p)
		}
	}
	s.pendSend = keep
	s.mu.Unlock()
}

// RecvMsg implements Stream.
func (s *MPIStream) RecvMsg() (Message, bool) {
	s.reapSends()
	// Probe for anything new (the frequent MPI_Iprobe of Gemini's recv
	// thread).
	if st, ok := s.c.Iprobe(mpi.AnySource, mpi.AnyTag); ok {
		buf := s.AllocBuf(st.Count)
		req, err := s.c.Irecv(buf, st.Source, st.Tag)
		if err != nil {
			panic("mpi stream: " + err.Error())
		}
		s.pendRecv = append(s.pendRecv, pendingRecv{req: req, buf: buf, src: st.Source})
	}
	for i, r := range s.pendRecv {
		done, err := s.c.Test(r.req)
		if err != nil {
			panic("mpi stream: " + err.Error())
		}
		if done {
			s.pendRecv = append(s.pendRecv[:i], s.pendRecv[i+1:]...)
			n := len(r.buf)
			s.met.recordRecv(r.req.Status().Source, r.req.Status().Count, 0)
			return Message{
				Peer:    r.req.Status().Source,
				Tag:     uint32(r.req.Status().Tag),
				Data:    r.buf[:r.req.Status().Count],
				release: func() { s.tracker.Free(n) },
			}, true
		}
	}
	return Message{}, false
}
