// Package comm implements the Abelian/Gemini communication runtime of the
// paper's Fig. 2 — the gather-communicate-scatter layer — with three
// interchangeable backends:
//
//   - ProbeLayer (§III-B): two-sided MPI with a dedicated communication
//     thread, MPSC send funneling, small-message aggregation with a
//     timeout, and MPI_Iprobe-driven receives (MPI_THREAD_FUNNELED).
//   - RMALayer (§III-C): one-sided MPI with per-(tag,source) windows sized
//     at the all-nodes-active upper bound, generalized active-target
//     synchronization, and a dedicated progress thread
//     (MPI_THREAD_MULTIPLE).
//   - LCILayer (§III-D): the LCI Queue interface; compute threads call
//     SEND-ENQ/RECV-DEQ directly and a communication server progresses the
//     network.
//
// The frameworks drive a layer through Exchange: one bulk synchronization
// step per (pattern, field) with a stable tag. Receivers process messages
// in arrival order (scatter overlap), and an out-of-phase message — a fast
// peer's next-round traffic — is stashed for the Exchange that wants it.
package comm

import (
	"encoding/binary"
	"runtime"
	"time"

	"lcigraph/internal/memtrack"
)

// idleBackoff yields for short idle streaks and parks briefly for long
// ones, so the layers' progress threads do not monopolize low-core
// schedulers. Returns the updated idle counter (0 after work).
func idleBackoff(idle int, worked bool) int {
	if worked {
		return 0
	}
	idle++
	if idle < 64 {
		runtime.Gosched()
	} else {
		time.Sleep(20 * time.Microsecond)
	}
	return idle
}

// Message is one received logical message.
type Message struct {
	Peer int
	Tag  uint32 // effective tag (base tag + epoch)
	Data []byte
	// release returns the underlying buffer to the layer; the data is
	// invalid afterwards. Records unpacked from a bundle instead share one
	// ref, so releasing a record costs no allocation.
	release func()
	ref     *bundleRef
}

// Release returns the message's buffer to the layer.
func (m *Message) Release() {
	if m.ref != nil {
		m.ref.dec()
		m.ref = nil
		return
	}
	if m.release != nil {
		m.release()
		m.release = nil
	}
}

// Layer is one pluggable communication backend.
//
// The framework contract for Exchange:
//
//   - Every host calls Exchange with the same base tag in the same order
//     (BSP phases).
//   - out[p] is the payload for peer p (nil ⇒ nothing to say; out[self]
//     is ignored). The layer owns each non-nil buffer (allocated with
//     AllocBuf) and frees it when the send completes.
//   - expect[s] says whether peer s will send to us this phase (statically
//     known from the partition's sync lists).
//   - onRecv is called once per expected message, in arrival order, from
//     the calling goroutine. The data slice is only valid during the call.
//
// Exchange returns when all expected messages have been processed; sends
// may still be draining (they are flushed by later calls or Stop).
type Layer interface {
	Name() string
	Exchange(tag uint32, out [][]byte, expect []bool, recvMax []int,
		onRecv func(peer int, data []byte))
	// AllocBuf returns a tracked buffer of n bytes for gather payloads.
	AllocBuf(n int) []byte
	// Tracker exposes this host's communication-buffer footprint counters.
	Tracker() *memtrack.Tracker
	// Stop shuts down the layer's background goroutines after draining.
	Stop()
}

// Epoch bookkeeping: both sides of every pair execute the same sequence of
// Exchange calls per tag, so a per-tag call counter disambiguates rounds
// (a fast peer's round-r+1 message must not satisfy a slow peer's round-r
// Exchange).
type epochs map[uint32]uint16

func (e epochs) next(tag uint32) uint32 {
	ep := e[tag]
	e[tag]++
	return effTag(tag, ep)
}

// effTag packs a base tag (≤ 255) and an epoch into a 24-bit value that
// fits both LCI's 32-bit tags and MPI's 24-bit tags.
func effTag(tag uint32, epoch uint16) uint32 {
	return tag&0xff<<16 | uint32(epoch)
}

// stash holds messages that arrived for a later (or concurrent other-tag)
// Exchange.
type stash map[uint32][]Message

func (s stash) put(m Message) { s[m.Tag] = append(s[m.Tag], m) }

func (s stash) take(tag uint32) (Message, bool) {
	l := s[tag]
	if len(l) == 0 {
		return Message{}, false
	}
	m := l[0]
	copy(l, l[1:])
	s[tag] = l[:len(l)-1]
	return m, true
}

// countExpected returns the number of peers we must hear from.
func countExpected(expect []bool, self int) int {
	n := 0
	for p, e := range expect {
		if e && p != self {
			n++
		}
	}
	return n
}

// putLen / getLen frame a payload with its length (RMA windows and
// aggregation bundles need explicit lengths).
func putLen(b []byte, n int) { binary.LittleEndian.PutUint64(b, uint64(n)) }
func getLen(b []byte) int    { return int(binary.LittleEndian.Uint64(b)) }
