package comm

// Asynchronous point-to-point messaging on reserved tags — the serving
// path's traffic shape (DESIGN.md §14). Exchange models bulk-synchronous
// supersteps: both sides agree on a tag sequence and epochs keep rounds
// apart. A long-lived query service has no such agreement — any rank may
// send a sub-query or a reply to any other at any time, with many queries
// in flight — so reserved tags carry free-running traffic instead: a fixed
// epoch (no per-tag call counter) and no expectation bookkeeping. Messages
// simply accumulate in the layer's stash until the owner polls them out.
//
// The tag must come from the reserved control range (cluster.ServeTagLo and
// up); frameworks allocate their field tags strictly below it, so async
// traffic can never collide with a BSP exchange.

// AsyncLayer is implemented by layers that support non-collective
// point-to-point messaging on reserved tags. Like Exchange, PostTag and
// RecvTag must be driven by a single goroutine per layer (the serving
// loop); they may interleave with Exchange calls from that same goroutine.
type AsyncLayer interface {
	Layer
	// PostTag sends buf (allocated with AllocBuf; ownership transfers to
	// the layer) to peer on the reserved base tag. It retries internally on
	// back-pressure (ErrResource / pool exhaustion) and returns once the
	// send is enqueued; delivery completes asynchronously.
	PostTag(peer int, tag uint32, buf []byte)
	// RecvTag returns the next message pending on the reserved base tag,
	// polling the network once if none is stashed. The caller must Release
	// the message. ok == false means nothing is pending right now.
	RecvTag(tag uint32) (Message, bool)
}

// asyncEff is the fixed effective tag async traffic travels on: epoch 0 of
// the reserved base tag. Reserved tags never go through epochs.next, so the
// value cannot collide with any Exchange round.
func asyncEff(tag uint32) uint32 { return effTag(tag, 0) }

// PostTag implements AsyncLayer.
func (l *LCILayer) PostTag(peer int, tag uint32, buf []byte) {
	l.met.msgBytes.Observe(int64(len(buf)))
	l.sendOne(l.worker, peer, asyncEff(tag), buf, true)
}

// RecvTag implements AsyncLayer.
func (l *LCILayer) RecvTag(tag uint32) (Message, bool) {
	eff := asyncEff(tag)
	if m, ok := l.stash.take(eff); ok {
		return m, true
	}
	l.poll()
	return l.stash.take(eff)
}
