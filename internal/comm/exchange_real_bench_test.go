package comm

import (
	"fmt"
	"sync"
	"testing"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/mpi"
)

// makeRealLayers builds layers over the realistic omnipath/IntelMPI
// profiles (the configuration the integrated experiments use).
func makeRealLayers(t testing.TB, kind string, p int) ([]Layer, func()) {
	t.Helper()
	fab := fabric.New(p, fabric.OmniPath())
	layers := make([]Layer, p)
	switch kind {
	case "lci":
		for r := 0; r < p; r++ {
			layers[r] = NewLCILayer(fab.Endpoint(r), lci.Options{PoolPackets: 64 * p, Workers: 3})
		}
	case "mpi-probe":
		w := mpi.NewWorldOn(fab, mpi.IntelMPI(), mpi.ThreadFunneled)
		for r := 0; r < p; r++ {
			layers[r] = NewProbeLayer(w.Comm(r))
		}
	case "mpi-rma":
		w := mpi.NewWorldOn(fab, mpi.IntelMPI(), mpi.ThreadMultiple)
		for r := 0; r < p; r++ {
			layers[r] = NewRMALayer(w.Comm(r))
		}
	}
	return layers, func() {
		var wg sync.WaitGroup
		for _, l := range layers {
			wg.Add(1)
			go func(l Layer) { defer wg.Done(); l.Stop() }(l)
		}
		wg.Wait()
	}
}

func benchExchangeReal(b *testing.B, kind string, hosts, size int) {
	layers, stop := makeRealLayers(b, kind, hosts)
	defer stop()
	recvMax := make([]int, hosts)
	for i := range recvMax {
		recvMax[i] = size
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			exp := make([]bool, hosts)
			for p := range exp {
				exp[p] = p != h
			}
			for i := 0; i < b.N; i++ {
				out := make([][]byte, hosts)
				for p := 0; p < hosts; p++ {
					if p == h {
						continue
					}
					out[p] = layers[h].AllocBuf(size)
				}
				layers[h].Exchange(33, out, exp, recvMax, func(int, []byte) {})
			}
		}(h)
	}
	wg.Wait()
}

func BenchmarkExchangeReal(b *testing.B) {
	for _, kind := range kinds() {
		for _, size := range []int{256, 2560, 16384} {
			b.Run(fmt.Sprintf("%s/%dB", kind, size), func(b *testing.B) {
				benchExchangeReal(b, kind, 4, size)
			})
		}
	}
}
