package comm

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"lcigraph/internal/telemetry"
)

// This file holds the eager coalescer and the record framing it shares with
// the probe layer's MPI bundles: both pack many small logical messages into
// one near-eager-limit wire message so the per-message fabric cost (a frame,
// a header, a matching pass) is paid once per bundle instead of once per
// message.

// coalFlag marks bit 31 of a wire tag as "this payload is a bundle of
// records". Application tags never reach that bit: Layer epochs use 24 bits
// (effTag) and Gemini's stream tags are round<<2|kind.
const coalFlag uint32 = 1 << 31

// record framing inside a bundle: tag u32 | len u32 | payload.
const recHdr = 8

// appendRecord packs one record onto buf, which must have capacity for it.
func appendRecord(buf []byte, tag uint32, data []byte) []byte {
	off := len(buf)
	buf = buf[:off+recHdr+len(data)]
	binary.LittleEndian.PutUint32(buf[off:], tag)
	binary.LittleEndian.PutUint32(buf[off+4:], uint32(len(data)))
	copy(buf[off+recHdr:], data)
	return buf
}

// forEachRecord walks the records of a bundle in order.
func forEachRecord(buf []byte, fn func(tag uint32, data []byte)) {
	off := 0
	for off < len(buf) {
		tag := binary.LittleEndian.Uint32(buf[off:])
		sz := int(binary.LittleEndian.Uint32(buf[off+4:]))
		fn(tag, buf[off+recHdr:off+recHdr+sz])
		off += recHdr + sz
	}
}

// countRecords returns the number of records in a bundle.
func countRecords(buf []byte) int {
	n, off := 0, 0
	for off < len(buf) {
		sz := int(binary.LittleEndian.Uint32(buf[off+4:]))
		off += recHdr + sz
		n++
	}
	return n
}

// bundleRef shares one bundle buffer among its unpacked records: the bundle
// is released when the last record is. One allocation per bundle, not per
// record.
type bundleRef struct {
	remaining atomic.Int32
	release   func()
}

func (b *bundleRef) dec() {
	if b.remaining.Add(-1) == 0 && b.release != nil {
		b.release()
	}
}

// unpackBundle splits bundle message b into per-record messages sharing b's
// buffer, handing each to put; b is released when the last record is. The
// record tags — not b.Tag — carry the logical epoch, so bundles may mix
// epochs freely.
func unpackBundle(b Message, put func(Message)) {
	n := countRecords(b.Data)
	if n == 0 {
		b.Release()
		return
	}
	ref := &bundleRef{release: b.release}
	ref.remaining.Store(int32(n))
	forEachRecord(b.Data, func(tag uint32, data []byte) {
		put(Message{Peer: b.Peer, Tag: tag, Data: data, ref: ref})
	})
}

// CoalesceStats is a snapshot of the coalescer counters.
type CoalesceStats struct {
	MsgsCoalesced   int64 // messages shipped inside multi-record bundles
	CoalescedFrames int64 // multi-record bundles shipped
}

// emitFn ships one wire message (a plain message or a bundle tagged
// coalFlag) to dst. done is called exactly once when the sender is finished
// with data; a nil done means "free len(data) tracked bytes" — the common
// case, kept nil so hot-path sends allocate no closure. block retries until
// the send is accepted; a non-block emit returns false on back-pressure and
// the message stays parked. drain lets a blocked emit pump the receive path
// (only safe from the layer's protocol thread).
type emitFn func(worker, dst int, tag uint32, data []byte, done func(), block, drain bool) bool

// coalescer packs small per-destination messages into bundles.
//
// It is lazy: the first message for a destination is parked by reference (no
// copy), and a staging buffer is only allocated when a second message shows
// up before the first was flushed. A destination that only ever holds one
// message per flush window therefore ships it as a plain message with its
// original tag — the coalescer costs nothing on one-message-per-peer paths
// like Abelian's Exchange.
type coalescer struct {
	limit int // bundle payload cap: the fabric eager limit
	emit  emitFn
	// freeData mirrors emitFn's nil-done convention for messages the
	// coalescer absorbs by copy: it frees n tracked bytes.
	freeData func(n int)
	off      atomic.Bool // pass-through mode (ablation knob)

	dests []coalDest

	// Staging-buffer freelist. A bundle is eager by construction, so its
	// buffer is reusable as soon as the fabric accepts it (the payload is
	// copied on injection).
	bufMu    sync.Mutex
	bufs     [][]byte
	allocBuf func(n int) []byte
	freeBuf  func(b []byte)

	msgsCoalesced   atomic.Int64
	coalescedFrames atomic.Int64
	recHist         *telemetry.Histogram // records per shipped bundle
}

// coalRec is one parked message held by reference.
type coalRec struct {
	tag  uint32
	data []byte
	done func()
}

type coalDest struct {
	mu     sync.Mutex
	one    coalRec // parked single (by reference), valid when hasOne
	hasOne bool
	buf    []byte // staging bundle, nil when none
	nrec   int
}

func newCoalescer(hosts, limit int, emit emitFn, freeData func(int),
	allocBuf func(int) []byte, freeBuf func([]byte)) *coalescer {
	return &coalescer{
		limit:    limit,
		emit:     emit,
		freeData: freeData,
		dests:    make([]coalDest, hosts),
		allocBuf: allocBuf,
		freeBuf:  freeBuf,
	}
}

// setEnabled toggles coalescing (pass-through when disabled). Call before
// any traffic.
func (c *coalescer) setEnabled(on bool) { c.off.Store(!on) }

func (c *coalescer) stats() CoalesceStats {
	return CoalesceStats{
		MsgsCoalesced:   c.msgsCoalesced.Load(),
		CoalescedFrames: c.coalescedFrames.Load(),
	}
}

// add queues one message for dst. done fires once the coalescer (or the
// underlying send) is finished with data: immediately if the bytes are
// absorbed into a staging bundle, at send completion otherwise. add may
// block on fabric back-pressure (like a direct send would), but never on a
// receive — it is safe from any compute thread.
func (c *coalescer) add(worker, dst int, tag uint32, data []byte, done func()) {
	if c.off.Load() || recHdr+len(data) > c.limit {
		// Pass-through: oversized messages ship alone (and may go
		// rendezvous); bundling them would force an extra copy.
		c.emit(worker, dst, tag, data, done, true, false)
		return
	}
	d := &c.dests[dst]
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		switch {
		case d.buf != nil:
			if len(d.buf)+recHdr+len(data) <= c.limit {
				d.buf = appendRecord(d.buf, tag, data)
				d.nrec++
				c.fireDone(done, len(data))
				return
			}
			c.flushLocked(worker, d, dst, true, false)
		case !d.hasOne:
			d.one = coalRec{tag: tag, data: data, done: done}
			d.hasOne = true
			return
		case 2*recHdr+len(d.one.data)+len(data) <= c.limit:
			// Second message for dst: open a bundle and absorb the parked
			// single; the loop then appends the new message.
			d.buf = c.getBuf()
			d.buf = appendRecord(d.buf, d.one.tag, d.one.data)
			c.fireDone(d.one.done, len(d.one.data))
			d.one, d.hasOne = coalRec{}, false
			d.nrec = 1
		default:
			// Cannot combine with the parked single: ship it, then park data.
			c.flushLocked(worker, d, dst, true, false)
		}
	}
}

// fireDone completes an absorbed-by-copy message: its bytes now live in the
// staging bundle, so the caller's buffer is reusable.
func (c *coalescer) fireDone(done func(), n int) {
	if done != nil {
		done()
		return
	}
	c.freeData(n)
}

// flushLocked ships whatever is parked for d (bundle or single). It returns
// false only for a non-block emit that hit back-pressure; the message stays
// parked for the next flush.
func (c *coalescer) flushLocked(worker int, d *coalDest, dst int, block, drain bool) bool {
	if d.buf != nil {
		buf, n := d.buf, d.nrec
		if !c.emit(worker, dst, coalFlag, buf, func() { c.putBuf(buf) }, block, drain) {
			return false
		}
		c.msgsCoalesced.Add(int64(n))
		c.coalescedFrames.Add(1)
		c.recHist.Observe(int64(n))
		d.buf, d.nrec = nil, 0
		return true
	}
	if d.hasOne {
		one := d.one
		if !c.emit(worker, dst, one.tag, one.data, one.done, block, drain) {
			return false
		}
		d.one, d.hasOne = coalRec{}, false
	}
	return true
}

// flushAll ships every parked message. A non-block flush skips destinations
// whose lock is contended (another thread is actively packing them) and
// leaves back-pressured messages parked.
func (c *coalescer) flushAll(worker int, block, drain bool) {
	for dst := range c.dests {
		d := &c.dests[dst]
		if block {
			d.mu.Lock()
		} else if !d.mu.TryLock() {
			continue
		}
		c.flushLocked(worker, d, dst, block, drain)
		d.mu.Unlock()
	}
}

func (c *coalescer) getBuf() []byte {
	c.bufMu.Lock()
	if n := len(c.bufs); n > 0 {
		b := c.bufs[n-1]
		c.bufs[n-1] = nil
		c.bufs = c.bufs[:n-1]
		c.bufMu.Unlock()
		return b[:0]
	}
	c.bufMu.Unlock()
	return c.allocBuf(c.limit)[:0]
}

func (c *coalescer) putBuf(b []byte) {
	c.bufMu.Lock()
	if len(c.bufs) < 2*len(c.dests)+2 {
		c.bufs = append(c.bufs, b)
		c.bufMu.Unlock()
		return
	}
	c.bufMu.Unlock()
	c.freeBuf(b)
}
