package comm

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"testing"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
)

func TestRecordRoundTrip(t *testing.T) {
	buf := make([]byte, 0, 256)
	type rec struct {
		tag  uint32
		data string
	}
	recs := []rec{{1, "alpha"}, {coalFlag - 1, ""}, {42, "omega-payload"}}
	for _, r := range recs {
		buf = appendRecord(buf, r.tag, []byte(r.data))
	}
	if n := countRecords(buf); n != len(recs) {
		t.Fatalf("countRecords = %d, want %d", n, len(recs))
	}
	i := 0
	forEachRecord(buf, func(tag uint32, data []byte) {
		if tag != recs[i].tag || string(data) != recs[i].data {
			t.Fatalf("record %d = (%d, %q), want (%d, %q)",
				i, tag, data, recs[i].tag, recs[i].data)
		}
		i++
	})
}

func TestUnpackBundleReleasesOnce(t *testing.T) {
	buf := make([]byte, 0, 128)
	buf = appendRecord(buf, 1, []byte("aa"))
	buf = appendRecord(buf, 2, []byte("bb"))
	released := 0
	var msgs []Message
	unpackBundle(Message{
		Peer:    3,
		Tag:     coalFlag,
		Data:    buf,
		release: func() { released++ },
	}, func(m Message) { msgs = append(msgs, m) })
	if len(msgs) != 2 {
		t.Fatalf("got %d records", len(msgs))
	}
	msgs[0].Release()
	if released != 0 {
		t.Fatal("bundle released before last record")
	}
	msgs[1].Release()
	if released != 1 {
		t.Fatalf("bundle released %d times", released)
	}
}

// TestFusedCoalescing drives many small per-peer messages through one fused
// epoch of the LCI layer: they must arrive intact (bundled on the wire,
// unpacked before onRecv) and every pooled frame must return to the fabric.
func TestFusedCoalescing(t *testing.T) {
	const p = 3
	const perPeer = 40
	fab := fabric.New(p, fabric.TestProfile())
	layers := make([]*LCILayer, p)
	for r := 0; r < p; r++ {
		layers[r] = NewLCILayer(fab.Endpoint(r), lci.Options{})
	}

	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			l := layers[r]
			eff := l.BeginFused(9)
			for peer := 0; peer < p; peer++ {
				if peer == r {
					continue
				}
				for i := 0; i < perPeer; i++ {
					buf := l.AllocBuf(8)
					binary.LittleEndian.PutUint64(buf, uint64(r)<<32|uint64(i))
					l.SendFused(i, peer, eff, buf)
				}
			}
			seen := make(map[uint64]bool)
			l.FinishFusedCount(eff, (p-1)*perPeer, func(peer int, data []byte) {
				v := binary.LittleEndian.Uint64(data)
				if int(v>>32) != peer {
					t.Errorf("rank %d: message %x from peer %d", r, v, peer)
				}
				if seen[v] {
					t.Errorf("rank %d: duplicate message %x", r, v)
				}
				seen[v] = true
			})
		}(r)
	}
	wg.Wait()

	coalesced := false
	var stopWg sync.WaitGroup
	for _, l := range layers {
		if s := l.CoalesceStats(); s.CoalescedFrames > 0 && s.MsgsCoalesced > s.CoalescedFrames {
			coalesced = true
		}
		stopWg.Add(1)
		go func(l *LCILayer) { defer stopWg.Done(); l.Stop() }(l)
	}
	stopWg.Wait()
	if !coalesced {
		t.Fatal("no messages were coalesced")
	}
	if n := fab.FramesOutstanding(); n != 0 {
		t.Fatalf("%d frames still outstanding", n)
	}
}

// TestStreamCoalescing exercises the stream coalescer with concurrent sender
// threads, mixed tags, and sizes spanning the pass-through threshold, then
// verifies frame conservation after shutdown.
func TestStreamCoalescing(t *testing.T) {
	fab := fabric.New(2, fabric.TestProfile())
	snd := NewLCIStream(fab.Endpoint(0), lci.Options{})
	rcv := NewLCIStream(fab.Endpoint(1), lci.Options{})

	const threads, per = 3, 50
	var sent [threads]int
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				size := 16 + (th*per+i)%1200 // some exceed the 1KiB eager limit
				buf := snd.AllocBuf(size)
				for j := range buf {
					buf[j] = byte(th)
				}
				snd.SendMsg(th, 1, uint32(th), buf)
				sent[th] += size
			}
		}(th)
	}
	var got [threads]int
	for n := 0; n < threads*per; {
		snd.RecvMsg() // sender-side pump: reaps sends, flushes parked bundles
		m, ok := rcv.RecvMsg()
		if !ok {
			runtime.Gosched()
			continue
		}
		th := int(m.Tag)
		for _, by := range m.Data {
			if by != byte(th) {
				t.Fatalf("corrupt payload for tag %d", th)
			}
		}
		got[th] += len(m.Data)
		m.Release()
		n++
	}
	wg.Wait()
	for th := 0; th < threads; th++ {
		if got[th] != sent[th] {
			t.Fatalf("tag %d: got %d bytes, sent %d", th, got[th], sent[th])
		}
	}
	if s := snd.CoalesceStats(); s.CoalescedFrames == 0 {
		t.Error("no bundles shipped on the stream path")
	}
	snd.Stop()
	rcv.Stop()
	if n := fab.FramesOutstanding(); n != 0 {
		t.Fatalf("%d frames still outstanding", n)
	}
}

// TestCoalescingDisabledPassThrough: the ablation knob must ship every
// message unbundled with its original tag.
func TestCoalescingDisabledPassThrough(t *testing.T) {
	fab := fabric.New(2, fabric.TestProfile())
	layers := [2]*LCILayer{
		NewLCILayer(fab.Endpoint(0), lci.Options{}),
		NewLCILayer(fab.Endpoint(1), lci.Options{}),
	}
	layers[0].SetCoalescing(false)
	layers[1].SetCoalescing(false)

	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			l := layers[r]
			eff := l.BeginFused(5)
			for i := 0; i < 20; i++ {
				buf := l.AllocBuf(16)
				copy(buf, fmt.Sprintf("msg-%d-%d", r, i))
				l.SendFused(0, 1-r, eff, buf)
			}
			got := 0
			l.FinishFusedCount(eff, 20, func(peer int, data []byte) { got++ })
			if got != 20 {
				t.Errorf("rank %d: received %d messages", r, got)
			}
		}(r)
	}
	wg.Wait()
	for _, l := range layers {
		if s := l.CoalesceStats(); s.CoalescedFrames != 0 {
			t.Errorf("coalesced %d frames with coalescing disabled", s.CoalescedFrames)
		}
		l.Stop()
	}
	if n := fab.FramesOutstanding(); n != 0 {
		t.Fatalf("%d frames still outstanding", n)
	}
}
