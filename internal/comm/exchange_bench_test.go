package comm

import (
	"fmt"
	"sync"
	"testing"
)

// benchExchange measures one all-to-all Exchange round across P hosts with
// fixed payload sizes — the isolated cost of each layer's software path.
func benchExchange(b *testing.B, kind string, hosts, size int) {
	layers, stop := makeLayers(b, kind, hosts)
	defer stop()
	recvMax := make([]int, hosts)
	for i := range recvMax {
		recvMax[i] = size
	}
	expect := make([]bool, hosts)

	b.ResetTimer()
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			exp := make([]bool, hosts)
			copy(exp, expect)
			for p := range exp {
				exp[p] = p != h
			}
			for i := 0; i < b.N; i++ {
				out := make([][]byte, hosts)
				for p := 0; p < hosts; p++ {
					if p == h {
						continue
					}
					out[p] = layers[h].AllocBuf(size)
				}
				layers[h].Exchange(33, out, exp, recvMax, func(int, []byte) {})
			}
		}(h)
	}
	wg.Wait()
}

func BenchmarkExchange(b *testing.B) {
	for _, kind := range kinds() {
		for _, size := range []int{256, 4096, 32768} {
			b.Run(fmt.Sprintf("%s/%dB", kind, size), func(b *testing.B) {
				benchExchange(b, kind, 4, size)
			})
		}
	}
}
