package comm

import (
	"encoding/binary"
	"testing"
	"time"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
)

// asyncLayers builds p connected LCI layers over the simulator.
func asyncLayers(t *testing.T, p int) []*LCILayer {
	t.Helper()
	fab := fabric.New(p, fabric.TestProfile())
	layers := make([]*LCILayer, p)
	for r := range layers {
		layers[r] = NewLCILayer(fab.Endpoint(r), lci.Options{})
	}
	t.Cleanup(func() {
		for _, l := range layers {
			l.Stop()
		}
	})
	return layers
}

// recvTagWait polls RecvTag until a message arrives or the deadline passes.
func recvTagWait(t *testing.T, l *LCILayer, tag uint32) Message {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m, ok := l.RecvTag(tag); ok {
			return m
		}
	}
	t.Fatalf("no message on tag %d within deadline", tag)
	return Message{}
}

// TestAsyncPostRecv: free-running point-to-point messages on a reserved tag
// arrive per tag, in order per peer, and interleave with Exchange traffic
// without cross-talk.
func TestAsyncPostRecv(t *testing.T) {
	const tagA, tagB = 250, 251
	layers := asyncLayers(t, 2)

	// Several messages on two tags, out of tag order.
	for i := 0; i < 8; i++ {
		buf := layers[0].AllocBuf(8)
		binary.LittleEndian.PutUint64(buf, uint64(100+i))
		layers[0].PostTag(1, tagA, buf)
	}
	buf := layers[0].AllocBuf(8)
	binary.LittleEndian.PutUint64(buf, 999)
	layers[0].PostTag(1, tagB, buf)

	// tagB drains independently of the earlier tagA backlog.
	m := recvTagWait(t, layers[1], tagB)
	if got := binary.LittleEndian.Uint64(m.Data); got != 999 || m.Peer != 0 {
		t.Fatalf("tagB message = %d from %d", got, m.Peer)
	}
	m.Release()
	for i := 0; i < 8; i++ {
		m := recvTagWait(t, layers[1], tagA)
		if got := binary.LittleEndian.Uint64(m.Data); got != uint64(100+i) {
			t.Fatalf("tagA message %d = %d", i, got)
		}
		m.Release()
	}
	if m, ok := layers[1].RecvTag(tagA); ok {
		t.Fatalf("unexpected extra message from %d", m.Peer)
	}
}

// TestAsyncLargePayload: async messages above the eager limit ride the
// rendezvous path transparently.
func TestAsyncLargePayload(t *testing.T) {
	const tag = 252
	layers := asyncLayers(t, 2)
	n := 64 << 10
	buf := layers[0].AllocBuf(n)
	for i := range buf {
		buf[i] = byte(i)
	}
	layers[0].PostTag(1, tag, buf)
	m := recvTagWait(t, layers[1], tag)
	if len(m.Data) != n {
		t.Fatalf("got %d bytes, want %d", len(m.Data), n)
	}
	for i, b := range m.Data {
		if b != byte(i) {
			t.Fatalf("byte %d = %d", i, b)
		}
	}
	m.Release()
}

// TestAsyncInterleavesWithExchange: reserved-tag traffic stashed during an
// Exchange does not satisfy the exchange, and survives it.
func TestAsyncInterleavesWithExchange(t *testing.T) {
	const tag = 250
	layers := asyncLayers(t, 2)

	// Park an async message at rank 1 before it enters the exchange.
	a := layers[0].AllocBuf(8)
	binary.LittleEndian.PutUint64(a, 7)
	layers[0].PostTag(1, tag, a)

	// A normal BSP exchange on an application tag, both ranks.
	done := make(chan struct{})
	go func() {
		defer close(done)
		out := make([][]byte, 2)
		b := layers[0].AllocBuf(8)
		binary.LittleEndian.PutUint64(b, 41)
		out[1] = b
		layers[0].Exchange(3, out, []bool{false, true}, []int{8, 8},
			func(peer int, data []byte) {})
	}()
	out := make([][]byte, 2)
	b := layers[1].AllocBuf(8)
	binary.LittleEndian.PutUint64(b, 42)
	out[0] = b
	got := uint64(0)
	layers[1].Exchange(3, out, []bool{true, false}, []int{8, 8},
		func(peer int, data []byte) { got = binary.LittleEndian.Uint64(data) })
	<-done
	if got != 41 {
		t.Fatalf("exchange delivered %d", got)
	}

	m := recvTagWait(t, layers[1], tag)
	if got := binary.LittleEndian.Uint64(m.Data); got != 7 {
		t.Fatalf("async message = %d", got)
	}
	m.Release()
}
