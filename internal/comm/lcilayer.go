package comm

import (
	"runtime"
	"sync"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/memtrack"
	"lcigraph/internal/telemetry"
)

// LCILayer is the §III-D communication layer: the calling thread uses
// SEND-ENQ and RECV-DEQ directly; a communication-server goroutine runs the
// LCI progress loop. Buffers recycle through the packet pool (eager) and a
// tracked allocator (rendezvous), which is why its footprint stays small in
// Fig. 5.
type LCILayer struct {
	// ep is the rank's progress-shard set: one endpoint (and one progress
	// goroutine) at Options.Shards ≤ 1, K of everything above that. The
	// layer only ever posts through Sharded, which routes each send to the
	// shard owning that peer/tag — compute threads on different shards
	// never contend on the same pool partition or queues.
	ep      *lci.Sharded
	worker  int
	rank    int
	tracker memtrack.Tracker

	epochs epochs
	stash  stash

	// Incomplete receive requests (rendezvous in flight), and send
	// requests whose gather buffers are not yet reusable. sendMu guards
	// pendingSend because fused sends append from compute threads.
	pendingRecv []*lci.Request
	sendMu      sync.Mutex
	pendingSend []sendInFlight

	// workers maps compute-thread indices to pool worker ids for fused
	// (thread-direct) sends.
	workers [maxStreamThreads]int

	// coal packs small fused per-peer messages of one epoch into
	// near-eager-limit bundles; FinishFused flushes it structurally.
	coal *coalescer

	met layerMetrics

	stop chan struct{}
}

type sendInFlight struct {
	req  *lci.Request
	buf  []byte
	done func() // completion action; defaults to freeing buf's tracked bytes
}

// finish runs the in-flight send's completion action once its buffer is
// reusable.
func (s sendInFlight) finish(t *memtrack.Tracker) {
	if s.done != nil {
		s.done()
	} else {
		t.Free(len(s.buf))
	}
}

// trackedAlloc adapts the layer's memtracker as LCI's rendezvous allocator.
type trackedAlloc struct{ t *memtrack.Tracker }

func (a trackedAlloc) Alloc(n int) []byte { a.t.Alloc(n); return make([]byte, n) }
func (a trackedAlloc) Free(b []byte)      { a.t.Free(len(b)) }

// NewLCILayer builds the LCI layer over a fabric provider and starts its
// communication server.
func NewLCILayer(fep fabric.Provider, opt lci.Options) *LCILayer {
	l := &LCILayer{
		rank:   fep.Rank(),
		epochs: epochs{},
		stash:  stash{},
		stop:   make(chan struct{}),
	}
	opt.Allocator = trackedAlloc{&l.tracker}
	l.ep = lci.NewSharded(fep, opt)
	l.worker = l.ep.RegisterWorker()
	for i := range l.workers {
		l.workers[i] = l.ep.RegisterWorker()
	}
	// Staging bundles are pool-like internal buffers (reused via the
	// coalescer freelist), untracked just like the LCI packet pool.
	l.coal = newCoalescer(fep.Size(), l.ep.EagerLimit(), l.emit,
		l.tracker.Free,
		func(n int) []byte { return make([]byte, n) }, func([]byte) {})
	l.met = newLayerMetrics(opt.Telemetry, l.Name())
	l.met.tr = l.ep.Tracer() // endpoint already resolved opt.Tracer / default
	l.coal.initTelemetry(l.met.reg)
	go l.ep.Serve(l.stop)
	return l
}

// Telemetry returns the layer's metrics registry.
func (l *LCILayer) Telemetry() *telemetry.Registry { return l.met.reg }

// SetCoalescing toggles fused-send coalescing (ablation knob). Call before
// any traffic.
func (l *LCILayer) SetCoalescing(on bool) { l.coal.setEnabled(on) }

// CoalesceStats returns the coalescer counters.
func (l *LCILayer) CoalesceStats() CoalesceStats { return l.coal.stats() }

// Name implements Layer.
func (l *LCILayer) Name() string { return "lci" }

// Tracker implements Layer.
func (l *LCILayer) Tracker() *memtrack.Tracker { return &l.tracker }

// AllocBuf implements Layer.
func (l *LCILayer) AllocBuf(n int) []byte {
	l.tracker.Alloc(n)
	return make([]byte, n)
}

// Stop implements Layer.
func (l *LCILayer) Stop() {
	l.coal.flushAll(l.worker, true, true)
	l.drainSends()
	close(l.stop)
}

// poll drains RECV-DEQ once and checks pending completions; newly completed
// messages land in the stash. Returns true if anything moved.
func (l *LCILayer) poll() bool {
	worked := false
	for {
		r, ok := l.ep.RecvDeq()
		if !ok {
			break
		}
		worked = true
		if r.Done() {
			l.stashRequest(r, false)
		} else {
			l.pendingRecv = append(l.pendingRecv, r)
		}
	}
	// The paper's layer "maintains a list of incomplete requests ... by
	// simply checking the boolean-type status of each request".
	keep := l.pendingRecv[:0]
	for _, r := range l.pendingRecv {
		if r.Done() {
			l.stashRequest(r, true)
			worked = true
		} else {
			keep = append(keep, r)
		}
	}
	l.pendingRecv = keep

	l.sendMu.Lock()
	keepS := l.pendingSend[:0]
	for _, s := range l.pendingSend {
		if s.req.Done() {
			s.finish(&l.tracker)
			worked = true
		} else {
			keepS = append(keepS, s)
		}
	}
	l.pendingSend = keepS
	l.sendMu.Unlock()
	return worked
}

// stashRequest converts a completed receive request into stash entries.
// rendezvous buffers were allocated by the tracked allocator; eager payloads
// alias pooled wire frames, charged while held and recycled to the fabric on
// release. Coalesced bundles unpack into one stash entry per record, all
// sharing the frame.
func (l *LCILayer) stashRequest(r *lci.Request, rendezvous bool) {
	if !rendezvous {
		l.tracker.Alloc(len(r.Data))
	}
	n := len(r.Data)
	l.met.recordRecv(r.Rank, n, r.MsgID)
	m := Message{
		Peer:    r.Rank,
		Tag:     r.Tag,
		Data:    r.Data,
		release: func() { l.tracker.Free(n); r.Release() },
	}
	if m.Tag&coalFlag != 0 {
		unpackBundle(m, l.stash.put)
		return
	}
	l.stash.put(m)
}

// Exchange implements Layer.
func (l *LCILayer) Exchange(tag uint32, out [][]byte, expect []bool, recvMax []int,
	onRecv func(peer int, data []byte)) {

	eff := l.epochs.next(tag)

	for p, buf := range out {
		if p == l.rank || buf == nil {
			continue
		}
		l.met.msgBytes.Observe(int64(len(buf)))
		l.sendOne(l.worker, p, eff, buf, true)
	}

	want := countExpected(expect, l.rank)
	got := 0
	for got < want {
		if m, ok := l.stash.take(eff); ok {
			onRecv(m.Peer, m.Data)
			m.Release()
			got++
			continue
		}
		if !l.poll() {
			runtime.Gosched()
		}
	}
}

// sendOne retries SendEnq until accepted, tracking the in-flight buffer.
// mayPoll lets the Exchange caller progress receives while retrying; fused
// senders (arbitrary compute threads) must not touch the receive state.
func (l *LCILayer) sendOne(worker, peer int, eff uint32, buf []byte, mayPoll bool) {
	l.emit(worker, peer, eff, buf, nil, true, mayPoll)
}

// emit is the coalescer's send hook (and sendOne's body): one SEND-ENQ with
// the layer's retry and in-flight bookkeeping. done runs when buf is
// reusable (nil means "free buf's tracked bytes"). A non-block emit returns
// false on pool exhaustion instead of retrying.
func (l *LCILayer) emit(worker, dst int, tag uint32, data []byte, done func(), block, drain bool) bool {
	var spins int64
	for {
		r, ok := l.ep.SendEnq(worker, dst, tag, data)
		if ok {
			l.met.observeSpins(spins)
			l.met.recordSend(dst, len(data), r.MsgID, spins)
			if r.Done() {
				sendInFlight{buf: data, done: done}.finish(&l.tracker)
			} else {
				l.sendMu.Lock()
				l.pendingSend = append(l.pendingSend, sendInFlight{req: r, buf: data, done: done})
				l.sendMu.Unlock()
			}
			return true
		}
		if !block {
			return false
		}
		spins++
		// Pool exhausted: retriable, never fatal.
		if !drain || !l.poll() {
			runtime.Gosched()
		}
	}
}

// BeginFused opens a fused exchange for tag: compute threads may then call
// SendFused for individual peers as their gathers complete — the paper's
// future-work direction of integrating LCI with the runtime so completed
// buffers enter the network without waiting for the full gather phase
// (§VI; Fig. 2's "completed buffers are enqueued").
func (l *LCILayer) BeginFused(tag uint32) uint32 { return l.epochs.next(tag) }

// SendFused sends one peer's payload from any compute thread. thread
// selects the packet-pool locality shard. Small payloads coalesce with other
// fused messages for the same peer; a message with no companion by
// FinishFused ships alone, unwrapped.
func (l *LCILayer) SendFused(thread, peer int, eff uint32, buf []byte) {
	if peer == l.rank || buf == nil {
		return
	}
	l.met.msgBytes.Observe(int64(len(buf)))
	l.coal.add(l.workers[thread%maxStreamThreads], peer, eff, buf, nil)
}

// FinishFused completes the fused exchange: it flushes any coalesced
// messages still parked, then receives (in arrival order) every expected
// message for eff, exactly like the tail of Exchange.
func (l *LCILayer) FinishFused(eff uint32, expect []bool, onRecv func(peer int, data []byte)) {
	l.FinishFusedCount(eff, countExpected(expect, l.rank), onRecv)
}

// FinishFusedCount is FinishFused for epochs with more than one message per
// peer (the coalescer's sweet spot): want is the total number of logical
// messages expected for eff.
func (l *LCILayer) FinishFusedCount(eff uint32, want int, onRecv func(peer int, data []byte)) {
	l.coal.flushAll(l.worker, true, true)
	got := 0
	for got < want {
		if m, ok := l.stash.take(eff); ok {
			onRecv(m.Peer, m.Data)
			m.Release()
			got++
			continue
		}
		if !l.poll() {
			runtime.Gosched()
		}
	}
}

// drainSends waits for in-flight sends before shutdown.
func (l *LCILayer) drainSends() {
	for {
		l.sendMu.Lock()
		n := len(l.pendingSend)
		l.sendMu.Unlock()
		if n == 0 && len(l.pendingRecv) == 0 {
			return
		}
		if !l.poll() {
			runtime.Gosched()
		}
	}
}
