package comm

import (
	"encoding/binary"
	"sync"
	"testing"
)

// TestRMAMultiTagInterleaved: two tags exchanged alternately across many
// rounds exercise window reuse, lazy creation order, and epoch pipelining.
func TestRMAMultiTagInterleaved(t *testing.T) {
	const P = 3
	const rounds = 12
	layers, stop := makeLayers(t, "mpi-rma", P)
	defer stop()
	recvMax := []int{16, 16, 16}

	var wg sync.WaitGroup
	for h := 0; h < P; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, tag := range []uint32{20, 21} {
					out := make([][]byte, P)
					expect := make([]bool, P)
					for p := 0; p < P; p++ {
						if p == h {
							continue
						}
						buf := layers[h].AllocBuf(8)
						binary.LittleEndian.PutUint32(buf, uint32(h))
						binary.LittleEndian.PutUint32(buf[4:], tag*1000+uint32(r))
						out[p] = buf
						expect[p] = true
					}
					layers[h].Exchange(tag, out, expect, recvMax,
						func(peer int, data []byte) {
							if binary.LittleEndian.Uint32(data) != uint32(peer) {
								t.Errorf("host %d tag %d: sender mismatch", h, tag)
							}
							if binary.LittleEndian.Uint32(data[4:]) != tag*1000+uint32(r) {
								t.Errorf("host %d tag %d round %d: stale payload", h, tag, r)
							}
						})
				}
			}
		}(h)
	}
	wg.Wait()
}

// TestRMAFootprintIsUpperBound: the RMA tracker grows by the window sizes
// (upper bound), not actual traffic, and never shrinks.
func TestRMAFootprintIsUpperBound(t *testing.T) {
	const P = 2
	layers, stop := makeLayers(t, "mpi-rma", P)
	defer stop()
	recvMax := []int{1 << 16, 1 << 16} // big windows

	var wg sync.WaitGroup
	for h := 0; h < P; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			out := make([][]byte, P)
			buf := layers[h].AllocBuf(4) // tiny actual traffic
			out[1-h] = buf
			expect := make([]bool, P)
			expect[1-h] = true
			layers[h].Exchange(40, out, expect, recvMax, func(int, []byte) {})
		}(h)
	}
	wg.Wait()
	for h := 0; h < P; h++ {
		if m := layers[h].Tracker().Max(); m < 1<<16 {
			t.Fatalf("host %d footprint %d below window upper bound", h, m)
		}
		cur := layers[h].Tracker().Current()
		if cur < 1<<16 {
			t.Fatalf("host %d windows were freed (cur=%d)", h, cur)
		}
	}
}
