package comm

import (
	"lcigraph/internal/telemetry"
	"lcigraph/internal/tracing"
)

// Registry names for the communication layers (DESIGN.md §11). The
// message-size histogram is per layer/stream (label `layer`), so one
// process running an LCI layer next to an MPI baseline keeps their traffic
// profiles separate; everything else is shared across layers.
const (
	MetricBundleRecords  = "lci_comm_bundle_records"
	MetricSendRetrySpins = "lci_comm_send_retry_spins"
	MetricMsgsCoalesced  = "lci_comm_msgs_coalesced_total"
	MetricBundles        = "lci_comm_bundles_total"
)

// MsgBytesMetric returns the per-layer logical message-size histogram name.
// The histogram's count is the number of logical messages and its sum the
// logical payload bytes, so one observation per send covers Fig. 4's
// messages/bytes axes at once.
func MsgBytesMetric(layer string) string {
	return `lci_comm_msg_bytes{layer="` + layer + `"}`
}

// TelemetryProvider is implemented by layers and streams wired to a
// registry. Harnesses type-assert for it, keeping the Layer and Stream
// interfaces (and their test fakes) unchanged.
type TelemetryProvider interface {
	Telemetry() *telemetry.Registry
}

// layerMetrics is the per-layer handle set. The zero value is a no-op
// (nil-safe telemetry methods), so a disabled registry costs one branch per
// send. tr is the lifecycle tracer (nil = dark path); it defaults to the
// process-wide tracer and is rewired by layers that receive one explicitly.
type layerMetrics struct {
	reg        *telemetry.Registry
	msgBytes   *telemetry.Histogram
	retrySpins *telemetry.Histogram
	tr         *tracing.Tracer
}

func newLayerMetrics(reg *telemetry.Registry, layer string) layerMetrics {
	if reg == nil {
		reg = telemetry.Default()
	}
	m := layerMetrics{reg: reg, tr: tracing.Default()}
	if !reg.Enabled() {
		return m
	}
	m.msgBytes = reg.Histogram(MsgBytesMetric(layer))
	m.retrySpins = reg.Histogram(MetricSendRetrySpins)
	return m
}

// observeSpins records how long a send spun on pool exhaustion before being
// accepted. Unblocked sends (the overwhelmingly common case) skip the
// histogram entirely, so the spin distribution shows only actual
// back-pressure events.
func (m *layerMetrics) observeSpins(spins int64) {
	if spins > 0 {
		m.retrySpins.Observe(spins)
	}
}

// recordSend traces one accepted layer-level send; spins > 0 additionally
// records the ErrResource retry streak that preceded acceptance. msgid is
// the core request's global id (0 on MPI-backed layers, which have no LCI
// message id).
func (m *layerMetrics) recordSend(peer, size int, msgid uint64, spins int64) {
	if m.tr == nil {
		return
	}
	if spins > 0 {
		m.tr.RecordArg(tracing.EvRetry, peer, tracing.ProtoNone, size, uint32(spins), msgid)
	}
	m.tr.Record(tracing.EvLayerSend, peer, tracing.ProtoNone, size, msgid)
}

// recordRecv traces one layer-level delivery.
func (m *layerMetrics) recordRecv(peer, size int, msgid uint64) {
	if m.tr == nil {
		return
	}
	m.tr.Record(tracing.EvLayerRecv, peer, tracing.ProtoNone, size, msgid)
}

// initTelemetry wires the coalescer's counters and bundle-occupancy
// histogram into reg. The existing atomics stay authoritative (read at
// snapshot time); only the records-per-bundle distribution needs a live
// histogram.
func (c *coalescer) initTelemetry(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	c.recHist = reg.Histogram(MetricBundleRecords)
	reg.CounterFunc(MetricMsgsCoalesced, c.msgsCoalesced.Load)
	reg.CounterFunc(MetricBundles, c.coalescedFrames.Load)
}
