package comm

import (
	"fmt"
	"runtime"
	"time"

	"lcigraph/internal/memtrack"
	"lcigraph/internal/mpi"
	"lcigraph/internal/telemetry"
	"lcigraph/internal/tracing"
)

// RMALayer is the §III-C one-sided baseline. For each communication tag it
// collectively creates one window per source host: in window W_s every other
// host owns a receive buffer sized at the all-nodes-active upper bound for
// messages from s. Each round, host h opens an access epoch on its own
// window W_h (Start), puts a length-prefixed payload into each destination's
// buffer, closes the epoch (Complete), and then — with per-source
// generalized active-target synchronization — waits for each W_s exposure
// epoch to finish (TestWait, polled round-robin so messages are processed
// as sources complete), scatters, and re-posts the exposure for the next
// round.
//
// The pre-allocated upper-bound windows are why the RMA layer's memory
// footprint dwarfs LCI's in Fig. 5; windows are created on first
// communication of a tag, and creation time is excluded from measurements
// as in the paper.
type RMALayer struct {
	c       *mpi.Comm
	rank    int
	tracker memtrack.Tracker
	wins    map[uint32]*tagWins
	others  []int
	met     layerMetrics
	stop    chan struct{}
	done    chan struct{}
}

// tagWins holds one tag's window set. wins[s] is this host's participation
// in window W_s (the window source s puts through).
type tagWins struct {
	wins []*mpi.Win
}

// NewRMALayer builds the RMA layer over comm c (which must be in
// ThreadMultiple mode: both the caller and the dedicated progress thread
// issue MPI calls, per §III-C).
func NewRMALayer(c *mpi.Comm) *RMALayer {
	l := &RMALayer{
		c:    c,
		rank: c.Rank(),
		wins: map[uint32]*tagWins{},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for p := 0; p < c.Size(); p++ {
		if p != l.rank {
			l.others = append(l.others, p)
		}
	}
	l.met = newLayerMetrics(nil, l.Name())
	// The dedicated communication thread continuously polls the network to
	// ensure forward progress for RMA operations.
	go func() {
		defer close(l.done)
		// Progress cannot report whether it moved anything, so poll with a
		// mostly-yield cadence and an occasional short sleep to unload the
		// scheduler.
		tick := 0
		for {
			select {
			case <-l.stop:
				return
			default:
			}
			if err := l.c.Progress(); err != nil {
				panic("rma layer: " + err.Error())
			}
			tick++
			if tick%256 == 0 {
				time.Sleep(20 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
		}
	}()
	return l
}

// Name implements Layer.
func (l *RMALayer) Name() string { return "mpi-rma" }

// Telemetry returns the layer's metrics registry.
func (l *RMALayer) Telemetry() *telemetry.Registry { return l.met.reg }

// SetTelemetry rewires the layer onto reg (nil selects the process default).
// Call before any traffic.
func (l *RMALayer) SetTelemetry(reg *telemetry.Registry) {
	tr := l.met.tr
	l.met = newLayerMetrics(reg, l.Name())
	if tr != nil {
		l.met.tr = tr // keep an explicitly wired tracer across registry swaps
	}
}

// SetTracer rewires the layer's lifecycle tracer (nil disables). Call
// before any traffic.
func (l *RMALayer) SetTracer(tr *tracing.Tracer) { l.met.tr = tr }

// Tracker implements Layer.
func (l *RMALayer) Tracker() *memtrack.Tracker { return &l.tracker }

// AllocBuf implements Layer.
func (l *RMALayer) AllocBuf(n int) []byte {
	l.tracker.Alloc(n)
	return make([]byte, n)
}

// Stop implements Layer.
func (l *RMALayer) Stop() {
	close(l.stop)
	<-l.done
}

// ensureWins creates the tag's windows collectively on first use and opens
// the initial exposure epochs.
func (l *RMALayer) ensureWins(tag uint32, recvMax []int) *tagWins {
	if tw, ok := l.wins[tag]; ok {
		return tw
	}
	P := l.c.Size()
	tw := &tagWins{wins: make([]*mpi.Win, P)}
	for s := 0; s < P; s++ {
		size := 8
		if s != l.rank && recvMax != nil && recvMax[s] > 0 {
			size = 8 + recvMax[s]
		}
		buf := make([]byte, size)
		// The upper-bound window allocation is the footprint the paper
		// instruments (never freed during the run).
		l.tracker.Alloc(size)
		win, err := l.c.WinCreate(fmt.Sprintf("tag%d-src%d", tag, s), buf)
		if err != nil {
			panic("rma layer: " + err.Error())
		}
		tw.wins[s] = win
	}
	for _, s := range l.others {
		if err := tw.wins[s].Post([]int{s}); err != nil {
			panic("rma layer: " + err.Error())
		}
	}
	l.wins[tag] = tw
	return tw
}

// Exchange implements Layer. All hosts must call it collectively per tag
// (the BSP structure guarantees this).
func (l *RMALayer) Exchange(tag uint32, out [][]byte, expect []bool, recvMax []int,
	onRecv func(peer int, data []byte)) {

	tw := l.ensureWins(tag, recvMax)
	self := tw.wins[l.rank]

	// Access epoch on our own window: put to every peer (empty payloads
	// keep the epoch structure aligned; their length prefix is 0).
	if err := self.Start(l.others); err != nil {
		panic("rma layer: " + err.Error())
	}
	var hdr [8]byte
	for _, p := range l.others {
		data := out[p]
		putLen(hdr[:], len(data))
		if len(data) > 0 {
			l.met.msgBytes.Observe(int64(len(data)))
			l.met.recordSend(p, len(data), 0, 0)
			if err := self.Put(p, 8, data); err != nil {
				panic("rma layer: " + err.Error())
			}
		}
		if err := self.Put(p, 0, hdr[:]); err != nil {
			panic("rma layer: " + err.Error())
		}
	}
	if err := self.Complete(); err != nil {
		panic("rma layer: " + err.Error())
	}
	// Gather buffers are consumed once the puts complete (Complete blocks
	// until local completion), so they can be released now.
	for p, data := range out {
		if p != l.rank && data != nil {
			l.tracker.Free(len(data))
		}
	}

	// Exposure epochs: poll sources round-robin, scattering each as it
	// completes, then immediately re-post for the next round.
	pending := append([]int(nil), l.others...)
	for len(pending) > 0 {
		progressed := false
		keep := pending[:0]
		for _, s := range pending {
			ok, err := tw.wins[s].TestWait()
			if err != nil {
				panic("rma layer: " + err.Error())
			}
			if !ok {
				keep = append(keep, s)
				continue
			}
			progressed = true
			buf := tw.wins[s].Buf()
			n := getLen(buf)
			if n > 0 {
				l.met.recordRecv(s, n, 0)
				onRecv(s, buf[8:8+n])
				putLen(buf, 0)
			}
			if err := tw.wins[s].Post([]int{s}); err != nil {
				panic("rma layer: " + err.Error())
			}
		}
		pending = keep
		if !progressed {
			runtime.Gosched()
		}
	}
}
