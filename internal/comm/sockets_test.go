package comm

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
)

// TestLCILayerSocketsFallback: on the Sockets() profile (DisableRDMA, the
// libfabric sockets-provider class) a payload above the eager limit must
// still arrive intact — the rendezvous put fails with ErrNoRDMA and the LCI
// core switches to the FRG fragment stream. Zero RDMA puts on the wire
// proves the fallback path was the one exercised.
func TestLCILayerSocketsFallback(t *testing.T) {
	const p = 2
	prof := fabric.Sockets()
	fab := fabric.New(p, prof)
	layers := make([]*LCILayer, p)
	for r := 0; r < p; r++ {
		layers[r] = NewLCILayer(fab.Endpoint(r), lci.Options{})
	}

	// Well above the 4 KiB sockets eager limit, and not a multiple of the
	// fragment size.
	size := 5*prof.EagerLimit + 123
	payload := func(r int) []byte {
		b := make([]byte, size)
		for i := range b {
			b[i] = byte(i*7 + r)
		}
		return b
	}

	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			l := layers[r]
			out := make([][]byte, p)
			expect := make([]bool, p)
			recvMax := make([]int, p)
			for q := 0; q < p; q++ {
				if q == r {
					continue
				}
				out[q] = l.AllocBuf(size)
				copy(out[q], payload(r))
				expect[q] = true
				recvMax[q] = size
			}
			l.Exchange(9, out, expect, recvMax, func(peer int, data []byte) {
				if !bytes.Equal(data, payload(peer)) {
					t.Errorf("rank %d: corrupt %d-byte payload from %d", r, len(data), peer)
				}
			})
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		layers[r].Stop()
	}

	var puts, frames int64
	for r := 0; r < p; r++ {
		st := fab.Endpoint(r).Stats()
		puts += st.Puts
		frames += st.SendFrames
	}
	if puts != 0 {
		t.Fatalf("sockets profile performed %d RDMA puts; fallback not taken", puts)
	}
	// Each rendezvous payload must have crossed as multiple FRG frames.
	if wantMin := int64(p * (size / prof.EagerLimit)); frames < wantMin {
		t.Fatalf("only %d frames for %d fragmented sends (want ≥ %d)", frames, p, wantMin)
	}
}

// TestLCIStreamSocketsFallback covers the same ErrNoRDMA path for the
// Gemini-style message stream.
func TestLCIStreamSocketsFallback(t *testing.T) {
	const p = 2
	prof := fabric.Sockets()
	fab := fabric.New(p, prof)
	streams := make([]*LCIStream, p)
	for r := 0; r < p; r++ {
		streams[r] = NewLCIStream(fab.Endpoint(r), lci.Options{})
	}

	size := 3*prof.EagerLimit + 77
	want := make([]byte, size)
	for i := range want {
		want[i] = byte(i * 13)
	}

	buf := streams[0].AllocBuf(size)
	copy(buf, want)
	streams[0].SendMsg(0, 1, 5, buf)

	deadline := time.Now().Add(10 * time.Second)
	for {
		m, ok := streams[1].RecvMsg()
		if !ok {
			if time.Now().After(deadline) {
				t.Fatal("stream: no message within deadline")
			}
			runtime.Gosched()
			continue
		}
		if m.Peer != 0 || m.Tag != 5 || !bytes.Equal(m.Data, want) {
			t.Fatalf("stream: corrupt %d-byte payload from %d tag %d", len(m.Data), m.Peer, m.Tag)
		}
		m.Release()
		break
	}
	for r := 0; r < p; r++ {
		streams[r].Stop()
	}
	for r := 0; r < p; r++ {
		if puts := fab.Endpoint(r).Stats().Puts; puts != 0 {
			t.Fatalf("sockets profile performed %d RDMA puts; fallback not taken", puts)
		}
	}
}
