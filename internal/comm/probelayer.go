package comm

import (
	"runtime"
	"sync/atomic"
	"time"

	"lcigraph/internal/concurrent"
	"lcigraph/internal/memtrack"
	"lcigraph/internal/mpi"
	"lcigraph/internal/telemetry"
	"lcigraph/internal/tracing"
)

// ProbeLayer is the §III-B baseline: two-sided MPI in THREAD_FUNNELED mode.
// Compute threads never touch MPI; they enqueue serialized messages onto a
// thread-safe MPSC queue, and one dedicated communication thread pops from
// it, aggregates small messages per destination (until the eager limit or a
// timeout), sends with MPI_Isend, discovers incoming messages with
// MPI_Iprobe + MPI_Irecv, and retires both directions with MPI_Test.
type ProbeLayer struct {
	c       *mpi.Comm
	rank    int
	tracker memtrack.Tracker

	epochs epochs
	stash  stash

	sendq *concurrent.MPSC[sendReq]
	recvq *concurrent.MPSC[Message]

	stop     chan struct{}
	done     chan struct{}
	inflight atomic.Int64 // sends accepted but not yet retired

	aggLimit   int
	aggTimeout time.Duration

	met     layerMetrics
	recHist *telemetry.Histogram // records per shipped MPI bundle
}

type sendReq struct {
	dst   int // -1 is a flush marker
	eff   uint32
	data  []byte
	track int // tracked bytes to free once handed to a bundle
}

// mpiBundleTag is the single MPI tag carrying bundles; logical tags are
// multiplexed inside the bundle, as in the paper's buffered network layer.
const mpiBundleTag = 1

// NewProbeLayer builds the probe layer over comm c (which must be in
// ThreadFunneled mode — only the spawned communication thread calls MPI).
func NewProbeLayer(c *mpi.Comm) *ProbeLayer {
	l := &ProbeLayer{
		c:          c,
		rank:       c.Rank(),
		epochs:     epochs{},
		stash:      stash{},
		sendq:      concurrent.NewMPSC[sendReq](),
		recvq:      concurrent.NewMPSC[Message](),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		aggLimit:   c.Impl().EagerLimit,
		aggTimeout: 50 * time.Microsecond,
	}
	l.SetTelemetry(nil)
	go l.commThread()
	return l
}

// Telemetry returns the layer's metrics registry.
func (l *ProbeLayer) Telemetry() *telemetry.Registry { return l.met.reg }

// SetTelemetry rewires the layer onto reg (nil selects the process default).
// Call before any traffic.
func (l *ProbeLayer) SetTelemetry(reg *telemetry.Registry) {
	tr := l.met.tr
	l.met = newLayerMetrics(reg, l.Name())
	if tr != nil {
		l.met.tr = tr // keep an explicitly wired tracer across registry swaps
	}
	l.recHist = l.met.reg.Histogram(MetricBundleRecords)
}

// SetTracer rewires the layer's lifecycle tracer (nil disables). Call
// before any traffic.
func (l *ProbeLayer) SetTracer(tr *tracing.Tracer) { l.met.tr = tr }

// Name implements Layer.
func (l *ProbeLayer) Name() string { return "mpi-probe" }

// SetAggregation tunes the buffered network layer (ablation knob): limit is
// the bundle-size threshold in bytes (≤ recHdr disables aggregation — every
// message ships alone), timeout caps how long a small message may wait.
// Call before the first Exchange.
func (l *ProbeLayer) SetAggregation(limit int, timeout time.Duration) {
	if limit < recHdr+1 {
		limit = recHdr + 1
	}
	l.aggLimit = limit
	l.aggTimeout = timeout
}

// Tracker implements Layer.
func (l *ProbeLayer) Tracker() *memtrack.Tracker { return &l.tracker }

// AllocBuf implements Layer.
func (l *ProbeLayer) AllocBuf(n int) []byte {
	l.tracker.Alloc(n)
	return make([]byte, n)
}

// Stop implements Layer.
func (l *ProbeLayer) Stop() {
	for l.inflight.Load() > 0 {
		runtime.Gosched()
	}
	close(l.stop)
	<-l.done
}

// Exchange implements Layer.
func (l *ProbeLayer) Exchange(tag uint32, out [][]byte, expect []bool, recvMax []int,
	onRecv func(peer int, data []byte)) {

	eff := l.epochs.next(tag)
	for p, buf := range out {
		if p == l.rank || buf == nil {
			continue
		}
		l.met.msgBytes.Observe(int64(len(buf)))
		l.met.recordSend(p, len(buf), 0, 0)
		l.inflight.Add(1)
		l.sendq.Push(sendReq{dst: p, eff: eff, data: buf, track: len(buf)})
	}
	// Flush marker: don't let this phase's small messages wait for the
	// aggregation timeout once we block on receives.
	l.sendq.Push(sendReq{dst: -1})

	want := countExpected(expect, l.rank)
	got := 0
	for got < want {
		if m, ok := l.stash.take(eff); ok {
			onRecv(m.Peer, m.Data)
			m.Release()
			got++
			continue
		}
		if m, ok := l.recvq.Pop(); ok {
			if m.Tag == eff {
				onRecv(m.Peer, m.Data)
				m.Release()
				got++
			} else {
				l.stash.put(m)
			}
			continue
		}
		runtime.Gosched()
	}
}

// ---- communication thread ----

// Bundles use the shared record framing from coalesce.go:
// eff u32 | len u32 | payload.

type aggBuf struct {
	buf   []byte
	first time.Time
}

type pendingRecv struct {
	req *mpi.Request
	buf []byte
	src int
}

func (l *ProbeLayer) commThread() {
	defer close(l.done)
	P := l.c.Size()
	aggs := make([]aggBuf, P)
	var sends []pendingSend
	var recvs []pendingRecv

	flushAgg := func(d int) {
		a := &aggs[d]
		if len(a.buf) == 0 {
			return
		}
		buf := a.buf
		a.buf = nil
		req, err := l.c.Isend(buf, d, mpiBundleTag)
		if err != nil {
			panic("probe layer: " + err.Error())
		}
		n := countRecords(buf)
		l.recHist.Observe(int64(n))
		sends = append(sends, pendingSend{req: req, buf: buf, msgs: n})
	}

	stopping := false
	idle := 0
	for {
		select {
		case <-l.stop:
			stopping = true
		default:
		}

		worked := false

		// Drain the send queue into aggregation buffers.
		for {
			sr, ok := l.sendq.Pop()
			if !ok {
				break
			}
			worked = true
			if sr.dst < 0 {
				for d := 0; d < P; d++ {
					flushAgg(d)
				}
				continue
			}
			need := recHdr + len(sr.data)
			a := &aggs[sr.dst]
			if len(a.buf)+need > l.aggLimit && len(a.buf) > 0 {
				flushAgg(sr.dst)
			}
			if len(a.buf) == 0 {
				a.first = time.Now()
				a.buf = l.allocBundle(max(need, l.aggLimit))[:0]
			}
			a.buf = appendRecord(a.buf, sr.eff, sr.data)
			l.tracker.Free(sr.track) // gather buffer absorbed into bundle
			if need > l.aggLimit {
				// Oversized single message: ship immediately (rendezvous).
				flushAgg(sr.dst)
			}
		}

		// Timeout-based flush caps latency for sparse traffic.
		now := time.Now()
		for d := 0; d < P; d++ {
			if len(aggs[d].buf) > 0 && now.Sub(aggs[d].first) > l.aggTimeout {
				flushAgg(d)
				worked = true
			}
		}

		// Discover incoming bundles: the probe pattern of the paper.
		for {
			st, ok := l.c.Iprobe(mpi.AnySource, mpiBundleTag)
			if !ok {
				break
			}
			worked = true
			buf := l.allocBundle(st.Count)
			req, err := l.c.Irecv(buf[:st.Count], st.Source, mpiBundleTag)
			if err != nil {
				panic("probe layer: " + err.Error())
			}
			recvs = append(recvs, pendingRecv{req: req, buf: buf[:st.Count], src: st.Source})
		}

		// Retire completed operations (MPI_Test for forward progress and
		// buffer reclamation).
		keepS := sends[:0]
		for _, s := range sends {
			done, err := l.c.Test(s.req)
			if err != nil {
				panic("probe layer: " + err.Error())
			}
			if done {
				l.tracker.Free(cap(s.buf))
				l.inflight.Add(int64(-s.msgs))
				worked = true
			} else {
				keepS = append(keepS, s)
			}
		}
		sends = keepS

		keepR := recvs[:0]
		for _, r := range recvs {
			done, err := l.c.Test(r.req)
			if err != nil {
				panic("probe layer: " + err.Error())
			}
			if done {
				l.unbundle(r.src, r.buf)
				worked = true
			} else {
				keepR = append(keepR, r)
			}
		}
		recvs = keepR

		if stopping && l.sendq.Empty() && len(sends) == 0 && allEmpty(aggs) {
			return
		}
		idle = idleBackoff(idle, worked)
	}
}

type pendingSend struct {
	req  *mpi.Request
	buf  []byte
	msgs int
}

func (l *ProbeLayer) allocBundle(n int) []byte {
	l.tracker.Alloc(n)
	return make([]byte, n)
}

// unbundle splits a received bundle into logical messages sharing the
// bundle buffer, freeing it when the last message is released.
func (l *ProbeLayer) unbundle(src int, buf []byte) {
	l.met.recordRecv(src, len(buf), 0)
	unpackBundle(Message{
		Peer:    src,
		Data:    buf,
		release: func() { l.tracker.Free(len(buf)) },
	}, l.recvq.Push)
}

func allEmpty(aggs []aggBuf) bool {
	for i := range aggs {
		if len(aggs[i].buf) > 0 {
			return false
		}
	}
	return true
}
