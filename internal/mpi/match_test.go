package mpi

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"lcigraph/internal/fabric"
)

// TestQuickMatchingModel: random interleavings of sends and tagged receives
// against a model — every receive gets the oldest matching message.
func TestQuickMatchingModel(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%20 + 2
		w := testWorld(2, ThreadFunneled)
		a, b := w.Comm(0), w.Comm(1)
		rng := rand.New(rand.NewSource(seed))

		// Sender: n messages with tags in a small space; payload encodes a
		// sequence number so ordering per tag can be checked.
		type sent struct {
			tag int
			seq byte
		}
		var log []sent
		perTag := map[int]byte{}
		errc := make(chan error, 1)
		go func() {
			for i := 0; i < n; i++ {
				tag := rng.Intn(3)
				seq := perTag[tag]
				perTag[tag]++
				log = append(log, sent{tag, seq})
				if err := a.Send([]byte{byte(tag), seq}, 1, tag); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()

		// Receiver: receive n messages, half by wildcard, half by specific
		// tag when one is known to exist.
		nextPerTag := map[int]byte{}
		for i := 0; i < n; i++ {
			buf := make([]byte, 2)
			st, err := b.Recv(buf, AnySource, AnyTag)
			if err != nil {
				return false
			}
			tag := int(buf[0])
			if st.Tag != tag {
				return false
			}
			// MPI non-overtaking: per (pair, tag) order must hold.
			if buf[1] != nextPerTag[tag] {
				return false
			}
			nextPerTag[tag]++
		}
		return <-errc == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPostedBeforeArrival: receives posted before any message exists are
// matched on arrival (the posted-queue path, not the unexpected path).
func TestPostedBeforeArrival(t *testing.T) {
	w := testWorld(2, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)

	buf1 := make([]byte, 8)
	buf2 := make([]byte, 8)
	r1, err := b.Irecv(buf1, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Irecv(buf2, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Send in reverse tag order: each must land in its tagged buffer.
	go func() {
		a.Send([]byte("tag6"), 1, 6)
		a.Send([]byte("tag5"), 1, 5)
	}()
	if err := b.Wait(r1); err != nil {
		t.Fatal(err)
	}
	if err := b.Wait(r2); err != nil {
		t.Fatal(err)
	}
	if string(buf1[:4]) != "tag5" || string(buf2[:4]) != "tag6" {
		t.Fatalf("matching crossed: %q %q", buf1[:4], buf2[:4])
	}
}

// TestMatchingScanOrder: with two identical-tag messages queued, the first
// posted receive takes the first-sent message.
func TestMatchingScanOrder(t *testing.T) {
	w := testWorld(2, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	go func() {
		a.Send([]byte{1}, 1, 0)
		a.Send([]byte{2}, 1, 0)
	}()
	// Let both land in the unexpected queue.
	for b.PendingUnexpected() < 2 {
		b.Progress()
		runtime.Gosched()
	}
	x := make([]byte, 1)
	y := make([]byte, 1)
	if _, err := b.Recv(x, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(y, 0, 0); err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 || y[0] != 2 {
		t.Fatalf("unexpected-queue scan out of order: %d then %d", x[0], y[0])
	}
}

// TestMixedEagerRendezvousStorm stresses both protocols concurrently in
// both directions under ThreadMultiple.
func TestMixedEagerRendezvousStorm(t *testing.T) {
	w := testWorld(2, ThreadMultiple)
	lim := TestImpl().EagerLimit
	const per = 60
	done := make(chan error, 2)
	for side := 0; side < 2; side++ {
		go func(side int) {
			c := w.Comm(side)
			rng := rand.New(rand.NewSource(int64(side)))
			errs := make(chan error, 1)
			go func() {
				for i := 0; i < per; i++ {
					size := rng.Intn(3*lim) + 1
					if err := c.Send(make([]byte, size), 1-side, i%8); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}()
			for i := 0; i < per; i++ {
				buf := make([]byte, 3*lim+1)
				if _, err := c.Recv(buf, AnySource, AnyTag); err != nil {
					done <- err
					return
				}
			}
			done <- <-errs
		}(side)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestRendezvousTruncation: a rendezvous-size message into a too-small
// posted buffer errors with ErrTruncate at the receiver while the sender
// still completes (the scratch-transfer path).
func TestRendezvousTruncation(t *testing.T) {
	w := testWorld(2, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	big := make([]byte, TestImpl().EagerLimit*4)
	errc := make(chan error, 1)
	go func() { errc <- a.Send(big, 1, 0) }()
	small := make([]byte, 8)
	_, err := b.Recv(small, 0, 0)
	if err == nil || err.Error() == "" {
		t.Fatalf("expected truncation error, got %v", err)
	}
	if sendErr := <-errc; sendErr != nil {
		t.Fatalf("sender must still complete: %v", sendErr)
	}
}

// TestSocketsRendezvous: large two-sided transfers over the RDMA-less
// profile use the software fragment path.
func TestSocketsRendezvous(t *testing.T) {
	w := NewWorld(2, fabric.Sockets(), TestImpl(), ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	big := make([]byte, TestImpl().EagerLimit*9+13)
	for i := range big {
		big[i] = byte(i * 7)
	}
	errc := make(chan error, 1)
	go func() { errc <- a.Send(big, 1, 3) }()
	buf := make([]byte, len(big))
	st, err := b.Recv(buf, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if st.Count != len(big) {
		t.Fatalf("count = %d", st.Count)
	}
	for i := range big {
		if buf[i] != big[i] {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}

// TestSocketsRMA: emulated puts (fragments + fin) satisfy the PSCW
// synchronization on the RDMA-less profile.
func TestSocketsRMA(t *testing.T) {
	w := NewWorld(2, fabric.Sockets(), TestImpl(), ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	var wa, wb *Win
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); wa, _ = a.WinCreate("s", make([]byte, 8<<10)) }()
	go func() { defer wg.Done(); wb, _ = b.WinCreate("s", make([]byte, 8<<10)) }()
	wg.Wait()

	payload := make([]byte, 6<<10) // several fragments
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	errc := make(chan error, 1)
	go func() {
		if err := wb.Post([]int{0}); err != nil {
			errc <- err
			return
		}
		errc <- wb.Wait()
	}()
	if err := wa.Start([]int{1}); err != nil {
		t.Fatal(err)
	}
	if err := wa.Put(1, 100, payload); err != nil {
		t.Fatal(err)
	}
	if err := wa.Complete(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	got := wb.Buf()[100 : 100+len(payload)]
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("emulated put corrupted at %d", i)
		}
	}
}

// TestNoOrderingAblationDelivers: with UnsafeNoOrdering the library still
// delivers everything (order may differ).
func TestNoOrderingAblationDelivers(t *testing.T) {
	impl := TestImpl()
	impl.UnsafeNoOrdering = true
	w := NewWorld(2, fabric.TestProfile(), impl, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	const n = 50
	go func() {
		for i := 0; i < n; i++ {
			a.Send([]byte{byte(i)}, 1, 0)
		}
	}()
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		buf := make([]byte, 1)
		if _, err := b.Recv(buf, AnySource, AnyTag); err != nil {
			t.Fatal(err)
		}
		if seen[buf[0]] {
			t.Fatalf("duplicate %d", buf[0])
		}
		seen[buf[0]] = true
	}
}
