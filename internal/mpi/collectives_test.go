package mpi

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

// runRanks executes body on every rank of a fresh test world concurrently.
func runRanks(t *testing.T, p int, body func(c *Comm)) {
	t.Helper()
	w := testWorld(p, ThreadMultiple)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			body(w.Comm(r))
		}(r)
	}
	wg.Wait()
}

func TestBarrierAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8} {
		var entered sync.Map
		runRanks(t, p, func(c *Comm) {
			for round := 0; round < 5; round++ {
				entered.Store(c.Rank()*100+round, true)
				if err := c.Barrier(); err != nil {
					t.Errorf("barrier: %v", err)
					return
				}
				// After the barrier, every rank's mark for this round must
				// be visible.
				for r := 0; r < p; r++ {
					if _, ok := entered.Load(r*100 + round); !ok {
						t.Errorf("P=%d round %d: rank %d missing after barrier", p, round, r)
						return
					}
				}
			}
		})
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7} {
		for root := 0; root < p; root++ {
			payload := []byte{byte(root), 0xAB, byte(p)}
			runRanks(t, p, func(c *Comm) {
				buf := make([]byte, len(payload))
				if c.Rank() == root {
					copy(buf, payload)
				}
				if err := c.Bcast(buf, root); err != nil {
					t.Errorf("bcast: %v", err)
					return
				}
				if !bytes.Equal(buf, payload) {
					t.Errorf("P=%d root=%d rank=%d: got %v", p, root, c.Rank(), buf)
				}
			})
		}
	}
}

func TestAllreduceSumAllSizes(t *testing.T) {
	add := func(a, b uint64) uint64 { return a + b }
	for _, p := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		want := uint64(0)
		for r := 0; r < p; r++ {
			want += uint64(r + 1)
		}
		runRanks(t, p, func(c *Comm) {
			got, err := c.AllreduceU64(uint64(c.Rank()+1), add)
			if err != nil {
				t.Errorf("allreduce: %v", err)
				return
			}
			if got != want {
				t.Errorf("P=%d rank %d: sum = %d, want %d", p, c.Rank(), got, want)
			}
		})
	}
}

// TestQuickAllreduceMax: property over random vectors and non-power-of-two
// sizes.
func TestQuickAllreduceMax(t *testing.T) {
	maxOp := func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	}
	f := func(vals []uint64) bool {
		p := len(vals)
		if p == 0 || p > 6 {
			return true
		}
		var want uint64
		for _, v := range vals {
			if v > want {
				want = v
			}
		}
		okAll := true
		var mu sync.Mutex
		runRanks(t, p, func(c *Comm) {
			got, err := c.AllreduceU64(vals[c.Rank()], maxOp)
			if err != nil || got != want {
				mu.Lock()
				okAll = false
				mu.Unlock()
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	const p = 5
	runRanks(t, p, func(c *Comm) {
		chunk := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
		out, err := c.Gather(chunk, 2)
		if err != nil {
			t.Errorf("gather: %v", err)
			return
		}
		if c.Rank() != 2 {
			if out != nil {
				t.Errorf("non-root got data")
			}
			return
		}
		for r := 0; r < p; r++ {
			if out[r*2] != byte(r) || out[r*2+1] != byte(r*2) {
				t.Errorf("root: chunk %d = %v", r, out[r*2:r*2+2])
			}
		}
	})
}

// TestCollectivesInterleavedWithP2P: collective tag band must not steal
// user messages.
func TestCollectivesInterleavedWithP2P(t *testing.T) {
	const p = 4
	runRanks(t, p, func(c *Comm) {
		peer := (c.Rank() + 1) % p
		prev := (c.Rank() + p - 1) % p
		req, err := c.Isend([]byte{byte(c.Rank())}, peer, 7)
		if err != nil {
			t.Error(err)
			return
		}
		if err := c.Barrier(); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 1)
		st, err := c.Recv(buf, prev, 7)
		if err != nil {
			t.Error(err)
			return
		}
		if st.Count != 1 || buf[0] != byte(prev) {
			t.Errorf("p2p message corrupted by collective: %v", buf)
		}
		if err := c.Wait(req); err != nil {
			t.Error(err)
		}
	})
}
