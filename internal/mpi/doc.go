// Package mpi implements the MPI-like baseline communication library the
// paper compares LCI against (§III-B, §III-C).
//
// It is not a bridge to a real MPI: it is a from-scratch implementation of
// the MPI features Abelian's two communication layers use, over the same
// simulated fabric LCI uses, with MPI's semantic obligations implemented for
// real so their costs are executed rather than modelled:
//
//   - Tag matching with wildcard sources/tags over sequentially traversed
//     posted-receive and unexpected-message lists ("the traversal of
//     sequential lists" the paper cites as intrinsic to MPI's design).
//   - Non-overtaking message ordering per sender, enforced with sequence
//     numbers and receiver-side reorder buffering.
//   - Eager and rendezvous point-to-point protocols with internal buffering
//     of unexpected eager data; when the unexpected buffer exceeds the
//     implementation's cap, the library fails with ErrExhausted — the
//     "seg-fault or hang due to unrecoverable errors" of §III-B that the
//     buffered application layer must avoid.
//   - MPI_THREAD_FUNNELED vs MPI_THREAD_MULTIPLE: multiple-mode wraps every
//     call in one global lock, as deployed implementations effectively do.
//   - Test/Wait that perform a network progress call each time (the
//     "expensive network poll" LCI's flag-based completion avoids).
//   - One-sided RMA: window creation, generalized active-target
//     synchronization (Start/Complete/Post/Wait) and Put, used by the
//     MPI-RMA layer of §III-C.
//
// Named implementation profiles (IntelMPI, MVAPICH2, OpenMPI) vary the eager
// limit, per-call and per-match overheads, and buffering capacities, standing
// in for the distinct MPI builds of Table IV.
package mpi
