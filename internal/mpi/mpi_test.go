package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"lcigraph/internal/fabric"
)

func testWorld(n int, mode ThreadMode) *World {
	return NewWorld(n, fabric.TestProfile(), TestImpl(), mode)
}

func TestSendRecvEager(t *testing.T) {
	w := testWorld(2, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	msg := []byte("eager hello")

	errc := make(chan error, 1)
	go func() { errc <- a.Send(msg, 1, 3) }()

	buf := make([]byte, 64)
	st, err := b.Recv(buf, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if st.Source != 0 || st.Tag != 3 || st.Count != len(msg) {
		t.Fatalf("status = %+v", st)
	}
	if string(buf[:st.Count]) != "eager hello" {
		t.Fatalf("payload = %q", buf[:st.Count])
	}
}

func TestSendRecvRendezvous(t *testing.T) {
	w := testWorld(2, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	big := make([]byte, TestImpl().EagerLimit*5)
	rand.New(rand.NewSource(1)).Read(big)

	errc := make(chan error, 1)
	go func() { errc <- a.Send(big, 1, 0) }()

	buf := make([]byte, len(big))
	st, err := b.Recv(buf, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if st.Count != len(big) || !bytes.Equal(buf, big) {
		t.Fatal("rendezvous payload mismatch")
	}
}

func TestWildcardRecv(t *testing.T) {
	w := testWorld(3, ThreadFunneled)
	c := w.Comm(2)
	go w.Comm(0).Send([]byte("zero"), 2, 10)
	go w.Comm(1).Send([]byte("one!"), 2, 11)

	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		buf := make([]byte, 16)
		st, err := c.Recv(buf, AnySource, AnyTag)
		if err != nil {
			t.Fatal(err)
		}
		got[string(buf[:st.Count])] = true
		if st.Tag != 10+st.Source {
			t.Fatalf("status = %+v", st)
		}
	}
	if !got["zero"] || !got["one!"] {
		t.Fatalf("got %v", got)
	}
}

// TestNonOvertaking: messages between one pair with the same tag must be
// received in send order even when matching is by wildcard.
func TestNonOvertaking(t *testing.T) {
	w := testWorld(2, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			buf := []byte{byte(i), byte(i >> 8)}
			if err := a.Send(buf, 1, 7); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		buf := make([]byte, 2)
		st, err := b.Recv(buf, AnySource, AnyTag)
		if err != nil {
			t.Fatal(err)
		}
		got := int(buf[0]) | int(buf[1])<<8
		if got != i {
			t.Fatalf("message %d arrived as %d (overtaking!)", got, i)
		}
		_ = st
	}
}

// TestOrderingAcrossSizes: eager and rendezvous messages from one source
// still arrive in send order (both are matchable frames under seq order).
func TestOrderingAcrossSizes(t *testing.T) {
	w := testWorld(2, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	lim := TestImpl().EagerLimit
	sizes := []int{8, lim * 3, 16, lim * 2, 4, lim * 4}
	go func() {
		for i, s := range sizes {
			buf := bytes.Repeat([]byte{byte(i + 1)}, s)
			if err := a.Send(buf, 1, i); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	for i, s := range sizes {
		buf := make([]byte, s)
		st, err := b.Recv(buf, 0, AnyTag)
		if err != nil {
			t.Fatal(err)
		}
		if st.Tag != i || st.Count != s {
			t.Fatalf("message %d: status %+v want tag %d count %d", i, st, i, s)
		}
		for _, by := range buf[:st.Count] {
			if by != byte(i+1) {
				t.Fatalf("message %d corrupted", i)
			}
		}
	}
}

func TestIprobeThenRecv(t *testing.T) {
	w := testWorld(2, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	msg := []byte("probe me")
	go a.Send(msg, 1, 42)

	var st Status
	for {
		var ok bool
		st, ok = b.Iprobe(AnySource, AnyTag)
		if ok {
			break
		}
		runtime.Gosched()
	}
	if st.Source != 0 || st.Tag != 42 || st.Count != len(msg) {
		t.Fatalf("probe status = %+v", st)
	}
	// Exact-size receive after probe — the paper's probe pattern.
	buf := make([]byte, st.Count)
	st2, err := b.Recv(buf, st.Source, st.Tag)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Count != len(msg) || string(buf) != "probe me" {
		t.Fatalf("recv after probe: %+v %q", st2, buf)
	}
	// Probe again: nothing.
	if _, ok := b.Iprobe(AnySource, AnyTag); ok {
		t.Fatal("iprobe found message after it was received")
	}
}

func TestIprobeRendezvous(t *testing.T) {
	w := testWorld(2, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	big := make([]byte, TestImpl().EagerLimit*3)
	done := make(chan error, 1)
	go func() { done <- a.Send(big, 1, 1) }()
	var st Status
	for {
		var ok bool
		st, ok = b.Iprobe(0, 1)
		if ok {
			break
		}
		runtime.Gosched()
	}
	if st.Count != len(big) {
		t.Fatalf("probe count = %d want %d", st.Count, len(big))
	}
	buf := make([]byte, st.Count)
	if _, err := b.Recv(buf, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTruncation(t *testing.T) {
	w := testWorld(2, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	go a.Send(make([]byte, 100), 1, 0)
	buf := make([]byte, 10)
	_, err := b.Recv(buf, 0, 0)
	if !errors.Is(err, ErrTruncate) {
		t.Fatalf("err = %v, want ErrTruncate", err)
	}
}

func TestTagValidation(t *testing.T) {
	w := testWorld(2, ThreadFunneled)
	if _, err := w.Comm(0).Isend(nil, 1, -1); err == nil {
		t.Fatal("negative tag accepted")
	}
	if _, err := w.Comm(0).Isend(nil, 1, maxTag+1); err == nil {
		t.Fatal("oversized tag accepted")
	}
}

// TestUnexpectedExhaustion: blasting eager messages at a rank that never
// receives kills the library — the §III-B failure mode.
func TestUnexpectedExhaustion(t *testing.T) {
	impl := TestImpl()
	impl.UnexpectedCap = 4 << 10
	w := NewWorld(2, fabric.TestProfile(), impl, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)

	payload := make([]byte, 256)
	var fatal error
	for i := 0; i < 1000 && fatal == nil; i++ {
		if _, err := a.Isend(payload, 1, 0); err != nil {
			fatal = err
			break
		}
		// The receiver "progresses" (as its progress engine would) but
		// never posts a receive, so unexpected data accumulates.
		if err := b.Progress(); err != nil {
			fatal = err
		}
	}
	if !errors.Is(fatal, ErrExhausted) {
		t.Fatalf("fatal = %v, want ErrExhausted", fatal)
	}
	// The communicator stays dead.
	if err := b.Progress(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("revived after fatal: %v", err)
	}
}

// TestPendingSendExhaustion: a sender whose peer never drains eventually
// dies on sender-side resource exhaustion.
func TestPendingSendExhaustion(t *testing.T) {
	prof := fabric.TestProfile()
	prof.RingDepth = 4
	impl := TestImpl()
	impl.PendingSendCap = 8
	w := NewWorld(2, prof, impl, ThreadFunneled)
	a := w.Comm(0)
	var fatal error
	for i := 0; i < 1000; i++ {
		if _, err := a.Isend(make([]byte, 64), 1, 0); err != nil {
			fatal = err
			break
		}
	}
	if !errors.Is(fatal, ErrExhausted) {
		t.Fatalf("fatal = %v, want ErrExhausted", fatal)
	}
}

func TestThreadMultipleConcurrentSenders(t *testing.T) {
	w := testWorld(2, ThreadMultiple)
	a, b := w.Comm(0), w.Comm(1)
	const threads, per = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				buf := []byte{byte(g), byte(i)}
				if err := a.Send(buf, 1, g); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(g)
	}
	counts := make([]int, threads)
	for i := 0; i < threads*per; i++ {
		buf := make([]byte, 2)
		st, err := b.Recv(buf, AnySource, AnyTag)
		if err != nil {
			t.Fatal(err)
		}
		if int(buf[0]) != st.Tag {
			t.Fatalf("tag %d carried payload from thread %d", st.Tag, buf[0])
		}
		counts[st.Tag]++
	}
	wg.Wait()
	for g, n := range counts {
		if n != per {
			t.Fatalf("thread %d delivered %d messages, want %d", g, n, per)
		}
	}
}

func TestRMAPutBasic(t *testing.T) {
	w := testWorld(2, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)

	var wa, wb *Win
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); wa, _ = a.WinCreate("w", make([]byte, 64)) }()
	go func() { defer wg.Done(); wb, _ = b.WinCreate("w", make([]byte, 64)) }()
	wg.Wait()
	if wa == nil || wb == nil {
		t.Fatal("window creation failed")
	}

	data := []byte("one-sided")
	errc := make(chan error, 1)
	go func() {
		if err := wb.Post([]int{0}); err != nil {
			errc <- err
			return
		}
		errc <- wb.Wait()
	}()

	if err := wa.Start([]int{1}); err != nil {
		t.Fatal(err)
	}
	if err := wa.Put(1, 5, data); err != nil {
		t.Fatal(err)
	}
	if err := wa.Complete(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if string(wb.Buf()[5:5+len(data)]) != "one-sided" {
		t.Fatalf("window contents = %q", wb.Buf()[:20])
	}
}

func TestRMAPutOutsideEpochFails(t *testing.T) {
	w := testWorld(2, ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	var wa *Win
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); wa, _ = a.WinCreate("w", make([]byte, 8)) }()
	go func() { defer wg.Done(); b.WinCreate("w", make([]byte, 8)) }()
	wg.Wait()
	if err := wa.Put(1, 0, []byte{1}); err == nil {
		t.Fatal("put outside access epoch succeeded")
	}
}

// TestRMAMultiRound runs several Post/Start/Put/Complete/Wait rounds among 4
// ranks in an all-to-all pattern, as the MPI-RMA layer does per BSP round.
func TestRMAMultiRound(t *testing.T) {
	const P = 4
	const rounds = 5
	w := testWorld(P, ThreadMultiple)

	wins := make([]*Win, P)
	var wg sync.WaitGroup
	for r := 0; r < P; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			win, err := w.Comm(r).WinCreate("x", make([]byte, P*8))
			if err != nil {
				t.Errorf("wincreate: %v", err)
				return
			}
			wins[r] = win
		}(r)
	}
	wg.Wait()

	others := func(r int) []int {
		var g []int
		for i := 0; i < P; i++ {
			if i != r {
				g = append(g, i)
			}
		}
		return g
	}

	for r := 0; r < P; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			win := wins[r]
			for round := 0; round < rounds; round++ {
				if err := win.Post(others(r)); err != nil {
					t.Errorf("rank %d post: %v", r, err)
					return
				}
				if err := win.Start(others(r)); err != nil {
					t.Errorf("rank %d start: %v", r, err)
					return
				}
				payload := make([]byte, 8)
				payload[0] = byte(r)
				payload[1] = byte(round)
				for _, tgt := range others(r) {
					if err := win.Put(tgt, r*8, payload); err != nil {
						t.Errorf("rank %d put: %v", r, err)
						return
					}
				}
				if err := win.Complete(); err != nil {
					t.Errorf("rank %d complete: %v", r, err)
					return
				}
				if err := win.Wait(); err != nil {
					t.Errorf("rank %d wait: %v", r, err)
					return
				}
				// Every peer's slice must now hold this round's stamp.
				for _, src := range others(r) {
					got := win.Buf()[src*8 : src*8+2]
					if got[0] != byte(src) || got[1] != byte(round) {
						t.Errorf("rank %d round %d: slot %d = %v", r, round, src, got)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestImplProfilesDiffer(t *testing.T) {
	names := map[string]bool{}
	for _, im := range Impls() {
		if names[im.Name] {
			t.Fatalf("duplicate impl name %s", im.Name)
		}
		names[im.Name] = true
		if im.EagerLimit <= 0 || im.UnexpectedCap <= 0 || im.PendingSendCap <= 0 {
			t.Fatalf("impl %s has non-positive limits", im.Name)
		}
	}
}

// TestManyPairsAllToAll: every rank sends to every other rank concurrently
// under ThreadMultiple; everything is delivered.
func TestManyPairsAllToAll(t *testing.T) {
	const P = 4
	w := testWorld(P, ThreadMultiple)
	var wg sync.WaitGroup
	for r := 0; r < P; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Comm(r)
			var reqs []*Request
			for d := 0; d < P; d++ {
				if d == r {
					continue
				}
				msg := []byte(fmt.Sprintf("from %d to %d", r, d))
				req, err := c.Isend(msg, d, r)
				if err != nil {
					t.Errorf("isend: %v", err)
					return
				}
				reqs = append(reqs, req)
			}
			for i := 0; i < P-1; i++ {
				buf := make([]byte, 32)
				st, err := c.Recv(buf, AnySource, AnyTag)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				want := fmt.Sprintf("from %d to %d", st.Source, r)
				if string(buf[:st.Count]) != want {
					t.Errorf("got %q want %q", buf[:st.Count], want)
					return
				}
			}
			for _, req := range reqs {
				if err := c.Wait(req); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func BenchmarkPingPongEagerMPI(b *testing.B) {
	w := testWorld(2, ThreadFunneled)
	a, c := w.Comm(0), w.Comm(1)
	buf := make([]byte, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rbuf := make([]byte, 8)
		for i := 0; i < b.N; i++ {
			c.Recv(rbuf, 0, 0)
			c.Send(rbuf, 0, 0)
		}
	}()
	rbuf := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(buf, 1, 0)
		a.Recv(rbuf, 1, 0)
	}
	<-done
}
