package mpi

import "fmt"

// Isend starts a nonblocking send of buf to dst with tag. Eager messages
// (≤ the implementation's eager limit) complete immediately — the payload is
// buffered on the wire; larger messages complete after the rendezvous put.
//
// The returned error is fatal (exhaustion); back-pressure is absorbed by
// internal queuing, which is precisely the behaviour that lets naive
// all-to-all traffic kill the library (§III-B).
func (c *Comm) Isend(buf []byte, dst, tag int) (*Request, error) {
	c.lock()
	defer c.unlock()
	charge(c.impl.CallOverhead)
	if tag < 0 || tag > maxTag {
		return nil, fmt.Errorf("mpi: tag %d out of range", tag)
	}
	c.progress() // every MPI call drives the progress engine
	if c.fatal != nil {
		return nil, c.fatal
	}
	r := &Request{buf: buf}
	seq := c.sendSeq[dst]
	c.sendSeq[dst]++
	if len(buf) <= c.impl.EagerLimit {
		c.sendOrDefer(outOp{dst: dst, header: packHdr(kEager, uint32(tag), seq), data: buf})
		if c.fatal != nil {
			return nil, c.fatal
		}
		r.done = true
		r.status = Status{Source: c.rank, Tag: tag, Count: len(buf)}
		return r, nil
	}
	sid := c.nextID
	c.nextID++
	c.sendTable[sid] = r
	meta := uint64(sid)<<32 | uint64(uint32(len(buf)))
	c.sendOrDefer(outOp{dst: dst, header: packHdr(kRTS, uint32(tag), seq), meta: meta})
	if c.fatal != nil {
		return nil, c.fatal
	}
	return r, nil
}

// Irecv posts a nonblocking receive into buf from src (or AnySource) with
// tag (or AnyTag). Unexpected messages are matched first, in arrival order,
// traversing the unexpected queue sequentially.
func (c *Comm) Irecv(buf []byte, src, tag int) (*Request, error) {
	c.lock()
	defer c.unlock()
	charge(c.impl.CallOverhead)
	c.progress()
	if c.fatal != nil {
		return nil, c.fatal
	}
	r := &Request{isRecv: true, buf: buf, src: src, tag: tag}
	if c.matchUnexpected(r) {
		return r, nil
	}
	c.posted = append(c.posted, r)
	return r, nil
}

// matchUnexpected scans the unexpected queue for r, charging matching cost
// per element; on a hit it consumes the element and starts completion.
func (c *Comm) matchUnexpected(r *Request) bool {
	for i := range c.unexpected {
		charge(c.impl.MatchOverhead)
		u := &c.unexpected[i]
		if (r.src != AnySource && r.src != u.src) || (r.tag != AnyTag && r.tag != u.tag) {
			continue
		}
		uu := *u
		c.unexpected = append(c.unexpected[:i], c.unexpected[i+1:]...)
		if uu.rts {
			c.acceptRendezvous(r, uu.src, uu.tag, uu.sid, uu.size)
		} else {
			c.unexpBytes -= len(uu.data)
			c.completeEager(r, uu.src, uu.tag, uu.data)
			uu.frame.Release() // payload copied out of the pooled buffer
		}
		return true
	}
	return false
}

// Iprobe progresses the engine and reports whether a message matching
// (src, tag) is available, without receiving it. This is the extra call —
// and extra matching traversal — the paper's "probe" variant pays on every
// receive.
func (c *Comm) Iprobe(src, tag int) (Status, bool) {
	c.lock()
	defer c.unlock()
	charge(c.impl.CallOverhead)
	if c.fatal != nil {
		return Status{}, false
	}
	c.progress()
	for i := range c.unexpected {
		charge(c.impl.MatchOverhead)
		u := &c.unexpected[i]
		if (src != AnySource && src != u.src) || (tag != AnyTag && tag != u.tag) {
			continue
		}
		n := len(u.data)
		if u.rts {
			n = u.size
		}
		return Status{Source: u.src, Tag: u.tag, Count: n}, true
	}
	return Status{}, false
}

// Test progresses the engine and reports whether r completed. Each call
// pays a progress pass — the expensive poll the paper contrasts with LCI's
// flag check.
func (c *Comm) Test(r *Request) (bool, error) {
	c.lock()
	defer c.unlock()
	charge(c.impl.CallOverhead)
	c.progress()
	if c.fatal != nil {
		return false, c.fatal
	}
	return r.done, r.err
}

// Wait blocks (pumping progress) until r completes.
func (c *Comm) Wait(r *Request) error {
	c.lock()
	defer c.unlock()
	charge(c.impl.CallOverhead)
	for {
		c.progress()
		if c.fatal != nil {
			return c.fatal
		}
		if r.done {
			return r.err
		}
		c.yield()
	}
}

// Send is a blocking convenience (Isend + Wait). Unlike a bare eager Isend
// it also drains this rank's deferred sends, so a sender that stops calling
// MPI afterwards cannot strand buffered messages.
func (c *Comm) Send(buf []byte, dst, tag int) error {
	r, err := c.Isend(buf, dst, tag)
	if err != nil {
		return err
	}
	if err := c.Wait(r); err != nil {
		return err
	}
	return c.Flush()
}

// Flush pumps progress until no deferred operations remain.
func (c *Comm) Flush() error {
	c.lock()
	defer c.unlock()
	for {
		c.progress()
		if c.fatal != nil {
			return c.fatal
		}
		if len(c.pendingOut) == 0 {
			return nil
		}
		c.yield()
	}
}

// Recv is a blocking convenience (Irecv + Wait) returning the status.
func (c *Comm) Recv(buf []byte, src, tag int) (Status, error) {
	r, err := c.Irecv(buf, src, tag)
	if err != nil {
		return Status{}, err
	}
	if err := c.Wait(r); err != nil {
		return r.status, err
	}
	return r.status, nil
}

// Progress runs one explicit progress pass (the dedicated communication
// thread of the MPI-RMA layer polls with this, per §III-C).
func (c *Comm) Progress() error {
	c.lock()
	defer c.unlock()
	charge(c.impl.CallOverhead)
	c.progress()
	return c.fatal
}

// PendingUnexpected reports queued unexpected messages (tests/stats).
func (c *Comm) PendingUnexpected() int {
	c.lock()
	defer c.unlock()
	return len(c.unexpected)
}
