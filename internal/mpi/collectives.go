package mpi

import "encoding/binary"

// Collectives built over the point-to-point layer, as small MPI programs
// (and the paper's frameworks, when they need global coordination) would
// use them. All ranks must call the same collective in the same order;
// each collective consumes a dedicated tag band so concurrent user traffic
// cannot be matched by mistake.

// Collective tag band: the top of the 24-bit tag space, keyed by a per-
// communicator collective sequence number so successive collectives do not
// interfere.
const collTagBase = maxTag - (1 << 16)

func (c *Comm) nextCollTag() int {
	c.lock()
	t := collTagBase + int(c.collSeq%(1<<15))
	c.collSeq++
	c.unlock()
	return t
}

// Barrier blocks until every rank has entered it (dissemination barrier,
// ⌈log2 P⌉ rounds).
func (c *Comm) Barrier() error {
	tag := c.nextCollTag()
	P := c.Size()
	me := c.rank
	var tiny [1]byte
	for dist := 1; dist < P; dist <<= 1 {
		to := (me + dist) % P
		from := (me - dist + P) % P
		req, err := c.Isend(tiny[:], to, tag)
		if err != nil {
			return err
		}
		if _, err := c.Recv(make([]byte, 1), from, tag); err != nil {
			return err
		}
		if err := c.Wait(req); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes buf from root to all ranks (binomial tree). Every rank
// passes a buffer of identical length.
func (c *Comm) Bcast(buf []byte, root int) error {
	tag := c.nextCollTag()
	P := c.Size()
	// Translate so root is virtual rank 0.
	vrank := (c.rank - root + P) % P

	mask := 1
	for mask < P {
		mask <<= 1
	}
	// Receive once from the parent (unless root), then forward down.
	if vrank != 0 {
		// Parent clears the lowest set bit.
		parent := vrank &^ (vrank & -vrank)
		if _, err := c.Recv(buf, (parent+root)%P, tag); err != nil {
			return err
		}
	}
	// Children: set bits above the lowest set bit of vrank.
	low := vrank & -vrank
	if vrank == 0 {
		low = mask
	}
	for bit := low >> 1; bit > 0; bit >>= 1 {
		child := vrank | bit
		if child < P && child != vrank {
			if err := c.Send(buf, (child+root)%P, tag); err != nil {
				return err
			}
		}
	}
	return nil
}

// AllreduceU64 combines every rank's value with op (associative and
// commutative) and returns the result on all ranks (recursive doubling
// over the power-of-two subset, with pre/post exchange for stragglers).
func (c *Comm) AllreduceU64(v uint64, op func(a, b uint64) uint64) (uint64, error) {
	tag := c.nextCollTag()
	P := c.Size()
	me := c.rank

	send := func(x uint64, to int) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], x)
		return c.Send(b[:], to, tag)
	}
	recv := func(from int) (uint64, error) {
		var b [8]byte
		if _, err := c.Recv(b[:], from, tag); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}

	// Largest power of two ≤ P.
	pof2 := 1
	for pof2*2 <= P {
		pof2 *= 2
	}
	rem := P - pof2

	acc := v
	switch {
	case me < 2*rem && me%2 == 1:
		// Odd stragglers fold into their even neighbour and sit out.
		if err := send(acc, me-1); err != nil {
			return 0, err
		}
	case me < 2*rem:
		x, err := recv(me + 1)
		if err != nil {
			return 0, err
		}
		acc = op(acc, x)
	}

	inGroup := me >= 2*rem || me%2 == 0
	if inGroup {
		newRank := me
		if me < 2*rem {
			newRank = me / 2
		} else {
			newRank = me - rem
		}
		for dist := 1; dist < pof2; dist <<= 1 {
			peerNew := newRank ^ dist
			peer := peerNew + rem
			if peerNew < rem {
				peer = peerNew * 2
			}
			req, err := c.Isend(u64bytes(acc), peer, tag)
			if err != nil {
				return 0, err
			}
			x, err := recv(peer)
			if err != nil {
				return 0, err
			}
			if err := c.Wait(req); err != nil {
				return 0, err
			}
			acc = op(acc, x)
		}
	}

	// Hand results back to the stragglers.
	switch {
	case me < 2*rem && me%2 == 1:
		return recv(me - 1)
	case me < 2*rem:
		if err := send(acc, me+1); err != nil {
			return 0, err
		}
	}
	return acc, nil
}

func u64bytes(x uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, x)
	return b
}

// Gather collects fixed-size contributions from all ranks at root; out is
// only valid at root (P × len(chunk) bytes, rank-ordered).
func (c *Comm) Gather(chunk []byte, root int) ([]byte, error) {
	tag := c.nextCollTag()
	P := c.Size()
	if c.rank != root {
		return nil, c.Send(chunk, root, tag)
	}
	out := make([]byte, P*len(chunk))
	copy(out[c.rank*len(chunk):], chunk)
	for i := 0; i < P-1; i++ {
		buf := make([]byte, len(chunk))
		st, err := c.Recv(buf, AnySource, tag)
		if err != nil {
			return nil, err
		}
		copy(out[st.Source*len(chunk):], buf[:st.Count])
	}
	return out, nil
}
