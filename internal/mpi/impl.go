package mpi

import "time"

// Impl is an MPI implementation profile: the tunables that differ between
// real MPI builds and drive the Table IV comparison.
type Impl struct {
	Name string
	// EagerLimit is the MPI-level eager/rendezvous threshold in bytes. It
	// must not exceed the fabric's frame limit.
	EagerLimit int
	// UnexpectedCap bounds internal buffering of unexpected eager payload
	// bytes; exceeding it is the unrecoverable failure of §III-B.
	UnexpectedCap int
	// PendingSendCap bounds internally queued sends awaiting network
	// resources before the library gives up (sender-side exhaustion).
	PendingSendCap int
	// CallOverhead is charged on entry to every MPI call (argument
	// checking, handle translation, progress-engine bookkeeping).
	CallOverhead time.Duration
	// MatchOverhead is charged per queue element examined during matching.
	MatchOverhead time.Duration
	// RMAOverhead is charged per one-sided operation.
	RMAOverhead time.Duration
	// UnsafeNoOrdering disables the non-overtaking guarantee (matchable
	// frames are handled in arrival order, not send order). No real MPI
	// allows this — it exists for the ablation quantifying what MPI's
	// ordering semantics cost (DESIGN.md §5, paper §I: "strict message
	// ordering requirements ... are known to be impediments").
	UnsafeNoOrdering bool
}

// IntelMPI models the cluster-default Intel MPI build: the best RMA path and
// moderate matching cost.
func IntelMPI() Impl {
	return Impl{
		Name:           "intelmpi",
		EagerLimit:     4 << 10,
		UnexpectedCap:  4 << 20,
		PendingSendCap: 4096,
		CallOverhead:   120 * time.Nanosecond,
		MatchOverhead:  25 * time.Nanosecond,
		RMAOverhead:    150 * time.Nanosecond,
	}
}

// MVAPICH2 models MVAPICH 2.3b on psm2: cheap calls, pricier matching and
// RMA.
func MVAPICH2() Impl {
	return Impl{
		Name:           "mvapich2",
		EagerLimit:     4 << 10,
		UnexpectedCap:  2 << 20,
		PendingSendCap: 2048,
		CallOverhead:   100 * time.Nanosecond,
		MatchOverhead:  35 * time.Nanosecond,
		RMAOverhead:    260 * time.Nanosecond,
	}
}

// OpenMPI models the tested OpenMPI master build: higher per-call overhead.
func OpenMPI() Impl {
	return Impl{
		Name:           "openmpi",
		EagerLimit:     2 << 10,
		UnexpectedCap:  2 << 20,
		PendingSendCap: 2048,
		CallOverhead:   180 * time.Nanosecond,
		MatchOverhead:  30 * time.Nanosecond,
		RMAOverhead:    220 * time.Nanosecond,
	}
}

// TestImpl is a zero-overhead profile for unit tests.
func TestImpl() Impl {
	return Impl{
		Name:           "test",
		EagerLimit:     512,
		UnexpectedCap:  64 << 10,
		PendingSendCap: 256,
	}
}

// Impls returns the named implementation profiles in Table IV order.
func Impls() []Impl { return []Impl{IntelMPI(), MVAPICH2(), OpenMPI()} }

// charge busy-waits for d, modelling fixed software overhead on the calling
// thread. Durations under ~50ns are skipped: the surrounding call sequence
// already costs that much.
func charge(d time.Duration) {
	if d < 50*time.Nanosecond {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
	}
}
