package mpi

import (
	"fmt"
	"sync"

	"lcigraph/internal/fabric"
)

// Win is an RMA window: a registered buffer remotely writable during
// exposure epochs, with generalized active-target synchronization
// (Start/Complete on the origin, Post/Wait on the target), the model the
// MPI-RMA layer of §III-C uses instead of the too-coarse fence.
type Win struct {
	c    *Comm
	id   uint16
	buf  []byte
	rkey uint32
	// peerKeys[r] is rank r's window rkey, gathered at creation.
	peerKeys []uint32

	// Origin-side (access epoch) state.
	accessGroup  []int
	postSeen     map[int]bool
	putsIssued   map[int]int
	putsInFlight int

	// Target-side (exposure epoch) state.
	exposureGroup []int
	completeSeen  int
	putsExpected  int
	putsReceived  int
	exposed       bool
}

// winGather coordinates the collective rkey exchange of WinCreate.
type winGather struct {
	mu    sync.Mutex
	cond  *sync.Cond
	keys  []uint32
	got   int
	total int
}

func (w *World) gatherWin(name string, rank int, rkey uint32) []uint32 {
	w.winMu.Lock()
	g, ok := w.winExchg[name]
	if !ok {
		g = &winGather{keys: make([]uint32, w.Size()), total: w.Size()}
		g.cond = sync.NewCond(&g.mu)
		w.winExchg[name] = g
	}
	w.winMu.Unlock()

	g.mu.Lock()
	g.keys[rank] = rkey
	g.got++
	if g.got == g.total {
		g.cond.Broadcast()
	}
	for g.got < g.total {
		g.cond.Wait()
	}
	keys := make([]uint32, len(g.keys))
	copy(keys, g.keys)
	g.mu.Unlock()
	return keys
}

// WinCreate collectively creates a window over buf. Every rank must call it
// with the same name; buffers may differ in content but all ranks must
// create the same sequence of windows. Window-creation time is excluded
// from the paper's RMA measurements, and the rkey exchange here is an
// in-process shortcut for the same reason (see DESIGN.md).
func (c *Comm) WinCreate(name string, buf []byte) (*Win, error) {
	c.lock()
	charge(c.impl.RMAOverhead)
	if c.fatal != nil {
		c.unlock()
		return nil, c.fatal
	}
	var rkey uint32
	if c.fep.HasRDMA() {
		var err error
		rkey, err = c.fep.RegisterRegion(buf)
		if err != nil {
			c.unlock()
			return nil, fmt.Errorf("mpi: win create: %w", err)
		}
	}
	id := c.nextWin
	c.nextWin++
	w := &Win{
		c: c, id: id, buf: buf, rkey: rkey,
		postSeen:   map[int]bool{},
		putsIssued: map[int]int{},
	}
	c.wins[id] = w
	c.unlock() // release during the blocking collective exchange

	w.peerKeys = c.world.gatherWin(name, c.rank, rkey)
	return w, nil
}

// Buf returns the window's local buffer.
func (w *Win) Buf() []byte { return w.buf }

// Post opens an exposure epoch for origins in group: they may now Put into
// this window. It sends a post notification to each origin.
func (w *Win) Post(group []int) error {
	c := w.c
	c.lock()
	defer c.unlock()
	charge(c.impl.RMAOverhead)
	if c.fatal != nil {
		return c.fatal
	}
	if w.exposed {
		return fmt.Errorf("mpi: window %d already exposed", w.id)
	}
	w.exposureGroup = append([]int(nil), group...)
	w.completeSeen = 0
	w.putsExpected = 0
	w.putsReceived = 0
	w.exposed = true
	for _, o := range group {
		c.sendOrDefer(outOp{dst: o, header: packHdr(kRMAPost, uint32(w.id), 0)})
	}
	return c.fatal
}

// Start opens an access epoch toward targets in group, blocking until each
// target's matching Post notification arrives.
func (w *Win) Start(group []int) error {
	c := w.c
	c.lock()
	defer c.unlock()
	charge(c.impl.RMAOverhead)
	w.accessGroup = append([]int(nil), group...)
	for _, t := range group {
		w.putsIssued[t] = 0
	}
	for {
		if c.fatal != nil {
			return c.fatal
		}
		ready := true
		for _, t := range group {
			if !w.postSeen[t] {
				ready = false
				break
			}
		}
		if ready {
			for _, t := range group {
				delete(w.postSeen, t)
			}
			return nil
		}
		c.progress()
		c.yield()
	}
}

// Put writes data into target's window at offset. Must be called inside an
// access epoch that includes target.
func (w *Win) Put(target, offset int, data []byte) error {
	c := w.c
	c.lock()
	defer c.unlock()
	charge(c.impl.RMAOverhead)
	if c.fatal != nil {
		return c.fatal
	}
	in := false
	for _, t := range w.accessGroup {
		if t == target {
			in = true
			break
		}
	}
	if !in {
		return fmt.Errorf("mpi: put to rank %d outside access epoch", target)
	}
	w.putsIssued[target]++
	w.putsInFlight++
	c.putOrDefer(outOp{isPut: true, dst: target, rkey: w.peerKeys[target],
		off: offset, data: data, imm: uint64(w.id), win: w})
	return c.fatal
}

// Complete closes the access epoch: it drains local put completions, then
// notifies each target how many puts to expect.
func (w *Win) Complete() error {
	c := w.c
	c.lock()
	defer c.unlock()
	charge(c.impl.RMAOverhead)
	for w.putsInFlight > 0 {
		if c.fatal != nil {
			return c.fatal
		}
		c.progress()
		if w.putsInFlight > 0 {
			c.yield()
		}
	}
	for _, t := range w.accessGroup {
		meta := uint64(w.id)<<32 | uint64(uint32(w.putsIssued[t]))
		c.sendOrDefer(outOp{dst: t, header: packHdr(kRMAComplete, uint32(w.id), 0), meta: meta})
		delete(w.putsIssued, t)
	}
	w.accessGroup = nil
	return c.fatal
}

// Wait closes the exposure epoch: it blocks until every origin completed
// its access epoch and all announced puts have landed.
func (w *Win) Wait() error {
	c := w.c
	c.lock()
	defer c.unlock()
	charge(c.impl.RMAOverhead)
	for {
		if c.fatal != nil {
			return c.fatal
		}
		if w.completeSeen == len(w.exposureGroup) && w.putsReceived == w.putsExpected {
			w.exposed = false
			return nil
		}
		c.progress()
		c.yield()
	}
}

// TestWait is a nonblocking Wait: it reports whether the exposure epoch
// finished, progressing once. (MPI_Win_test.)
func (w *Win) TestWait() (bool, error) {
	c := w.c
	c.lock()
	defer c.unlock()
	charge(c.impl.RMAOverhead)
	c.progress()
	if c.fatal != nil {
		return false, c.fatal
	}
	if w.completeSeen == len(w.exposureGroup) && w.putsReceived == w.putsExpected {
		w.exposed = false
		return true, nil
	}
	return false, nil
}

// handleRMAPost records a post notification from a target.
func (c *Comm) handleRMAPost(f *fabric.Frame) {
	id := uint16(hdrTag(f.Header))
	w, ok := c.wins[id]
	if !ok {
		c.fatalf("mpi: post for unknown window %d", id)
		return
	}
	w.postSeen[f.Src] = true
}

// handleRMAComplete records an origin's access-epoch completion.
func (c *Comm) handleRMAComplete(f *fabric.Frame) {
	id := uint16(f.Meta >> 32)
	w, ok := c.wins[id]
	if !ok {
		c.fatalf("mpi: complete for unknown window %d", id)
		return
	}
	w.completeSeen++
	w.putsExpected += int(uint32(f.Meta))
}
