package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"lcigraph/internal/fabric"
)

// Wildcards for Irecv/Iprobe matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// ThreadMode selects the threading guarantee, mirroring MPI's init modes.
type ThreadMode int

const (
	// ThreadFunneled: only one thread per host issues MPI calls; the
	// library takes no locks.
	ThreadFunneled ThreadMode = iota
	// ThreadMultiple: any thread may call; every call takes the library's
	// global lock, as deployed implementations effectively do (the paper's
	// §III-B cites the substantial performance loss this causes).
	ThreadMultiple
)

// Sticky fatal errors (§III-B: "the MPI standard does not require
// implementations to handle resource exhaustion errors and in current MPI
// implementations the program crashes when these happen").
var (
	// ErrExhausted reports internal buffer exhaustion; the communicator is
	// dead afterwards.
	ErrExhausted = errors.New("mpi: internal buffers exhausted (unrecoverable)")
	// ErrTruncate reports a message longer than the posted receive buffer.
	ErrTruncate = errors.New("mpi: message truncated (receive buffer too small)")
)

// Status describes a matched or probed message.
type Status struct {
	Source int
	Tag    int
	Count  int // payload bytes
}

// Request is a nonblocking-operation handle. Completion must be observed
// through Comm.Test or Comm.Wait (which, unlike LCI's flag, perform a
// progress call).
type Request struct {
	done   bool
	isRecv bool
	buf    []byte
	src    int // requested source (may be AnySource) for receives
	tag    int
	status Status
	err    error
}

// Status returns the completion status; valid once Test/Wait report done.
func (r *Request) Status() Status { return r.status }

// Err returns the request-level error, if any (e.g. truncation).
func (r *Request) Err() error { return r.err }

// unexp is an element of the unexpected-message queue.
type unexp struct {
	src   int
	tag   int
	data  []byte        // eager payload (nil for rendezvous)
	frame *fabric.Frame // pooled frame backing data, recycled on match
	rts   bool
	sid   uint32 // sender's rendezvous id
	size  int
}

// rvRecv tracks a rendezvous receive awaiting its RDMA put (or fragment
// stream on RDMA-less transports).
type rvRecv struct {
	req  *Request
	rkey uint32
	n    int
	got  int
}

// outOp is a deferred network operation awaiting fabric resources.
type outOp struct {
	isPut  bool
	dst    int
	header uint64
	meta   uint64
	data   []byte
	// put fields
	rkey uint32
	off  int
	imm  uint64
	// completion bookkeeping
	sendReq *Request // two-sided rendezvous send to complete after put
	win     *Win     // RMA put accounting
}

// Comm is one host's communicator (the world communicator; the paper's
// layers need no others).
type Comm struct {
	world *World
	rank  int
	impl  Impl
	mode  ThreadMode
	fep   fabric.Provider

	mu sync.Mutex // the global lock (ThreadMultiple only)

	sendSeq []uint32 // per-destination next sequence number
	nextSeq []uint32 // per-source next expected sequence
	ooo     map[uint64]*fabric.Frame

	posted     []*Request
	unexpected []unexp
	unexpBytes int

	pendingOut []outOp
	frags      []*mpiFrag

	nextID    uint32
	sendTable map[uint32]*Request
	recvTable map[uint32]*rvRecv

	wins    map[uint16]*Win
	nextWin uint16

	collSeq uint32 // collective sequence number (tag-band selector)

	fatal error
}

// World is the set of communicators over one fabric (MPI_COMM_WORLD).
type World struct {
	fab   *fabric.Fabric
	impl  Impl
	comms []*Comm

	// winExchg implements the collective rkey allgather of WinCreate
	// in-process (window-creation time is excluded from the paper's
	// measurements, so this shortcut does not distort results).
	winMu    sync.Mutex
	winExchg map[string]*winGather
}

// NewWorld creates n communicators over a fresh fabric with the given NIC
// profile, implementation profile and thread mode.
func NewWorld(n int, prof fabric.Profile, impl Impl, mode ThreadMode) *World {
	return NewWorldOn(fabric.New(n, prof), impl, mode)
}

// NewWorldOn creates communicators over an existing fabric.
func NewWorldOn(fab *fabric.Fabric, impl Impl, mode ThreadMode) *World {
	feps := make([]fabric.Provider, fab.Size())
	for r := range feps {
		feps[r] = fab.Endpoint(r)
	}
	w := NewWorldOver(feps, impl, mode)
	w.fab = fab
	return w
}

// NewWorldOver creates communicators over per-rank fabric providers — the
// simulator's endpoints or real network endpoints (internal/netfabric). The
// eager limit is clamped to the transport's.
func NewWorldOver(feps []fabric.Provider, impl Impl, mode ThreadMode) *World {
	if len(feps) > 0 && impl.EagerLimit > feps[0].EagerLimit() {
		impl.EagerLimit = feps[0].EagerLimit()
	}
	w := &World{impl: impl, winExchg: map[string]*winGather{}}
	n := len(feps)
	for r := 0; r < n; r++ {
		w.comms = append(w.comms, &Comm{
			world:     w,
			rank:      r,
			impl:      impl,
			mode:      mode,
			fep:       feps[r],
			sendSeq:   make([]uint32, n),
			nextSeq:   make([]uint32, n),
			ooo:       map[uint64]*fabric.Frame{},
			sendTable: map[uint32]*Request{},
			recvTable: map[uint32]*rvRecv{},
			wins:      map[uint16]*Win{},
		})
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.comms) }

// Comm returns rank r's communicator.
func (w *World) Comm(r int) *Comm { return w.comms[r] }

// Fabric returns the underlying fabric (for stats).
func (w *World) Fabric() *fabric.Fabric { return w.fab }

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return len(c.world.comms) }

// Impl returns the implementation profile.
func (c *Comm) Impl() Impl { return c.impl }

func (c *Comm) lock() {
	if c.mode == ThreadMultiple {
		c.mu.Lock()
	}
}

func (c *Comm) unlock() {
	if c.mode == ThreadMultiple {
		c.mu.Unlock()
	}
}

// ---- wire encoding ----

type frameKind uint8

const (
	kEager frameKind = iota + 1
	kRTS
	kCTS
	kRMAPost
	kRMAComplete
	// Software emulation kinds for RDMA-less transports: rendezvous and
	// RMA payloads travel as fragments, and each emulated put ends with an
	// explicit fin so the target's PSCW accounting still works.
	kFrag
	kRMAFrag
	kRMAPutFin
)

// header: kind(8) << 56 | tagOrID(24) << 32 | seq(32)
func packHdr(k frameKind, tagOrID uint32, seq uint32) uint64 {
	return uint64(k)<<56 | uint64(tagOrID&0xffffff)<<32 | uint64(seq)
}

func hdrKind(h uint64) frameKind { return frameKind(h >> 56) }
func hdrTag(h uint64) uint32     { return uint32(h>>32) & 0xffffff }
func hdrSeq(h uint64) uint32     { return uint32(h) }

// put immediates: bit 63 set = two-sided rendezvous completion (low 32 bits
// carry the receiver's rendezvous id); clear = RMA put (low 16 bits carry
// the window id).
const immP2P = uint64(1) << 63

// maxTag is the largest usable tag value (24 header bits).
const maxTag = 1<<24 - 1

// fatalf records a sticky fatal error.
func (c *Comm) fatalf(format string, args ...any) error {
	if c.fatal == nil {
		c.fatal = fmt.Errorf(format, args...)
	}
	return c.fatal
}

// Err returns the communicator's sticky fatal error, if any.
func (c *Comm) Err() error {
	c.lock()
	defer c.unlock()
	return c.fatal
}

// ---- progress engine ----

const progressBatch = 64

// mpiFrag is one software-emulated large transfer in progress.
type mpiFrag struct {
	dst     int
	recvID  uint32 // two-sided completion id (kFrag)
	isRMA   bool
	winID   uint16
	base    int // absolute target offset (RMA)
	src     []byte
	off     int
	sendReq *Request
	win     *Win
}

// pumpFrags advances software-emulated transfers under back-pressure.
func (c *Comm) pumpFrags() {
	if len(c.frags) == 0 {
		return
	}
	keep := c.frags[:0]
	for _, j := range c.frags {
		limit := c.impl.EagerLimit
		stalled := false
		for j.off < len(j.src) {
			chunk := j.src[j.off:]
			if len(chunk) > limit {
				chunk = chunk[:limit]
			}
			var header, meta uint64
			if j.isRMA {
				header = packHdr(kRMAFrag, uint32(j.winID), 0)
				meta = uint64(j.base + j.off)
			} else {
				header = packHdr(kFrag, j.recvID, 0)
				meta = uint64(j.off)
			}
			if err := c.fep.Send(j.dst, header, meta, chunk); err != nil {
				if err != fabric.ErrResource {
					c.fatalf("mpi: fragment send: %v", err)
					return
				}
				stalled = true
				break
			}
			j.off += len(chunk)
		}
		if stalled || j.off < len(j.src) {
			keep = append(keep, j)
			continue
		}
		if j.isRMA {
			// Fin tells the target one emulated put has fully landed.
			c.sendOrDefer(outOp{dst: j.dst, header: packHdr(kRMAPutFin, uint32(j.winID), 0)})
			c.finishPut(outOp{win: j.win})
		} else {
			c.finishPut(outOp{sendReq: j.sendReq})
		}
	}
	c.frags = keep
}

// progress pumps the network. Callers must hold the lock (in multiple mode).
// Every entry charges the per-call overhead once via its public caller.
func (c *Comm) progress() {
	if c.fatal != nil {
		return
	}
	c.flushPending()
	c.pumpFrags()
	var batch [progressBatch]*fabric.Frame
	n := c.fep.PollBatch(batch[:])
	for i, f := range batch[:n] {
		if c.fatal != nil {
			// A handler died mid-batch: recycle the undispatched remainder.
			for _, g := range batch[i:n] {
				g.Release()
			}
			return
		}
		if f.Kind == fabric.KindPutDone {
			c.handlePutDone(f)
			f.Release()
			continue
		}
		switch hdrKind(f.Header) {
		case kEager, kRTS:
			// Ownership passes to the ordering layer: the frame is recycled
			// once its payload is copied out (or retained while buffered in
			// the out-of-order / unexpected queues).
			c.handleOrdered(f)
		case kCTS:
			c.handleCTS(f)
			f.Release()
		case kRMAPost:
			c.handleRMAPost(f)
			f.Release()
		case kRMAComplete:
			c.handleRMAComplete(f)
			f.Release()
		case kFrag:
			c.handleFrag(f)
			f.Release()
		case kRMAFrag:
			c.handleRMAFrag(f)
			f.Release()
		case kRMAPutFin:
			c.handleRMAPutFin(f)
			f.Release()
		default:
			f.Release()
			c.fatalf("mpi: unknown frame kind %d", hdrKind(f.Header))
		}
	}
}

// handleOrdered enforces MPI's non-overtaking guarantee: matchable frames
// from one source are handled strictly in sequence order, buffering early
// arrivals.
func (c *Comm) handleOrdered(f *fabric.Frame) {
	if c.impl.UnsafeNoOrdering {
		c.handleMatchable(f)
		return
	}
	src := f.Src
	seq := hdrSeq(f.Header)
	if seq != c.nextSeq[src] {
		c.ooo[uint64(src)<<32|uint64(seq)] = f
		return
	}
	c.handleMatchable(f)
	c.nextSeq[src]++
	for {
		key := uint64(src)<<32 | uint64(c.nextSeq[src])
		nf, ok := c.ooo[key]
		if !ok {
			return
		}
		delete(c.ooo, key)
		c.handleMatchable(nf)
		c.nextSeq[src]++
	}
}

// matchPosted scans the posted-receive queue front to back, charging the
// per-element matching cost, and removes and returns the first match.
func (c *Comm) matchPosted(src, tag int) *Request {
	for i, r := range c.posted {
		charge(c.impl.MatchOverhead)
		if (r.src == AnySource || r.src == src) && (r.tag == AnyTag || r.tag == tag) {
			c.posted = append(c.posted[:i], c.posted[i+1:]...)
			return r
		}
	}
	return nil
}

// handleMatchable processes an in-order eager or RTS frame.
func (c *Comm) handleMatchable(f *fabric.Frame) {
	tag := int(hdrTag(f.Header))
	switch hdrKind(f.Header) {
	case kEager:
		if r := c.matchPosted(f.Src, tag); r != nil {
			c.completeEager(r, f.Src, tag, f.Data)
			f.Release()
			return
		}
		c.unexpBytes += len(f.Data)
		if c.unexpBytes > c.impl.UnexpectedCap {
			f.Release()
			c.fatalf("%w: %d bytes of unexpected messages (cap %d)",
				ErrExhausted, c.unexpBytes, c.impl.UnexpectedCap)
			return
		}
		// The unexpected queue retains the frame: data still aliases the
		// pooled wire buffer and is recycled when the message is matched.
		c.unexpected = append(c.unexpected, unexp{src: f.Src, tag: tag, data: f.Data, frame: f})
	case kRTS:
		sid := uint32(f.Meta >> 32)
		size := int(uint32(f.Meta))
		if r := c.matchPosted(f.Src, tag); r != nil {
			c.acceptRendezvous(r, f.Src, tag, sid, size)
		} else {
			c.unexpected = append(c.unexpected, unexp{src: f.Src, tag: tag, rts: true, sid: sid, size: size})
		}
		f.Release() // control frame: meta fully consumed
	}
}

// completeEager finishes a matched eager receive: copy into the posted
// buffer (the extra copy MPI cannot avoid).
func (c *Comm) completeEager(r *Request, src, tag int, data []byte) {
	if len(data) > len(r.buf) {
		r.err = ErrTruncate
		r.done = true
		return
	}
	copy(r.buf, data)
	r.status = Status{Source: src, Tag: tag, Count: len(data)}
	r.done = true
}

// acceptRendezvous sets up the receive side of a rendezvous: register the
// posted buffer (when the transport supports remote writes) and answer CTS.
func (c *Comm) acceptRendezvous(r *Request, src, tag int, sid uint32, size int) {
	if size > len(r.buf) {
		r.err = ErrTruncate
		r.done = true
		// Still answer CTS into a scratch buffer so the sender completes;
		// a real MPI would transfer and truncate. Keep it simple and
		// honest: allocate scratch.
		r = &Request{isRecv: true, buf: make([]byte, size), src: src, tag: tag}
	}
	rid := c.nextID
	c.nextID++
	var rkey uint32
	if c.fep.HasRDMA() {
		var err error
		rkey, err = c.fep.RegisterRegion(r.buf[:size])
		if err != nil {
			c.fatalf("mpi: register: %v", err)
			return
		}
	}
	c.recvTable[rid] = &rvRecv{req: r, rkey: rkey, n: size}
	r.status = Status{Source: src, Tag: tag, Count: size}
	header := packHdr(kCTS, rid, 0)
	meta := uint64(sid)<<32 | uint64(rkey)
	c.sendOrDefer(outOp{dst: src, header: header, meta: meta})
}

// handleFrag copies a two-sided rendezvous fragment into the posted buffer
// and completes the receive on the final byte.
func (c *Comm) handleFrag(f *fabric.Frame) {
	rid := hdrTag(f.Header)
	rv, ok := c.recvTable[rid]
	if !ok {
		c.fatalf("mpi: fragment for unknown recv %d", rid)
		return
	}
	off := int(f.Meta)
	copy(rv.req.buf[off:], f.Data)
	rv.got += len(f.Data)
	if rv.got >= rv.n {
		delete(c.recvTable, rid)
		rv.req.done = true
	}
}

// handleRMAFrag applies an emulated-put fragment into the window buffer.
func (c *Comm) handleRMAFrag(f *fabric.Frame) {
	w, ok := c.wins[uint16(hdrTag(f.Header))]
	if !ok {
		c.fatalf("mpi: rma fragment for unknown window")
		return
	}
	copy(w.buf[int(f.Meta):], f.Data)
}

// handleRMAPutFin counts one completed emulated put toward the exposure
// epoch.
func (c *Comm) handleRMAPutFin(f *fabric.Frame) {
	w, ok := c.wins[uint16(hdrTag(f.Header))]
	if !ok {
		c.fatalf("mpi: rma fin for unknown window")
		return
	}
	w.putsReceived++
}

// handleCTS is the sender side of rendezvous: issue the RDMA put from the
// user buffer.
func (c *Comm) handleCTS(f *fabric.Frame) {
	rid := hdrTag(f.Header)
	sid := uint32(f.Meta >> 32)
	rkey := uint32(f.Meta)
	req, ok := c.sendTable[sid]
	if !ok {
		c.fatalf("mpi: CTS for unknown send %d", sid)
		return
	}
	delete(c.sendTable, sid)
	c.putOrDefer(outOp{isPut: true, dst: f.Src, rkey: rkey, data: req.buf,
		imm: immP2P | uint64(rid), sendReq: req})
}

// handlePutDone dispatches put completions.
func (c *Comm) handlePutDone(f *fabric.Frame) {
	if f.Header&immP2P != 0 {
		rid := uint32(f.Header)
		rv, ok := c.recvTable[rid]
		if !ok {
			c.fatalf("mpi: put completion for unknown recv %d", rid)
			return
		}
		delete(c.recvTable, rid)
		c.fep.DeregisterRegion(rv.rkey)
		rv.req.done = true
		return
	}
	win, ok := c.wins[uint16(f.Header)]
	if !ok {
		c.fatalf("mpi: put completion for unknown window %d", uint16(f.Header))
		return
	}
	win.putsReceived++
}

// sendOrDefer tries a fabric send, deferring on back-pressure. Exceeding
// the pending-send cap is the sender-side exhaustion failure.
func (c *Comm) sendOrDefer(op outOp) {
	err := c.fep.Send(op.dst, op.header, op.meta, op.data)
	if err == nil {
		return
	}
	if err != fabric.ErrResource {
		c.fatalf("mpi: send: %v", err)
		return
	}
	if len(c.pendingOut) >= c.impl.PendingSendCap {
		c.fatalf("%w: %d queued sends", ErrExhausted, len(c.pendingOut))
		return
	}
	if op.data != nil {
		// Eager sends complete immediately, so a deferred one must own a
		// private copy of the payload (MPI's internal eager buffering).
		op.data = append([]byte(nil), op.data...)
	}
	c.pendingOut = append(c.pendingOut, op)
}

// putOrDefer is sendOrDefer for RDMA puts. On RDMA-less transports the put
// becomes a software fragment stream.
func (c *Comm) putOrDefer(op outOp) {
	if !c.fep.HasRDMA() {
		j := &mpiFrag{dst: op.dst, src: op.data, sendReq: op.sendReq, win: op.win}
		if op.win != nil {
			j.isRMA = true
			j.winID = op.win.id
			j.base = op.off
		} else {
			j.recvID = uint32(op.imm)
		}
		c.frags = append(c.frags, j)
		c.pumpFrags()
		return
	}
	err := c.fep.Put(op.dst, op.rkey, op.off, op.data, op.imm)
	if err == nil {
		c.finishPut(op)
		return
	}
	if err != fabric.ErrResource {
		c.fatalf("mpi: put: %v", err)
		return
	}
	if len(c.pendingOut) >= c.impl.PendingSendCap {
		c.fatalf("%w: %d queued operations", ErrExhausted, len(c.pendingOut))
		return
	}
	c.pendingOut = append(c.pendingOut, op)
}

func (c *Comm) finishPut(op outOp) {
	if op.sendReq != nil {
		op.sendReq.done = true
	}
	if op.win != nil {
		op.win.putsInFlight--
	}
}

// flushPending retries deferred operations in order, stopping at the first
// that still lacks resources (preserving per-destination order).
func (c *Comm) flushPending() {
	for len(c.pendingOut) > 0 {
		op := c.pendingOut[0]
		var err error
		if op.isPut {
			err = c.fep.Put(op.dst, op.rkey, op.off, op.data, op.imm)
			if err == nil {
				c.finishPut(op)
			}
		} else {
			err = c.fep.Send(op.dst, op.header, op.meta, op.data)
		}
		if err == fabric.ErrResource {
			return
		}
		if err != nil {
			c.fatalf("mpi: flush: %v", err)
			return
		}
		c.pendingOut = c.pendingOut[1:]
	}
}

// yield releases the lock around a scheduler yield so other goroutines of a
// single-core runtime can progress.
func (c *Comm) yield() {
	c.unlock()
	runtime.Gosched()
	c.lock()
}
