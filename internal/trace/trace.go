// Package trace records per-round execution timelines: for each BSP round,
// the time a host spent computing and in non-overlapped communication plus
// wire-volume counters. The paper's Fig. 6 reports per-iteration averages
// of exactly these series ("we measured the computation time of each
// iteration or round on each host"); the tracer retains the full timeline
// so the harness can report averages, maxima across hosts, or dump CSV.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Round is one host's record of one BSP round.
type Round struct {
	Host    int
	Round   int
	Compute time.Duration
	Comm    time.Duration
	Bytes   int64 // payload bytes shipped this round (if tracked)
	Msgs    int64 // messages shipped this round (if tracked)
}

// Trace accumulates rounds from all hosts of a job. Safe for concurrent
// Append from host goroutines.
type Trace struct {
	mu     sync.Mutex
	rounds []Round
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Append records one round.
func (t *Trace) Append(r Round) {
	t.mu.Lock()
	t.rounds = append(t.rounds, r)
	t.mu.Unlock()
}

// Len returns the number of recorded rounds.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rounds)
}

// Rounds returns a copy of all records.
func (t *Trace) Rounds() []Round {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Round, len(t.rounds))
	copy(out, t.rounds)
	return out
}

// Summary is the Fig. 6 aggregation: per-round maxima across hosts,
// summed over rounds.
type Summary struct {
	Rounds  int
	Compute time.Duration // Σ_r max_h compute(h, r)
	Comm    time.Duration // Σ_r max_h comm(h, r)
	Bytes   int64
	Msgs    int64
}

// Summarize computes the paper's aggregation: "we consider the maximum
// across hosts for each iteration and take the sum of those values".
func (t *Trace) Summarize() Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	type agg struct {
		compute, comm time.Duration
	}
	perRound := map[int]agg{}
	var s Summary
	for _, r := range t.rounds {
		a := perRound[r.Round]
		if r.Compute > a.compute {
			a.compute = r.Compute
		}
		if r.Comm > a.comm {
			a.comm = r.Comm
		}
		perRound[r.Round] = a
		s.Bytes += r.Bytes
		s.Msgs += r.Msgs
	}
	for _, a := range perRound {
		s.Compute += a.compute
		s.Comm += a.comm
	}
	s.Rounds = len(perRound)
	return s
}

// WriteCSV dumps the timeline as CSV (host,round,compute_ns,comm_ns,bytes,msgs).
func (t *Trace) WriteCSV(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := fmt.Fprintln(w, "host,round,compute_ns,comm_ns,bytes,msgs"); err != nil {
		return err
	}
	for _, r := range t.rounds {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d\n",
			r.Host, r.Round, r.Compute.Nanoseconds(), r.Comm.Nanoseconds(), r.Bytes, r.Msgs); err != nil {
			return err
		}
	}
	return nil
}
