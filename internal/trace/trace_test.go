package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAppendAndSummarize(t *testing.T) {
	tr := New()
	// Two hosts, two rounds. Fig. 6 aggregation: per-round max across
	// hosts, summed.
	tr.Append(Round{Host: 0, Round: 0, Compute: 10 * time.Millisecond, Comm: 5 * time.Millisecond, Bytes: 100, Msgs: 2})
	tr.Append(Round{Host: 1, Round: 0, Compute: 7 * time.Millisecond, Comm: 9 * time.Millisecond, Bytes: 50, Msgs: 1})
	tr.Append(Round{Host: 0, Round: 1, Compute: 1 * time.Millisecond, Comm: 2 * time.Millisecond})
	tr.Append(Round{Host: 1, Round: 1, Compute: 3 * time.Millisecond, Comm: 1 * time.Millisecond})

	s := tr.Summarize()
	if s.Rounds != 2 {
		t.Fatalf("rounds = %d", s.Rounds)
	}
	if s.Compute != 13*time.Millisecond { // max(10,7) + max(1,3)
		t.Fatalf("compute = %v", s.Compute)
	}
	if s.Comm != 11*time.Millisecond { // max(5,9) + max(2,1)
		t.Fatalf("comm = %v", s.Comm)
	}
	if s.Bytes != 150 || s.Msgs != 3 {
		t.Fatalf("bytes/msgs = %d/%d", s.Bytes, s.Msgs)
	}
}

func TestConcurrentAppend(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for h := 0; h < 8; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for r := 0; r < 100; r++ {
				tr.Append(Round{Host: h, Round: r})
			}
		}(h)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New()
	tr.Append(Round{Host: 1, Round: 2, Compute: time.Microsecond, Comm: 2 * time.Microsecond, Bytes: 7, Msgs: 3})
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "host,round,compute_ns,comm_ns,bytes,msgs\n1,2,1000,2000,7,3\n"
	if b.String() != want {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := New()
	s := tr.Summarize()
	if s.Rounds != 0 || s.Compute != 0 || s.Comm != 0 {
		t.Fatalf("summary of empty trace: %+v", s)
	}
	if len(tr.Rounds()) != 0 {
		t.Fatal("rounds of empty trace")
	}
}
