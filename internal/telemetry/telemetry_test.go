package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewEnabled(0)
	c := reg.Counter("test_total")
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	if got := reg.Snapshot().Counter("test_total"); got != goroutines*per {
		t.Fatalf("snapshot counter = %d, want %d", got, goroutines*per)
	}
}

func TestCounterSharedByName(t *testing.T) {
	reg := NewEnabled(0)
	a := reg.Counter("same")
	b := reg.Counter("same")
	if a != b {
		t.Fatal("same name should return the same counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewEnabled(0)
	h := reg.Histogram("sizes")
	for _, v := range []int64{0, 1, 2, 3, 4, 64, 65, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 0+1+2+3+4+64+65+1<<20 {
		t.Fatalf("sum = %d", h.Sum())
	}
	hs := reg.Snapshot().Hist("sizes")
	wantBuckets := map[int]int64{
		0:  1, // 0
		1:  1, // 1
		2:  2, // 2, 3
		3:  1, // 4
		7:  2, // 64, 65
		21: 1, // 1<<20
	}
	for i, n := range hs.Buckets {
		if n != wantBuckets[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, wantBuckets[i])
		}
	}
	if q := hs.Quantile(0.99); q < 1<<20 {
		t.Fatalf("p99 = %d, want ≥ 1<<20", q)
	}
}

func TestDisabledAndNilAreNoops(t *testing.T) {
	t.Setenv(EnvDisable, "1")
	reg := New(3)
	if reg.Enabled() {
		t.Fatal("LCI_NO_TELEMETRY should disable the registry")
	}
	c := reg.Counter("x")
	c.Add(5) // nil counter: must not panic
	h := reg.Histogram("y")
	h.Observe(7)
	reg.CounterFunc("z", func() int64 { return 1 })
	reg.GaugeFunc("g", AggSum, func() int64 { return 1 })
	s := reg.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Hists) != 0 {
		t.Fatalf("disabled snapshot not empty: %+v", s)
	}
	if s.Rank != 3 {
		t.Fatalf("rank = %d, want 3", s.Rank)
	}
	var nilReg *Registry
	nilReg.Counter("x").Inc()
	nilReg.Histogram("y").Observe(1)
	if nilReg.Snapshot().Counter("x") != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestCounterFuncAndGaugeAggregation(t *testing.T) {
	reg := NewEnabled(0)
	reg.CounterFunc("dual_total", func() int64 { return 10 })
	reg.CounterFunc("dual_total", func() int64 { return 32 })
	reg.GaugeFunc("depth", AggSum, func() int64 { return 4 })
	reg.GaugeFunc("depth", AggSum, func() int64 { return 6 })
	reg.GaugeFunc("rtt", AggMax, func() int64 { return 100 })
	reg.GaugeFunc("rtt", AggMax, func() int64 { return 250 })
	s := reg.Snapshot()
	if s.Counter("dual_total") != 42 {
		t.Fatalf("counter funcs should sum, got %d", s.Counter("dual_total"))
	}
	if s.Gauge("depth") != 10 {
		t.Fatalf("sum gauge = %d, want 10", s.Gauge("depth"))
	}
	if s.Gauge("rtt") != 250 {
		t.Fatalf("max gauge = %d, want 250", s.Gauge("rtt"))
	}
}

func TestMerge(t *testing.T) {
	mk := func(rank int, frames int64, depth, rtt int64, sizes ...int64) *Snapshot {
		reg := NewEnabled(rank)
		reg.CounterFunc("frames_total", func() int64 { return frames })
		reg.GaugeFunc("depth", AggSum, func() int64 { return depth })
		reg.GaugeFunc("rtt", AggMax, func() int64 { return rtt })
		h := reg.Histogram("sizes")
		for _, v := range sizes {
			h.Observe(v)
		}
		return reg.Snapshot()
	}
	m := Merge(mk(0, 100, 5, 30, 64), mk(1, 50, 7, 90, 64, 128), nil)
	if m.Ranks != 2 || m.Rank != 0 {
		t.Fatalf("ranks = %d/%d, want 2 merged, lowest rank 0", m.Ranks, m.Rank)
	}
	if m.Counter("frames_total") != 150 {
		t.Fatalf("merged counter = %d", m.Counter("frames_total"))
	}
	if m.Gauge("depth") != 12 {
		t.Fatalf("merged sum gauge = %d", m.Gauge("depth"))
	}
	if m.Gauge("rtt") != 90 {
		t.Fatalf("merged max gauge = %d", m.Gauge("rtt"))
	}
	h := m.Hist("sizes")
	if h.Count != 3 || h.Sum != 64+64+128 {
		t.Fatalf("merged hist = %+v", h)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewEnabled(2)
	reg.Counter(`lci_core_rx_packets_total{proto="egr"}`).Add(9)
	reg.Histogram("sizes").Observe(64)
	reg.GaugeFunc("pool_free", AggSum, func() int64 { return 17 })
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter(`lci_core_rx_packets_total{proto="egr"}`) != 9 {
		t.Fatalf("round trip lost counter: %s", data)
	}
	if back.Gauge("pool_free") != 17 || back.Hist("sizes").Count != 1 {
		t.Fatalf("round trip lost gauge/hist: %s", data)
	}
}

func TestPrometheusFormat(t *testing.T) {
	reg := NewEnabled(0)
	reg.Counter(`rx_total{proto="egr"}`).Add(3)
	reg.Counter(`rx_total{proto="rts"}`).Add(1)
	reg.GaugeFunc("pool_free", AggSum, func() int64 { return 12 })
	reg.Histogram(`msg_bytes{layer="lci"}`).Observe(64)
	out := reg.Snapshot().Prometheus()

	for _, want := range []string{
		"# TYPE rx_total counter\n",
		`rx_total{proto="egr"} 3` + "\n",
		`rx_total{proto="rts"} 1` + "\n",
		"# TYPE pool_free gauge\npool_free 12\n",
		"# TYPE msg_bytes histogram\n",
		`msg_bytes_bucket{layer="lci",le="127"} 1` + "\n",
		`msg_bytes_bucket{layer="lci",le="+Inf"} 1` + "\n",
		`msg_bytes_sum{layer="lci"} 64` + "\n",
		`msg_bytes_count{layer="lci"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE rx_total") != 1 {
		t.Fatalf("family header should appear once:\n%s", out)
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewEnabled(0)
	reg.Counter("hits_total").Add(2)
	h := Handler(reg, func() (*Snapshot, error) { return reg.Snapshot(), nil })
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, tc := range []struct{ path, want string }{
		{"/metrics", "# TYPE hits_total counter"},
		{"/metrics.json", `"hits_total": 2`},
		{"/cluster.json", `"hits_total": 2`},
		{"/debug/pprof/", "profiles"},
	} {
		resp, err := srv.Client().Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 || !strings.Contains(string(body), tc.want) {
			t.Fatalf("%s: status %d, body %q (want substring %q)",
				tc.path, resp.StatusCode, truncate(string(body), 200), tc.want)
		}
	}
}

func TestReportMentionsEverything(t *testing.T) {
	reg := NewEnabled(0)
	reg.Counter("a_total").Add(1)
	reg.GaugeFunc("g", AggMax, func() int64 { return 5 })
	reg.Histogram("h").Observe(100)
	rep := reg.Snapshot().Report()
	for _, want := range []string{"a_total", "g", "h", "n=1"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestCounterAddDoesNotAllocate guards the hot path: a counter add or a
// histogram observe must not allocate (the stack-address shard trick must
// not force the probe byte to escape).
func TestCounterAddDoesNotAllocate(t *testing.T) {
	reg := NewEnabled(0)
	c := reg.Counter("x")
	h := reg.Histogram("y")
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %.1f times per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(64) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f times per op", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewEnabled(0).Counter("bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	c := NewDisabled(0).Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewEnabled(0).Histogram("bench_bytes")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(64)
		}
	})
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
