package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves a registry over HTTP (the lci-launch -metrics-addr
// endpoint):
//
//	/metrics       Prometheus text format (this rank)
//	/metrics.json  JSON snapshot (this rank)
//	/cluster.json  merged all-rank JSON snapshot (when cluster is non-nil;
//	               rank 0 scrapes its peers' /metrics.json on demand)
//	/cluster       merged all-rank Prometheus text (same condition)
//	/debug/pprof/  the standard Go profiler endpoints
//
// cluster may be nil (non-root ranks, or aggregation unavailable).
func Handler(reg *Registry, cluster func() (*Snapshot, error)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(reg.Snapshot().Prometheus()))
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, reg.Snapshot())
	})
	if cluster != nil {
		mux.HandleFunc("/cluster.json", func(w http.ResponseWriter, _ *http.Request) {
			snap, err := cluster()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			writeJSON(w, snap)
		})
		mux.HandleFunc("/cluster", func(w http.ResponseWriter, _ *http.Request) {
			snap, err := cluster()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write([]byte(snap.Prometheus()))
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
