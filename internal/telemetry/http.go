package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	runtimepprof "runtime/pprof"
	"sync/atomic"
	"time"
)

// Handler serves a registry over HTTP (the lci-launch -metrics-addr
// endpoint):
//
//	/metrics       Prometheus text format (this rank)
//	/metrics.json  JSON snapshot (this rank)
//	/cluster.json  merged all-rank JSON snapshot (when cluster is non-nil;
//	               rank 0 scrapes its peers' /metrics.json on demand)
//	/cluster       merged all-rank Prometheus text (same condition)
//	/debug/pprof/  the standard Go profiler endpoints
//
// cluster may be nil (non-root ranks, or aggregation unavailable).
func Handler(reg *Registry, cluster func() (*Snapshot, error)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(reg.Snapshot().Prometheus()))
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, reg.Snapshot())
	})
	if cluster != nil {
		mux.HandleFunc("/cluster.json", func(w http.ResponseWriter, _ *http.Request) {
			snap, err := cluster()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			writeJSON(w, snap)
		})
		mux.HandleFunc("/cluster", func(w http.ResponseWriter, _ *http.Request) {
			snap, err := cluster()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write([]byte(snap.Prometheus()))
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/stacks", ServeStacks)
	return mux
}

// stacksLastNs is the last time /debug/stacks served a dump (UnixNano),
// shared across handlers so the rate limit is process-wide.
var stacksLastNs atomic.Int64

// ServeStacks is the /debug/stacks handler: the full goroutine dump in
// debug=2 text form — every goroutine with its complete stack, the thing an
// operator wants first when a rank looks wedged. Walking every goroutine
// stops the world, so the endpoint rate-limits itself to one dump per
// second process-wide and answers 429 with Retry-After otherwise; a polling
// dashboard pointed at it by mistake cannot turn the debug port into a
// denial of service.
func ServeStacks(w http.ResponseWriter, _ *http.Request) {
	const minGap = time.Second
	for {
		last := stacksLastNs.Load()
		now := time.Now().UnixNano()
		if now-last < minGap.Nanoseconds() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "stack dumps are rate-limited to 1/s", http.StatusTooManyRequests)
			return
		}
		if stacksLastNs.CompareAndSwap(last, now) {
			break
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	runtimepprof.Lookup("goroutine").WriteTo(w, 2)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
