package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4): `# TYPE` headers per metric family, counter/gauge sample
// lines, and canonical histogram series (<name>_bucket{le=...}, _sum,
// _count). Metric names in the registry carry their labels inline
// (`base{k="v"}`); splitName separates the family from the label set so
// families with several label values share one TYPE header and histogram
// bucket labels splice in cleanly.

// splitName splits `base{k="v",...}` into the family name and the label
// body (without braces, empty when unlabeled).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels renders a label body (possibly empty) plus extra labels as the
// final {...} suffix, or "" when both are empty.
func joinLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

// Prometheus renders the snapshot in the text exposition format. Families
// are emitted in sorted order so output is stable for tests and diffing.
func (s *Snapshot) Prometheus() string {
	var b strings.Builder

	type sample struct{ name, labels string }
	group := func(names map[string]bool) (families []string, byFamily map[string][]sample) {
		byFamily = map[string][]sample{}
		for name := range names {
			base, labels := splitName(name)
			byFamily[base] = append(byFamily[base], sample{name, labels})
		}
		for base, ss := range byFamily {
			sort.Slice(ss, func(i, j int) bool { return ss[i].name < ss[j].name })
			byFamily[base] = ss
			families = append(families, base)
		}
		sort.Strings(families)
		return
	}

	counterNames := map[string]bool{}
	for name := range s.Counters {
		counterNames[name] = true
	}
	families, byFamily := group(counterNames)
	for _, fam := range families {
		fmt.Fprintf(&b, "# TYPE %s counter\n", fam)
		for _, smp := range byFamily[fam] {
			fmt.Fprintf(&b, "%s%s %d\n", fam, joinLabels(smp.labels, ""), s.Counters[smp.name])
		}
	}

	gaugeNames := map[string]bool{}
	for name := range s.Gauges {
		gaugeNames[name] = true
	}
	families, byFamily = group(gaugeNames)
	for _, fam := range families {
		fmt.Fprintf(&b, "# TYPE %s gauge\n", fam)
		for _, smp := range byFamily[fam] {
			fmt.Fprintf(&b, "%s%s %d\n", fam, joinLabels(smp.labels, ""), s.Gauges[smp.name].Value)
		}
	}

	histNames := map[string]bool{}
	for name := range s.Hists {
		histNames[name] = true
	}
	families, byFamily = group(histNames)
	for _, fam := range families {
		fmt.Fprintf(&b, "# TYPE %s histogram\n", fam)
		for _, smp := range byFamily[fam] {
			h := s.Hists[smp.name]
			var cum int64
			for i, n := range h.Buckets {
				cum += n
				if n == 0 && i != NumBuckets-1 {
					continue // sparse output: only emit occupied buckets (plus +Inf)
				}
				le := fmt.Sprintf("%d", BucketHigh(i))
				fmt.Fprintf(&b, "%s_bucket%s %d\n", fam, joinLabels(smp.labels, `le="`+le+`"`), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", fam, joinLabels(smp.labels, `le="+Inf"`), h.Count)
			fmt.Fprintf(&b, "%s_sum%s %d\n", fam, joinLabels(smp.labels, ""), h.Sum)
			fmt.Fprintf(&b, "%s_count%s %d\n", fam, joinLabels(smp.labels, ""), h.Count)
		}
	}
	return b.String()
}
