package telemetry

import (
	"math"
	"sort"
	"testing"
)

// exactQuantile computes the true q-quantile of vals (0-indexed fractional
// rank, linear interpolation between order statistics) — the reference the
// bucket estimate is pinned against.
func exactQuantile(vals []int64, q float64) float64 {
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	r := q * float64(len(s)-1)
	lo := int(math.Floor(r))
	hi := int(math.Ceil(r))
	if hi >= len(s) {
		hi = len(s) - 1
	}
	frac := r - float64(lo)
	return float64(s[lo]) + frac*float64(s[hi]-s[lo])
}

// histOf builds a HistSnap from raw observations.
func histOf(vals []int64) HistSnap {
	h := HistSnap{Buckets: make([]int64, NumBuckets)}
	for _, v := range vals {
		h.Buckets[BucketOf(v)]++
		h.Count++
		h.Sum += v
	}
	return h
}

// TestQuantileInterpolation pins the interpolated estimate against exact
// quantiles of known distributions. The estimator assumes observations are
// uniform within a bucket, so for distributions that actually fill their
// buckets uniformly the error must be small relative to the bucket span —
// far tighter than the old upper-bound-only estimate, which always returned
// BucketHigh of the selected bucket.
func TestQuantileInterpolation(t *testing.T) {
	// 1..1023 fills buckets 1..10 exactly uniformly.
	uniform := make([]int64, 0, 1023)
	for v := int64(1); v <= 1023; v++ {
		uniform = append(uniform, v)
	}
	cases := []struct {
		name string
		vals []int64
		q    float64
		tol  float64 // allowed |estimate - exact|
	}{
		{"uniform-p50", uniform, 0.50, 2},
		{"uniform-p90", uniform, 0.90, 6},
		{"uniform-p99", uniform, 0.99, 6},
		{"uniform-p10", uniform, 0.10, 2},
		// 1..16: small count, spans buckets 1..5.
		{"small-p50", []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 0.50, 1.5},
		// All mass in one bucket: estimate must land inside [512, 1023],
		// near the span midpoint region the ranks select.
		{"onebucket-p50", []int64{600, 700, 800, 900}, 0.50, 256},
	}
	for _, tc := range cases {
		h := histOf(tc.vals)
		got := h.Quantile(tc.q)
		want := exactQuantile(tc.vals, tc.q)
		if math.Abs(float64(got)-want) > tc.tol {
			t.Errorf("%s: Quantile(%.2f) = %d, exact %.1f, tol %.1f",
				tc.name, tc.q, got, want, tc.tol)
		}
	}
}

// TestQuantileBeatsUpperBound: on a uniform fill the interpolated estimate
// must be strictly better than the old bucket-upper-bound answer for a
// mid-bucket quantile.
func TestQuantileBeatsUpperBound(t *testing.T) {
	vals := make([]int64, 0, 512)
	for v := int64(512); v < 1024; v++ {
		vals = append(vals, v) // all in bucket 10: [512, 1023]
	}
	h := histOf(vals)
	got := h.Quantile(0.25)
	exact := exactQuantile(vals, 0.25)
	oldErr := math.Abs(float64(BucketHigh(10)) - exact) // 1023 - 639.75
	newErr := math.Abs(float64(got) - exact)
	if newErr >= oldErr {
		t.Fatalf("interpolated p25 = %d (err %.1f) not better than upper bound 1023 (err %.1f)",
			got, newErr, oldErr)
	}
	if newErr > 2 {
		t.Fatalf("interpolated p25 = %d, exact %.2f: error %.1f too large for a uniform bucket",
			got, exact, newErr)
	}
}

// TestQuantileEdges covers the degenerate shapes detectors hit in practice.
func TestQuantileEdges(t *testing.T) {
	var empty HistSnap
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
	zeros := histOf([]int64{0, 0, 0})
	if got := zeros.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero Quantile = %d, want 0", got)
	}
	one := histOf([]int64{100}) // bucket 7: [64, 127]
	got := one.Quantile(0.99)
	if got < 64 || got > 127 {
		t.Fatalf("single-observation Quantile = %d, want within its bucket [64,127]", got)
	}
	// Out-of-range q clamps instead of panicking.
	if got := one.Quantile(-0.5); got < 64 || got > 127 {
		t.Fatalf("Quantile(-0.5) = %d, want clamped into bucket", got)
	}
	if got := one.Quantile(1.5); got < 64 || got > 127 {
		t.Fatalf("Quantile(1.5) = %d, want clamped into bucket", got)
	}
}

// TestQuantileMonotone: estimates must never decrease as q increases, even
// across bucket boundaries (hysteresis in the SLO detectors depends on it).
func TestQuantileMonotone(t *testing.T) {
	h := histOf([]int64{1, 3, 3, 7, 20, 20, 100, 1000, 4096, 4097})
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%.2f) = %d < previous %d", q, got, prev)
		}
		prev = got
	}
}

// TestMergeShardLabeledSeries: PR 8 splices shard="i" labels into core
// metric names; merging rank snapshots must sum per exact series name and
// never fold differently-labeled shards together.
func TestMergeShardLabeledSeries(t *testing.T) {
	busy := func(shard int) string {
		return map[int]string{
			0: `lci_core_progress_polls_total{state="busy",shard="0"}`,
			1: `lci_core_progress_polls_total{state="busy",shard="1"}`,
		}[shard]
	}
	r0 := NewEnabled(0)
	r0.Counter(busy(0)).Add(10)
	r0.Counter(busy(1)).Add(20)
	r1 := NewEnabled(1)
	r1.Counter(busy(0)).Add(1)
	r1.Counter(busy(1)).Add(2)

	m := Merge(r0.Snapshot(), r1.Snapshot())
	if got := m.Counter(busy(0)); got != 11 {
		t.Fatalf("shard 0 merged = %d, want 11", got)
	}
	if got := m.Counter(busy(1)); got != 22 {
		t.Fatalf("shard 1 merged = %d, want 22", got)
	}
	if m.Ranks != 2 {
		t.Fatalf("ranks = %d, want 2", m.Ranks)
	}
	// The unlabeled base name must not appear: labels are part of identity.
	if _, ok := m.Counters[`lci_core_progress_polls_total{state="busy"}`]; ok {
		t.Fatal("merge invented an unlabeled series from labeled shards")
	}
}

// TestMergeGaugeAggAcrossRanks: sum gauges (pool occupancy) add across
// ranks, max gauges (RTO estimates) keep the worst, and a gauge present on
// only some ranks merges from those that have it.
func TestMergeGaugeAggAcrossRanks(t *testing.T) {
	mk := func(rank int, free, rto int64, withRTO bool) *Snapshot {
		r := NewEnabled(rank)
		r.GaugeFunc("lci_core_pool_free", AggSum, func() int64 { return free })
		if withRTO {
			r.GaugeFunc("lci_fabric_rto_ns", AggMax, func() int64 { return rto })
		}
		return r.Snapshot()
	}
	m := Merge(
		mk(0, 100, 5_000_000, true),
		mk(1, 50, 9_000_000, true),
		mk(2, 25, 0, false),
		nil, // a lost gather contribution is skipped
	)
	if got := m.Gauge("lci_core_pool_free"); got != 175 {
		t.Fatalf("sum gauge = %d, want 175", got)
	}
	if g := m.Gauges["lci_core_pool_free"]; g.Agg != "sum" {
		t.Fatalf("sum gauge mode = %q", g.Agg)
	}
	if got := m.Gauge("lci_fabric_rto_ns"); got != 9_000_000 {
		t.Fatalf("max gauge = %d, want 9000000", got)
	}
	if g := m.Gauges["lci_fabric_rto_ns"]; g.Agg != "max" {
		t.Fatalf("max gauge mode = %q", g.Agg)
	}
	if m.Ranks != 3 {
		t.Fatalf("ranks = %d, want 3", m.Ranks)
	}
}

// TestMergeShardLabeledHistograms: shard-labeled histograms keep separate
// series too, with per-bucket sums.
func TestMergeShardLabeledHistograms(t *testing.T) {
	name := `lci_core_msg_bytes{shard="1"}`
	r0 := NewEnabled(0)
	r0.Histogram(name).Observe(64)
	r1 := NewEnabled(1)
	r1.Histogram(name).Observe(64)
	r1.Histogram(name).Observe(1024)

	m := Merge(r0.Snapshot(), r1.Snapshot())
	h := m.Hist(name)
	if h.Count != 3 || h.Sum != 64+64+1024 {
		t.Fatalf("merged hist count=%d sum=%d", h.Count, h.Sum)
	}
	if h.Buckets[BucketOf(64)] != 2 || h.Buckets[BucketOf(1024)] != 1 {
		t.Fatalf("merged buckets wrong: %v", h.Buckets[:12])
	}
}

// TestQuantileExtremes pins q=0 and q=1: the minimum estimate must land at
// the lower bound of the lowest occupied bucket and the maximum at the
// upper bound of the highest occupied one — lci-incident's report prints
// both ends of the latency distribution and must not invent values outside
// the observed bucket range.
func TestQuantileExtremes(t *testing.T) {
	h := histOf([]int64{5, 6, 7, 100, 100, 3000}) // buckets 3 [4,7], 7 [64,127], 12 [2048,4095]
	if got := h.Quantile(0); got != 4 {
		t.Fatalf("Quantile(0) = %d, want 4 (lower bound of lowest occupied bucket)", got)
	}
	if got := h.Quantile(1); got != BucketHigh(12) {
		t.Fatalf("Quantile(1) = %d, want %d (upper bound of highest occupied bucket)", got, BucketHigh(12))
	}
	// Every intermediate q stays inside the occupied range.
	for q := 0.0; q <= 1.0; q += 0.05 {
		if got := h.Quantile(q); got < 4 || got > BucketHigh(12) {
			t.Fatalf("Quantile(%.2f) = %d escapes the occupied bucket range [4,%d]", q, got, BucketHigh(12))
		}
	}
}

// TestQuantileSingleBucket: with all mass in one bucket every quantile must
// stay inside that bucket's span and remain monotone in q.
func TestQuantileSingleBucket(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = 512 + int64(i) // all in bucket 10: [512, 1023]
	}
	h := histOf(vals)
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.1 {
		got := h.Quantile(q)
		if got < 512 || got > 1023 {
			t.Fatalf("single-bucket Quantile(%.1f) = %d, want within [512,1023]", q, got)
		}
		if got < prev {
			t.Fatalf("single-bucket Quantile(%.1f) = %d < previous %d", q, got, prev)
		}
		prev = got
	}
	if got := h.Quantile(0); got != 512 {
		t.Fatalf("single-bucket Quantile(0) = %d, want 512", got)
	}
	if got := h.Quantile(1); got != 1023 {
		t.Fatalf("single-bucket Quantile(1) = %d, want 1023", got)
	}
}

// TestMergeDisjointMetricSets: ranks running different subsystems (a serve
// coordinator vs a worker, or a rank whose evidence predates a metric's
// first use) contribute disjoint metric names; the merge must keep every
// series with its own value and aggregation mode, not drop or cross-wire
// them. lci-incident diff merges per-rank evidence snapshots exactly this
// way.
func TestMergeDisjointMetricSets(t *testing.T) {
	r0 := NewEnabled(0)
	r0.Counter("only_rank0_total").Add(5)
	r0.GaugeFunc("only_rank0_depth", AggMax, func() int64 { return 3 })
	r0.Histogram("only_rank0_bytes").Observe(64)
	r1 := NewEnabled(1)
	r1.Counter("only_rank1_total").Add(7)
	r1.GaugeFunc("only_rank1_free", AggSum, func() int64 { return 2 })
	r1.Histogram("only_rank1_bytes").Observe(128)

	m := Merge(r0.Snapshot(), r1.Snapshot())
	if m.Ranks != 2 {
		t.Fatalf("ranks = %d, want 2", m.Ranks)
	}
	if got := m.Counter("only_rank0_total"); got != 5 {
		t.Fatalf("rank-0-only counter = %d, want 5", got)
	}
	if got := m.Counter("only_rank1_total"); got != 7 {
		t.Fatalf("rank-1-only counter = %d, want 7", got)
	}
	if got := m.Gauge("only_rank0_depth"); got != 3 {
		t.Fatalf("rank-0-only gauge = %d, want 3", got)
	}
	if g := m.Gauges["only_rank0_depth"]; g.Agg != "max" {
		t.Fatalf("rank-0-only gauge kept agg %q, want max", g.Agg)
	}
	if got := m.Gauge("only_rank1_free"); got != 2 {
		t.Fatalf("rank-1-only gauge = %d, want 2", got)
	}
	if h := m.Hist("only_rank0_bytes"); h.Count != 1 || h.Sum != 64 {
		t.Fatalf("rank-0-only hist = %+v", h)
	}
	if h := m.Hist("only_rank1_bytes"); h.Count != 1 || h.Sum != 128 {
		t.Fatalf("rank-1-only hist = %+v", h)
	}
	// No series leaked into a name it was never registered under.
	if _, ok := m.Counters["only_rank0_bytes"]; ok {
		t.Fatal("histogram leaked into the counter map")
	}
}
