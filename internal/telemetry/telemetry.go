// Package telemetry is the runtime's observability subsystem: a registry of
// sharded atomic counters, callback-backed gauges, and power-of-two-bucket
// histograms, cheap enough to leave enabled on the message hot path
// (BENCH_datapath.json carries the telemetry-on vs -off ablation).
//
// The design follows the paper's needs (DESIGN.md §11): the evaluation's
// signals — per-protocol packet counts, packet-pool occupancy, progress-loop
// utilization, message-size distributions — are all either monotone counts
// (Counter / CounterFunc), instantaneous levels sampled at snapshot time
// (GaugeFunc), or distributions (Histogram).
//
// Hot-path cost model:
//
//   - Counter.Add is one uncontended atomic add; the counter is sharded
//     across cache-line-padded cells indexed by the caller's stack address,
//     so concurrent writers from different goroutines rarely collide.
//   - Histogram.Observe is two atomic adds (bucket + sum) and a bits.Len64.
//   - Gauges cost nothing until a snapshot is taken: they are closures over
//     existing state (pool free counts, queue lengths, flow RTT estimates).
//   - A disabled registry (LCI_NO_TELEMETRY, or NewDisabled) hands out nil
//     metrics; every method is a no-op on a nil receiver, so the disabled
//     hot path pays one predictable branch.
//
// Snapshots (snapshot.go) are point-in-time copies that marshal to JSON,
// merge across ranks, and render in Prometheus text format (prom.go).
package telemetry

import (
	"math/bits"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"unsafe"
)

// EnvDisable turns the whole subsystem off when set (any non-empty value):
// New returns a disabled registry whose metrics are nil no-ops.
const EnvDisable = "LCI_NO_TELEMETRY"

// EnvRank names the rank environment variable the default registry reads
// (set by cmd/lci-launch for worker processes).
const EnvRank = "LCI_RANK"

// numShards is the counter shard count (power of two). 16 shards × 64 B is
// 1 KiB per counter — counters are few and long-lived, so the padding is
// cheap insurance against false sharing between writer threads.
const numShards = 16

type shard struct {
	v atomic.Int64
	_ [56]byte // pad to a cache line so shards never share one
}

// shardIdx picks a shard from the caller's stack address. Distinct
// goroutines live on distinct stacks, so concurrent writers spread across
// shards without thread-local state or a hashed goroutine id; the same
// goroutine maps to a stable shard (modulo stack growth), which keeps its
// counter cell cache-hot.
func shardIdx() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (numShards - 1)
}

// Counter is a monotone counter sharded across padded atomic cells. The
// zero value is NOT usable — obtain counters from a Registry. A nil counter
// (from a disabled registry) no-ops.
type Counter struct {
	shards [numShards]shard
}

// Add increments the counter by v.
func (c *Counter) Add(v int64) {
	if c == nil {
		return
	}
	c.shards[shardIdx()].v.Add(v)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. It is linearizable only when writers are quiescent;
// for live reads it is a racy-but-monotone estimate, which is all snapshots
// and per-round deltas need.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var s int64
	for i := range c.shards {
		s += c.shards[i].v.Load()
	}
	return s
}

// NumBuckets is the histogram bucket count: bucket 0 holds v ≤ 0, bucket i
// (1..64) holds values with bit length i, i.e. 2^(i-1) ≤ v < 2^i.
const NumBuckets = 65

// BucketOf returns the bucket index for an observation.
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketHigh returns the largest value bucket i holds (its inclusive upper
// bound; 0 for bucket 0).
func BucketHigh(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return 1<<63 - 1
	}
	return 1<<uint(i) - 1
}

// Histogram is a power-of-two-bucket histogram. Observe is two atomic adds;
// Count and Sum double as the "messages" and "bytes" counters for size
// histograms, so instrumenting a message costs one Observe, not three
// metric updates. A nil histogram no-ops.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[BucketOf(v)].Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Agg says how a gauge aggregates across duplicate registrations and across
// ranks when snapshots merge.
type Agg uint8

const (
	// AggSum adds gauge values (pool free counts, queue depths).
	AggSum Agg = iota
	// AggMax keeps the worst value (per-flow SRTT/RTO estimates).
	AggMax
)

func (a Agg) String() string {
	if a == AggMax {
		return "max"
	}
	return "sum"
}

type gaugeEntry struct {
	agg Agg
	fns []func() int64
}

// Registry owns a namespace of metrics. Metric names are Prometheus-style:
// a base name plus optional inline labels, e.g.
// `lci_core_rx_packets_total{proto="egr"}`. Lookup is get-or-create, so two
// components naming the same metric share one instance; duplicate
// CounterFunc/GaugeFunc registrations accumulate and aggregate (sum for
// counter funcs, the gauge's Agg for gauges) — several endpoints in one
// process registering the same stat is well defined.
//
// A nil or disabled registry hands out nil metrics and empty snapshots.
type Registry struct {
	rank     int
	disabled bool

	mu         sync.Mutex
	counters   map[string]*Counter
	hists      map[string]*Histogram
	counterFns map[string][]func() int64
	gauges     map[string]*gaugeEntry
}

// New returns a registry for rank, honoring the LCI_NO_TELEMETRY knob.
func New(rank int) *Registry {
	if os.Getenv(EnvDisable) != "" {
		return NewDisabled(rank)
	}
	return NewEnabled(rank)
}

// NewEnabled returns a live registry regardless of environment (used by the
// overhead ablation's "on" arm).
func NewEnabled(rank int) *Registry {
	return &Registry{
		rank:       rank,
		counters:   map[string]*Counter{},
		hists:      map[string]*Histogram{},
		counterFns: map[string][]func() int64{},
		gauges:     map[string]*gaugeEntry{},
	}
}

// NewDisabled returns a registry whose metrics are nil no-ops (the ablation
// baseline and the LCI_NO_TELEMETRY path).
func NewDisabled(rank int) *Registry {
	return &Registry{rank: rank, disabled: true}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry, created on first use with the
// rank from LCI_RANK (0 outside launcher-spawned processes) and the
// LCI_NO_TELEMETRY knob applied. Components fall back to it when no
// registry is wired explicitly.
func Default() *Registry {
	defaultOnce.Do(func() {
		rank, _ := strconv.Atoi(os.Getenv(EnvRank))
		defaultReg = New(rank)
	})
	return defaultReg
}

// Rank returns the registry's rank.
func (r *Registry) Rank() int {
	if r == nil {
		return 0
	}
	return r.rank
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil && !r.disabled }

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) on a disabled registry.
func (r *Registry) Counter(name string) *Counter {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil (a no-op histogram) on a disabled registry.
func (r *Registry) Histogram(name string) *Histogram {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers a callback re-expressing an existing counter (e.g. a
// fabric.Stats field backed by its own atomic) as a registry metric: no
// second count is maintained on the hot path; the callback is read at
// snapshot time. Multiple registrations under one name sum.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if !r.Enabled() || fn == nil {
		return
	}
	r.mu.Lock()
	r.counterFns[name] = append(r.counterFns[name], fn)
	r.mu.Unlock()
}

// GaugeFunc registers a callback sampled at snapshot time (an instantaneous
// level: pool occupancy, queue depth, SRTT). Multiple registrations under
// one name aggregate with agg; the first registration fixes the mode.
func (r *Registry) GaugeFunc(name string, agg Agg, fn func() int64) {
	if !r.Enabled() || fn == nil {
		return
	}
	r.mu.Lock()
	g, ok := r.gauges[name]
	if !ok {
		g = &gaugeEntry{agg: agg}
		r.gauges[name] = g
	}
	g.fns = append(g.fns, fn)
	r.mu.Unlock()
}
