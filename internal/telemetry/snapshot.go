package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// GaugeSnap is one gauge's sampled value plus its cross-rank aggregation
// mode, kept in the snapshot so merging stays self-describing.
type GaugeSnap struct {
	Value int64  `json:"value"`
	Agg   string `json:"agg"`
}

// HistSnap is one histogram's frozen state. Buckets[i] counts observations
// with BucketOf(v) == i (power-of-two buckets).
type HistSnap struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets"`
}

// Avg returns the mean observation (0 when empty).
func (h HistSnap) Avg() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile (0..1) from the buckets. The bucket
// containing the target rank is located by cumulative count, then the value
// is interpolated linearly inside that bucket's [low, high] span assuming
// observations spread uniformly within it. Power-of-two buckets double in
// width, so the worst-case error is half the selected bucket's span —
// against the previous upper-bound-only estimate this roughly halves the
// quantization, which matters for SLO thresholds sitting inside wide
// high-latency buckets. The estimate is monotone in q.
func (h HistSnap) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Target position in the cumulative mass [0, Count]: the value at
	// cumulative fraction q. Bucket i covers cumulative [seen, seen+n);
	// inside it the value rises linearly from lo to hi.
	r := q * float64(h.Count)
	var seen int64
	last := 0
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		last = i
		if float64(seen+n) > r {
			if i == 0 {
				return 0 // bucket 0 holds v ≤ 0 only
			}
			lo := BucketHigh(i-1) + 1
			hi := BucketHigh(i)
			p := (r - float64(seen)) / float64(n)
			if p < 0 {
				p = 0
			} else if p > 1 {
				p = 1
			}
			return lo + int64(p*float64(hi-lo)+0.5)
		}
		seen += n
	}
	// q == 1 (or float round-up past the last bucket): the maximum's bucket
	// upper bound.
	return BucketHigh(last)
}

// Snapshot is a point-in-time copy of a registry (or a merge of several
// ranks' copies). It marshals to JSON as-is and renders to Prometheus text
// format with Prometheus().
type Snapshot struct {
	Rank     int                  `json:"rank"`  // producing rank (lowest rank after a merge)
	Ranks    int                  `json:"ranks"` // number of merged rank snapshots
	Counters map[string]int64     `json:"counters"`
	Gauges   map[string]GaugeSnap `json:"gauges"`
	Hists    map[string]HistSnap  `json:"histograms"`
}

func emptySnapshot(rank int) *Snapshot {
	return &Snapshot{
		Rank:     rank,
		Ranks:    1,
		Counters: map[string]int64{},
		Gauges:   map[string]GaugeSnap{},
		Hists:    map[string]HistSnap{},
	}
}

// Snapshot freezes the registry: live counters and histograms are summed
// out of their shards, counter funcs are invoked and summed per name, and
// gauges are sampled and aggregated per their mode.
func (r *Registry) Snapshot() *Snapshot {
	s := emptySnapshot(r.Rank())
	if !r.Enabled() {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] += c.Value()
	}
	for name, fns := range r.counterFns {
		for _, fn := range fns {
			s.Counters[name] += fn()
		}
	}
	for name, g := range r.gauges {
		snap := GaugeSnap{Agg: g.agg.String()}
		for i, fn := range g.fns {
			v := fn()
			if i == 0 || g.agg == AggSum {
				if i == 0 {
					snap.Value = v
				} else {
					snap.Value += v
				}
			} else if v > snap.Value {
				snap.Value = v
			}
		}
		s.Gauges[name] = snap
	}
	for name, h := range r.hists {
		hs := HistSnap{Sum: h.Sum(), Buckets: make([]int64, NumBuckets)}
		for i := range h.buckets {
			n := h.buckets[i].Load()
			hs.Buckets[i] = n
			hs.Count += n
		}
		s.Hists[name] = hs
	}
	return s
}

// Merge folds snapshots from several ranks into one cluster-wide view:
// counters and histograms sum; gauges aggregate per their recorded mode.
// Nil snapshots are skipped (a rank whose gather contribution was lost).
func Merge(snaps ...*Snapshot) *Snapshot {
	out := emptySnapshot(0)
	out.Ranks = 0
	first := true
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if first || s.Rank < out.Rank {
			out.Rank = s.Rank
		}
		first = false
		out.Ranks += s.Ranks
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, g := range s.Gauges {
			cur, ok := out.Gauges[name]
			if !ok {
				out.Gauges[name] = g
				continue
			}
			if g.Agg == AggMax.String() {
				if g.Value > cur.Value {
					cur.Value = g.Value
				}
			} else {
				cur.Value += g.Value
			}
			out.Gauges[name] = cur
		}
		for name, h := range s.Hists {
			cur, ok := out.Hists[name]
			if !ok {
				cur = HistSnap{Buckets: make([]int64, NumBuckets)}
			}
			cur.Count += h.Count
			cur.Sum += h.Sum
			for i, n := range h.Buckets {
				if i < len(cur.Buckets) {
					cur.Buckets[i] += n
				}
			}
			out.Hists[name] = cur
		}
	}
	if out.Ranks == 0 {
		out.Ranks = 1
	}
	return out
}

// Counter returns a counter's value by name (0 when absent), for harnesses
// deriving legacy stat structs from a snapshot.
func (s *Snapshot) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// Gauge returns a gauge's sampled value by name (0 when absent).
func (s *Snapshot) Gauge(name string) int64 {
	if s == nil {
		return 0
	}
	return s.Gauges[name].Value
}

// Hist returns a histogram snapshot by name (zero value when absent).
func (s *Snapshot) Hist(name string) HistSnap {
	if s == nil {
		return HistSnap{}
	}
	return s.Hists[name]
}

// Report renders a human-readable summary: sorted non-zero counters and
// gauges, and per-histogram count/avg/p50/p99 lines — the cluster-wide exit
// report cmd/lci-launch prints.
func (s *Snapshot) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry: %d rank(s)\n", s.Ranks)
	names := make([]string, 0, len(s.Counters))
	for name, v := range s.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-52s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := s.Gauges[name]
		fmt.Fprintf(&b, "  %-52s %d (%s)\n", name, g.Value, g.Agg)
	}
	names = names[:0]
	for name := range s.Hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Hists[name]
		fmt.Fprintf(&b, "  %-52s n=%d avg=%.1f p50≈%d p99≈%d\n",
			name, h.Count, h.Avg(), h.Quantile(0.50), h.Quantile(0.99))
	}
	return b.String()
}
