//go:build unix

package tracing

import (
	"os"
	"os/signal"
	"syscall"
)

// NotifySIGQUIT installs a SIGQUIT handler that dumps the flight record
// before re-raising the signal, so the Go runtime's own goroutine dump (and
// process exit) still happen. No-op on a nil tracer; call at most once per
// process (cmd/lci-launch workers do).
func (t *Tracer) NotifySIGQUIT() {
	if t == nil {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		<-ch
		t.Dump(os.Stderr, "SIGQUIT")
		signal.Reset(syscall.SIGQUIT)
		_ = syscall.Kill(os.Getpid(), syscall.SIGQUIT)
	}()
}
