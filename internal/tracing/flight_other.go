//go:build !unix

package tracing

// NotifySIGQUIT is a no-op on platforms without SIGQUIT.
func (t *Tracer) NotifySIGQUIT() {}
