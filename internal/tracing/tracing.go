// Package tracing is the runtime's message-lifecycle tracer: a lock-free,
// per-goroutine-sharded ring buffer of typed events cheap enough to leave on
// (~tens of ns per event, fixed memory, overwrite-oldest), distinct from the
// per-round aggregate tracing in internal/trace.
//
// Each event carries the local rank, the peer rank, the wire protocol, a
// size, and a per-message id threaded through core.Request and the packet
// header (DESIGN.md §12), so the send-side and receive-side halves of one
// message correlate across ranks. Consumers are the flight recorder
// (flight.go), which dumps the last N events on SIGQUIT / close errors /
// stall detection, and the Chrome trace-event exporter (chrome.go), which
// renders per-rank timelines with cross-rank flow arrows.
//
// Hot-path cost model:
//
//   - Record is one time.Now(), one atomic fetch-add to claim a slot, and
//     four atomic word stores. Slots are claimed per goroutine-stack shard
//     (the telemetry shardIdx trick), so concurrent writers rarely contend.
//   - Slot words are atomics so a live dump (flight recorder, /debug/trace)
//     never races the writers; a dump concurrent with a wrapping writer can
//     observe one event torn across its words, which the consumers tolerate
//     (an implausible type or timestamp at worst — dumps of quiescent rings
//     are exact).
//   - A nil *Tracer no-ops every method, mirroring the LCI_NO_TELEMETRY
//     dark path: instrumentation sites pay one predictable branch when
//     tracing is off (the ablation in BENCH_datapath.json holds this to the
//     same ~3% budget as telemetry).
package tracing

import (
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// EnvEnable turns tracing on when set (opposite polarity to
// LCI_NO_TELEMETRY: tracing is opt-in because it records per-event, not
// aggregate, state). A numeric value sets the per-shard ring capacity in
// events; any other non-empty value selects the default capacity.
const EnvEnable = "LCI_TRACE"

// EnvRank names the rank environment variable the default tracer reads (set
// by cmd/lci-launch for worker processes).
const EnvRank = "LCI_RANK"

// EventType identifies one lifecycle stage of a message (or a runtime state
// transition). The zero value is reserved as "empty slot".
type EventType uint8

const (
	evInvalid EventType = iota

	// Queue-pair API surface (core endpoint).
	EvSendEnq // application enqueued a send; arg: 0=eager 1=rendezvous
	EvRecvDeq // application dequeued a completed receive

	// Eager protocol.
	EvEagerTx // eager packet handed to the fabric

	// Rendezvous protocol (RTS/RTR/RDMA-put or FRG fallback).
	EvRTSTx    // sender issued ready-to-send
	EvRTRTx    // receiver answered ready-to-receive
	EvRTRRx    // sender saw the RTR
	EvPutTx    // sender issued the RDMA put
	EvFrgStart // sender began FRG fragment streaming (no-RDMA fallback)
	EvFrgRx    // receiver absorbed a fragment; arg = offset

	// Completion.
	EvComplete // request's completion flag set; arg: 1=send 2=recv

	// Back-pressure and reliability.
	EvRetry       // ErrResource retry (outbox park or layer spin); arg = spins
	EvCreditStall // netfabric send refused: peer advertises zero credits
	EvRetransmit  // netfabric retransmitted a data packet; arg = seq
	EvAckTx       // netfabric sent a standalone ack
	EvAckRx       // netfabric ack advanced the send window; arg = retired pkts
	EvStallWarn   // stall detector fired; arg: 1=no ack progress 2=credit starvation

	// Progress-server state transitions (recorded on edges, not per poll).
	EvProgressBusy // progress loop found work after an idle streak; arg = idle polls
	EvProgressIdle // progress loop went idle after a busy streak

	// Comm-layer surface (above core).
	EvLayerSend // comm layer accepted an application message
	EvLayerRecv // comm layer delivered an application message

	// Graph-query serving lifecycle (internal/serve). The msgid of these
	// events is the query id — rank<<24|seq, the same encoding as wire
	// message ids — so one query's stages line up as a flow in the merged
	// timeline, next to the transport messages it generated.
	EvQueryRecv    // frontend admitted a client query; arg = op
	EvQueryScatter // coordinator scattered a sub-query batch; arg = round
	EvQueryGather  // coordinator absorbed a sub-query reply
	EvQueryServe   // owning rank served an adjacency sub-query
	EvQueryDone    // query completed; arg: 1=ok 2=shed 3=error

	numEventTypes
)

var eventNames = [numEventTypes]string{
	evInvalid:      "invalid",
	EvSendEnq:      "send-enq",
	EvRecvDeq:      "recv-deq",
	EvEagerTx:      "eager-tx",
	EvRTSTx:        "rts-tx",
	EvRTRTx:        "rtr-tx",
	EvRTRRx:        "rtr-rx",
	EvPutTx:        "put-tx",
	EvFrgStart:     "frg-start",
	EvFrgRx:        "frg-rx",
	EvComplete:     "complete",
	EvRetry:        "retry",
	EvCreditStall:  "credit-stall",
	EvRetransmit:   "retransmit",
	EvAckTx:        "ack-tx",
	EvAckRx:        "ack-rx",
	EvStallWarn:    "stall-warn",
	EvProgressBusy: "progress-busy",
	EvProgressIdle: "progress-idle",
	EvLayerSend:    "layer-send",
	EvLayerRecv:    "layer-recv",
	EvQueryRecv:    "query-recv",
	EvQueryScatter: "query-scatter",
	EvQueryGather:  "query-gather",
	EvQueryServe:   "query-serve",
	EvQueryDone:    "query-done",
}

func (t EventType) String() string {
	if t < numEventTypes {
		return eventNames[t]
	}
	return "unknown"
}

// Proto values carried by events, mirroring the core packet types (0 means
// "not protocol-specific").
const (
	ProtoNone uint8 = 0
	ProtoEGR  uint8 = 1
	ProtoRTS  uint8 = 2
	ProtoRTR  uint8 = 3
	ProtoFRG  uint8 = 4
)

func protoName(p uint8) string {
	switch p {
	case ProtoEGR:
		return "egr"
	case ProtoRTS:
		return "rts"
	case ProtoRTR:
		return "rtr"
	case ProtoFRG:
		return "frg"
	}
	return "-"
}

// Message-id encoding (DESIGN.md §12): the wire carries the low 24 bits of
// the id in the packet header's reserved bits; the global id prepends the
// sending rank, so ids are unique across ranks and the receive side can
// reconstruct the global id from (src rank, 24-bit wire id).
const (
	// MsgIDBits is the width of the per-rank sequence carried on the wire.
	MsgIDBits = 24
	// MsgIDMask masks the wire-visible sequence.
	MsgIDMask = 1<<MsgIDBits - 1
)

// MsgID builds a globally unique message id from the sender's rank and its
// 24-bit wire sequence (which wraps; 16M in-flight traced messages per rank
// before aliasing, far beyond any ring's memory).
func MsgID(rank int, seq uint32) uint64 {
	return uint64(rank)<<MsgIDBits | uint64(seq&MsgIDMask)
}

// MsgIDRank extracts the sending rank from a global message id.
func MsgIDRank(id uint64) int { return int(id >> MsgIDBits) }

// MsgIDSeq extracts the 24-bit wire sequence from a global message id.
func MsgIDSeq(id uint64) uint32 { return uint32(id & MsgIDMask) }

// Event is one decoded ring entry.
type Event struct {
	TS    int64 // wall-clock, ns since the Unix epoch
	Type  EventType
	Proto uint8
	Peer  int32 // peer rank; -1 when not peer-specific
	Size  uint32
	Arg   uint32 // event-specific (see the EventType comments)
	MsgID uint64 // 0 when the event is not tied to one message
}

// numShards matches telemetry's shard count; see shardIdx.
const numShards = 16

// shardIdx picks a shard from the caller's stack address (the telemetry
// trick): distinct goroutines claim slots from distinct rings without
// thread-local state, and one goroutine stays cache-hot on its ring.
func shardIdx() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (numShards - 1)
}

// slot is one ring entry, packed into four atomic words so concurrent dumps
// are race-free:
//
//	w0  timestamp (UnixNano; 0 = empty slot)
//	w1  type<<56 | proto<<48 | uint32(peer)
//	w2  size<<32 | arg
//	w3  message id
type slot struct {
	w [4]atomic.Uint64
}

type ringShard struct {
	pos   atomic.Uint64 // next slot to claim; monotonically increasing
	_     [56]byte      // keep writer cursors off each other's cache line
	slots []slot
}

// Tracer is a per-rank event ring. A nil Tracer is the dark path: every
// method no-ops.
type Tracer struct {
	rank   int
	mask   uint64
	shards [numShards]ringShard

	dumpMu    sync.Mutex
	dumpW     atomic.Pointer[dumpSink]
	dumpExtra atomic.Pointer[dumpExtraFn]
	lastDump  atomic.Int64 // UnixNano of the last rate-limited DumpNow
}

// DefaultShardCap is the default per-shard ring capacity in events. 16
// shards x 4096 slots x 32 B is 2 MiB per rank — fixed, allocated once.
const DefaultShardCap = 4096

// New returns a tracer for rank with the given per-shard capacity (rounded
// up to a power of two; <=0 selects DefaultShardCap).
func New(rank, perShardCap int) *Tracer {
	if perShardCap <= 0 {
		perShardCap = DefaultShardCap
	}
	capPow := 1
	for capPow < perShardCap {
		capPow <<= 1
	}
	t := &Tracer{rank: rank, mask: uint64(capPow - 1)}
	for i := range t.shards {
		t.shards[i].slots = make([]slot, capPow)
	}
	return t
}

var (
	defaultOnce sync.Once
	defaultTr   *Tracer
)

// Default returns the process-wide tracer: nil (tracing off) unless
// LCI_TRACE is set, in which case a tracer for the LCI_RANK rank is created
// on first use. Components fall back to it when no tracer is wired
// explicitly.
func Default() *Tracer {
	defaultOnce.Do(func() {
		v := os.Getenv(EnvEnable)
		if v == "" {
			return
		}
		capHint := 0
		if n, err := strconv.Atoi(v); err == nil && n > 1 {
			capHint = n
		}
		rank, _ := strconv.Atoi(os.Getenv(EnvRank))
		defaultTr = New(rank, capHint)
	})
	return defaultTr
}

// Rank returns the tracer's rank (0 for nil).
func (t *Tracer) Rank() int {
	if t == nil {
		return 0
	}
	return t.rank
}

// Enabled reports whether events are recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Record appends one event. peer is the remote rank (-1 if none), proto the
// wire protocol (Proto*), size the payload size in bytes, msgid the global
// message id (0 if none). Overwrites the oldest event when the shard ring is
// full. Safe from any goroutine.
func (t *Tracer) Record(ev EventType, peer int, proto uint8, size int, msgid uint64) {
	t.record(ev, peer, proto, size, 0, msgid)
}

// RecordArg is Record with an event-specific argument (retry spin counts,
// fragment offsets, retransmit seqs — see the EventType comments).
func (t *Tracer) RecordArg(ev EventType, peer int, proto uint8, size int, arg uint32, msgid uint64) {
	t.record(ev, peer, proto, size, arg, msgid)
}

func (t *Tracer) record(ev EventType, peer int, proto uint8, size int, arg uint32, msgid uint64) {
	if t == nil {
		return
	}
	now := time.Now().UnixNano()
	sh := &t.shards[shardIdx()]
	s := &sh.slots[(sh.pos.Add(1)-1)&t.mask]
	s.w[0].Store(uint64(now))
	s.w[1].Store(uint64(ev)<<56 | uint64(proto)<<48 | uint64(uint32(peer)))
	s.w[2].Store(uint64(uint32(size))<<32 | uint64(arg))
	s.w[3].Store(msgid)
}

// Events snapshots the ring: every recorded event across all shards, oldest
// first (sorted by timestamp). Exact when writers are quiescent; during live
// recording a concurrently overwritten slot may decode to a torn event.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.shards {
		sh := &t.shards[i]
		for j := range sh.slots {
			s := &sh.slots[j]
			w0 := s.w[0].Load()
			if w0 == 0 {
				continue
			}
			w1, w2, w3 := s.w[1].Load(), s.w[2].Load(), s.w[3].Load()
			ev := EventType(w1 >> 56)
			if ev == evInvalid || ev >= numEventTypes {
				continue // torn slot mid-write
			}
			out = append(out, Event{
				TS:    int64(w0),
				Type:  ev,
				Proto: uint8(w1 >> 48),
				Peer:  int32(uint32(w1)),
				Size:  uint32(w2 >> 32),
				Arg:   uint32(w2),
				MsgID: w3,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Len returns the number of recorded (non-empty) slots, bounded by capacity.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		pos := sh.pos.Load()
		if pos > uint64(len(sh.slots)) {
			pos = uint64(len(sh.slots))
		}
		n += int(pos)
	}
	return n
}
