package tracing

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestRingWraparound floods a small ring far past its capacity from one
// goroutine and checks that what survives is the most recent tail of the
// stream, still in recording order.
func TestRingWraparound(t *testing.T) {
	const cap = 64
	const total = 10 * cap * numShards
	tr := New(0, cap)
	for i := 0; i < total; i++ {
		tr.RecordArg(EvEagerTx, 1, ProtoEGR, 8, uint32(i), 0)
	}
	evs := tr.Events()
	if len(evs) == 0 || len(evs) > cap*numShards {
		t.Fatalf("got %d events, want 1..%d", len(evs), cap*numShards)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events out of timestamp order at %d", i)
		}
		if evs[i].Arg <= evs[i-1].Arg {
			t.Fatalf("recording order lost: arg %d after %d", evs[i].Arg, evs[i-1].Arg)
		}
	}
	if last := evs[len(evs)-1].Arg; last != total-1 {
		t.Fatalf("newest event arg = %d, want %d (overwrite-oldest violated)", last, total-1)
	}
	if oldest := evs[0].Arg; int(oldest) < total-cap*numShards {
		t.Fatalf("oldest surviving arg = %d, want >= %d", oldest, total-cap*numShards)
	}
}

// TestNilTracerDarkPath: every method of a nil tracer must be a no-op.
func TestNilTracerDarkPath(t *testing.T) {
	var tr *Tracer
	tr.Record(EvSendEnq, 1, ProtoEGR, 10, 1)
	tr.RecordArg(EvRetry, 1, ProtoNone, 0, 3, 1)
	tr.DumpNow("nil")
	tr.NotifySIGQUIT()
	tr.SetDumpWriter(io.Discard)
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil tracer returned %d events", len(evs))
	}
	if tr.Len() != 0 {
		t.Fatal("nil tracer reports events")
	}
}

// TestFlightDump checks the dump contents and the once-per-second rate limit.
func TestFlightDump(t *testing.T) {
	tr := New(3, 64)
	tr.Record(EvCreditStall, 1, ProtoNone, 64, 0)
	tr.RecordArg(EvStallWarn, 1, ProtoNone, 0, 2, 0)
	tr.Record(EvSendEnq, 1, ProtoEGR, 32, MsgID(3, 9))

	var buf bytes.Buffer
	tr.SetDumpWriter(&buf)
	tr.DumpNow("unit-test")
	out := buf.String()
	for _, want := range []string{"rank 3", "reason: unit-test", "credit-stall", "stall-warn", "send-enq", "0x3000009"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	tr.DumpNow("again") // within the 1s rate limit: suppressed
	if buf.Len() != 0 {
		t.Fatalf("rate limit did not suppress second dump:\n%s", buf.String())
	}

	// Direct Dump bypasses the limiter (used by the SIGQUIT and HTTP paths).
	buf.Reset()
	tr.Dump(&buf, "direct")
	if !strings.Contains(buf.String(), "reason: direct") {
		t.Fatal("direct Dump produced nothing")
	}
}

// chromeDoc mirrors the catapult JSON shape for decoding in tests.
type chromeDoc struct {
	TraceEvents []struct {
		Ph   string  `json:"ph"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
		TS   float64 `json:"ts"`
		ID   string  `json:"id"`
		Name string  `json:"name"`
	} `json:"traceEvents"`
}

// TestChromeMergeRoundTrip builds per-rank traces with one correlated
// message, merges them, and checks the merged document decodes cleanly with
// per-rank lanes, monotone per-lane timestamps, and a send→recv flow arrow
// pair bound by msgid.
func TestChromeMergeRoundTrip(t *testing.T) {
	gid := MsgID(0, 7)
	trA := New(0, 64)
	trA.Record(EvSendEnq, 1, ProtoEGR, 32, gid)
	trA.Record(EvEagerTx, 1, ProtoEGR, 32, gid)
	trB := New(1, 64)
	trB.Record(EvRecvDeq, 0, ProtoEGR, 32, gid)

	merged, err := MergeChrome([][]byte{
		ChromeTrace(trA.Events(), 0),
		ChromeTrace(trB.Events(), 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}

	pids := map[int]bool{}
	lanes := map[[2]int]float64{}
	var flowS, flowF []string
	for _, e := range doc.TraceEvents {
		pids[e.PID] = true
		switch e.Ph {
		case "X":
			key := [2]int{e.PID, e.TID}
			if e.TS < lanes[key] {
				t.Fatalf("lane %v timestamps not monotone", key)
			}
			lanes[key] = e.TS
		case "s":
			flowS = append(flowS, e.ID)
		case "f":
			flowF = append(flowF, e.ID)
		}
	}
	if !pids[0] || !pids[1] {
		t.Fatalf("merged trace lanes missing a rank: %v", pids)
	}
	if len(flowS) != 1 || len(flowF) != 1 || flowS[0] != flowF[0] {
		t.Fatalf("flow arrows s=%v f=%v, want one matched pair", flowS, flowF)
	}
}

// TestMergeChromeRejectsGarbage: a corrupt per-rank blob must fail the merge
// rather than poison the output document.
func TestMergeChromeRejectsGarbage(t *testing.T) {
	good := ChromeTrace(nil, 0)
	if _, err := MergeChrome([][]byte{good, []byte("not json")}); err == nil {
		t.Fatal("MergeChrome accepted a corrupt blob")
	}
}

// TestConcurrentRecordAndDump hammers the ring from many goroutines while a
// reader concurrently drains events and dumps — the -race guarantee for the
// flight recorder's live snapshots.
func TestConcurrentRecordAndDump(t *testing.T) {
	tr := New(0, 256)
	tr.SetDumpWriter(io.Discard)
	const writers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				tr.RecordArg(EvSendEnq, w, ProtoEGR, i, uint32(i), MsgID(0, uint32(i)))
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.Events()
			tr.Dump(io.Discard, "concurrent")
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if tr.Len() == 0 {
		t.Fatal("no events recorded")
	}
}
