package tracing

import (
	"net/http"
)

// Handler serves the tracer over HTTP next to the telemetry endpoints:
//
//	/debug/trace         catapult JSON (open in Perfetto / chrome://tracing)
//	/debug/trace/flight  flight-recorder text dump
//
// merged, when non-nil, supplies a cross-rank merged document (rank 0 of
// lci-launch scrapes its peers); if it is nil or fails, the local rank's
// trace is served instead. ?local=1 always serves the local rank. A nil
// tracer answers 404, mirroring the disabled-telemetry dark path.
func Handler(t *Tracer, merged func() ([]byte, error)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled (set LCI_TRACE=1)", http.StatusNotFound)
			return
		}
		doc := []byte(nil)
		if merged != nil && r.URL.Query().Get("local") == "" {
			if b, err := merged(); err == nil {
				doc = b
			}
		}
		if doc == nil {
			doc = ChromeTrace(t.Events(), t.rank)
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(doc)
	})
	mux.HandleFunc("/debug/trace/flight", func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled (set LCI_TRACE=1)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		t.Dump(w, "http")
	})
	return mux
}
