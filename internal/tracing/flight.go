package tracing

import (
	"fmt"
	"io"
	"os"
	"time"
)

// Flight recorder: the ring already holds the last N events per rank; this
// file renders them as a human-readable postmortem. Dumps trigger on
// SIGQUIT (flight_unix.go), on provider Close errors (drain timeout), and
// when the netfabric stall detector fires — see DESIGN.md §12.

// dumpSink wraps the dump writer so it can swap atomically (tests capture
// dumps; production leaves stderr).
type dumpSink struct{ w io.Writer }

// SetDumpWriter redirects DumpNow output (default os.Stderr). A nil w
// restores the default.
func (t *Tracer) SetDumpWriter(w io.Writer) {
	if t == nil {
		return
	}
	if w == nil {
		t.dumpW.Store(nil)
		return
	}
	t.dumpW.Store(&dumpSink{w: w})
}

// dumpExtraFn is a supplemental section appended to every flight dump.
type dumpExtraFn func(io.Writer)

// SetDumpExtra registers a callback appended after the event table in every
// Dump/DumpNow — the health monitor hangs its one-screen summary (status,
// active alerts, worst-rank skew, top rates) here so stall forensics and
// health state land in the same artifact. A nil fn removes it. The callback
// runs on the dumping goroutine and must not itself dump.
func (t *Tracer) SetDumpExtra(fn func(io.Writer)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.dumpExtra.Store(nil)
		return
	}
	f := dumpExtraFn(fn)
	t.dumpExtra.Store(&f)
}

// dumpRateLimit bounds how often DumpNow actually writes: stall detectors
// can fire every housekeeping tick while wedged, and one dump per second
// already captures the whole ring.
const dumpRateLimit = time.Second

// DumpNow writes the flight record to the configured sink, rate-limited to
// one dump per second (extra calls are dropped, not queued). Safe from any
// goroutine.
func (t *Tracer) DumpNow(reason string) {
	if t == nil {
		return
	}
	now := time.Now().UnixNano()
	last := t.lastDump.Load()
	if now-last < int64(dumpRateLimit) || !t.lastDump.CompareAndSwap(last, now) {
		return
	}
	w := io.Writer(os.Stderr)
	if s := t.dumpW.Load(); s != nil {
		w = s.w
	}
	t.dumpMu.Lock()
	defer t.dumpMu.Unlock()
	t.Dump(w, reason)
}

// Dump writes the flight record — every ring event, oldest first — to w.
// Unlike DumpNow it is neither rate-limited nor redirected.
func (t *Tracer) Dump(w io.Writer, reason string) {
	if t == nil {
		return
	}
	events := t.Events()
	fmt.Fprintf(w, "=== lci flight recorder: rank %d, %d events (reason: %s) ===\n",
		t.rank, len(events), reason)
	if len(events) == 0 {
		fmt.Fprintf(w, "(ring empty)\n")
		t.dumpExtraTo(w)
		return
	}
	base := events[0].TS
	fmt.Fprintf(w, "t0 = %s\n", time.Unix(0, base).Format(time.RFC3339Nano))
	fmt.Fprintf(w, "%12s  %-13s %5s %5s %8s %8s  %s\n",
		"+us", "event", "peer", "proto", "size", "arg", "msgid")
	for _, e := range events {
		peer := "-"
		if e.Peer >= 0 {
			peer = fmt.Sprintf("%d", e.Peer)
		}
		msgid := "-"
		if e.MsgID != 0 {
			msgid = fmt.Sprintf("%#x", e.MsgID)
		}
		fmt.Fprintf(w, "%12.1f  %-13s %5s %5s %8d %8d  %s\n",
			float64(e.TS-base)/1e3, e.Type.String(), peer,
			protoName(e.Proto), e.Size, e.Arg, msgid)
	}
	t.dumpExtraTo(w)
}

func (t *Tracer) dumpExtraTo(w io.Writer) {
	if fn := t.dumpExtra.Load(); fn != nil {
		(*fn)(w)
	}
}
