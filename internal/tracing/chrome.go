package tracing

import (
	"encoding/json"
	"fmt"
)

// Chrome trace-event export (the catapult JSON format understood by
// Perfetto and chrome://tracing). Each rank renders its ring as one process
// lane (pid = rank) with three thread lanes — app/layer, core, net — plus
// flow arrows ("s"/"f" phase events, bound by message id) from every
// send-enq to the matching recv-deq, which is what draws the cross-rank
// arrow once blobs from all ranks are merged.

// Thread-lane assignment within a rank's process lane.
const (
	laneApp  = 0 // queue-pair API and comm-layer surface
	laneCore = 1 // protocol engine (eager, rendezvous, progress server)
	laneNet  = 2 // transport (acks, retransmits, credits, stalls)
)

func laneOf(t EventType) int {
	switch t {
	case EvSendEnq, EvRecvDeq, EvLayerSend, EvLayerRecv,
		EvQueryRecv, EvQueryScatter, EvQueryGather, EvQueryServe, EvQueryDone:
		return laneApp
	case EvCreditStall, EvRetransmit, EvAckTx, EvAckRx, EvStallWarn:
		return laneNet
	}
	return laneCore
}

var laneNames = map[int]string{
	laneApp:  "app/layer",
	laneCore: "core",
	laneNet:  "net",
}

// chromeEvent is one entry of the traceEvents array. Phases used: "M"
// (metadata), "X" (complete slice), "s"/"f" (flow start/finish).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts,omitempty"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"` // "e": bind flow finish to enclosing slice
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []json.RawMessage `json:"traceEvents"`
}

// tsMicros converts an event timestamp to the catapult microsecond scale.
// Absolute UnixNano keeps all ranks on one clock, so merged blobs line up
// without a negotiated epoch; float64 quantizes ~2026 wall time to ~0.25 µs,
// which the timeline viewer cannot resolve anyway.
func tsMicros(ns int64) float64 { return float64(ns) / 1e3 }

// ChromeTrace renders events (one rank's ring, as returned by
// Tracer.Events) as a self-contained catapult JSON document.
func ChromeTrace(events []Event, rank int) []byte {
	out := make([]chromeEvent, 0, len(events)+4)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", PID: rank,
		Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
	})
	for tid := laneApp; tid <= laneNet; tid++ {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: rank, TID: tid,
			Args: map[string]any{"name": laneNames[tid]},
		})
	}
	for _, e := range events {
		tid := laneOf(e.Type)
		args := map[string]any{}
		if e.Peer >= 0 {
			args["peer"] = e.Peer
		}
		if e.Proto != ProtoNone {
			args["proto"] = protoName(e.Proto)
		}
		if e.Size > 0 {
			args["size"] = e.Size
		}
		if e.Arg != 0 {
			args["arg"] = e.Arg
		}
		if e.MsgID != 0 {
			args["msgid"] = fmt.Sprintf("%#x", e.MsgID)
		}
		out = append(out, chromeEvent{
			Name: e.Type.String(), Ph: "X", PID: rank, TID: tid,
			TS: tsMicros(e.TS), Dur: 1, Cat: "lci", Args: args,
		})
		// Flow arrows pair the API-surface endpoints of one message: the
		// arrow starts at the sender's enqueue and finishes at the
		// receiver's dequeue, keyed by the global message id.
		if e.MsgID != 0 && (e.Type == EvSendEnq || e.Type == EvRecvDeq) {
			fe := chromeEvent{
				Name: "msg", Ph: "s", PID: rank, TID: tid,
				TS: tsMicros(e.TS), Cat: "msg",
				ID: fmt.Sprintf("%#x", e.MsgID),
			}
			if e.Type == EvRecvDeq {
				fe.Ph, fe.BP = "f", "e"
			}
			out = append(out, fe)
		}
		// Query lifecycle arrows: admission to completion, keyed by the
		// query id (a distinct flow namespace from wire message ids).
		if e.MsgID != 0 && (e.Type == EvQueryRecv || e.Type == EvQueryDone) {
			fe := chromeEvent{
				Name: "query", Ph: "s", PID: rank, TID: tid,
				TS: tsMicros(e.TS), Cat: "query",
				ID: fmt.Sprintf("q%#x", e.MsgID),
			}
			if e.Type == EvQueryDone {
				fe.Ph, fe.BP = "f", "e"
			}
			out = append(out, fe)
		}
	}
	raws := make([]json.RawMessage, len(out))
	for i := range out {
		raws[i], _ = json.Marshal(out[i])
	}
	doc, _ := json.Marshal(chromeTrace{TraceEvents: raws})
	return doc
}

// MergeChrome merges per-rank catapult documents (as produced by
// ChromeTrace) into one. Ranks occupy distinct process lanes, so the merge
// is a validated concatenation of the traceEvents arrays; nil/empty blobs
// (ranks that traced nothing) are skipped.
func MergeChrome(blobs [][]byte) ([]byte, error) {
	var merged chromeTrace
	merged.TraceEvents = []json.RawMessage{}
	for i, b := range blobs {
		if len(b) == 0 {
			continue
		}
		var t chromeTrace
		if err := json.Unmarshal(b, &t); err != nil {
			return nil, fmt.Errorf("tracing: rank %d blob: %w", i, err)
		}
		merged.TraceEvents = append(merged.TraceEvents, t.TraceEvents...)
	}
	return json.Marshal(merged)
}
