// Package launch is the shared scaffolding for SPMD launcher commands
// (cmd/lci-launch, cmd/lci-serve): a parent process that pre-binds every
// rank's sockets and re-executes itself once per rank, and the child-side
// helpers that pick the inherited endpoints back up.
//
// Pre-binding is the whole point: the parent binds each rank's UDP socket
// and (optionally) its telemetry TCP listener before any child exists, so
// there is no startup race, no port negotiation, and no scrape window where
// a rank is not yet serving. Children inherit the sockets as file
// descriptors at fixed positions:
//
//	fd 3  the rank's UDP fabric socket (netfabric.EnvFD)
//	fd 4  the rank's telemetry TCP listener (EnvMetricsFD; when bound)
//	fd 5+ command-specific extras, in the order Start's extra callback
//	      returned them
package launch

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"lcigraph/internal/health"
	"lcigraph/internal/incident"
	"lcigraph/internal/netfabric"
	"lcigraph/internal/telemetry"
	"lcigraph/internal/tracing"
)

// Environment carrying the pre-bound metrics listeners to the children:
// the inherited fd of this rank's TCP listener and the comma-separated
// actual addresses of every rank's endpoint (rank 0 scrapes its peers).
const (
	EnvMetricsFD    = "LCI_METRICS_FD"
	EnvMetricsAddrs = "LCI_METRICS_ADDRS"
)

// Job is one parent-side SPMD launch: N ranks over pre-bound loopback UDP,
// optional per-rank telemetry listeners, fault injection, and tracing.
type Job struct {
	N int

	// Fault injection applied to every rank's UDP socket.
	Loss, Dup, Reorder float64
	FaultSeed          int64

	// Trace turns message-lifecycle tracing on in every child (LCI_TRACE=1).
	Trace bool

	// MetricsAddrs holds every rank's telemetry endpoint after BindMetrics.
	MetricsAddrs []string

	udpConns []*net.UDPConn
	udpAddrs []string
	mlns     []*net.TCPListener
	cmds     []*exec.Cmd
}

// NewJob pre-binds n loopback UDP sockets, one per rank.
func NewJob(n int) (*Job, error) {
	j := &Job{N: n, udpConns: make([]*net.UDPConn, n), udpAddrs: make([]string, n)}
	for i := range j.udpConns {
		// SO_REUSEPORT on the pre-bound socket is what lets each child's
		// extra reader shards join its inherited address.
		c, err := netfabric.ListenReusePort("udp", "127.0.0.1:0")
		if err != nil {
			j.closeBound()
			return nil, fmt.Errorf("bind rank %d: %w", i, err)
		}
		j.udpConns[i] = c.(*net.UDPConn)
		j.udpAddrs[i] = c.LocalAddr().String()
	}
	return j, nil
}

// BindMetrics pre-binds one telemetry TCP listener per rank: rank r listens
// on addr's port+r (port 0 picks ephemeral ports). MetricsAddrs is filled
// with the scrapeable addresses.
func (j *Job) BindMetrics(addr string) error {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("metrics addr %q: %w", addr, err)
	}
	base, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("metrics port %q: %w", portStr, err)
	}
	scrapeHost := host
	if scrapeHost == "" || scrapeHost == "0.0.0.0" || scrapeHost == "::" {
		scrapeHost = "127.0.0.1"
	}
	j.mlns = make([]*net.TCPListener, j.N)
	j.MetricsAddrs = make([]string, j.N)
	for i := range j.mlns {
		port := 0
		if base != 0 {
			port = base + i
		}
		ln, err := net.Listen("tcp", net.JoinHostPort(host, strconv.Itoa(port)))
		if err != nil {
			return fmt.Errorf("bind metrics rank %d: %w", i, err)
		}
		j.mlns[i] = ln.(*net.TCPListener)
		_, p, _ := net.SplitHostPort(ln.Addr().String())
		j.MetricsAddrs[i] = net.JoinHostPort(scrapeHost, p)
	}
	return nil
}

// Start re-executes the current binary once per rank with args, wiring the
// pre-bound sockets and the fabric environment. extra, when non-nil, names
// additional environment entries and inherited files for a rank; its files
// land at the fixed fd positions documented on the package (5 onwards when
// metrics are bound, 4 onwards otherwise — commands that need the number in
// an env var hardcode the layout they create). A mid-loop failure kills the
// already-started ranks, which would otherwise block forever waiting for
// peers that will never exist.
func (j *Job) Start(args []string, extra func(rank int) ([]string, []*os.File)) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	addrList := strings.Join(j.udpAddrs, ",")
	j.cmds = make([]*exec.Cmd, j.N)
	fail := func(files []*os.File, err error) error {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
		j.Kill()
		j.closeBound()
		return err
	}
	for i := range j.cmds {
		f, err := j.udpConns[i].File()
		if err != nil {
			return fail(nil, fmt.Errorf("dup socket rank %d: %w", i, err))
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		cmd.ExtraFiles = []*os.File{f} // child fd 3
		cmd.Env = append(os.Environ(),
			netfabric.EnvRank+"="+strconv.Itoa(i),
			netfabric.EnvSize+"="+strconv.Itoa(j.N),
			netfabric.EnvAddrs+"="+addrList,
			netfabric.EnvFD+"=3",
			netfabric.EnvLoss+"="+fmt.Sprint(j.Loss),
			netfabric.EnvDup+"="+fmt.Sprint(j.Dup),
			netfabric.EnvReord+"="+fmt.Sprint(j.Reorder),
			netfabric.EnvSeed+"="+strconv.FormatInt(j.FaultSeed, 10),
		)
		if j.Trace {
			// The last entry wins over any inherited LCI_TRACE value.
			cmd.Env = append(cmd.Env, tracing.EnvEnable+"=1")
		}
		files := []*os.File{f}
		if j.mlns != nil {
			mf, err := j.mlns[i].File()
			if err != nil {
				return fail(files, fmt.Errorf("dup metrics listener rank %d: %w", i, err))
			}
			files = append(files, mf)
			cmd.ExtraFiles = append(cmd.ExtraFiles, mf) // child fd 4
			cmd.Env = append(cmd.Env,
				EnvMetricsFD+"=4",
				EnvMetricsAddrs+"="+strings.Join(j.MetricsAddrs, ","),
			)
		}
		if extra != nil {
			env, efs := extra(i)
			cmd.Env = append(cmd.Env, env...)
			cmd.ExtraFiles = append(cmd.ExtraFiles, efs...)
			files = append(files, efs...)
		}
		if err := cmd.Start(); err != nil {
			return fail(files, fmt.Errorf("start rank %d: %w", i, err))
		}
		for _, fl := range files {
			fl.Close()
		}
		j.udpConns[i].Close()
		if j.mlns != nil {
			j.mlns[i].Close()
		}
		j.cmds[i] = cmd
	}
	return nil
}

// Wait blocks until every rank exits and returns the worst exit code.
func (j *Job) Wait() int {
	code := 0
	for i, cmd := range j.cmds {
		if cmd == nil {
			continue
		}
		if err := cmd.Wait(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				if c := ee.ExitCode(); c > code {
					code = c
				}
			} else {
				fmt.Fprintf(os.Stderr, "launch: wait rank %d: %v\n", i, err)
				code = 2
			}
		}
	}
	return code
}

// Signal delivers sig to one rank (e.g. SIGTERM to rank 0 to start a
// serving job's graceful drain).
func (j *Job) Signal(rank int, sig os.Signal) error {
	if rank < 0 || rank >= len(j.cmds) || j.cmds[rank] == nil {
		return fmt.Errorf("launch: no started rank %d", rank)
	}
	return j.cmds[rank].Process.Signal(sig)
}

// Kill hard-stops every started rank.
func (j *Job) Kill() {
	for _, cmd := range j.cmds {
		if cmd != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
}

func (j *Job) closeBound() {
	for _, c := range j.udpConns {
		if c != nil {
			c.Close()
		}
	}
	for _, l := range j.mlns {
		if l != nil {
			l.Close()
		}
	}
}

// ServeMetrics starts the child-side live telemetry endpoint on the TCP
// listener the parent pre-bound and passed down as EnvMetricsFD. Rank 0
// additionally serves /cluster(.json), scraping every peer's /metrics.json
// and merging. Alongside the metrics, /debug/trace(/flight) serve the
// lifecycle tracer — on rank 0 the trace document merges every peer's,
// scraped from their /debug/trace?local=1 — and, when a health monitor is
// wired, /healthz (200 OK / 503 DEGRADED|UNHEALTHY) and /debug/health.json
// (the judgment view plus every time series; what cmd/lci-top polls). With
// an incident recorder wired, /debug/incident (capture status + continuous
// profile inventory) and /debug/incident/capture (trigger an on-demand
// cross-rank capture) join them. Returns nil when no listener was
// inherited. mon and rec may be nil.
func ServeMetrics(reg *telemetry.Registry, tr *tracing.Tracer, mon *health.Monitor, rec *incident.Recorder, rank int) *http.Server {
	fdStr := os.Getenv(EnvMetricsFD)
	if fdStr == "" {
		return nil
	}
	fd, err := strconv.Atoi(fdStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "launch: %s=%q: %v\n", EnvMetricsFD, fdStr, err)
		return nil
	}
	f := os.NewFile(uintptr(fd), "metrics-listener")
	ln, err := net.FileListener(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "launch: metrics listener: %v\n", err)
		return nil
	}
	var clusterFn func() (*telemetry.Snapshot, error)
	var mergedFn func() ([]byte, error)
	if rank == 0 {
		addrs := strings.Split(os.Getenv(EnvMetricsAddrs), ",")
		clusterFn = func() (*telemetry.Snapshot, error) { return ScrapeCluster(reg, addrs) }
		mergedFn = func() ([]byte, error) { return ScrapeTraces(tr, rank, addrs) }
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/trace", tracing.Handler(tr, mergedFn))
	mux.Handle("/debug/trace/", tracing.Handler(tr, mergedFn))
	if mon != nil {
		mux.HandleFunc("/healthz", mon.ServeHealthz)
		mux.HandleFunc("/debug/health.json", mon.ServeJSON)
	}
	if rec != nil {
		mux.HandleFunc("/debug/incident", rec.ServeStatus)
		mux.HandleFunc("/debug/incident/capture", rec.ServeCapture)
	}
	mux.Handle("/", telemetry.Handler(reg, clusterFn))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv
}

// InheritedListener picks up a TCP listener the parent passed down at fd
// (the command-specific extras, fd 5 onwards).
func InheritedListener(fd int) (net.Listener, error) {
	f := os.NewFile(uintptr(fd), "inherited-listener")
	ln, err := net.FileListener(f)
	f.Close()
	return ln, err
}

// ScrapeCluster merges this rank's live snapshot with every peer's, fetched
// from their /metrics.json endpoints.
func ScrapeCluster(reg *telemetry.Registry, addrs []string) (*telemetry.Snapshot, error) {
	snaps := []*telemetry.Snapshot{reg.Snapshot()}
	client := &http.Client{Timeout: 2 * time.Second}
	for r, a := range addrs {
		if r == 0 || a == "" {
			continue
		}
		resp, err := client.Get("http://" + a + "/metrics.json")
		if err != nil {
			return nil, fmt.Errorf("scrape rank %d: %w", r, err)
		}
		var s telemetry.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&s)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("decode rank %d: %w", r, err)
		}
		snaps = append(snaps, &s)
	}
	return telemetry.Merge(snaps...), nil
}

// ScrapeTraces merges this rank's live Chrome trace with every peer's,
// fetched from their /debug/trace?local=1 endpoints.
func ScrapeTraces(tr *tracing.Tracer, rank int, addrs []string) ([]byte, error) {
	blobs := [][]byte{tracing.ChromeTrace(tr.Events(), rank)}
	client := &http.Client{Timeout: 2 * time.Second}
	for r, a := range addrs {
		if r == rank || a == "" {
			continue
		}
		resp, err := client.Get("http://" + a + "/debug/trace?local=1")
		if err != nil {
			return nil, fmt.Errorf("scrape rank %d: %w", r, err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("read rank %d: %w", r, err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("scrape rank %d: %s", r, resp.Status)
		}
		blobs = append(blobs, b)
	}
	return tracing.MergeChrome(blobs)
}

// WriteFileAtomic writes data to path via a temp file + rename so a reader
// (or a crashed run) never observes a partial document, creating parent
// directories as needed.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(f.Name(), 0o644)
	}
	if err == nil {
		err = os.Rename(f.Name(), path)
	}
	if err != nil {
		os.Remove(f.Name())
	}
	return err
}
