package launch

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	lci "lcigraph/internal/core"
	"lcigraph/internal/health"
)

// HealthEnv parses the launchers' shared health flags into a per-rank
// environment list for Job.Start's extra callback: -ops-log routes the
// JSONL ops-event path to rank 0 (health.EnvOpsLog), and -inject-stall
// "rank:shard:after:dur" routes a validated stall injection
// (lci.EnvInjectStall) to the targeted rank only, so exactly one progress
// shard in the whole job wedges. Returns (nil, nil) when neither knob is
// set; name prefixes diagnostics ("lci-launch", "lci-serve").
func HealthEnv(opsLog, injectStall, name string) (func(rank int) []string, error) {
	stallRank, stallSpec := -1, ""
	if injectStall != "" {
		i := strings.IndexByte(injectStall, ':')
		if i <= 0 {
			return nil, fmt.Errorf("-inject-stall %q: want rank:shard:after:dur", injectStall)
		}
		r, err := strconv.Atoi(injectStall[:i])
		if err != nil || r < 0 {
			return nil, fmt.Errorf("-inject-stall %q: bad rank", injectStall)
		}
		stallSpec = injectStall[i+1:]
		if _, _, _, err := lci.ParseInjectStall(stallSpec); err != nil {
			return nil, fmt.Errorf("-inject-stall %q: %v", injectStall, err)
		}
		stallRank = r
		fmt.Fprintf(os.Stderr, "%s: injecting progress stall on rank %d (%s)\n", name, r, stallSpec)
	}
	if opsLog == "" && stallRank < 0 {
		return nil, nil
	}
	return func(rank int) []string {
		var env []string
		if rank == 0 && opsLog != "" {
			env = append(env, health.EnvOpsLog+"="+opsLog)
		}
		if rank == stallRank {
			env = append(env, lci.EnvInjectStall+"="+stallSpec)
		}
		return env
	}, nil
}
