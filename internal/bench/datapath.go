package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"lcigraph/internal/comm"
	"lcigraph/internal/fabric"
)

// DatapathVariant measures one configuration of the small-message data path:
// an all-to-all fused exchange of many tiny per-peer messages per epoch,
// reporting heap allocations and wire frames per logical message.
type DatapathVariant struct {
	Name       string `json:"name"`
	FramePool  bool   `json:"frame_pool"`
	Coalescing bool   `json:"coalescing"`
	Messages   int    `json:"messages"`

	AllocsPerMsg float64 `json:"allocs_per_msg"`
	BytesPerMsg  float64 `json:"alloc_bytes_per_msg"`
	FramesPerMsg float64 `json:"frames_per_msg"`
	NsPerMsg     float64 `json:"ns_per_msg"`

	FramesRecycled  int64 `json:"frames_recycled"`
	BatchPolls      int64 `json:"batch_polls"`
	MsgsCoalesced   int64 `json:"msgs_coalesced"`
	CoalescedFrames int64 `json:"coalesced_frames"`
}

// DatapathReport is the before/after comparison committed as
// BENCH_datapath.json: baseline reproduces the pre-optimisation data path
// (frame pooling off, coalescing off), optimized is the current default.
type DatapathReport struct {
	Hosts   int `json:"hosts"`
	PerPeer int `json:"per_peer"`
	MsgSize int `json:"msg_size"`
	Epochs  int `json:"epochs"`

	Baseline  DatapathVariant `json:"baseline"`
	Optimized DatapathVariant `json:"optimized"`

	AllocImprovement float64 `json:"alloc_improvement"` // baseline/optimized allocs per msg
	FrameImprovement float64 `json:"frame_improvement"` // baseline/optimized frames per msg
}

// runDatapathVariant drives epochs of the fused exchange: every host sends
// perPeer messages of size bytes to every other host per epoch, received via
// FinishFusedCount. One warm-up epoch populates the frame free-list and the
// layers' internal buffers before measurement starts.
func runDatapathVariant(hosts, perPeer, size, epochs int, pool, coalesce bool) DatapathVariant {
	prof := fabric.TestProfile()
	prof.DisableFramePool = !pool
	fab := fabric.New(hosts, prof)
	layers := make([]*comm.LCILayer, hosts)
	for r := range layers {
		layers[r] = comm.NewLCILayer(fab.Endpoint(r), LCIOptions(hosts, 2))
		layers[r].SetCoalescing(coalesce)
	}

	// Payload buffers are prepared up front: the measurement isolates the
	// runtime's per-message cost (frames, pool traffic, bookkeeping) from
	// the application's payload generation, which is identical either way.
	perEpoch := (hosts - 1) * perPeer
	mkBufs := func(n int) [][][]byte {
		all := make([][][]byte, hosts)
		for r := range all {
			bufs := make([][]byte, n*perEpoch)
			for k := range bufs {
				bufs[k] = layers[r].AllocBuf(size)
				bufs[k][0] = byte(k)
			}
			all[r] = bufs
		}
		return all
	}

	runEpoch := func(tag uint32, all [][][]byte, epoch int) {
		var wg sync.WaitGroup
		for r := range layers {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				l := layers[r]
				bufs := all[r][epoch*perEpoch:]
				eff := l.BeginFused(tag)
				k := 0
				for p := 0; p < hosts; p++ {
					if p == r {
						continue
					}
					for i := 0; i < perPeer; i++ {
						l.SendFused(i, p, eff, bufs[k])
						k++
					}
				}
				l.FinishFusedCount(eff, perEpoch, func(int, []byte) {})
			}(r)
		}
		wg.Wait()
	}

	runEpoch(1, mkBufs(1), 0) // warm-up
	all := mkBufs(epochs)
	framesBefore := collectNet(fab).Frames
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for e := 0; e < epochs; e++ {
		runEpoch(2, all, e)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	net := collectNet(fab)

	v := DatapathVariant{
		Name:       variantName(pool, coalesce),
		FramePool:  pool,
		Coalescing: coalesce,
		Messages:   hosts * (hosts - 1) * perPeer * epochs,
	}
	msgs := float64(v.Messages)
	v.AllocsPerMsg = float64(after.Mallocs-before.Mallocs) / msgs
	v.BytesPerMsg = float64(after.TotalAlloc-before.TotalAlloc) / msgs
	v.FramesPerMsg = float64(net.Frames-framesBefore) / msgs
	v.NsPerMsg = float64(wall.Nanoseconds()) / msgs
	v.FramesRecycled = net.FramesRecycled
	v.BatchPolls = net.BatchPolls
	for _, l := range layers {
		s := l.CoalesceStats()
		v.MsgsCoalesced += s.MsgsCoalesced
		v.CoalescedFrames += s.CoalescedFrames
	}
	for _, l := range layers {
		l.Stop()
	}
	return v
}

func variantName(pool, coalesce bool) string {
	switch {
	case pool && coalesce:
		return "pooled+coalesced"
	case pool:
		return "pooled"
	case coalesce:
		return "coalesced"
	default:
		return "baseline"
	}
}

// Datapath runs the before/after comparison for the zero-allocation batched
// data path. Zero or negative arguments select the defaults used for
// BENCH_datapath.json (4 hosts, 64 messages of 64 bytes per peer, 25 epochs).
func Datapath(hosts, perPeer, size, epochs int) DatapathReport {
	if hosts <= 0 {
		hosts = 4
	}
	if perPeer <= 0 {
		perPeer = 64
	}
	if size <= 0 {
		size = 64
	}
	if epochs <= 0 {
		epochs = 25
	}
	r := DatapathReport{Hosts: hosts, PerPeer: perPeer, MsgSize: size, Epochs: epochs}
	r.Baseline = runDatapathVariant(hosts, perPeer, size, epochs, false, false)
	r.Optimized = runDatapathVariant(hosts, perPeer, size, epochs, true, true)
	if r.Optimized.AllocsPerMsg > 0 {
		r.AllocImprovement = r.Baseline.AllocsPerMsg / r.Optimized.AllocsPerMsg
	}
	if r.Optimized.FramesPerMsg > 0 {
		r.FrameImprovement = r.Baseline.FramesPerMsg / r.Optimized.FramesPerMsg
	}
	return r
}

// Table renders the report for cmd/experiments.
func (r DatapathReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Datapath: %d hosts, %d x %dB msgs/peer/epoch, %d epochs (%d msgs/variant)\n",
		r.Hosts, r.PerPeer, r.MsgSize, r.Epochs, r.Baseline.Messages)
	fmt.Fprintf(&b, "%-18s %12s %14s %12s %10s\n",
		"variant", "allocs/msg", "alloc B/msg", "frames/msg", "ns/msg")
	for _, v := range []DatapathVariant{r.Baseline, r.Optimized} {
		fmt.Fprintf(&b, "%-18s %12.2f %14.1f %12.3f %10.0f\n",
			v.Name, v.AllocsPerMsg, v.BytesPerMsg, v.FramesPerMsg, v.NsPerMsg)
	}
	fmt.Fprintf(&b, "improvement: %.1fx fewer allocs/msg, %.1fx fewer frames/msg\n",
		r.AllocImprovement, r.FrameImprovement)
	fmt.Fprintf(&b, "optimized counters: recycled=%d batchPolls=%d coalescedMsgs=%d bundles=%d\n",
		r.Optimized.FramesRecycled, r.Optimized.BatchPolls,
		r.Optimized.MsgsCoalesced, r.Optimized.CoalescedFrames)
	return b.String()
}

// WriteJSON writes the report to path (BENCH_datapath.json).
func (r DatapathReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
