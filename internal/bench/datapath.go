package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"lcigraph/internal/comm"
	"lcigraph/internal/fabric"
	"lcigraph/internal/health"
	"lcigraph/internal/incident"
	"lcigraph/internal/telemetry"
	"lcigraph/internal/tracing"
)

// DatapathVariant measures one configuration of the small-message data path:
// an all-to-all fused exchange of many tiny per-peer messages per epoch,
// reporting heap allocations and wire frames per logical message.
type DatapathVariant struct {
	Name       string `json:"name"`
	FramePool  bool   `json:"frame_pool"`
	Coalescing bool   `json:"coalescing"`
	Telemetry  bool   `json:"telemetry"`
	Tracing    bool   `json:"tracing"`
	Health     bool   `json:"health"`
	Incident   bool   `json:"incident"`
	Messages   int    `json:"messages"`

	AllocsPerMsg float64 `json:"allocs_per_msg"`
	BytesPerMsg  float64 `json:"alloc_bytes_per_msg"`
	FramesPerMsg float64 `json:"frames_per_msg"`
	NsPerMsg     float64 `json:"ns_per_msg"`

	FramesRecycled  int64 `json:"frames_recycled"`
	BatchPolls      int64 `json:"batch_polls"`
	MsgsCoalesced   int64 `json:"msgs_coalesced"`
	CoalescedFrames int64 `json:"coalesced_frames"`
}

// DatapathReport is the before/after comparison committed as
// BENCH_datapath.json: baseline reproduces the pre-optimisation data path
// (frame pooling off, coalescing off), optimized is the current default.
type DatapathReport struct {
	Hosts   int `json:"hosts"`
	PerPeer int `json:"per_peer"`
	MsgSize int `json:"msg_size"`
	Epochs  int `json:"epochs"`

	Baseline  DatapathVariant `json:"baseline"`
	Optimized DatapathVariant `json:"optimized"`

	// TelemetryOff re-runs the optimized configuration with a disabled
	// registry (the LCI_NO_TELEMETRY path); Optimized is the telemetry-on
	// arm. Both are the median-ns/msg run of overheadTrials interleaved
	// trials — back-to-back single runs confound the comparison with
	// machine drift on a shared box. OverheadPct is how much slower the
	// instrumented hot path is — the leave-it-on budget is ~3% at 64B
	// (DESIGN.md §11).
	TelemetryOff DatapathVariant `json:"telemetry_off"`
	OverheadPct  float64         `json:"telemetry_overhead_pct"`

	// TracingOn re-runs the optimized configuration with a live lifecycle
	// tracer (the LCI_TRACE path); Optimized doubles as the tracing-off arm
	// — its endpoints carry the instrumentation but a nil tracer, i.e. the
	// dark path. Because the nil-tracer checks ride inside both telemetry
	// arms above, OverheadPct staying within the 3% budget is also the
	// proof that the dark path is free; TracingOverheadPct prices the
	// opt-in ring writes themselves.
	TracingOn          DatapathVariant `json:"tracing_on"`
	TracingOverheadPct float64         `json:"tracing_overhead_pct"`

	// HealthOn re-runs the optimized configuration with a health.Monitor
	// sampling rank 0's live registry at 100x the production cadence (10 ms
	// vs 1 s), so the bench overstates rather than hides the cost. The
	// monitor's snapshot/derive work rides its own goroutine; what this arm
	// prices is the cache and scheduler pressure it puts on the hot path.
	// Same 3% leave-it-on budget as telemetry (DESIGN.md §16).
	HealthOn          DatapathVariant `json:"health_on"`
	HealthOverheadPct float64         `json:"health_overhead_pct"`

	// IncidentOn re-runs the optimized configuration with the continuous
	// profiler sampling at 100x the production duty cycle (20 ms CPU windows
	// every 600 ms vs 2 s every 60 s), pricing what "always ready for a
	// postmortem" costs the hot path: the SIGPROF interrupts during each
	// window plus the ring bookkeeping. Same 3% leave-it-on budget
	// (DESIGN.md §17).
	IncidentOn          DatapathVariant `json:"incident_on"`
	IncidentOverheadPct float64         `json:"incident_overhead_pct"`

	AllocImprovement float64 `json:"alloc_improvement"` // baseline/optimized allocs per msg
	FrameImprovement float64 `json:"frame_improvement"` // baseline/optimized frames per msg
}

// runDatapathVariant drives epochs of the fused exchange: every host sends
// perPeer messages of size bytes to every other host per epoch, received via
// FinishFusedCount. One warm-up epoch populates the frame free-list and the
// layers' internal buffers before measurement starts.
func runDatapathVariant(hosts, perPeer, size, epochs int, pool, coalesce, tele, trace, healthOn, incidentOn bool) DatapathVariant {
	prof := fabric.TestProfile()
	prof.DisableFramePool = !pool
	fab := fabric.New(hosts, prof)
	// Registries are forced on or off (rather than env-derived) so the
	// telemetry ablation arms are deterministic. The tracing arm forces a
	// tracer per host; the off arms leave Options.Tracer nil, which is the
	// dark path as long as the bench runs without LCI_TRACE in the
	// environment (make bench-datapath does).
	regs := make([]*telemetry.Registry, hosts)
	layers := make([]*comm.LCILayer, hosts)
	for r := range layers {
		if tele {
			regs[r] = telemetry.NewEnabled(r)
		} else {
			regs[r] = telemetry.NewDisabled(r)
		}
		fab.Endpoint(r).RegisterMetrics(regs[r])
		opt := LCIOptions(hosts, 2)
		opt.Telemetry = regs[r]
		if trace {
			opt.Tracer = tracing.New(r, 0)
		}
		layers[r] = comm.NewLCILayer(fab.Endpoint(r), opt)
		layers[r].SetCoalescing(coalesce)
	}

	// Payload buffers are prepared up front: the measurement isolates the
	// runtime's per-message cost (frames, pool traffic, bookkeeping) from
	// the application's payload generation, which is identical either way.
	perEpoch := (hosts - 1) * perPeer
	mkBufs := func(n int) [][][]byte {
		all := make([][][]byte, hosts)
		for r := range all {
			bufs := make([][]byte, n*perEpoch)
			for k := range bufs {
				bufs[k] = layers[r].AllocBuf(size)
				bufs[k][0] = byte(k)
			}
			all[r] = bufs
		}
		return all
	}

	runEpoch := func(tag uint32, all [][][]byte, epoch int) {
		var wg sync.WaitGroup
		for r := range layers {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				l := layers[r]
				bufs := all[r][epoch*perEpoch:]
				eff := l.BeginFused(tag)
				k := 0
				for p := 0; p < hosts; p++ {
					if p == r {
						continue
					}
					for i := 0; i < perPeer; i++ {
						l.SendFused(i, p, eff, bufs[k])
						k++
					}
				}
				l.FinishFusedCount(eff, perEpoch, func(int, []byte) {})
			}(r)
		}
		wg.Wait()
	}

	// Frame counts come straight from the provider atomics so the
	// telemetry-off arm still reports frames/msg (its registry is dark).
	frames := func() int64 {
		var n int64
		for r := 0; r < hosts; r++ {
			n += fab.Endpoint(r).Stats().SendFrames
		}
		return n
	}

	runEpoch(1, mkBufs(1), 0) // warm-up
	var mon *health.Monitor
	if healthOn {
		// 10 ms sampling is 100x the production cadence; a ~100-epoch trial
		// then sees several full snapshot+derive cycles competing with the
		// exchange for cores, which is already far beyond the worst case we
		// budget for.
		mon = health.New(health.Options{Rank: 0, Ranks: hosts, Interval: 10 * time.Millisecond, Reg: regs[0]})
		mon.Start()
	}
	var rec *incident.Recorder
	var recDir string
	if incidentOn {
		// 20 ms CPU windows every 600 ms is the production duty cycle (2 s
		// per 60 s) at 100x cadence: several full StartCPUProfile/Stop
		// cycles land inside a trial, so the SIGPROF cost is overstated,
		// not hidden.
		recDir, _ = os.MkdirTemp("", "lci-bench-incident-")
		rec = incident.New(incident.Options{
			Rank: 0, Ranks: 1, Dir: recDir, Reg: regs[0],
			ProfilePeriod:   600 * time.Millisecond,
			ProfileDuration: 20 * time.Millisecond,
		})
		rec.Start()
	}
	all := mkBufs(epochs)
	framesBefore := frames()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for e := 0; e < epochs; e++ {
		runEpoch(2, all, e)
	}
	wall := time.Since(start)
	mon.Close()
	rec.Close()
	if recDir != "" {
		os.RemoveAll(recDir)
	}
	runtime.ReadMemStats(&after)
	framesAfter := frames()
	net := NetStatsFromSnapshot(mergeRegistries(regs))

	v := DatapathVariant{
		Name:       variantName(pool, coalesce, tele, trace, healthOn, incidentOn),
		FramePool:  pool,
		Coalescing: coalesce,
		Telemetry:  tele,
		Tracing:    trace,
		Health:     healthOn,
		Incident:   incidentOn,
		Messages:   hosts * (hosts - 1) * perPeer * epochs,
	}
	msgs := float64(v.Messages)
	v.AllocsPerMsg = float64(after.Mallocs-before.Mallocs) / msgs
	v.BytesPerMsg = float64(after.TotalAlloc-before.TotalAlloc) / msgs
	v.FramesPerMsg = float64(framesAfter-framesBefore) / msgs
	v.NsPerMsg = float64(wall.Nanoseconds()) / msgs
	v.FramesRecycled = net.FramesRecycled
	v.BatchPolls = net.BatchPolls
	v.MsgsCoalesced = net.MsgsCoalesced
	v.CoalescedFrames = net.CoalescedFrames
	for _, l := range layers {
		l.Stop()
	}
	return v
}

// overheadTrials is how many interleaved telemetry-on/off trial pairs the
// report runs; each arm reports its median-ns/msg trial.
const overheadTrials = 7

// medianVariant picks the trial with the median ns/msg.
func medianVariant(vs []DatapathVariant) DatapathVariant {
	sorted := append([]DatapathVariant(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].NsPerMsg < sorted[j].NsPerMsg })
	return sorted[len(sorted)/2]
}

func variantName(pool, coalesce, tele, trace, healthOn, incidentOn bool) string {
	var name string
	switch {
	case pool && coalesce:
		name = "pooled+coalesced"
	case pool:
		name = "pooled"
	case coalesce:
		name = "coalesced"
	default:
		name = "baseline"
	}
	if !tele {
		name += ",no-telemetry"
	}
	if trace {
		name += ",tracing"
	}
	if healthOn {
		name += ",health"
	}
	if incidentOn {
		name += ",profiling"
	}
	return name
}

// Datapath runs the before/after comparison for the zero-allocation batched
// data path. Zero or negative arguments select the defaults used for
// BENCH_datapath.json (4 hosts, 64 messages of 64 bytes per peer, 25 epochs).
func Datapath(hosts, perPeer, size, epochs int) DatapathReport {
	if hosts <= 0 {
		hosts = 4
	}
	if perPeer <= 0 {
		perPeer = 64
	}
	if size <= 0 {
		size = 64
	}
	if epochs <= 0 {
		epochs = 25
	}
	r := DatapathReport{Hosts: hosts, PerPeer: perPeer, MsgSize: size, Epochs: epochs}
	r.Baseline = runDatapathVariant(hosts, perPeer, size, epochs, false, false, true, false, false, false)
	// The on/off delta is a few ns/msg, so each trial must run long enough
	// that scheduler jitter amortizes: ~10 ms trials swing ±15% run to run.
	ovEpochs := epochs
	if ovEpochs < 100 {
		ovEpochs = 100
	}
	onT := make([]DatapathVariant, overheadTrials)
	offT := make([]DatapathVariant, overheadTrials)
	trcT := make([]DatapathVariant, overheadTrials)
	hlT := make([]DatapathVariant, overheadTrials)
	incT := make([]DatapathVariant, overheadTrials)
	ratios := make([]float64, overheadTrials)
	trcRatios := make([]float64, overheadTrials)
	hlRatios := make([]float64, overheadTrials)
	incRatios := make([]float64, overheadTrials)
	for i := range onT {
		onT[i] = runDatapathVariant(hosts, perPeer, size, ovEpochs, true, true, true, false, false, false)
		offT[i] = runDatapathVariant(hosts, perPeer, size, ovEpochs, true, true, false, false, false, false)
		trcT[i] = runDatapathVariant(hosts, perPeer, size, ovEpochs, true, true, true, true, false, false)
		hlT[i] = runDatapathVariant(hosts, perPeer, size, ovEpochs, true, true, true, false, true, false)
		incT[i] = runDatapathVariant(hosts, perPeer, size, ovEpochs, true, true, true, false, false, true)
		ratios[i] = onT[i].NsPerMsg / offT[i].NsPerMsg
		trcRatios[i] = trcT[i].NsPerMsg / onT[i].NsPerMsg
		hlRatios[i] = hlT[i].NsPerMsg / onT[i].NsPerMsg
		incRatios[i] = incT[i].NsPerMsg / onT[i].NsPerMsg
	}
	r.Optimized = medianVariant(onT)
	r.TelemetryOff = medianVariant(offT)
	r.TracingOn = medianVariant(trcT)
	r.HealthOn = medianVariant(hlT)
	r.IncidentOn = medianVariant(incT)
	// Overhead is the median of the per-pair ratios, not the ratio of
	// medians: the two runs of a pair are adjacent in time, so slow machine
	// drift hits both and divides out.
	sort.Float64s(ratios)
	r.OverheadPct = (ratios[len(ratios)/2] - 1) * 100
	sort.Float64s(trcRatios)
	r.TracingOverheadPct = (trcRatios[len(trcRatios)/2] - 1) * 100
	sort.Float64s(hlRatios)
	r.HealthOverheadPct = (hlRatios[len(hlRatios)/2] - 1) * 100
	sort.Float64s(incRatios)
	r.IncidentOverheadPct = (incRatios[len(incRatios)/2] - 1) * 100
	if r.Optimized.AllocsPerMsg > 0 {
		r.AllocImprovement = r.Baseline.AllocsPerMsg / r.Optimized.AllocsPerMsg
	}
	if r.Optimized.FramesPerMsg > 0 {
		r.FrameImprovement = r.Baseline.FramesPerMsg / r.Optimized.FramesPerMsg
	}
	return r
}

// Table renders the report for cmd/experiments.
func (r DatapathReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Datapath: %d hosts, %d x %dB msgs/peer/epoch, %d epochs (%d msgs baseline, %d per overhead arm)\n",
		r.Hosts, r.PerPeer, r.MsgSize, r.Epochs, r.Baseline.Messages, r.Optimized.Messages)
	fmt.Fprintf(&b, "%-28s %12s %14s %12s %10s\n",
		"variant", "allocs/msg", "alloc B/msg", "frames/msg", "ns/msg")
	for _, v := range []DatapathVariant{r.Baseline, r.Optimized, r.TelemetryOff, r.TracingOn, r.HealthOn, r.IncidentOn} {
		fmt.Fprintf(&b, "%-28s %12.2f %14.1f %12.3f %10.0f\n",
			v.Name, v.AllocsPerMsg, v.BytesPerMsg, v.FramesPerMsg, v.NsPerMsg)
	}
	fmt.Fprintf(&b, "improvement: %.1fx fewer allocs/msg, %.1fx fewer frames/msg\n",
		r.AllocImprovement, r.FrameImprovement)
	fmt.Fprintf(&b, "optimized counters: recycled=%d batchPolls=%d coalescedMsgs=%d bundles=%d\n",
		r.Optimized.FramesRecycled, r.Optimized.BatchPolls,
		r.Optimized.MsgsCoalesced, r.Optimized.CoalescedFrames)
	fmt.Fprintf(&b, "telemetry overhead at %dB: %+.1f%% ns/msg vs disabled registry\n",
		r.MsgSize, r.OverheadPct)
	if r.OverheadPct > 3 {
		fmt.Fprintf(&b, "WARNING: telemetry overhead %.1f%% exceeds the 3%% leave-it-on budget\n",
			r.OverheadPct)
	}
	fmt.Fprintf(&b, "tracing overhead at %dB: %+.1f%% ns/msg vs dark (nil-tracer) path; "+
		"dark path rides in both telemetry arms above\n",
		r.MsgSize, r.TracingOverheadPct)
	fmt.Fprintf(&b, "health sampling overhead at %dB: %+.1f%% ns/msg at a 10ms interval "+
		"(production cadence is 1s)\n",
		r.MsgSize, r.HealthOverheadPct)
	if r.HealthOverheadPct > 3 {
		fmt.Fprintf(&b, "WARNING: health sampling overhead %.1f%% exceeds the 3%% leave-it-on budget\n",
			r.HealthOverheadPct)
	}
	fmt.Fprintf(&b, "continuous profiling overhead at %dB: %+.1f%% ns/msg at 20ms windows per 600ms "+
		"(production cadence is 2s per 60s)\n",
		r.MsgSize, r.IncidentOverheadPct)
	if r.IncidentOverheadPct > 3 {
		fmt.Fprintf(&b, "WARNING: continuous profiling overhead %.1f%% exceeds the 3%% leave-it-on budget\n",
			r.IncidentOverheadPct)
	}
	return b.String()
}

// WriteJSON writes the report to path (BENCH_datapath.json).
func (r DatapathReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
