package bench

import (
	"testing"

	"lcigraph/internal/fabric"
	"lcigraph/internal/graph"
	"lcigraph/internal/mpi"
)

// testGraph is a small weighted scale-free graph, symmetrized so CC is
// meaningful.
func testGraph() *graph.Graph {
	return graph.Kron(7, 6, 11, 32) // 128 vertices, ~1500 directed edges
}

func testCfg(app, layer string) Config {
	return Config{
		App: app, Layer: layer,
		Hosts: 3, Threads: 2,
		Source:  5,
		PRIters: 5,
		Profile: fabric.TestProfile(),
		Impl:    mpi.TestImpl(),
	}
}

// TestAbelianAllAppsAllLayers is the core integration test: every app on
// every communication layer must reproduce the single-host oracle exactly
// (pagerank to float tolerance).
func TestAbelianAllAppsAllLayers(t *testing.T) {
	g := testGraph()
	for _, app := range Apps() {
		for _, layer := range Layers() {
			t.Run(app+"/"+layer, func(t *testing.T) {
				r := RunAbelian(g, testCfg(app, layer))
				if err := Verify(g, r); err != nil {
					t.Fatalf("%s on %s: %v", app, layer, err)
				}
				if r.Rounds == 0 || r.Wall <= 0 {
					t.Fatalf("suspicious measurements: %+v", r)
				}
			})
		}
	}
}

// TestGeminiAllAppsBothStreams verifies the Gemini engine against the same
// oracles on its two backends.
func TestGeminiAllAppsBothStreams(t *testing.T) {
	g := testGraph()
	for _, app := range Apps() {
		for _, layer := range StreamKinds() {
			t.Run(app+"/"+layer, func(t *testing.T) {
				r := RunGemini(g, testCfg(app, layer))
				if err := Verify(g, r); err != nil {
					t.Fatalf("%s on %s: %v", app, layer, err)
				}
			})
		}
	}
}

// TestHostCountsAndPolicies sweeps host counts on one app per framework.
func TestHostCountsAndPolicies(t *testing.T) {
	g := testGraph()
	for _, p := range []int{1, 2, 4, 5} {
		cfg := testCfg("sssp", LCI)
		cfg.Hosts = p
		if err := Verify(g, RunAbelian(g, cfg)); err != nil {
			t.Fatalf("abelian sssp P=%d: %v", p, err)
		}
		if err := Verify(g, RunGemini(g, cfg)); err != nil {
			t.Fatalf("gemini sssp P=%d: %v", p, err)
		}
	}
}

// TestDirectedGraphBFS uses an asymmetric web-like graph (bfs/sssp only).
func TestDirectedGraphBFS(t *testing.T) {
	g := graph.Web(7, 8, 3, 16)
	for _, layer := range Layers() {
		cfg := testCfg("bfs", layer)
		cfg.Source = 0
		if err := Verify(g, RunAbelian(g, cfg)); err != nil {
			t.Fatalf("abelian bfs on %s: %v", layer, err)
		}
	}
	cfg := testCfg("bfs", LCI)
	cfg.Source = 0
	if err := Verify(g, RunGemini(g, cfg)); err != nil {
		t.Fatalf("gemini bfs: %v", err)
	}
}

// TestVerifyCatchesCorruption: the oracle checker must reject wrong
// results (guards the guard).
func TestVerifyCatchesCorruption(t *testing.T) {
	g := testGraph()
	r := RunAbelian(g, testCfg("bfs", LCI))
	if err := Verify(g, r); err != nil {
		t.Fatal(err)
	}
	r.Dist[3]++
	if err := Verify(g, r); err == nil {
		t.Fatal("Verify accepted corrupted distances")
	}
	pr := RunAbelian(g, testCfg("pagerank", LCI))
	pr.Ranks[1] += 0.5
	if err := Verify(g, pr); err == nil {
		t.Fatal("Verify accepted corrupted ranks")
	}
	bad := &Result{Config: Config{App: "nonsense"}}
	if err := Verify(g, bad); err == nil {
		t.Fatal("Verify accepted unknown app")
	}
}

// TestMemFootprintOrder: Fig. 5's shape must hold in the integrated runs.
func TestMemFootprintOrder(t *testing.T) {
	g := testGraph()
	rLCI := RunAbelian(g, testCfg("pagerank", LCI))
	rRMA := RunAbelian(g, testCfg("pagerank", MPIRMA))
	if rRMA.MemMax <= rLCI.MemMax {
		t.Errorf("RMA footprint %d should exceed LCI footprint %d", rRMA.MemMax, rLCI.MemMax)
	}
	t.Logf("lci=%d rma=%d (max bytes)", rLCI.MemMax, rRMA.MemMax)
}
