package bench

import (
	"testing"
	"time"

	"lcigraph/internal/fabric"
	"lcigraph/internal/mpi"
)

func TestMicroLatencySmoke(t *testing.T) {
	for _, iface := range Ifaces() {
		lat := MicroLatency(iface, 8, 50, fabric.TestProfile(), mpi.TestImpl())
		if lat <= 0 || lat > time.Second {
			t.Fatalf("%s latency = %v", iface, lat)
		}
	}
}

func TestMicroRateSmoke(t *testing.T) {
	for _, iface := range Ifaces() {
		for _, threads := range []int{1, 2} {
			rate := MicroRate(iface, threads, 200, 8, fabric.TestProfile(), mpi.TestImpl())
			if rate <= 0 {
				t.Fatalf("%s rate with %d threads = %f", iface, threads, rate)
			}
		}
	}
}

// TestFig1Shape checks the paper's headline ordering on the realistic
// profiles: LCI queue latency ≤ no-probe ≤ probe (probe pays an extra call
// and matching pass per message). Minimum of several runs to shed
// scheduler noise on small machines.
func TestFig1Shape(t *testing.T) {
	const iters = 500
	prof, impl := fabric.OmniPath(), mpi.IntelMPI()
	// Interleave the trials round-robin rather than per-interface blocks:
	// a load burst from a concurrently-running test package then taxes
	// every interface's sample set instead of skewing one side of the
	// comparison.
	best := map[string]time.Duration{}
	for i := 0; i < 5; i++ {
		for _, iface := range []string{IfaceQueue, IfaceProbe, IfaceNoProbe} {
			l := MicroLatency(iface, 8, iters, prof, impl)
			if cur, ok := best[iface]; !ok || l < cur {
				best[iface] = l
			}
		}
	}
	queue := best[IfaceQueue]
	probe := best[IfaceProbe]
	noprobe := best[IfaceNoProbe]
	t.Logf("8B latency: queue=%v noprobe=%v probe=%v", queue, noprobe, probe)
	if queue > probe {
		t.Errorf("LCI queue latency %v exceeds MPI probe latency %v", queue, probe)
	}
	if noprobe > probe*105/100 {
		t.Errorf("no-probe latency %v exceeds probe latency %v (probe must pay extra)", noprobe, probe)
	}
}

func TestTable3Renders(t *testing.T) {
	s := Table3()
	if len(s) == 0 {
		t.Fatal("empty table")
	}
}
