package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/mpi"
)

// All-to-all microbenchmark: the paper stresses that MPI's matching and
// ordering costs worsen "when each host communicates simultaneously with
// many other hosts (resulting in many concurrent pending receives)". This
// measures aggregate small-message rate with P hosts all blasting all
// peers, per interface.

// AllToAllRate returns total delivered messages per second for P hosts
// each sending perPeer messages of size bytes to every other host.
func AllToAllRate(iface string, hosts, perPeer, size int, prof fabric.Profile, impl mpi.Impl) float64 {
	switch iface {
	case IfaceQueue:
		return lciAllToAll(hosts, perPeer, size, prof)
	case IfaceNoProbe, IfaceProbe:
		return mpiAllToAll(iface, hosts, perPeer, size, prof, impl)
	}
	panic("bench: unknown iface " + iface)
}

// peersOf returns all ranks except r, in order: the destination cycle must
// hand every peer exactly perPeer messages or mismatched expectations
// deadlock the exchange.
func peersOf(r, hosts int) []int {
	out := make([]int, 0, hosts-1)
	for p := 0; p < hosts; p++ {
		if p != r {
			out = append(out, p)
		}
	}
	return out
}

func lciAllToAll(hosts, perPeer, size int, prof fabric.Profile) float64 {
	fab := fabric.New(hosts, prof)
	eps := make([]*lci.Endpoint, hosts)
	stop := make(chan struct{})
	defer close(stop)
	for r := 0; r < hosts; r++ {
		eps[r] = lci.NewEndpoint(fab.Endpoint(r), lci.Options{PoolPackets: 64 * hosts})
		go eps[r].Serve(stop)
	}
	expect := (hosts - 1) * perPeer

	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < hosts; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e := eps[r]
			peers := peersOf(r, hosts)
			w := e.Pool().RegisterWorker()
			buf := make([]byte, size)
			sent, got := 0, 0
			var pending []*lci.Request
			for sent < expect || got < expect {
				if sent < expect {
					dst := peers[sent%len(peers)] // exactly perPeer each
					if _, ok := e.SendEnq(w, dst, 0, buf); ok {
						sent++
					}
				}
				if rq, ok := e.RecvDeq(); ok {
					if rq.Done() {
						rq.Release()
						got++
					} else {
						pending = append(pending, rq)
					}
				}
				keep := pending[:0]
				for _, rq := range pending {
					if rq.Done() {
						rq.Release()
						got++
					} else {
						keep = append(keep, rq)
					}
				}
				pending = keep
				runtime.Gosched()
			}
		}(r)
	}
	wg.Wait()
	el := time.Since(start)
	return float64(hosts*expect) / el.Seconds()
}

func mpiAllToAll(iface string, hosts, perPeer, size int, prof fabric.Profile, impl mpi.Impl) float64 {
	w := mpi.NewWorld(hosts, prof, impl, mpi.ThreadMultiple)
	expect := (hosts - 1) * perPeer

	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < hosts; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Comm(r)
			peers := peersOf(r, hosts)
			buf := make([]byte, size)
			big := make([]byte, maxMsg)
			sent, got := 0, 0
			var rreq *mpi.Request
			for sent < expect || got < expect {
				if sent < expect {
					dst := peers[sent%len(peers)] // exactly perPeer each
					if _, err := c.Isend(buf, dst, 0); err != nil {
						panic(err)
					}
					sent++
				}
				if got < expect {
					switch iface {
					case IfaceNoProbe:
						// Keep one pre-posted max-size receive outstanding;
						// never block — blocking here while peers also
						// block would cycle (sends are interleaved with
						// receives on every host).
						if rreq == nil {
							var err error
							rreq, err = c.Irecv(big, mpi.AnySource, mpi.AnyTag)
							if err != nil {
								panic(err)
							}
						}
						done, err := c.Test(rreq)
						if err != nil {
							panic(err)
						}
						if done {
							rreq = nil
							got++
						}
					case IfaceProbe:
						if st, ok := c.Iprobe(mpi.AnySource, mpi.AnyTag); ok {
							exact := make([]byte, st.Count)
							if _, err := c.Recv(exact, st.Source, st.Tag); err != nil {
								panic(err)
							}
							got++
						}
					}
				}
				runtime.Gosched()
			}
			if err := c.Flush(); err != nil {
				panic(err)
			}
		}(r)
	}
	wg.Wait()
	el := time.Since(start)
	return float64(hosts*expect) / el.Seconds()
}

// AllToAllTable formats the all-to-all sweep across host counts.
func AllToAllTable(hostCounts []int, perPeer int) string {
	var b strings.Builder
	b.WriteString("All-to-all message rate (8 B messages, total msgs/s)\n")
	fmt.Fprintf(&b, "  %-10s", "iface")
	for _, h := range hostCounts {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("P=%d", h))
	}
	b.WriteString("\n")
	for _, iface := range Ifaces() {
		fmt.Fprintf(&b, "  %-10s", iface)
		for _, h := range hostCounts {
			rate := AllToAllRate(iface, h, perPeer, 8, fabric.OmniPath(), mpi.IntelMPI())
			fmt.Fprintf(&b, " %10.0f", rate)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ThreadScaling runs Abelian pagerank end to end across per-host thread
// counts — the paper's claim that applications "scale well to large thread
// counts per host on LCI" while MPI tapers.
func ThreadScaling(e ExpConfig, threadCounts []int) string {
	g := e.inputs()["kron"]
	p := e.Hosts[len(e.Hosts)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "Thread scaling: Abelian pagerank, kron, P=%d\n", p)
	fmt.Fprintf(&b, "  %-10s", "layer")
	for _, tc := range threadCounts {
		fmt.Fprintf(&b, " %12s", fmt.Sprintf("T=%d", tc))
	}
	b.WriteString("\n")
	for _, layer := range []string{LCI, MPIProbe} {
		fmt.Fprintf(&b, "  %-10s", layer)
		for _, tc := range threadCounts {
			cfg := Config{App: "pagerank", Layer: layer, Hosts: p, Threads: tc,
				PRIters: e.PRIters}
			mean, _ := meanOf(e.Repeats, func() *Result { return RunAbelian(g, cfg) })
			fmt.Fprintf(&b, " %12s", mean.Round(time.Microsecond))
		}
		b.WriteString("\n")
	}
	return b.String()
}
