// Package bench is the experiment harness: it assembles graph, partition,
// fabric, communication layer and framework into one run, and provides the
// sweep drivers that regenerate every table and figure of the paper
// (DESIGN.md §4).
package bench

import (
	"fmt"
	"math"
	"time"

	"lcigraph/internal/abelian"
	"lcigraph/internal/apps"
	"lcigraph/internal/cluster"
	"lcigraph/internal/comm"
	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/gemini"
	"lcigraph/internal/graph"
	"lcigraph/internal/memtrack"
	"lcigraph/internal/mpi"
	"lcigraph/internal/netfabric"
	"lcigraph/internal/partition"
	"lcigraph/internal/telemetry"
	"lcigraph/internal/trace"
)

// Layer kinds.
const (
	LCI      = "lci"
	MPIProbe = "mpi-probe"
	MPIRMA   = "mpi-rma"
)

// Layers lists the Abelian layer kinds in paper order.
func Layers() []string { return []string{LCI, MPIProbe, MPIRMA} }

// StreamKinds lists the Gemini backends (Fig. 4 compares these two).
func StreamKinds() []string { return []string{LCI, MPIProbe} }

// Apps lists the benchmark applications in paper order.
func Apps() []string { return []string{"bfs", "cc", "pagerank", "sssp"} }

// kcoreK is the fixed core parameter for the "kcore" extension app.
const kcoreK = 4

// Config describes one run.
type Config struct {
	App     string // bfs | cc | pagerank | sssp
	Layer   string // lci | mpi-probe | mpi-rma
	Hosts   int
	Threads int // compute threads per host
	Source  uint32
	PRIters int
	Profile fabric.Profile
	Impl    mpi.Impl
	// Transport selects the fabric backend: "" or "sim" is the in-process
	// simulator with Profile's characteristics; "udp" runs every host on a
	// real loopback UDP socket (internal/netfabric) in this process.
	Transport string
	// Fault injects datagram loss/duplication/reordering on the UDP
	// transport (Transport == "udp" only).
	Fault netfabric.Fault
	// Fused enables the LCI gather-send fusion extension (Abelian + LCI
	// only; see internal/abelian.Runtime.Fused).
	Fused bool
	// NoAggregation disables the probe layer's buffered network layer
	// (ablation: the naive per-message baseline of §III-B).
	NoAggregation bool
	// NoCoalescing disables the LCI layers' eager coalescer (ablation:
	// every small message pays its own wire frame; DESIGN.md §8).
	NoCoalescing bool
	// Adaptive enables Gemini's sparse/dense mode switching (bfs, cc and
	// sssp on the Gemini engine only).
	Adaptive bool
	// Trace, if non-nil, collects per-round records from every host
	// (Abelian runs).
	Trace *trace.Trace
}

// Result is one run's measurements.
type Result struct {
	Config  Config
	Wall    time.Duration
	Compute []time.Duration // per host
	Comm    []time.Duration // per host (non-overlapped)
	MemMax  int64           // max communication-buffer footprint across hosts
	MemMin  int64
	Rounds  int
	Net     NetStats
	// Snapshot is the merged cross-host telemetry for the run; Net is
	// derived from it (NetStatsFromSnapshot), so the bench tables and the
	// launcher's -v report render from one source.
	Snapshot *telemetry.Snapshot
	Dist     []uint64  // bfs/cc/sssp results per global vertex
	Ranks    []float64 // pagerank results per global vertex
}

// NetStats aggregates the fabric's wire-level counters across all hosts —
// useful for explaining layer differences (e.g. LCI's rendezvous puts vs
// the probe layer's bundled eager frames).
type NetStats struct {
	Frames      int64 // eager frames injected
	FrameBytes  int64
	Puts        int64 // RDMA puts
	PutBytes    int64
	SendRetries int64 // back-pressure events

	FramesRecycled  int64 // pooled frames returned to the fabric free-list
	BatchPolls      int64 // batched ring drains that returned ≥1 frame
	MsgsCoalesced   int64 // messages shipped inside multi-record bundles
	CoalescedFrames int64 // multi-record bundles shipped

	// Transport counters: zero on the in-process simulator, live on the
	// UDP provider (internal/netfabric).
	Retransmits   int64 // datagrams retransmitted after ack timeout
	Drops         int64 // datagrams dropped (fault injection + stale dups)
	Acks          int64 // standalone ack/credit datagrams sent
	CreditStalls  int64 // sends refused for lack of receiver credit
	SendBatches   int64 // multi-datagram sendmmsg bursts
	RecvBatches   int64 // multi-datagram recvmmsg bursts
	GSOSends      int64 // multi-segment UDP_SEGMENT trains handed to the kernel
	GROCoalesced  int64 // coalesced super-datagrams received and re-split
	SockDrops     int64 // kernel receive-queue drops (SO_RXQ_OVFL)
	PiggybackAcks int64 // acks carried on outgoing DATA packets
	DelayedAcks   int64 // standalone acks deferred to the delayed-ack tick
	SockErrors    int64 // transient socket errors absorbed by readers
}

// NetStatsFromSnapshot derives the legacy NetStats view from a telemetry
// snapshot: the counters live under their canonical registry names
// (internal/fabric, internal/comm) and this is the only place that maps
// them back onto the struct the tables and reports consume.
func NetStatsFromSnapshot(s *telemetry.Snapshot) NetStats {
	return NetStats{
		Frames:          s.Counter(fabric.MetricSendFrames),
		FrameBytes:      s.Counter(fabric.MetricSendBytes),
		Puts:            s.Counter(fabric.MetricPuts),
		PutBytes:        s.Counter(fabric.MetricPutBytes),
		SendRetries:     s.Counter(fabric.MetricSendRetries) + s.Counter(fabric.MetricPutRetries),
		FramesRecycled:  s.Counter(fabric.MetricFramesRecycled),
		BatchPolls:      s.Counter(fabric.MetricBatchPolls),
		MsgsCoalesced:   s.Counter(comm.MetricMsgsCoalesced),
		CoalescedFrames: s.Counter(comm.MetricBundles),
		Retransmits:     s.Counter(fabric.MetricRetransmits),
		Drops:           s.Counter(fabric.MetricPacketsDropped),
		Acks:            s.Counter(fabric.MetricAcksSent),
		CreditStalls:    s.Counter(fabric.MetricCreditStalls),
		SendBatches:     s.Counter(fabric.MetricSendBatches),
		RecvBatches:     s.Counter(fabric.MetricRecvBatches),
		GSOSends:        s.Counter(fabric.MetricGSOSends),
		GROCoalesced:    s.Counter(fabric.MetricGROCoalesced),
		SockDrops:       s.Counter(fabric.MetricSockDrops),
		PiggybackAcks:   s.Counter(fabric.MetricPiggybackAcks),
		DelayedAcks:     s.Counter(fabric.MetricDelayedAcks),
		SockErrors:      s.Counter(fabric.MetricSockErrors),
	}
}

// hostRegistries builds one registry per host (honoring LCI_NO_TELEMETRY)
// and registers each host's fabric provider into its own, so in-process
// multi-host runs keep per-rank metrics separable until the final merge.
func hostRegistries(feps []fabric.Provider) []*telemetry.Registry {
	regs := make([]*telemetry.Registry, len(feps))
	for r, fep := range feps {
		regs[r] = telemetry.New(r)
		if mr, ok := fep.(fabric.MetricsRegistrar); ok {
			mr.RegisterMetrics(regs[r])
		}
	}
	return regs
}

// mergeRegistries freezes every host registry and folds the snapshots into
// the run-wide view.
func mergeRegistries(regs []*telemetry.Registry) *telemetry.Snapshot {
	snaps := make([]*telemetry.Snapshot, len(regs))
	for i, reg := range regs {
		snaps[i] = reg.Snapshot()
	}
	return telemetry.Merge(snaps...)
}

// MaxCompute returns the largest per-host compute time.
func (r *Result) MaxCompute() time.Duration { return maxDur(r.Compute) }

// MaxComm returns the largest per-host non-overlapped communication time.
func (r *Result) MaxComm() time.Duration { return maxDur(r.Comm) }

func maxDur(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

func (c *Config) fill() {
	if c.Hosts <= 0 {
		c.Hosts = 4
	}
	if c.Threads <= 0 {
		c.Threads = 2
	}
	if c.PRIters <= 0 {
		c.PRIters = 10
	}
	if c.Profile.Name == "" {
		c.Profile = fabric.OmniPath()
	}
	if c.Impl.Name == "" {
		c.Impl = mpi.IntelMPI()
	}
}

// LCIOptions sizes the LCI endpoint for a P-host graph run. cmd/lci-launch
// uses the same sizing so multi-process runs match the in-process harness.
// The budgets are rank-global: under LCI_ENDPOINT_SHARDS=K (the default
// Shards here) lci.NewSharded partitions them K ways.
func LCIOptions(p, threads int) lci.Options {
	return lci.Options{
		PoolPackets:    64 * p,
		QueueDepth:     1024,
		MaxOutstanding: 1024,
		Workers:        threads + 1,
		Shards:         lci.ShardsFromEnv(),
	}
}

// transport builds the per-rank fabric providers for cfg: simulator
// endpoints, or real loopback UDP endpoints when cfg.Transport is "udp".
// close tears the UDP sockets down (a no-op for the simulator). Wire
// counters come out of each provider's telemetry registration, not a
// separate return value.
func transport(cfg *Config) (feps []fabric.Provider, close func()) {
	if cfg.Transport == "udp" {
		provs, err := netfabric.NewLoopbackGroup(cfg.Hosts, netfabric.Config{Fault: cfg.Fault})
		if err != nil {
			panic("bench: udp transport: " + err.Error())
		}
		feps = make([]fabric.Provider, cfg.Hosts)
		for r := range feps {
			feps[r] = provs[r]
		}
		return feps, func() { netfabric.CloseGroup(provs) }
	}
	fab := fabric.New(cfg.Hosts, cfg.Profile)
	feps = make([]fabric.Provider, cfg.Hosts)
	for r := range feps {
		feps[r] = fab.Endpoint(r)
	}
	return feps, func() {}
}

// RunAbelian executes one Abelian run (vertex-cut partition, Fig. 3
// configuration) of cfg.App over g and returns measurements plus results.
func RunAbelian(g *graph.Graph, cfg Config) *Result {
	cfg.fill()
	pt := partition.Build(g, cfg.Hosts, partition.VertexCut)
	feps, closeNet := transport(&cfg)
	defer closeNet()
	regs := hostRegistries(feps)

	var world *mpi.World
	switch cfg.Layer {
	case MPIProbe:
		world = mpi.NewWorldOver(feps, cfg.Impl, mpi.ThreadFunneled)
	case MPIRMA:
		world = mpi.NewWorldOver(feps, cfg.Impl, mpi.ThreadMultiple)
	}
	mk := func(r int) comm.Layer {
		switch cfg.Layer {
		case LCI:
			opt := LCIOptions(cfg.Hosts, cfg.Threads)
			opt.Telemetry = regs[r]
			l := comm.NewLCILayer(feps[r], opt)
			if cfg.NoCoalescing {
				l.SetCoalescing(false)
			}
			return l
		case MPIProbe:
			pl := comm.NewProbeLayer(world.Comm(r))
			pl.SetTelemetry(regs[r])
			if cfg.NoAggregation {
				pl.SetAggregation(0, 0)
			}
			return pl
		case MPIRMA:
			rl := comm.NewRMALayer(world.Comm(r))
			rl.SetTelemetry(regs[r])
			return rl
		default:
			panic("bench: unknown layer " + cfg.Layer)
		}
	}

	res := &Result{
		Config:  cfg,
		Compute: make([]time.Duration, cfg.Hosts),
		Comm:    make([]time.Duration, cfg.Hosts),
	}
	if cfg.App == "pagerank" {
		res.Ranks = make([]float64, g.N)
	} else {
		res.Dist = make([]uint64, g.N)
	}
	rounds := make([]int, cfg.Hosts)
	mems := make([]int64, cfg.Hosts)
	walls := make([]time.Duration, cfg.Hosts)

	cluster.Run(cfg.Hosts, cfg.Threads, mk, func(h *cluster.Host) {
		// Exclude setup (layer construction, pool allocation) from the
		// measurement, as the paper excludes graph construction time.
		h.Barrier()
		start := time.Now()
		hg := pt.Hosts[h.Rank]
		rt := abelian.New(h, hg, partition.VertexCut)
		rt.Fused = cfg.Fused
		rt.Trace = cfg.Trace
		switch cfg.App {
		case "bfs":
			f, _ := apps.BFS(rt, cfg.Source)
			collectU64(hg, f.Get, res.Dist)
		case "bfs-dir":
			f, _, _ := apps.BFSDirectionOpt(rt, cfg.Source)
			collectU64(hg, f.Get, res.Dist)
		case "sssp":
			f, _ := apps.SSSP(rt, cfg.Source)
			collectU64(hg, f.Get, res.Dist)
		case "sssp-delta":
			f, _ := apps.SSSPDelta(rt, cfg.Source, 16)
			collectU64(hg, f.Get, res.Dist)
		case "cc":
			f, _ := apps.CC(rt)
			collectU64(hg, f.Get, res.Dist)
		case "pagerank":
			f := apps.PageRank(rt, cfg.PRIters)
			collectF64(hg, f.Get, res.Ranks)
		case "kcore":
			f, _ := apps.KCore(rt, kcoreK)
			collectU64(hg, f.Get, res.Dist)
		default:
			panic("bench: unknown app " + cfg.App)
		}
		res.Compute[h.Rank] = rt.ComputeTime
		res.Comm[h.Rank] = rt.CommTime
		rounds[h.Rank] = rt.Rounds
		h.Barrier()
		walls[h.Rank] = time.Since(start)
		mems[h.Rank] = h.Layer.Tracker().Max()
	})
	res.Wall = maxDur(walls)
	res.Rounds = rounds[0]
	res.MemMax, res.MemMin = minMax(mems)
	res.Snapshot = mergeRegistries(regs)
	res.Net = NetStatsFromSnapshot(res.Snapshot)
	return res
}

// RunGemini executes one Gemini run (destination-owned edge-cut, Fig. 4
// configuration).
func RunGemini(g *graph.Graph, cfg Config) *Result {
	cfg.fill()
	pt := partition.Build(g, cfg.Hosts, partition.EdgeCutByDst)
	feps, closeNet := transport(&cfg)
	defer closeNet()
	regs := hostRegistries(feps)

	var world *mpi.World
	if cfg.Layer == MPIProbe {
		world = mpi.NewWorldOver(feps, cfg.Impl, mpi.ThreadMultiple)
	}
	mkStream := func(r int) comm.Stream {
		switch cfg.Layer {
		case LCI:
			opt := LCIOptions(cfg.Hosts, cfg.Threads)
			opt.Telemetry = regs[r]
			s := comm.NewLCIStream(feps[r], opt)
			if cfg.NoCoalescing {
				s.SetCoalescing(false)
			}
			return s
		case MPIProbe:
			ms := comm.NewMPIStream(world.Comm(r))
			ms.SetTelemetry(regs[r])
			return ms
		default:
			panic("bench: gemini supports lci and mpi-probe, got " + cfg.Layer)
		}
	}

	res := &Result{
		Config:  cfg,
		Compute: make([]time.Duration, cfg.Hosts),
		Comm:    make([]time.Duration, cfg.Hosts),
	}
	if cfg.App == "pagerank" {
		res.Ranks = make([]float64, g.N)
	} else {
		res.Dist = make([]uint64, g.N)
	}
	rounds := make([]int, cfg.Hosts)
	mems := make([]int64, cfg.Hosts)
	walls := make([]time.Duration, cfg.Hosts)

	cluster.Run(cfg.Hosts, cfg.Threads, func(r int) comm.Layer { return nopLayer{} },
		func(h *cluster.Host) {
			hg := pt.Hosts[h.Rank]
			s := mkStream(h.Rank)
			h.Barrier()
			start := time.Now()
			var e *gemini.Engine
			switch cfg.App {
			case "bfs":
				e = gemini.New(h, hg, s, apps.Inf, minU64)
				if cfg.Adaptive {
					apps.GeminiBFSAdaptive(e, cfg.Source)
				} else {
					apps.GeminiBFS(e, cfg.Source)
				}
				collectU64Masters(hg, e.Get, res.Dist)
			case "sssp":
				e = gemini.New(h, hg, s, apps.Inf, minU64)
				if cfg.Adaptive {
					apps.GeminiSSSPAdaptive(e, cfg.Source)
				} else {
					apps.GeminiSSSP(e, cfg.Source)
				}
				collectU64Masters(hg, e.Get, res.Dist)
			case "cc":
				e = gemini.New(h, hg, s, apps.Inf, minU64)
				if cfg.Adaptive {
					apps.GeminiCCAdaptive(e)
				} else {
					apps.GeminiCC(e)
				}
				collectU64Masters(hg, e.Get, res.Dist)
			case "pagerank":
				e = gemini.New(h, hg, s, 0, addU64)
				ranks := apps.GeminiPageRank(e, cfg.PRIters)
				for m := 0; m < hg.NumMasters; m++ {
					res.Ranks[hg.L2G[m]] = ranks[m]
				}
			default:
				panic("bench: unknown app " + cfg.App)
			}
			res.Compute[h.Rank] = e.ComputeTime
			res.Comm[h.Rank] = e.CommTime
			rounds[h.Rank] = e.Rounds
			h.Barrier()
			walls[h.Rank] = time.Since(start)
			mems[h.Rank] = s.Tracker().Max()
			s.Stop()
		})
	res.Wall = maxDur(walls)
	res.Rounds = rounds[0]
	res.MemMax, res.MemMin = minMax(mems)
	res.Snapshot = mergeRegistries(regs)
	res.Net = NetStatsFromSnapshot(res.Snapshot)
	return res
}

// nopLayer satisfies comm.Layer for Gemini runs, which use Streams instead.
type nopLayer struct{}

func (nopLayer) Name() string { return "none" }
func (nopLayer) Exchange(uint32, [][]byte, []bool, []int, func(int, []byte)) {
	panic("bench: exchange on nop layer")
}
func (nopLayer) AllocBuf(n int) []byte      { return make([]byte, n) }
func (nopLayer) Tracker() *memtrack.Tracker { return nil }
func (nopLayer) Stop()                      {}

func minU64(a, b uint64) uint64 {
	if b < a {
		return b
	}
	return a
}

func addU64(a, b uint64) uint64 { return a + b }

func collectU64(hg *partition.HostGraph, get func(lv uint32) uint64, out []uint64) {
	for m := 0; m < hg.NumMasters; m++ {
		out[hg.L2G[m]] = get(uint32(m))
	}
}

func collectU64Masters(hg *partition.HostGraph, get func(lv uint32) uint64, out []uint64) {
	collectU64(hg, get, out)
}

func collectF64(hg *partition.HostGraph, get func(lv uint32) uint64, out []float64) {
	for m := 0; m < hg.NumMasters; m++ {
		out[hg.L2G[m]] = math.Float64frombits(get(uint32(m)))
	}
}

func minMax(xs []int64) (maxv, minv int64) {
	minv = 1 << 62
	for _, x := range xs {
		if x > maxv {
			maxv = x
		}
		if x < minv {
			minv = x
		}
	}
	return maxv, minv
}

// Verify checks a result against the single-host oracle for its app,
// returning an error describing the first mismatch.
func Verify(g *graph.Graph, r *Result) error {
	switch r.Config.App {
	case "bfs", "bfs-dir":
		want := apps.OracleBFS(g, r.Config.Source)
		return cmpU64(want, r.Dist)
	case "sssp", "sssp-delta":
		want := apps.OracleSSSP(g, r.Config.Source)
		return cmpU64(want, r.Dist)
	case "cc":
		want := apps.OracleCC(g)
		return cmpU64(want, r.Dist)
	case "pagerank":
		want := apps.OraclePageRank(g, r.Config.PRIters)
		if d := apps.MaxRankDelta(want, r.Ranks); d > 1e-9 {
			return fmt.Errorf("pagerank: max delta %.3e vs oracle", d)
		}
		return nil
	case "kcore":
		want := apps.OracleKCore(g, g.N, kcoreK)
		return cmpU64(want, r.Dist)
	}
	return fmt.Errorf("unknown app %s", r.Config.App)
}

func cmpU64(want, got []uint64) error {
	if len(want) != len(got) {
		return fmt.Errorf("length %d vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("vertex %d: got %d want %d", i, got[i], want[i])
		}
	}
	return nil
}
