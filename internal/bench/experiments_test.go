package bench

import (
	"strings"
	"testing"
)

// smokeExp is a minimal config so every experiment driver runs in
// milliseconds.
func smokeExp() ExpConfig {
	return ExpConfig{Scale: 7, Hosts: []int{2}, Threads: 2, Repeats: 1, PRIters: 2, Seed: 3}
}

// TestExperimentDriversSmoke executes every table/figure generator once at
// tiny scale and sanity-checks the rendered output.
func TestExperimentDriversSmoke(t *testing.T) {
	e := smokeExp()
	checks := []struct {
		name string
		out  string
		want []string
	}{
		{"Table1", Table1(e), []string{"web", "kron", "rmat", "|V|"}},
		{"Table3", Table3(), []string{"omnipath", "infiniband"}},
		{"Fig3", Fig3(e), []string{"pagerank", "lci", "mpi-probe", "mpi-rma", "geomean"}},
		{"Fig4", Fig4(e), []string{"sssp", "lci", "mpi-probe", "geomean"}},
		{"Fig5", Fig5(e), []string{"max(bytes)", "lci", "mpi-rma"}},
		{"Fig6", Fig6(e), []string{"compute", "comm", "total"}},
		{"Table2", Table2(e), []string{"omnipath", "infiniband"}},
		{"Table4", Table4(e), []string{"intelmpi", "mvapich2", "openmpi"}},
		{"Portability", Portability(e), []string{"sockets"}},
		{"AblationFused", AblationFused(e), []string{"fused", "exchange"}},
		{"AblationOrdering", AblationOrdering(e), []string{"ordered", "unordered"}},
		{"AblationAggregation", AblationAggregation(e), []string{"aggregated", "naive"}},
		{"AblationAdaptive", AblationAdaptive(e), []string{"sparse only", "adaptive"}},
		{"AblationDirectionBFS", AblationDirectionBFS(e), []string{"bfs", "bfs-dir"}},
		{"ThreadScaling", ThreadScaling(e, []int{1, 2}), []string{"T=1", "T=2"}},
	}
	for _, c := range checks {
		if len(c.out) == 0 {
			t.Fatalf("%s: empty output", c.name)
		}
		for _, w := range c.want {
			if !strings.Contains(c.out, w) {
				t.Fatalf("%s: output missing %q:\n%s", c.name, w, c.out)
			}
		}
	}
}

// TestFig1TableSmoke runs the microbenchmark driver with few iterations.
func TestFig1TableSmoke(t *testing.T) {
	out := Fig1Table(40)
	for _, w := range []string{"no-probe", "probe", "queue", "latency", "ratio"} {
		if !strings.Contains(out, w) {
			t.Fatalf("Fig1 output missing %q:\n%s", w, out)
		}
	}
}

// TestAllToAllSmoke checks the all-to-all driver, including host counts
// that do not divide the send cycle evenly (a past deadlock: uneven peer
// coverage left one host expecting a message that was never sent).
func TestAllToAllSmoke(t *testing.T) {
	out := AllToAllTable([]int{2, 3, 4}, 50)
	if !strings.Contains(out, "queue") || !strings.Contains(out, "P=3") {
		t.Fatalf("all-to-all output: %s", out)
	}
}
