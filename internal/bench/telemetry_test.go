package bench

import (
	"testing"

	"lcigraph/internal/comm"
	"lcigraph/internal/fabric"
	"lcigraph/internal/graph"
	"lcigraph/internal/netfabric"
	"lcigraph/internal/trace"
)

// TestCounterConservationSim checks frame conservation on the simulator:
// after a full Abelian run quiesces and tears down, every pooled frame the
// fabric handed out (eager sends and put completions alike) must have been
// released back to the pool, and none may still be held by a consumer.
// Run under -race this doubles as a data-race check on the telemetry hot
// path.
func TestCounterConservationSim(t *testing.T) {
	g := testGraph()
	r := RunAbelian(g, testCfg("pagerank", LCI))
	if err := Verify(g, r); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot
	sent := s.Counter(fabric.MetricSendFrames) + s.Counter(fabric.MetricPuts)
	recycled := s.Counter(fabric.MetricFramesRecycled)
	if sent == 0 {
		t.Fatal("no frames counted: telemetry registration is dark")
	}
	if sent != recycled {
		t.Errorf("frame conservation violated: sends+puts %d != recycled %d", sent, recycled)
	}
	if out := s.Gauge(fabric.MetricFramesOutstanding); out != 0 {
		t.Errorf("%d pooled frames still outstanding after drain", out)
	}
}

// TestCounterConservationUDPLossy checks the same invariant over real UDP
// sockets with fault injection: the reliability layer must deliver every
// accepted message exactly once despite wire loss, so sender-side accepted
// frames equal receiver-side recycled frames — and the injected loss must
// actually show up in the drop counter.
func TestCounterConservationUDPLossy(t *testing.T) {
	// A graph big enough that every round's field sync fragments into many
	// datagrams — at hundreds of wire packets, a 5% injector dropping none
	// of them is statistically impossible.
	g := graph.Named("web", 11, 7)
	cfg := Config{App: "pagerank", Layer: LCI, Hosts: 4, Threads: 2,
		Transport: "udp", Source: 1, PRIters: 10,
		Fault: netfabric.Fault{Loss: 0.05, Dup: 0.02, Reorder: 0.02, Seed: 11}}
	r := RunAbelian(g, cfg)
	if err := Verify(g, r); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot
	sent := s.Counter(fabric.MetricSendFrames)
	recycled := s.Counter(fabric.MetricFramesRecycled)
	if sent == 0 {
		t.Fatal("no frames counted: telemetry registration is dark")
	}
	if sent != recycled {
		t.Errorf("frame conservation violated under loss: sent %d != recycled %d", sent, recycled)
	}
	if s.Counter(fabric.MetricPacketsDropped) == 0 {
		t.Error("5% injected loss dropped no datagrams")
	}
	if s.Counter(fabric.MetricRetransmits) == 0 {
		t.Error("loss recovery performed no retransmits")
	}
}

// TestRunSnapshotAndTraceVolumes checks the snapshot plumbing end to end: a
// run's merged snapshot carries the per-layer message-size histogram, the
// derived NetStats agree with it, and traced rounds are annotated with the
// per-round message/byte deltas taken from that histogram.
func TestRunSnapshotAndTraceVolumes(t *testing.T) {
	g := testGraph()
	cfg := testCfg("bfs", LCI)
	tr := trace.New()
	cfg.Trace = tr
	r := RunAbelian(g, cfg)
	if err := Verify(g, r); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot == nil || r.Snapshot.Ranks != cfg.Hosts {
		t.Fatalf("snapshot missing or wrong rank count: %+v", r.Snapshot)
	}
	h := r.Snapshot.Hist(comm.MsgBytesMetric("lci"))
	if h.Count == 0 || h.Sum == 0 {
		t.Fatalf("lci message-size histogram empty: %+v", h)
	}
	if r.Net.Frames == 0 || r.Net.Frames != r.Snapshot.Counter(fabric.MetricSendFrames) {
		t.Errorf("NetStats not derived from snapshot: frames %d vs counter %d",
			r.Net.Frames, r.Snapshot.Counter(fabric.MetricSendFrames))
	}
	sum := tr.Summarize()
	if sum.Rounds == 0 {
		t.Fatal("trace recorded no rounds")
	}
	if sum.Msgs == 0 || sum.Bytes == 0 {
		t.Errorf("traced rounds carry no traffic: msgs=%d bytes=%d", sum.Msgs, sum.Bytes)
	}
	if sum.Msgs > h.Count || sum.Bytes > h.Sum {
		t.Errorf("traced volumes exceed histogram totals: msgs %d>%d or bytes %d>%d",
			sum.Msgs, h.Count, sum.Bytes, h.Sum)
	}
}
