package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/mpi"
)

// Fig. 1 microbenchmark: one-way latency and aggregate message rate between
// two hosts, for the paper's three receive disciplines:
//
//	no-probe — MPI_Isend / pre-posted MPI_Irecv with maximum-size buffers
//	probe    — MPI_Iprobe to learn the size, then exact MPI_Irecv
//	queue    — LCI SEND-ENQ / RECV-DEQ
const (
	IfaceNoProbe = "no-probe"
	IfaceProbe   = "probe"
	IfaceQueue   = "queue"
)

// Ifaces lists the Fig. 1 interfaces in paper order.
func Ifaces() []string { return []string{IfaceNoProbe, IfaceProbe, IfaceQueue} }

// MicroResult is one Fig. 1 data point.
type MicroResult struct {
	Iface   string
	Threads int
	Size    int
	Latency time.Duration // one-way latency (ping-pong / 2)
	RateMps float64       // messages per second (rate benchmark)
}

// maxMsg is the "maximum message size" buffer the no-probe discipline must
// pre-allocate because it cannot learn sizes in advance.
const maxMsg = 64 << 10

// MicroLatency measures one-way latency for iface at the given payload
// size using a ping-pong of iters round trips.
func MicroLatency(iface string, size, iters int, prof fabric.Profile, impl mpi.Impl) time.Duration {
	switch iface {
	case IfaceQueue:
		return lciPingPong(size, iters, prof)
	case IfaceNoProbe, IfaceProbe:
		return mpiPingPong(iface, size, iters, prof, impl)
	}
	panic("bench: unknown iface " + iface)
}

func lciPingPong(size, iters int, prof fabric.Profile) time.Duration {
	fab := fabric.New(2, prof)
	a := lci.NewEndpoint(fab.Endpoint(0), lci.Options{})
	b := lci.NewEndpoint(fab.Endpoint(1), lci.Options{})
	stop := make(chan struct{})
	defer close(stop)
	go a.Serve(stop)
	go b.Serve(stop)
	wa, wb := a.Pool().RegisterWorker(), b.Pool().RegisterWorker()

	buf := make([]byte, size)
	recvOne := func(e *lci.Endpoint) {
		for {
			if r, ok := e.RecvDeq(); ok {
				r.Wait(nil)
				r.Release() // recycle the pooled wire frame
				return
			}
			runtime.Gosched()
		}
	}
	send := func(e *lci.Endpoint, w, dst int) {
		for {
			if r, ok := e.SendEnq(w, dst, 0, buf); ok {
				r.Wait(nil)
				return
			}
			runtime.Gosched()
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < iters; i++ {
			recvOne(b)
			send(b, wb, 0)
		}
	}()
	start := time.Now()
	for i := 0; i < iters; i++ {
		send(a, wa, 1)
		recvOne(a)
	}
	el := time.Since(start)
	<-done
	return el / time.Duration(2*iters)
}

func mpiPingPong(iface string, size, iters int, prof fabric.Profile, impl mpi.Impl) time.Duration {
	w := mpi.NewWorld(2, prof, impl, mpi.ThreadFunneled)
	a, b := w.Comm(0), w.Comm(1)
	buf := make([]byte, size)

	// The no-probe discipline pre-allocates its maximum-size buffer once;
	// its cost is memory and the inability to size receives, not a per-
	// message allocation.
	bigA := make([]byte, maxMsg)
	bigB := make([]byte, maxMsg)
	recvOne := func(c *mpi.Comm, big []byte) {
		switch iface {
		case IfaceNoProbe:
			if _, err := c.Recv(big, mpi.AnySource, mpi.AnyTag); err != nil {
				panic(err)
			}
		case IfaceProbe:
			var st mpi.Status
			for {
				var ok bool
				st, ok = c.Iprobe(mpi.AnySource, mpi.AnyTag)
				if ok {
					break
				}
				runtime.Gosched()
			}
			exact := make([]byte, st.Count)
			if _, err := c.Recv(exact, st.Source, st.Tag); err != nil {
				panic(err)
			}
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < iters; i++ {
			recvOne(b, bigB)
			if err := b.Send(buf, 0, 0); err != nil {
				panic(err)
			}
		}
	}()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := a.Send(buf, 1, 0); err != nil {
			panic(err)
		}
		recvOne(a, bigA)
	}
	el := time.Since(start)
	<-done
	return el / time.Duration(2*iters)
}

// MicroRate measures the aggregate small-message rate with `threads`
// concurrent sender threads pushing perThread messages each to one
// receiving host.
func MicroRate(iface string, threads, perThread, size int, prof fabric.Profile, impl mpi.Impl) float64 {
	total := threads * perThread
	switch iface {
	case IfaceQueue:
		return lciRate(threads, perThread, size, total, prof)
	case IfaceNoProbe, IfaceProbe:
		return mpiRate(iface, threads, perThread, size, total, prof, impl)
	}
	panic("bench: unknown iface " + iface)
}

func lciRate(threads, perThread, size, total int, prof fabric.Profile) float64 {
	fab := fabric.New(2, prof)
	a := lci.NewEndpoint(fab.Endpoint(0), lci.Options{Workers: threads})
	b := lci.NewEndpoint(fab.Endpoint(1), lci.Options{})
	stop := make(chan struct{})
	defer close(stop)
	go a.Serve(stop)
	go b.Serve(stop)

	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := a.Pool().RegisterWorker()
			buf := make([]byte, size)
			for i := 0; i < perThread; i++ {
				for {
					if _, ok := a.SendEnq(w, 1, 0, buf); ok {
						break
					}
					runtime.Gosched()
				}
			}
		}()
	}
	var pending []*lci.Request
	got := 0
	for got < total {
		if r, ok := b.RecvDeq(); ok {
			if r.Done() {
				r.Release()
				got++
			} else {
				pending = append(pending, r)
			}
			continue
		}
		keep := pending[:0]
		for _, r := range pending {
			if r.Done() {
				r.Release()
				got++
			} else {
				keep = append(keep, r)
			}
		}
		pending = keep
		runtime.Gosched()
	}
	el := time.Since(start)
	wg.Wait()
	return float64(total) / el.Seconds()
}

func mpiRate(iface string, threads, perThread, size, total int, prof fabric.Profile, impl mpi.Impl) float64 {
	mode := mpi.ThreadFunneled
	if threads > 1 {
		mode = mpi.ThreadMultiple // concurrent senders force the global lock
	}
	w := mpi.NewWorld(2, prof, impl, mode)
	a, b := w.Comm(0), w.Comm(1)

	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, size)
			for i := 0; i < perThread; i++ {
				if err := a.Send(buf, 1, 0); err != nil {
					panic(err)
				}
			}
		}()
	}
	big := make([]byte, maxMsg)
	for got := 0; got < total; got++ {
		switch iface {
		case IfaceNoProbe:
			if _, err := b.Recv(big, mpi.AnySource, mpi.AnyTag); err != nil {
				panic(err)
			}
		case IfaceProbe:
			var st mpi.Status
			for {
				var ok bool
				st, ok = b.Iprobe(mpi.AnySource, mpi.AnyTag)
				if ok {
					break
				}
				runtime.Gosched()
			}
			exact := make([]byte, st.Count)
			if _, err := b.Recv(exact, st.Source, st.Tag); err != nil {
				panic(err)
			}
		}
	}
	el := time.Since(start)
	wg.Wait()
	return float64(total) / el.Seconds()
}

// Fig1 regenerates the Fig. 1 data: latency across sizes (single thread)
// and message rate across thread counts (8-byte messages).
func Fig1(sizes []int, threadCounts []int, iters int, prof fabric.Profile, impl mpi.Impl) []MicroResult {
	var out []MicroResult
	for _, iface := range Ifaces() {
		for _, s := range sizes {
			out = append(out, MicroResult{
				Iface: iface, Threads: 1, Size: s,
				Latency: MicroLatency(iface, s, iters, prof, impl),
			})
		}
		for _, tc := range threadCounts {
			out = append(out, MicroResult{
				Iface: iface, Threads: tc, Size: 8,
				RateMps: MicroRate(iface, tc, iters, 8, prof, impl),
			})
		}
	}
	return out
}

// FormatMicro renders Fig. 1 results as an aligned text table.
func FormatMicro(rs []MicroResult) string {
	s := fmt.Sprintf("%-10s %8s %8s %14s %14s\n", "iface", "threads", "size", "latency", "rate(msg/s)")
	for _, r := range rs {
		lat, rate := "-", "-"
		if r.Latency > 0 {
			lat = r.Latency.String()
		}
		if r.RateMps > 0 {
			rate = fmt.Sprintf("%.0f", r.RateMps)
		}
		s += fmt.Sprintf("%-10s %8d %8d %14s %14s\n", r.Iface, r.Threads, r.Size, lat, rate)
	}
	return s
}
