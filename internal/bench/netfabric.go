package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"lcigraph/internal/comm"
	"lcigraph/internal/fabric"
	"lcigraph/internal/netfabric"
)

// NetfabricVariant measures the small-message exchange over one transport:
// the same fused all-to-all epochs as the datapath benchmark, driven over
// either the in-process simulator or real loopback UDP sockets.
type NetfabricVariant struct {
	Name      string  `json:"name"`
	Transport string  `json:"transport"` // sim | udp
	Loss      float64 `json:"loss"`      // injected datagram loss rate
	MsgSize   int     `json:"msg_size"`
	Messages  int     `json:"messages"`
	NsPerMsg  float64 `json:"ns_per_msg"`

	Retransmits   int64 `json:"retransmits"`
	Drops         int64 `json:"drops"`
	Acks          int64 `json:"acks"`
	CreditStalls  int64 `json:"credit_stalls"`
	SendRetries   int64 `json:"send_retries"`
	SendBatches   int64 `json:"send_batches"`
	RecvBatches   int64 `json:"recv_batches"`
	GSOSends      int64 `json:"gso_sends"`
	GROCoalesced  int64 `json:"gro_coalesced"`
	SockDrops     int64 `json:"sock_drops"`
	PiggybackAcks int64 `json:"piggyback_acks"`
	DelayedAcks   int64 `json:"delayed_acks"`
}

// netfabricSweepRepeats is how many trials each sweep point runs per
// transport, keeping the best: wall time on a shared host is dominated by
// scheduler noise, and repeated trials are how the paper reports numbers.
const netfabricSweepRepeats = 3

// NetfabricSweepPoint is one message size of the sim-vs-UDP sweep: the gap
// is widest for tiny messages (per-datagram overhead dominates) and closes
// as payload grows, which is what the sweep documents.
type NetfabricSweepPoint struct {
	MsgSize  int     `json:"msg_size"`
	PerPeer  int     `json:"per_peer"`
	SimNs    float64 `json:"sim_ns_per_msg"`
	UDPNs    float64 `json:"udp_ns_per_msg"`
	Slowdown float64 `json:"slowdown"`

	// Batching/offload counters for the UDP run at this size, showing which
	// kernel tier carried the traffic (all zero on the sim variant).
	SendBatches  int64 `json:"send_batches"`
	RecvBatches  int64 `json:"recv_batches"`
	GSOSends     int64 `json:"gso_sends"`
	GROCoalesced int64 `json:"gro_coalesced"`
	SockDrops    int64 `json:"sock_drops"`
}

// NetfabricReport is the in-process vs real-network comparison committed
// as BENCH_netfabric.json: the same LCI layer and exchange pattern, with
// only the fabric provider swapped (DESIGN.md §9).
type NetfabricReport struct {
	Hosts   int `json:"hosts"`
	PerPeer int `json:"per_peer"`
	MsgSize int `json:"msg_size"`
	Epochs  int `json:"epochs"`

	Sim      NetfabricVariant `json:"sim"`
	UDP      NetfabricVariant `json:"udp"`
	UDPLossy NetfabricVariant `json:"udp_lossy"`

	UDPSlowdown  float64 `json:"udp_slowdown"`  // UDP ns/msg over sim ns/msg
	LossOverhead float64 `json:"loss_overhead"` // lossy ns/msg over clean UDP

	// Sweep compares sim vs clean UDP across message sizes (eager tiny,
	// eager large, rendezvous).
	Sweep []NetfabricSweepPoint `json:"sweep"`

	// Ablations re-run the clean-UDP exchange with one hot-path
	// optimization disabled each, quantifying its contribution: no-batch
	// (one syscall per datagram), no-piggyback (every ack is a standalone
	// datagram), fixed-rto (no RTT adaptation) at 64B; no-gso (fragment
	// trains sent datagram-at-a-time) and shards-1 (single reader socket)
	// at 64KiB where the offload tier carries the traffic.
	Ablations []NetfabricVariant `json:"ablations"`

	// Endpoint-shards arm: the multi-threaded-progress ablation (DESIGN.md
	// §15). The same clean-UDP exchange with one progress shard vs
	// ShardCount shards, best of netfabricSweepRepeats trials each.
	// ShardSpeedup is shards=1 ns/msg over shards=K ns/msg (> 1 means
	// sharding helped). The speedup claim is only meaningful with cores to
	// run the K progress goroutines on, so — the same guard pattern as
	// BENCH_serving.json's p99 ceiling — ShardsChecked records whether this
	// host had GOMAXPROCS ≥ ShardCount; on smaller hosts the numbers are
	// still reported but assert nothing.
	Shards1       NetfabricVariant `json:"shards_1"`
	ShardsK       NetfabricVariant `json:"shards_k"`
	ShardCount    int              `json:"shard_count"`
	ShardSpeedup  float64          `json:"shard_speedup"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	ShardsChecked bool             `json:"shards_checked"`
}

// runNetfabricEpochs drives the fused all-to-all exchange over prebuilt
// layers: one warm-up epoch, then epochs timed ones (the datapath
// benchmark's loop, reused verbatim so transports compare like for like).
func runNetfabricEpochs(layers []*comm.LCILayer, perPeer, size, epochs int) time.Duration {
	hosts := len(layers)
	perEpoch := (hosts - 1) * perPeer
	runEpoch := func(tag uint32) {
		var wg sync.WaitGroup
		for r := range layers {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				l := layers[r]
				eff := l.BeginFused(tag)
				for p := 0; p < hosts; p++ {
					if p == r {
						continue
					}
					for i := 0; i < perPeer; i++ {
						buf := l.AllocBuf(size)
						buf[0] = byte(i)
						l.SendFused(i, p, eff, buf)
					}
				}
				l.FinishFusedCount(eff, perEpoch, func(int, []byte) {})
			}(r)
		}
		wg.Wait()
	}
	runEpoch(1) // warm-up
	start := time.Now()
	for e := 0; e < epochs; e++ {
		runEpoch(2)
	}
	return time.Since(start)
}

func fillVariant(v *NetfabricVariant, hosts, perPeer, epochs int, wall time.Duration, net NetStats) {
	v.Messages = hosts * (hosts - 1) * perPeer * epochs
	v.NsPerMsg = float64(wall.Nanoseconds()) / float64(v.Messages)
	v.Retransmits = net.Retransmits
	v.Drops = net.Drops
	v.Acks = net.Acks
	v.CreditStalls = net.CreditStalls
	v.SendRetries = net.SendRetries
	v.SendBatches = net.SendBatches
	v.RecvBatches = net.RecvBatches
	v.GSOSends = net.GSOSends
	v.GROCoalesced = net.GROCoalesced
	v.SockDrops = net.SockDrops
	v.PiggybackAcks = net.PiggybackAcks
	v.DelayedAcks = net.DelayedAcks
}

func netfabricVariantSim(hosts, perPeer, size, epochs int) NetfabricVariant {
	fab := fabric.New(hosts, fabric.TestProfile())
	feps := make([]fabric.Provider, hosts)
	for r := range feps {
		feps[r] = fab.Endpoint(r)
	}
	regs := hostRegistries(feps)
	layers := make([]*comm.LCILayer, hosts)
	for r := range layers {
		opt := LCIOptions(hosts, 2)
		opt.Telemetry = regs[r]
		layers[r] = comm.NewLCILayer(feps[r], opt)
	}
	wall := runNetfabricEpochs(layers, perPeer, size, epochs)
	for _, l := range layers {
		l.Stop()
	}
	v := NetfabricVariant{Name: "sim", Transport: "sim", MsgSize: size}
	fillVariant(&v, hosts, perPeer, epochs, wall, NetStatsFromSnapshot(mergeRegistries(regs)))
	return v
}

func netfabricVariantUDP(name string, hosts, perPeer, size, epochs int, cfg netfabric.Config) (NetfabricVariant, error) {
	provs, err := netfabric.NewLoopbackGroup(hosts, cfg)
	if err != nil {
		return NetfabricVariant{}, err
	}
	feps := make([]fabric.Provider, hosts)
	for r := range feps {
		feps[r] = provs[r]
	}
	regs := hostRegistries(feps)
	layers := make([]*comm.LCILayer, hosts)
	for r := range layers {
		opt := LCIOptions(hosts, 2)
		opt.Telemetry = regs[r]
		if cfg.EndpointShards > 0 {
			// Explicit shard arm: pin the progress-shard count regardless
			// of the LCI_ENDPOINT_SHARDS environment default.
			opt.Shards = cfg.EndpointShards
		}
		layers[r] = comm.NewLCILayer(feps[r], opt)
	}
	wall := runNetfabricEpochs(layers, perPeer, size, epochs)
	for _, l := range layers {
		l.Stop()
	}
	net := NetStatsFromSnapshot(mergeRegistries(regs))
	netfabric.CloseGroup(provs)
	v := NetfabricVariant{Name: name, Transport: "udp", Loss: cfg.Fault.Loss, MsgSize: size}
	fillVariant(&v, hosts, perPeer, epochs, wall, net)
	return v, nil
}

// Netfabric runs the transport comparison. Zero or negative arguments select
// the defaults used for BENCH_netfabric.json (4 hosts, 32 messages of 64
// bytes per peer, 10 epochs).
func Netfabric(hosts, perPeer, size, epochs int) (NetfabricReport, error) {
	if hosts <= 0 {
		hosts = 4
	}
	if perPeer <= 0 {
		perPeer = 32
	}
	if size <= 0 {
		size = 64
	}
	if epochs <= 0 {
		epochs = 10
	}
	r := NetfabricReport{Hosts: hosts, PerPeer: perPeer, MsgSize: size, Epochs: epochs}
	r.Sim = netfabricVariantSim(hosts, perPeer, size, epochs)
	var err error
	if r.UDP, err = netfabricVariantUDP("udp", hosts, perPeer, size, epochs, netfabric.Config{}); err != nil {
		return r, err
	}
	lossy := netfabric.Fault{Loss: 0.05, Dup: 0.02, Reorder: 0.02, Seed: 7}
	if r.UDPLossy, err = netfabricVariantUDP("udp+5%loss", hosts, perPeer, size, epochs, netfabric.Config{Fault: lossy}); err != nil {
		return r, err
	}
	if r.Sim.NsPerMsg > 0 {
		r.UDPSlowdown = r.UDP.NsPerMsg / r.Sim.NsPerMsg
	}
	if r.UDP.NsPerMsg > 0 {
		r.LossOverhead = r.UDPLossy.NsPerMsg / r.UDP.NsPerMsg
	}

	// Message-size sweep: the per-datagram costs the hot path amortizes
	// matter most at 64B; 4KiB is still eager but payload-dominated; 64KiB
	// takes the rendezvous fragmented-send path end to end. Each point is
	// the best of netfabricSweepRepeats trials per transport: on a loaded
	// host a single trial's wall time is dominated by scheduler noise, and
	// the paper reports repeated-trial results for the same reason.
	for _, pt := range []struct{ size, perPeer int }{
		{64, perPeer}, {4 << 10, (perPeer + 3) / 4}, {64 << 10, (perPeer + 15) / 16},
	} {
		sim := netfabricVariantSim(hosts, pt.perPeer, pt.size, epochs)
		for t := 1; t < netfabricSweepRepeats; t++ {
			if again := netfabricVariantSim(hosts, pt.perPeer, pt.size, epochs); again.NsPerMsg < sim.NsPerMsg {
				sim = again
			}
		}
		udp, err := netfabricVariantUDP("udp", hosts, pt.perPeer, pt.size, epochs, netfabric.Config{})
		if err != nil {
			return r, err
		}
		for t := 1; t < netfabricSweepRepeats; t++ {
			again, err := netfabricVariantUDP("udp", hosts, pt.perPeer, pt.size, epochs, netfabric.Config{})
			if err != nil {
				return r, err
			}
			if again.NsPerMsg < udp.NsPerMsg {
				udp = again
			}
		}
		sp := NetfabricSweepPoint{
			MsgSize: pt.size, PerPeer: pt.perPeer, SimNs: sim.NsPerMsg, UDPNs: udp.NsPerMsg,
			SendBatches: udp.SendBatches, RecvBatches: udp.RecvBatches,
			GSOSends: udp.GSOSends, GROCoalesced: udp.GROCoalesced, SockDrops: udp.SockDrops,
		}
		if sp.SimNs > 0 {
			sp.Slowdown = sp.UDPNs / sp.SimNs
		}
		r.Sweep = append(r.Sweep, sp)
	}

	// Ablations: one hot-path optimization off each. The batching knobs run
	// at 64B where per-datagram overhead dominates; the offload knobs run at
	// 64KiB where segmentation offload is what collapses the fragment
	// trains, so each row isolates its tier at the size it targets.
	large, largePer := 64<<10, (perPeer+15)/16
	for _, ab := range []struct {
		name          string
		size, perPeer int
		cfg           netfabric.Config
	}{
		{"no-batch", size, perPeer, netfabric.Config{DisableBatchIO: true}},
		{"no-piggyback", size, perPeer, netfabric.Config{DisablePiggyback: true}},
		{"fixed-rto", size, perPeer, netfabric.Config{FixedRTO: true}},
		{"no-gso", large, largePer, netfabric.Config{DisableGSO: true}},
		{"shards-1", large, largePer, netfabric.Config{ReaderShards: 1}},
	} {
		v, err := netfabricVariantUDP(ab.name, hosts, ab.perPeer, ab.size, epochs, ab.cfg)
		if err != nil {
			return r, err
		}
		r.Ablations = append(r.Ablations, v)
	}

	// Endpoint-shards arm at the default (64B-dominated) point, where the
	// single progress goroutine is the per-rank ceiling being measured.
	// Best-of-N for the same scheduler-noise reason as the sweep.
	r.ShardCount = 4
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.ShardsChecked = r.GOMAXPROCS >= r.ShardCount
	shardArm := func(name string, k int) (NetfabricVariant, error) {
		best, err := netfabricVariantUDP(name, hosts, perPeer, size, epochs, netfabric.Config{EndpointShards: k})
		if err != nil {
			return best, err
		}
		for t := 1; t < netfabricSweepRepeats; t++ {
			again, err := netfabricVariantUDP(name, hosts, perPeer, size, epochs, netfabric.Config{EndpointShards: k})
			if err != nil {
				return best, err
			}
			if again.NsPerMsg < best.NsPerMsg {
				best = again
			}
		}
		return best, nil
	}
	if r.Shards1, err = shardArm("epshards-1", 1); err != nil {
		return r, err
	}
	if r.ShardsK, err = shardArm(fmt.Sprintf("epshards-%d", r.ShardCount), r.ShardCount); err != nil {
		return r, err
	}
	if r.ShardsK.NsPerMsg > 0 {
		r.ShardSpeedup = r.Shards1.NsPerMsg / r.ShardsK.NsPerMsg
	}
	return r, nil
}

// Table renders the report for cmd/experiments and `make bench-netfabric`.
func (r NetfabricReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Netfabric: %d hosts, %d x %dB msgs/peer/epoch, %d epochs (%d msgs/variant)\n",
		r.Hosts, r.PerPeer, r.MsgSize, r.Epochs, r.Sim.Messages)
	fmt.Fprintf(&b, "%-13s %7s %10s %12s %8s %8s %9s %9s %6s %6s %8s\n",
		"variant", "size", "ns/msg", "retransmits", "drops", "acks", "pgyacks", "batches", "gso", "gro", "retries")
	vs := []NetfabricVariant{r.Sim, r.UDP, r.UDPLossy}
	vs = append(vs, r.Ablations...)
	vs = append(vs, r.Shards1, r.ShardsK)
	for _, v := range vs {
		fmt.Fprintf(&b, "%-13s %6dB %10.0f %12d %8d %8d %9d %9d %6d %6d %8d\n",
			v.Name, v.MsgSize, v.NsPerMsg, v.Retransmits, v.Drops, v.Acks, v.PiggybackAcks,
			v.SendBatches+v.RecvBatches, v.GSOSends, v.GROCoalesced, v.SendRetries)
	}
	fmt.Fprintf(&b, "udp slowdown over sim: %.1fx; 5%% loss overhead over clean udp: %.1fx\n",
		r.UDPSlowdown, r.LossOverhead)
	checked := "checked"
	if !r.ShardsChecked {
		checked = fmt.Sprintf("NOT checked: GOMAXPROCS=%d < %d shards", r.GOMAXPROCS, r.ShardCount)
	}
	fmt.Fprintf(&b, "endpoint shards 1->%d speedup: %.2fx (%s)\n", r.ShardCount, r.ShardSpeedup, checked)
	for _, sp := range r.Sweep {
		fmt.Fprintf(&b, "sweep %6dB x%-3d sim %8.0f ns/msg  udp %8.0f ns/msg  slowdown %5.1fx  batches %d/%d gso %d gro %d\n",
			sp.MsgSize, sp.PerPeer, sp.SimNs, sp.UDPNs, sp.Slowdown,
			sp.SendBatches, sp.RecvBatches, sp.GSOSends, sp.GROCoalesced)
	}
	return b.String()
}

// WriteJSON writes the report to path (BENCH_netfabric.json).
func (r NetfabricReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
