package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"lcigraph/internal/comm"
	"lcigraph/internal/fabric"
	"lcigraph/internal/netfabric"
)

// NetfabricVariant measures the small-message exchange over one transport:
// the same fused all-to-all epochs as the datapath benchmark, driven over
// either the in-process simulator or real loopback UDP sockets.
type NetfabricVariant struct {
	Name      string  `json:"name"`
	Transport string  `json:"transport"` // sim | udp
	Loss      float64 `json:"loss"`      // injected datagram loss rate
	Messages  int     `json:"messages"`
	NsPerMsg  float64 `json:"ns_per_msg"`

	Retransmits  int64 `json:"retransmits"`
	Drops        int64 `json:"drops"`
	Acks         int64 `json:"acks"`
	CreditStalls int64 `json:"credit_stalls"`
	SendRetries  int64 `json:"send_retries"`
}

// NetfabricReport is the in-process vs real-network comparison committed
// as BENCH_netfabric.json: the same LCI layer and exchange pattern, with
// only the fabric provider swapped (DESIGN.md §9).
type NetfabricReport struct {
	Hosts   int `json:"hosts"`
	PerPeer int `json:"per_peer"`
	MsgSize int `json:"msg_size"`
	Epochs  int `json:"epochs"`

	Sim      NetfabricVariant `json:"sim"`
	UDP      NetfabricVariant `json:"udp"`
	UDPLossy NetfabricVariant `json:"udp_lossy"`

	UDPSlowdown  float64 `json:"udp_slowdown"`  // UDP ns/msg over sim ns/msg
	LossOverhead float64 `json:"loss_overhead"` // lossy ns/msg over clean UDP
}

// runNetfabricEpochs drives the fused all-to-all exchange over prebuilt
// layers: one warm-up epoch, then epochs timed ones (the datapath
// benchmark's loop, reused verbatim so transports compare like for like).
func runNetfabricEpochs(layers []*comm.LCILayer, perPeer, size, epochs int) time.Duration {
	hosts := len(layers)
	perEpoch := (hosts - 1) * perPeer
	runEpoch := func(tag uint32) {
		var wg sync.WaitGroup
		for r := range layers {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				l := layers[r]
				eff := l.BeginFused(tag)
				for p := 0; p < hosts; p++ {
					if p == r {
						continue
					}
					for i := 0; i < perPeer; i++ {
						buf := l.AllocBuf(size)
						buf[0] = byte(i)
						l.SendFused(i, p, eff, buf)
					}
				}
				l.FinishFusedCount(eff, perEpoch, func(int, []byte) {})
			}(r)
		}
		wg.Wait()
	}
	runEpoch(1) // warm-up
	start := time.Now()
	for e := 0; e < epochs; e++ {
		runEpoch(2)
	}
	return time.Since(start)
}

func fillVariant(v *NetfabricVariant, hosts, perPeer, epochs int, wall time.Duration, net NetStats) {
	v.Messages = hosts * (hosts - 1) * perPeer * epochs
	v.NsPerMsg = float64(wall.Nanoseconds()) / float64(v.Messages)
	v.Retransmits = net.Retransmits
	v.Drops = net.Drops
	v.Acks = net.Acks
	v.CreditStalls = net.CreditStalls
	v.SendRetries = net.SendRetries
}

func netfabricVariantSim(hosts, perPeer, size, epochs int) NetfabricVariant {
	fab := fabric.New(hosts, fabric.TestProfile())
	layers := make([]*comm.LCILayer, hosts)
	for r := range layers {
		layers[r] = comm.NewLCILayer(fab.Endpoint(r), LCIOptions(hosts, 2))
	}
	wall := runNetfabricEpochs(layers, perPeer, size, epochs)
	for _, l := range layers {
		l.Stop()
	}
	v := NetfabricVariant{Name: "sim", Transport: "sim"}
	fillVariant(&v, hosts, perPeer, epochs, wall, collectNet(fab))
	return v
}

func netfabricVariantUDP(name string, hosts, perPeer, size, epochs int, f netfabric.Fault) (NetfabricVariant, error) {
	provs, err := netfabric.NewLoopbackGroup(hosts, netfabric.Config{Fault: f})
	if err != nil {
		return NetfabricVariant{}, err
	}
	layers := make([]*comm.LCILayer, hosts)
	for r := range layers {
		layers[r] = comm.NewLCILayer(provs[r], LCIOptions(hosts, 2))
	}
	wall := runNetfabricEpochs(layers, perPeer, size, epochs)
	var net NetStats
	for _, l := range layers {
		l.Stop()
	}
	for _, p := range provs {
		net.add(p.Stats())
	}
	netfabric.CloseGroup(provs)
	v := NetfabricVariant{Name: name, Transport: "udp", Loss: f.Loss}
	fillVariant(&v, hosts, perPeer, epochs, wall, net)
	return v, nil
}

// Netfabric runs the transport comparison. Zero or negative arguments select
// the defaults used for BENCH_netfabric.json (4 hosts, 32 messages of 64
// bytes per peer, 10 epochs).
func Netfabric(hosts, perPeer, size, epochs int) (NetfabricReport, error) {
	if hosts <= 0 {
		hosts = 4
	}
	if perPeer <= 0 {
		perPeer = 32
	}
	if size <= 0 {
		size = 64
	}
	if epochs <= 0 {
		epochs = 10
	}
	r := NetfabricReport{Hosts: hosts, PerPeer: perPeer, MsgSize: size, Epochs: epochs}
	r.Sim = netfabricVariantSim(hosts, perPeer, size, epochs)
	var err error
	if r.UDP, err = netfabricVariantUDP("udp", hosts, perPeer, size, epochs, netfabric.Fault{}); err != nil {
		return r, err
	}
	lossy := netfabric.Fault{Loss: 0.05, Dup: 0.02, Reorder: 0.02, Seed: 7}
	if r.UDPLossy, err = netfabricVariantUDP("udp+5%loss", hosts, perPeer, size, epochs, lossy); err != nil {
		return r, err
	}
	if r.Sim.NsPerMsg > 0 {
		r.UDPSlowdown = r.UDP.NsPerMsg / r.Sim.NsPerMsg
	}
	if r.UDP.NsPerMsg > 0 {
		r.LossOverhead = r.UDPLossy.NsPerMsg / r.UDP.NsPerMsg
	}
	return r, nil
}

// Table renders the report for cmd/experiments.
func (r NetfabricReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Netfabric: %d hosts, %d x %dB msgs/peer/epoch, %d epochs (%d msgs/variant)\n",
		r.Hosts, r.PerPeer, r.MsgSize, r.Epochs, r.Sim.Messages)
	fmt.Fprintf(&b, "%-12s %10s %12s %8s %8s %8s %8s\n",
		"variant", "ns/msg", "retransmits", "drops", "acks", "stalls", "retries")
	for _, v := range []NetfabricVariant{r.Sim, r.UDP, r.UDPLossy} {
		fmt.Fprintf(&b, "%-12s %10.0f %12d %8d %8d %8d %8d\n",
			v.Name, v.NsPerMsg, v.Retransmits, v.Drops, v.Acks, v.CreditStalls, v.SendRetries)
	}
	fmt.Fprintf(&b, "udp slowdown over sim: %.1fx; 5%% loss overhead over clean udp: %.1fx\n",
		r.UDPSlowdown, r.LossOverhead)
	return b.String()
}

// WriteJSON writes the report to path (BENCH_netfabric.json).
func (r NetfabricReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
