package bench

import (
	"testing"
	"time"

	"lcigraph/internal/fabric"
	"lcigraph/internal/mpi"
)

// TestFusedModeCorrect: the fused gather-send path must produce oracle
// results for every app.
func TestFusedModeCorrect(t *testing.T) {
	g := testGraph()
	for _, app := range Apps() {
		cfg := testCfg(app, LCI)
		cfg.Fused = true
		r := RunAbelian(g, cfg)
		if err := Verify(g, r); err != nil {
			t.Fatalf("fused %s: %v", app, err)
		}
	}
}

// TestNoOrderingStillCorrect: the unordered MPI ablation stays correct for
// this BSP workload (epoch tags already separate rounds; ordering is a
// semantic guarantee the pattern doesn't need — the paper's point).
func TestNoOrderingStillCorrect(t *testing.T) {
	g := testGraph()
	impl := mpi.TestImpl()
	impl.UnsafeNoOrdering = true
	cfg := testCfg("sssp", MPIProbe)
	cfg.Impl = impl
	if err := Verify(g, RunAbelian(g, cfg)); err != nil {
		t.Fatalf("unordered sssp: %v", err)
	}
}

// TestNoAggregationStillCorrect: disabling the buffered layer must not
// change results (only performance).
func TestNoAggregationStillCorrect(t *testing.T) {
	g := testGraph()
	cfg := testCfg("bfs", MPIProbe)
	cfg.NoAggregation = true
	if err := Verify(g, RunAbelian(g, cfg)); err != nil {
		t.Fatalf("no-aggregation bfs: %v", err)
	}
}

// TestKCoreCorrect: the k-core extension matches the iterative-removal
// oracle on every layer (symmetric input).
func TestKCoreCorrect(t *testing.T) {
	g := testGraph()
	for _, layer := range Layers() {
		cfg := testCfg("kcore", layer)
		if err := Verify(g, RunAbelian(g, cfg)); err != nil {
			t.Fatalf("kcore on %s: %v", layer, err)
		}
	}
}

// TestDirectionOptimizingBFS: the push/pull BFS matches the oracle on
// every layer, and actually pulls on a dense-frontier graph.
func TestDirectionOptimizingBFS(t *testing.T) {
	g := testGraph() // kron: tiny diameter, dense frontiers
	for _, layer := range Layers() {
		cfg := testCfg("bfs-dir", layer)
		if err := Verify(g, RunAbelian(g, cfg)); err != nil {
			t.Fatalf("bfs-dir on %s: %v", layer, err)
		}
	}
}

// TestJitterInjection: with heavy injected network jitter every layer and
// app still produces oracle results (robustness under noisy fabrics).
func TestJitterInjection(t *testing.T) {
	g := testGraph()
	prof := fabric.TestProfile()
	prof.Jitter = 30 * time.Microsecond
	for _, layer := range Layers() {
		cfg := testCfg("sssp", layer)
		cfg.Profile = prof
		if err := Verify(g, RunAbelian(g, cfg)); err != nil {
			t.Fatalf("jitter %s: %v", layer, err)
		}
	}
	cfg := testCfg("pagerank", LCI)
	cfg.Profile = prof
	if err := Verify(g, RunGemini(g, cfg)); err != nil {
		t.Fatalf("jitter gemini: %v", err)
	}
}

// TestSocketsProfileCorrect: the RDMA-less transport (libfabric sockets
// class) runs the whole matrix through the fragmentation paths — LCI FRG
// streams, MPI software rendezvous, and emulated RMA puts — with oracle
// results (§VI portability).
func TestSocketsProfileCorrect(t *testing.T) {
	g := testGraph()
	for _, app := range Apps() {
		for _, layer := range Layers() {
			cfg := testCfg(app, layer)
			cfg.Profile = fabric.Sockets()
			if err := Verify(g, RunAbelian(g, cfg)); err != nil {
				t.Fatalf("sockets %s/%s: %v", app, layer, err)
			}
		}
	}
	for _, layer := range StreamKinds() {
		cfg := testCfg("sssp", layer)
		cfg.Profile = fabric.Sockets()
		if err := Verify(g, RunGemini(g, cfg)); err != nil {
			t.Fatalf("sockets gemini sssp/%s: %v", layer, err)
		}
	}
}

// TestInfiniBandProfileCorrect: the Table II portability runs compute the
// same results on the second NIC profile.
func TestInfiniBandProfileCorrect(t *testing.T) {
	g := testGraph()
	for _, layer := range Layers() {
		cfg := testCfg("cc", layer)
		cfg.Profile = fabric.InfiniBand()
		if err := Verify(g, RunAbelian(g, cfg)); err != nil {
			t.Fatalf("infiniband %s: %v", layer, err)
		}
	}
}

// TestImplProfilesCorrect: every Table IV MPI implementation profile
// computes oracle results on both MPI layers.
func TestImplProfilesCorrect(t *testing.T) {
	g := testGraph()
	for _, impl := range mpi.Impls() {
		for _, layer := range []string{MPIProbe, MPIRMA} {
			cfg := testCfg("bfs", layer)
			cfg.Impl = impl
			if err := Verify(g, RunAbelian(g, cfg)); err != nil {
				t.Fatalf("%s/%s: %v", impl.Name, layer, err)
			}
		}
	}
}

// TestAdaptiveGeminiCorrect: Gemini's sparse/dense adaptive engine matches
// the oracles on both stream backends.
func TestAdaptiveGeminiCorrect(t *testing.T) {
	g := testGraph()
	for _, app := range []string{"bfs", "cc", "sssp"} {
		for _, layer := range StreamKinds() {
			cfg := testCfg(app, layer)
			cfg.Adaptive = true
			if err := Verify(g, RunGemini(g, cfg)); err != nil {
				t.Fatalf("adaptive %s on %s: %v", app, layer, err)
			}
		}
	}
}

// TestDeltaSteppingCorrect: the delta-stepping extension matches Dijkstra
// on every layer, across bucket widths.
func TestDeltaSteppingCorrect(t *testing.T) {
	g := testGraph()
	for _, layer := range Layers() {
		cfg := testCfg("sssp-delta", layer)
		if err := Verify(g, RunAbelian(g, cfg)); err != nil {
			t.Fatalf("sssp-delta on %s: %v", layer, err)
		}
	}
}

func TestPoolLocalityAblationRuns(t *testing.T) {
	out := AblationPoolLocality(2, 200)
	if len(out) == 0 {
		t.Fatal("empty ablation output")
	}
}
