package bench

import (
	"flag"
	"testing"
)

// -datapath-out makes TestDatapathReport persist its report, e.g.
//
//	go test ./internal/bench -run TestDatapathReport -datapath-out BENCH_datapath.json
var datapathOut = flag.String("datapath-out", "", "write the datapath report JSON to this path")

// TestDatapathReport is the acceptance gate for the zero-allocation batched
// data path: for 64-byte messages the pooled+coalesced path must cut heap
// allocations by ≥5x and wire frames by ≥3x versus the pre-optimisation
// baseline (no frame pool, no coalescing).
func TestDatapathReport(t *testing.T) {
	epochs := 25
	if testing.Short() {
		epochs = 8
	}
	r := Datapath(4, 64, 64, epochs)
	t.Logf("\n%s", r.Table())

	if r.AllocImprovement < 5 {
		t.Errorf("alloc improvement %.1fx, want >= 5x (baseline %.2f vs optimized %.2f allocs/msg)",
			r.AllocImprovement, r.Baseline.AllocsPerMsg, r.Optimized.AllocsPerMsg)
	}
	if r.FrameImprovement < 3 {
		t.Errorf("frame improvement %.1fx, want >= 3x (baseline %.3f vs optimized %.3f frames/msg)",
			r.FrameImprovement, r.Baseline.FramesPerMsg, r.Optimized.FramesPerMsg)
	}
	if r.Optimized.MsgsCoalesced == 0 || r.Optimized.FramesRecycled == 0 {
		t.Errorf("optimized variant exercised no coalescing/recycling: %+v", r.Optimized)
	}
	if *datapathOut != "" {
		if err := r.WriteJSON(*datapathOut); err != nil {
			t.Fatalf("writing %s: %v", *datapathOut, err)
		}
		t.Logf("wrote %s", *datapathOut)
	}
}

// BenchmarkDatapath reports allocs/op and frames/op for one fused all-to-all
// epoch under each data-path configuration (go test -bench Datapath -benchmem).
func BenchmarkDatapath(b *testing.B) {
	for _, v := range []struct {
		name                                          string
		pool, coalesce, tele, trace, health, incident bool
	}{
		{"baseline", false, false, true, false, false, false},
		{"pooled", true, false, true, false, false, false},
		{"pooled+coalesced", true, true, true, false, false, false},
		{"pooled+coalesced/no-telemetry", true, true, false, false, false, false},
		{"pooled+coalesced/tracing", true, true, true, true, false, false},
		{"pooled+coalesced/health", true, true, true, false, true, false},
		{"pooled+coalesced/profiling", true, true, true, false, false, true},
	} {
		b.Run(v.name, func(b *testing.B) {
			r := runDatapathVariant(4, 64, 64, b.N, v.pool, v.coalesce, v.tele, v.trace, v.health, v.incident)
			b.ReportMetric(r.AllocsPerMsg, "allocs/msg")
			b.ReportMetric(r.FramesPerMsg, "frames/msg")
			b.ReportMetric(r.NsPerMsg, "ns/msg")
		})
	}
}
