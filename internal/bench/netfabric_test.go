package bench

import (
	"testing"

	"lcigraph/internal/graph"
	"lcigraph/internal/netfabric"
)

// TestUDPTransportAbelian: the full Abelian stack — LCI layer, core
// endpoint, coalescer — over real loopback UDP sockets produces results
// identical to the in-process simulator (oracle-verified).
func TestUDPTransportAbelian(t *testing.T) {
	g := graph.Named("web", 8, 11)
	for _, app := range []string{"bfs", "pagerank"} {
		cfg := Config{App: app, Layer: LCI, Hosts: 4, Threads: 2, Transport: "udp", Source: 1}
		res := RunAbelian(g, cfg)
		if err := Verify(g, res); err != nil {
			t.Fatalf("%s over udp: %v", app, err)
		}
	}
}

// TestUDPTransportLossy: BFS and PageRank exchanges complete correctly with
// 5% datagram loss plus duplication and reordering injected under every
// rank's traffic — the reliability layer absorbs the faults and the results
// still match the oracle. The retransmit counter proves the loss was real.
func TestUDPTransportLossy(t *testing.T) {
	g := graph.Named("web", 7, 3)
	fault := netfabric.Fault{Loss: 0.05, Dup: 0.02, Reorder: 0.02, Seed: 99}
	// Counters are asserted over both apps together: BFS alone coalesces to
	// so few datagrams that a 5% injector occasionally drops none of them.
	var retransmits, drops int64
	for _, app := range []string{"bfs", "pagerank"} {
		cfg := Config{App: app, Layer: LCI, Hosts: 4, Threads: 2,
			Transport: "udp", Fault: fault, Source: 1, PRIters: 5}
		res := RunAbelian(g, cfg)
		if err := Verify(g, res); err != nil {
			t.Fatalf("%s over lossy udp: %v", app, err)
		}
		retransmits += res.Net.Retransmits
		drops += res.Net.Drops
	}
	if retransmits == 0 {
		t.Fatal("5% injected loss produced zero retransmits")
	}
	if drops == 0 {
		t.Fatal("fault injection counted zero drops")
	}
}

// TestUDPTransportMPI: both MPI layers run over the UDP provider too — the
// probe layer's eager bundles and the RMA layer's windows (which fall back
// to software fragment streams, since UDP reports no RDMA).
func TestUDPTransportMPI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := graph.Named("web", 7, 5)
	for _, layer := range []string{MPIProbe, MPIRMA} {
		cfg := Config{App: "bfs", Layer: layer, Hosts: 3, Threads: 2, Transport: "udp", Source: 1}
		res := RunAbelian(g, cfg)
		if err := Verify(g, res); err != nil {
			t.Fatalf("bfs over udp/%s: %v", layer, err)
		}
	}
}

// TestNetfabricReport exercises the committed benchmark end to end at a
// small size. The lossy variant needs enough datagrams that the 5%
// injector dropping none of them is statistically impossible (at 4 msgs ×
// 2 epochs the no-drop probability was ~44% and the retransmit assertion
// flaked).
func TestNetfabricReport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := Netfabric(2, 64, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sim.Messages == 0 || r.UDP.Messages == 0 || r.UDPLossy.Messages == 0 {
		t.Fatalf("empty variant in report: %+v", r)
	}
	if r.UDPLossy.Retransmits == 0 {
		t.Fatal("lossy variant recorded no retransmits")
	}
	if r.Table() == "" {
		t.Fatal("empty table")
	}
}
