package bench

import (
	"testing"

	"lcigraph/internal/graph"
	"lcigraph/internal/netfabric"
)

// TestUDPTransportAbelian: the full Abelian stack — LCI layer, core
// endpoint, coalescer — over real loopback UDP sockets produces results
// identical to the in-process simulator (oracle-verified).
func TestUDPTransportAbelian(t *testing.T) {
	g := graph.Named("web", 8, 11)
	for _, app := range []string{"bfs", "pagerank"} {
		cfg := Config{App: app, Layer: LCI, Hosts: 4, Threads: 2, Transport: "udp", Source: 1}
		res := RunAbelian(g, cfg)
		if err := Verify(g, res); err != nil {
			t.Fatalf("%s over udp: %v", app, err)
		}
	}
}

// TestUDPTransportLossy: BFS and PageRank exchanges complete correctly with
// 5% datagram loss plus duplication and reordering injected under every
// rank's traffic — the reliability layer absorbs the faults and the results
// still match the oracle. The retransmit counter proves the loss was real.
func TestUDPTransportLossy(t *testing.T) {
	g := graph.Named("web", 7, 3)
	fault := netfabric.Fault{Loss: 0.05, Dup: 0.02, Reorder: 0.02, Seed: 99}
	for _, app := range []string{"bfs", "pagerank"} {
		cfg := Config{App: app, Layer: LCI, Hosts: 4, Threads: 2,
			Transport: "udp", Fault: fault, Source: 1, PRIters: 5}
		res := RunAbelian(g, cfg)
		if err := Verify(g, res); err != nil {
			t.Fatalf("%s over lossy udp: %v", app, err)
		}
		if res.Net.Retransmits == 0 {
			t.Fatalf("%s: 5%% injected loss produced zero retransmits", app)
		}
		if res.Net.Drops == 0 {
			t.Fatalf("%s: fault injection counted zero drops", app)
		}
	}
}

// TestUDPTransportMPI: both MPI layers run over the UDP provider too — the
// probe layer's eager bundles and the RMA layer's windows (which fall back
// to software fragment streams, since UDP reports no RDMA).
func TestUDPTransportMPI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := graph.Named("web", 7, 5)
	for _, layer := range []string{MPIProbe, MPIRMA} {
		cfg := Config{App: "bfs", Layer: layer, Hosts: 3, Threads: 2, Transport: "udp", Source: 1}
		res := RunAbelian(g, cfg)
		if err := Verify(g, res); err != nil {
			t.Fatalf("bfs over udp/%s: %v", layer, err)
		}
	}
}

// TestNetfabricReport exercises the committed benchmark end to end at a
// small size.
func TestNetfabricReport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := Netfabric(2, 4, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sim.Messages == 0 || r.UDP.Messages == 0 || r.UDPLossy.Messages == 0 {
		t.Fatalf("empty variant in report: %+v", r)
	}
	if r.UDPLossy.Retransmits == 0 {
		t.Fatal("lossy variant recorded no retransmits")
	}
	if r.Table() == "" {
		t.Fatal("empty table")
	}
}
