package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/mpi"
)

// Ablations quantify the design choices DESIGN.md §5 calls out: LCI's
// gather-send fusion (the paper's §VI future work), MPI's ordering
// guarantee, the probe layer's small-message aggregation, and the packet
// pool's locality shards.

// AblationFused compares the standard Exchange path against the fused
// gather-send integration on Abelian + LCI.
func AblationFused(e ExpConfig) string {
	g := e.inputs()["rmat"]
	p := e.Hosts[len(e.Hosts)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: LCI gather-send fusion (Abelian, rmat, P=%d)\n", p)
	for _, app := range []string{"pagerank", "sssp"} {
		for _, fused := range []bool{false, true} {
			cfg := Config{App: app, Layer: LCI, Hosts: p, Threads: e.Threads,
				Source: 1, PRIters: e.PRIters, Fused: fused}
			mean, res := meanOf(e.Repeats, func() *Result { return RunAbelian(g, cfg) })
			name := "exchange"
			if fused {
				name = "fused"
			}
			fmt.Fprintf(&b, "  %-9s %-9s total %12s  comm(max) %12s\n",
				app, name, mean.Round(time.Microsecond), res.MaxComm().Round(time.Microsecond))
		}
	}
	return b.String()
}

// AblationAdaptive compares Gemini's pure sparse push against the adaptive
// sparse/dense engine on cc, whose full initial frontier rewards dense
// rounds.
func AblationAdaptive(e ExpConfig) string {
	g := e.inputs()["kron"]
	p := e.Hosts[len(e.Hosts)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: Gemini sparse vs adaptive dense/sparse (cc, kron, P=%d)\n", p)
	for _, adaptive := range []bool{false, true} {
		cfg := Config{App: "cc", Layer: LCI, Hosts: p, Threads: e.Threads,
			Adaptive: adaptive}
		mean, res := meanOf(e.Repeats, func() *Result { return RunGemini(g, cfg) })
		name := "sparse only"
		if adaptive {
			name = "adaptive"
		}
		fmt.Fprintf(&b, "  %-12s total %12s  comm(max) %12s  frames %d\n",
			name, mean.Round(time.Microsecond), res.MaxComm().Round(time.Microsecond),
			res.Net.Frames)
	}
	return b.String()
}

// AblationCoalescing measures the eager coalescer (DESIGN.md §8) on
// Gemini's stream path, whose many small per-peer updates are its sweet
// spot: wire frames drop while the per-message counters show how many
// messages rode inside bundles.
func AblationCoalescing(e ExpConfig) string {
	g := e.inputs()["kron"]
	p := e.Hosts[len(e.Hosts)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: eager coalescing on the Gemini/LCI stream path (sssp, kron, P=%d)\n", p)
	for _, off := range []bool{true, false} {
		cfg := Config{App: "sssp", Layer: LCI, Hosts: p, Threads: e.Threads,
			Source: 1, NoCoalescing: off}
		mean, res := meanOf(e.Repeats, func() *Result { return RunGemini(g, cfg) })
		name := "coalescing"
		if off {
			name = "plain"
		}
		fmt.Fprintf(&b, "  %-11s total %12s  comm(max) %12s  frames %6d  bundled-msgs %6d  bundles %5d  recycled %6d\n",
			name, mean.Round(time.Microsecond), res.MaxComm().Round(time.Microsecond),
			res.Net.Frames, res.Net.MsgsCoalesced, res.Net.CoalescedFrames,
			res.Net.FramesRecycled)
	}
	return b.String()
}

// AblationDirectionBFS compares plain push BFS against the
// direction-optimizing variant on the dense-frontier kron input.
func AblationDirectionBFS(e ExpConfig) string {
	g := e.inputs()["kron"]
	p := e.Hosts[len(e.Hosts)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: BFS push vs direction-optimizing (Abelian lci, kron, P=%d)\n", p)
	for _, app := range []string{"bfs", "bfs-dir"} {
		cfg := Config{App: app, Layer: LCI, Hosts: p, Threads: e.Threads, Source: 1}
		mean, res := meanOf(e.Repeats, func() *Result { return RunAbelian(g, cfg) })
		fmt.Fprintf(&b, "  %-9s total %12s  frames %d\n",
			app, mean.Round(time.Microsecond), res.Net.Frames)
	}
	return b.String()
}

// AblationOrdering measures what MPI's non-overtaking guarantee costs the
// probe layer (UnsafeNoOrdering disables receiver-side reorder buffering).
func AblationOrdering(e ExpConfig) string {
	g := e.inputs()["rmat"]
	p := e.Hosts[len(e.Hosts)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: MPI message-ordering cost (Abelian mpi-probe, rmat, P=%d)\n", p)
	for _, noOrder := range []bool{false, true} {
		impl := mpi.IntelMPI()
		impl.UnsafeNoOrdering = noOrder
		cfg := Config{App: "pagerank", Layer: MPIProbe, Hosts: p, Threads: e.Threads,
			PRIters: e.PRIters, Impl: impl}
		mean, res := meanOf(e.Repeats, func() *Result { return RunAbelian(g, cfg) })
		name := "ordered (MPI semantics)"
		if noOrder {
			name = "unordered (LCI-like)"
		}
		fmt.Fprintf(&b, "  %-26s total %12s  comm(max) %12s\n",
			name, mean.Round(time.Microsecond), res.MaxComm().Round(time.Microsecond))
	}
	return b.String()
}

// AblationPoolLocality measures the locality-aware packet pool: message
// rate with per-thread shards versus a single shared shard.
func AblationPoolLocality(threads, perThread int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: packet-pool locality shards (%d sender threads)\n", threads)
	for _, shards := range []int{1, threads} {
		rate := lciRateShards(threads, perThread, 8, shards)
		fmt.Fprintf(&b, "  shards=%-3d rate %12.0f msg/s\n", shards, rate)
	}
	return b.String()
}

// lciRateShards is MicroRate's LCI path with a configurable shard count.
func lciRateShards(threads, perThread, size, shards int) float64 {
	fab := fabric.New(2, fabric.OmniPath())
	a := lci.NewEndpoint(fab.Endpoint(0), lci.Options{Workers: shards})
	bep := lci.NewEndpoint(fab.Endpoint(1), lci.Options{})
	stop := make(chan struct{})
	defer close(stop)
	go a.Serve(stop)
	go bep.Serve(stop)

	total := threads * perThread
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := a.Pool().RegisterWorker()
			buf := make([]byte, size)
			for i := 0; i < perThread; i++ {
				for {
					if _, ok := a.SendEnq(w, 1, 0, buf); ok {
						break
					}
					runtime.Gosched()
				}
			}
		}()
	}
	var pending []*lci.Request
	got := 0
	for got < total {
		if r, ok := bep.RecvDeq(); ok {
			if r.Done() {
				r.Release()
				got++
			} else {
				pending = append(pending, r)
			}
			continue
		}
		keep := pending[:0]
		for _, r := range pending {
			if r.Done() {
				r.Release()
				got++
			} else {
				keep = append(keep, r)
			}
		}
		pending = keep
		runtime.Gosched()
	}
	el := time.Since(start)
	wg.Wait()
	return float64(total) / el.Seconds()
}

// AblationAggregation measures the probe layer's buffered network layer:
// with aggregation versus shipping every logical message alone (the naive
// baseline of §III-B before the buffered layer was added).
func AblationAggregation(e ExpConfig) string {
	g := e.inputs()["rmat"]
	p := e.Hosts[len(e.Hosts)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: probe-layer aggregation (Abelian mpi-probe, rmat, P=%d)\n", p)
	for _, agg := range []bool{true, false} {
		cfg := Config{App: "pagerank", Layer: MPIProbe, Hosts: p, Threads: e.Threads,
			PRIters: e.PRIters, NoAggregation: !agg}
		mean, _ := meanOf(e.Repeats, func() *Result { return RunAbelian(g, cfg) })
		name := "aggregated (buffered layer)"
		if !agg {
			name = "per-message (naive)"
		}
		fmt.Fprintf(&b, "  %-28s total %12s\n", name, mean.Round(time.Microsecond))
	}
	return b.String()
}
