package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"lcigraph/internal/fabric"
	"lcigraph/internal/graph"
	"lcigraph/internal/mpi"
)

// Experiments drives the full paper reproduction. Every Fig*/Table*
// function returns a formatted text block (and is exercised by
// bench_test.go / cmd/experiments).

// ExpConfig scales the experiment suite.
type ExpConfig struct {
	Scale   int // graph scale (2^Scale vertices); paper inputs are 28-30
	Hosts   []int
	Threads int
	Repeats int // mean of N runs (paper uses 5)
	PRIters int
	Seed    int64
}

// DefaultExp returns the laptop-scale defaults.
func DefaultExp() ExpConfig {
	return ExpConfig{
		Scale:   11,
		Hosts:   []int{2, 4, 8},
		Threads: 2,
		Repeats: 3,
		PRIters: 10,
		Seed:    42,
	}
}

// inputs builds the three Table I substitutes at the configured scale.
func (e ExpConfig) inputs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"web":  graph.Named("web", e.Scale, e.Seed),
		"kron": graph.Named("kron", e.Scale, e.Seed),
		"rmat": graph.Named("rmat", e.Scale, e.Seed),
	}
}

// geomean returns the geometric mean of xs.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// meanOf runs fn Repeats times and returns the mean wall time along with
// the last result (for non-timing fields).
func meanOf(repeats int, fn func() *Result) (time.Duration, *Result) {
	var total time.Duration
	var last *Result
	for i := 0; i < repeats; i++ {
		last = fn()
		total += last.Wall
	}
	return total / time.Duration(repeats), last
}

// Table1 prints the input properties (Table I).
func Table1(e ExpConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: inputs and their key properties (scale %d substitutes)\n", e.Scale)
	names := []string{"web", "kron", "rmat"}
	ins := e.inputs()
	for _, n := range names {
		p := graph.Analyze(n, ins[n])
		fmt.Fprintf(&b, "  %s\n", p)
	}
	return b.String()
}

// Fig1Table prints the microbenchmark (Fig. 1).
func Fig1Table(iters int) string {
	rs := Fig1([]int{8, 256, 4096}, []int{1, 2, 4, 8}, iters, fabric.OmniPath(), mpi.IntelMPI())
	var b strings.Builder
	b.WriteString("Fig 1: latency and message rate, MPI no-probe / MPI probe / LCI queue\n")
	b.WriteString(FormatMicro(rs))

	// Headline ratio: probe vs queue latency at 8 bytes.
	var probe8, queue8 time.Duration
	for _, r := range rs {
		if r.Size == 8 && r.Latency > 0 {
			switch r.Iface {
			case IfaceProbe:
				probe8 = r.Latency
			case IfaceQueue:
				queue8 = r.Latency
			}
		}
	}
	if queue8 > 0 {
		fmt.Fprintf(&b, "probe/queue 8B latency ratio: %.2fx (paper: up to 3.5x)\n",
			float64(probe8)/float64(queue8))
	}
	return b.String()
}

// runMatrix runs one framework across apps × graphs × hosts × layers.
type matrixRow struct {
	App, Graph string
	Hosts      int
	Layer      string
	Time       time.Duration
	Res        *Result
}

func (e ExpConfig) runMatrix(framework string, layers []string, hosts []int,
	graphs map[string]*graph.Graph, gnames []string) []matrixRow {

	var rows []matrixRow
	for _, app := range Apps() {
		for _, gn := range gnames {
			g := graphs[gn]
			for _, p := range hosts {
				for _, layer := range layers {
					cfg := Config{
						App: app, Layer: layer, Hosts: p, Threads: e.Threads,
						Source: 1, PRIters: e.PRIters,
						Profile: fabric.OmniPath(), Impl: mpi.IntelMPI(),
					}
					mean, res := meanOf(e.Repeats, func() *Result {
						if framework == "gemini" {
							return RunGemini(g, cfg)
						}
						return RunAbelian(g, cfg)
					})
					rows = append(rows, matrixRow{app, gn, p, layer, mean, res})
				}
			}
		}
	}
	return rows
}

func formatMatrix(title string, rows []matrixRow, layers []string) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "  %-9s %-5s %-3s", "app", "graph", "P")
	for _, l := range layers {
		fmt.Fprintf(&b, " %12s", l)
	}
	b.WriteString("\n")

	// Group rows by (app, graph, hosts).
	type key struct {
		app, g string
		p      int
	}
	cells := map[key]map[string]time.Duration{}
	var keys []key
	for _, r := range rows {
		k := key{r.App, r.Graph, r.Hosts}
		if cells[k] == nil {
			cells[k] = map[string]time.Duration{}
			keys = append(keys, k)
		}
		cells[k][r.Layer] = r.Time
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].app != keys[j].app {
			return keys[i].app < keys[j].app
		}
		if keys[i].g != keys[j].g {
			return keys[i].g < keys[j].g
		}
		return keys[i].p < keys[j].p
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-9s %-5s %-3d", k.app, k.g, k.p)
		for _, l := range layers {
			fmt.Fprintf(&b, " %12s", cells[k][l].Round(time.Microsecond))
		}
		b.WriteString("\n")
	}

	// Geomean speedups at the largest host count vs the first layer.
	maxP := 0
	for _, k := range keys {
		if k.p > maxP {
			maxP = k.p
		}
	}
	base := layers[0]
	for _, l := range layers[1:] {
		var ratios []float64
		for _, k := range keys {
			if k.p != maxP {
				continue
			}
			if a, ok := cells[k][l]; ok && cells[k][base] > 0 {
				ratios = append(ratios, float64(a)/float64(cells[k][base]))
			}
		}
		if len(ratios) > 0 {
			fmt.Fprintf(&b, "  geomean speedup of %s over %s at P=%d: %.2fx\n",
				base, l, maxP, geomean(ratios))
		}
	}
	return b.String()
}

// Fig3 runs the Abelian matrix (Fig. 3: total execution time, LCI vs
// MPI-Probe vs MPI-RMA).
func Fig3(e ExpConfig) string {
	graphs := e.inputs()
	rows := e.runMatrix("abelian", Layers(), e.Hosts, graphs, []string{"web", "kron", "rmat"})
	return formatMatrix("Fig 3: Abelian total execution time", rows, Layers())
}

// Fig4 runs the Gemini matrix (Fig. 4: LCI vs MPI-Probe).
func Fig4(e ExpConfig) string {
	graphs := e.inputs()
	rows := e.runMatrix("gemini", StreamKinds(), e.Hosts, graphs, []string{"web", "kron", "rmat"})
	return formatMatrix("Fig 4: Gemini total execution time", rows, StreamKinds())
}

// Fig5 reports communication-buffer footprints (max and min across hosts)
// for Abelian with LCI vs MPI-RMA.
func Fig5(e ExpConfig) string {
	g := e.inputs()["rmat"]
	p := e.Hosts[len(e.Hosts)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5: communication-buffer footprint, Abelian, rmat, P=%d\n", p)
	fmt.Fprintf(&b, "  %-9s %-9s %14s %14s\n", "app", "layer", "max(bytes)", "min(bytes)")
	for _, app := range Apps() {
		for _, layer := range []string{LCI, MPIRMA} {
			cfg := Config{App: app, Layer: layer, Hosts: p, Threads: e.Threads,
				Source: 1, PRIters: e.PRIters}
			res := RunAbelian(g, cfg)
			fmt.Fprintf(&b, "  %-9s %-9s %14d %14d\n", app, layer, res.MemMax, res.MemMin)
		}
	}
	return b.String()
}

// Fig6 reports the compute vs non-overlapped-communication breakdown
// (kron, largest P, all layers).
func Fig6(e ExpConfig) string {
	g := e.inputs()["kron"]
	p := e.Hosts[len(e.Hosts)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6: compute vs non-overlapped comm, Abelian, kron, P=%d\n", p)
	fmt.Fprintf(&b, "  %-9s %-9s %12s %12s %12s\n", "app", "layer", "compute", "comm", "total")
	for _, app := range Apps() {
		for _, layer := range Layers() {
			cfg := Config{App: app, Layer: layer, Hosts: p, Threads: e.Threads,
				Source: 1, PRIters: e.PRIters}
			res := RunAbelian(g, cfg)
			fmt.Fprintf(&b, "  %-9s %-9s %12s %12s %12s\n", app, layer,
				res.MaxCompute().Round(time.Microsecond),
				res.MaxComm().Round(time.Microsecond),
				res.Wall.Round(time.Microsecond))
		}
	}
	return b.String()
}

// Table2 compares the two cluster profiles (Stampede2 Omni-Path vs
// Stampede1 InfiniBand) on Abelian rmat at the largest P, LCI vs MPI-Probe.
func Table2(e ExpConfig) string {
	g := e.inputs()["rmat"]
	p := e.Hosts[len(e.Hosts)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: Abelian rmat @ P=%d, per NIC profile (seconds)\n", p)
	fmt.Fprintf(&b, "  %-9s", "app")
	profs := []fabric.Profile{fabric.OmniPath(), fabric.InfiniBand()}
	for _, pr := range profs {
		for _, layer := range Layers() {
			fmt.Fprintf(&b, " %20s", pr.Name+"/"+layer)
		}
	}
	b.WriteString("\n")
	for _, app := range Apps() {
		fmt.Fprintf(&b, "  %-9s", app)
		for _, pr := range profs {
			for _, layer := range Layers() {
				cfg := Config{App: app, Layer: layer, Hosts: p, Threads: e.Threads,
					Source: 1, PRIters: e.PRIters, Profile: pr}
				mean, _ := meanOf(e.Repeats, func() *Result { return RunAbelian(g, cfg) })
				fmt.Fprintf(&b, " %20s", mean.Round(time.Microsecond))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table3 documents the two simulated cluster profiles.
func Table3() string {
	var b strings.Builder
	b.WriteString("Table III: simulated cluster profiles\n")
	fmt.Fprintf(&b, "  %-12s %10s %10s %10s %10s %12s\n",
		"profile", "ringDepth", "eagerB", "sendCost", "putCost", "cost/KiB")
	for _, p := range []fabric.Profile{fabric.OmniPath(), fabric.InfiniBand()} {
		fmt.Fprintf(&b, "  %-12s %10d %10d %10s %10s %12s\n",
			p.Name, p.RingDepth, p.EagerLimit, p.SendCost, p.PutCost, p.ByteCost)
	}
	return b.String()
}

// Portability runs a subset of apps across all three transport profiles —
// including the RDMA-less sockets class, where LCI and MPI both fall back
// to software fragmentation — reproducing §VI's claim that LCI's few
// primitive operations port everywhere.
func Portability(e ExpConfig) string {
	g := e.inputs()["rmat"]
	p := e.Hosts[len(e.Hosts)-1]
	profs := []fabric.Profile{fabric.OmniPath(), fabric.InfiniBand(), fabric.Sockets()}
	var b strings.Builder
	fmt.Fprintf(&b, "Portability: Abelian rmat @ P=%d across transports\n", p)
	fmt.Fprintf(&b, "  %-9s %-9s", "app", "layer")
	for _, pr := range profs {
		fmt.Fprintf(&b, " %14s", pr.Name)
	}
	b.WriteString("\n")
	for _, app := range []string{"cc", "pagerank"} {
		for _, layer := range []string{LCI, MPIProbe} {
			fmt.Fprintf(&b, "  %-9s %-9s", app, layer)
			for _, pr := range profs {
				cfg := Config{App: app, Layer: layer, Hosts: p, Threads: e.Threads,
					PRIters: e.PRIters, Profile: pr}
				mean, _ := meanOf(e.Repeats, func() *Result { return RunAbelian(g, cfg) })
				fmt.Fprintf(&b, " %14s", mean.Round(time.Microsecond))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Table4 compares MPI implementation profiles (two-sided and RMA) against
// LCI on Abelian (pagerank and cc, largest P, rmat).
func Table4(e ExpConfig) string {
	g := e.inputs()["rmat"]
	p := e.Hosts[len(e.Hosts)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV: other MPI implementations, Abelian rmat @ P=%d\n", p)
	fmt.Fprintf(&b, "  %-9s %-18s %12s\n", "app", "runtime", "time")
	for _, app := range []string{"cc", "pagerank"} {
		cfg := Config{App: app, Layer: LCI, Hosts: p, Threads: e.Threads,
			Source: 1, PRIters: e.PRIters}
		mean, _ := meanOf(e.Repeats, func() *Result { return RunAbelian(g, cfg) })
		fmt.Fprintf(&b, "  %-9s %-18s %12s\n", app, "lci", mean.Round(time.Microsecond))
		for _, impl := range mpi.Impls() {
			for _, layer := range []string{MPIProbe, MPIRMA} {
				cfg := Config{App: app, Layer: layer, Hosts: p, Threads: e.Threads,
					Source: 1, PRIters: e.PRIters, Impl: impl}
				mean, _ := meanOf(e.Repeats, func() *Result { return RunAbelian(g, cfg) })
				fmt.Fprintf(&b, "  %-9s %-18s %12s\n", app, impl.Name+"/"+layer,
					mean.Round(time.Microsecond))
			}
		}
	}
	return b.String()
}
