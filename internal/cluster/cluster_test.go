package cluster

import (
	"sync/atomic"
	"testing"

	"lcigraph/internal/comm"
	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
)

func lciLayers(p int) func(int) comm.Layer {
	fab := fabric.New(p, fabric.TestProfile())
	return func(r int) comm.Layer {
		return comm.NewLCILayer(fab.Endpoint(r), lci.Options{})
	}
}

func TestRunAllHostsExecute(t *testing.T) {
	const p = 5
	var ran [p]atomic.Bool
	Run(p, 2, lciLayers(p), func(h *Host) {
		if h.P != p || h.Rank < 0 || h.Rank >= p {
			t.Errorf("bad host identity %d/%d", h.Rank, h.P)
		}
		if h.Pool.Workers() != 2 {
			t.Errorf("pool workers = %d", h.Pool.Workers())
		}
		ran[h.Rank].Store(true)
	})
	for r := range ran {
		if !ran[r].Load() {
			t.Fatalf("host %d never ran", r)
		}
	}
}

func TestBarrierSeparatesPhases(t *testing.T) {
	const p = 4
	const rounds = 50
	var phase atomic.Int64
	Run(p, 1, lciLayers(p), func(h *Host) {
		for r := 0; r < rounds; r++ {
			cur := phase.Load() / p
			if cur != int64(r) {
				t.Errorf("host %d sees phase %d in round %d", h.Rank, cur, r)
				return
			}
			phase.Add(1)
			h.Barrier()
			h.Barrier() // second barrier so the read above is stable
		}
	})
}

func TestAllreduce(t *testing.T) {
	const p = 6
	Run(p, 1, lciLayers(p), func(h *Host) {
		sum := h.AllreduceSum(int64(h.Rank + 1))
		if sum != p*(p+1)/2 {
			t.Errorf("host %d: sum = %d", h.Rank, sum)
		}
		max := h.AllreduceMax(int64(h.Rank * 10))
		if max != (p-1)*10 {
			t.Errorf("host %d: max = %d", h.Rank, max)
		}
		// Repeated allreduces with changing values don't cross-talk.
		for r := int64(0); r < 20; r++ {
			got := h.AllreduceSum(r)
			if got != r*p {
				t.Errorf("round %d: got %d", r, got)
				return
			}
		}
	})
}

func checkGather(t *testing.T, h *Host, parts [][]byte, mk func(rank int) []byte) {
	t.Helper()
	if h.Rank != 0 {
		if parts != nil {
			t.Errorf("rank %d: non-root gather returned parts", h.Rank)
		}
		return
	}
	if len(parts) != h.P {
		t.Errorf("root gathered %d parts, want %d", len(parts), h.P)
		return
	}
	for r, got := range parts {
		want := mk(r)
		if string(got) != string(want) {
			t.Errorf("rank %d part mismatch: %d bytes vs %d", r, len(got), len(want))
		}
	}
}

func TestGatherBytesLocal(t *testing.T) {
	const p = 5
	mk := func(r int) []byte { return []byte{byte(r), byte(r + 1), byte(r + 2)} }
	Run(p, 1, lciLayers(p), func(h *Host) {
		parts := h.GatherBytes(0, mk(h.Rank), 16)
		checkGather(t, h, parts, mk)
	})
}

func TestRunRankGather(t *testing.T) {
	const p = 4
	// Payloads big enough to exercise the rendezvous path under the test
	// profile, and rank-dependent sizes so misrouted parts are caught.
	mk := func(r int) []byte {
		b := make([]byte, 9000+100*r)
		for i := range b {
			b[i] = byte(r + i)
		}
		return b
	}
	runRanks(t, p, func(h *Host) {
		for round := 0; round < 3; round++ {
			parts := h.GatherBytes(0, mk(h.Rank), 16<<10)
			checkGather(t, h, parts, mk)
		}
	})
}

func TestBarrierReuse(t *testing.T) {
	b := NewBarrier(3)
	done := make(chan int, 3)
	for g := 0; g < 3; g++ {
		go func(g int) {
			for i := 0; i < 100; i++ {
				b.Wait()
			}
			done <- g
		}(g)
	}
	for g := 0; g < 3; g++ {
		<-done
	}
}

// runRanks drives RunRank for every rank concurrently, the in-process shape
// of the multi-process launcher: collectives ride the communication layer
// (netJob) instead of shared memory.
func runRanks(t *testing.T, p int, body func(h *Host)) {
	t.Helper()
	mk := lciLayers(p)
	done := make(chan struct{})
	for r := 0; r < p; r++ {
		go func(r int) {
			defer func() { done <- struct{}{} }()
			RunRank(r, p, 1, mk(r), body)
		}(r)
	}
	for r := 0; r < p; r++ {
		<-done
	}
}

func TestRunRankAllreduce(t *testing.T) {
	const p = 4
	runRanks(t, p, func(h *Host) {
		sum := h.AllreduceSum(int64(h.Rank + 1))
		if sum != p*(p+1)/2 {
			t.Errorf("rank %d: sum = %d", h.Rank, sum)
		}
		min := h.AllreduceMin(int64(h.Rank - 7))
		if min != -7 {
			t.Errorf("rank %d: min = %d", h.Rank, min)
		}
		// Successive collectives must not cross-talk: the layer's per-tag
		// epochs keep round r's contributions out of round r+1.
		for r := int64(0); r < 30; r++ {
			if got := h.AllreduceSum(r + int64(h.Rank)); got != r*p+p*(p-1)/2 {
				t.Errorf("round %d: got %d", r, got)
				return
			}
		}
	})
}

func TestRunRankBarrier(t *testing.T) {
	const p = 3
	var phase atomic.Int64
	runRanks(t, p, func(h *Host) {
		for r := 0; r < 25; r++ {
			cur := phase.Load() / p
			if cur != int64(r) {
				t.Errorf("rank %d sees phase %d in round %d", h.Rank, cur, r)
				return
			}
			phase.Add(1)
			h.Barrier()
			h.Barrier() // second barrier so the read above is stable
		}
	})
}
