package cluster

import (
	"testing"

	"lcigraph/internal/comm"
	lci "lcigraph/internal/core"
	"lcigraph/internal/netfabric"
)

// TestGatherBytesLossyUDP drives GatherBytes over real UDP sockets with 5%
// injected datagram loss, one goroutine per rank — the shape the serving
// layer's metrics/trace gathers run in. Under -race this doubles as a data
// race check on the gather path: the root's parts slice is written by the
// layer's driver goroutine while rank goroutines run their own collectives.
func TestGatherBytesLossyUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("real UDP sockets with injected loss")
	}
	const p = 4
	const rounds = 5
	provs, err := netfabric.NewLoopbackGroup(p, netfabric.Config{
		Fault: netfabric.Fault{Loss: 0.05, Seed: 23},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer netfabric.CloseGroup(provs)

	// Rank- and round-dependent payloads spanning eager and rendezvous, so a
	// dropped or cross-delivered part is caught by content, not just length.
	mk := func(rank, round int) []byte {
		b := make([]byte, 700*(rank+1)+3000*round)
		for i := range b {
			b[i] = byte(rank ^ (round + i))
		}
		return b
	}

	done := make(chan struct{})
	for r := 0; r < p; r++ {
		go func(r int) {
			defer func() { done <- struct{}{} }()
			// bench.LCIOptions' shape, inlined (bench imports this package).
			layer := comm.NewLCILayer(provs[r], lci.Options{
				PoolPackets: 64 * p, QueueDepth: 1024, MaxOutstanding: 1024, Workers: 3,
			})
			RunRank(r, p, 1, layer, func(h *Host) {
				for round := 0; round < rounds; round++ {
					parts := h.GatherBytes(0, mk(h.Rank, round), 1<<20)
					if h.Rank != 0 {
						if parts != nil {
							t.Errorf("rank %d: non-root gather returned parts", h.Rank)
						}
						continue
					}
					if len(parts) != p {
						t.Errorf("round %d: root gathered %d parts, want %d", round, len(parts), p)
						continue
					}
					for pr, got := range parts {
						want := mk(pr, round)
						if string(got) != string(want) {
							t.Errorf("round %d rank %d part mismatch: %d bytes vs %d",
								round, pr, len(got), len(want))
						}
					}
				}
			})
		}(r)
	}
	for r := 0; r < p; r++ {
		<-done
	}
}
