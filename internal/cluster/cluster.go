// Package cluster runs SPMD jobs: P hosts, each with its own communication
// layer and compute-thread pool, standing in for the paper's multi-host
// runs (DESIGN.md §2).
//
// Two execution shapes share one Host API:
//
//   - Run places all P hosts in this process. Barrier and Allreduce are
//     process-local with identical cost for every communication layer, so
//     layer comparisons reflect only the data-synchronization paths the
//     paper instruments.
//   - RunRank executes a single rank whose peers live in other OS
//     processes (cmd/lci-launch). There is no shared memory to lean on, so
//     Barrier and Allreduce ride the communication layer itself as an
//     allgather Exchange on a reserved tag.
package cluster

import (
	"encoding/binary"
	"sync"

	"lcigraph/internal/comm"
	"lcigraph/internal/parallel"
)

// CollectiveTag is the Exchange base tag reserved for cluster collectives
// in out-of-process jobs. Frameworks allocate field tags from 0 upwards and
// must stay below the whole reserved range [ServeTagLo, CollectiveTag].
const CollectiveTag uint32 = 255

// ServeTagLo is the bottom of the serving layer's reserved control-tag
// range [ServeTagLo, CollectiveTag): internal/serve multiplexes its
// query-scatter, reply-gather and drain-control traffic on these base tags,
// concurrently with collective traffic on CollectiveTag. Frameworks must
// allocate their field tags strictly below the whole reserved range, i.e.
// below HealthTag.
const ServeTagLo uint32 = 250

// HealthTag carries the cluster health monitor's heartbeat digests
// (internal/health): non-zero ranks post compact per-rank digests to rank 0
// on this tag over the free-running comm layer, so rank 0 holds a
// cluster-wide health view even when a peer's HTTP endpoint is unreachable.
// It sits just below ServeTagLo.
const HealthTag uint32 = 249

// IncidentTag carries incident-capture control and evidence traffic
// (internal/incident): capture requests fan out from rank 0 and every
// rank's postmortem evidence blob (profiles, trace ring, metric snapshots)
// rides back to rank 0 for bundling, all on the free-running comm layer —
// the same transport the incident is about, which is exactly why evidence
// shipping must not depend on a second control plane being healthy. It
// extends the reserved range downward to [IncidentTag, CollectiveTag];
// frameworks must allocate their field tags strictly below IncidentTag.
const IncidentTag uint32 = 248

// Host is one host's context inside a job.
type Host struct {
	Rank, P int
	Layer   comm.Layer
	Pool    *parallel.Pool

	sync syncer
}

// syncer supplies the job-wide collectives for one execution shape.
type syncer interface {
	barrier(h *Host)
	allreduce(h *Host, v int64, op func(a, b int64) int64) int64
	gather(h *Host, root int, payload []byte, maxLen int) [][]byte
}

// localJob implements collectives over shared memory for in-process jobs.
type localJob struct {
	bar   *Barrier
	vals  []int64
	parts [][]byte
}

func (j *localJob) barrier(h *Host) { j.bar.Wait() }

func (j *localJob) allreduce(h *Host, v int64, op func(a, b int64) int64) int64 {
	j.vals[h.Rank] = v
	j.bar.Wait()
	acc := j.vals[0]
	for r := 1; r < h.P; r++ {
		acc = op(acc, j.vals[r])
	}
	j.bar.Wait() // nobody overwrites vals until all have read
	return acc
}

func (j *localJob) gather(h *Host, root int, payload []byte, maxLen int) [][]byte {
	j.parts[h.Rank] = payload
	j.bar.Wait()
	var out [][]byte
	if h.Rank == root {
		out = make([][]byte, h.P)
		copy(out, j.parts)
	}
	j.bar.Wait() // nobody reuses parts until the root has read
	return out
}

// netJob implements collectives as an allgather over the communication
// layer: every rank sends its value to every peer on CollectiveTag and
// folds the P contributions in rank order, so all ranks compute the same
// result. Receiving all P-1 contributions doubles as the barrier — a
// peer's message proves it entered this collective, and the layer's
// per-tag epoch bookkeeping keeps successive collectives apart.
type netJob struct{}

func (netJob) allreduce(h *Host, v int64, op func(a, b int64) int64) int64 {
	out := make([][]byte, h.P)
	expect := make([]bool, h.P)
	recvMax := make([]int, h.P)
	vals := make([]int64, h.P)
	for p := 0; p < h.P; p++ {
		if p == h.Rank {
			continue
		}
		b := h.Layer.AllocBuf(8)
		binary.LittleEndian.PutUint64(b, uint64(v))
		out[p] = b
		expect[p] = true
		recvMax[p] = 8
	}
	vals[h.Rank] = v
	h.Layer.Exchange(CollectiveTag, out, expect, recvMax,
		func(peer int, data []byte) {
			vals[peer] = int64(binary.LittleEndian.Uint64(data))
		})
	acc := vals[0]
	for r := 1; r < h.P; r++ {
		acc = op(acc, vals[r])
	}
	return acc
}

func (n netJob) barrier(h *Host) {
	n.allreduce(h, 0, func(a, b int64) int64 { return 0 })
}

// gather ships every rank's payload to root over the layer. Exchange is
// collective per tag, so every rank calls it: non-roots send their payload
// to root and expect nothing; root sends nothing and collects P-1 payloads
// (bounded by maxLen each). Payloads above the eager limit simply ride the
// layer's rendezvous path.
func (netJob) gather(h *Host, root int, payload []byte, maxLen int) [][]byte {
	out := make([][]byte, h.P)
	expect := make([]bool, h.P)
	recvMax := make([]int, h.P)
	if h.Rank == root {
		for p := 0; p < h.P; p++ {
			if p != h.Rank {
				expect[p] = true
				recvMax[p] = maxLen
			}
		}
	} else {
		b := h.Layer.AllocBuf(len(payload))
		copy(b, payload)
		out[root] = b
	}
	var parts [][]byte
	if h.Rank == root {
		parts = make([][]byte, h.P)
		parts[root] = payload
	}
	h.Layer.Exchange(CollectiveTag, out, expect, recvMax,
		func(peer int, data []byte) {
			parts[peer] = append([]byte(nil), data...)
		})
	return parts
}

// Run executes body on p hosts concurrently in this process, each with
// threads compute workers and the layer built by mkLayer, and tears
// everything down when all bodies return.
func Run(p, threads int, mkLayer func(rank int) comm.Layer, body func(h *Host)) {
	j := &localJob{bar: NewBarrier(p), vals: make([]int64, p), parts: make([][]byte, p)}
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := &Host{
				Rank:  r,
				P:     p,
				Layer: mkLayer(r),
				Pool:  parallel.NewPool(threads),
				sync:  j,
			}
			body(h)
			h.Barrier() // quiesce before teardown
			h.Layer.Stop()
			h.Pool.Close()
		}(r)
	}
	wg.Wait()
}

// RunRank executes body as rank of a p-rank SPMD job whose other ranks run
// in separate OS processes, all connected by layer's transport. Collectives
// go through the layer (netJob), and teardown mirrors Run: a final barrier
// quiesces the job before the layer stops.
func RunRank(rank, p, threads int, layer comm.Layer, body func(h *Host)) {
	h := &Host{
		Rank:  rank,
		P:     p,
		Layer: layer,
		Pool:  parallel.NewPool(threads),
		sync:  netJob{},
	}
	body(h)
	h.Barrier() // quiesce before teardown
	h.Layer.Stop()
	h.Pool.Close()
}

// Barrier blocks until every host in the job reaches it.
func (h *Host) Barrier() { h.sync.barrier(h) }

// Allreduce combines every host's v with op (associative, commutative) and
// returns the result on all hosts. It is used for quiescence detection
// (global active-vertex counts) at the end of each BSP round.
func (h *Host) Allreduce(v int64, op func(a, b int64) int64) int64 {
	return h.sync.allreduce(h, v, op)
}

// GatherBytes collects every rank's payload at root (a collective — every
// rank must call it). On root it returns P slices indexed by rank (root's
// own entry aliases payload); on other ranks it returns nil. maxLen bounds
// each contribution; it is the receive allocation hint for out-of-process
// jobs. It backs the cross-rank telemetry aggregation in cmd/lci-launch.
func (h *Host) GatherBytes(root int, payload []byte, maxLen int) [][]byte {
	return h.sync.gather(h, root, payload, maxLen)
}

// AllreduceSum is Allreduce with addition.
func (h *Host) AllreduceSum(v int64) int64 {
	return h.Allreduce(v, func(a, b int64) int64 { return a + b })
}

// AllreduceMax is Allreduce with max.
func (h *Host) AllreduceMax(v int64) int64 {
	return h.Allreduce(v, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllreduceMin is Allreduce with min.
func (h *Host) AllreduceMin(v int64) int64 {
	return h.Allreduce(v, func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
}

// Barrier is a reusable sense-reversing barrier for a fixed participant
// count.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until n goroutines have called Wait in this generation.
func (b *Barrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
