// Package cluster runs SPMD jobs: P hosts in one process, each with its own
// communication layer and compute-thread pool, standing in for the paper's
// multi-host runs (DESIGN.md §2).
//
// Barrier and Allreduce are provided by the job runner with identical
// (process-local) cost for every communication layer, so layer comparisons
// reflect only the data-synchronization paths the paper instruments.
package cluster

import (
	"sync"

	"lcigraph/internal/comm"
	"lcigraph/internal/parallel"
)

// Host is one simulated host's context inside a job.
type Host struct {
	Rank, P int
	Layer   comm.Layer
	Pool    *parallel.Pool

	job *job
}

type job struct {
	bar  *Barrier
	vals []int64
}

// Run executes body on p hosts concurrently, each with threads compute
// workers and the layer built by mkLayer, and tears everything down when
// all bodies return.
func Run(p, threads int, mkLayer func(rank int) comm.Layer, body func(h *Host)) {
	j := &job{bar: NewBarrier(p), vals: make([]int64, p)}
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := &Host{
				Rank:  r,
				P:     p,
				Layer: mkLayer(r),
				Pool:  parallel.NewPool(threads),
				job:   j,
			}
			body(h)
			h.Barrier() // quiesce before teardown
			h.Layer.Stop()
			h.Pool.Close()
		}(r)
	}
	wg.Wait()
}

// Barrier blocks until every host in the job reaches it.
func (h *Host) Barrier() { h.job.bar.Wait() }

// Allreduce combines every host's v with op (associative, commutative) and
// returns the result on all hosts. It is used for quiescence detection
// (global active-vertex counts) at the end of each BSP round.
func (h *Host) Allreduce(v int64, op func(a, b int64) int64) int64 {
	h.job.vals[h.Rank] = v
	h.job.bar.Wait()
	acc := h.job.vals[0]
	for r := 1; r < h.P; r++ {
		acc = op(acc, h.job.vals[r])
	}
	h.job.bar.Wait() // nobody overwrites vals until all have read
	return acc
}

// AllreduceSum is Allreduce with addition.
func (h *Host) AllreduceSum(v int64) int64 {
	return h.Allreduce(v, func(a, b int64) int64 { return a + b })
}

// AllreduceMax is Allreduce with max.
func (h *Host) AllreduceMax(v int64) int64 {
	return h.Allreduce(v, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllreduceMin is Allreduce with min.
func (h *Host) AllreduceMin(v int64) int64 {
	return h.Allreduce(v, func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
}

// Barrier is a reusable sense-reversing barrier for a fixed participant
// count.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until n goroutines have called Wait in this generation.
func (b *Barrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
