package apps

import (
	"time"

	"lcigraph/internal/abelian"
	"lcigraph/internal/bitset"
)

// BFSDirectionOpt is a direction-optimizing BFS on the Abelian runtime
// (Beamer-style push/pull switching, the optimization the Galois/Abelian
// BFS actually applies): rounds with a small frontier push along out-edges
// as usual; rounds with a large frontier instead pull — every unreached
// proxy scans its local in-edges (the partition's CSC view) for a reached
// source. Both modes synchronize through the same field machinery, so the
// result is identical to plain BFS.
//
// It returns the distance field, the number of rounds, and how many of
// them ran in pull mode.
func BFSDirectionOpt(rt *abelian.Runtime, source uint32) (*abelian.Field, int, int) {
	hg := rt.HG
	dist := rt.NewField(Inf, minU64)

	cur := bitset.New(hg.NumLocal)
	next := bitset.New(hg.NumLocal)
	dist.OnChange = func(lv uint32) { next.Set(int(lv)) }
	defer func() { dist.OnChange = nil }()

	if lv, ok := hg.G2L(source); ok {
		dist.SetLocal(lv, 0)
		cur.Set(int(lv))
	}

	// Switch to pull when the global frontier exceeds 1/pullFrac of the
	// graph.
	const pullFrac = 16
	globalN := int64(hg.GlobalN)

	rounds, pulls := 0, 0
	for {
		rounds++
		t0 := time.Now()
		frontier := rt.Host.AllreduceSum(int64(cur.Count()))
		rt.CommTime += time.Since(t0)

		if frontier*pullFrac >= globalN {
			pulls++
			rt.Compute(func() {
				in := hg.LocalIn()
				rt.Host.Pool.ForRange(hg.NumLocal, func(lo, hi int) {
					for v := lo; v < hi; v++ {
						if dist.Get(uint32(v)) != Inf {
							continue
						}
						best := uint64(Inf)
						for _, u := range in.Neighbors(v) {
							if du := dist.Get(u); du != Inf && du+1 < best {
								best = du + 1
							}
						}
						if best != Inf {
							if dist.Apply(uint32(v), best) {
								next.Set(v)
							}
						}
					}
				})
			})
		} else {
			rt.Compute(func() {
				rt.Host.Pool.ForRange(hg.NumLocal, func(lo, hi int) {
					cur.ForEachRange(lo, hi, func(u int) {
						du := dist.Get(uint32(u))
						if du == Inf {
							return
						}
						for _, v := range hg.Local.Neighbors(u) {
							if dist.Apply(v, du+1) {
								next.Set(int(v))
							}
						}
					})
				})
			})
		}

		dist.Sync()
		rt.Rounds++
		rt.RecordRound()
		local := int64(next.Count())
		t1 := time.Now()
		global := rt.Host.AllreduceSum(local)
		rt.CommTime += time.Since(t1)
		if global == 0 {
			return dist, rounds, pulls
		}
		cur, next = next, cur
		next.Reset()
	}
}
