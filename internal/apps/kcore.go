package apps

import (
	"sync/atomic"
	"time"

	"lcigraph/internal/abelian"
	"lcigraph/internal/bitset"
)

// KCore computes the k-core of a symmetric graph on the Abelian runtime:
// vertices with fewer than k live neighbors are removed iteratively until a
// fixed point. It exercises a communication pattern the other apps do not —
// a broadcast of "deaths" followed by an additive reduction of per-neighbor
// decrements each round (the Gluon benchmark suite's k-core shape).
//
// It returns a field whose masters hold 1 for vertices in the k-core and 0
// otherwise, plus the number of BSP rounds.
func KCore(rt *abelian.Runtime, k uint64) (*abelian.Field, int) {
	hg := rt.HG

	// Global degrees via add-reduction (vertex-cuts split adjacency).
	deg := rt.NewField(0, func(a, b uint64) uint64 { return a + b })
	rt.Compute(func() {
		rt.Host.Pool.For(hg.NumLocal, func(lv int) {
			if d := hg.Local.Degree(lv); d > 0 {
				deg.Apply(uint32(lv), uint64(d))
			}
		})
	})
	deg.SyncReduce()
	deg.SyncBroadcast()

	// alive: 1 while in the candidate core; min-reduce propagates deaths
	// (0 wins). decs accumulates live-neighbor losses per round.
	alive := rt.NewField(1, minU64)
	decs := rt.NewField(0, func(a, b uint64) uint64 { return a + b })

	// lost[lv] = total decrements applied to master lv so far.
	lost := make([]uint64, hg.NumLocal)

	// newlyDead tracks proxies whose alive value dropped this round
	// (locally or via sync) so their out-edges are decremented exactly
	// once.
	newlyDead := bitset.New(hg.NumLocal)
	alive.OnChange = func(lv uint32) { newlyDead.Set(int(lv)) }
	defer func() { alive.OnChange = nil }()

	rounds := 0
	for {
		rounds++
		// Kill phase: masters below the threshold die.
		var died atomic.Int64
		rt.Compute(func() {
			rt.Host.Pool.For(hg.NumMasters, func(m int) {
				if alive.Get(uint32(m)) != 1 {
					return
				}
				if deg.Get(uint32(m))-lost[m] < k {
					alive.Set(uint32(m), 0)
					newlyDead.Set(m)
					died.Add(1)
				}
			})
		})

		// Propagate deaths to every proxy; OnChange marks remote mirrors.
		alive.SyncBroadcast()

		// Decrement phase: each newly-dead proxy charges its local
		// out-neighbors one lost neighbor (symmetric input ⇒ undirected
		// degree).
		rt.Compute(func() {
			rt.Host.Pool.ForRange(hg.NumLocal, func(lo, hi int) {
				newlyDead.ForEachRange(lo, hi, func(u int) {
					newlyDead.Clear(u)
					for _, v := range hg.Local.Neighbors(u) {
						decs.Apply(v, 1)
					}
				})
			})
		})
		decs.SyncReduce()

		// Fold this round's decrements into the running totals.
		rt.Compute(func() {
			rt.Host.Pool.For(hg.NumMasters, func(m int) {
				if d := decs.Get(uint32(m)); d != 0 {
					lost[m] += d
					decs.SetLocal(uint32(m), 0)
				}
			})
		})
		decs.ResetUpdated()

		rt.Rounds++
		rt.RecordRound()
		t0 := time.Now()
		global := rt.Host.AllreduceSum(died.Load())
		rt.CommTime += time.Since(t0)
		if global == 0 {
			return alive, rounds
		}
	}
}

// OracleKCore returns, per vertex, 1 if the vertex survives in the k-core
// of the (symmetric) graph and 0 otherwise.
func OracleKCore(g interface {
	Degree(v int) int
	Neighbors(v int) []uint32
}, n int, k uint64) []uint64 {
	alive := make([]uint64, n)
	degLeft := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = 1
		degLeft[v] = g.Degree(v)
	}
	queue := []int{}
	for v := 0; v < n; v++ {
		if uint64(degLeft[v]) < k {
			alive[v] = 0
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if alive[v] == 0 {
				continue
			}
			degLeft[v]--
			if uint64(degLeft[v]) < k {
				alive[v] = 0
				queue = append(queue, int(v))
			}
		}
	}
	return alive
}
