package apps

import (
	"math"
	"time"

	"lcigraph/internal/abelian"
	"lcigraph/internal/bitset"
)

// SSSPDelta is a distributed delta-stepping single-source shortest path on
// the Abelian runtime — the priority-ordered data-driven formulation the
// Galois/Abelian system actually schedules (an extension beyond the
// paper's Bellman-Ford-style rounds; same oracle results, fewer wasted
// relaxations on weighted graphs).
//
// Vertices are processed in buckets of width delta by tentative distance;
// a bucket is drained to quiescence (including remote updates) before the
// globally smallest non-empty bucket is taken up next.
func SSSPDelta(rt *abelian.Runtime, source uint32, delta uint64) (*abelian.Field, int) {
	if delta == 0 {
		delta = 8
	}
	hg := rt.HG
	dist := rt.NewField(Inf, minU64)

	active := bitset.New(hg.NumLocal)
	pending := bitset.New(hg.NumLocal) // activated, bucket not yet reached
	dist.OnChange = func(lv uint32) { pending.Set(int(lv)) }
	defer func() { dist.OnChange = nil }()

	if lv, ok := hg.G2L(source); ok {
		dist.SetLocal(lv, 0)
		pending.Set(int(lv))
	}

	bucketOf := func(d uint64) int64 {
		if d == Inf {
			return math.MaxInt64
		}
		return int64(d / delta)
	}

	rounds := 0
	for {
		// Find the globally smallest non-empty bucket.
		localMin := int64(math.MaxInt64)
		pending.ForEach(func(lv int) {
			if b := bucketOf(dist.Get(uint32(lv))); b < localMin {
				localMin = b
			}
		})
		t0 := time.Now()
		cur := rt.Host.AllreduceMin(localMin)
		rt.CommTime += time.Since(t0)
		if cur == math.MaxInt64 {
			return dist, rounds
		}

		// Drain bucket `cur` to global quiescence.
		for {
			rounds++
			// Promote pending vertices that belong to the current bucket.
			moved := 0
			pending.ForEach(func(lv int) {
				if bucketOf(dist.Get(uint32(lv))) <= cur {
					pending.Clear(lv)
					active.Set(lv)
					moved++
				}
			})

			rt.Compute(func() {
				rt.Host.Pool.ForRange(hg.NumLocal, func(lo, hi int) {
					active.ForEachRange(lo, hi, func(u int) {
						active.Clear(u)
						uVal := dist.Get(uint32(u))
						if uVal == Inf {
							return
						}
						ws := hg.Local.NeighborWeights(u)
						for i, v := range hg.Local.Neighbors(u) {
							w := uint64(1)
							if ws != nil {
								w = uint64(ws[i])
							}
							if dist.Apply(v, uVal+w) {
								pending.Set(int(v))
							}
						}
					})
				})
			})
			dist.Sync()
			rt.Rounds++
			rt.RecordRound()

			// Any vertex (re)activated into the current bucket keeps the
			// inner loop going; later buckets wait.
			still := int64(0)
			pending.ForEach(func(lv int) {
				if bucketOf(dist.Get(uint32(lv))) <= cur {
					still++
				}
			})
			t1 := time.Now()
			g := rt.Host.AllreduceSum(still)
			rt.CommTime += time.Since(t1)
			if g == 0 {
				break
			}
		}
	}
}
