package apps

import (
	"math"
	"testing"
	"testing/quick"

	"lcigraph/internal/graph"
)

func TestOracleBFSPath(t *testing.T) {
	g := graph.Path(6)
	d := OracleBFS(g, 0)
	for i := 0; i < 6; i++ {
		if d[i] != uint64(i) {
			t.Fatalf("dist[%d] = %d", i, d[i])
		}
	}
	d2 := OracleBFS(g, 3)
	if d2[2] != Inf || d2[5] != 2 {
		t.Fatalf("dist from 3: %v", d2[:6])
	}
}

func TestOracleSSSPWeights(t *testing.T) {
	// 0 →(1) 1 →(1) 2, and 0 →(5) 2: shortest path is via 1.
	g := graph.FromEdges(3, []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1}, {Src: 0, Dst: 2, W: 5},
	})
	d := OracleSSSP(g, 0)
	if d[2] != 2 {
		t.Fatalf("dist[2] = %d, want 2", d[2])
	}
}

// TestOracleSSSPMatchesBFSOnUnitWeights: with all weights 1, sssp == bfs.
func TestOracleSSSPMatchesBFSOnUnitWeights(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RMAT(6, 4, seed, 0) // unweighted ⇒ weight 1 in oracle
		b := OracleBFS(g, 0)
		s := OracleSSSP(g, 0)
		for i := range b {
			if b[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleCCComponents(t *testing.T) {
	// Two components: {0,1,2} and {3,4}.
	g := graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4},
	})
	c := OracleCC(g)
	if c[0] != 0 || c[1] != 0 || c[2] != 0 {
		t.Fatalf("component A: %v", c)
	}
	if c[3] != 3 || c[4] != 3 {
		t.Fatalf("component B: %v", c)
	}
}

func TestOraclePageRankProperties(t *testing.T) {
	g := graph.Kron(7, 6, 3, 0)
	r := OraclePageRank(g, 20)
	sum := 0.0
	for _, x := range r {
		if x < 0 {
			t.Fatal("negative rank")
		}
		sum += x
	}
	// Push formulation loses dangling mass, so sum ≤ 1 + ε but must stay
	// well above the teleport floor.
	if sum > 1.0001 || sum < (1-PageRankDamping) {
		t.Fatalf("rank sum = %f", sum)
	}
	// A ring's ranks are uniform.
	ring := graph.Ring(10)
	rr := OraclePageRank(ring, 50)
	for i := 1; i < 10; i++ {
		if math.Abs(rr[i]-rr[0]) > 1e-12 {
			t.Fatalf("ring ranks not uniform: %v", rr)
		}
	}
}

func TestReduceHelpers(t *testing.T) {
	if minU64(3, 5) != 3 || minU64(5, 3) != 3 {
		t.Fatal("minU64 broken")
	}
	a := math.Float64bits(1.5)
	b := math.Float64bits(2.25)
	if math.Float64frombits(addF64(a, b)) != 3.75 {
		t.Fatal("addF64 broken")
	}
}

func TestMaxRankDelta(t *testing.T) {
	if d := MaxRankDelta([]float64{1, 2, 3}, []float64{1, 2.5, 3}); d != 0.5 {
		t.Fatalf("delta = %f", d)
	}
	if d := MaxRankDelta(nil, nil); d != 0 {
		t.Fatalf("empty delta = %f", d)
	}
}
