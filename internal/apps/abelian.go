// Package apps implements the paper's four benchmark applications — bfs,
// cc, sssp and pagerank (§IV) — on both the Abelian and Gemini runtimes,
// plus single-host reference oracles used by the test suite to verify that
// every communication layer computes identical results.
package apps

import (
	"math"
	"time"

	"lcigraph/internal/abelian"
	"lcigraph/internal/bitset"
)

// Inf is the "unreached" distance value.
const Inf = math.MaxUint64

// minU64 is the min-reduction.
func minU64(a, b uint64) uint64 {
	if b < a {
		return b
	}
	return a
}

// addF64 reduces float64 values stored as bits by addition.
func addF64(a, b uint64) uint64 {
	return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
}

// runPush drives a data-driven push-style vertex program to quiescence:
// active vertices relax their out-edges into f (via the field's reduction),
// synchronization propagates changes, and any changed proxy becomes active
// for the next round. It returns the number of BSP rounds executed.
func runPush(rt *abelian.Runtime, f *abelian.Field,
	seed func(activate func(lv uint32)),
	relax func(srcVal uint64, w uint32) uint64) int {

	hg := rt.HG
	cur := bitset.New(hg.NumLocal)
	next := bitset.New(hg.NumLocal)
	f.OnChange = func(lv uint32) { next.Set(int(lv)) }
	defer func() { f.OnChange = nil }()

	seed(func(lv uint32) { cur.Set(int(lv)) })

	rounds := 0
	for {
		rounds++
		rt.Compute(func() {
			rt.Host.Pool.ForRange(hg.NumLocal, func(lo, hi int) {
				cur.ForEachRange(lo, hi, func(u int) {
					uVal := f.Get(uint32(u))
					ws := hg.Local.NeighborWeights(u)
					for i, v := range hg.Local.Neighbors(u) {
						var w uint32
						if ws != nil {
							w = ws[i]
						}
						cand := relax(uVal, w)
						if f.Apply(v, cand) {
							next.Set(int(v))
						}
					}
				})
			})
		})
		// Sync propagates remote updates; OnChange activates receivers.
		f.Sync()
		rt.Rounds++
		rt.RecordRound()
		local := int64(next.Count())
		t0 := time.Now()
		global := rt.Host.AllreduceSum(local)
		rt.CommTime += time.Since(t0)
		if global == 0 {
			return rounds
		}
		cur, next = next, cur
		next.Reset()
	}
}

// seedVertex activates global vertex gid's proxy (if present) with value v.
func seedVertex(rt *abelian.Runtime, f *abelian.Field, gid uint32, v uint64,
	activate func(lv uint32)) {
	if lv, ok := rt.HG.G2L(gid); ok {
		f.SetLocal(lv, v)
		activate(lv)
	}
}

// BFS computes hop distances from source. It returns the field holding
// per-proxy distances and the number of rounds.
func BFS(rt *abelian.Runtime, source uint32) (*abelian.Field, int) {
	dist := rt.NewField(Inf, minU64)
	rounds := runPush(rt, dist,
		func(activate func(lv uint32)) { seedVertex(rt, dist, source, 0, activate) },
		func(v uint64, _ uint32) uint64 {
			if v == Inf {
				return Inf
			}
			return v + 1
		})
	return dist, rounds
}

// SSSP computes weighted shortest-path distances from source.
func SSSP(rt *abelian.Runtime, source uint32) (*abelian.Field, int) {
	dist := rt.NewField(Inf, minU64)
	rounds := runPush(rt, dist,
		func(activate func(lv uint32)) { seedVertex(rt, dist, source, 0, activate) },
		func(v uint64, w uint32) uint64 {
			if v == Inf {
				return Inf
			}
			return v + uint64(w)
		})
	return dist, rounds
}

// CC computes connected components by label propagation (minimum global id
// wins). The input graph must be symmetric for the labels to mean
// undirected components (the kron input is; see internal/graph).
func CC(rt *abelian.Runtime) (*abelian.Field, int) {
	comp := rt.NewField(Inf, minU64)
	hg := rt.HG
	rounds := runPush(rt, comp,
		func(activate func(lv uint32)) {
			for lv := 0; lv < hg.NumLocal; lv++ {
				comp.SetLocal(uint32(lv), uint64(hg.L2G[lv]))
				activate(uint32(lv))
			}
		},
		func(v uint64, _ uint32) uint64 { return v })
	return comp, rounds
}

// PageRankDamping is the paper-standard damping factor.
const PageRankDamping = 0.85

// PageRank runs the push-style accumulation formulation for iters rounds
// and returns the rank field (valid at masters; broadcast keeps mirrors
// fresh under vertex-cuts). Degrees are globalized with an add-reduction
// first, since a vertex-cut splits a vertex's out-edges across hosts.
func PageRank(rt *abelian.Runtime, iters int) *abelian.Field {
	hg := rt.HG
	n := float64(hg.GlobalN)

	// Global out-degrees.
	deg := rt.NewField(0, func(a, b uint64) uint64 { return a + b })
	rt.Compute(func() {
		rt.Host.Pool.For(hg.NumLocal, func(lv int) {
			if d := hg.Local.Degree(lv); d > 0 {
				deg.Apply(uint32(lv), uint64(d))
			}
		})
	})
	deg.SyncReduce()
	deg.SyncBroadcast()

	rank := rt.NewField(0, func(a, b uint64) uint64 { return b }) // overwrite
	acc := rt.NewField(0, addF64)

	init := math.Float64bits(1.0 / n)
	for lv := 0; lv < hg.NumLocal; lv++ {
		rank.SetLocal(uint32(lv), init)
	}

	for it := 0; it < iters; it++ {
		rt.Compute(func() {
			rt.Host.Pool.For(hg.NumLocal, func(u int) {
				du := deg.Get(uint32(u))
				if du == 0 || hg.Local.Degree(u) == 0 {
					return
				}
				contrib := math.Float64frombits(rank.Get(uint32(u))) / float64(du)
				cb := math.Float64bits(contrib)
				for _, v := range hg.Local.Neighbors(u) {
					acc.Apply(v, cb)
				}
			})
		})
		acc.SyncReduce()
		// New ranks at masters; accumulators reset for the next round.
		rt.Compute(func() {
			rt.Host.Pool.For(hg.NumLocal, func(lv int) {
				if hg.IsMaster(uint32(lv)) {
					sum := math.Float64frombits(acc.Get(uint32(lv)))
					r := (1-PageRankDamping)/n + PageRankDamping*sum
					rank.Set(uint32(lv), math.Float64bits(r))
				}
				acc.SetLocal(uint32(lv), 0)
			})
		})
		if rt.Pol.NeedsBroadcast() {
			rank.SyncBroadcast()
		}
		rt.Rounds++
		rt.RecordRound()
	}
	return rank
}
