package apps

import (
	"math"
	"testing"

	"lcigraph/internal/abelian"
	"lcigraph/internal/cluster"
	"lcigraph/internal/comm"
	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/gemini"
	"lcigraph/internal/graph"
	"lcigraph/internal/memtrack"
	"lcigraph/internal/partition"
)

// runAbelianApp executes body on an LCI-backed Abelian cluster over g and
// collects master values into a global array.
func runAbelianApp(t *testing.T, g *graph.Graph, p int,
	body func(rt *abelian.Runtime) *abelian.Field) []uint64 {
	t.Helper()
	pt := partition.Build(g, p, partition.VertexCut)
	fab := fabric.New(p, fabric.TestProfile())
	out := make([]uint64, g.N)
	cluster.Run(p, 2, func(r int) comm.Layer {
		return comm.NewLCILayer(fab.Endpoint(r), lci.Options{})
	}, func(h *cluster.Host) {
		rt := abelian.New(h, pt.Hosts[h.Rank], partition.VertexCut)
		f := body(rt)
		for m := 0; m < rt.HG.NumMasters; m++ {
			out[rt.HG.L2G[m]] = f.Get(uint32(m))
		}
	})
	return out
}

func equalU64(t *testing.T, got, want []uint64, label string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: vertex %d = %d, want %d", label, i, got[i], want[i])
		}
	}
}

func TestAbelianAppsDirect(t *testing.T) {
	g := graph.Kron(6, 5, 2, 16)
	const p = 3

	bfs := runAbelianApp(t, g, p, func(rt *abelian.Runtime) *abelian.Field {
		f, rounds := BFS(rt, 3)
		if rounds == 0 {
			t.Error("bfs: zero rounds")
		}
		return f
	})
	equalU64(t, bfs, OracleBFS(g, 3), "bfs")

	sssp := runAbelianApp(t, g, p, func(rt *abelian.Runtime) *abelian.Field {
		f, _ := SSSP(rt, 3)
		return f
	})
	equalU64(t, sssp, OracleSSSP(g, 3), "sssp")

	delta := runAbelianApp(t, g, p, func(rt *abelian.Runtime) *abelian.Field {
		f, _ := SSSPDelta(rt, 3, 8)
		return f
	})
	equalU64(t, delta, OracleSSSP(g, 3), "sssp-delta")

	cc := runAbelianApp(t, g, p, func(rt *abelian.Runtime) *abelian.Field {
		f, _ := CC(rt)
		return f
	})
	equalU64(t, cc, OracleCC(g), "cc")

	dir := runAbelianApp(t, g, p, func(rt *abelian.Runtime) *abelian.Field {
		f, rounds, pulls := BFSDirectionOpt(rt, 3)
		if pulls == 0 {
			t.Log("bfs-dir: no pull rounds on this input (frontier threshold)")
		}
		if rounds == 0 {
			t.Error("bfs-dir: zero rounds")
		}
		return f
	})
	equalU64(t, dir, OracleBFS(g, 3), "bfs-dir")
}

func TestAbelianPageRankDirect(t *testing.T) {
	g := graph.Kron(6, 5, 2, 0)
	const p, iters = 3, 6
	pt := partition.Build(g, p, partition.VertexCut)
	fab := fabric.New(p, fabric.TestProfile())
	ranks := make([]float64, g.N)
	cluster.Run(p, 2, func(r int) comm.Layer {
		return comm.NewLCILayer(fab.Endpoint(r), lci.Options{})
	}, func(h *cluster.Host) {
		rt := abelian.New(h, pt.Hosts[h.Rank], partition.VertexCut)
		f := PageRank(rt, iters)
		for m := 0; m < rt.HG.NumMasters; m++ {
			ranks[rt.HG.L2G[m]] = math.Float64frombits(f.Get(uint32(m)))
		}
	})
	want := OraclePageRank(g, iters)
	if d := MaxRankDelta(want, ranks); d > 1e-9 {
		t.Fatalf("pagerank delta %.3e", d)
	}
}

func TestGeminiAppsDirect(t *testing.T) {
	g := graph.Kron(6, 5, 7, 16)
	const p = 2
	pt := partition.Build(g, p, partition.EdgeCutByDst)
	fab := fabric.New(p, fabric.TestProfile())
	dist := make([]uint64, g.N)
	adaptiveDist := make([]uint64, g.N)
	cluster.Run(p, 2, func(r int) comm.Layer { return nop{} }, func(h *cluster.Host) {
		s := comm.NewLCIStream(fab.Endpoint(h.Rank), lci.Options{})
		e := gemini.New(h, pt.Hosts[h.Rank], s, Inf, minU64)
		if r := GeminiBFS(e, 1); r == 0 {
			t.Error("gemini bfs: zero rounds")
		}
		for m := 0; m < e.HG.NumMasters; m++ {
			dist[e.HG.L2G[m]] = e.Get(uint32(m))
		}
		h.Barrier()
		s.Stop()
	})
	equalU64(t, dist, OracleBFS(g, 1), "gemini bfs")

	fab2 := fabric.New(p, fabric.TestProfile())
	cluster.Run(p, 2, func(r int) comm.Layer { return nop{} }, func(h *cluster.Host) {
		s := comm.NewLCIStream(fab2.Endpoint(h.Rank), lci.Options{})
		e := gemini.New(h, pt.Hosts[h.Rank], s, Inf, minU64)
		GeminiSSSPAdaptive(e, 1)
		for m := 0; m < e.HG.NumMasters; m++ {
			adaptiveDist[e.HG.L2G[m]] = e.Get(uint32(m))
		}
		h.Barrier()
		s.Stop()
	})
	equalU64(t, adaptiveDist, OracleSSSP(g, 1), "gemini adaptive sssp")
}

type nop struct{}

func (nop) Name() string { return "nop" }
func (nop) Exchange(uint32, [][]byte, []bool, []int, func(int, []byte)) {
	panic("unused")
}
func (nop) AllocBuf(n int) []byte      { return make([]byte, n) }
func (nop) Tracker() *memtrack.Tracker { return nil }
func (nop) Stop()                      {}
