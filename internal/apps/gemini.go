package apps

import (
	"math"
	"time"

	"lcigraph/internal/gemini"
)

// The Gemini versions of the four benchmarks (§IV-B1). The engine expects a
// partition built with partition.EdgeCutByDst.

// GeminiBFS computes hop distances from source on engine e (which must be
// built with identity Inf and min-reduction).
func GeminiBFS(e *gemini.Engine, source uint32) int {
	return e.RunPush(
		func(activate func(lv uint32)) {
			if lv, ok := e.HG.G2L(source); ok && e.HG.IsMaster(lv) {
				e.Set(lv, 0)
				activate(lv)
			}
		},
		func(v uint64, _ uint32) uint64 {
			if v == Inf {
				return Inf
			}
			return v + 1
		})
}

// GeminiSSSP computes weighted shortest-path distances from source.
func GeminiSSSP(e *gemini.Engine, source uint32) int {
	return e.RunPush(
		func(activate func(lv uint32)) {
			if lv, ok := e.HG.G2L(source); ok && e.HG.IsMaster(lv) {
				e.Set(lv, 0)
				activate(lv)
			}
		},
		func(v uint64, w uint32) uint64 {
			if v == Inf {
				return Inf
			}
			return v + uint64(w)
		})
}

// GeminiCC runs min-label propagation; the input must be symmetric for the
// result to mean undirected components.
func GeminiCC(e *gemini.Engine) int {
	hg := e.HG
	return e.RunPush(
		func(activate func(lv uint32)) {
			for lv := 0; lv < hg.NumLocal; lv++ {
				e.Set(uint32(lv), uint64(hg.L2G[lv]))
				if hg.IsMaster(uint32(lv)) {
					activate(uint32(lv))
				}
			}
		},
		func(v uint64, _ uint32) uint64 { return v })
}

// GeminiBFSAdaptive is GeminiBFS with sparse/dense mode switching.
func GeminiBFSAdaptive(e *gemini.Engine, source uint32) (rounds, dense int) {
	return e.RunPushAdaptive(
		func(activate func(lv uint32)) {
			if lv, ok := e.HG.G2L(source); ok && e.HG.IsMaster(lv) {
				e.Set(lv, 0)
				activate(lv)
			}
		},
		func(v uint64, _ uint32) uint64 {
			if v == Inf {
				return Inf
			}
			return v + 1
		})
}

// GeminiSSSPAdaptive is GeminiSSSP with sparse/dense mode switching.
func GeminiSSSPAdaptive(e *gemini.Engine, source uint32) (rounds, dense int) {
	return e.RunPushAdaptive(
		func(activate func(lv uint32)) {
			if lv, ok := e.HG.G2L(source); ok && e.HG.IsMaster(lv) {
				e.Set(lv, 0)
				activate(lv)
			}
		},
		func(v uint64, w uint32) uint64 {
			if v == Inf {
				return Inf
			}
			return v + uint64(w)
		})
}

// GeminiCCAdaptive is GeminiCC with sparse/dense mode switching; cc starts
// with a full frontier, so its first rounds go dense.
func GeminiCCAdaptive(e *gemini.Engine) (rounds, dense int) {
	hg := e.HG
	return e.RunPushAdaptive(
		func(activate func(lv uint32)) {
			for lv := 0; lv < hg.NumLocal; lv++ {
				e.Set(uint32(lv), uint64(hg.L2G[lv]))
				if hg.IsMaster(uint32(lv)) {
					activate(uint32(lv))
				}
			}
		},
		func(v uint64, _ uint32) uint64 { return v })
}

// GeminiPageRank runs iters pagerank rounds and returns per-master ranks
// (indexed by local id; only master entries are meaningful). The engine
// must be built with identity 0 and float-add reduction: Vals serve as the
// per-round contribution accumulators.
func GeminiPageRank(e *gemini.Engine, iters int) []float64 {
	hg := e.HG
	n := float64(hg.GlobalN)
	threads := e.H.Pool.Workers()

	// Phase 1: globalize out-degrees. Under destination-owned edges a
	// vertex's out-edges are scattered, so each host streams its local
	// out-degree of every proxy to the owner.
	e.SetReduce(0, func(a, b uint64) uint64 { return a + b })
	e.StreamRound(
		func(t int, emit func(peer int, gsrc uint32, val uint64)) {
			c := (hg.NumLocal + threads - 1) / threads
			lo, hi := t*c, (t+1)*c
			if hi > hg.NumLocal {
				hi = hg.NumLocal
			}
			for lv := lo; lv < hi; lv++ {
				d := hg.Local.Degree(lv)
				if d == 0 {
					continue
				}
				if hg.IsMaster(uint32(lv)) {
					e.Apply(uint32(lv), uint64(d))
				} else {
					emit(hg.OwnerOf[lv], hg.L2G[lv], uint64(d))
				}
			}
		},
		func(gsrc uint32, val uint64) {
			lv, _ := hg.G2L(gsrc)
			e.Apply(lv, val)
		})
	deg := make([]uint64, hg.NumMasters)
	for m := range deg {
		deg[m] = e.Get(uint32(m))
	}
	// Vals become float contribution accumulators from here on.
	e.SetReduce(0, addF64)

	rank := make([]float64, hg.NumMasters)
	for m := range rank {
		rank[m] = 1.0 / n
	}

	// Phase 2: iterate. Each round streams (u, contribution) signals to the
	// hosts holding u's out-edges; slots add contribution/edge into local
	// master accumulators; then masters recompute their rank locally.
	for it := 0; it < iters; it++ {
		e.StreamRound(
			func(t int, emit func(peer int, gsrc uint32, val uint64)) {
				// Local slot for own masters' local out-edges.
				c := (hg.NumMasters + threads - 1) / threads
				lo, hi := t*c, (t+1)*c
				if hi > hg.NumMasters {
					hi = hg.NumMasters
				}
				for m := lo; m < hi; m++ {
					if deg[m] == 0 {
						continue
					}
					contrib := math.Float64bits(rank[m] / float64(deg[m]))
					for _, v := range hg.Local.Neighbors(m) {
						e.Apply(v, contrib)
					}
				}
				// Signals to mirror hosts.
				for p := 0; p < hg.P; p++ {
					list := hg.MastersFor[p]
					if len(list) == 0 {
						continue
					}
					cl := (len(list) + threads - 1) / threads
					llo, lhi := t*cl, (t+1)*cl
					if lhi > len(list) {
						lhi = len(list)
					}
					for i := llo; i < lhi; i++ {
						m := list[i]
						if deg[m] == 0 {
							continue
						}
						emit(p, hg.L2G[m], math.Float64bits(rank[m]/float64(deg[m])))
					}
				}
			},
			func(gsrc uint32, val uint64) {
				lv, _ := hg.G2L(gsrc)
				for _, v := range hg.Local.Neighbors(int(lv)) {
					e.Apply(v, val)
				}
			})

		// Local rank update from accumulators.
		t0 := time.Now()
		for m := 0; m < hg.NumMasters; m++ {
			sum := math.Float64frombits(e.Get(uint32(m)))
			rank[m] = (1-PageRankDamping)/n + PageRankDamping*sum
			e.Set(uint32(m), 0)
		}
		e.ComputeTime += time.Since(t0)
	}
	return rank
}
