package apps

import (
	"container/heap"
	"math"

	"lcigraph/internal/graph"
)

// Single-host reference implementations. The distributed runs of every
// communication layer are verified against these in the test suite.

// OracleBFS returns hop distances from source (Inf when unreachable).
func OracleBFS(g *graph.Graph, source uint32) []uint64 {
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = Inf
	}
	dist[source] = 0
	queue := []uint32{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] == Inf {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// pqItem is a priority-queue element for Dijkstra.
type pqItem struct {
	v uint32
	d uint64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].d < q[j].d }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); x := old[n-1]; *q = old[:n-1]; return x }

// OracleSSSP returns weighted shortest-path distances from source
// (Dijkstra; weights must be non-negative).
func OracleSSSP(g *graph.Graph, source uint32) []uint64 {
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = Inf
	}
	dist[source] = 0
	q := &pq{{v: source, d: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		ws := g.NeighborWeights(int(it.v))
		for i, v := range g.Neighbors(int(it.v)) {
			w := uint64(1)
			if ws != nil {
				w = uint64(ws[i])
			}
			if nd := it.d + w; nd < dist[v] {
				dist[v] = nd
				heap.Push(q, pqItem{v: v, d: nd})
			}
		}
	}
	return dist
}

// OracleCC returns, per vertex, the minimum global id reachable in its
// (undirected) component, treating each directed edge as bidirectional —
// matching the label-propagation semantics on symmetric inputs.
func OracleCC(g *graph.Graph) []uint64 {
	parent := make([]uint32, g.N)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b uint32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			union(uint32(v), u)
		}
	}
	out := make([]uint64, g.N)
	for v := range out {
		out[v] = uint64(find(uint32(v)))
	}
	return out
}

// OraclePageRank runs iters synchronous power iterations with the standard
// damping factor, matching the distributed push formulation (dangling
// vertices contribute nothing, as in the push version).
func OraclePageRank(g *graph.Graph, iters int) []float64 {
	n := float64(g.N)
	rank := make([]float64, g.N)
	next := make([]float64, g.N)
	for i := range rank {
		rank[i] = 1.0 / n
	}
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < g.N; u++ {
			d := g.Degree(u)
			if d == 0 {
				continue
			}
			c := rank[u] / float64(d)
			for _, v := range g.Neighbors(u) {
				next[v] += c
			}
		}
		for i := range next {
			next[i] = (1-PageRankDamping)/n + PageRankDamping*next[i]
		}
		rank, next = next, rank
	}
	return rank
}

// MaxRankDelta returns the largest absolute difference between two rank
// vectors (test tolerance helper).
func MaxRankDelta(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
