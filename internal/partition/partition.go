// Package partition distributes a graph across hosts using the two policies
// of the paper's systems: Gemini's blocked edge-cut (§II, [7]) and an
// Abelian-style general vertex-cut (the "advanced vertex-cut partitioning
// policy" of §IV, implemented here as a Cartesian/2D vertex cut).
//
// Following §II's proxy model: when an edge (u,v) is assigned to a host, the
// host creates proxies for u and v. Exactly one proxy of each vertex — on
// the host that owns the vertex — is the master; the rest are mirrors. On
// each host, masters are stored contiguously before mirrors, matching the
// in-memory layout of §III-A.
//
// The package also builds the per-peer synchronization index lists used by
// the reduce (mirrors→master) and broadcast (master→mirrors) patterns. The
// lists are constructed in matching order on both sides of every host pair,
// so the communication layers can ship values (plus an updated-bitmap) with
// no per-element indices — the paper's "minimizing communication meta-data".
package partition

import (
	"fmt"
	"sort"
	"sync"

	"lcigraph/internal/graph"
)

// Policy selects the partitioning strategy.
type Policy int

const (
	// EdgeCut is Gemini's blocked edge-cut: contiguous vertex blocks
	// balanced by out-edge count; all out-edges of a vertex live with its
	// owner.
	EdgeCut Policy = iota
	// VertexCut is an Abelian-style Cartesian vertex cut: hosts form an
	// r×c grid and edge (u,v) goes to host (rowBlock(u), colBlock(v)).
	VertexCut
	// EdgeCutByDst assigns edge (u,v) to owner(v) — the placement Gemini's
	// sparse (push) mode uses: a host stores the incoming edges of its
	// owned vertices, and active sources are signalled to the hosts
	// holding their out-edges.
	EdgeCutByDst
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case EdgeCut:
		return "edge-cut"
	case VertexCut:
		return "vertex-cut"
	case EdgeCutByDst:
		return "edge-cut-dst"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// NeedsBroadcast reports whether source-vertex labels must be broadcast
// master→mirrors before a push-style compute phase under this policy (the
// partition-aware communication choice of §II: with an edge-cut all sources
// are masters, so no broadcast is needed).
func (p Policy) NeedsBroadcast() bool { return p == VertexCut }

// HostGraph is one host's partition: local CSR over local vertex ids, the
// master/mirror layout, and per-peer synchronization lists.
type HostGraph struct {
	Host, P int
	GlobalN int

	// Local vertex space: ids [0,NumMasters) are masters, the rest mirrors.
	NumMasters int
	NumLocal   int
	L2G        []uint32          // local → global
	g2l        map[uint32]uint32 // global → local
	OwnerOf    []int             // local id → owning host

	// Local out-edges (both endpoints as local ids).
	Local *graph.Graph

	inOnce  sync.Once
	localIn *graph.Graph

	// MirrorsHere[p] lists OUR local ids that are mirrors whose master
	// lives on peer p (ascending global id). During reduce we send these
	// values to p; during broadcast we receive into them from p.
	MirrorsHere [][]uint32
	// MastersFor[p] lists OUR local master ids that have a mirror on peer
	// p, in the same global order as p's MirrorsHere[Host]. During reduce
	// we combine incoming values from p into these; during broadcast we
	// send their values to p.
	MastersFor [][]uint32
}

// G2L translates a global id to this host's local id; ok is false when the
// vertex has no proxy here.
func (h *HostGraph) G2L(gid uint32) (uint32, bool) {
	l, ok := h.g2l[gid]
	return l, ok
}

// IsMaster reports whether local id l is a master proxy.
func (h *HostGraph) IsMaster(l uint32) bool { return int(l) < h.NumMasters }

// LocalIn returns the incoming-edge (CSC) view of this host's edge set,
// built lazily: the same edges as Local, traversable by destination. Pull-
// style operators (e.g. direction-optimizing BFS) scan it to read source
// proxies while writing the destination.
func (h *HostGraph) LocalIn() *graph.Graph {
	h.inOnce.Do(func() { h.localIn = h.Local.Transpose() })
	return h.localIn
}

// Partitioned is the full partitioning result.
type Partitioned struct {
	P       int
	GlobalN int
	Policy  Policy
	Hosts   []*HostGraph
	owners  []int32 // global id → owner host
}

// Owner returns the owning host of global vertex gid.
func (pt *Partitioned) Owner(gid uint32) int { return int(pt.owners[gid]) }

// blockStarts divides n vertices into P contiguous blocks balanced by
// out-degree (Gemini's "tries to balance the assigned edges across hosts").
func blockStarts(g *graph.Graph, parts int) []uint32 {
	total := g.NumEdges() + int64(g.N) // +1 per vertex keeps empty tails balanced
	starts := make([]uint32, parts+1)
	starts[parts] = uint32(g.N)
	target := total / int64(parts)
	var acc int64
	b := 1
	for v := 0; v < g.N && b < parts; v++ {
		acc += int64(g.Degree(v)) + 1
		if acc >= target*int64(b) {
			starts[b] = uint32(v + 1)
			b++
		}
	}
	for ; b < parts; b++ {
		starts[b] = uint32(g.N)
	}
	return starts
}

func blockOf(starts []uint32, v uint32) int {
	// starts is small (P+1); binary search.
	lo, hi := 0, len(starts)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if starts[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// grid returns the most square r×c factorization of p with r ≤ c.
func grid(p int) (int, int) {
	r := 1
	for i := 1; i*i <= p; i++ {
		if p%i == 0 {
			r = i
		}
	}
	return r, p / r
}

// Build partitions g across p hosts under the policy.
func Build(g *graph.Graph, p int, pol Policy) *Partitioned {
	if p < 1 {
		panic("partition: need at least one host")
	}
	pt := &Partitioned{P: p, GlobalN: g.N, Policy: pol, owners: make([]int32, g.N)}

	// Vertex ownership: contiguous degree-balanced blocks under both
	// policies (CVC also assigns masters by block).
	vstarts := blockStarts(g, p)
	for v := 0; v < g.N; v++ {
		pt.owners[v] = int32(blockOf(vstarts, uint32(v)))
	}

	// Edge assignment.
	hostEdges := make([][]graph.Edge, p)
	var rows, cols int
	var rstarts, cstarts []uint32
	if pol == VertexCut {
		rows, cols = grid(p)
		rstarts = blockStarts(g, rows)
		cstarts = blockStarts(g, cols)
	}
	for v := 0; v < g.N; v++ {
		ws := g.NeighborWeights(v)
		for i, d := range g.Neighbors(v) {
			var w uint32
			if ws != nil {
				w = ws[i]
			}
			var h int
			switch pol {
			case EdgeCut:
				h = int(pt.owners[v])
			case EdgeCutByDst:
				h = int(pt.owners[d])
			default:
				h = blockOf(rstarts, uint32(v))*cols + blockOf(cstarts, d)
			}
			hostEdges[h] = append(hostEdges[h], graph.Edge{Src: uint32(v), Dst: d, W: w})
		}
	}

	// Per-host proxy construction.
	present := make([]map[uint32]bool, p) // host → global ids with a proxy
	for h := 0; h < p; h++ {
		set := map[uint32]bool{}
		// All owned vertices are present as masters (contiguous, even if
		// they have no local edges — they may still receive reductions).
		for v := vstarts[h]; v < vstarts[h+1]; v++ {
			set[v] = true
		}
		for _, e := range hostEdges[h] {
			set[e.Src] = true
			set[e.Dst] = true
		}
		present[h] = set
	}

	// mirrorHosts[v] = hosts holding a mirror of v.
	mirrorHosts := make([][]int32, g.N)
	for h := 0; h < p; h++ {
		for v := range present[h] {
			if int(pt.owners[v]) != h {
				mirrorHosts[v] = append(mirrorHosts[v], int32(h))
			}
		}
	}

	pt.Hosts = make([]*HostGraph, p)
	for h := 0; h < p; h++ {
		hg := buildHost(g, pt, h, vstarts, present[h], hostEdges[h])
		pt.Hosts[h] = hg
	}

	// Synchronization lists. For each (master host m, mirror host h) pair
	// the global-id order is ascending on both sides.
	for h := 0; h < p; h++ {
		pt.Hosts[h].MirrorsHere = make([][]uint32, p)
		pt.Hosts[h].MastersFor = make([][]uint32, p)
	}
	for v := uint32(0); int(v) < g.N; v++ {
		m := int(pt.owners[v])
		for _, h32 := range mirrorHosts[v] {
			h := int(h32)
			hg, mg := pt.Hosts[h], pt.Hosts[m]
			lh, _ := hg.G2L(v)
			lm, _ := mg.G2L(v)
			hg.MirrorsHere[m] = append(hg.MirrorsHere[m], lh)
			mg.MastersFor[h] = append(mg.MastersFor[h], lm)
		}
	}
	return pt
}

// buildHost assembles one host's local graph and id maps.
func buildHost(g *graph.Graph, pt *Partitioned, h int, vstarts []uint32,
	present map[uint32]bool, edges []graph.Edge) *HostGraph {

	var masters, mirrors []uint32
	for v := range present {
		if int(pt.owners[v]) == h {
			masters = append(masters, v)
		} else {
			mirrors = append(mirrors, v)
		}
	}
	sort.Slice(masters, func(i, j int) bool { return masters[i] < masters[j] })
	sort.Slice(mirrors, func(i, j int) bool { return mirrors[i] < mirrors[j] })

	hg := &HostGraph{
		Host: h, P: pt.P, GlobalN: g.N,
		NumMasters: len(masters),
		NumLocal:   len(masters) + len(mirrors),
		g2l:        make(map[uint32]uint32, len(masters)+len(mirrors)),
	}
	hg.L2G = append(append([]uint32{}, masters...), mirrors...)
	for l, gid := range hg.L2G {
		hg.g2l[gid] = uint32(l)
	}
	hg.OwnerOf = make([]int, hg.NumLocal)
	for l, gid := range hg.L2G {
		hg.OwnerOf[l] = pt.Owner(gid)
	}

	local := make([]graph.Edge, len(edges))
	for i, e := range edges {
		local[i] = graph.Edge{Src: hg.g2l[e.Src], Dst: hg.g2l[e.Dst], W: e.W}
	}
	hg.Local = graph.FromEdges(hg.NumLocal, local)
	return hg
}
